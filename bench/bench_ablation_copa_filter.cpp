// Ablation (§5.1 discussion): Copa's standing-RTT filter and mode-switching
// heuristic under the min-RTT attack.
//
//   * default mode vs competitive-mode switching: mode switching (shrinking
//     delta when the queue "never empties") partially masks the attack in
//     our reimplementation — an interesting nuance the bench quantifies;
//   * long vs short min-RTT window: with a 10 s window the single poisoned
//     sample ages out and the flow recovers.
#include "bench_common.hpp"

#include "cc/copa.hpp"
#include "sim/jitter.hpp"

using namespace ccstarve;

namespace {

double run_attack(bool mode_switching, TimeNs min_window) {
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(120);
  Scenario sc(std::move(cfg));
  FlowSpec f;
  Copa::Params p;
  p.enable_mode_switching = mode_switching;
  p.min_rtt_window = min_window;
  f.cca = std::make_unique<Copa>(p);
  f.min_rtt = TimeNs::millis(59);
  f.data_jitter = std::make_unique<AllButOneJitter>(TimeNs::millis(1),
                                                    TimeNs::millis(150));
  sc.add_flow(std::move(f));
  sc.run_until(TimeNs::seconds(40));
  return bench::mbps(sc, 0, TimeNs::seconds(20), TimeNs::seconds(40));
}

}  // namespace

int main() {
  bench::header("Copa estimator ablation (A1)",
                "min-RTT attack vs Copa's filtering choices, 120 Mbit/s");
  Table t({"mode switching", "minRTT window", "throughput Mbit/s",
           "attack effective?"});
  struct Case {
    bool ms;
    double win_s;
  };
  for (const Case& c :
       {Case{false, 600}, Case{true, 600}, Case{false, 10}, Case{true, 10}}) {
    const double mbps = run_attack(c.ms, TimeNs::seconds(c.win_s));
    t.add_row({c.ms ? "on" : "off", Table::num(c.win_s, 0) + " s",
               Table::num(mbps, 1), mbps < 60 ? "YES (starved)" : "no"});
  }
  t.print(std::cout);
  std::cout << "\nThe attack requires the poisoned minimum to persist "
               "(long window) and Copa's\ndelay-based default mode; "
               "competitive mode shrinks delta and climbs back.\n";
  return 0;
}
