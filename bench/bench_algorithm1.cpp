// §6.3: Algorithm 1 (the JitterAware CCA) validated the way the paper did —
// by adversary search ("we used CCAC to produce traces where the algorithm
// is either inefficient or more than s-unfair; CCAC was unable to").
//
// We run the same bounded-jitter adversary family against Algorithm 1 and,
// for contrast, against Vegas; then attempt the Theorem 1 pigeonhole attack
// against Algorithm 1 and show the collision cannot be found at eps < D/2
// within the designed rate range.
#include "bench_common.hpp"

#include "cc/jitter_aware.hpp"
#include "cc/vegas.hpp"
#include "core/jitter_search.hpp"
#include "core/theorem1.hpp"

using namespace ccstarve;

int main() {
  bench::header("Algorithm 1 validation (E6.3b)",
                "Section 6.3: s-fairness + efficiency under a bounded-D "
                "adversary; designed D = 10 ms, s = 2, Rmax = 100 ms");

  JitterSearchConfig cfg;
  cfg.link_rate = Rate::mbps(60);
  cfg.min_rtt = TimeNs::millis(100);
  cfg.d = TimeNs::millis(10);
  cfg.duration = TimeNs::seconds(60);
  cfg.f = 0.3;
  cfg.s = 5.0;
  cfg.random_schedules = 3;

  for (const auto& [name, maker] :
       std::vector<std::pair<std::string, CcaMaker>>{
           {"jitter-aware (Algorithm 1)",
            [] { return std::unique_ptr<Cca>(new JitterAware()); }},
           {"vegas (for contrast)",
            [] { return std::unique_ptr<Cca>(new Vegas()); }}}) {
    const JitterSearchResult res = search_jitter_adversary(maker, cfg);
    std::cout << "\n-- " << name << " --\n";
    Table t({"schedule", "utilization", "ratio", "verdict"});
    for (const auto& o : res.outcomes) {
      std::string verdict = "ok";
      if (o.efficiency_violation) verdict = "EFFICIENCY VIOLATION";
      if (o.fairness_violation) verdict = "FAIRNESS VIOLATION";
      t.add_row({o.name, Table::num(o.utilization, 2),
                 Table::num(o.ratio, 2), verdict});
    }
    t.print(std::cout);
    std::printf("worst utilization %.2f (floor %.2f), worst ratio %.2f "
                "(ceiling %.1f): %s\n",
                res.worst_utilization, cfg.f, res.worst_ratio, cfg.s,
                res.any_violation ? "VIOLATED" : "no violation found");
  }

  // Theorem 1 attack attempt: within the designed rate range the pigeonhole
  // needs two rates whose d_max collide within eps = (D - 2*delta_max)/2;
  // Algorithm 1 keeps delta_max large (> D/2 by design), so the theorem's
  // precondition D > 2*delta_max fails.
  PigeonholeConfig pg;
  pg.f = 0.5;
  pg.s = 4.0;
  pg.lambda = Rate::mbps(1);
  pg.max_steps = 3;
  pg.min_rtt = TimeNs::millis(100);
  pg.duration = TimeNs::seconds(60);
  const PigeonholePair pair = find_rate_pair(
      [] { return std::unique_ptr<Cca>(new JitterAware()); }, pg);
  std::printf(
      "\nTheorem 1 precondition check for Algorithm 1: delta_max = %.1f ms "
      "vs designed D = 10 ms\n=> D > 2*delta_max is %s; the starvation "
      "construction does not apply.\n",
      pair.delta_max_s * 1e3,
      10.0 > 2.0 * pair.delta_max_s * 1e3 ? "TRUE (attackable!)" : "FALSE");
  return 0;
}
