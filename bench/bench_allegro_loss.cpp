// §5.4: PCC Allegro with asymmetric random loss.
//
// Two Allegro flows, 120 Mbit/s, 40 ms RTT, 1 BDP buffer, 60 s. One flow
// experiences 2% random loss. Paper: 10.3 vs 99.1 Mbit/s, with controls
// showing (a) both-2% flows sharing fairly, and (b) a single 2%-loss flow
// filling the link.
#include "bench_common.hpp"

#include "cc/allegro.hpp"

using namespace ccstarve;

int main() {
  const Rate link = Rate::mbps(120);
  const TimeNs rtt = TimeNs::millis(40);
  const uint64_t bdp_bytes =
      static_cast<uint64_t>(link.bytes_per_second() * rtt.to_seconds());
  const TimeNs duration = TimeNs::seconds(60);

  auto run = [&](int flows, double loss0, double loss1) {
    ScenarioConfig cfg;
    cfg.link_rate = link;
    cfg.buffer_bytes = bdp_bytes;
    auto sc = std::make_unique<Scenario>(std::move(cfg));
    for (int i = 0; i < flows; ++i) {
      FlowSpec f;
      Allegro::Params p;
      p.seed = 5 + static_cast<uint64_t>(i);
      f.cca = std::make_unique<Allegro>(p);
      f.min_rtt = rtt;
      f.loss_rate = i == 0 ? loss0 : loss1;
      f.loss_seed = 77 + static_cast<uint64_t>(i);
      sc->add_flow(std::move(f));
    }
    sc->run_until(duration);
    return sc;
  };

  Table table({"scenario", "flow", "measured Mbit/s", "paper Mbit/s"});

  auto headline = run(2, 0.02, 0.0);
  table.add_row({"2 flows, one with 2% loss", "allegro (2% loss)",
                 Table::num(bench::mbps(*headline, 0, TimeNs::zero(), duration), 1),
                 "10.3"});
  table.add_row({"2 flows, one with 2% loss", "allegro (no loss)",
                 Table::num(bench::mbps(*headline, 1, TimeNs::zero(), duration), 1),
                 "99.1"});

  auto both = run(2, 0.02, 0.02);
  table.add_row({"control: both with 2% loss", "allegro #1",
                 Table::num(bench::mbps(*both, 0, TimeNs::zero(), duration), 1),
                 "fair share"});
  table.add_row({"control: both with 2% loss", "allegro #2",
                 Table::num(bench::mbps(*both, 1, TimeNs::zero(), duration), 1),
                 "fair share"});

  auto solo = run(1, 0.02, 0.0);
  table.add_row({"control: single flow, 2% loss", "allegro",
                 Table::num(bench::mbps(*solo, 0, TimeNs::zero(), duration), 1),
                 "~120 (full)"});

  bench::header("PCC Allegro loss starvation (E5.4)",
                "Section 5.4, 120 Mbit/s, 40 ms, 1 BDP buffer, 2% loss");
  table.print(std::cout);
  std::cout << "\nNote: the both-2% control in our reimplementation shows a\n"
               "winner-take-most PCC-vs-PCC artifact (see EXPERIMENTS.md);\n"
               "the headline asymmetric-loss starvation and the single-flow\n"
               "loss-resilience control match the paper.\n";
  return 0;
}
