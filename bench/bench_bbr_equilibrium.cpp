// §5.2 analysis: BBR's cwnd-limited fixed point and the quanta ablation.
//
//   * Equilibrium: with n flows, RTT -> 2*Rm + n*quanta/C; rate(RTT) =
//     quanta/(RTT - 2*Rm) (the paper's derivation from
//     cwnd = 2*bw_est*Rm + alpha).
//   * Ablation: removing the +alpha quanta term removes the unique fixed
//     point ("any value of cwnd_1 and cwnd_2 can be a fixed point") — a
//     late-starting flow never reaches its share.
#include "bench_common.hpp"

#include "cc/bbr.hpp"
#include "core/equilibrium.hpp"
#include "sim/jitter.hpp"
#include "sim/jitter.hpp"

using namespace ccstarve;

namespace {

struct PairResult {
  double early_mbps;
  double late_mbps;
  double rtt_ms;
};

PairResult run_pair(double quanta_pkts, int n_flows) {
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(20);
  Scenario sc(std::move(cfg));
  for (int i = 0; i < n_flows; ++i) {
    FlowSpec f;
    Bbr::Params p;
    p.seed = 7 + static_cast<uint64_t>(i);
    p.quanta_pkts = quanta_pkts;
    f.cca = std::make_unique<Bbr>(p);
    f.min_rtt = TimeNs::millis(40);
    f.start_at = TimeNs::seconds(i * 5.0);
    f.ack_jitter = std::make_unique<UniformJitter>(
        TimeNs::zero(), TimeNs::millis(3), 100 + static_cast<uint64_t>(i));
    sc.add_flow(std::move(f));
  }
  sc.run_until(TimeNs::seconds(60));
  PairResult out;
  out.early_mbps = bench::mbps(sc, 0, TimeNs::seconds(40), TimeNs::seconds(60));
  out.late_mbps =
      n_flows > 1
          ? bench::mbps(sc, 1, TimeNs::seconds(40), TimeNs::seconds(60))
          : 0.0;
  out.rtt_ms =
      sc.stats(0).rtt_seconds.mean_over(TimeNs::seconds(40),
                                        TimeNs::seconds(60)) *
      1e3;
  return out;
}

}  // namespace

int main() {
  bench::header("BBR cwnd-limited equilibrium & quanta ablation (E5.2b)",
                "Section 5.2 analysis: RTT = 2Rm + n*alpha/C; no +alpha => "
                "no unique fixed point");

  Table eq({"flows", "quanta pkts", "measured RTT ms", "theory RTT ms"});
  for (int n : {1, 2}) {
    const PairResult r = run_pair(3.0, n);
    eq.add_row({std::to_string(n), "3",
                Table::num(r.rtt_ms, 1),
                Table::num(bbr_cwnd_limited_rtt(Rate::mbps(20),
                                                TimeNs::millis(40), n, 3.0)
                               .to_millis(),
                           1)});
  }
  eq.print(std::cout);

  Table ab({"quanta pkts", "early flow Mbit/s", "late flow Mbit/s",
            "ratio", "paper's fluid analysis"});
  for (double q : {3.0, 1.0, 0.0}) {
    const PairResult r = run_pair(q, 2);
    const double ratio =
        std::max(r.early_mbps, r.late_mbps) /
        std::max(std::min(r.early_mbps, r.late_mbps), 1e-3);
    ab.add_row({Table::num(q, 0), Table::num(r.early_mbps, 1),
                Table::num(r.late_mbps, 1), Table::num(ratio, 2),
                q > 0 ? "unique fixed point (fair)"
                      : "any split is a fixed point"});
  }
  std::cout << '\n';
  ab.print(std::cout);
  // §6.1: the modified-BBR conjecture — a higher cruise pacing gain keeps
  // the pipe full (f-efficient) but starvation under RTT asymmetry remains.
  {
    Table m({"cruise gain", "Rm=40ms flow Mbit/s", "Rm=80ms flow Mbit/s",
             "ratio", "paper 6.1"});
    for (double gain : {1.0, 1.1}) {
      ScenarioConfig cfg;
      cfg.link_rate = Rate::mbps(60);
      Scenario sc(std::move(cfg));
      for (int i = 0; i < 2; ++i) {
        FlowSpec f;
        Bbr::Params p;
        p.seed = 7 + static_cast<uint64_t>(i);
        p.cruise_gain = gain;
        f.cca = std::make_unique<Bbr>(p);
        f.min_rtt = TimeNs::millis(i == 0 ? 40 : 80);
        f.ack_jitter = std::make_unique<UniformJitter>(
            TimeNs::zero(), TimeNs::millis(3),
            100 + static_cast<uint64_t>(i));
        sc.add_flow(std::move(f));
      }
      sc.run_until(TimeNs::seconds(60));
      const double a = bench::mbps(sc, 0, TimeNs::seconds(30),
                                   TimeNs::seconds(60));
      const double b = bench::mbps(sc, 1, TimeNs::seconds(30),
                                   TimeNs::seconds(60));
      m.add_row({Table::num(gain, 2), Table::num(a, 1), Table::num(b, 1),
                 Table::num(b / std::max(a, 1e-3), 1),
                 "efficient, still starves"});
    }
    std::cout << '\n';
    m.print(std::cout);
  }

  std::cout << "\nNote: the paper's fluid analysis says quanta = 0 leaves "
               "the split undetermined;\nin our packet-level emulator, "
               "share fluctuations feeding the max filter add a\nfairness "
               "drift the fluid analysis abstracts away, so the late flow "
               "still converges\n(see EXPERIMENTS.md). The equilibrium-RTT "
               "table above is the quantitative check\nof the Section 5.2 "
               "fixed point.\n";
  return 0;
}
