// §5.2: BBR starvation in cwnd-limited mode.
//
// Two BBR flows with Rm 40 ms and 80 ms share a 120 Mbit/s link for 60 s;
// mild ACK jitter (standing in for the paper's "natural OS jitter") pushes
// both into cwnd-limited mode. Paper: 8.3 vs 107 Mbit/s — the small-RTT
// flow starves, per the fixed point rate_i = quanta/(RTT - 2*Rm_i).
#include "bench_common.hpp"

#include "cc/bbr.hpp"
#include "core/equilibrium.hpp"
#include "sim/jitter.hpp"

using namespace ccstarve;

int main() {
  const TimeNs duration = TimeNs::seconds(60);
  Table table({"scenario", "flow", "measured Mbit/s", "paper Mbit/s"});

  {
    ScenarioConfig cfg;
    cfg.link_rate = Rate::mbps(120);
    Scenario sc(std::move(cfg));
    for (int i = 0; i < 2; ++i) {
      FlowSpec f;
      Bbr::Params p;
      p.seed = 7 + static_cast<uint64_t>(i);
      f.cca = std::make_unique<Bbr>(p);
      f.min_rtt = TimeNs::millis(i == 0 ? 40 : 80);
      f.ack_jitter = std::make_unique<UniformJitter>(
          TimeNs::zero(), TimeNs::millis(3), 100 + static_cast<uint64_t>(i));
      sc.add_flow(std::move(f));
    }
    sc.run_until(duration);
    // Whole-run averages, matching the paper's measurement.
    table.add_row({"Rm 40/80 ms + jitter", "bbr Rm=40ms (victim)",
                   Table::num(bench::mbps(sc, 0, TimeNs::zero(), duration), 1),
                   "8.3"});
    table.add_row({"Rm 40/80 ms + jitter", "bbr Rm=80ms",
                   Table::num(bench::mbps(sc, 1, TimeNs::zero(), duration), 1),
                   "107"});
    const TimeNs half = duration / 2.0;
    table.add_row({"  (converged half)", "bbr Rm=40ms (victim)",
                   Table::num(bench::mbps(sc, 0, half, duration), 1), "-"});
    table.add_row({"  (converged half)", "bbr Rm=80ms",
                   Table::num(bench::mbps(sc, 1, half, duration), 1), "-"});
  }
  {
    // Control: equal Rm flows share fairly at the §5.2 equilibrium RTT.
    ScenarioConfig cfg;
    cfg.link_rate = Rate::mbps(120);
    Scenario sc(std::move(cfg));
    for (int i = 0; i < 2; ++i) {
      FlowSpec f;
      Bbr::Params p;
      p.seed = 7 + static_cast<uint64_t>(i);
      f.cca = std::make_unique<Bbr>(p);
      f.min_rtt = TimeNs::millis(40);
      f.ack_jitter = std::make_unique<UniformJitter>(
          TimeNs::zero(), TimeNs::millis(3), 100 + static_cast<uint64_t>(i));
      sc.add_flow(std::move(f));
    }
    sc.run_until(duration);
    table.add_row({"control: both Rm=40ms", "bbr #1",
                   Table::num(bench::mbps(sc, 0, TimeNs::zero(), duration), 1),
                   "~60"});
    table.add_row({"control: both Rm=40ms", "bbr #2",
                   Table::num(bench::mbps(sc, 1, TimeNs::zero(), duration), 1),
                   "~60"});
    const double rtt_ms =
        sc.stats(0).rtt_seconds.mean_over(duration / 2.0, duration) * 1e3;
    const double predicted_ms =
        bbr_cwnd_limited_rtt(cfg.link_rate, TimeNs::millis(40), 2, 3.0)
            .to_millis();
    std::printf(
        "\ncwnd-limited equilibrium RTT: measured %.1f ms, theory "
        "2*Rm + n*quanta/C = %.1f ms\n",
        rtt_ms, predicted_ms);
  }

  bench::header("BBR RTT starvation (E5.2)",
                "Section 5.2, 120 Mbit/s shared, Rm 40/80 ms, 60 s");
  table.print(std::cout);
  return 0;
}
