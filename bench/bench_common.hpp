// Shared helpers for the benchmark harnesses. Each bench binary regenerates
// one of the paper's tables or figures and prints the same rows/series the
// paper reports, with the paper's numbers alongside for comparison.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "sim/scenario.hpp"
#include "util/table.hpp"

namespace ccstarve::bench {

inline void header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "reproduces: " << paper_ref << "\n\n";
}

// Throughput of flow `i` over [from, to] in Mbit/s.
inline double mbps(const Scenario& sc, size_t i, TimeNs from, TimeNs to) {
  return sc.throughput(i, from, to).to_mbps();
}

}  // namespace ccstarve::bench
