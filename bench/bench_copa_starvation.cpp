// §5.1: Copa starvation from a single under-estimated min-RTT sample.
//
//   (a) one Copa flow on 120 Mbit/s, Rm = 60 ms; a single packet passes the
//       jitter element 1 ms early -> the paper measured 8 Mbit/s;
//   (b) two Copa flows, only one receives the early packet -> paper:
//       8.8 vs 95 Mbit/s.
//
// Our Copa pins its delay-based default mode (the regime the paper's §5.1
// analysis describes); its competitive-mode heuristic partially masks the
// attack (discussed in EXPERIMENTS.md).
//
// The three scenarios are expressed as sweep-engine flow sets and run in
// parallel (one worker each); "copa-default" is the mode-switching-off,
// long-min-RTT-window Copa the original hand-built params selected. The
// attack jitter delays every packet 1 ms except one early packet at
// t = 150 ms, so the min-RTT filter under-estimates Rm by 1 ms forever
// after; the clean flow sees the same +1 ms on every packet (identical
// effective Rm = 60 ms), just never an early one.
#include "bench_common.hpp"

#include "sweep/engine.hpp"

using namespace ccstarve;

namespace {

constexpr const char* kVictim =
    "copa-default:rtt=59:datajitter=allbutone:1,0.15";
constexpr const char* kClean = "copa-default:rtt=59:datajitter=const:1";

}  // namespace

int main() {
  sweep::SweepGrid grid;
  grid.flow_sets = {
      kVictim,                                // (a) solo victim
      std::string(kVictim) + "+" + kClean,    // (b) victim vs clean
      std::string(kClean) + "+" + kClean,     // control: both clean
  };
  grid.link_mbps = {120};
  grid.duration_s = {60};
  grid.warmup_fraction = 1.0 / 6.0;  // measure over [10 s, 60 s]

  sweep::SweepOptions opt;  // jobs = hardware threads
  const auto outcome = sweep::run_sweep(grid.expand(), opt);

  Table table({"scenario", "flow", "measured Mbit/s", "paper Mbit/s"});
  const auto& solo = outcome.records[0].throughput_mbps;
  const auto& attacked = outcome.records[1].throughput_mbps;
  const auto& control = outcome.records[2].throughput_mbps;
  table.add_row({"solo + 1ms minRTT error", "copa (victim)",
                 Table::num(solo[0], 1), "8"});
  table.add_row({"two flows, one attacked", "copa (victim)",
                 Table::num(attacked[0], 1), "8.8"});
  table.add_row({"two flows, one attacked", "copa (clean)",
                 Table::num(attacked[1], 1), "95"});
  table.add_row({"control: both clean", "copa #1",
                 Table::num(control[0], 1), "~60"});
  table.add_row({"control: both clean", "copa #2",
                 Table::num(control[1], 1), "~60"});

  bench::header("Copa min-RTT starvation (E5.1)",
                "Section 5.1, 120 Mbit/s, Rm = 60 ms, one 59 ms packet");
  table.print(std::cout);
  return 0;
}
