// §5.1: Copa starvation from a single under-estimated min-RTT sample.
//
//   (a) one Copa flow on 120 Mbit/s, Rm = 60 ms; a single packet passes the
//       jitter element 1 ms early -> the paper measured 8 Mbit/s;
//   (b) two Copa flows, only one receives the early packet -> paper:
//       8.8 vs 95 Mbit/s.
//
// Our Copa pins its delay-based default mode (the regime the paper's §5.1
// analysis describes); its competitive-mode heuristic partially masks the
// attack (discussed in EXPERIMENTS.md).
#include "bench_common.hpp"

#include "cc/copa.hpp"
#include "sim/jitter.hpp"

using namespace ccstarve;

namespace {

Copa::Params attack_params() {
  Copa::Params p;
  p.enable_mode_switching = false;
  p.min_rtt_window = TimeNs::seconds(600);  // "min over a long period"
  return p;
}

std::unique_ptr<JitterPolicy> attack_jitter() {
  // Every packet is delayed 1 ms except one early packet: the flow's
  // min-RTT filter under-estimates Rm by 1 ms forever after.
  return std::make_unique<AllButOneJitter>(TimeNs::millis(1),
                                           TimeNs::millis(150));
}

}  // namespace

int main() {
  const TimeNs duration = TimeNs::seconds(60);
  const TimeNs measure_from = TimeNs::seconds(10);
  Table table({"scenario", "flow", "measured Mbit/s", "paper Mbit/s"});

  {
    ScenarioConfig cfg;
    cfg.link_rate = Rate::mbps(120);
    Scenario sc(std::move(cfg));
    FlowSpec f;
    f.cca = std::make_unique<Copa>(attack_params());
    f.min_rtt = TimeNs::millis(59);
    f.data_jitter = attack_jitter();
    sc.add_flow(std::move(f));
    sc.run_until(duration);
    table.add_row({"solo + 1ms minRTT error", "copa (victim)",
                   Table::num(bench::mbps(sc, 0, measure_from, duration), 1),
                   "8"});
  }
  {
    ScenarioConfig cfg;
    cfg.link_rate = Rate::mbps(120);
    Scenario sc(std::move(cfg));
    for (int i = 0; i < 2; ++i) {
      FlowSpec f;
      f.cca = std::make_unique<Copa>(attack_params());
      f.min_rtt = TimeNs::millis(59);
      if (i == 0) {
        f.data_jitter = attack_jitter();
      } else {
        // The clean flow sees the same +1 ms on every packet (so both paths
        // have identical effective Rm = 60 ms), just never an early one.
        f.data_jitter = std::make_unique<ConstantJitter>(TimeNs::millis(1));
      }
      sc.add_flow(std::move(f));
    }
    sc.run_until(duration);
    table.add_row({"two flows, one attacked", "copa (victim)",
                   Table::num(bench::mbps(sc, 0, measure_from, duration), 1),
                   "8.8"});
    table.add_row({"two flows, one attacked", "copa (clean)",
                   Table::num(bench::mbps(sc, 1, measure_from, duration), 1),
                   "95"});
  }
  {
    // Control: both flows clean share fairly and fill the link.
    ScenarioConfig cfg;
    cfg.link_rate = Rate::mbps(120);
    Scenario sc(std::move(cfg));
    for (int i = 0; i < 2; ++i) {
      FlowSpec f;
      f.cca = std::make_unique<Copa>(attack_params());
      f.min_rtt = TimeNs::millis(59);
      f.data_jitter = std::make_unique<ConstantJitter>(TimeNs::millis(1));
      sc.add_flow(std::move(f));
    }
    sc.run_until(duration);
    table.add_row({"control: both clean", "copa #1",
                   Table::num(bench::mbps(sc, 0, measure_from, duration), 1),
                   "~60"});
    table.add_row({"control: both clean", "copa #2",
                   Table::num(bench::mbps(sc, 1, measure_from, duration), 1),
                   "~60"});
  }

  bench::header("Copa min-RTT starvation (E5.1)",
                "Section 5.1, 120 Mbit/s, Rm = 60 ms, one 59 ms packet");
  table.print(std::cout);
  return 0;
}
