// §6.4: explicit signaling. The paper conjectures that ECN — an unambiguous
// congestion signal — avoids the loss-based starvation of §5.4: "if the
// router set ECN bits when the queue exceeds a threshold, and a CCA reacted
// to that and not to small amounts of loss, then it may avoid starvation."
//
// We rerun the §5.4 asymmetric-random-loss experiment with:
//   (a) Allegro (loss-driven)           -> starves, as in §5.4;
//   (b) ECN-Reno + threshold AQM        -> shares fairly: the 2%-loss flow
//       ignores its random losses and reacts only to ECN marks, which both
//       flows see equally;
//   (c) ECN-Reno + RED                  -> same with probabilistic marking.
#include "bench_common.hpp"

#include "cc/allegro.hpp"
#include "cc/ecn_reno.hpp"
#include "sim/aqm.hpp"

using namespace ccstarve;

namespace {

enum class Variant { kAllegro, kEcnThreshold, kEcnRed };

struct Outcome {
  double lossy_mbps;
  double clean_mbps;
  uint64_t ce_marks;
};

Outcome run(Variant variant) {
  const Rate link = Rate::mbps(60);
  const TimeNs rtt = TimeNs::millis(40);
  const uint64_t bdp =
      static_cast<uint64_t>(link.bytes_per_second() * rtt.to_seconds());

  ScenarioConfig cfg;
  cfg.link_rate = link;
  cfg.buffer_bytes = bdp;
  if (variant == Variant::kEcnThreshold) {
    cfg.aqm = std::make_unique<ThresholdEcn>(bdp / 4);
  } else if (variant == Variant::kEcnRed) {
    RedEcn::Params red;
    red.min_threshold_bytes = bdp / 8;
    red.max_threshold_bytes = bdp / 2;
    cfg.aqm = std::make_unique<RedEcn>(red);
  }
  Scenario sc(std::move(cfg));
  for (int i = 0; i < 2; ++i) {
    FlowSpec f;
    if (variant == Variant::kAllegro) {
      Allegro::Params p;
      p.seed = 5 + static_cast<uint64_t>(i);
      f.cca = std::make_unique<Allegro>(p);
    } else {
      f.cca = std::make_unique<EcnReno>();
    }
    f.min_rtt = rtt;
    if (i == 0) {
      f.loss_rate = 0.02;  // the §5.4 asymmetric random loss
      f.loss_seed = 77;
    }
    sc.add_flow(std::move(f));
  }
  sc.run_until(TimeNs::seconds(60));
  Outcome out;
  out.lossy_mbps = bench::mbps(sc, 0, TimeNs::seconds(20), TimeNs::seconds(60));
  out.clean_mbps = bench::mbps(sc, 1, TimeNs::seconds(20), TimeNs::seconds(60));
  out.ce_marks = sc.has_bottleneck() ? sc.link().ce_marks() : 0;
  return out;
}

}  // namespace

int main() {
  bench::header("Explicit signaling avoids loss starvation (E6.4)",
                "Section 6.4: rerun the 5.4 asymmetric-loss setup with "
                "ECN-reacting AIMD + AQM");
  Table t({"CCA / AQM", "2%-loss flow Mbit/s", "clean flow Mbit/s", "ratio",
           "CE marks"});
  struct Row {
    const char* name;
    Variant v;
  };
  for (const Row& row :
       {Row{"allegro / drop-tail (the 5.4 baseline)", Variant::kAllegro},
        Row{"ecn-reno / threshold ECN", Variant::kEcnThreshold},
        Row{"ecn-reno / RED ECN", Variant::kEcnRed}}) {
    const Outcome o = run(row.v);
    t.add_row({row.name, Table::num(o.lossy_mbps, 1),
               Table::num(o.clean_mbps, 1),
               Table::num(o.clean_mbps / std::max(o.lossy_mbps, 1e-3), 2),
               std::to_string(o.ce_marks)});
  }
  t.print(std::cout);
  std::cout << "\nThe ECN-reacting CCA ignores its 2% random loss and backs "
               "off only on marks,\nwhich both flows receive equally: the "
               "asymmetric congestion signal — the paper's\nstarvation "
               "mechanism — is gone.\n";
  return 0;
}
