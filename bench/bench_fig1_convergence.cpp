// Figure 1: ideal-path behavior of delay-convergent CCAs — the RTT
// trajectory enters a bounded "converged region" and stays there. We print
// real trajectories (downsampled) for Vegas and Copa plus the detected
// region bounds.
#include "bench_common.hpp"

#include "cc/copa.hpp"
#include "cc/vegas.hpp"
#include "core/solo.hpp"

using namespace ccstarve;

namespace {

void show(const std::string& name, const CcaMaker& maker) {
  SoloConfig cfg;
  cfg.link_rate = Rate::mbps(20);
  cfg.min_rtt = TimeNs::millis(100);
  cfg.duration = TimeNs::seconds(30);
  cfg.trim_percent = 1.0;
  const SoloResult r = run_solo(maker, cfg);

  std::printf("-- %s on 20 Mbit/s, Rm = 100 ms --\n", name.c_str());
  std::printf("  t(s)  RTT(ms)\n");
  for (double t = 0.25; t <= 30.0; t += 1.5) {
    std::printf("  %5.2f  %7.2f\n", t, r.rtt.at(TimeNs::seconds(t)) * 1e3);
  }
  const auto t_conv =
      convergence_time(r.rtt, r.d_min_s, r.d_max_s, /*tolerance_s=*/0.002);
  std::printf(
      "converged region (last half): [%.2f, %.2f] ms, delta = %.2f ms, "
      "utilization %.1f%%, T = %s\n\n",
      r.d_min_s * 1e3, r.d_max_s * 1e3, r.delta_s() * 1e3,
      100 * r.utilization(),
      t_conv ? t_conv->to_string().c_str() : "not converged");
}

}  // namespace

int main() {
  bench::header("Delay convergence on an ideal path (Fig. 1)",
                "Definition 1: RTT enters [d_min(C), d_max(C)] and stays");
  show("vegas", [] { return std::unique_ptr<Cca>(new Vegas()); });
  show("copa", [] { return std::unique_ptr<Cca>(new Copa()); });
  return 0;
}
