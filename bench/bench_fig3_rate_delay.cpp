// Figures 2-3: rate-delay graphs. For each delay-bounding CCA, sweep the
// ideal-path link rate (Rm = 100 ms fixed) and print the converged delay
// range [d_min, d_max] at each rate — the shaded regions of Figure 3.
//
// Expected shapes (paper):
//   Vegas/FAST: a line (delta = 0) at Rm + alpha/C, approaching Rm;
//   Copa:       a narrow band of width 4*MSS/C;
//   BBR:        pacing mode band [Rm, 1.25*Rm] (we measure slightly above);
//   Vivace:     band [Rm, ~1.05*Rm] at high rates.
//
// Ported onto the sweep engine: each (CCA, link rate) pair is one grid
// point, and all 45 points run in parallel across hardware threads instead
// of 45 serial 60-second solo simulations. The measurement window is the
// last half of the run (the solo runner's converged region), and the
// record's d_min/d_max are the 1%-trimmed RTT extremes over that window.
#include "bench_common.hpp"

#include <cmath>

#include "sweep/engine.hpp"
#include "sweep/spec_parse.hpp"

using namespace ccstarve;

namespace {

std::vector<double> log_grid(double lo_mbps, double hi_mbps, int n) {
  std::vector<double> out;
  for (int i = 0; i < n; ++i) {
    const double frac = n == 1 ? 0.0 : static_cast<double>(i) / (n - 1);
    out.push_back(std::pow(
        10.0, std::log10(lo_mbps) + frac * (std::log10(hi_mbps) -
                                            std::log10(lo_mbps))));
  }
  return out;
}

}  // namespace

int main() {
  bench::header("Rate-delay graphs (Fig. 3)",
                "delay range vs link rate, Rm = 100 ms, ideal path");

  struct Entry {
    std::string name;
    // Vivace's gradient learner is unstable below ~2 Mbit/s in our
    // reimplementation (documented in EXPERIMENTS.md); sweep it over its
    // stable range.
    double min_rate_mbps;
  };
  const std::vector<Entry> ccas = {{"vegas", 0.4},
                                   {"fast", 0.4},
                                   {"copa", 0.4},
                                   {"bbr", 0.4},
                                   {"vivace", 3}};

  // One grid per CCA (the rate axes differ); concatenate the points and run
  // them through the engine as a single parallel batch.
  std::vector<sweep::SweepPoint> points;
  std::vector<size_t> first_point;  // index of each CCA's first point
  for (const Entry& e : ccas) {
    sweep::SweepGrid grid;
    grid.flow_sets = {e.name};
    grid.link_mbps = log_grid(e.min_rate_mbps, 100, 9);
    grid.rtt_ms = {100};
    grid.duration_s = {60};
    grid.warmup_fraction = 0.5;  // converged region = last half of the run
    first_point.push_back(points.size());
    for (auto& p : grid.expand()) points.push_back(std::move(p));
  }

  sweep::SweepOptions opt;  // jobs = hardware threads
  const auto outcome = sweep::run_sweep(points, opt);

  for (size_t c = 0; c < ccas.size(); ++c) {
    Table t({"link rate Mbit/s", "d_min ms", "d_max ms", "delta ms",
             "d_max/Rm", "util"});
    double d_max_bound_ms = 0.0, delta_max_ms = 0.0;
    for (size_t i = first_point[c];
         i < (c + 1 < ccas.size() ? first_point[c + 1] : points.size());
         ++i) {
      const auto& rec = outcome.records[i];
      const double link = points[i].link_mbps;
      const double d_min = rec.d_min_ms[0], d_max = rec.d_max_ms[0];
      t.add_row({Table::num(link, 2), Table::num(d_min, 2),
                 Table::num(d_max, 2), Table::num(d_max - d_min, 2),
                 Table::num(d_max / 100.0, 3),
                 Table::num(rec.utilization, 2)});
      if (link >= 1.0) {  // Definition 1's bounds for C > 1 Mbit/s
        d_max_bound_ms = std::max(d_max_bound_ms, d_max);
        delta_max_ms = std::max(delta_max_ms, d_max - d_min);
      }
    }
    std::cout << "\n-- " << ccas[c].name << " --\n";
    t.print(std::cout);
    std::printf("d_max bound (C > 1 Mbit/s): %.1f ms; delta_max: %.2f ms\n",
                d_max_bound_ms, delta_max_ms);
  }
  std::cout << "\nPaper's delta(C): 0 for Vegas/FAST; 4*MSS/C for Copa; "
               "Rm/4 for BBR (pacing mode); ~Rm/20 for Vivace at high C.\n";
  return 0;
}
