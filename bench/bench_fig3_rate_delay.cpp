// Figures 2-3: rate-delay graphs. For each delay-bounding CCA, sweep the
// ideal-path link rate (Rm = 100 ms fixed) and print the converged delay
// range [d_min, d_max] at each rate — the shaded regions of Figure 3.
//
// Expected shapes (paper):
//   Vegas/FAST: a line (delta = 0) at Rm + alpha/C, approaching Rm;
//   Copa:       a narrow band of width 4*MSS/C;
//   BBR:        pacing mode band [Rm, 1.25*Rm] (we measure slightly above);
//   Vivace:     band [Rm, ~1.05*Rm] at high rates.
#include "bench_common.hpp"

#include "cc/bbr.hpp"
#include "cc/copa.hpp"
#include "cc/fast.hpp"
#include "cc/vegas.hpp"
#include "cc/vivace.hpp"
#include "core/rate_delay.hpp"

using namespace ccstarve;

int main() {
  bench::header("Rate-delay graphs (Fig. 3)",
                "delay range vs link rate, Rm = 100 ms, ideal path");

  struct Entry {
    std::string name;
    CcaMaker make;
    // Vivace's gradient learner is unstable below ~2 Mbit/s in our
    // reimplementation (documented in EXPERIMENTS.md); sweep it over its
    // stable range.
    Rate min_rate;
  };
  const std::vector<Entry> ccas = {
      {"vegas", [] { return std::unique_ptr<Cca>(new Vegas()); },
       Rate::mbps(0.4)},
      {"fast", [] { return std::unique_ptr<Cca>(new FastTcp()); },
       Rate::mbps(0.4)},
      {"copa", [] { return std::unique_ptr<Cca>(new Copa()); },
       Rate::mbps(0.4)},
      {"bbr", [] { return std::unique_ptr<Cca>(new Bbr()); },
       Rate::mbps(0.4)},
      {"vivace", [] { return std::unique_ptr<Cca>(new Vivace()); },
       Rate::mbps(3)},
  };

  for (const Entry& e : ccas) {
    RateDelaySweepConfig cfg;
    cfg.min_rate = e.min_rate;
    cfg.max_rate = Rate::mbps(100);
    cfg.points = 9;
    cfg.min_rtt = TimeNs::millis(100);
    cfg.duration = TimeNs::seconds(60);
    const auto sweep = rate_delay_sweep(e.make, cfg);

    Table t({"link rate Mbit/s", "d_min ms", "d_max ms", "delta ms",
             "d_max/Rm", "util"});
    for (const auto& p : sweep) {
      t.add_row({Table::num(p.link_rate.to_mbps(), 2),
                 Table::num(p.d_min_s * 1e3, 2),
                 Table::num(p.d_max_s * 1e3, 2),
                 Table::num(p.delta_s() * 1e3, 2),
                 Table::num(p.d_max_s / 0.1, 3),
                 Table::num(p.utilization, 2)});
    }
    const DelayBounds b = delay_bounds(sweep, Rate::mbps(1));
    std::cout << "\n-- " << e.name << " --\n";
    t.print(std::cout);
    std::printf("d_max bound (C > 1 Mbit/s): %.1f ms; delta_max: %.2f ms\n",
                b.d_max_s * 1e3, b.delta_max_s * 1e3);
  }
  std::cout << "\nPaper's delta(C): 0 for Vegas/FAST; 4*MSS/C for Copa; "
               "Rm/4 for BBR (pacing mode); ~Rm/20 for Vivace at high C.\n";
  return 0;
}
