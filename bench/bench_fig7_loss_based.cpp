// Figure 7: cwnd evolution of two loss-based flows (Reno, Cubic) on a
// 6 Mbit/s, 120 ms link with 60 packets of buffer; one receiver delays ACKs
// up to 4 packets. Paper: throughput ratios 2.7x (Reno) and 3.2x (Cubic) —
// bounded unfairness, not starvation.
//
// Prints the cwnd time series (the figure's two panels) downsampled, plus
// the throughput ratio row.
#include "bench_common.hpp"

#include "cc/cubic.hpp"
#include "cc/reno.hpp"

using namespace ccstarve;

namespace {

void run_one(const std::string& name, bool cubic, Table& summary) {
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(6);
  cfg.buffer_bytes = 60ull * kMss;
  Scenario sc(std::move(cfg));
  for (int i = 0; i < 2; ++i) {
    FlowSpec f;
    if (cubic) {
      f.cca = std::make_unique<Cubic>();
    } else {
      f.cca = std::make_unique<NewReno>();
    }
    f.min_rtt = TimeNs::millis(120);
    if (i == 0) f.ack_policy.ack_every = 4;  // delayed ACKs of up to 4
    f.stats_interval = TimeNs::millis(200);
    sc.add_flow(std::move(f));
  }
  sc.run_until(TimeNs::seconds(200));

  std::printf("%s cwnd evolution (packets), delayed-ACK flow vs per-packet "
              "flow:\n  t(s)   delack4   perpkt\n",
              name.c_str());
  for (double t = 10; t <= 200; t += 19) {
    std::printf("  %4.0f  %8.1f %8.1f\n", t,
                sc.stats(0).cwnd_bytes.at(TimeNs::seconds(t)) / kMss,
                sc.stats(1).cwnd_bytes.at(TimeNs::seconds(t)) / kMss);
  }
  const double bursty = bench::mbps(sc, 0, TimeNs::zero(), sc.sim().now());
  const double paced = bench::mbps(sc, 1, TimeNs::zero(), sc.sim().now());
  summary.add_row({name, Table::num(bursty, 2), Table::num(paced, 2),
                   Table::num(paced / bursty, 2),
                   cubic ? "3.2" : "2.7"});
}

}  // namespace

int main() {
  bench::header("Loss-based CCAs with delayed ACKs (Fig. 7)",
                "6 Mbit/s, 120 ms, 60 pkt buffer, one receiver ACKs every "
                "4th segment");
  Table summary({"CCA", "delack4 Mbit/s", "per-pkt Mbit/s", "ratio",
                 "paper ratio"});
  run_one("reno", false, summary);
  std::printf("\n");
  run_one("cubic", true, summary);
  std::printf("\n");
  summary.print(std::cout);
  std::cout << "\nKey claim preserved: the unfairness is BOUNDED (a small "
               "constant factor),\nunlike the delay-convergent CCAs' "
               "starvation in E5.1-E5.4.\n";
  return 0;
}
