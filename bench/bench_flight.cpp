// Probe-overhead benchmark for the flight recorder (src/obs/flight).
//
// For each registry bench scenario (1, 4 and 16 flows; check/scenarios.hpp
// bench_specs()) the identical run is timed three ways:
//
//   * detached — no probe attached; the flight seam costs one untaken
//     branch per hook site. events/sec here is directly comparable to the
//     scenario rows of BENCH_simcore.json (acceptance: within 1%).
//   * attached — a FlightRecorder with trigger=always at the default
//     32768-event per-flow ring, recording every typed event into the
//     bounded rings (acceptance: <= 10% overhead).
//   * attached+export — the same recorder plus a full Chrome-trace export
//     to an in-memory stream after the run, the --flight=... cost.
//
// Each configuration runs `reps` times interleaved and the best
// (least-interference) events/sec is kept. Results go to BENCH_flight.json.
//
// Usage: bench_flight [--quick] [--reps N] [--out PATH]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/scenarios.hpp"
#include "obs/flight.hpp"
#include "obs/flight_export.hpp"
#include "sim/scenario.hpp"
#include "util/time.hpp"

namespace ccstarve {
namespace {

double wall_seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

enum class Mode { kDetached, kAttached, kAttachedExport };

struct RunResult {
  double events_per_sec = 0;
  uint64_t events = 0;
  uint64_t recorded = 0;
  size_t export_bytes = 0;
};

RunResult run_once(const golden::GoldenSpec& b, double sim_seconds,
                   EventPool* pool, Mode mode) {
  auto sc = golden::build_golden(b, pool);

  obs::FlightConfig fc;
  fc.trigger = obs::FlightTrigger::kAlways;
  obs::FlightRecorder flight(std::move(fc));
  if (mode != Mode::kDetached) flight.attach(*sc);

  const auto start = std::chrono::steady_clock::now();
  sc->run_until(TimeNs::seconds(sim_seconds));
  std::ostringstream exported;
  if (mode == Mode::kAttachedExport) {
    obs::write_chrome_trace(exported, flight);
  }
  const double wall = wall_seconds_since(start);

  RunResult r;
  r.events = sc->sim().events_processed();
  r.events_per_sec = static_cast<double>(r.events) / wall;
  r.recorded = flight.recorded();
  r.export_bytes = exported.str().size();
  return r;
}

}  // namespace
}  // namespace ccstarve

int main(int argc, char** argv) {
  using namespace ccstarve;
  bool quick = false;
  int reps_override = 0;
  std::string out = "BENCH_flight.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps_override = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--reps N] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::vector<golden::GoldenSpec> kScenarios = golden::bench_specs();
  const double sim_seconds = quick ? 2.0 : 8.0;
  // Individual timed runs are tens of milliseconds; on a shared machine
  // the best-of estimator needs enough repetitions to catch
  // interference-free slices, so --reps is worth raising when the box is
  // busy.
  const int reps = reps_override > 0 ? reps_override : (quick ? 3 : 5);

  struct Row {
    std::string name;
    size_t flows = 0;
    RunResult detached, attached, exported;
  };
  std::vector<Row> rows;

  for (const golden::GoldenSpec& b : kScenarios) {
    // Warm the pool and the code on a short prefix before any timed run.
    EventPool pool;
    golden::build_golden(b, &pool)->run_until(TimeNs::millis(200));

    Row row;
    row.name = b.name;
    // Interleave the three configurations within each repetition so shared-
    // machine noise hits all of them alike; keep the fastest of each (the
    // least-interference estimate).
    for (int r = 0; r < reps; ++r) {
      auto keep = [](RunResult* best, RunResult cur) {
        if (cur.events_per_sec > best->events_per_sec) *best = cur;
      };
      keep(&row.detached, run_once(b, sim_seconds, &pool, Mode::kDetached));
      keep(&row.attached, run_once(b, sim_seconds, &pool, Mode::kAttached));
      keep(&row.exported,
           run_once(b, sim_seconds, &pool, Mode::kAttachedExport));
    }
    row.flows = golden::build_golden(b, &pool)->flow_count();

    const double ovr_att = 100.0 * (1.0 - row.attached.events_per_sec /
                                              row.detached.events_per_sec);
    const double ovr_ex = 100.0 * (1.0 - row.exported.events_per_sec /
                                             row.detached.events_per_sec);
    std::printf(
        "%-9s %2zu flows: detached %9.0f ev/s  attached %9.0f ev/s "
        "(%+5.2f%%)  +export %9.0f ev/s (%+5.2f%%)  %llu recorded\n",
        row.name.c_str(), row.flows, row.detached.events_per_sec,
        row.attached.events_per_sec, ovr_att, row.exported.events_per_sec,
        ovr_ex, static_cast<unsigned long long>(row.attached.recorded));
    rows.push_back(std::move(row));
  }

  std::ofstream os(out);
  os << "{\n  \"quick\": " << (quick ? "true" : "false")
     << ",\n  \"trigger\": \"always\",\n  \"scenarios\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double ovr_att =
        100.0 * (1.0 - r.attached.events_per_sec / r.detached.events_per_sec);
    const double ovr_ex =
        100.0 * (1.0 - r.exported.events_per_sec / r.detached.events_per_sec);
    os << "    {\"name\": \"" << r.name << "\", \"flows\": " << r.flows
       << ", \"sim_seconds\": " << sim_seconds
       << ", \"detached_events_per_sec\": " << r.detached.events_per_sec
       << ", \"attached_events_per_sec\": " << r.attached.events_per_sec
       << ", \"attached_export_events_per_sec\": " << r.exported.events_per_sec
       << ", \"overhead_attached_pct\": " << ovr_att
       << ", \"overhead_export_pct\": " << ovr_ex
       << ", \"events\": " << r.detached.events
       << ", \"recorded\": " << r.attached.recorded
       << ", \"export_bytes\": " << r.exported.export_bytes << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  os.close();
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
