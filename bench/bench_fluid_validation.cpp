// Cross-validation: fluid (ODE) equilibria vs closed forms vs the
// packet-level emulator. This is the evidence that our three views of each
// CCA — the paper's §5 algebra, the ODE dynamics, and the packet
// implementation — agree on the fixed points.
#include "bench_common.hpp"

#include "cc/bbr.hpp"
#include "cc/vegas.hpp"
#include "core/equilibrium.hpp"
#include "core/fluid.hpp"
#include "core/solo.hpp"
#include "sim/jitter.hpp"

using namespace ccstarve;

int main() {
  bench::header("Fluid / closed-form / packet cross-validation",
                "equilibrium RTTs from three independent views of each CCA");

  Table t({"scenario", "closed form", "fluid ODE", "packet emulator"});

  {
    // Vegas solo, 10 Mbit/s, Rm = 100 ms.
    const double closed =
        vegas_equilibrium_rtt(Rate::mbps(10), TimeNs::millis(100), 1, 4)
            .to_millis();
    FluidFlowSpec f;
    f.cca = std::make_shared<FluidVegas>(4.0, TimeNs::millis(100));
    FluidConfig fc;
    fc.link_rate = Rate::mbps(10);
    const FluidResult fr = run_fluid({f}, fc);
    SoloConfig sc;
    sc.link_rate = Rate::mbps(10);
    sc.min_rtt = TimeNs::millis(100);
    sc.duration = TimeNs::seconds(40);
    const SoloResult pr =
        run_solo([] { return std::unique_ptr<Cca>(new Vegas()); }, sc);
    t.add_row({"vegas RTT @10Mbit/s (ms)", Table::num(closed, 1),
               Table::num(fr.final_rtt_s[0] * 1e3, 1),
               Table::num(pr.d_min_s * 1e3, 1) + "-" +
                   Table::num(pr.d_max_s * 1e3, 1)});
  }
  {
    // BBR cwnd-limited pair, 20 Mbit/s, Rm = 40 ms.
    const double closed =
        bbr_cwnd_limited_rtt(Rate::mbps(20), TimeNs::millis(40), 2, 3.0)
            .to_millis();
    FluidFlowSpec a, b;
    a.cca = b.cca =
        std::make_shared<FluidBbrCwndLimited>(3.0, TimeNs::millis(40));
    a.rm = b.rm = TimeNs::millis(40);
    a.eta = b.eta = TimeNs::millis(40);
    FluidConfig fc;
    fc.link_rate = Rate::mbps(20);
    const FluidResult fr = run_fluid({a, b}, fc);

    ScenarioConfig cfg;
    cfg.link_rate = Rate::mbps(20);
    Scenario sc(std::move(cfg));
    for (int i = 0; i < 2; ++i) {
      FlowSpec f;
      Bbr::Params p;
      p.seed = 7 + static_cast<uint64_t>(i);
      f.cca = std::make_unique<Bbr>(p);
      f.min_rtt = TimeNs::millis(40);
      f.ack_jitter = std::make_unique<UniformJitter>(
          TimeNs::zero(), TimeNs::millis(3), 100 + static_cast<uint64_t>(i));
      sc.add_flow(std::move(f));
    }
    sc.run_until(TimeNs::seconds(60));
    const double measured =
        sc.stats(0).rtt_seconds.mean_over(TimeNs::seconds(30),
                                          TimeNs::seconds(60)) *
        1e3;
    t.add_row({"bbr cwnd-limited RTT, 2 flows (ms)", Table::num(closed, 1),
               Table::num(fr.final_rtt_s[0] * 1e3, 1),
               Table::num(measured, 1)});
  }
  {
    // Vegas + constant 10 ms eta on one of two flows: victim rate.
    FluidFlowSpec victim, clean;
    victim.cca = clean.cca =
        std::make_shared<FluidVegas>(4.0, TimeNs::millis(100));
    victim.eta = TimeNs::millis(10);
    FluidConfig fc;
    fc.link_rate = Rate::mbps(50);
    fc.duration = TimeNs::seconds(120);
    const FluidResult fr = run_fluid({victim, clean}, fc);

    ScenarioConfig cfg;
    cfg.link_rate = Rate::mbps(50);
    Scenario sc(std::move(cfg));
    for (int i = 0; i < 2; ++i) {
      FlowSpec f;
      f.cca = std::make_unique<Vegas>();
      f.min_rtt = TimeNs::millis(100);
      if (i == 0) {
        // Switch the 10 ms on after the baseline is learned, so it is a
        // phantom (unrecognized) offset like the fluid model's eta.
        f.ack_jitter = std::make_unique<StepJitter>(TimeNs::millis(10),
                                                    TimeNs::seconds(2));
      }
      sc.add_flow(std::move(f));
    }
    sc.run_until(TimeNs::seconds(60));
    t.add_row(
        {"vegas victim rate, eta=10ms (Mbit/s)", "~alpha/(q+eta)",
         Table::num(fr.final_rate_mbps[0], 2),
         Table::num(
             bench::mbps(sc, 0, TimeNs::seconds(30), TimeNs::seconds(60)),
             2)});
  }
  t.print(std::cout);
  std::cout << "\n(The packet emulator adds transmission-time granularity "
               "and probing artifacts the\nfluid limit abstracts away; the "
               "fixed points line up.)\n";
  return 0;
}
