// Cross-validation: fluid (ODE) equilibria vs closed forms vs the
// packet-level emulator. This is the evidence that our three views of each
// CCA — the paper's §5 algebra, the ODE dynamics, and the packet
// implementation — agree on the fixed points, and therefore the foundation
// the fast-forward engine (sim/warp) stands on: a warp is only sound when
// the fluid model it integrates across the gap describes the same
// equilibrium the packet simulation holds.
//
// Each case reports an equilibrium quantity from all three views plus the
// fluid-vs-packet relative error; the run fails if any error exceeds the
// per-case tolerance. Results land in a JSON artifact (default
// BENCH_fluid.json) that CI uploads alongside the wall-clock benches.
//
// Usage: bench_fluid_validation [--quick] [--out PATH]
#include "bench_common.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <vector>

#include "cc/bbr.hpp"
#include "cc/copa.hpp"
#include "cc/vegas.hpp"
#include "core/equilibrium.hpp"
#include "core/fluid.hpp"
#include "core/solo.hpp"
#include "sim/jitter.hpp"

using namespace ccstarve;

namespace {

struct Case {
  std::string name;
  std::string closed_form;  // printable closed-form value (or formula)
  double fluid = 0.0;       // fluid-ODE equilibrium value
  double packet = 0.0;      // packet-emulator equilibrium value
  double tolerance = 0.0;   // max acceptable |fluid-packet|/packet
  double rel_err() const {
    return std::abs(fluid - packet) / std::max(std::abs(packet), 1e-12);
  }
  bool ok() const { return rel_err() <= tolerance; }
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_fluid.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  const double scale = quick ? 0.35 : 1.0;

  bench::header("Fluid / closed-form / packet cross-validation",
                "equilibrium RTTs from three independent views of each CCA");

  std::vector<Case> cases;

  {
    // Vegas solo, 10 Mbit/s, Rm = 100 ms.
    Case c;
    c.name = "vegas solo RTT @10Mbit/s (ms)";
    c.tolerance = 0.05;
    c.closed_form = Table::num(
        vegas_equilibrium_rtt(Rate::mbps(10), TimeNs::millis(100), 1, 4)
            .to_millis(),
        1);
    FluidFlowSpec f;
    f.cca = std::make_shared<FluidVegas>(4.0, TimeNs::millis(100));
    FluidConfig fc;
    fc.link_rate = Rate::mbps(10);
    fc.duration = TimeNs::seconds(60 * scale);
    c.fluid = run_fluid({f}, fc).final_rtt_s[0] * 1e3;
    SoloConfig sc;
    sc.link_rate = Rate::mbps(10);
    sc.min_rtt = TimeNs::millis(100);
    sc.duration = TimeNs::seconds(40 * scale);
    const SoloResult pr =
        run_solo([] { return std::unique_ptr<Cca>(new Vegas()); }, sc);
    c.packet = 0.5 * (pr.d_min_s + pr.d_max_s) * 1e3;
    cases.push_back(std::move(c));
  }
  {
    // BBR cwnd-limited pair, 20 Mbit/s, Rm = 40 ms.
    Case c;
    c.name = "bbr cwnd-limited RTT, 2 flows (ms)";
    c.tolerance = 0.10;
    c.closed_form = Table::num(
        bbr_cwnd_limited_rtt(Rate::mbps(20), TimeNs::millis(40), 2, 3.0)
            .to_millis(),
        1);
    FluidFlowSpec a, b;
    a.cca = b.cca =
        std::make_shared<FluidBbrCwndLimited>(3.0, TimeNs::millis(40));
    a.rm = b.rm = TimeNs::millis(40);
    a.eta = b.eta = TimeNs::millis(40);
    FluidConfig fc;
    fc.link_rate = Rate::mbps(20);
    fc.duration = TimeNs::seconds(60 * scale);
    c.fluid = run_fluid({a, b}, fc).final_rtt_s[0] * 1e3;

    ScenarioConfig cfg;
    cfg.link_rate = Rate::mbps(20);
    Scenario sc(std::move(cfg));
    for (int i = 0; i < 2; ++i) {
      FlowSpec f;
      Bbr::Params p;
      p.seed = 7 + static_cast<uint64_t>(i);
      f.cca = std::make_unique<Bbr>(p);
      f.min_rtt = TimeNs::millis(40);
      f.ack_jitter = std::make_unique<UniformJitter>(
          TimeNs::zero(), TimeNs::millis(3), 100 + static_cast<uint64_t>(i));
      sc.add_flow(std::move(f));
    }
    const TimeNs dur = TimeNs::seconds(60 * scale);
    sc.run_until(dur);
    c.packet = sc.stats(0).rtt_seconds.mean_over(dur * 0.5, dur) * 1e3;
    cases.push_back(std::move(c));
  }
  {
    // Copa pair, 48 Mbit/s: equilibrium queueing delay ~ N/(delta*C)
    // packets' worth. Compared as mean RTT.
    Case c;
    c.name = "copa RTT, 2 flows @48Mbit/s (ms)";
    c.tolerance = 0.05;
    const double rm_ms = 40.0;
    const double q_ms =
        2.0 * kMss / (0.5 * Rate::mbps(48).bytes_per_second()) * 1e3;
    c.closed_form = Table::num(rm_ms + q_ms, 2) + " (Rm+N*MSS/(d*C))";
    FluidFlowSpec a, b;
    a.cca = b.cca = std::make_shared<FluidCopa>(0.5, TimeNs::millis(40));
    a.rm = b.rm = TimeNs::millis(40);
    FluidConfig fc;
    fc.link_rate = Rate::mbps(48);
    fc.duration = TimeNs::seconds(60 * scale);
    c.fluid = run_fluid({a, b}, fc).final_rtt_s[0] * 1e3;

    ScenarioConfig cfg;
    cfg.link_rate = Rate::mbps(48);
    Scenario sc(std::move(cfg));
    for (int i = 0; i < 2; ++i) {
      FlowSpec f;
      f.cca = std::make_unique<Copa>();
      f.min_rtt = TimeNs::millis(40);
      sc.add_flow(std::move(f));
    }
    const TimeNs dur = TimeNs::seconds(60 * scale);
    sc.run_until(dur);
    c.packet = sc.stats(0).rtt_seconds.mean_over(dur * 0.5, dur) * 1e3;
    cases.push_back(std::move(c));
  }
  {
    // Vegas + constant 10 ms eta on one of two flows: victim rate. This is
    // the paper's starvation mechanism and the fluid eta term the warp
    // engine derives from JitterPolicy::warp_caps.
    Case c;
    c.name = "vegas victim rate, eta=10ms (Mbit/s)";
    c.tolerance = 0.15;
    c.closed_form = "~alpha/(q+eta)";
    // Not scaled by --quick: starvation takes tens of seconds of simulated
    // time to develop, and the whole case costs well under a second.
    //
    // The fluid victim mirrors the packet history: Vegas holds cwnd inside
    // the [alpha, beta] backlog band, and a flow that converged *before*
    // the jitter onset decays from above, parking at backlog ~ beta — so
    // the fluid model uses the band and starts from the pre-onset fair
    // share rather than growing from slow-start (which would park at
    // alpha, a different but equally legal band equilibrium).
    FluidFlowSpec victim, clean;
    victim.cca = clean.cca = std::make_shared<FluidVegas>(
        4.0, TimeNs::millis(100), 1.0, Vegas::Params{}.beta_pkts);
    victim.eta = TimeNs::millis(10);
    victim.initial_window_bytes = clean.initial_window_bytes =
        0.5 * Rate::mbps(50).bytes_per_second() * 0.1;  // fair share @ Rm
    FluidConfig fc;
    fc.link_rate = Rate::mbps(50);
    fc.duration = TimeNs::seconds(120);
    c.fluid = run_fluid({victim, clean}, fc).final_rate_mbps[0];

    ScenarioConfig cfg;
    cfg.link_rate = Rate::mbps(50);
    Scenario sc(std::move(cfg));
    for (int i = 0; i < 2; ++i) {
      FlowSpec f;
      f.cca = std::make_unique<Vegas>();
      f.min_rtt = TimeNs::millis(100);
      if (i == 0) {
        // Switch the 10 ms on after the baseline is learned, so it is a
        // phantom (unrecognized) offset like the fluid model's eta.
        f.ack_jitter = std::make_unique<StepJitter>(TimeNs::millis(10),
                                                    TimeNs::seconds(2));
      }
      sc.add_flow(std::move(f));
    }
    const TimeNs dur = TimeNs::seconds(120);
    sc.run_until(dur);
    c.packet = bench::mbps(sc, 0, dur * 0.75, dur);
    cases.push_back(std::move(c));
  }

  Table t({"scenario", "closed form", "fluid ODE", "packet emulator",
           "rel err", "ok"});
  double max_rel_err = 0.0;
  bool all_ok = true;
  for (const auto& c : cases) {
    t.add_row({c.name, c.closed_form, Table::num(c.fluid, 2),
               Table::num(c.packet, 2), Table::num(c.rel_err() * 100, 1) + "%",
               c.ok() ? "yes" : "NO"});
    max_rel_err = std::max(max_rel_err, c.rel_err());
    all_ok = all_ok && c.ok();
  }
  t.print(std::cout);
  std::cout << "\n(The packet emulator adds transmission-time granularity "
               "and probing artifacts the\nfluid limit abstracts away; the "
               "fixed points line up.)\n";

  std::ofstream os(out);
  os << "{\n  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"max_rel_err\": " << max_rel_err << ",\n"
     << "  \"all_ok\": " << (all_ok ? "true" : "false") << ",\n"
     << "  \"cases\": [\n";
  for (size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    os << "    {\"name\": \"" << c.name << "\", \"fluid\": " << c.fluid
       << ", \"packet\": " << c.packet << ", \"rel_err\": " << c.rel_err()
       << ", \"tolerance\": " << c.tolerance
       << ", \"ok\": " << (c.ok() ? "true" : "false") << "}"
       << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  os.close();
  std::printf("wrote %s\n", out.c_str());

  if (!all_ok) {
    std::fprintf(stderr,
                 "FAIL: fluid/packet equilibrium disagreement above "
                 "tolerance\n");
    return 1;
  }
  return 0;
}
