// Many-flow scale-out benchmark: 1k-10k flows through one bottleneck.
//
// Sweeps N in {16, 64, 256, 1000, 4000, 10000} identical-share flows (1
// Mbps per flow, 40 ms RTT, 2 BDP drop-tail) for Copa, BBR and Vegas,
// with starts staggered over the first second so the cohort does not
// synchronize at t=0. Each row runs with a FlowTelemetry probe attached:
// besides events/sec and packets/sec it reports the starved-pair fraction
// (obs/starvation.hpp) — exhaustive pair tracking through 128 flows,
// deterministic sampling beyond — giving the starvation-vs-N curve per CCA.
//
// The flow-table transport (sim/flow_table.hpp) is what makes this run at
// memory bandwidth: the bench asserts that per-event cost degrades by at
// most 4x between 16 and 1000 flows, so an accidental O(N) per-event
// regression fails the run rather than just slowing it down.
//
// Usage: bench_manyflow [--quick] [--out PATH]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"
#include "sim/scenario.hpp"
#include "sweep/spec_parse.hpp"
#include "util/time.hpp"

namespace ccstarve {
namespace {

double wall_seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Row {
  std::string cca;
  size_t flows = 0;
  double sim_seconds = 0;
  double wall_seconds = 0;
  uint64_t events = 0;
  uint64_t packets = 0;
  bool engaged = false;
  bool sampled = false;
  size_t tracked_pairs = 0;
  double starved_pair_fraction = 0;
};

Row run_cohort(const std::string& cca, size_t flows, double sim_seconds,
               EventPool* pool) {
  // 1 Mbps of fair share per flow at every N, 40 ms RTT, 2 BDP of
  // drop-tail buffer. Keeping the per-flow share constant keeps the
  // per-flow event mix identical across cohort sizes, so the 16 -> 1000
  // comparison below isolates the cost of *more flows* (state footprint)
  // from the cost of *fatter flows* (more packets in flight each).
  const double link_mbps = static_cast<double>(flows);
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(link_mbps);
  cfg.buffer_bytes = static_cast<uint64_t>(
      2.0 * Rate::mbps(link_mbps).bytes_per_second() * 0.040);
  cfg.event_pool = pool;
  Scenario sc(std::move(cfg));
  for (size_t i = 0; i < flows; ++i) {
    FlowSpec f;
    f.cca = sweep::make_cca(cca, 7 + i);
    f.min_rtt = TimeNs::millis(40);
    // Stagger starts across the first second so 10k flows do not slam the
    // bottleneck in the same nanosecond.
    f.start_at = TimeNs(static_cast<int64_t>(i) * 1'000'000'000 /
                        static_cast<int64_t>(flows));
    sc.add_flow(std::move(f));
  }

  obs::TelemetryConfig tc;
  tc.interval = TimeNs::millis(10);
  tc.ratio_window = TimeNs::seconds(1);
  obs::FlowTelemetry telemetry(std::move(tc));
  telemetry.attach(sc);

  const auto start = std::chrono::steady_clock::now();
  sc.run_until(TimeNs::seconds(sim_seconds));
  telemetry.finish(TimeNs::seconds(sim_seconds));

  Row row;
  row.wall_seconds = wall_seconds_since(start);
  row.cca = cca;
  row.flows = flows;
  row.sim_seconds = sim_seconds;
  row.events = sc.sim().events_processed();
  for (size_t i = 0; i < flows; ++i) {
    row.packets += sc.sender(i).packets_sent();
  }
  const obs::StarvationDetector& d = telemetry.starvation();
  row.engaged = d.engaged();
  row.sampled = d.sampled();
  row.tracked_pairs = d.tracked_pair_count();
  row.starved_pair_fraction = d.starved_pair_fraction();
  return row;
}

}  // namespace
}  // namespace ccstarve

int main(int argc, char** argv) {
  using namespace ccstarve;
  bool quick = false;
  std::string out = "BENCH_manyflow.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<std::string> kCcas = {"copa", "bbr", "vegas"};
  const std::vector<size_t> kFlowCounts =
      quick ? std::vector<size_t>{16, 64, 256, 1000}
            : std::vector<size_t>{16, 64, 256, 1000, 4000, 10000};
  const double sim_seconds = quick ? 2.0 : 8.0;

  EventPool pool;
  std::vector<Row> rows;
  // events/sec keyed by (cca, flows) for the scaling assertion below.
  std::map<std::pair<std::string, size_t>, double> rates;
  for (const std::string& cca : kCcas) {
    for (size_t n : kFlowCounts) {
      rows.push_back(run_cohort(cca, n, sim_seconds, &pool));
      const Row& r = rows.back();
      const double eps = r.events / r.wall_seconds;
      rates[{cca, n}] = eps;
      std::printf(
          "%-6s %6zu flows: %9.0f events/s  %9.0f packets/s  "
          "%5.1f sim-s/wall-s  starved-pair %.4f%s\n",
          r.cca.c_str(), r.flows, eps, r.packets / r.wall_seconds,
          r.sim_seconds / r.wall_seconds, r.starved_pair_fraction,
          r.sampled ? " (sampled)" : "");
    }
  }

  // Scaling gate: the flow-table transport must keep per-event cost flat in
  // N — a 1000-flow cohort may dispatch events at most 4x slower than the
  // 16-flow one. An O(N)-per-event regression shows up here as ~60x.
  bool scaling_ok = true;
  for (const std::string& cca : kCcas) {
    const double r16 = rates[{cca, 16}];
    const double r1k = rates[{cca, 1000}];
    const double degradation = r16 / r1k;
    std::printf("%-6s scaling 16 -> 1000 flows: %.2fx slower (limit 4x)\n",
                cca.c_str(), degradation);
    if (r1k * 4.0 < r16) scaling_ok = false;
  }

  std::ofstream os(out);
  os << "{\n  \"quick\": " << (quick ? "true" : "false")
     << ",\n  \"scaling_ok\": " << (scaling_ok ? "true" : "false")
     << ",\n  \"scenarios\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"cca\": \"" << r.cca << "\", \"flows\": " << r.flows
       << ", \"sim_seconds\": " << r.sim_seconds
       << ", \"wall_seconds\": " << r.wall_seconds
       << ", \"events\": " << r.events
       << ", \"events_per_sec\": " << r.events / r.wall_seconds
       << ", \"packets\": " << r.packets
       << ", \"packets_per_sec\": " << r.packets / r.wall_seconds
       << ", \"sim_per_wall\": " << r.sim_seconds / r.wall_seconds
       << ", \"engaged\": " << (r.engaged ? "true" : "false")
       << ", \"tracked_pairs\": " << r.tracked_pairs
       << ", \"sampled\": " << (r.sampled ? "true" : "false")
       << ", \"starved_pair_fraction\": " << r.starved_pair_fraction << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  os.close();
  std::printf("wrote %s\n", out.c_str());
  if (!scaling_ok) {
    std::fprintf(stderr, "FAIL: events/sec degraded more than 4x from 16 to "
                         "1000 flows\n");
    return 1;
  }
  return 0;
}
