// Microbenchmarks (google-benchmark): cost of the emulator primitives —
// event queue throughput, bottleneck service, CCA on_ack processing, and
// end-to-end simulated-seconds-per-wall-second for a loaded scenario.
#include <benchmark/benchmark.h>

#include <memory>

#include "cc/bbr.hpp"
#include "cc/copa.hpp"
#include "cc/vegas.hpp"
#include "cc/vivace.hpp"
#include "sim/link.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"

namespace ccstarve {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(TimeNs::micros(i * 7 % 500), [&sink] { ++sink; });
    }
    sim.run_until(TimeNs::seconds(1));
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_BottleneckService(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    NullHandler sink;
    BottleneckLink::Config cfg;
    cfg.rate = Rate::gbps(1);
    BottleneckLink link(sim, cfg, sink);
    for (int i = 0; i < 500; ++i) link.handle(Packet{});
    sim.run_until(TimeNs::seconds(1));
    benchmark::DoNotOptimize(link.delivered_packets());
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_BottleneckService);

template <typename CcaT>
void BM_CcaOnAck(benchmark::State& state) {
  CcaT cca;
  AckSample ack;
  ack.rtt = TimeNs::millis(50);
  uint64_t delivered = 0;
  int64_t t = 0;
  for (auto _ : state) {
    t += 100'000;
    delivered += kMss;
    ack.now = TimeNs::nanos(t);
    ack.sent_at = ack.now - ack.rtt;
    ack.newly_acked_bytes = kMss;
    ack.delivered_bytes = delivered;
    ack.acked_seq = delivered;
    cca.on_ack(ack);
    benchmark::DoNotOptimize(cca.cwnd_bytes());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CcaOnAck<Vegas>);
BENCHMARK(BM_CcaOnAck<Copa>);
BENCHMARK(BM_CcaOnAck<Bbr>);
BENCHMARK(BM_CcaOnAck<Vivace>);

void BM_ScenarioSimSecondsPerWallSecond(benchmark::State& state) {
  for (auto _ : state) {
    ScenarioConfig cfg;
    cfg.link_rate = Rate::mbps(50);
    Scenario sc(std::move(cfg));
    FlowSpec f;
    f.cca = std::make_unique<Copa>();
    f.min_rtt = TimeNs::millis(50);
    sc.add_flow(std::move(f));
    sc.run_until(TimeNs::seconds(2));
    benchmark::DoNotOptimize(sc.sender(0).delivered_bytes());
  }
  // Each iteration simulates 2 s of a ~4 kpps flow.
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_ScenarioSimSecondsPerWallSecond);

}  // namespace
}  // namespace ccstarve

BENCHMARK_MAIN();
