// Appendix C: bounded model checking of two-flow CCA models (the CCAC
// substitute). Exhaustive search over every adversary strategy up to the
// horizon; "no violation" is a proof for the model + horizon.
//
// Rows reproduce:
//   * §5.4/App. C: two AIMD flows, 1 BDP buffer, drop-tail losses only ->
//     the worst reachable ratio over 10 RTTs stays small (no starvation
//     trace exists);
//   * §6.4: give the adversary biased (non-congestive) loss -> AIMD starves;
//   * §4: give the adversary bounded delay jitter -> the Vegas model
//     starves while the exponential-mapping (Algorithm 1) model stays
//     within ~s^2.
#include "bench_common.hpp"

#include "core/model_check.hpp"

using namespace ccstarve;

namespace {

void row(Table& t, const std::string& scenario, const AbstractCca& cca,
         const ModelCheckConfig& cfg, const std::string& expected) {
  const ModelCheckResult r = model_check(cca, cfg);
  t.add_row({scenario, cca.name(), std::to_string(cfg.horizon_rtts),
             std::to_string(r.states_explored),
             Table::num(r.worst_final_ratio, 2),
             Table::num(r.worst_final_utilization, 2), expected});
}

}  // namespace

int main() {
  bench::header("Bounded model checking (App. C / CCAC substitute)",
                "exhaustive adversary search over abstract 2-flow CCA "
                "models");
  Table t({"adversary", "model", "horizon", "states", "worst ratio",
           "worst util", "paper"});

  {
    ModelCheckConfig cfg;  // 1 BDP buffer, (1, C) initial split
    cfg.preferential_loss = false;
    row(t, "drop-tail loss only", AbstractAimd{}, cfg,
        "no starvation trace (App. C)");
  }
  {
    ModelCheckConfig cfg;
    cfg.preferential_loss = true;
    cfg.horizon_rtts = 12;
    row(t, "biased loss", AbstractAimd{}, cfg, "AIMD starves (6.4)");
  }
  {
    ModelCheckConfig cfg;
    cfg.capacity_pkts_per_rtt = 30;
    cfg.buffer_pkts = 30;
    cfg.d_rtt = 1.0;
    cfg.initial_cwnd1 = cfg.initial_cwnd2 = 1;
    cfg.horizon_rtts = 30;
    cfg.max_cwnd_pkts = 128;
    cfg.preferential_loss = false;
    row(t, "delay jitter <= D", AbstractVegas{}, cfg,
        "delay-convergent model starves (Thm 1)");
    row(t, "delay jitter <= D", AbstractExpMapping{1.0, 2.0, 3.0, 2}, cfg,
        "bounded ~s^2 (6.3)");
  }
  t.print(std::cout);

  // Show one starvation witness, CCAC-style.
  ModelCheckConfig cfg;
  cfg.capacity_pkts_per_rtt = 30;
  cfg.buffer_pkts = 30;
  cfg.d_rtt = 1.0;
  cfg.initial_cwnd1 = cfg.initial_cwnd2 = 1;
  cfg.horizon_rtts = 12;
  cfg.max_cwnd_pkts = 128;
  cfg.preferential_loss = false;
  const ModelCheckResult r = model_check(AbstractVegas{}, cfg);
  std::cout << "\nwitness trace for the Vegas model (worst ratio "
            << Table::num(r.worst_final_ratio, 2) << "):\n";
  for (const std::string& step : r.witness) std::cout << "  " << step << '\n';
  return 0;
}
