// §6.3: avoiding starvation in a bounded rate range — the figure-of-merit
// table comparing the Vegas-family rate-delay curve (Eq. 1) with the
// exponential mapping (Eq. 2), including the paper's worked examples
// (D = 10 ms, s = 2 -> ~2^10 ~ 10^3; s = 4 -> ~2^20 ~ 10^6).
#include "bench_common.hpp"

#include <cmath>

#include "core/rate_range.hpp"

using namespace ccstarve;

int main() {
  bench::header("Bounded-rate-range design (E6.3a)",
                "Section 6.3, Eq. 1 vs Eq. 2 figures of merit mu+/mu-");

  Table table({"D ms", "s", "Rmax ms", "Vegas-family mu+/mu- (Eq.1)",
               "exponential mu+/mu- (Eq.2)", "advantage"});
  struct Row {
    double d_ms, s, rmax_ms;
  };
  for (const Row& r : {Row{10, 2, 100}, Row{10, 4, 100}, Row{10, 2, 210},
                       Row{5, 2, 100}, Row{20, 2, 100}, Row{10, 8, 100}}) {
    RateRangeParams p;
    p.d = TimeNs::millis(r.d_ms);
    p.s = r.s;
    p.rm = TimeNs::zero();
    p.rmax = TimeNs::millis(r.rmax_ms);
    const double eq1 = vegas_family_rate_range(p);
    const double eq2 = exponential_rate_range(p);
    table.add_row({Table::num(r.d_ms, 0), Table::num(r.s, 0),
                   Table::num(r.rmax_ms, 0), Table::num(eq1, 1),
                   Table::num(eq2, 0), Table::num(eq2 / eq1, 0) + "x"});
  }
  table.print(std::cout);

  std::cout << "\nEq. 2 mapping, normalized to mu- = 1 (D = 10 ms, s = 2, "
               "Rm = 100 ms, Rmax = 100 ms):\n";
  Table curve({"RTT ms", "queueing headroom ms", "mu/mu-"});
  RateRangeParams p;
  p.d = TimeNs::millis(10);
  p.s = 2.0;
  p.rm = TimeNs::millis(100);
  p.rmax = TimeNs::millis(100);
  for (double rtt_ms : {110.0, 120.0, 140.0, 160.0, 180.0, 200.0}) {
    curve.add_row({Table::num(rtt_ms, 0), Table::num(200.0 - rtt_ms, 0),
                   Table::num(exponential_mu(p, TimeNs::millis(rtt_ms)), 1)});
  }
  curve.print(std::cout);
  std::cout << "\nRates a factor s apart map to delays more than D apart "
               "over the whole range —\nthe property the Vegas family can "
               "only provide over a linear-in-Rmax/D range.\n";
  return 0;
}
