// Subscriber-fan-out benchmark for the serve subsystem (src/serve).
//
// The design claim under test: a job's simulation thread publishes every
// telemetry line through ChannelSink -> JobChannel::offer() into bounded
// per-subscriber queues and never waits for a consumer, so adding
// subscribers costs only the per-line fan-out loop — not a network stall.
// The identical run-job scenario is timed at 0, 1, 8 and 32 concurrent
// subscribers (each a thread draining its queue flat-out, the in-process
// equivalent of a keeping-up session thread), and the slowdown of each
// count relative to the 0-subscriber baseline is reported.
//
// Acceptance (ISSUE 6): 32 subscribers within 10% of baseline, and a
// keeping-up subscriber's payload capture byte-identical to the offline
// --metrics JSONL of the same scenario (checked here against a MemorySink
// reference run; streams_byte_identical in the JSON).
//
// Each configuration runs `reps` times interleaved and the best events/sec
// is kept. Results go to BENCH_serve.json.
//
// Usage: bench_serve [--quick] [--out PATH]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/sink.hpp"
#include "obs/telemetry.hpp"
#include "serve/hub.hpp"
#include "serve/protocol.hpp"
#include "sim/scenario.hpp"
#include "sweep/engine.hpp"
#include "sweep/spec_parse.hpp"
#include "util/time.hpp"

namespace ccstarve {
namespace {

double wall_seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

sweep::SweepPoint bench_point(double sim_seconds) {
  sweep::SweepPoint pt;
  pt.flow_set = "copa+copa+vegas+cubic";
  pt.link_mbps = 120;
  pt.rtt_ms = 60;
  pt.jitter = "none";
  pt.buffer = "-";
  pt.seed = 1;
  pt.duration_s = sim_seconds;
  return pt;
}

struct RunResult {
  double events_per_sec = 0;
  uint64_t events = 0;
  uint64_t lines = 0;
  uint64_t dropped = 0;  // across all subscribers, worst rep kept with best
};

// One timed run with `subscribers` draining threads attached before the
// simulation starts (the steady-state serving shape: everyone is live, no
// backlog replay in the timed region).
RunResult run_once(const sweep::SweepPoint& pt, size_t subscribers) {
  serve::JobChannel channel(/*backlog_lines=*/1, /*queue_capacity=*/8192);

  std::vector<std::thread> drains;
  std::vector<uint64_t> drop_counts(subscribers, 0);
  for (size_t s = 0; s < subscribers; ++s) {
    auto q = channel.subscribe();
    drains.emplace_back([q = std::move(q), &drop_counts, s] {
      // Batch drain, as the server's session loop does; a real session
      // would write_line() each item here.
      while (!q->pop_batch_for(std::chrono::milliseconds(250)).empty()) {
      }
      drop_counts[s] = q->dropped();
    });
  }

  auto sc = sweep::build_point_scenario(pt, nullptr);
  serve::ChannelSink sink(channel);
  obs::TelemetryConfig tc;
  tc.interval = TimeNs::millis(10);
  tc.sink = &sink;
  for (const auto& fa : sweep::parse_flow_set(pt.flow_set)) {
    tc.flow_labels.push_back(fa.cca);
  }
  obs::FlowTelemetry telemetry(std::move(tc));
  telemetry.attach(*sc);

  const auto start = std::chrono::steady_clock::now();
  sc->run_until(TimeNs::seconds(pt.duration_s));
  telemetry.finish(TimeNs::seconds(pt.duration_s));
  const double wall = wall_seconds_since(start);

  channel.finish();
  for (auto& t : drains) t.join();

  RunResult r;
  r.events = sc->sim().events_processed();
  r.events_per_sec = static_cast<double>(r.events) / wall;
  r.lines = channel.published();
  for (uint64_t d : drop_counts) r.dropped += d;
  return r;
}

// Byte-identity spot check: one subscribed run's payload capture vs the
// same scenario driven offline into a MemorySink (the --metrics path).
bool streams_byte_identical(const sweep::SweepPoint& pt) {
  serve::JobChannel channel(1u << 20, 1u << 20);
  auto q = channel.subscribe();

  auto run_with = [&pt](obs::TelemetrySink* sink) {
    auto sc = sweep::build_point_scenario(pt, nullptr);
    obs::TelemetryConfig tc;
    tc.interval = TimeNs::millis(10);
    tc.sink = sink;
    for (const auto& fa : sweep::parse_flow_set(pt.flow_set)) {
      tc.flow_labels.push_back(fa.cca);
    }
    obs::FlowTelemetry telemetry(std::move(tc));
    telemetry.attach(*sc);
    sc->run_until(TimeNs::seconds(pt.duration_s));
    telemetry.finish(TimeNs::seconds(pt.duration_s));
  };

  serve::ChannelSink channel_sink(channel);
  run_with(&channel_sink);
  channel.finish();
  std::vector<std::string> streamed;
  while (auto item = q->pop_for(std::chrono::milliseconds(250))) {
    if (item->dropped_before != 0) return false;
    if (!serve::is_control_line(item->text())) {
      streamed.push_back(item->text());
    }
  }

  obs::MemorySink offline(1u << 20);
  run_with(&offline);
  return streamed == offline.snapshot() && offline.evicted() == 0;
}

}  // namespace
}  // namespace ccstarve

int main(int argc, char** argv) {
  using namespace ccstarve;
  bool quick = false;
  std::string out = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const double sim_seconds = quick ? 2.0 : 8.0;
  const int reps = quick ? 3 : 5;
  const size_t kSubscriberCounts[] = {0, 1, 8, 32};
  const sweep::SweepPoint pt = bench_point(sim_seconds);

  // Warm the code paths before any timed run.
  {
    sweep::SweepPoint warm = pt;
    warm.duration_s = 0.2;
    run_once(warm, 1);
  }

  struct Row {
    size_t subscribers = 0;
    RunResult best;
  };
  std::vector<Row> rows;
  for (size_t n : kSubscriberCounts) rows.push_back({n, {}});

  // Interleave the configurations within each repetition so shared-machine
  // noise hits all of them alike; keep the fastest of each.
  for (int r = 0; r < reps; ++r) {
    for (Row& row : rows) {
      const RunResult cur = run_once(pt, row.subscribers);
      if (cur.events_per_sec > row.best.events_per_sec) row.best = cur;
    }
  }

  const double baseline = rows[0].best.events_per_sec;
  for (const Row& row : rows) {
    const double slowdown =
        100.0 * (1.0 - row.best.events_per_sec / baseline);
    std::printf(
        "%2zu subscribers: %9.0f ev/s (slowdown %+5.2f%%)  %llu lines  "
        "%llu dropped\n",
        row.subscribers, row.best.events_per_sec, slowdown,
        static_cast<unsigned long long>(row.best.lines),
        static_cast<unsigned long long>(row.best.dropped));
  }

  const bool identical = streams_byte_identical(pt);
  std::printf("streamed vs offline telemetry byte-identical: %s\n",
              identical ? "yes" : "NO");

  std::ofstream os(out);
  os << "{\n  \"quick\": " << (quick ? "true" : "false")
     << ",\n  \"flows\": \"" << pt.flow_set << "\",\n  \"sim_seconds\": "
     << sim_seconds << ",\n  \"interval_ms\": 10,\n  \"queue_capacity\": 8192"
     << ",\n  \"streams_byte_identical\": " << (identical ? "true" : "false")
     << ",\n  \"subscribers\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double slowdown = 100.0 * (1.0 - r.best.events_per_sec / baseline);
    os << "    {\"subscribers\": " << r.subscribers
       << ", \"events_per_sec\": " << r.best.events_per_sec
       << ", \"slowdown_pct\": " << slowdown
       << ", \"events\": " << r.best.events
       << ", \"lines\": " << r.best.lines
       << ", \"dropped\": " << r.best.dropped << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::printf("wrote %s\n", out.c_str());
  return identical ? 0 : 1;
}
