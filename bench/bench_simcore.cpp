// Event-loop throughput benchmark for the discrete-event core.
//
// Two kinds of measurement, both written to BENCH_simcore.json:
//
//   * End-to-end scenario throughput: 1-, 4- and 16-flow Scenario runs
//     (mixed CCA families) reporting events/sec, packets/sec and
//     sim-seconds per wall-second — the number a sweep user cares about.
//   * Event-queue replay: the schedule-delay pattern of the 4-flow scenario
//     is captured once, then the identical workload is replayed through (a)
//     a faithful reimplementation of the pre-optimisation event loop
//     (std::priority_queue of std::function events, as of the PR-1 tree)
//     and (b) the current timer-wheel Simulator. The ratio isolates the
//     core's speedup from scenario logic: the acceptance bar is >= 2x on
//     this 4-flow workload.
//
// Usage: bench_simcore [--quick] [--out PATH]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "check/scenarios.hpp"
#include "sim/scenario.hpp"
#include "sim/trace_probe.hpp"
#include "sweep/spec_parse.hpp"
#include "util/time.hpp"

namespace ccstarve {
namespace {

double wall_seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ---------------------------------------------------------------------------
// Scenario throughput. The scenarios come from the shared registry
// (check/scenarios.hpp, bench_specs()), built exactly as the golden and
// fuzz harnesses build theirs.

struct ScenarioRow {
  std::string name;
  size_t flows = 0;
  double sim_seconds = 0;
  double wall_seconds = 0;
  uint64_t events = 0;
  uint64_t packets = 0;
};

ScenarioRow run_scenario(const golden::GoldenSpec& b, double sim_seconds) {
  // Warm pool + code before the timed run, on a short prefix.
  EventPool pool;
  golden::build_golden(b, &pool)->run_until(TimeNs::millis(200));

  auto sc = golden::build_golden(b, &pool);
  const auto start = std::chrono::steady_clock::now();
  sc->run_until(TimeNs::seconds(sim_seconds));
  ScenarioRow row;
  row.wall_seconds = wall_seconds_since(start);
  row.name = b.name;
  row.flows = sc->flow_count();
  row.sim_seconds = sim_seconds;
  row.events = sc->sim().events_processed();
  for (size_t i = 0; i < sc->flow_count(); ++i) {
    row.packets += sc->sender(i).packets_sent();
  }
  return row;
}

// ---------------------------------------------------------------------------
// Event-queue replay.

// The pre-optimisation event loop, verbatim in structure: a binary heap of
// by-value events each owning a std::function (heap-allocated for any
// capture beyond ~16 bytes, i.e. every packet-carrying callback).
class LegacyLoop {
 public:
  void schedule_in(TimeNs delay, std::function<void()> fn) {
    queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
  }
  uint64_t run_all() {
    uint64_t n = 0;
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = ev.at;
      ev.fn();
      ++n;
    }
    return n;
  }

 private:
  struct Event {
    TimeNs at;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  TimeNs now_ = TimeNs::zero();
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

// The current core, exercised through the same surface.
class WheelLoop {
 public:
  template <typename F>
  void schedule_in(TimeNs delay, F&& fn) {
    sim_.schedule_in(delay, std::forward<F>(fn));
  }
  uint64_t run_all() {
    uint64_t n = 0;
    while (sim_.run_next()) ++n;
    return n;
  }

 private:
  Simulator sim_;
};

// Payload sized like the hot callbacks the scenario schedules (a sink plus
// a Packet): inline for the new core, a heap allocation for std::function.
struct ReplayPayload {
  unsigned char bytes[48];
};

// Self-perpetuating chain: each dispatched event consumes the next schedule
// delay from the shared trace and re-schedules itself. `chains` chains drain
// the trace concurrently, keeping a realistic number of pending events.
template <typename Loop>
struct ReplayChain {
  Loop* loop;
  const std::vector<int64_t>* deltas;
  size_t* next;
  uint64_t* acc;
  ReplayPayload payload;

  void operator()() const {
    *acc += payload.bytes[0];
    if (*next >= deltas->size()) return;
    const int64_t d = (*deltas)[(*next)++];
    ReplayChain again = *this;
    again.payload.bytes[0] ^= static_cast<unsigned char>(d);
    loop->schedule_in(TimeNs::nanos(d), again);
  }
};

// Captures the schedule-delay pattern of the 4-flow scenario.
std::vector<int64_t> capture_deltas(const golden::GoldenSpec& b,
                                    double sim_seconds) {
  auto sc = golden::build_golden(b);
  TraceRecorder recorder;
  std::vector<int64_t> deltas;
  recorder.collect_schedule_deltas(&deltas);
  sc->sim().set_tracer(&recorder);
  sc->run_until(TimeNs::seconds(sim_seconds));
  return deltas;
}

template <typename Loop>
double replay_events_per_sec(const std::vector<int64_t>& deltas, int chains,
                             uint64_t* dispatched) {
  Loop loop;
  size_t next = 0;
  uint64_t acc = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int c = 0; c < chains && next < deltas.size(); ++c) {
    ReplayChain<Loop> chain{&loop, &deltas, &next, &acc, {}};
    chain.payload.bytes[0] = static_cast<unsigned char>(c);
    loop.schedule_in(TimeNs::nanos(deltas[next++]), chain);
  }
  const uint64_t n = loop.run_all();
  const double secs = wall_seconds_since(start);
  if (acc == uint64_t(-1)) std::fprintf(stderr, "impossible\n");
  if (dispatched != nullptr) *dispatched = n;
  return static_cast<double>(n) / secs;
}

}  // namespace
}  // namespace ccstarve

int main(int argc, char** argv) {
  using namespace ccstarve;
  bool quick = false;
  std::string out = "BENCH_simcore.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<golden::GoldenSpec> kScenarios = golden::bench_specs();
  const double sim_seconds = quick ? 2.0 : 8.0;

  std::vector<ScenarioRow> rows;
  for (const golden::GoldenSpec& b : kScenarios) {
    rows.push_back(run_scenario(b, sim_seconds));
    const ScenarioRow& r = rows.back();
    std::printf(
        "%-9s %2zu flows: %9.0f events/s  %8.0f packets/s  %6.1f sim-s/wall-s\n",
        r.name.c_str(), r.flows, r.events / r.wall_seconds,
        r.packets / r.wall_seconds, r.sim_seconds / r.wall_seconds);
  }

  // Replay comparison on the 4-flow schedule pattern.
  const double capture_seconds = quick ? 1.0 : 4.0;
  const int kChains = 256;
  std::vector<int64_t> deltas = capture_deltas(kScenarios[1], capture_seconds);
  uint64_t replay_events = 0;
  // Alternate the two loops across repetitions so neither benefits from
  // running last; keep the best of each (least-interference estimate).
  double legacy = 0, wheel = 0;
  const int reps = quick ? 2 : 3;
  for (int r = 0; r < reps; ++r) {
    double l = replay_events_per_sec<LegacyLoop>(deltas, kChains, &replay_events);
    double w = replay_events_per_sec<WheelLoop>(deltas, kChains, &replay_events);
    if (l > legacy) legacy = l;
    if (w > wheel) wheel = w;
  }
  const double speedup = wheel / legacy;
  std::printf(
      "replay   %9llu events: legacy %9.0f ev/s  wheel %9.0f ev/s  speedup %.2fx\n",
      static_cast<unsigned long long>(replay_events), legacy, wheel, speedup);

  std::ofstream os(out);
  os << "{\n  \"quick\": " << (quick ? "true" : "false")
     << ",\n  \"scenarios\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScenarioRow& r = rows[i];
    os << "    {\"name\": \"" << r.name << "\", \"flows\": " << r.flows
       << ", \"sim_seconds\": " << r.sim_seconds
       << ", \"wall_seconds\": " << r.wall_seconds
       << ", \"events\": " << r.events
       << ", \"events_per_sec\": " << r.events / r.wall_seconds
       << ", \"packets\": " << r.packets
       << ", \"packets_per_sec\": " << r.packets / r.wall_seconds
       << ", \"sim_per_wall\": " << r.sim_seconds / r.wall_seconds << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"replay\": {\"events\": " << replay_events
     << ", \"chains\": " << kChains
     << ", \"legacy_events_per_sec\": " << legacy
     << ", \"wheel_events_per_sec\": " << wheel
     << ", \"speedup_vs_legacy\": " << speedup << "}\n}\n";
  os.close();
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
