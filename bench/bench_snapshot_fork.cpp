// Snapshot/fork prefix-sharing benchmark (DESIGN.md §8).
//
// Measures the two consumers of Scenario::snapshot()/fork() against their
// cold-run equivalents, both single-threaded so wall-clock tracks total
// simulation work:
//
//   * Sweep: N jitter-onset variants of a two-flow Copa scenario — cold
//     runs every point from t=0; shared runs one warm-up stem, snapshots
//     it just before the earliest onset, and forks every point from it.
//   * Adversary search: search_jitter_adversary with a late onset — cold
//     re-simulates the jitter-free warm-up once per schedule; shared forks
//     every schedule from one converged two-flow equilibrium.
//
// Both paths must produce identical results (the sweep records are
// compared byte-for-byte here and the run aborts on a mismatch), so the
// speedup is pure wall-clock, not an approximation. Acceptance bar:
// >= 1.5x on the sweep workload.
//
// Usage: bench_snapshot_fork [--quick] [--out PATH]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/jitter_search.hpp"
#include "sweep/engine.hpp"
#include "sweep/grid.hpp"
#include "sweep/spec_parse.hpp"

namespace ccstarve {
namespace {

double wall_seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct SweepBenchResult {
  size_t points = 0;
  double duration_s = 0;
  double cold_wall_s = 0;
  double shared_wall_s = 0;
  size_t forked = 0;
  bool identical = false;
  double speedup() const { return cold_wall_s / shared_wall_s; }
};

// N onset variants sharing one warm-up: jitter "step:8,<onset>" with
// onsets spread over the last third of the run, plus the jitter-free
// baseline point.
SweepBenchResult bench_sweep(bool quick) {
  sweep::SweepGrid grid;
  grid.flow_sets = {"copa+copa"};
  grid.link_mbps = {48};
  grid.rtt_ms = {40};
  grid.duration_s = {quick ? 12.0 : 60.0};
  const double dur = grid.duration_s[0];
  const int variants = quick ? 7 : 31;
  grid.jitter = {"none"};
  for (int i = 0; i < variants; ++i) {
    // Onsets in [2/3, ~1) of the duration; two decimals keeps the spec
    // strings canonical.
    const double onset = dur * (2.0 / 3.0) + i * (dur / (3.2 * variants));
    char spec[32];
    std::snprintf(spec, sizeof spec, "step:8,%.2f", onset);
    grid.jitter.push_back(spec);
  }
  const auto points = grid.expand();

  sweep::SweepOptions opt;
  opt.jobs = 1;
  SweepBenchResult r;
  r.points = points.size();
  r.duration_s = dur;

  auto start = std::chrono::steady_clock::now();
  const auto cold = sweep::run_sweep(points, opt);
  r.cold_wall_s = wall_seconds_since(start);

  opt.share_prefix = true;
  start = std::chrono::steady_clock::now();
  const auto shared = sweep::run_sweep(points, opt);
  r.shared_wall_s = wall_seconds_since(start);
  r.forked = shared.stats.forked;
  r.identical = cold.lines == shared.lines;
  return r;
}

struct SearchBenchResult {
  size_t schedules = 0;
  double cold_wall_s = 0;
  double shared_wall_s = 0;
  bool identical = false;
  double speedup() const { return cold_wall_s / shared_wall_s; }
};

SearchBenchResult bench_search(bool quick) {
  JitterSearchConfig cfg;
  cfg.link_rate = Rate::mbps(24);
  cfg.min_rtt = TimeNs::millis(40);
  cfg.d = TimeNs::millis(8);
  cfg.duration = TimeNs::seconds(quick ? 12 : 60);
  cfg.onset = cfg.duration * 0.8;
  const CcaMaker maker = [] { return sweep::make_cca("copa", 1007); };

  SearchBenchResult r;
  auto start = std::chrono::steady_clock::now();
  cfg.share_warmup = false;
  const JitterSearchResult cold = search_jitter_adversary(maker, cfg);
  r.cold_wall_s = wall_seconds_since(start);

  start = std::chrono::steady_clock::now();
  cfg.share_warmup = true;
  const JitterSearchResult shared = search_jitter_adversary(maker, cfg);
  r.shared_wall_s = wall_seconds_since(start);

  r.schedules = cold.outcomes.size();
  r.identical = cold.outcomes.size() == shared.outcomes.size();
  for (size_t i = 0; r.identical && i < cold.outcomes.size(); ++i) {
    r.identical = cold.outcomes[i].utilization ==
                      shared.outcomes[i].utilization &&
                  cold.outcomes[i].ratio == shared.outcomes[i].ratio;
  }
  return r;
}

}  // namespace
}  // namespace ccstarve

int main(int argc, char** argv) {
  using namespace ccstarve;
  bool quick = false;
  std::string out = "BENCH_snapfork.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const SweepBenchResult sw = bench_sweep(quick);
  std::printf(
      "sweep    %3zu points x %4.0f sim-s: cold %6.2f s  shared %6.2f s "
      "(%zu forked)  speedup %.2fx  %s\n",
      sw.points, sw.duration_s, sw.cold_wall_s, sw.shared_wall_s, sw.forked,
      sw.speedup(), sw.identical ? "records identical" : "RECORDS DIFFER");

  const SearchBenchResult se = bench_search(quick);
  std::printf(
      "search   %3zu schedules:           cold %6.2f s  shared %6.2f s "
      "              speedup %.2fx  %s\n",
      se.schedules, se.cold_wall_s, se.shared_wall_s, se.speedup(),
      se.identical ? "outcomes identical" : "OUTCOMES DIFFER");

  std::ofstream os(out);
  os << "{\n  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"sweep\": {\"points\": " << sw.points
     << ", \"duration_s\": " << sw.duration_s
     << ", \"forked\": " << sw.forked
     << ", \"cold_wall_s\": " << sw.cold_wall_s
     << ", \"shared_wall_s\": " << sw.shared_wall_s
     << ", \"speedup\": " << sw.speedup()
     << ", \"records_identical\": " << (sw.identical ? "true" : "false")
     << "},\n"
     << "  \"search\": {\"schedules\": " << se.schedules
     << ", \"cold_wall_s\": " << se.cold_wall_s
     << ", \"shared_wall_s\": " << se.shared_wall_s
     << ", \"speedup\": " << se.speedup()
     << ", \"outcomes_identical\": " << (se.identical ? "true" : "false")
     << "}\n}\n";
  os.close();
  std::printf("wrote %s\n", out.c_str());

  if (!sw.identical || !se.identical) {
    std::fprintf(stderr, "FAIL: shared-prefix results diverge from cold\n");
    return 1;
  }
  return 0;
}
