// Probe-overhead benchmark for the flow-telemetry subsystem (src/obs).
//
// For each registry bench scenario (1, 4 and 16 flows; check/scenarios.hpp
// bench_specs()) the identical run is timed three ways:
//
//   * detached — no probe attached; the telemetry seam costs one untaken
//     branch per hook site. events/sec here is directly comparable to the
//     scenario rows of BENCH_simcore.json (acceptance: within 1%).
//   * attached — a FlowTelemetry probe at the default 10 ms cadence, rings
//     plus streaming aggregates plus the starvation detector, but no JSONL
//     sink (the in-process sampling cost; acceptance: <= 10% overhead).
//   * attached+jsonl — the same probe also serialising every bucket to an
//     in-memory JSONL stream, the full --metrics=... cost.
//
// Each configuration runs `reps` times and the best (least-interference)
// events/sec is kept. Results go to BENCH_telemetry.json.
//
// Usage: bench_telemetry [--quick] [--out PATH]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/scenarios.hpp"
#include "obs/telemetry.hpp"
#include "sim/scenario.hpp"
#include "util/time.hpp"

namespace ccstarve {
namespace {

double wall_seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

enum class Mode { kDetached, kAttached, kAttachedJsonl };

struct RunResult {
  double events_per_sec = 0;
  uint64_t events = 0;
  uint64_t buckets = 0;
};

RunResult run_once(const golden::GoldenSpec& b, double sim_seconds,
                   EventPool* pool, Mode mode) {
  auto sc = golden::build_golden(b, pool);

  std::ostringstream sink;
  obs::TelemetryConfig tc;
  tc.interval = TimeNs::millis(10);
  if (mode == Mode::kAttachedJsonl) tc.jsonl = &sink;
  obs::FlowTelemetry telemetry(std::move(tc));
  if (mode != Mode::kDetached) telemetry.attach(*sc);

  const auto start = std::chrono::steady_clock::now();
  sc->run_until(TimeNs::seconds(sim_seconds));
  if (mode != Mode::kDetached) telemetry.finish(TimeNs::seconds(sim_seconds));
  const double wall = wall_seconds_since(start);

  RunResult r;
  r.events = sc->sim().events_processed();
  r.events_per_sec = static_cast<double>(r.events) / wall;
  r.buckets = telemetry.buckets_closed();
  return r;
}

}  // namespace
}  // namespace ccstarve

int main(int argc, char** argv) {
  using namespace ccstarve;
  bool quick = false;
  std::string out = "BENCH_telemetry.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<golden::GoldenSpec> kScenarios = golden::bench_specs();
  const double sim_seconds = quick ? 2.0 : 8.0;
  const int reps = quick ? 3 : 5;

  struct Row {
    std::string name;
    size_t flows = 0;
    RunResult detached, attached, jsonl;
  };
  std::vector<Row> rows;

  for (const golden::GoldenSpec& b : kScenarios) {
    // Warm the pool and the code on a short prefix before any timed run.
    EventPool pool;
    golden::build_golden(b, &pool)->run_until(TimeNs::millis(200));

    Row row;
    row.name = b.name;
    // Interleave the three configurations within each repetition so shared-
    // machine noise hits all of them alike; keep the fastest of each (the
    // least-interference estimate).
    for (int r = 0; r < reps; ++r) {
      auto keep = [](RunResult* best, RunResult cur) {
        if (cur.events_per_sec > best->events_per_sec) *best = cur;
      };
      keep(&row.detached, run_once(b, sim_seconds, &pool, Mode::kDetached));
      keep(&row.attached, run_once(b, sim_seconds, &pool, Mode::kAttached));
      keep(&row.jsonl, run_once(b, sim_seconds, &pool, Mode::kAttachedJsonl));
    }
    row.flows = golden::build_golden(b, &pool)->flow_count();

    const double ovr_att = 100.0 * (1.0 - row.attached.events_per_sec /
                                              row.detached.events_per_sec);
    const double ovr_js = 100.0 * (1.0 - row.jsonl.events_per_sec /
                                             row.detached.events_per_sec);
    std::printf(
        "%-9s %2zu flows: detached %9.0f ev/s  attached %9.0f ev/s "
        "(%+5.2f%%)  +jsonl %9.0f ev/s (%+5.2f%%)  %llu buckets\n",
        row.name.c_str(), row.flows, row.detached.events_per_sec,
        row.attached.events_per_sec, ovr_att, row.jsonl.events_per_sec,
        ovr_js, static_cast<unsigned long long>(row.attached.buckets));
    rows.push_back(std::move(row));
  }

  std::ofstream os(out);
  os << "{\n  \"quick\": " << (quick ? "true" : "false")
     << ",\n  \"interval_ms\": 10,\n  \"scenarios\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double ovr_att =
        100.0 * (1.0 - r.attached.events_per_sec / r.detached.events_per_sec);
    const double ovr_js =
        100.0 * (1.0 - r.jsonl.events_per_sec / r.detached.events_per_sec);
    os << "    {\"name\": \"" << r.name << "\", \"flows\": " << r.flows
       << ", \"sim_seconds\": " << sim_seconds
       << ", \"detached_events_per_sec\": " << r.detached.events_per_sec
       << ", \"attached_events_per_sec\": " << r.attached.events_per_sec
       << ", \"attached_jsonl_events_per_sec\": " << r.jsonl.events_per_sec
       << ", \"overhead_attached_pct\": " << ovr_att
       << ", \"overhead_jsonl_pct\": " << ovr_js
       << ", \"events\": " << r.detached.events
       << ", \"buckets\": " << r.attached.buckets << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  os.close();
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
