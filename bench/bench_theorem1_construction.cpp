// Theorem 1 (and Figs. 4-6): the constructive starvation proof, executed.
//
//   Step 1 (Fig. 4): scan rates lambda*(s/f)^i until two collide in d_max
//     (pigeonhole).
//   Step 2 (Fig. 5): the two solo runs' throughputs are >= s apart.
//   Step 3 (Fig. 6): run both flows on one link of rate C1+C2, with per-flow
//     jitter emulating each flow's solo delay trajectory; audit that the
//     non-congestive delay stayed within D = 2*delta_max + 2*eps.
//
// Repeated for increasing s to exhibit Definition 3: no finite s bounds the
// ratio.
#include "bench_common.hpp"

#include "cc/fast.hpp"
#include "cc/vegas.hpp"
#include "core/theorem1.hpp"

using namespace ccstarve;

namespace {

void run_for(const std::string& name, const CcaMaker& maker, double s,
             Table& table, int max_steps = 4) {
  PigeonholeConfig pg;
  pg.f = 0.9;
  pg.s = s;
  pg.lambda = Rate::mbps(2);
  pg.max_steps = max_steps;
  pg.min_rtt = TimeNs::millis(100);
  pg.duration = TimeNs::seconds(60);
  EmulationConfig emu;
  emu.duration = TimeNs::seconds(30);

  const Theorem1Report rep = run_theorem1(maker, pg, emu);
  if (!rep.pigeonhole.found || !rep.outcome) {
    table.add_row({name, Table::num(s, 0), "-", "-", "-", "no collision",
                   "-", "-"});
    return;
  }
  const auto& o = *rep.outcome;
  const uint64_t violations =
      o.slow_jitter.budget_violations + o.fast_jitter.budget_violations;
  table.add_row(
      {name, Table::num(s, 0),
       Table::num(rep.pigeonhole.c1_mbps, 1) + " / " +
           Table::num(rep.pigeonhole.c2_mbps, 1),
       Table::num(rep.pigeonhole.dmax_gap_s * 1e3, 2),
       rep.d_used.to_string(),
       Table::num(o.throughput_slow_mbps, 2) + " / " +
           Table::num(o.throughput_fast_mbps, 1),
       Table::num(o.ratio, 1), std::to_string(violations)});
}

}  // namespace

int main() {
  bench::header(
      "Theorem 1 construction (Figs. 4-6)",
      "pigeonhole rate pair -> two-flow delay emulation -> starvation; "
      "D = 2*delta_max + 2*eps");

  Table table({"CCA", "s", "C1 / C2 Mbit/s", "dmax gap ms", "D used",
               "slow / fast Mbit/s", "ratio", "budget violations"});
  const CcaMaker vegas = [] { return std::unique_ptr<Cca>(new Vegas()); };
  const CcaMaker fast = [] { return std::unique_ptr<Cca>(new FastTcp()); };
  for (double s : {4.0, 8.0, 16.0}) run_for("vegas", vegas, s, table);
  // FAST's equilibrium queueing is alpha/C: past a few hundred Mbit/s it is
  // microseconds — below the shared link's per-packet granularity — so the
  // construction targets a moderate C2 (the theorem allows any collision).
  run_for("fast", fast, 8.0, table, /*max_steps=*/3);
  table.print(std::cout);
  std::cout << "\nEvery requested s is achieved with zero [0, D] budget "
               "violations: no finite s\nbounds the unfairness — "
               "Definition 3's starvation.\n";
  return 0;
}
