// Theorem 2: a CCA whose converged delay fits within the jitter budget can
// be driven to arbitrarily low utilization — replay its modest-link delay
// trajectory as pure non-congestive delay on ever-faster links.
#include "bench_common.hpp"

#include "cc/copa.hpp"
#include "cc/vegas.hpp"
#include "core/theorem2.hpp"

using namespace ccstarve;

int main() {
  bench::header("Theorem 2: unbounded under-utilization",
                "Section 6.1/Appendix A Case 2: emulate the rate-C "
                "trajectory on C' >> C");

  Table table({"CCA", "recorded at C", "actual link C'", "throughput Mbit/s",
               "utilization", "max jitter needed"});
  for (const auto& [name, maker] :
       std::vector<std::pair<std::string, CcaMaker>>{
           {"vegas", [] { return std::unique_ptr<Cca>(new Vegas()); }},
           {"copa", [] { return std::unique_ptr<Cca>(new Copa()); }}}) {
    for (double huge : {50.0, 200.0, 800.0}) {
      Theorem2Config cfg;
      cfg.modest_rate = Rate::mbps(5);
      cfg.huge_rate = Rate::mbps(huge);
      cfg.solo_duration = TimeNs::seconds(40);
      cfg.emu_duration = TimeNs::seconds(40);
      const Theorem2Outcome out = run_theorem2(maker, cfg);
      table.add_row({name, "5 Mbit/s", Table::num(huge, 0) + " Mbit/s",
                     Table::num(out.emulated_throughput_mbps, 2),
                     Table::num(out.utilization * 100, 2) + "%",
                     out.max_jitter_needed.to_string()});
    }
  }
  table.print(std::cout);
  std::cout << "\nThroughput stays pinned near the recorded 5 Mbit/s while "
               "C' grows: utilization\nfalls without bound, using only "
               "bounded non-congestive delay.\n";
  return 0;
}
