// Theorem 3 (§6.5 / Appendix B): in the strong model — the adversary
// controls the queueing-delay pattern outright — every deterministic,
// f-efficient, delay-bounding CCA starves. This bench runs the appendix's
// iterated trace construction and the resulting two-flow demo.
#include "bench_common.hpp"

#include "cc/fast.hpp"
#include "cc/vegas.hpp"
#include "core/theorem3.hpp"

using namespace ccstarve;

int main() {
  bench::header("Theorem 3: strong-model starvation",
                "Appendix B: iterate q <- max(0, q - D) until consecutive "
                "traces differ by > s");

  Table table({"CCA", "D", "trace throughputs Mbit/s", "slow flow Mbit/s",
               "fast flow Mbit/s", "ratio"});
  for (const auto& [name, maker] :
       std::vector<std::pair<std::string, CcaMaker>>{
           {"vegas", [] { return std::unique_ptr<Cca>(new Vegas()); }},
           {"fast", [] { return std::unique_ptr<Cca>(new FastTcp()); }}}) {
    Theorem3Config cfg;
    cfg.lambda = Rate::mbps(5);
    cfg.min_rtt = TimeNs::millis(50);
    cfg.duration = TimeNs::seconds(40);
    cfg.s = 4.0;
    const Theorem3Outcome out = run_theorem3(maker, cfg);
    std::string traces;
    for (double t : out.trace_throughputs_mbps) {
      if (!traces.empty()) traces += " -> ";
      traces += Table::num(t, 1);
    }
    if (out.found_pair) {
      table.add_row({name, out.d.to_string(), traces,
                     Table::num(out.slow_throughput_mbps, 2),
                     Table::num(out.fast_throughput_mbps, 1),
                     Table::num(out.ratio, 1)});
    } else {
      table.add_row({name, out.d.to_string(), traces, "-", "-",
                     "no pair found"});
    }
  }
  table.print(std::cout);
  std::cout << "\nThe fast flow rides the reduced-delay trace while the "
               "slow flow's per-flow element\nre-creates the original "
               "delays: same queue, throughputs a factor s+ apart.\n";
  return 0;
}
