// §5.3: PCC Vivace starved by quantized ACK delivery.
//
// Two Vivace flows on 120 Mbit/s with 60 ms propagation; one flow's ACKs
// are released only at integer multiples of 60 ms (ACK aggregation),
// preventing finer delay measurement. Paper: 9.9 vs 99.4 Mbit/s.
#include "bench_common.hpp"

#include "cc/vivace.hpp"
#include "sim/jitter.hpp"

using namespace ccstarve;

int main() {
  const TimeNs duration = TimeNs::seconds(60);
  Table table({"scenario", "flow", "measured Mbit/s", "paper Mbit/s"});

  auto run = [&](bool quantize_one) {
    ScenarioConfig cfg;
    cfg.link_rate = Rate::mbps(120);
    auto sc = std::make_unique<Scenario>(std::move(cfg));
    for (int i = 0; i < 2; ++i) {
      FlowSpec f;
      Vivace::Params p;
      p.seed = 3 + static_cast<uint64_t>(i);
      f.cca = std::make_unique<Vivace>(p);
      f.min_rtt = TimeNs::millis(60);
      if (quantize_one && i == 0) {
        f.ack_jitter =
            std::make_unique<PeriodicReleaseJitter>(TimeNs::millis(60));
      }
      sc->add_flow(std::move(f));
    }
    sc->run_until(duration);
    return sc;
  };

  auto attacked = run(true);
  table.add_row({"one flow's ACKs quantized to 60 ms", "vivace (victim)",
                 Table::num(bench::mbps(*attacked, 0, TimeNs::zero(), duration), 1),
                 "9.9"});
  table.add_row({"one flow's ACKs quantized to 60 ms", "vivace (clean)",
                 Table::num(bench::mbps(*attacked, 1, TimeNs::zero(), duration), 1),
                 "99.4"});

  auto control = run(false);
  table.add_row({"control: no quantization", "vivace #1",
                 Table::num(bench::mbps(*control, 0, TimeNs::zero(), duration), 1),
                 "~55"});
  table.add_row({"control: no quantization", "vivace #2",
                 Table::num(bench::mbps(*control, 1, TimeNs::zero(), duration), 1),
                 "~55"});

  bench::header("PCC Vivace ACK-quantization starvation (E5.3)",
                "Section 5.3, 120 Mbit/s, 60 ms, ACKs at multiples of 60 ms");
  table.print(std::cout);
  return 0;
}
