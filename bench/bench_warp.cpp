// Wall-clock benchmark for the hybrid packet/fluid fast-forward engine
// (sim/warp): hour-scale starvation experiments run pure-packet and hybrid,
// timed, and cross-checked.
//
// Each case is a long-horizon scenario from the starvation battery — clean
// equilibria and late-jitter-onset starvation shapes across the Vegas, FAST
// and Copa families. The hybrid run must (a) agree with the pure run's
// starvation verdict (did the worst-pair throughput ratio ever cross the
// threshold?), (b) land within a throughput tolerance per flow, and (c) be
// at least 10x faster in wall-clock on the full horizons (the warp engine's
// acceptance bar; --quick shortens horizons for CI and only checks
// agreement, since the warped fraction shrinks with the horizon).
//
// Results land in a JSON artifact (default BENCH_warp.json) that CI uploads
// alongside the other wall-clock benches.
//
// Usage: bench_warp [--quick] [--out PATH]
#include "bench_common.hpp"

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "check/scenarios.hpp"
#include "obs/telemetry.hpp"
#include "sim/warp/warp.hpp"

using namespace ccstarve;

namespace {

double wall_seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct WarpCase {
  std::string name;
  std::string flow_set;
  double link_mbps = 48;
  double rtt_ms = 40;
  double duration_s = 3600;
  // Cases that reach a fluid-describable equilibrium carry the 10x bar.
  // Honesty cases (limit cycles the engine must refuse) are exempt: their
  // value is showing the fallback stays correct, not fast.
  bool expect_warp = true;
  // Whether the CCA's equilibrium pins per-flow shares. BBR's bandwidth
  // probing makes the hour-scale per-flow split a seed-dependent random
  // walk (pure runs with different seeds scatter as widely as hybrid vs
  // pure), so only the aggregate bar applies there.
  bool per_flow_bar = true;

  // Measured.
  double pure_wall_s = 0;
  double hybrid_wall_s = 0;
  uint64_t warps = 0;
  double warped_seconds = 0;
  bool pure_starved = false;
  bool hybrid_starved = false;
  double max_tput_rel_err = 0;  // per flow
  double agg_tput_rel_err = 0;  // sum over flows

  double speedup() const {
    return pure_wall_s / std::max(hybrid_wall_s, 1e-9);
  }
  bool verdict_match() const { return pure_starved == hybrid_starved; }
};

golden::GoldenSpec to_spec(const WarpCase& c) {
  golden::GoldenSpec s;
  s.name = c.name;
  s.flow_set = c.flow_set;
  s.link_mbps = c.link_mbps;
  s.rtt_ms = c.rtt_ms;
  s.duration_s = c.duration_s;
  return s;
}

void run_case(WarpCase& c) {
  const golden::GoldenSpec spec = to_spec(c);
  const TimeNs end = TimeNs::seconds(c.duration_s);

  auto start = std::chrono::steady_clock::now();
  auto pure = golden::build_golden(spec);
  obs::FlowTelemetry pure_tele;
  pure_tele.attach(*pure);
  pure->run_until(end);
  pure_tele.finish(end);
  c.pure_wall_s = wall_seconds_since(start);
  c.pure_starved = pure_tele.starvation().first_crossing() != TimeNs(-1);

  start = std::chrono::steady_clock::now();
  auto hybrid = golden::build_golden(spec);
  obs::FlowTelemetry tele;
  tele.attach(*hybrid);
  warp::WarpRunner runner(std::move(hybrid), warp::WarpConfig{});
  runner.on_fork = [&tele](Scenario& fsc, TimeNs from, TimeNs to,
                           const std::vector<uint64_t>& credits) {
    tele.note_warp(fsc, from, to, credits);
  };
  runner.run_until(end);
  tele.finish(end);
  c.hybrid_wall_s = wall_seconds_since(start);
  c.hybrid_starved = tele.starvation().first_crossing() != TimeNs(-1);
  c.warps = runner.stats().warps;
  c.warped_seconds = runner.stats().warped_seconds;

  double pure_sum = 0, hybrid_sum = 0;
  for (size_t i = 0; i < pure->flow_count(); ++i) {
    const double p = pure->throughput(i, TimeNs::zero(), end).to_mbps();
    const double h =
        runner.scenario().throughput(i, TimeNs::zero(), end).to_mbps();
    const double err = std::abs(h - p) / std::max(p, 1e-9);
    c.max_tput_rel_err = std::max(c.max_tput_rel_err, err);
    pure_sum += p;
    hybrid_sum += h;
  }
  c.agg_tput_rel_err =
      std::abs(hybrid_sum - pure_sum) / std::max(pure_sum, 1e-9);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_warp.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  // Quick mode keeps the onsets (60 s) inside the horizon but trades the
  // hour-scale tail for CI time; the speedup bar only applies to the full
  // horizons, where warped time dominates.
  const double dur = quick ? 300 : 3600;

  bench::header("Hybrid packet/fluid fast-forward wall-clock",
                "long-horizon starvation sweeps, pure packet vs sim/warp");

  std::vector<WarpCase> cases = {
      {.name = "vegas_duo_equilibrium", .flow_set = "vegas+vegas",
       .duration_s = dur},
      {.name = "vegas_step_starvation",
       .flow_set = "vegas:datajitter=step:30,60+vegas", .duration_s = dur},
      {.name = "copa_duo_equilibrium", .flow_set = "copa+copa",
       .duration_s = dur},
      {.name = "bbr_duo_equilibrium", .flow_set = "bbr+bbr",
       .duration_s = dur, .per_flow_bar = false},
      // Honesty case: Copa under a post-onset constant delay falls into a
      // queue-drain limit cycle (RTT band ~80 ms), which is not an
      // equilibrium — the engine must refuse and fall back to pure packet
      // simulation, still matching the verdict. No speedup bar.
      {.name = "copa_step_limit_cycle",
       .flow_set = "copa+copa:datajitter=step:30,60", .duration_s = dur,
       .expect_warp = false},
  };

  for (WarpCase& c : cases) run_case(c);

  Table t({"scenario", "horizon", "pure (s)", "hybrid (s)", "speedup",
           "warps", "warped (s)", "tput err", "verdict"});
  double min_speedup = 1e300;
  bool all_verdicts = true;
  bool all_tput = true;
  for (const WarpCase& c : cases) {
    t.add_row({c.name, Table::num(c.duration_s, 0) + "s",
               Table::num(c.pure_wall_s, 2), Table::num(c.hybrid_wall_s, 3),
               Table::num(c.speedup(), 1) + "x" +
                   (c.expect_warp ? "" : " (no bar)"),
               std::to_string(c.warps), Table::num(c.warped_seconds, 0),
               Table::num(c.max_tput_rel_err * 100, 1) + "%",
               c.verdict_match() ? (c.pure_starved ? "starved (both)"
                                                   : "fair (both)")
                                 : "MISMATCH"});
    if (c.expect_warp) min_speedup = std::min(min_speedup, c.speedup());
    all_verdicts = all_verdicts && c.verdict_match();
    // Per-flow error is bounded by the split asymmetry the engine's 20%
    // rate certification allows at warp time; aggregate link throughput
    // must track much tighter, since warps credit the measured link share.
    all_tput = all_tput &&
               (!c.per_flow_bar || c.max_tput_rel_err <= 0.20) &&
               c.agg_tput_rel_err <= 0.05;
  }
  t.print(std::cout);
  std::cout << "\n(The hybrid runs re-enter packet simulation around every "
               "jitter onset and epoch\nmark, so verdicts come from real "
               "packet dynamics; only certified-converged\nintervals are "
               "integrated analytically.)\n";

  const bool speedup_ok = quick || min_speedup >= 10.0;
  std::ofstream os(out);
  os << "{\n  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"min_speedup\": " << min_speedup << ",\n"
     << "  \"all_verdicts_match\": " << (all_verdicts ? "true" : "false")
     << ",\n"
     << "  \"all_throughput_within_budget\": " << (all_tput ? "true" : "false")
     << ",\n  \"cases\": [\n";
  for (size_t i = 0; i < cases.size(); ++i) {
    const WarpCase& c = cases[i];
    os << "    {\"name\": \"" << c.name << "\", \"horizon_s\": "
       << c.duration_s << ", \"pure_wall_s\": " << c.pure_wall_s
       << ", \"hybrid_wall_s\": " << c.hybrid_wall_s << ", \"speedup\": "
       << c.speedup() << ", \"warps\": " << c.warps << ", \"warped_seconds\": "
       << c.warped_seconds << ", \"speedup_bar\": "
       << (c.expect_warp ? "true" : "false") << ", \"per_flow_bar\": "
       << (c.per_flow_bar ? "true" : "false")
       << ", \"max_tput_rel_err\": " << c.max_tput_rel_err
       << ", \"agg_tput_rel_err\": " << c.agg_tput_rel_err
       << ", \"starved_pure\": " << (c.pure_starved ? "true" : "false")
       << ", \"starved_hybrid\": " << (c.hybrid_starved ? "true" : "false")
       << ", \"verdict_match\": " << (c.verdict_match() ? "true" : "false")
       << "}" << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  os.close();
  std::printf("wrote %s\n", out.c_str());

  if (!all_verdicts || !all_tput) {
    std::fprintf(stderr, "FAIL: hybrid/pure disagreement outside the error "
                         "budget\n");
    return 1;
  }
  if (!speedup_ok) {
    std::fprintf(stderr, "FAIL: min speedup %.1fx below the 10x bar\n",
                 min_speedup);
    return 1;
  }
  return 0;
}
