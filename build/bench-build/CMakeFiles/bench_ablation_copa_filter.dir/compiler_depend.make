# Empty compiler generated dependencies file for bench_ablation_copa_filter.
# This may be replaced when dependencies are built.
