file(REMOVE_RECURSE
  "../bench/bench_algorithm1"
  "../bench/bench_algorithm1.pdb"
  "CMakeFiles/bench_algorithm1.dir/bench_algorithm1.cpp.o"
  "CMakeFiles/bench_algorithm1.dir/bench_algorithm1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_algorithm1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
