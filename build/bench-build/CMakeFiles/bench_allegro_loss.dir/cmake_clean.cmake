file(REMOVE_RECURSE
  "../bench/bench_allegro_loss"
  "../bench/bench_allegro_loss.pdb"
  "CMakeFiles/bench_allegro_loss.dir/bench_allegro_loss.cpp.o"
  "CMakeFiles/bench_allegro_loss.dir/bench_allegro_loss.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_allegro_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
