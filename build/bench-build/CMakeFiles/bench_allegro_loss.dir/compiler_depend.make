# Empty compiler generated dependencies file for bench_allegro_loss.
# This may be replaced when dependencies are built.
