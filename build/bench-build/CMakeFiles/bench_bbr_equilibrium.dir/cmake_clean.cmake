file(REMOVE_RECURSE
  "../bench/bench_bbr_equilibrium"
  "../bench/bench_bbr_equilibrium.pdb"
  "CMakeFiles/bench_bbr_equilibrium.dir/bench_bbr_equilibrium.cpp.o"
  "CMakeFiles/bench_bbr_equilibrium.dir/bench_bbr_equilibrium.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bbr_equilibrium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
