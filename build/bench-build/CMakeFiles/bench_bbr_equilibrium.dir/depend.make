# Empty dependencies file for bench_bbr_equilibrium.
# This may be replaced when dependencies are built.
