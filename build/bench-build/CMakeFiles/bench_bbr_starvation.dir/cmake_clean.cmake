file(REMOVE_RECURSE
  "../bench/bench_bbr_starvation"
  "../bench/bench_bbr_starvation.pdb"
  "CMakeFiles/bench_bbr_starvation.dir/bench_bbr_starvation.cpp.o"
  "CMakeFiles/bench_bbr_starvation.dir/bench_bbr_starvation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bbr_starvation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
