# Empty compiler generated dependencies file for bench_bbr_starvation.
# This may be replaced when dependencies are built.
