file(REMOVE_RECURSE
  "../bench/bench_copa_starvation"
  "../bench/bench_copa_starvation.pdb"
  "CMakeFiles/bench_copa_starvation.dir/bench_copa_starvation.cpp.o"
  "CMakeFiles/bench_copa_starvation.dir/bench_copa_starvation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_copa_starvation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
