# Empty compiler generated dependencies file for bench_copa_starvation.
# This may be replaced when dependencies are built.
