file(REMOVE_RECURSE
  "../bench/bench_ecn_aqm"
  "../bench/bench_ecn_aqm.pdb"
  "CMakeFiles/bench_ecn_aqm.dir/bench_ecn_aqm.cpp.o"
  "CMakeFiles/bench_ecn_aqm.dir/bench_ecn_aqm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ecn_aqm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
