# Empty dependencies file for bench_ecn_aqm.
# This may be replaced when dependencies are built.
