# Empty compiler generated dependencies file for bench_fig1_convergence.
# This may be replaced when dependencies are built.
