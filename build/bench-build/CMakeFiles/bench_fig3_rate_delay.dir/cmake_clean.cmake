file(REMOVE_RECURSE
  "../bench/bench_fig3_rate_delay"
  "../bench/bench_fig3_rate_delay.pdb"
  "CMakeFiles/bench_fig3_rate_delay.dir/bench_fig3_rate_delay.cpp.o"
  "CMakeFiles/bench_fig3_rate_delay.dir/bench_fig3_rate_delay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_rate_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
