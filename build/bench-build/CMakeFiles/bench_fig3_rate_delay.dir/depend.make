# Empty dependencies file for bench_fig3_rate_delay.
# This may be replaced when dependencies are built.
