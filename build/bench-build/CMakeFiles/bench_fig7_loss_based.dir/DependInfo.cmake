
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_loss_based.cpp" "bench-build/CMakeFiles/bench_fig7_loss_based.dir/bench_fig7_loss_based.cpp.o" "gcc" "bench-build/CMakeFiles/bench_fig7_loss_based.dir/bench_fig7_loss_based.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ccstarve_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/ccstarve_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ccstarve_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/ccstarve_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccstarve_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
