file(REMOVE_RECURSE
  "../bench/bench_fig7_loss_based"
  "../bench/bench_fig7_loss_based.pdb"
  "CMakeFiles/bench_fig7_loss_based.dir/bench_fig7_loss_based.cpp.o"
  "CMakeFiles/bench_fig7_loss_based.dir/bench_fig7_loss_based.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_loss_based.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
