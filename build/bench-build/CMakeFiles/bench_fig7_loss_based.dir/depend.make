# Empty dependencies file for bench_fig7_loss_based.
# This may be replaced when dependencies are built.
