file(REMOVE_RECURSE
  "../bench/bench_fluid_validation"
  "../bench/bench_fluid_validation.pdb"
  "CMakeFiles/bench_fluid_validation.dir/bench_fluid_validation.cpp.o"
  "CMakeFiles/bench_fluid_validation.dir/bench_fluid_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fluid_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
