file(REMOVE_RECURSE
  "../bench/bench_rate_range"
  "../bench/bench_rate_range.pdb"
  "CMakeFiles/bench_rate_range.dir/bench_rate_range.cpp.o"
  "CMakeFiles/bench_rate_range.dir/bench_rate_range.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rate_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
