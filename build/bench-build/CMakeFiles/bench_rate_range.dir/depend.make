# Empty dependencies file for bench_rate_range.
# This may be replaced when dependencies are built.
