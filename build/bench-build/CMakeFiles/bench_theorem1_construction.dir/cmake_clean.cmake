file(REMOVE_RECURSE
  "../bench/bench_theorem1_construction"
  "../bench/bench_theorem1_construction.pdb"
  "CMakeFiles/bench_theorem1_construction.dir/bench_theorem1_construction.cpp.o"
  "CMakeFiles/bench_theorem1_construction.dir/bench_theorem1_construction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem1_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
