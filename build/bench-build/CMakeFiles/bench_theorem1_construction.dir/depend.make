# Empty dependencies file for bench_theorem1_construction.
# This may be replaced when dependencies are built.
