file(REMOVE_RECURSE
  "../bench/bench_theorem2_underutilization"
  "../bench/bench_theorem2_underutilization.pdb"
  "CMakeFiles/bench_theorem2_underutilization.dir/bench_theorem2_underutilization.cpp.o"
  "CMakeFiles/bench_theorem2_underutilization.dir/bench_theorem2_underutilization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem2_underutilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
