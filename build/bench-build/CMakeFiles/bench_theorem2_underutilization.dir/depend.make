# Empty dependencies file for bench_theorem2_underutilization.
# This may be replaced when dependencies are built.
