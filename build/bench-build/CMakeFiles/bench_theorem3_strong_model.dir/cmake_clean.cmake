file(REMOVE_RECURSE
  "../bench/bench_theorem3_strong_model"
  "../bench/bench_theorem3_strong_model.pdb"
  "CMakeFiles/bench_theorem3_strong_model.dir/bench_theorem3_strong_model.cpp.o"
  "CMakeFiles/bench_theorem3_strong_model.dir/bench_theorem3_strong_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem3_strong_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
