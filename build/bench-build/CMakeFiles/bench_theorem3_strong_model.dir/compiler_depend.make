# Empty compiler generated dependencies file for bench_theorem3_strong_model.
# This may be replaced when dependencies are built.
