file(REMOVE_RECURSE
  "../bench/bench_vivace_starvation"
  "../bench/bench_vivace_starvation.pdb"
  "CMakeFiles/bench_vivace_starvation.dir/bench_vivace_starvation.cpp.o"
  "CMakeFiles/bench_vivace_starvation.dir/bench_vivace_starvation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vivace_starvation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
