# Empty dependencies file for bench_vivace_starvation.
# This may be replaced when dependencies are built.
