file(REMOVE_RECURSE
  "CMakeFiles/design_for_jitter.dir/design_for_jitter.cpp.o"
  "CMakeFiles/design_for_jitter.dir/design_for_jitter.cpp.o.d"
  "design_for_jitter"
  "design_for_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_for_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
