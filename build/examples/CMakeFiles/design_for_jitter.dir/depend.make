# Empty dependencies file for design_for_jitter.
# This may be replaced when dependencies are built.
