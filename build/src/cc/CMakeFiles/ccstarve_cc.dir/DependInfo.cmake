
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/allegro.cpp" "src/cc/CMakeFiles/ccstarve_cc.dir/allegro.cpp.o" "gcc" "src/cc/CMakeFiles/ccstarve_cc.dir/allegro.cpp.o.d"
  "/root/repo/src/cc/bbr.cpp" "src/cc/CMakeFiles/ccstarve_cc.dir/bbr.cpp.o" "gcc" "src/cc/CMakeFiles/ccstarve_cc.dir/bbr.cpp.o.d"
  "/root/repo/src/cc/copa.cpp" "src/cc/CMakeFiles/ccstarve_cc.dir/copa.cpp.o" "gcc" "src/cc/CMakeFiles/ccstarve_cc.dir/copa.cpp.o.d"
  "/root/repo/src/cc/cubic.cpp" "src/cc/CMakeFiles/ccstarve_cc.dir/cubic.cpp.o" "gcc" "src/cc/CMakeFiles/ccstarve_cc.dir/cubic.cpp.o.d"
  "/root/repo/src/cc/ecn_reno.cpp" "src/cc/CMakeFiles/ccstarve_cc.dir/ecn_reno.cpp.o" "gcc" "src/cc/CMakeFiles/ccstarve_cc.dir/ecn_reno.cpp.o.d"
  "/root/repo/src/cc/fast.cpp" "src/cc/CMakeFiles/ccstarve_cc.dir/fast.cpp.o" "gcc" "src/cc/CMakeFiles/ccstarve_cc.dir/fast.cpp.o.d"
  "/root/repo/src/cc/jitter_aware.cpp" "src/cc/CMakeFiles/ccstarve_cc.dir/jitter_aware.cpp.o" "gcc" "src/cc/CMakeFiles/ccstarve_cc.dir/jitter_aware.cpp.o.d"
  "/root/repo/src/cc/ledbat.cpp" "src/cc/CMakeFiles/ccstarve_cc.dir/ledbat.cpp.o" "gcc" "src/cc/CMakeFiles/ccstarve_cc.dir/ledbat.cpp.o.d"
  "/root/repo/src/cc/misc.cpp" "src/cc/CMakeFiles/ccstarve_cc.dir/misc.cpp.o" "gcc" "src/cc/CMakeFiles/ccstarve_cc.dir/misc.cpp.o.d"
  "/root/repo/src/cc/pcc_common.cpp" "src/cc/CMakeFiles/ccstarve_cc.dir/pcc_common.cpp.o" "gcc" "src/cc/CMakeFiles/ccstarve_cc.dir/pcc_common.cpp.o.d"
  "/root/repo/src/cc/reno.cpp" "src/cc/CMakeFiles/ccstarve_cc.dir/reno.cpp.o" "gcc" "src/cc/CMakeFiles/ccstarve_cc.dir/reno.cpp.o.d"
  "/root/repo/src/cc/vegas.cpp" "src/cc/CMakeFiles/ccstarve_cc.dir/vegas.cpp.o" "gcc" "src/cc/CMakeFiles/ccstarve_cc.dir/vegas.cpp.o.d"
  "/root/repo/src/cc/verus.cpp" "src/cc/CMakeFiles/ccstarve_cc.dir/verus.cpp.o" "gcc" "src/cc/CMakeFiles/ccstarve_cc.dir/verus.cpp.o.d"
  "/root/repo/src/cc/vivace.cpp" "src/cc/CMakeFiles/ccstarve_cc.dir/vivace.cpp.o" "gcc" "src/cc/CMakeFiles/ccstarve_cc.dir/vivace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ccstarve_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
