file(REMOVE_RECURSE
  "CMakeFiles/ccstarve_cc.dir/allegro.cpp.o"
  "CMakeFiles/ccstarve_cc.dir/allegro.cpp.o.d"
  "CMakeFiles/ccstarve_cc.dir/bbr.cpp.o"
  "CMakeFiles/ccstarve_cc.dir/bbr.cpp.o.d"
  "CMakeFiles/ccstarve_cc.dir/copa.cpp.o"
  "CMakeFiles/ccstarve_cc.dir/copa.cpp.o.d"
  "CMakeFiles/ccstarve_cc.dir/cubic.cpp.o"
  "CMakeFiles/ccstarve_cc.dir/cubic.cpp.o.d"
  "CMakeFiles/ccstarve_cc.dir/ecn_reno.cpp.o"
  "CMakeFiles/ccstarve_cc.dir/ecn_reno.cpp.o.d"
  "CMakeFiles/ccstarve_cc.dir/fast.cpp.o"
  "CMakeFiles/ccstarve_cc.dir/fast.cpp.o.d"
  "CMakeFiles/ccstarve_cc.dir/jitter_aware.cpp.o"
  "CMakeFiles/ccstarve_cc.dir/jitter_aware.cpp.o.d"
  "CMakeFiles/ccstarve_cc.dir/ledbat.cpp.o"
  "CMakeFiles/ccstarve_cc.dir/ledbat.cpp.o.d"
  "CMakeFiles/ccstarve_cc.dir/misc.cpp.o"
  "CMakeFiles/ccstarve_cc.dir/misc.cpp.o.d"
  "CMakeFiles/ccstarve_cc.dir/pcc_common.cpp.o"
  "CMakeFiles/ccstarve_cc.dir/pcc_common.cpp.o.d"
  "CMakeFiles/ccstarve_cc.dir/reno.cpp.o"
  "CMakeFiles/ccstarve_cc.dir/reno.cpp.o.d"
  "CMakeFiles/ccstarve_cc.dir/vegas.cpp.o"
  "CMakeFiles/ccstarve_cc.dir/vegas.cpp.o.d"
  "CMakeFiles/ccstarve_cc.dir/verus.cpp.o"
  "CMakeFiles/ccstarve_cc.dir/verus.cpp.o.d"
  "CMakeFiles/ccstarve_cc.dir/vivace.cpp.o"
  "CMakeFiles/ccstarve_cc.dir/vivace.cpp.o.d"
  "libccstarve_cc.a"
  "libccstarve_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccstarve_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
