file(REMOVE_RECURSE
  "libccstarve_cc.a"
)
