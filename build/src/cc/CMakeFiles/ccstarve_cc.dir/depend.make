# Empty dependencies file for ccstarve_cc.
# This may be replaced when dependencies are built.
