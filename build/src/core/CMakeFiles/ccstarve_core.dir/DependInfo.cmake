
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/equilibrium.cpp" "src/core/CMakeFiles/ccstarve_core.dir/equilibrium.cpp.o" "gcc" "src/core/CMakeFiles/ccstarve_core.dir/equilibrium.cpp.o.d"
  "/root/repo/src/core/fairness.cpp" "src/core/CMakeFiles/ccstarve_core.dir/fairness.cpp.o" "gcc" "src/core/CMakeFiles/ccstarve_core.dir/fairness.cpp.o.d"
  "/root/repo/src/core/fluid.cpp" "src/core/CMakeFiles/ccstarve_core.dir/fluid.cpp.o" "gcc" "src/core/CMakeFiles/ccstarve_core.dir/fluid.cpp.o.d"
  "/root/repo/src/core/jitter_search.cpp" "src/core/CMakeFiles/ccstarve_core.dir/jitter_search.cpp.o" "gcc" "src/core/CMakeFiles/ccstarve_core.dir/jitter_search.cpp.o.d"
  "/root/repo/src/core/model_check.cpp" "src/core/CMakeFiles/ccstarve_core.dir/model_check.cpp.o" "gcc" "src/core/CMakeFiles/ccstarve_core.dir/model_check.cpp.o.d"
  "/root/repo/src/core/rate_delay.cpp" "src/core/CMakeFiles/ccstarve_core.dir/rate_delay.cpp.o" "gcc" "src/core/CMakeFiles/ccstarve_core.dir/rate_delay.cpp.o.d"
  "/root/repo/src/core/rate_range.cpp" "src/core/CMakeFiles/ccstarve_core.dir/rate_range.cpp.o" "gcc" "src/core/CMakeFiles/ccstarve_core.dir/rate_range.cpp.o.d"
  "/root/repo/src/core/solo.cpp" "src/core/CMakeFiles/ccstarve_core.dir/solo.cpp.o" "gcc" "src/core/CMakeFiles/ccstarve_core.dir/solo.cpp.o.d"
  "/root/repo/src/core/theorem1.cpp" "src/core/CMakeFiles/ccstarve_core.dir/theorem1.cpp.o" "gcc" "src/core/CMakeFiles/ccstarve_core.dir/theorem1.cpp.o.d"
  "/root/repo/src/core/theorem2.cpp" "src/core/CMakeFiles/ccstarve_core.dir/theorem2.cpp.o" "gcc" "src/core/CMakeFiles/ccstarve_core.dir/theorem2.cpp.o.d"
  "/root/repo/src/core/theorem3.cpp" "src/core/CMakeFiles/ccstarve_core.dir/theorem3.cpp.o" "gcc" "src/core/CMakeFiles/ccstarve_core.dir/theorem3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ccstarve_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/ccstarve_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccstarve_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
