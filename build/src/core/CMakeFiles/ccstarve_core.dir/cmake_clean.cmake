file(REMOVE_RECURSE
  "CMakeFiles/ccstarve_core.dir/equilibrium.cpp.o"
  "CMakeFiles/ccstarve_core.dir/equilibrium.cpp.o.d"
  "CMakeFiles/ccstarve_core.dir/fairness.cpp.o"
  "CMakeFiles/ccstarve_core.dir/fairness.cpp.o.d"
  "CMakeFiles/ccstarve_core.dir/fluid.cpp.o"
  "CMakeFiles/ccstarve_core.dir/fluid.cpp.o.d"
  "CMakeFiles/ccstarve_core.dir/jitter_search.cpp.o"
  "CMakeFiles/ccstarve_core.dir/jitter_search.cpp.o.d"
  "CMakeFiles/ccstarve_core.dir/model_check.cpp.o"
  "CMakeFiles/ccstarve_core.dir/model_check.cpp.o.d"
  "CMakeFiles/ccstarve_core.dir/rate_delay.cpp.o"
  "CMakeFiles/ccstarve_core.dir/rate_delay.cpp.o.d"
  "CMakeFiles/ccstarve_core.dir/rate_range.cpp.o"
  "CMakeFiles/ccstarve_core.dir/rate_range.cpp.o.d"
  "CMakeFiles/ccstarve_core.dir/solo.cpp.o"
  "CMakeFiles/ccstarve_core.dir/solo.cpp.o.d"
  "CMakeFiles/ccstarve_core.dir/theorem1.cpp.o"
  "CMakeFiles/ccstarve_core.dir/theorem1.cpp.o.d"
  "CMakeFiles/ccstarve_core.dir/theorem2.cpp.o"
  "CMakeFiles/ccstarve_core.dir/theorem2.cpp.o.d"
  "CMakeFiles/ccstarve_core.dir/theorem3.cpp.o"
  "CMakeFiles/ccstarve_core.dir/theorem3.cpp.o.d"
  "libccstarve_core.a"
  "libccstarve_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccstarve_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
