file(REMOVE_RECURSE
  "libccstarve_core.a"
)
