# Empty dependencies file for ccstarve_core.
# This may be replaced when dependencies are built.
