file(REMOVE_RECURSE
  "CMakeFiles/ccstarve_emu.dir/trace.cpp.o"
  "CMakeFiles/ccstarve_emu.dir/trace.cpp.o.d"
  "CMakeFiles/ccstarve_emu.dir/trace_link.cpp.o"
  "CMakeFiles/ccstarve_emu.dir/trace_link.cpp.o.d"
  "libccstarve_emu.a"
  "libccstarve_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccstarve_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
