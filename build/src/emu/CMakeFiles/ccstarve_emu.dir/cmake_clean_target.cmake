file(REMOVE_RECURSE
  "libccstarve_emu.a"
)
