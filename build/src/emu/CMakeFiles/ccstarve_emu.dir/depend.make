# Empty dependencies file for ccstarve_emu.
# This may be replaced when dependencies are built.
