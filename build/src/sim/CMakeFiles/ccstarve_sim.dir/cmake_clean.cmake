file(REMOVE_RECURSE
  "CMakeFiles/ccstarve_sim.dir/jitter.cpp.o"
  "CMakeFiles/ccstarve_sim.dir/jitter.cpp.o.d"
  "CMakeFiles/ccstarve_sim.dir/link.cpp.o"
  "CMakeFiles/ccstarve_sim.dir/link.cpp.o.d"
  "CMakeFiles/ccstarve_sim.dir/receiver.cpp.o"
  "CMakeFiles/ccstarve_sim.dir/receiver.cpp.o.d"
  "CMakeFiles/ccstarve_sim.dir/scenario.cpp.o"
  "CMakeFiles/ccstarve_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/ccstarve_sim.dir/sender.cpp.o"
  "CMakeFiles/ccstarve_sim.dir/sender.cpp.o.d"
  "CMakeFiles/ccstarve_sim.dir/shaper.cpp.o"
  "CMakeFiles/ccstarve_sim.dir/shaper.cpp.o.d"
  "CMakeFiles/ccstarve_sim.dir/simulator.cpp.o"
  "CMakeFiles/ccstarve_sim.dir/simulator.cpp.o.d"
  "libccstarve_sim.a"
  "libccstarve_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccstarve_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
