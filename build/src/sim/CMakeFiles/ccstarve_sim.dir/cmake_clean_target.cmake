file(REMOVE_RECURSE
  "libccstarve_sim.a"
)
