# Empty compiler generated dependencies file for ccstarve_sim.
# This may be replaced when dependencies are built.
