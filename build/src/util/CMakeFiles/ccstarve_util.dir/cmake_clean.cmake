file(REMOVE_RECURSE
  "CMakeFiles/ccstarve_util.dir/rng.cpp.o"
  "CMakeFiles/ccstarve_util.dir/rng.cpp.o.d"
  "CMakeFiles/ccstarve_util.dir/series.cpp.o"
  "CMakeFiles/ccstarve_util.dir/series.cpp.o.d"
  "CMakeFiles/ccstarve_util.dir/stats.cpp.o"
  "CMakeFiles/ccstarve_util.dir/stats.cpp.o.d"
  "CMakeFiles/ccstarve_util.dir/table.cpp.o"
  "CMakeFiles/ccstarve_util.dir/table.cpp.o.d"
  "CMakeFiles/ccstarve_util.dir/units.cpp.o"
  "CMakeFiles/ccstarve_util.dir/units.cpp.o.d"
  "libccstarve_util.a"
  "libccstarve_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccstarve_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
