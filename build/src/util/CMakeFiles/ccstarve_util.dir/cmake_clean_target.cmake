file(REMOVE_RECURSE
  "libccstarve_util.a"
)
