# Empty compiler generated dependencies file for ccstarve_util.
# This may be replaced when dependencies are built.
