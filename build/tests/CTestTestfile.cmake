# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/cc_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/emu_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/fluid_test[1]_include.cmake")
include("/root/repo/build/tests/reliability_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
