file(REMOVE_RECURSE
  "../tools/ccstarve_run"
  "../tools/ccstarve_run.pdb"
  "CMakeFiles/ccstarve_run.dir/ccstarve_run.cpp.o"
  "CMakeFiles/ccstarve_run.dir/ccstarve_run.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccstarve_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
