# Empty compiler generated dependencies file for ccstarve_run.
# This may be replaced when dependencies are built.
