file(REMOVE_RECURSE
  "../tools/ccstarve_trace"
  "../tools/ccstarve_trace.pdb"
  "CMakeFiles/ccstarve_trace.dir/ccstarve_trace.cpp.o"
  "CMakeFiles/ccstarve_trace.dir/ccstarve_trace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccstarve_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
