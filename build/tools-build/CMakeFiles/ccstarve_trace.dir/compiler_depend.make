# Empty compiler generated dependencies file for ccstarve_trace.
# This may be replaced when dependencies are built.
