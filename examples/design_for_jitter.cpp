// Designing a CCA for a known jitter bound (§6.3 as a recipe).
//
// Given a path's non-congestive jitter bound D, a tolerable unfairness s,
// and a delay budget Rmax, this example:
//   1. computes the Eq.-2 rate range the design supports,
//   2. instantiates the JitterAware CCA (the paper's Algorithm 1) with
//      those parameters,
//   3. runs it against the bounded-jitter adversary family, and
//   4. contrasts it with Vegas under the identical adversary.
#include <cstdio>

#include "cc/jitter_aware.hpp"
#include "cc/vegas.hpp"
#include "core/jitter_search.hpp"
#include "core/rate_range.hpp"

using namespace ccstarve;

int main() {
  // The path we are designing for.
  const TimeNs rm = TimeNs::millis(100);
  const TimeNs d = TimeNs::millis(10);   // expected jitter bound
  const TimeNs rmax = TimeNs::millis(200);
  const double s = 2.0;                  // tolerable unfairness

  RateRangeParams rr;
  rr.d = d;
  rr.s = s;
  rr.rm = rm;
  rr.rmax = rm + rmax;
  std::printf("design inputs: Rm = %s, D = %s, Rmax = Rm + %s, s = %.0f\n",
              rm.to_string().c_str(), d.to_string().c_str(),
              rmax.to_string().c_str(), s);
  std::printf("Eq. 2 rate range mu+/mu- = %.0f (Vegas-family Eq. 1 would "
              "give %.1f)\n\n",
              exponential_rate_range(rr), vegas_family_rate_range(rr));

  JitterAware::Params p;
  p.rm = rm;
  p.d = d;
  p.rmax = rmax;
  p.s = s;

  JitterSearchConfig search;
  search.link_rate = Rate::mbps(40);
  search.min_rtt = rm;
  search.d = d;
  search.duration = TimeNs::seconds(60);
  search.f = 0.3;
  search.s = s * s + 1.0;  // two flows can each be s off their target
  search.random_schedules = 2;

  for (const auto& [name, maker] :
       std::vector<std::pair<std::string, CcaMaker>>{
           {"designed (Algorithm 1)",
            [p] { return std::unique_ptr<Cca>(new JitterAware(p)); }},
           {"vegas", [] { return std::unique_ptr<Cca>(new Vegas()); }}}) {
    const JitterSearchResult res = search_jitter_adversary(maker, search);
    std::printf("%-24s worst utilization %.2f, worst ratio %5.2f -> %s\n",
                name.c_str(), res.worst_utilization, res.worst_ratio,
                res.any_violation ? "VIOLATED by the adversary"
                                  : "no violation found");
  }
  std::printf(
      "\nthe designed CCA keeps its delay oscillation above D/2 (the "
      "paper's necessary\ncondition), trading queueing delay for "
      "starvation-freedom within [mu-, mu+].\n");
  return 0;
}
