// Quickstart: build a two-flow scenario, run it, read the results.
//
// This is the 60-second tour of the public API:
//   1. ScenarioConfig describes the shared bottleneck (the paper's Fig. in
//      §3: FIFO queue + propagation delay + per-flow jitter elements).
//   2. FlowSpec attaches a congestion-control algorithm and a path to each
//      flow.
//   3. run_until() advances the deterministic discrete-event simulation.
//   4. throughput()/stats() expose what happened.
//
// Here: a Copa flow and a Cubic flow share a 40 Mbit/s, 50 ms link with a
// 1-BDP buffer — the classic "delay-based vs buffer-filler" matchup that
// motivates Copa's mode switching.
#include <cstdio>

#include "cc/copa.hpp"
#include "cc/cubic.hpp"
#include "sim/scenario.hpp"

using namespace ccstarve;

int main() {
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(40);
  cfg.buffer_bytes = static_cast<uint64_t>(
      cfg.link_rate.bytes_per_second() * 0.050);  // 1 BDP

  Scenario scenario(std::move(cfg));

  FlowSpec copa_flow;
  copa_flow.cca = std::make_unique<Copa>();
  copa_flow.min_rtt = TimeNs::millis(50);
  const uint32_t copa_id = scenario.add_flow(std::move(copa_flow));

  FlowSpec cubic_flow;
  cubic_flow.cca = std::make_unique<Cubic>();
  cubic_flow.min_rtt = TimeNs::millis(50);
  cubic_flow.start_at = TimeNs::seconds(5);  // joins late
  const uint32_t cubic_id = scenario.add_flow(std::move(cubic_flow));

  scenario.run_until(TimeNs::seconds(60));

  std::printf("after 60 simulated seconds on a %s link:\n",
              cfg.link_rate.to_string().c_str());
  std::printf("  copa : %6.2f Mbit/s (%llu packets, %llu fast retransmits)\n",
              scenario.throughput(copa_id).to_mbps(),
              static_cast<unsigned long long>(
                  scenario.sender(copa_id).packets_sent()),
              static_cast<unsigned long long>(
                  scenario.stats(copa_id).fast_retransmits));
  std::printf("  cubic: %6.2f Mbit/s (%llu packets, %llu fast retransmits)\n",
              scenario.throughput(cubic_id).to_mbps(),
              static_cast<unsigned long long>(
                  scenario.sender(cubic_id).packets_sent()),
              static_cast<unsigned long long>(
                  scenario.stats(cubic_id).fast_retransmits));

  // Per-flow RTT trajectories are TimeSeries you can query or dump as CSV.
  const auto& copa_rtt = scenario.stats(copa_id).rtt_seconds;
  std::printf("  copa RTT at t=30s: %.1f ms (min propagation 50 ms)\n",
              copa_rtt.at(TimeNs::seconds(30)) * 1e3);
  std::printf("  events processed: %llu\n",
              static_cast<unsigned long long>(
                  scenario.sim().events_processed()));
  return 0;
}
