// Starvation demo: pick a CCA and a jitter pattern on the command line and
// watch one of two otherwise-identical flows starve — the paper's headline
// phenomenon, interactively.
//
//   usage: starvation_demo [cca] [attack]
//     cca    : vegas | fast | copa | bbr | vivace   (default: vegas)
//     attack : minrtt | quantize | constant          (default: minrtt)
//
// Both flows run the same CCA on the same 60 Mbit/s, 60 ms path; only flow 0
// passes through the selected non-congestive delay element (all within a
// 10 ms budget). Prints a live-style table of per-5s throughputs.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "cc/bbr.hpp"
#include "cc/copa.hpp"
#include "cc/fast.hpp"
#include "cc/vegas.hpp"
#include "cc/vivace.hpp"
#include "sim/scenario.hpp"

using namespace ccstarve;

namespace {

std::unique_ptr<Cca> make_cca(const std::string& name, uint64_t seed) {
  if (name == "fast") return std::make_unique<FastTcp>();
  if (name == "copa") {
    Copa::Params p;
    p.enable_mode_switching = false;
    p.min_rtt_window = TimeNs::seconds(600);
    return std::make_unique<Copa>(p);
  }
  if (name == "bbr") {
    Bbr::Params p;
    p.seed = seed;
    return std::make_unique<Bbr>(p);
  }
  if (name == "vivace") {
    Vivace::Params p;
    p.seed = seed;
    return std::make_unique<Vivace>(p);
  }
  return std::make_unique<Vegas>();
}

std::unique_ptr<JitterPolicy> make_attack(const std::string& name) {
  const TimeNs d = TimeNs::millis(10);
  if (name == "quantize") {
    // ACK aggregation: release only at multiples of D.
    return std::make_unique<PeriodicReleaseJitter>(TimeNs::millis(60));
  }
  if (name == "constant") {
    return std::make_unique<ConstantJitter>(d);
  }
  // min-RTT skew: +D on everything except one early packet.
  return std::make_unique<AllButOneJitter>(d, TimeNs::millis(200));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cca = argc > 1 ? argv[1] : "vegas";
  const std::string attack = argc > 2 ? argv[2] : "minrtt";

  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(60);
  cfg.jitter_budget = TimeNs::millis(10);
  Scenario sc(std::move(cfg));

  for (int i = 0; i < 2; ++i) {
    FlowSpec f;
    f.cca = make_cca(cca, 7 + static_cast<uint64_t>(i));
    f.min_rtt = TimeNs::millis(60);
    if (i == 0) f.ack_jitter = make_attack(attack);
    sc.add_flow(std::move(f));
  }

  std::printf("two %s flows on 60 Mbit/s / 60 ms; flow 0 behind a '%s' "
              "jitter element\n\n  t(s)   victim Mbit/s   clean Mbit/s\n",
              cca.c_str(), attack.c_str());
  for (int t = 5; t <= 60; t += 5) {
    sc.run_until(TimeNs::seconds(t));
    std::printf("  %3d   %12.2f   %12.2f\n", t,
                sc.throughput(0, TimeNs::seconds(t - 5), TimeNs::seconds(t))
                    .to_mbps(),
                sc.throughput(1, TimeNs::seconds(t - 5), TimeNs::seconds(t))
                    .to_mbps());
  }
  const double v = sc.throughput(0).to_mbps();
  const double c = sc.throughput(1).to_mbps();
  std::printf("\noverall: %.2f vs %.2f Mbit/s — ratio %.1f : 1\n", v, c,
              c / std::max(v, 1e-3));
  std::printf("jitter added to the victim stayed within %s of budget "
              "(max %s, %llu violations)\n",
              TimeNs::millis(10).to_string().c_str(),
              sc.ack_jitter_stats(0).max_added.to_string().c_str(),
              static_cast<unsigned long long>(
                  sc.ack_jitter_stats(0).budget_violations));
  return 0;
}
