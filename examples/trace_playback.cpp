// Mahimahi-style trace emulation: generate a cellular-like sawtooth
// delivery trace, save/reload it in Mahimahi's format, and run Copa and
// BBR over it back-to-back.
//
// This exercises the emu substrate the paper's experiments ran on (the
// Mahimahi link model: one MTU-sized delivery opportunity per trace line).
#include <cstdio>
#include <sstream>

#include "cc/bbr.hpp"
#include "cc/copa.hpp"
#include "emu/trace.hpp"
#include "emu/trace_link.hpp"
#include "sim/link.hpp"
#include "sim/receiver.hpp"
#include "sim/sender.hpp"
#include "sim/simulator.hpp"

using namespace ccstarve;

namespace {

struct RunResult {
  double mbps;
  double wasted_fraction;
};

RunResult run_over_trace(const DeliveryTrace& trace,
                         std::unique_ptr<Cca> cca) {
  Simulator sim;
  struct Pipe final : PacketHandler {
    PacketHandler* next = nullptr;
    void handle(Packet p) override { next->handle(p); }
  };
  Pipe to_link;
  Sender::Config sc;
  Sender sender(sim, sc, std::move(cca), to_link);
  Receiver receiver(sim, AckPolicy{}, sender);
  PropagationDelay prop(sim, TimeNs::millis(30), receiver);
  TraceDrivenLink::Config lc;
  lc.buffer_bytes = 300ull * kMss;
  TraceDrivenLink link(sim, trace, lc, prop);
  to_link.next = &link;

  sender.start(TimeNs::zero());
  const TimeNs duration = TimeNs::seconds(30);
  sim.run_until(duration);
  const uint64_t opportunities =
      link.opportunities_used() + link.opportunities_wasted();
  return {static_cast<double>(sender.delivered_bytes()) * 8.0 /
              duration.to_seconds() / 1e6,
          opportunities
              ? static_cast<double>(link.opportunities_wasted()) /
                    static_cast<double>(opportunities)
              : 0.0};
}

}  // namespace

int main() {
  // A stylized cellular link: capacity ramping between 2 and 16 Mbit/s with
  // a 4-second period.
  DeliveryTrace trace = DeliveryTrace::sawtooth(
      Rate::mbps(2), Rate::mbps(16), TimeNs::seconds(4), TimeNs::seconds(8));
  std::printf("generated sawtooth trace: %zu delivery opportunities, mean "
              "rate %s, span %s\n",
              trace.size(), trace.mean_rate().to_string().c_str(),
              trace.span().to_string().c_str());

  // Round-trip through Mahimahi's on-disk format.
  std::stringstream file;
  trace.write(file);
  trace = DeliveryTrace::parse(file);
  std::printf("round-tripped through Mahimahi format: %zu opportunities\n\n",
              trace.size());

  const RunResult copa = run_over_trace(trace, std::make_unique<Copa>());
  const RunResult bbr = run_over_trace(trace, std::make_unique<Bbr>());
  std::printf("copa over the trace: %6.2f Mbit/s (%.0f%% of opportunities "
              "idle)\n",
              copa.mbps, 100 * copa.wasted_fraction);
  std::printf("bbr  over the trace: %6.2f Mbit/s (%.0f%% of opportunities "
              "idle)\n",
              bbr.mbps, 100 * bbr.wasted_fraction);
  std::printf("\n(the trace loops forever; mean capacity is %s)\n",
              trace.mean_rate().to_string().c_str());
  return 0;
}
