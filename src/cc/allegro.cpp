#include "cc/allegro.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ccstarve {

Allegro::Allegro(const Params& params)
    : params_(params),
      rng_(params.seed),
      base_rate_(params.initial_rate),
      sending_rate_(params.initial_rate),
      eps_(params.base_eps) {}

double Allegro::utility(const MiReport& mi) const {
  const double x = mi.goodput().to_mbps();
  const double loss = mi.loss_rate();
  const double sig =
      1.0 / (1.0 + std::exp(-params_.sigmoid_alpha *
                            (params_.loss_threshold - loss)));
  return x * (1.0 - loss) * sig - x * loss;
}

void Allegro::on_packet_sent(TimeNs now, uint64_t seq, uint32_t /*bytes*/,
                             uint64_t /*inflight*/, bool retransmit) {
  tracker_.on_packet_sent(now, seq, retransmit);
  maybe_open_mi(now);
}

void Allegro::on_ack(const AckSample& ack) {
  srtt_.update(ack.rtt.to_seconds());
  tracker_.on_ack(ack.now, ack.acked_seq, ack.rtt);
  const TimeNs grace = TimeNs::seconds(std::max(2.0 * srtt_.value(), 0.01));
  while (auto mi = tracker_.poll_mature(ack.now, grace)) {
    on_mi_mature(*mi);
  }
  maybe_open_mi(ack.now);
}

void Allegro::maybe_open_mi(TimeNs now) {
  if (tracker_.has_open_mi() && now < tracker_.open_mi_end()) return;
  const double rtt = srtt_.initialized() ? srtt_.value() : 0.05;
  // Allegro randomizes the MI length in [1.7, 2.2] RTTs, floored so each MI
  // carries enough packets (~50) that the per-MI loss-rate estimate is not
  // pure shot noise at low rates.
  const double pkt_floor_s =
      50.0 * kMss / std::max(base_rate_.bytes_per_second(), 1.0);
  const TimeNs dur = TimeNs::seconds(
      std::max({rng_.uniform(1.7, 2.2) * rtt, pkt_floor_s, 0.005}));

  if (phase_ == Phase::kSlowStart) {
    sending_rate_ = base_rate_;
    tracker_.open(now, dur, sending_rate_, /*tag=*/-1);
    return;
  }

  if (trial_index_ == 0) {
    // Shuffle a fresh {+,+,-,-} assignment.
    bool assign[4] = {true, true, false, false};
    for (int i = 3; i > 0; --i) {
      const int j = static_cast<int>(rng_.next_below(i + 1));
      std::swap(assign[i], assign[j]);
    }
    std::copy(assign, assign + 4, trial_is_plus_);
    matured_ = 0;
  }
  const bool plus = trial_is_plus_[trial_index_];
  const double factor = plus ? 1.0 + eps_ : 1.0 - eps_;
  sending_rate_ = ccstarve::max(params_.min_rate, base_rate_ * factor);
  tracker_.open(now, dur, sending_rate_, trial_index_);
  trial_index_ = (trial_index_ + 1) % 4;
}

void Allegro::on_mi_mature(const MiReport& mi) {
  const double u = utility(mi);
  if (params_.verbose) {
    std::fprintf(stderr,
                 "allegro mi: tag=%d target=%.2fMbps sent=%llu acked=%llu "
                 "loss=%.3f goodput=%.2f u=%.2f phase=%d base=%.2f\n",
                 mi.tag, mi.target_rate.to_mbps(),
                 static_cast<unsigned long long>(mi.sent_pkts),
                 static_cast<unsigned long long>(mi.acked_pkts),
                 mi.loss_rate(), mi.goodput().to_mbps(), u,
                 static_cast<int>(phase_), base_rate_.to_mbps());
  }
  if (phase_ == Phase::kSlowStart) {
    // Exit only when the MI shows threshold-exceeding loss AND a clear
    // utility drop. Allegro is *designed* to tolerate sub-threshold random
    // loss, so a 2%-loss MI must not end the ramp (the §5.4 single-flow
    // control depends on this).
    const bool bad = mi.loss_rate() > params_.loss_threshold &&
                     have_prev_utility_ && u <= 0.8 * prev_utility_;
    ss_bad_streak_ = bad ? ss_bad_streak_ + 1 : 0;
    if (ss_bad_streak_ >= 2) {
      // Two consecutive over-threshold-loss MIs: genuine overload (a single
      // unlucky MI of sub-threshold random loss must not end the ramp).
      // Return to the last rate whose MI scored a healthy utility, as the
      // Allegro paper's slow start does.
      base_rate_ = ccstarve::max(
          last_good_rate_ > Rate::zero() ? last_good_rate_
                                         : base_rate_ * 0.5,
          params_.min_rate);
      phase_ = Phase::kDecision;
    } else if (!bad) {
      prev_utility_ = std::max(u, prev_utility_);
      have_prev_utility_ = true;
      last_good_rate_ = mi.goodput();
      base_rate_ = ccstarve::min(base_rate_ * 2.0, params_.max_rate);
    }
    return;
  }
  if (mi.tag < 0 || mi.tag >= 4) return;
  utilities_[mi.tag] = u;
  if (++matured_ == 4) {
    decide();
    matured_ = 0;
  }
}

void Allegro::decide() {
  // All four trials scoring negative utility proves the operating point is
  // past the loss cliff (the A/B comparison alone cannot see this once both
  // directions saturate); back off multiplicatively.
  if (*std::max_element(utilities_, utilities_ + 4) < 0.0) {
    base_rate_ = ccstarve::max(base_rate_ * 0.7, params_.min_rate);
    amplifier_ = 1;
    last_direction_ = 0;
    eps_ = params_.base_eps;
    return;
  }
  double u_plus_min = 1e300, u_plus_max = -1e300;
  double u_minus_min = 1e300, u_minus_max = -1e300;
  for (int i = 0; i < 4; ++i) {
    if (trial_is_plus_[i]) {
      u_plus_min = std::min(u_plus_min, utilities_[i]);
      u_plus_max = std::max(u_plus_max, utilities_[i]);
    } else {
      u_minus_min = std::min(u_minus_min, utilities_[i]);
      u_minus_max = std::max(u_minus_max, utilities_[i]);
    }
  }

  int direction = 0;
  if (u_plus_min > u_minus_max) direction = +1;   // both + beat both -
  if (u_minus_min > u_plus_max) direction = -1;   // both - beat both +

  if (direction == 0) {
    // Inconclusive under the strict dominance rule: drift one eps in the
    // direction of the mean utilities (un-amplified) and look harder next
    // round. Without the drift, sub-threshold random loss keeps the strict
    // rule inconclusive forever and the rate stalls far below capacity.
    double mean_plus = 0.0, mean_minus = 0.0;
    for (int i = 0; i < 4; ++i) {
      (trial_is_plus_[i] ? mean_plus : mean_minus) += utilities_[i] / 2.0;
    }
    const double drift = mean_plus > mean_minus ? eps_ : -eps_;
    const double r = std::clamp(base_rate_.to_mbps() * (1.0 + drift),
                                params_.min_rate.to_mbps(),
                                params_.max_rate.to_mbps());
    base_rate_ = Rate::mbps(r);
    eps_ = std::min(eps_ + params_.base_eps, params_.max_eps);
    amplifier_ = 1;
    last_direction_ = 0;
    return;
  }
  if (direction == last_direction_) {
    amplifier_ = std::min(amplifier_ + 1, params_.max_amplifier);
  } else {
    amplifier_ = 1;
  }
  last_direction_ = direction;
  const double change =
      static_cast<double>(amplifier_) * eps_ * static_cast<double>(direction);
  const double r = std::clamp(base_rate_.to_mbps() * (1.0 + change),
                              params_.min_rate.to_mbps(),
                              params_.max_rate.to_mbps());
  base_rate_ = Rate::mbps(r);
  eps_ = params_.base_eps;
}

void Allegro::rebase_time(TimeNs delta) { tracker_.rebase_time(delta); }

}  // namespace ccstarve
