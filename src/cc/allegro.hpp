// PCC Allegro (Dong et al., NSDI 2015): A/B experiments on the loss-based
// utility u(x) = x * (1 - L) * sigmoid_a(0.05 - L) - x * L.
//
// Allegro tolerates up to a 5% loss threshold — the loss-domain analogue of
// BBR's cwnd-limited mode keeping Rm of queueing (§5.4). It runs four
// monitor intervals per decision, two at rate*(1+eps) and two at
// rate*(1-eps) in random order, and moves only when both trials of a
// direction beat both of the other.
#pragma once

#include "cc/cca.hpp"
#include "cc/pcc_common.hpp"
#include "util/filters.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace ccstarve {

class Allegro final : public Cca {
 public:
  struct Params {
    double loss_threshold = 0.05;
    double sigmoid_alpha = 100.0;
    double base_eps = 0.01;   // trial granularity
    double max_eps = 0.05;
    int max_amplifier = 6;
    Rate min_rate = Rate::kbps(100);
    Rate max_rate = Rate::gbps(20);
    Rate initial_rate = Rate::mbps(2);
    uint64_t seed = 11;
    // Dump matured-MI scores to stderr (debugging aid).
    bool verbose = false;
  };

  Allegro() : Allegro(Params{}) {}
  explicit Allegro(const Params& params);

  void on_packet_sent(TimeNs now, uint64_t seq, uint32_t bytes,
                      uint64_t inflight, bool retransmit) override;
  void on_ack(const AckSample& ack) override;

  uint64_t cwnd_bytes() const override { return kNoCwndLimit; }
  Rate pacing_rate() const override { return sending_rate_; }
  std::string name() const override { return "pcc-allegro"; }
  std::unique_ptr<Cca> clone() const override {
    return std::make_unique<Allegro>(*this);
  }
  void rebase_time(TimeNs delta) override;
  void rebase_progress(uint64_t delta_bytes) override {
    tracker_.rebase_progress(delta_bytes);
  }

  Rate base_rate() const { return base_rate_; }
  double utility(const MiReport& mi) const;

 private:
  enum class Phase { kSlowStart, kDecision };

  void maybe_open_mi(TimeNs now);
  void on_mi_mature(const MiReport& mi);
  void decide();

  Params params_;
  Rng rng_;
  PccMiTracker tracker_;
  Phase phase_ = Phase::kSlowStart;

  Rate base_rate_;
  Rate sending_rate_;
  Ewma srtt_{1.0 / 4.0};

  double prev_utility_ = 0.0;
  bool have_prev_utility_ = false;
  int ss_bad_streak_ = 0;
  Rate last_good_rate_ = Rate::zero();

  // Decision round: assignment of the 4 trial MIs (+,+,-,- shuffled).
  double eps_;
  int amplifier_ = 1;
  int last_direction_ = 0;
  int trial_index_ = 0;          // next MI to open within the round [0,4)
  bool trial_is_plus_[4] = {};   // randomized each round
  double utilities_[4] = {};
  int matured_ = 0;
};

}  // namespace ccstarve
