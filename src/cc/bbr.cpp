#include "cc/bbr.hpp"

#include <algorithm>

namespace ccstarve {

namespace {
// The ProbeBW pacing-gain cycle: one probing phase, one draining phase, six
// cruise phases.
constexpr double kCycleGains[] = {1.25, 0.75, 1, 1, 1, 1, 1, 1};
constexpr int kCycleLen = 8;
constexpr double kDrainGain = 1.0 / 2.885;
constexpr double kMinCwndPkts = 4.0;
}  // namespace

Bbr::Bbr(const Params& params)
    : params_(params),
      rng_(params.seed),
      // The max filter window is expressed in round counts; reuse the
      // time-keyed filter with "time" = round index in nanoseconds.
      bw_filter_(TimeNs::nanos(params.bw_window_rounds - 1)) {}

void Bbr::on_packet_sent(TimeNs, uint64_t, uint32_t, uint64_t inflight,
                         bool) {
  last_inflight_ = inflight;
  cwnd_limited_ = inflight + kMss > cwnd_bytes();
}

void Bbr::on_ack(const AckSample& ack) {
  last_inflight_ = ack.inflight_bytes;
  update_round(ack);
  update_min_rtt(ack);
  update_state(ack);
}

void Bbr::update_round(const AckSample& ack) {
  if (round_start_time_ < TimeNs::zero()) {
    round_start_time_ = ack.now;
    round_start_delivered_ = ack.delivered_bytes;
    next_round_delivered_ = ack.delivered_bytes + ack.inflight_bytes + kMss;
    return;
  }
  // Per-ACK delivery-rate sample: bytes delivered between the acked
  // segment's transmission and its acknowledgment, over that (>= 1 RTT)
  // interval. Bounded by the true delivery rate, so ACK compression can
  // only inflate it by edge effects (which is exactly the bounded
  // over-estimation §5.2 describes).
  const TimeNs interval = ack.now - ack.sent_at;
  if (interval > TimeNs::zero() &&
      ack.delivered_bytes >= ack.delivered_at_send) {
    const double bw_bytes_per_sec =
        static_cast<double>(ack.delivered_bytes - ack.delivered_at_send) /
        interval.to_seconds();
    bw_filter_.update(bw_bytes_per_sec,
                      TimeNs::nanos(static_cast<int64_t>(round_count_)));
    btl_bw_ = Rate::bytes_per_sec(
        bw_filter_.get(TimeNs::nanos(static_cast<int64_t>(round_count_)))
            .value_or(bw_bytes_per_sec));
  }

  if (ack.delivered_bytes < next_round_delivered_) return;
  ++round_count_;
  round_start_time_ = ack.now;
  round_start_delivered_ = ack.delivered_bytes;
  next_round_delivered_ = ack.delivered_bytes + ack.inflight_bytes + kMss;

  // Startup full-pipe check: bandwidth stopped growing 25% per round.
  if (!full_pipe_) {
    if (btl_bw_.bits_per_sec() >= full_bw_.bits_per_sec() * 1.25) {
      full_bw_ = btl_bw_;
      full_bw_rounds_ = 0;
    } else if (++full_bw_rounds_ >= 3) {
      full_pipe_ = true;
    }
  }
}

void Bbr::update_min_rtt(const AckSample& ack) {
  if (ack.rtt <= TimeNs::zero()) return;
  // Lower samples refresh the estimate; staleness is handled by ProbeRTT
  // (draining the queue to re-measure), never by accepting an inflated RTT.
  if (ack.rtt <= min_rtt_) {
    min_rtt_ = ack.rtt;
    min_rtt_stamp_ = ack.now;
  }
  if (state_ == State::kProbeRtt) {
    probe_min_ = ccstarve::min(probe_min_, ack.rtt);
  }
}

void Bbr::update_state(const AckSample& ack) {
  const TimeNs now = ack.now;

  // Enter ProbeRTT when the min-RTT estimate has gone stale.
  if (state_ != State::kProbeRtt &&
      now - min_rtt_stamp_ > params_.min_rtt_window) {
    state_before_probe_ = full_pipe_ ? State::kProbeBw : State::kStartup;
    state_ = State::kProbeRtt;
    probe_rtt_done_at_ = TimeNs(-1);
    probe_min_ = TimeNs::infinite();
  }

  switch (state_) {
    case State::kStartup:
      if (full_pipe_) state_ = State::kDrain;
      break;
    case State::kDrain:
      if (static_cast<double>(ack.inflight_bytes) <= bdp_bytes()) {
        state_ = State::kProbeBw;
        // Randomized phase entry (never the draining phase) — BBR's fairness
        // mechanism of probing at different times.
        cycle_index_ = static_cast<int>(rng_.next_below(kCycleLen - 1));
        if (cycle_index_ >= 1) ++cycle_index_;  // skip index 1 (0.75)
        cycle_start_ = now;
      }
      break;
    case State::kProbeBw:
      advance_cycle_phase(now);
      break;
    case State::kProbeRtt:
      if (probe_rtt_done_at_ < TimeNs::zero()) {
        // Wait until inflight has drained to the floor, then hold 200 ms.
        if (ack.inflight_bytes <= kMinCwndPkts * kMss) {
          probe_rtt_done_at_ = now + params_.probe_rtt_duration;
        }
      } else if (now >= probe_rtt_done_at_) {
        // Adopt whatever the drained path showed, even if the propagation
        // delay genuinely increased.
        if (!probe_min_.is_infinite()) min_rtt_ = probe_min_;
        min_rtt_stamp_ = now;
        state_ = state_before_probe_;
        cycle_start_ = now;
      }
      break;
  }
}

void Bbr::advance_cycle_phase(TimeNs now) {
  if (min_rtt_.is_infinite()) return;
  const double bdp = bdp_bytes();
  bool advance = now - cycle_start_ >= min_rtt_;
  if (cycle_index_ == 0) {
    // Probing phase: hold until the 1.25x inflight target is reached, but
    // not past one min_rtt of extra queue.
    advance = advance &&
              static_cast<double>(last_inflight_) >= 1.25 * bdp;
    if (now - cycle_start_ >= min_rtt_ * 2.0) advance = true;
  } else if (cycle_index_ == 1) {
    // Draining phase: leave as soon as the probe's queue is gone.
    advance = advance || static_cast<double>(last_inflight_) <= bdp;
  }
  if (!advance) return;
  cycle_index_ = (cycle_index_ + 1) % kCycleLen;
  cycle_start_ = now;
}

double Bbr::bdp_bytes() const {
  if (min_rtt_.is_infinite() || btl_bw_ == Rate::zero()) {
    return params_.initial_cwnd_pkts * kMss;
  }
  return btl_bw_.bytes_per_second() * min_rtt_.to_seconds();
}

double Bbr::pacing_gain() const {
  switch (state_) {
    case State::kStartup:
      return params_.startup_gain;
    case State::kDrain:
      return kDrainGain;
    case State::kProbeBw:
      // Cruise phases (indices >= 2) honor the §6.1 cruise-gain override.
      return cycle_index_ >= 2 ? params_.cruise_gain
                               : kCycleGains[cycle_index_];
    case State::kProbeRtt:
      return 1.0;
  }
  return 1.0;
}

uint64_t Bbr::cwnd_bytes() const {
  if (state_ == State::kProbeRtt) {
    return static_cast<uint64_t>(kMinCwndPkts * kMss);
  }
  if (btl_bw_ == Rate::zero() || min_rtt_.is_infinite()) {
    return static_cast<uint64_t>(params_.initial_cwnd_pkts * kMss);
  }
  const double gain =
      state_ == State::kStartup ? params_.startup_gain : params_.cwnd_gain;
  const double cap = gain * bdp_bytes() + params_.quanta_pkts * kMss;
  return static_cast<uint64_t>(std::max(cap, kMinCwndPkts * kMss));
}

Rate Bbr::pacing_rate() const {
  if (btl_bw_ == Rate::zero()) return Rate::infinite();
  return btl_bw_ * pacing_gain();
}

void Bbr::rebase_time(TimeNs delta) {
  if (round_start_time_ >= TimeNs::zero()) round_start_time_ += delta;
  min_rtt_stamp_ += delta;
  cycle_start_ += delta;
  if (probe_rtt_done_at_ >= TimeNs::zero()) probe_rtt_done_at_ += delta;
}

}  // namespace ccstarve
