// BBR v1 (Cardwell et al., ACM Queue 2016 + IETF draft), simplified but
// with both of the modes the paper's §5.2 analyzes:
//
//   * pacing-limited mode: rate = pacing_gain * max-filtered bandwidth with
//     the 8-phase [1.25, 0.75, 1 x6] gain cycle and periodic ProbeRTT;
//     d_min = Rm, d_max = 1.25 Rm, so delta_max = Rm/4 (Fig. 3).
//   * cwnd-limited mode: when jitter makes the max filter over-estimate the
//     bandwidth, the flight cap cwnd = 2*BDP + quanta takes over and the
//     equilibrium becomes rate = quanta / (RTT - 2 Rm) — the paper's §5.2
//     fixed-point, whose uniqueness depends on the quanta (+alpha) term.
//     `Params::quanta_pkts = 0` reproduces the paper's ablation where any
//     split of 2*Rm*C between flows is a fixed point.
#pragma once

#include <cstdint>

#include "cc/cca.hpp"
#include "util/filters.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace ccstarve {

class Bbr final : public Cca {
 public:
  struct Params {
    double startup_gain = 2.885;  // 2/ln(2)
    double cwnd_gain = 2.0;
    // Pacing gain of the six ProbeBW cruise phases. 1.0 is stock BBR; §6.1
    // discusses the CCAC finding that a *higher* pacing rate (e.g. 1.1)
    // forces BBR into cwnd-limited mode, where CCAC could no longer find
    // under-utilization — the paper's candidate f-efficient,
    // delay-convergent (but starvable) CCA.
    double cruise_gain = 1.0;
    // The +alpha term ("quanta") of the cwnd cap, in packets.
    double quanta_pkts = 3.0;
    uint32_t bw_window_rounds = 10;
    TimeNs min_rtt_window = TimeNs::seconds(10);
    TimeNs probe_rtt_duration = TimeNs::millis(200);
    double initial_cwnd_pkts = 10.0;
    uint64_t seed = 42;  // randomizes the ProbeBW phase entry point
  };

  Bbr() : Bbr(Params{}) {}
  explicit Bbr(const Params& params);

  void on_packet_sent(TimeNs now, uint64_t seq, uint32_t bytes,
                      uint64_t inflight, bool retransmit) override;
  void on_ack(const AckSample& ack) override;

  uint64_t cwnd_bytes() const override;
  Rate pacing_rate() const override;
  std::string name() const override { return "bbr"; }
  std::unique_ptr<Cca> clone() const override {
    return std::make_unique<Bbr>(*this);
  }
  void rebase_time(TimeNs delta) override;
  void rebase_progress(uint64_t delta_bytes) override {
    next_round_delivered_ += delta_bytes;
    round_start_delivered_ += delta_bytes;
  }

  enum class State { kStartup, kDrain, kProbeBw, kProbeRtt };
  const Params& params() const { return params_; }
  State state() const { return state_; }
  Rate bandwidth_estimate() const { return btl_bw_; }
  TimeNs min_rtt_estimate() const { return min_rtt_; }
  // True when the flight cap, not the pacer, is the binding constraint.
  bool cwnd_limited() const { return cwnd_limited_; }

 private:
  void update_round(const AckSample& ack);
  void update_min_rtt(const AckSample& ack);
  void update_state(const AckSample& ack);
  void advance_cycle_phase(TimeNs now);
  double bdp_bytes() const;
  double pacing_gain() const;

  Params params_;
  Rng rng_;
  State state_ = State::kStartup;

  // Round (RTT-count) tracking by delivered bytes.
  uint64_t next_round_delivered_ = 0;
  uint64_t round_count_ = 0;
  TimeNs round_start_time_ = TimeNs(-1);
  uint64_t round_start_delivered_ = 0;

  // Bandwidth max-filter over the last bw_window_rounds rounds.
  WindowedMax<double> bw_filter_;  // bytes/sec keyed by round index
  Rate btl_bw_ = Rate::zero();

  // Min-RTT tracking.
  TimeNs min_rtt_ = TimeNs::infinite();
  TimeNs min_rtt_stamp_ = TimeNs::zero();

  // Startup full-pipe detection.
  Rate full_bw_ = Rate::zero();
  int full_bw_rounds_ = 0;
  bool full_pipe_ = false;

  // ProbeBW gain cycling.
  int cycle_index_ = 0;
  TimeNs cycle_start_ = TimeNs::zero();

  // ProbeRTT.
  TimeNs probe_rtt_done_at_ = TimeNs(-1);
  State state_before_probe_ = State::kProbeBw;
  TimeNs probe_min_ = TimeNs::infinite();

  uint64_t last_inflight_ = 0;
  bool cwnd_limited_ = false;
};

}  // namespace ccstarve
