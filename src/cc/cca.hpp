// Congestion-control algorithm interface.
//
// CCAs are deliberately simulator-free: they see only timestamped events
// (packet sent / ACK / loss) and expose a congestion window and a pacing
// rate. This has two payoffs:
//   1. The same implementations could sit on a real transport.
//   2. The Theorem 1 construction can *transplant* a converged CCA object
//      from a solo run into a two-flow scenario (the proof starts the flows
//      from their converged states at T1/T2); `rebase_time` shifts any
//      internal timestamps onto the new timeline.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/rate.hpp"
#include "util/time.hpp"

namespace ccstarve {

struct AckSample {
  TimeNs now = TimeNs::zero();
  // Measured round-trip time of the newest-acked segment.
  TimeNs rtt = TimeNs::zero();
  // When that segment was sent.
  TimeNs sent_at = TimeNs::zero();
  // Sequence number of the data segment this ACK acknowledges (1-segment
  // SACK information; what the PCC monitor-interval tracker keys on).
  uint64_t acked_seq = 0;
  // Bytes newly removed from flight by this ACK (0 for pure duplicates).
  uint64_t newly_acked_bytes = 0;
  // Cumulative bytes delivered so far on this flow.
  uint64_t delivered_bytes = 0;
  // Value of delivered_bytes when the acked segment was (last) transmitted.
  // (delivered_bytes - delivered_at_send)/(now - sent_at) is a delivery-rate
  // sample bounded by the true rate over one RTT — BBR's bandwidth sample.
  uint64_t delivered_at_send = 0;
  // Bytes still in flight after processing this ACK.
  uint64_t inflight_bytes = 0;
  // True when ack_cum did not advance (reordering/loss indicator).
  bool is_duplicate = false;
  // True while the sender is in fast recovery; loss-based CCAs freeze
  // window growth during recovery (RFC 6582 behaviour).
  bool in_recovery = false;
  // ECN-Echo: the receiver saw a CE mark since its last ACK (paper 6.4).
  bool ece = false;
};

struct LossSample {
  TimeNs now = TimeNs::zero();
  uint64_t lost_bytes = 0;
  uint64_t inflight_bytes = 0;
  // True for a retransmission-timeout, false for fast-retransmit.
  bool is_timeout = false;
};

// Bounds the invariant checker (src/check/invariants.hpp) holds a CCA's
// outputs to on every ACK. Defaults are the weakest sane contract — a
// positive window no bigger than twice the rate-based sentinel; algorithms
// with known floors (cwnd never below 1–2 MSS) tighten min_cwnd_bytes.
struct CcaSanity {
  uint64_t min_cwnd_bytes = 1;
  uint64_t max_cwnd_bytes = 2 * (uint64_t{1} << 48);
  // Pacing must be positive (or infinite for pure window-based CCAs).
  bool pacing_may_be_infinite = true;
};

class Cca {
 public:
  virtual ~Cca() = default;

  virtual void on_packet_sent(TimeNs /*now*/, uint64_t /*seq*/,
                              uint32_t /*bytes*/, uint64_t /*inflight_bytes*/,
                              bool /*retransmit*/) {}
  virtual void on_ack(const AckSample& ack) = 0;
  virtual void on_loss(const LossSample& /*loss*/) {}

  // Window limit in bytes; return a huge value for pure rate-based CCAs.
  virtual uint64_t cwnd_bytes() const = 0;
  // Pacing limit; return Rate::infinite() for pure window-based CCAs.
  virtual Rate pacing_rate() const = 0;

  virtual std::string name() const = 0;

  // Shift all internal timestamps by `delta` (new_time = old_time + delta).
  // Default is correct for CCAs that hold no absolute times.
  virtual void rebase_time(TimeNs /*delta*/) {}

  // Shift all internal absolute byte positions (delivered-byte marks,
  // sequence ranges) by `delta_bytes`, as if the flow had delivered that
  // many extra bytes before the current moment. The fast-forward engine
  // (sim/warp) advances every flow's seq and delivered space uniformly when
  // it warps across a converged interval; CCAs that delimit measurement
  // epochs by delivered-byte or seq marks must shift them to stay
  // consistent. Default is correct for CCAs holding no absolute positions.
  virtual void rebase_progress(uint64_t /*delta_bytes*/) {}

  // Value copy of the algorithm including all live state — filters, cwnd/
  // rate, RTT estimators, monitor intervals, RNGs. The scenario snapshot
  // engine (sim/snapshot.hpp) relies on a clone continuing *bit-identically*
  // to the original; every CCA here holds only value-type state, so
  // implementations are one-line copy-constructor wrappers.
  virtual std::unique_ptr<Cca> clone() const = 0;

  // Output bounds the runtime invariant checker asserts per ACK. The
  // default is the weakest contract; override to tighten (see CcaSanity).
  virtual CcaSanity sanity() const { return CcaSanity{}; }

  // Effectively-unbounded cwnd for rate-based CCAs.
  static constexpr uint64_t kNoCwndLimit = uint64_t{1} << 48;
};

// Factory type used by sweeps that need a fresh CCA per run.
using CcaFactory = std::unique_ptr<Cca> (*)();

}  // namespace ccstarve
