#include "cc/copa.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ccstarve {

Copa::Copa(const Params& params)
    : params_(params),
      cwnd_pkts_(params.initial_cwnd_pkts),
      delta_(params.delta),
      min_rtt_(params.min_rtt_window) {}

void Copa::on_ack(const AckSample& ack) {
  if (ack.rtt <= TimeNs::zero()) return;
  const TimeNs now = ack.now;

  srtt_.update(ack.rtt.to_seconds());
  min_rtt_.update(ack.rtt, now);
  // Standing window tau = srtt / 2.
  standing_rtt_.set_window(TimeNs::seconds(srtt_.value() / 2.0));
  standing_rtt_.update(ack.rtt, now);
  recent_max_rtt_.set_window(TimeNs::seconds(4.0 * srtt_.value()));
  recent_max_rtt_.update(ack.rtt, now);

  const TimeNs rtt_min = min_rtt_.get(now).value_or(ack.rtt);
  const TimeNs standing = standing_rtt_.get(now).value_or(ack.rtt);
  last_min_rtt_ = rtt_min;
  last_standing_ = standing;

  const double dq = (standing - rtt_min).to_seconds();

  if (params_.enable_mode_switching) check_mode(ack);

  // Rates in packets per second.
  const double current_rate = cwnd_pkts_ / standing.to_seconds();
  const double target_rate =
      dq <= 0.0 ? std::numeric_limits<double>::infinity()
                : 1.0 / (delta_ * dq);

  update_velocity(ack);

  if (slow_start_) {
    if (current_rate < target_rate) {
      // Double once per RTT: +1 packet per packet acked.
      cwnd_pkts_ +=
          static_cast<double>(ack.newly_acked_bytes) / static_cast<double>(kMss);
      return;
    }
    slow_start_ = false;
  }

  const double acked_pkts =
      static_cast<double>(ack.newly_acked_bytes) / static_cast<double>(kMss);
  const double step = velocity_ * acked_pkts / (delta_ * cwnd_pkts_);
  if (current_rate < target_rate) {
    cwnd_pkts_ += step;
  } else {
    cwnd_pkts_ -= step;
  }
  cwnd_pkts_ = std::max(cwnd_pkts_, 2.0);
}

void Copa::update_velocity(const AckSample& ack) {
  // Epochs are delimited in delivered bytes (~1 RTT of data).
  if (cwnd_at_epoch_start_ == 0.0) {
    cwnd_at_epoch_start_ = cwnd_pkts_;
    epoch_end_delivered_ =
        ack.delivered_bytes + static_cast<uint64_t>(cwnd_pkts_) * kMss;
    return;
  }
  if (ack.delivered_bytes < epoch_end_delivered_) return;
  epoch_end_delivered_ =
      ack.delivered_bytes + static_cast<uint64_t>(cwnd_pkts_) * kMss;

  const int dir = cwnd_pkts_ >= cwnd_at_epoch_start_ ? +1 : -1;
  if (dir == direction_) {
    ++same_direction_epochs_;
    if (same_direction_epochs_ >= 3) velocity_ *= 2.0;
  } else {
    direction_ = dir;
    same_direction_epochs_ = 0;
    velocity_ = 1.0;
  }
  // Never move more than one window per window.
  velocity_ = std::min(velocity_, delta_ * cwnd_pkts_);
  cwnd_at_epoch_start_ = cwnd_pkts_;
}

void Copa::check_mode(const AckSample& ack) {
  const TimeNs now = ack.now;
  const TimeNs rtt_min = last_min_rtt_;
  const TimeNs max_rtt = recent_max_rtt_.get(now).value_or(ack.rtt);

  // "Nearly empty": standing queue below 10% of the recent peak queue.
  const double peak_q = (max_rtt - rtt_min).to_seconds();
  const double standing_q = (last_standing_ - rtt_min).to_seconds();
  if (peak_q <= 0.0 || standing_q < 0.1 * peak_q) {
    queue_emptied_since_check_ = true;
  }

  const TimeNs interval = TimeNs::seconds(5.0 * std::max(srtt_.value(), 1e-4));
  if (now < mode_check_at_) return;
  mode_check_at_ = now + interval;

  if (queue_emptied_since_check_) {
    competitive_ = false;
    delta_ = params_.delta;
  } else {
    competitive_ = true;
  }
  queue_emptied_since_check_ = false;

  if (competitive_ && now >= last_delta_update_) {
    // AIMD on 1/delta: additive increase of 1/delta once per interval.
    delta_ = 1.0 / (1.0 / delta_ + 1.0);
    delta_ = std::max(delta_, 0.04);
    last_delta_update_ = now;
  }
}

void Copa::on_loss(const LossSample& loss) {
  if (!params_.enable_mode_switching || !competitive_) return;
  // Competitive mode reacts to loss by halving 1/delta (gentler window).
  (void)loss;
  delta_ = std::min(params_.delta, 2.0 * delta_);
}

uint64_t Copa::cwnd_bytes() const {
  return static_cast<uint64_t>(cwnd_pkts_ * kMss);
}

Rate Copa::pacing_rate() const {
  if (!srtt_.initialized() || last_standing_.is_infinite()) {
    return Rate::infinite();
  }
  const double pkts_per_sec =
      params_.pacing_multiplier * cwnd_pkts_ / last_standing_.to_seconds();
  return Rate::bytes_per_sec(pkts_per_sec * kMss);
}

void Copa::rebase_time(TimeNs delta) {
  min_rtt_.rebase_time(delta);
  standing_rtt_.rebase_time(delta);
  recent_max_rtt_.rebase_time(delta);
  mode_check_at_ += delta;
  last_delta_update_ += delta;
}

}  // namespace ccstarve
