// Copa (Arun & Balakrishnan, NSDI 2018).
//
// Targets a sending rate of 1/(delta * dq) packets/s where dq is the
// estimated queueing delay, computed as standing RTT - min RTT:
//   * min RTT   = min over a long (10 s) window,
//   * standing  = min over a short (srtt/2) window — Copa's attempt to
//     filter out non-congestive spikes (§5.1 of the starvation paper).
// The window moves toward the target by v/(delta*cwnd) per ACK, with the
// velocity v doubling after three same-direction RTTs. Equilibrium queue
// occupancy is ~1/delta packets per flow and delta(C) = 4*MSS/C: the Copa
// curve of the paper's Figure 3.
//
// The optional competitive mode (mode switching against buffer-fillers) does
// AIMD on 1/delta when the queue has not emptied for 5 RTTs.
#pragma once

#include "cc/cca.hpp"
#include "util/filters.hpp"
#include "util/time.hpp"

namespace ccstarve {

class Copa final : public Cca {
 public:
  struct Params {
    double delta = 0.5;
    double initial_cwnd_pkts = 4.0;
    TimeNs min_rtt_window = TimeNs::seconds(10);
    bool enable_mode_switching = true;
    // Pace at this multiple of cwnd/standing-RTT to smooth transmissions.
    double pacing_multiplier = 2.0;
  };

  Copa() : Copa(Params{}) {}
  explicit Copa(const Params& params);

  void on_ack(const AckSample& ack) override;
  void on_loss(const LossSample& loss) override;

  uint64_t cwnd_bytes() const override;
  Rate pacing_rate() const override;
  std::string name() const override { return "copa"; }
  std::unique_ptr<Cca> clone() const override {
    return std::make_unique<Copa>(*this);
  }
  void rebase_time(TimeNs delta) override;
  void rebase_progress(uint64_t delta_bytes) override {
    epoch_end_delivered_ += delta_bytes;
  }

  double delta() const { return delta_; }
  bool in_competitive_mode() const { return competitive_; }
  TimeNs min_rtt_estimate() const { return last_min_rtt_; }
  TimeNs standing_rtt_estimate() const { return last_standing_; }

 private:
  void update_velocity(const AckSample& ack);
  void check_mode(const AckSample& ack);

  Params params_;
  double cwnd_pkts_;
  double delta_;
  bool slow_start_ = true;

  Ewma srtt_{1.0 / 8.0};
  WindowedMin<TimeNs> min_rtt_;
  WindowedMin<TimeNs> standing_rtt_{TimeNs::millis(50)};
  WindowedMax<TimeNs> recent_max_rtt_{TimeNs::millis(400)};
  TimeNs last_min_rtt_ = TimeNs::infinite();
  TimeNs last_standing_ = TimeNs::infinite();

  // Velocity state (per-RTT direction tracking).
  double velocity_ = 1.0;
  uint64_t epoch_end_delivered_ = 0;
  double cwnd_at_epoch_start_ = 0.0;
  int direction_ = 0;  // +1 up, -1 down
  int same_direction_epochs_ = 0;

  // Mode switching.
  bool competitive_ = false;
  TimeNs mode_check_at_ = TimeNs::zero();
  bool queue_emptied_since_check_ = true;
  TimeNs last_delta_update_ = TimeNs::zero();
};

}  // namespace ccstarve
