#include "cc/cubic.hpp"

#include <algorithm>
#include <cmath>

namespace ccstarve {

Cubic::Cubic(const Params& params)
    : params_(params), cwnd_pkts_(params.initial_cwnd_pkts) {}

void Cubic::on_ack(const AckSample& ack) {
  if (ack.newly_acked_bytes == 0 || ack.in_recovery) return;
  srtt_.update(ack.rtt.to_seconds());
  const double acked_pkts =
      static_cast<double>(ack.newly_acked_bytes) / static_cast<double>(kMss);

  if (cwnd_pkts_ < ssthresh_pkts_) {
    cwnd_pkts_ += acked_pkts;  // slow start
    return;
  }

  if (epoch_start_ < TimeNs::zero()) {
    // First congestion-avoidance ACK of this epoch.
    epoch_start_ = ack.now;
    if (w_max_pkts_ < cwnd_pkts_) {
      w_max_pkts_ = cwnd_pkts_;
      k_seconds_ = 0.0;
    } else {
      k_seconds_ = std::cbrt(w_max_pkts_ * (1.0 - params_.beta) / params_.c);
    }
    w_est_pkts_ = cwnd_pkts_;
  }

  const double t = (ack.now - epoch_start_).to_seconds();
  const double rtt = std::max(srtt_.value(), 1e-4);

  // Cubic target one RTT in the future.
  const double dt = t + rtt - k_seconds_;
  const double target = params_.c * dt * dt * dt + w_max_pkts_;

  // TCP-friendly (Reno-tracking) estimate.
  w_est_pkts_ += 3.0 * (1.0 - params_.beta) / (1.0 + params_.beta) *
                 acked_pkts / cwnd_pkts_;

  if (target > cwnd_pkts_) {
    cwnd_pkts_ += (target - cwnd_pkts_) / cwnd_pkts_ * acked_pkts;
  } else {
    cwnd_pkts_ += acked_pkts / (100.0 * cwnd_pkts_);  // max probing, slow
  }
  cwnd_pkts_ = std::max(cwnd_pkts_, w_est_pkts_);
}

void Cubic::on_loss(const LossSample& loss) {
  epoch_start_ = TimeNs(-1);
  if (params_.fast_convergence && cwnd_pkts_ < w_max_pkts_) {
    w_max_pkts_ = cwnd_pkts_ * (1.0 + params_.beta) / 2.0;
  } else {
    w_max_pkts_ = cwnd_pkts_;
  }
  cwnd_pkts_ = std::max(2.0, cwnd_pkts_ * params_.beta);
  ssthresh_pkts_ = cwnd_pkts_;
  if (loss.is_timeout) {
    cwnd_pkts_ = 1.0;
    ssthresh_pkts_ = std::max(2.0, w_max_pkts_ * params_.beta);
  }
}

uint64_t Cubic::cwnd_bytes() const {
  return static_cast<uint64_t>(std::max(1.0, cwnd_pkts_) * kMss);
}

void Cubic::rebase_time(TimeNs delta) {
  if (epoch_start_ >= TimeNs::zero()) epoch_start_ += delta;
}

}  // namespace ccstarve
