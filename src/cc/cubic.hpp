// CUBIC (Ha, Rhee, Xu, 2008), the other loss-based baseline of Fig. 7.
//
// Window grows as W(t) = C (t - K)^3 + Wmax since the last backoff, with a
// TCP-friendly lower envelope. Like Reno it is not delay-convergent; §5.4
// shows its burstiness unfairness stays bounded (~3.2x in Fig. 7).
#pragma once

#include "cc/cca.hpp"
#include "util/filters.hpp"
#include "util/time.hpp"

namespace ccstarve {

class Cubic final : public Cca {
 public:
  struct Params {
    double c = 0.4;      // cubic scaling constant (pkts/s^3)
    double beta = 0.7;   // multiplicative decrease factor
    bool fast_convergence = true;
    double initial_cwnd_pkts = 4.0;
  };

  Cubic() : Cubic(Params{}) {}
  explicit Cubic(const Params& params);

  void on_ack(const AckSample& ack) override;
  void on_loss(const LossSample& loss) override;

  uint64_t cwnd_bytes() const override;
  Rate pacing_rate() const override { return Rate::infinite(); }
  std::string name() const override { return "cubic"; }
  std::unique_ptr<Cca> clone() const override {
    return std::make_unique<Cubic>(*this);
  }
  void rebase_time(TimeNs delta) override;
  // cwnd_bytes() floors at 1 MSS (cubic.cpp).
  CcaSanity sanity() const override {
    CcaSanity s;
    s.min_cwnd_bytes = kMss;
    return s;
  }

  double cwnd_pkts() const { return cwnd_pkts_; }

 private:
  Params params_;
  double cwnd_pkts_;
  double ssthresh_pkts_ = 1e9;
  double w_max_pkts_ = 0.0;
  double k_seconds_ = 0.0;
  TimeNs epoch_start_ = TimeNs(-1);
  Ewma srtt_{1.0 / 8.0};
  // Reno-equivalent window for the TCP-friendly region.
  double w_est_pkts_ = 0.0;
};

}  // namespace ccstarve
