#include "cc/ecn_reno.hpp"

#include <algorithm>

namespace ccstarve {

EcnReno::EcnReno(const Params& params)
    : params_(params), cwnd_pkts_(params.initial_cwnd_pkts) {}

void EcnReno::on_ack(const AckSample& ack) {
  if (ack.ece) {
    if (ack.now >= backoff_allowed_at_) {
      // One multiplicative decrease per RTT of marks (RFC 3168 semantics).
      cwnd_pkts_ = std::max(2.0, cwnd_pkts_ * params_.decrease_factor);
      ssthresh_pkts_ = cwnd_pkts_;
      backoff_allowed_at_ = ack.now + ack.rtt;
      ++ecn_backoffs_;
    }
    // No growth for the rest of the marked RTT either.
    return;
  }
  // §6.4's idealized CCA reacts to ECN and *not* to small amounts of loss:
  // with tolerate_loss, keep growing even through the transport's recovery
  // episodes (an RFC-faithful Reno would freeze here).
  if (ack.newly_acked_bytes == 0 ||
      (ack.in_recovery && !params_.tolerate_loss)) {
    return;
  }
  const double acked_pkts =
      static_cast<double>(ack.newly_acked_bytes) / static_cast<double>(kMss);
  if (cwnd_pkts_ < ssthresh_pkts_) {
    cwnd_pkts_ += acked_pkts;
  } else {
    cwnd_pkts_ += acked_pkts / cwnd_pkts_;
  }
}

void EcnReno::on_loss(const LossSample& loss) {
  if (!loss.is_timeout && params_.tolerate_loss) {
    // §6.4's prescription: react to ECN, ignore small amounts of loss.
    // Count it; the transport still retransmits.
    ++tolerated_losses_;
    return;
  }
  ssthresh_pkts_ = std::max(2.0, cwnd_pkts_ / 2.0);
  cwnd_pkts_ = loss.is_timeout ? 1.0 : ssthresh_pkts_;
}

uint64_t EcnReno::cwnd_bytes() const {
  return static_cast<uint64_t>(std::max(1.0, cwnd_pkts_) * kMss);
}

void EcnReno::rebase_time(TimeNs delta) { backoff_allowed_at_ += delta; }

}  // namespace ccstarve
