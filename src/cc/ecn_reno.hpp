// ECN-Reno: the CCA shape §6.4 conjectures avoids starvation — AIMD driven
// by ECN marks (an unambiguous congestion signal) that *ignores small
// amounts of loss*.
//
// "If the router set ECN bits when the queue exceeds a threshold, and a CCA
//  reacted to that and not to small amounts of loss, then it may avoid
//  starvation."  — §6.4
//
// With `tolerate_loss` (the default), fast-retransmit losses do not shrink
// the window; only ECN echoes (once per RTT) and timeouts do. This makes the
// algorithm immune to the §5.4 random-loss starvation while the AQM keeps
// its queue bounded.
#pragma once

#include "cc/cca.hpp"
#include "util/time.hpp"

namespace ccstarve {

class EcnReno final : public Cca {
 public:
  struct Params {
    double initial_cwnd_pkts = 4.0;
    double decrease_factor = 0.5;
    // React to ECN only; treat (non-timeout) loss as noise.
    bool tolerate_loss = true;
  };

  EcnReno() : EcnReno(Params{}) {}
  explicit EcnReno(const Params& params);

  void on_ack(const AckSample& ack) override;
  void on_loss(const LossSample& loss) override;

  uint64_t cwnd_bytes() const override;
  Rate pacing_rate() const override { return Rate::infinite(); }
  std::string name() const override { return "ecn-reno"; }
  std::unique_ptr<Cca> clone() const override {
    return std::make_unique<EcnReno>(*this);
  }
  void rebase_time(TimeNs delta) override;

  uint64_t ecn_backoffs() const { return ecn_backoffs_; }
  uint64_t tolerated_losses() const { return tolerated_losses_; }

 private:
  Params params_;
  double cwnd_pkts_;
  double ssthresh_pkts_ = 1e9;
  TimeNs backoff_allowed_at_ = TimeNs::zero();
  uint64_t ecn_backoffs_ = 0;
  uint64_t tolerated_losses_ = 0;
};

}  // namespace ccstarve
