#include "cc/fast.hpp"

#include <algorithm>

namespace ccstarve {

FastTcp::FastTcp(const Params& params)
    : params_(params), cwnd_pkts_(params.initial_cwnd_pkts) {}

void FastTcp::on_ack(const AckSample& ack) {
  if (ack.in_recovery) return;
  if (ack.rtt > TimeNs::zero()) {
    base_rtt_ = ccstarve::min(base_rtt_, ack.rtt);
    epoch_min_rtt_ = ccstarve::min(epoch_min_rtt_, ack.rtt);
  }
  if (ack.delivered_bytes < epoch_end_delivered_) return;
  epoch_end_delivered_ =
      ack.delivered_bytes + static_cast<uint64_t>(cwnd_pkts_) * kMss;
  if (epoch_min_rtt_.is_infinite() || base_rtt_.is_infinite()) return;

  const double ratio = base_rtt_.to_seconds() / epoch_min_rtt_.to_seconds();
  epoch_min_rtt_ = TimeNs::infinite();

  const double target =
      (1.0 - params_.gamma) * cwnd_pkts_ +
      params_.gamma * (ratio * cwnd_pkts_ + params_.alpha_pkts);
  cwnd_pkts_ = std::max(2.0, std::min(2.0 * cwnd_pkts_, target));
}

void FastTcp::on_loss(const LossSample& loss) {
  cwnd_pkts_ = std::max(2.0, cwnd_pkts_ * (loss.is_timeout ? 0.25 : 0.5));
}

uint64_t FastTcp::cwnd_bytes() const {
  return static_cast<uint64_t>(cwnd_pkts_ * kMss);
}

}  // namespace ccstarve
