// FAST TCP (Wei, Jin, Low, Hegde, ToN 2006).
//
// Same equilibrium as Vegas — alpha packets queued per flow, delta(C) = 0 —
// but reaches it with a multiplicative window update each RTT:
//   w <- min(2w, (1 - gamma) w + gamma (baseRTT/RTT * w + alpha)).
#pragma once

#include "cc/cca.hpp"
#include "util/time.hpp"

namespace ccstarve {

class FastTcp final : public Cca {
 public:
  struct Params {
    double alpha_pkts = 4.0;
    // Smoothing gain of the periodic update.
    double gamma = 0.5;
    double initial_cwnd_pkts = 4.0;
  };

  FastTcp() : FastTcp(Params{}) {}
  explicit FastTcp(const Params& params);

  void on_ack(const AckSample& ack) override;
  void on_loss(const LossSample& loss) override;

  uint64_t cwnd_bytes() const override;
  Rate pacing_rate() const override { return Rate::infinite(); }
  std::string name() const override { return "fast"; }
  std::unique_ptr<Cca> clone() const override {
    return std::make_unique<FastTcp>(*this);
  }
  void rebase_progress(uint64_t delta_bytes) override {
    epoch_end_delivered_ += delta_bytes;
  }

  const Params& params() const { return params_; }
  double base_rtt_seconds() const { return base_rtt_.to_seconds(); }

 private:
  Params params_;
  double cwnd_pkts_;
  TimeNs base_rtt_ = TimeNs::infinite();
  uint64_t epoch_end_delivered_ = 0;
  TimeNs epoch_min_rtt_ = TimeNs::infinite();
};

}  // namespace ccstarve
