#include "cc/jitter_aware.hpp"

#include <algorithm>
#include <cmath>

namespace ccstarve {

JitterAware::JitterAware(const Params& params)
    : params_(params), mu_(params.initial_rate) {}

Rate JitterAware::target_rate(TimeNs rtt) const {
  // mu(d) = mu_minus * s^((Rmax - (d - Rm)) / D).
  const double exponent =
      (params_.rmax - (rtt - params_.rm)).to_seconds() /
      params_.d.to_seconds();
  return params_.mu_minus * std::pow(params_.s, exponent);
}

TimeNs JitterAware::equilibrium_rtt(Rate mu) const {
  // Invert Eq. 2: d = Rm + Rmax - D * log_s(mu / mu_minus).
  const double logs =
      std::log(mu / params_.mu_minus) / std::log(params_.s);
  return params_.rm + params_.rmax - params_.d * logs;
}

void JitterAware::on_ack(const AckSample& ack) {
  latest_rtt_ = ack.rtt;
  if (ack.now < next_update_) return;
  // "Change the rate by the same amount every RTT independent of the number
  // of ACKs received" (§6.3) — one decision per Rm.
  next_update_ = ack.now + params_.rm;

  if (mu_ < target_rate(latest_rtt_)) {
    mu_ = mu_ + params_.additive_step;
  } else {
    mu_ = mu_ * params_.decrease_factor;
  }
  mu_ = ccstarve::max(mu_, params_.mu_minus * 0.1);
}

uint64_t JitterAware::cwnd_bytes() const {
  // Safety cap: two max-delay BDPs. Normally the pacer is the binding limit.
  const double cap =
      mu_.bytes_per_second() * 2.0 *
      (params_.rm + params_.rmax).to_seconds();
  return static_cast<uint64_t>(std::max(cap, 4.0 * kMss));
}

void JitterAware::rebase_time(TimeNs delta) { next_update_ += delta; }

}  // namespace ccstarve
