// The paper's Algorithm 1 (§6.3): a delay-convergent CCA that designs for a
// known jitter bound D by using the exponential rate-delay mapping of Eq. 2:
//
//     mu(d) = mu_minus * s ^ ((Rmax - (d - Rm)) / D)
//
// Every Rm it compares its rate mu with the target implied by the latest
// RTT d: below target -> mu += a (additive increase), otherwise mu *= b
// (multiplicative decrease). Because consecutive rates that differ by a
// factor s map to delays more than D apart, two flows experiencing
// different jitter <= D can disagree by at most a factor ~s: s-fairness by
// construction, at the cost of keeping at least D of standing queue.
//
// Like the paper's Algorithm 1, this assumes oracular knowledge of Rm (the
// paper's §6.3 discusses why estimating Rm is an open problem) and does not
// handle short buffers.
#pragma once

#include "cc/cca.hpp"
#include "util/time.hpp"

namespace ccstarve {

class JitterAware final : public Cca {
 public:
  struct Params {
    TimeNs rm = TimeNs::millis(100);    // oracular propagation RTT
    TimeNs d = TimeNs::millis(10);      // designed-for jitter bound D
    TimeNs rmax = TimeNs::millis(200);  // max tolerable queueing (above Rm)
    double s = 2.0;                     // tolerated unfairness ratio
    Rate mu_minus = Rate::kbps(100);    // rate at d - Rm = Rmax
    Rate additive_step = Rate::kbps(500);  // a
    double decrease_factor = 0.9;          // b
    Rate initial_rate = Rate::mbps(1);
  };

  JitterAware() : JitterAware(Params{}) {}
  explicit JitterAware(const Params& params);

  void on_ack(const AckSample& ack) override;

  uint64_t cwnd_bytes() const override;
  Rate pacing_rate() const override { return mu_; }
  std::string name() const override { return "jitter-aware"; }
  std::unique_ptr<Cca> clone() const override {
    return std::make_unique<JitterAware>(*this);
  }
  void rebase_time(TimeNs delta) override;

  // Eq. 2: target rate for a measured RTT d.
  Rate target_rate(TimeNs rtt) const;
  // Inverse mapping: equilibrium RTT for a given rate (used by tests and
  // the §6.3 analysis).
  TimeNs equilibrium_rtt(Rate mu) const;

 private:
  Params params_;
  Rate mu_;
  TimeNs next_update_ = TimeNs::zero();
  TimeNs latest_rtt_ = TimeNs::zero();
};

}  // namespace ccstarve
