#include "cc/ledbat.hpp"

#include <algorithm>

namespace ccstarve {

Ledbat::Ledbat(const Params& params)
    : params_(params),
      cwnd_pkts_(params.initial_cwnd_pkts),
      base_delay_(params.base_window) {}

void Ledbat::on_ack(const AckSample& ack) {
  if (ack.rtt <= TimeNs::zero() || ack.in_recovery) return;
  base_delay_.update(ack.rtt, ack.now);
  const TimeNs base = base_delay_.get(ack.now).value_or(ack.rtt);
  const double queuing = (ack.rtt - base).to_seconds();
  const double off =
      (params_.target.to_seconds() - queuing) / params_.target.to_seconds();
  const double acked_pkts =
      static_cast<double>(ack.newly_acked_bytes) / static_cast<double>(kMss);
  // RFC 6817: cwnd growth capped at one packet per RTT equivalent.
  const double step =
      std::min(params_.gain * off * acked_pkts / cwnd_pkts_,
               acked_pkts / cwnd_pkts_);
  cwnd_pkts_ = std::max(2.0, cwnd_pkts_ + step);
}

void Ledbat::on_loss(const LossSample& loss) {
  cwnd_pkts_ = std::max(2.0, cwnd_pkts_ * (loss.is_timeout ? 0.25 : 0.5));
}

uint64_t Ledbat::cwnd_bytes() const {
  return static_cast<uint64_t>(cwnd_pkts_ * kMss);
}

void Ledbat::rebase_time(TimeNs delta) { base_delay_.rebase_time(delta); }

}  // namespace ccstarve
