// LEDBAT (RFC 6817): the low-extra-delay background transport the paper
// cites among the min-filter delay CCAs (§2.1, [38]).
//
// Linear controller toward a fixed queueing-delay target:
//   off = (TARGET - queuing_delay) / TARGET
//   cwnd += GAIN * off / cwnd      per ACK (and at most one extra per RTT)
// with queuing_delay = current delay - base delay (min over a long window).
// Delay-convergent with d(C) = Rm + target and delta(C) -> 0: squarely in
// the paper's starvation-prone class, and another subject for the Theorem 1
// machinery.
#pragma once

#include "cc/cca.hpp"
#include "util/filters.hpp"
#include "util/time.hpp"

namespace ccstarve {

class Ledbat final : public Cca {
 public:
  struct Params {
    TimeNs target = TimeNs::millis(25);  // RFC suggests <= 100 ms; typical 25
    double gain = 1.0;
    double initial_cwnd_pkts = 4.0;
    TimeNs base_window = TimeNs::seconds(600);  // base-delay history
  };

  Ledbat() : Ledbat(Params{}) {}
  explicit Ledbat(const Params& params);

  void on_ack(const AckSample& ack) override;
  void on_loss(const LossSample& loss) override;

  uint64_t cwnd_bytes() const override;
  Rate pacing_rate() const override { return Rate::infinite(); }
  std::string name() const override { return "ledbat"; }
  std::unique_ptr<Cca> clone() const override {
    return std::make_unique<Ledbat>(*this);
  }
  void rebase_time(TimeNs delta) override;

  TimeNs base_delay_estimate() const {
    return base_delay_.peek().value_or(TimeNs::infinite());
  }

 private:
  Params params_;
  double cwnd_pkts_;
  WindowedMin<TimeNs> base_delay_;
};

}  // namespace ccstarve
