#include "cc/misc.hpp"

#include <algorithm>

namespace ccstarve {

DelayAimd::DelayAimd(const Params& params)
    : params_(params), cwnd_pkts_(params.initial_cwnd_pkts) {}

void DelayAimd::on_ack(const AckSample& ack) {
  if (ack.rtt > TimeNs::zero()) base_rtt_ = ccstarve::min(base_rtt_, ack.rtt);

  const TimeNs queueing = ack.rtt - base_rtt_;
  if (queueing > params_.delay_threshold && ack.now >= backoff_allowed_at_) {
    cwnd_pkts_ = std::max(2.0, cwnd_pkts_ * params_.decrease_factor);
    slow_start_ = false;
    backoff_allowed_at_ = ack.now + ack.rtt;
    epoch_end_delivered_ =
        ack.delivered_bytes + static_cast<uint64_t>(cwnd_pkts_) * kMss;
    return;
  }

  if (ack.delivered_bytes >= epoch_end_delivered_) {
    epoch_end_delivered_ =
        ack.delivered_bytes + static_cast<uint64_t>(cwnd_pkts_) * kMss;
    cwnd_pkts_ += slow_start_ ? cwnd_pkts_ : params_.increase_pkts_per_rtt;
  }
}

void DelayAimd::on_loss(const LossSample&) {
  cwnd_pkts_ = std::max(2.0, cwnd_pkts_ * params_.decrease_factor);
  slow_start_ = false;
}

uint64_t DelayAimd::cwnd_bytes() const {
  return static_cast<uint64_t>(cwnd_pkts_ * kMss);
}

void DelayAimd::rebase_time(TimeNs delta) { backoff_allowed_at_ += delta; }

}  // namespace ccstarve
