// Small reference CCAs used by the analysis and the test suite:
//
//   * ConstCwnd — the paper's "silly" CCA ("set cwnd = 10 always"). It
//     avoids starvation but is not f-efficient for any f on fast links,
//     which is exactly why the paper's Definition 4 excludes it.
//   * DelayAimd — AIMD driven by a delay threshold instead of loss (§6.2's
//     conjectured route to starvation-freedom: large delay oscillations
//     encode rate in the *frequency* of backoffs).
#pragma once

#include "cc/cca.hpp"
#include "util/time.hpp"

namespace ccstarve {

class ConstCwnd final : public Cca {
 public:
  explicit ConstCwnd(double cwnd_pkts = 10.0) : cwnd_pkts_(cwnd_pkts) {}

  void on_ack(const AckSample&) override {}
  uint64_t cwnd_bytes() const override {
    return static_cast<uint64_t>(cwnd_pkts_ * kMss);
  }
  Rate pacing_rate() const override { return Rate::infinite(); }
  std::string name() const override { return "const-cwnd"; }
  std::unique_ptr<Cca> clone() const override {
    return std::make_unique<ConstCwnd>(*this);
  }
  // The window never moves; the checker may pin it exactly.
  CcaSanity sanity() const override {
    CcaSanity s;
    s.min_cwnd_bytes = cwnd_bytes();
    s.max_cwnd_bytes = cwnd_bytes();
    return s;
  }

 private:
  double cwnd_pkts_;
};

class DelayAimd final : public Cca {
 public:
  struct Params {
    // Back off when queueing delay (RTT - minRTT) exceeds this.
    TimeNs delay_threshold = TimeNs::millis(40);
    double increase_pkts_per_rtt = 1.0;
    double decrease_factor = 0.5;
    double initial_cwnd_pkts = 4.0;
  };

  DelayAimd() : DelayAimd(Params{}) {}
  explicit DelayAimd(const Params& params);

  void on_ack(const AckSample& ack) override;
  void on_loss(const LossSample& loss) override;

  uint64_t cwnd_bytes() const override;
  Rate pacing_rate() const override { return Rate::infinite(); }
  std::string name() const override { return "delay-aimd"; }
  std::unique_ptr<Cca> clone() const override {
    return std::make_unique<DelayAimd>(*this);
  }
  void rebase_time(TimeNs delta) override;
  void rebase_progress(uint64_t delta_bytes) override {
    epoch_end_delivered_ += delta_bytes;
  }

 private:
  Params params_;
  double cwnd_pkts_;
  bool slow_start_ = true;
  TimeNs base_rtt_ = TimeNs::infinite();
  uint64_t epoch_end_delivered_ = 0;
  // Back off at most once per RTT.
  TimeNs backoff_allowed_at_ = TimeNs::zero();
};

}  // namespace ccstarve
