#include "cc/pcc_common.hpp"

namespace ccstarve {

void PccMiTracker::open(TimeNs now, TimeNs duration, Rate target_rate,
                        int tag) {
  if (!mis_.empty()) mis_.back().closed = true;
  Mi mi;
  mi.start = now;
  mi.end = now + duration;
  mi.target_rate = target_rate;
  mi.tag = tag;
  mi.report.target_rate = target_rate;
  mi.report.duration = duration;
  mi.report.tag = tag;
  mis_.push_back(std::move(mi));
}

void PccMiTracker::on_packet_sent(TimeNs now, uint64_t seq, bool retransmit) {
  if (retransmit) {
    // A retransmission resolves the original segment as lost in whichever MI
    // tracked it.
    for (Mi& mi : mis_) {
      if (!mi.any_sent || seq < mi.seq_lo || seq >= mi.seq_hi) continue;
      const size_t idx = static_cast<size_t>((seq - mi.seq_lo) / kMss);
      if (idx < mi.resolved.size() && !mi.resolved[idx]) {
        mi.resolved[idx] = true;
        ++mi.resolved_count;
      }
      return;
    }
    return;
  }
  if (mis_.empty()) return;
  Mi& mi = mis_.back();
  if (mi.closed || now >= mi.end) {
    mi.closed = true;
    return;
  }
  if (!mi.any_sent) {
    mi.seq_lo = seq;
    mi.any_sent = true;
  }
  if (seq < mi.seq_lo) return;
  if (seq + kMss > mi.seq_hi) mi.seq_hi = seq + kMss;
  const size_t idx = static_cast<size_t>((seq - mi.seq_lo) / kMss);
  if (mi.resolved.size() <= idx) mi.resolved.resize(idx + 1, false);
  if (mi.report.sent_pkts == 0) mi.report.first_send_at = now;
  mi.report.last_send_at = now;
  ++mi.report.sent_pkts;
}

void PccMiTracker::on_ack(TimeNs now, uint64_t acked_seq, TimeNs rtt) {
  for (Mi& mi : mis_) {
    if (!mi.any_sent || acked_seq < mi.seq_lo || acked_seq >= mi.seq_hi) {
      continue;
    }
    const size_t idx = static_cast<size_t>((acked_seq - mi.seq_lo) / kMss);
    if (idx >= mi.resolved.size() || mi.resolved[idx]) return;
    mi.resolved[idx] = true;
    ++mi.resolved_count;
    ++mi.report.acked_pkts;
    if (mi.report.first_rtt_at == TimeNs::zero()) {
      mi.report.first_rtt = rtt;
      mi.report.first_rtt_at = now;
    }
    mi.report.last_rtt = rtt;
    mi.report.last_rtt_at = now;
    const double t = (now - mi.report.first_rtt_at).to_seconds();
    const double r = rtt.to_seconds();
    mi.report.reg_n += 1.0;
    mi.report.reg_st += t;
    mi.report.reg_stt += t * t;
    mi.report.reg_sr += r;
    mi.report.reg_str += t * r;
    return;
  }
}

std::optional<MiReport> PccMiTracker::poll_mature(TimeNs now, TimeNs grace) {
  if (mis_.empty()) return std::nullopt;
  Mi& mi = mis_.front();
  const bool ended = mi.closed || now >= mi.end;
  if (!ended) return std::nullopt;
  const bool all_resolved =
      mi.any_sent && mi.resolved_count == mi.report.sent_pkts;
  const bool deadline = now >= mi.end + grace;
  if (!all_resolved && !deadline) return std::nullopt;
  MiReport report = mi.report;
  mis_.pop_front();
  return report;
}

void PccMiTracker::rebase_progress(uint64_t delta_bytes) {
  for (Mi& mi : mis_) {
    if (!mi.any_sent) continue;
    mi.seq_lo += delta_bytes;
    mi.seq_hi += delta_bytes;
  }
}

void PccMiTracker::rebase_time(TimeNs delta) {
  for (Mi& mi : mis_) {
    mi.start += delta;
    mi.end += delta;
    if (mi.report.first_rtt_at != TimeNs::zero()) {
      mi.report.first_rtt_at += delta;
    }
    if (mi.report.last_rtt_at != TimeNs::zero()) {
      mi.report.last_rtt_at += delta;
    }
  }
}

}  // namespace ccstarve
