// Shared monitor-interval (MI) machinery for the PCC family.
//
// PCC reasons in experiments: it sends at a trial rate for one MI, waits
// until every packet of that MI has been ACKed or is presumed lost, then
// scores the MI with a utility function. The tracker here owns that
// bookkeeping: per-MI segment accounting, RTT-gradient samples, and
// maturity detection.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "cc/cca.hpp"
#include "util/time.hpp"

namespace ccstarve {

struct MiReport {
  // The rate PCC was trying during this MI.
  Rate target_rate = Rate::zero();
  TimeNs duration = TimeNs::zero();
  uint64_t sent_pkts = 0;
  uint64_t acked_pkts = 0;
  // Actual send span (first to last transmission in the MI); goodput uses
  // this rather than the nominal duration to avoid boundary quantization.
  TimeNs first_send_at = TimeNs::zero();
  TimeNs last_send_at = TimeNs::zero();
  // First and last RTT samples for packets of this MI.
  TimeNs first_rtt = TimeNs::zero();
  TimeNs first_rtt_at = TimeNs::zero();
  TimeNs last_rtt = TimeNs::zero();
  TimeNs last_rtt_at = TimeNs::zero();
  // Least-squares accumulators for the RTT-slope regression (times are
  // seconds relative to the first sample).
  double reg_n = 0, reg_st = 0, reg_stt = 0, reg_sr = 0, reg_str = 0;
  // Opaque tag the CCA attached when opening the MI (trial direction etc.).
  int tag = 0;

  double loss_rate() const {
    return sent_pkts == 0
               ? 0.0
               : static_cast<double>(sent_pkts - acked_pkts) /
                     static_cast<double>(sent_pkts);
  }
  Rate goodput() const {
    // Effective interval: send span stretched by n/(n-1) to cover the last
    // packet's slot; falls back to the nominal duration.
    TimeNs span = last_send_at - first_send_at;
    if (sent_pkts >= 2 && span > TimeNs::zero()) {
      span = span * (static_cast<double>(sent_pkts) /
                     static_cast<double>(sent_pkts - 1));
    } else {
      span = duration;
    }
    return span <= TimeNs::zero()
               ? Rate::zero()
               : Rate::from_bytes_over(acked_pkts * kMss, span);
  }
  // True when the MI carried a congestion signal (delay growth or loss).
  bool congestion_evidence() const {
    return rtt_gradient() > 0.0 || acked_pkts < sent_pkts;
  }
  // Seconds of RTT change per second of wall time during the MI, from a
  // least-squares fit over every RTT sample (robust to the packet-grain
  // quantization that makes a first/last estimator pure noise at low rates).
  double rtt_gradient() const {
    if (reg_n < 2) return 0.0;
    const double denom = reg_n * reg_stt - reg_st * reg_st;
    if (denom <= 0.0) return 0.0;
    return (reg_n * reg_str - reg_st * reg_sr) / denom;
  }
};

class PccMiTracker {
 public:
  // Opens a new MI covering sends in [now, now + duration).
  void open(TimeNs now, TimeNs duration, Rate target_rate, int tag);

  bool has_open_mi() const { return !mis_.empty() && !mis_.back().closed; }
  TimeNs open_mi_end() const { return mis_.back().end; }

  // `retransmit` marks the segment as lost for MI accounting (PCC treats a
  // retransmitted packet of an MI as a loss even if the retransmission is
  // later delivered).
  void on_packet_sent(TimeNs now, uint64_t seq, bool retransmit = false);
  void on_ack(TimeNs now, uint64_t acked_seq, TimeNs rtt);

  // Returns the oldest MI whose packets have all been ACKed or whose
  // maturity deadline (end + grace) passed; otherwise nullopt.
  std::optional<MiReport> poll_mature(TimeNs now, TimeNs grace);

  void rebase_time(TimeNs delta);
  // Shift every MI's sequence range by `delta_bytes` (see Cca::
  // rebase_progress): MIs key segments on raw sequence numbers, so a
  // uniform seq-space shift must move the ranges with it.
  void rebase_progress(uint64_t delta_bytes);

 private:
  struct Mi {
    TimeNs start, end;
    Rate target_rate;
    int tag;
    bool closed = false;  // no longer accepting sends
    uint64_t seq_lo = 0, seq_hi = 0;
    bool any_sent = false;
    // A segment is resolved once ACKed or declared lost (retransmitted).
    std::vector<bool> resolved;
    uint64_t resolved_count = 0;
    MiReport report;
  };

  std::deque<Mi> mis_;
};

}  // namespace ccstarve
