#include "cc/reno.hpp"

#include <algorithm>

namespace ccstarve {

NewReno::NewReno(const Params& params)
    : params_(params),
      cwnd_pkts_(params.initial_cwnd_pkts),
      ssthresh_pkts_(params.initial_ssthresh_pkts) {}

void NewReno::on_ack(const AckSample& ack) {
  if (ack.newly_acked_bytes == 0 || ack.in_recovery) return;
  const double acked_pkts =
      static_cast<double>(ack.newly_acked_bytes) / static_cast<double>(kMss);
  if (in_slow_start()) {
    cwnd_pkts_ += acked_pkts;
  } else {
    cwnd_pkts_ += acked_pkts / cwnd_pkts_;
  }
}

void NewReno::on_loss(const LossSample& loss) {
  if (loss.is_timeout) {
    ssthresh_pkts_ = std::max(2.0, cwnd_pkts_ / 2.0);
    cwnd_pkts_ = 1.0;
  } else {
    ssthresh_pkts_ = std::max(2.0, cwnd_pkts_ / 2.0);
    cwnd_pkts_ = ssthresh_pkts_;
  }
}

uint64_t NewReno::cwnd_bytes() const {
  return static_cast<uint64_t>(std::max(1.0, cwnd_pkts_) * kMss);
}

}  // namespace ccstarve
