// TCP NewReno (RFC 6582 shape): the classic loss-based AIMD baseline.
//
// Not delay-convergent — its equilibrium is a sawtooth whose delay
// oscillation spans the whole buffer — which is precisely why §5.4 finds its
// unfairness under ACK burstiness *bounded* (~3x) rather than unbounded.
#pragma once

#include "cc/cca.hpp"

namespace ccstarve {

class NewReno final : public Cca {
 public:
  struct Params {
    double initial_cwnd_pkts = 4.0;
    double initial_ssthresh_pkts = 1e9;
  };

  NewReno() : NewReno(Params{}) {}
  explicit NewReno(const Params& params);

  void on_ack(const AckSample& ack) override;
  void on_loss(const LossSample& loss) override;

  uint64_t cwnd_bytes() const override;
  Rate pacing_rate() const override { return Rate::infinite(); }
  std::string name() const override { return "newreno"; }
  std::unique_ptr<Cca> clone() const override {
    return std::make_unique<NewReno>(*this);
  }
  // cwnd_bytes() floors at 1 MSS (reno.cpp).
  CcaSanity sanity() const override {
    CcaSanity s;
    s.min_cwnd_bytes = kMss;
    return s;
  }

  double cwnd_pkts() const { return cwnd_pkts_; }
  bool in_slow_start() const { return cwnd_pkts_ < ssthresh_pkts_; }

 private:
  Params params_;
  double cwnd_pkts_;
  double ssthresh_pkts_;
};

}  // namespace ccstarve
