#include "cc/vegas.hpp"

#include <algorithm>

namespace ccstarve {

Vegas::Vegas(const Params& params)
    : params_(params), cwnd_pkts_(params.initial_cwnd_pkts) {}

void Vegas::on_ack(const AckSample& ack) {
  if (ack.in_recovery) return;
  if (ack.rtt > TimeNs::zero()) {
    base_rtt_ = ccstarve::min(base_rtt_, ack.rtt);
    epoch_min_rtt_ = ccstarve::min(epoch_min_rtt_, ack.rtt);
    latest_rtt_ = ack.rtt;
  }
  if (ack.delivered_bytes >= epoch_end_delivered_) {
    end_epoch(ack);
  }
}

void Vegas::end_epoch(const AckSample& ack) {
  // Arm the next epoch: one window's worth of data from here.
  epoch_end_delivered_ =
      ack.delivered_bytes + static_cast<uint64_t>(cwnd_pkts_) * kMss;

  if (epoch_min_rtt_.is_infinite() || base_rtt_.is_infinite()) return;
  const TimeNs rtt = epoch_min_rtt_;
  epoch_min_rtt_ = TimeNs::infinite();

  // Estimated packets sitting in the bottleneck queue:
  //   Diff = (Expected - Actual) * BaseRTT = W * (RTT - BaseRTT) / RTT.
  const double diff =
      cwnd_pkts_ * (rtt - base_rtt_).to_seconds() / rtt.to_seconds();
  last_diff_ = diff;

  if (slow_start_) {
    if (diff > 1.0) {
      // Exit slow start as soon as a packet of standing queue appears and
      // clamp the window to the pipe estimate plus the target backlog —
      // Vegas's congestion-detection-during-slow-start (without it, the
      // doubling overshoot would take hundreds of AIAD RTTs to drain).
      slow_start_ = false;
      // Clamp against the *latest* RTT: at high BDP the epoch minimum was
      // sampled before the overshoot queue built, and using it would leave
      // a standing queue that AIAD takes thousands of RTTs to drain.
      const TimeNs now_rtt = ccstarve::max(latest_rtt_, rtt);
      const double pipe_pkts =
          cwnd_pkts_ * base_rtt_.to_seconds() / now_rtt.to_seconds();
      cwnd_pkts_ = std::max(2.0, pipe_pkts + params_.alpha_pkts);
      return;
    }
    // Double every other RTT, as Vegas does.
    if ((ss_epoch_++ & 1) == 0) cwnd_pkts_ *= 2.0;
    return;
  }
  if (diff < params_.alpha_pkts) {
    cwnd_pkts_ += 1.0;
  } else if (diff > params_.beta_pkts) {
    cwnd_pkts_ -= 1.0;
  }
  cwnd_pkts_ = std::max(cwnd_pkts_, 2.0);
}

void Vegas::on_loss(const LossSample& loss) {
  // Vegas halves on loss like Reno; rare on the ideal paths studied here.
  cwnd_pkts_ = std::max(2.0, cwnd_pkts_ * (loss.is_timeout ? 0.25 : 0.5));
  slow_start_ = false;
}

uint64_t Vegas::cwnd_bytes() const {
  return static_cast<uint64_t>(cwnd_pkts_ * kMss);
}

}  // namespace ccstarve
