// TCP Vegas (Brakmo & Peterson, SIGCOMM 1994).
//
// The canonical delay-convergent CCA: it tries to keep between `alpha` and
// `beta` packets queued at the bottleneck. On an ideal path it converges to
// RTT = Rm + alpha_pkts * MSS / C with delta(C) = 0 — the flattest curve in
// the paper's Figure 3 and therefore the most starvation-prone shape.
#pragma once

#include <cstdint>

#include "cc/cca.hpp"
#include "util/time.hpp"

namespace ccstarve {

class Vegas final : public Cca {
 public:
  struct Params {
    // Lower/upper bound on the target number of queued packets.
    double alpha_pkts = 4.0;
    double beta_pkts = 6.0;
    double initial_cwnd_pkts = 4.0;
  };

  Vegas() : Vegas(Params{}) {}
  explicit Vegas(const Params& params);

  void on_ack(const AckSample& ack) override;
  void on_loss(const LossSample& loss) override;

  uint64_t cwnd_bytes() const override;
  Rate pacing_rate() const override { return Rate::infinite(); }
  std::string name() const override { return "vegas"; }
  std::unique_ptr<Cca> clone() const override {
    return std::make_unique<Vegas>(*this);
  }
  void rebase_progress(uint64_t delta_bytes) override {
    epoch_end_delivered_ += delta_bytes;
  }
  // cwnd_pkts_ never drops below 2 on any path (vegas.cpp).
  CcaSanity sanity() const override {
    CcaSanity s;
    s.min_cwnd_bytes = 2 * kMss;
    return s;
  }

  const Params& params() const { return params_; }
  double base_rtt_seconds() const { return base_rtt_.to_seconds(); }
  // Current estimate of packets queued at the bottleneck.
  double diff_pkts() const { return last_diff_; }

 private:
  void end_epoch(const AckSample& ack);

  Params params_;
  double cwnd_pkts_;
  bool slow_start_ = true;
  TimeNs base_rtt_ = TimeNs::infinite();

  // Per-RTT measurement epoch, delimited by delivered-byte marks.
  uint64_t epoch_end_delivered_ = 0;
  TimeNs epoch_min_rtt_ = TimeNs::infinite();
  TimeNs latest_rtt_ = TimeNs::zero();
  double last_diff_ = 0.0;
  uint64_t ss_epoch_ = 0;
};

}  // namespace ccstarve
