#include "cc/verus.hpp"

#include <algorithm>
#include <cmath>

namespace ccstarve {

Verus::Verus(const Params& params)
    : params_(params),
      cwnd_pkts_(params.initial_cwnd_pkts),
      min_rtt_(params.min_rtt_window) {}

int Verus::bucket_of(double cwnd_pkts) const {
  const double clamped = std::clamp(cwnd_pkts, 1.0, kMaxPkts);
  const double frac = std::log2(clamped) / std::log2(kMaxPkts);
  return std::clamp(static_cast<int>(frac * (kBuckets - 1)), 0, kBuckets - 1);
}

double Verus::bucket_center(int bucket) const {
  const double frac = static_cast<double>(bucket) / (kBuckets - 1);
  return std::pow(2.0, frac * std::log2(kMaxPkts));
}

double Verus::profiled_delay(double cwnd_pkts) const {
  // Nearest set bucket at or below; falls back to the raw minimum RTT.
  for (int b = bucket_of(cwnd_pkts); b >= 0; --b) {
    if (profile_set_[static_cast<size_t>(b)]) {
      return profile_s_[static_cast<size_t>(b)];
    }
  }
  const auto mn = min_rtt_.peek();
  return mn ? mn->to_seconds() : 0.0;
}

double Verus::inverse_profile(double target_s) const {
  double best = 2.0;  // never below two packets
  for (int b = 0; b < kBuckets; ++b) {
    if (!profile_set_[static_cast<size_t>(b)]) continue;
    if (profile_s_[static_cast<size_t>(b)] <= target_s) {
      best = std::max(best, bucket_center(b));
    }
  }
  return best;
}

void Verus::on_ack(const AckSample& ack) {
  if (ack.rtt <= TimeNs::zero() || ack.in_recovery) return;
  min_rtt_.update(ack.rtt, ack.now);
  epoch_max_rtt_ = ccstarve::max(epoch_max_rtt_, ack.rtt);

  // Learn the profile from the (window, delay) pair of this ACK.
  const int b = bucket_of(cwnd_pkts_);
  auto& cell = profile_s_[static_cast<size_t>(b)];
  if (!profile_set_[static_cast<size_t>(b)]) {
    cell = ack.rtt.to_seconds();
    profile_set_[static_cast<size_t>(b)] = true;
  } else {
    cell += 0.2 * (ack.rtt.to_seconds() - cell);
  }

  // React to a threshold breach immediately (Verus's delay guard), at most
  // once per epoch; waiting for the epoch boundary lets the overshoot
  // compound.
  const auto mn = min_rtt_.get(ack.now);
  if (mn && ack.rtt.to_seconds() > params_.r_ratio * mn->to_seconds() &&
      ack.now >= md_allowed_at_) {
    cwnd_pkts_ = std::max(2.0, cwnd_pkts_ * params_.decrease_factor);
    target_delay_s_ = std::max(mn->to_seconds() * 1.05,
                               target_delay_s_ * params_.decrease_factor);
    slow_start_ = false;
    md_allowed_at_ = ack.now + params_.epoch;
  }

  if (ack.now >= epoch_end_) end_epoch(ack);
}

void Verus::end_epoch(const AckSample& ack) {
  epoch_end_ = ack.now + params_.epoch;
  const TimeNs epoch_max = epoch_max_rtt_;
  epoch_max_rtt_ = TimeNs::zero();
  const auto mn = min_rtt_.get(ack.now);
  if (!mn || epoch_max <= TimeNs::zero()) return;
  const double d_min = mn->to_seconds();

  if (target_delay_s_ == 0.0) target_delay_s_ = d_min * 1.2;

  if (epoch_max.to_seconds() > params_.r_ratio * d_min) {
    return;  // the per-ACK guard already reacted this epoch
  }

  if (slow_start_) {
    cwnd_pkts_ *= 1.5;
    return;
  }

  // Nudge the delay target: shrinking delay -> room to ask for more.
  if (epoch_max <= prev_epoch_max_) {
    target_delay_s_ += params_.delta_up * d_min;
  } else {
    target_delay_s_ -= params_.delta_down * d_min;
  }
  prev_epoch_max_ = epoch_max;
  target_delay_s_ =
      std::clamp(target_delay_s_, d_min * 1.10, d_min * params_.r_ratio);

  // Read the next window off the learned inverse profile, rate-limited to
  // one doubling (or halving) per epoch.
  const double want = inverse_profile(target_delay_s_);
  cwnd_pkts_ = std::clamp(want, cwnd_pkts_ * 0.7, cwnd_pkts_ * 1.25);
  cwnd_pkts_ = std::max(cwnd_pkts_, 2.0);
}

void Verus::on_loss(const LossSample& loss) {
  cwnd_pkts_ = std::max(2.0, cwnd_pkts_ * (loss.is_timeout ? 0.25 : 0.7));
  slow_start_ = false;
}

uint64_t Verus::cwnd_bytes() const {
  return static_cast<uint64_t>(cwnd_pkts_ * kMss);
}

void Verus::rebase_time(TimeNs delta) {
  min_rtt_.rebase_time(delta);
  epoch_end_ += delta;
  md_allowed_at_ += delta;
}

}  // namespace ccstarve
