// Verus (Zaki et al., SIGCOMM 2015) — the delay-profile CCA the paper lists
// among the delay-convergent algorithms (§2.2; it filters with *maximums*
// of RTT, the opposite choice from Copa/LEDBAT's minimums).
//
// Simplified from the paper:
//   * a continuously-learned *delay profile* maps sending window ->
//     expected delay (log-bucketed EWMA of (cwnd, RTT) observations);
//   * every epoch the max RTT seen is compared against R * minRTT: above
//     the ratio -> multiplicative decrease; below -> the delay *target*
//     is nudged up (delay shrinking: room to grow) or down (delay grew),
//     and the next window is read off the inverse profile.
// On an ideal path the delay stays bounded (a few multiples of minRTT) with
// a visibly large oscillation — matching the original's cellular traces —
// which still makes it delay-convergent by Definition 1 and therefore
// inside Theorem 1's blast radius.
#pragma once

#include <array>

#include "cc/cca.hpp"
#include "util/filters.hpp"
#include "util/time.hpp"

namespace ccstarve {

class Verus final : public Cca {
 public:
  struct Params {
    // Multiplicative-decrease trigger: epoch max RTT > R * min RTT.
    double r_ratio = 2.0;
    double decrease_factor = 0.7;
    // Target-delay nudge per epoch, as a fraction of min RTT.
    double delta_up = 0.08;
    double delta_down = 0.08;
    TimeNs epoch = TimeNs::millis(25);
    double initial_cwnd_pkts = 4.0;
    TimeNs min_rtt_window = TimeNs::seconds(60);
  };

  Verus() : Verus(Params{}) {}
  explicit Verus(const Params& params);

  void on_ack(const AckSample& ack) override;
  void on_loss(const LossSample& loss) override;

  uint64_t cwnd_bytes() const override;
  Rate pacing_rate() const override { return Rate::infinite(); }
  std::string name() const override { return "verus"; }
  std::unique_ptr<Cca> clone() const override {
    return std::make_unique<Verus>(*this);
  }
  void rebase_time(TimeNs delta) override;

  double target_delay_seconds() const { return target_delay_s_; }
  // Profiled delay for a window (exposed for tests).
  double profiled_delay(double cwnd_pkts) const;

 private:
  static constexpr int kBuckets = 48;
  static constexpr double kMaxPkts = 1 << 14;

  int bucket_of(double cwnd_pkts) const;
  double bucket_center(int bucket) const;
  void end_epoch(const AckSample& ack);
  // Largest window whose profiled delay stays at or below the target.
  double inverse_profile(double target_s) const;

  Params params_;
  double cwnd_pkts_;
  bool slow_start_ = true;

  WindowedMin<TimeNs> min_rtt_;
  TimeNs epoch_end_ = TimeNs::zero();
  TimeNs md_allowed_at_ = TimeNs::zero();
  TimeNs epoch_max_rtt_ = TimeNs::zero();
  TimeNs prev_epoch_max_ = TimeNs::zero();
  double target_delay_s_ = 0.0;

  // Delay profile: EWMA of observed RTT per log-spaced window bucket.
  std::array<double, kBuckets> profile_s_{};
  std::array<bool, kBuckets> profile_set_{};
};

}  // namespace ccstarve
