#include "cc/vivace.hpp"

#include <algorithm>
#include <cmath>

namespace ccstarve {

Vivace::Vivace(const Params& params)
    : params_(params),
      rng_(params.seed),
      base_rate_(params.initial_rate),
      sending_rate_(params.initial_rate) {}

double Vivace::utility(const MiReport& mi) const {
  const double x = mi.goodput().to_mbps();
  // Deadband at half the per-packet quantization scale: RTT samples move in
  // steps of one transmission time, so slopes below tx_time/(2*duration)
  // are indistinguishable from noise.
  const double quantum =
      mi.target_rate.bits_per_sec() > 0.0
          ? (kMss * 8.0 / mi.target_rate.bits_per_sec()) /
                (2.0 * std::max(mi.duration.to_seconds(), 1e-3))
          : 0.0;
  double grad = mi.rtt_gradient();
  grad = grad > quantum ? grad - quantum : 0.0;
  const double loss = mi.loss_rate();
  return std::pow(std::max(x, 0.0), params_.throughput_exponent) -
         params_.latency_coeff * x * grad - params_.loss_coeff * x * loss;
}

void Vivace::on_packet_sent(TimeNs now, uint64_t seq, uint32_t /*bytes*/,
                            uint64_t /*inflight*/, bool retransmit) {
  tracker_.on_packet_sent(now, seq, retransmit);
  maybe_open_mi(now);
}

void Vivace::on_loss(const LossSample&) {
  // Losses surface through MI accounting (unresolved segments); nothing to
  // do here. Vivace has no loss-triggered window cut.
}

void Vivace::on_ack(const AckSample& ack) {
  srtt_.update(ack.rtt.to_seconds());
  min_rtt_.update(ack.rtt, ack.now);
  tracker_.on_ack(ack.now, ack.acked_seq, ack.rtt);

  if (phase_ == Phase::kDrain) {
    // Hold at half the measured delivery rate until the slow-start queue is
    // gone, then hand the operating point to the online learner.
    const double floor =
        min_rtt_.peek() ? min_rtt_.peek()->to_seconds() : 0.05;
    if (ack.rtt.to_seconds() < 1.2 * floor) {
      base_rate_ = drain_exit_rate_;
      phase_ = Phase::kOnline;
    }
  }

  const TimeNs grace =
      TimeNs::seconds(std::max(2.0 * srtt_.value(), 0.01));
  while (auto mi = tracker_.poll_mature(ack.now, grace)) {
    on_mi_mature(*mi);
  }
  maybe_open_mi(ack.now);
}

void Vivace::maybe_open_mi(TimeNs now) {
  if (tracker_.has_open_mi() && now < tracker_.open_mi_end()) return;
  // MIs are sized by the propagation RTT estimate (windowed min), not the
  // inflated smoothed RTT: during bufferbloat the control loop must keep
  // deciding at path cadence rather than queue cadence.
  const double rtt = min_rtt_.peek()
                         ? min_rtt_.peek()->to_seconds()
                         : (srtt_.initialized() ? srtt_.value() : 0.05);
  // At least one propagation RTT, and long enough to carry ~20 packets so
  // per-MI goodput and loss estimates are not quantization noise.
  const double pkt_floor_s =
      20.0 * kMss / std::max(base_rate_.bytes_per_second(), 1.0);
  const TimeNs dur =
      TimeNs::seconds(std::max({rtt, pkt_floor_s, 0.005}));

  if (phase_ == Phase::kSlowStart || phase_ == Phase::kDrain) {
    sending_rate_ = base_rate_;
    tracker_.open(now, dur, sending_rate_, kTagStartup);
    return;
  }

  // Online learning: alternate the two trial MIs of the current pair.
  if (trials_outstanding_ == 0) {
    trial_plus_first_ = rng_.bernoulli(0.5);
    trials_outstanding_ = 2;
  }
  const bool plus = trials_outstanding_ == 2 ? trial_plus_first_
                                             : !trial_plus_first_;
  --trials_outstanding_;
  const double factor = plus ? 1.0 + params_.trial_eps : 1.0 - params_.trial_eps;
  sending_rate_ = ccstarve::max(params_.min_rate, base_rate_ * factor);
  tracker_.open(now, dur, sending_rate_, plus ? kTagPlus : kTagMinus);
}

void Vivace::on_mi_mature(const MiReport& mi) {
  const double u = utility(mi);
  if (phase_ == Phase::kSlowStart) {
    // A single noisy MI must not end the ramp: exit requires a clear (>20%)
    // utility drop below the best seen so far.
    if (!have_prev_utility_ || u > 0.8 * prev_utility_) {
      prev_utility_ = std::max(u, prev_utility_);
      have_prev_utility_ = true;
      base_rate_ = ccstarve::min(base_rate_ * 2.0, params_.max_rate);
    } else {
      // Exit via a drain phase at half the *measured* goodput — the
      // latency-gradient utility exerts no pressure on a static queue, so
      // the slow-start overshoot must be drained explicitly before the
      // learner takes over near the measured capacity.
      const Rate anchor = ccstarve::min(base_rate_, mi.goodput());
      drain_exit_rate_ = ccstarve::max(anchor, params_.min_rate);
      base_rate_ = ccstarve::max(anchor * 0.5, params_.min_rate);
      phase_ = Phase::kDrain;
    }
    return;
  }
  if (phase_ == Phase::kDrain) return;
  if (mi.tag == kTagPlus) {
    utility_plus_ = u;
    have_plus_ = true;
  } else if (mi.tag == kTagMinus) {
    utility_minus_ = u;
    have_minus_ = true;
  }
  pair_congestion_ |= mi.congestion_evidence();
  if (have_plus_ && have_minus_) {
    decide(utility_plus_, utility_minus_, pair_congestion_);
    have_plus_ = have_minus_ = false;
    pair_congestion_ = false;
  }
}

void Vivace::decide(double utility_plus, double utility_minus,
                    bool congestion_evidence) {
  const double r = base_rate_.to_mbps();
  if (utility_plus < 0.0 && utility_minus < 0.0) {
    // Both trials scored negative utility: the A/B gradient is blind (both
    // saturated the path), but the sign alone proves overload. Back off
    // multiplicatively until the utility surfaces again.
    base_rate_ = ccstarve::max(base_rate_ * 0.7, params_.min_rate);
    amplifier_ = 1;
    prev_gradient_sign_ = 0.0;
    return;
  }
  const double denom = 2.0 * params_.trial_eps * std::max(r, 1e-6);
  const double gradient = (utility_plus - utility_minus) / denom;

  const double sign = gradient > 0 ? 1.0 : (gradient < 0 ? -1.0 : 0.0);
  if (sign != 0.0 && sign == prev_gradient_sign_) {
    amplifier_ = std::min(amplifier_ + 1, params_.max_amplifier);
  } else {
    amplifier_ = 1;
  }
  prev_gradient_sign_ = sign;

  double step = static_cast<double>(amplifier_) * params_.step_theta_mbps *
                gradient;
  // Swing boundary, asymmetric: upswings stay cautious (feedback about an
  // overshoot arrives a full queue-inflated RTT later), downswings grow
  // geometrically so a runaway queue drains in a handful of decisions.
  const double up = (0.05 + 0.02 * amplifier_) * std::max(r, 1.0);
  // The aggressive downswing is reserved for decisions backed by an actual
  // congestion signal; throughput-term noise alone moves the rate gently.
  const double down =
      congestion_evidence
          ? std::min(0.05 * std::pow(2.0, amplifier_ - 1), 0.5) *
                std::max(r, 1.0)
          : up;
  step = std::clamp(step, -down, up);

  base_rate_ = Rate::mbps(std::clamp(r + step, params_.min_rate.to_mbps(),
                                     params_.max_rate.to_mbps()));
}

uint64_t Vivace::cwnd_bytes() const {
  // Inflight safety cap (the kernel module rides on TCP's window): a few
  // BDPs at the trial rate. Only binds under pathological overload.
  const double floor_s =
      min_rtt_.peek() ? min_rtt_.peek()->to_seconds() : 0.1;
  const double cap =
      2.5 * sending_rate_.bytes_per_second() * (floor_s + 0.1);
  return static_cast<uint64_t>(std::max(cap, 10.0 * kMss));
}

void Vivace::rebase_progress(uint64_t delta_bytes) {
  tracker_.rebase_progress(delta_bytes);
}

void Vivace::rebase_time(TimeNs delta) {
  tracker_.rebase_time(delta);
  min_rtt_.rebase_time(delta);
}

}  // namespace ccstarve
