// PCC Vivace (Dong et al., NSDI 2018): gradient-ascent online learning on
// the utility u(x) = x^0.9 - b * x * max(0, dRTT/dt) - c * x * L.
//
// Each decision runs two trial monitor intervals at rate*(1±eps) (order
// randomized) and steps the rate along the measured utility gradient with a
// confidence amplifier. On an ideal link Vivace converges to full
// utilization with queueing oscillating between ~Rm and ~1.05 Rm
// (delta_max = Rm/20; paper Fig. 3). It never compares delays across flows,
// which is why quantized ACK delivery to *one* flow (§5.3) starves it.
#pragma once

#include "cc/cca.hpp"
#include "cc/pcc_common.hpp"
#include "util/filters.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace ccstarve {

class Vivace final : public Cca {
 public:
  struct Params {
    double throughput_exponent = 0.9;  // t in x^t
    double latency_coeff = 900.0;      // b
    double loss_coeff = 11.35;         // c
    double trial_eps = 0.05;           // ±5% rate trials
    double step_theta_mbps = 1.0;      // base gradient step
    int max_amplifier = 6;
    Rate min_rate = Rate::kbps(100);
    Rate max_rate = Rate::gbps(20);
    Rate initial_rate = Rate::mbps(2);
    uint64_t seed = 7;
  };

  Vivace() : Vivace(Params{}) {}
  explicit Vivace(const Params& params);

  void on_packet_sent(TimeNs now, uint64_t seq, uint32_t bytes,
                      uint64_t inflight, bool retransmit) override;
  void on_ack(const AckSample& ack) override;
  void on_loss(const LossSample& loss) override;

  uint64_t cwnd_bytes() const override;
  Rate pacing_rate() const override { return sending_rate_; }
  std::string name() const override { return "pcc-vivace"; }
  std::unique_ptr<Cca> clone() const override {
    return std::make_unique<Vivace>(*this);
  }
  void rebase_time(TimeNs delta) override;
  void rebase_progress(uint64_t delta_bytes) override;

  Rate base_rate() const { return base_rate_; }
  bool in_slow_start() const { return phase_ == Phase::kSlowStart; }

  // Utility of a finished MI under this Vivace's parameters (exposed so the
  // tests can probe the utility landscape directly).
  double utility(const MiReport& mi) const;

 private:
  enum class Phase { kSlowStart, kDrain, kOnline };
  enum MiTag { kTagStartup = 0, kTagPlus = 1, kTagMinus = 2 };

  void maybe_open_mi(TimeNs now);
  void on_mi_mature(const MiReport& mi);
  void decide(double utility_plus, double utility_minus,
              bool congestion_evidence);

  Params params_;
  Rng rng_;
  PccMiTracker tracker_;
  Phase phase_ = Phase::kSlowStart;

  Rate base_rate_;     // the learner's current operating point
  Rate sending_rate_;  // what the pacer uses right now (trial rate)
  Ewma srtt_{1.0 / 4.0};
  WindowedMin<TimeNs> min_rtt_{TimeNs::seconds(10)};

  // Slow-start bookkeeping.
  double prev_utility_ = 0.0;
  bool have_prev_utility_ = false;

  // Online-learning bookkeeping.
  bool trial_plus_first_ = true;
  int trials_outstanding_ = 0;
  double utility_plus_ = 0.0, utility_minus_ = 0.0;
  bool have_plus_ = false, have_minus_ = false;
  int amplifier_ = 1;
  double prev_gradient_sign_ = 0.0;
  Rate drain_exit_rate_ = Rate::mbps(1);
  bool pair_congestion_ = false;
};

}  // namespace ccstarve
