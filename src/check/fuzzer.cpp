#include "check/fuzzer.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

#include "check/invariants.hpp"
#include "obs/flight.hpp"
#include "obs/flight_export.hpp"
#include "obs/telemetry.hpp"
#include "sim/trace_probe.hpp"
#include "sim/warp/warp.hpp"
#include "util/rng.hpp"

namespace ccstarve::check {

namespace {

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// Inverse of sweep::parse_flow for the option subset the fuzzer emits.
std::string flow_to_string(const sweep::FlowArgs& fa) {
  std::string s = fa.cca;
  if (fa.start_s != 0.0) s += ":start=" + fmt(fa.start_s);
  if (fa.rtt_ms.has_value()) s += ":rtt=" + fmt(*fa.rtt_ms);
  if (fa.loss != 0.0) s += ":loss=" + fmt(fa.loss);
  if (!fa.ack_jitter.empty() && fa.ack_jitter != "none") {
    s += ":ackjitter=" + fa.ack_jitter;
  }
  if (!fa.data_jitter.empty() && fa.data_jitter != "none") {
    s += ":datajitter=" + fa.data_jitter;
  }
  if (fa.rwnd_pkts > 0) {
    s += ":rwnd=" + std::to_string(fa.rwnd_pkts);
    if (fa.drain_mbps > 0) s += ":drain=" + fmt(fa.drain_mbps);
    if (fa.drain_burst_pkts > 1) {
      s += ":drainburst=" + std::to_string(fa.drain_burst_pkts);
    }
    if (!fa.window_updates) s += ":wndupd=0";
  }
  return s;
}

std::string join_flows(const std::vector<std::string>& flows) {
  std::string s;
  for (size_t i = 0; i < flows.size(); ++i) {
    if (i > 0) s += '+';
    s += flows[i];
  }
  return s;
}

// Whether a flow's behaviour is independent of its position in the flow
// list. Positional seeds feed the loss gate, uniform jitter and the
// randomized CCAs, so any of those makes a swap change behaviour.
bool position_independent(const sweep::FlowArgs& fa) {
  if (fa.loss != 0.0) return false;
  if (starts_with(fa.data_jitter, "uniform") ||
      starts_with(fa.ack_jitter, "uniform")) {
    return false;
  }
  return fa.cca != "bbr" && fa.cca != "vivace" && fa.cca != "allegro";
}

struct FlowEnd {
  uint64_t sent = 0;
  uint64_t delivered = 0;
  uint64_t cum = 0;
  bool operator==(const FlowEnd&) const = default;
};

std::vector<FlowEnd> collect_ends(const Scenario& sc) {
  std::vector<FlowEnd> ends(sc.flow_count());
  for (size_t i = 0; i < sc.flow_count(); ++i) {
    ends[i] = {sc.sender(i).packets_sent(), sc.sender(i).delivered_bytes(),
               sc.receiver(i).cum_received()};
  }
  return ends;
}

std::string end_str(const FlowEnd& e) {
  return "sent=" + std::to_string(e.sent) +
         " delivered=" + std::to_string(e.delivered) +
         " cum=" + std::to_string(e.cum);
}

std::string jitter_spec(Rng& rng) {
  switch (rng.next_below(6)) {
    case 0: {
      const double c[] = {1, 2, 5, 8};
      return "const:" + fmt(c[rng.next_below(4)]);
    }
    case 1: {
      const double c[] = {2, 5};
      return "uniform:" + fmt(c[rng.next_below(2)]);
    }
    case 2: {
      const double c[] = {20, 60};
      return "quantize:" + fmt(c[rng.next_below(2)]);
    }
    case 3:
      return "onoff:8,50,50";
    case 4:
      return "step:5,0.5";
    default:
      return "allbutone:1,0.3";
  }
}

// Telemetry oracle helpers: aggregates must be finite and self-consistent,
// series strictly monotone in time.
std::string check_aggregate(const obs::StreamingAggregate& a) {
  if (!std::isfinite(a.mean()) || !std::isfinite(a.variance()) ||
      !std::isfinite(a.min()) || !std::isfinite(a.max()) ||
      !std::isfinite(a.p50()) || !std::isfinite(a.p90()) ||
      !std::isfinite(a.p99())) {
    return "non-finite aggregate";
  }
  if (a.count() == 0) return "";
  if (a.variance() < 0) return "negative variance";
  if (a.min() > a.max()) return "min above max";
  for (double q : {a.p50(), a.p90(), a.p99()}) {
    if (q < a.min() || q > a.max()) return "quantile outside [min, max]";
  }
  return "";
}

std::string check_ring_monotone(const obs::RingSeries& r) {
  for (size_t i = 1; i < r.size(); ++i) {
    if (!(r.at(i - 1).at < r.at(i).at)) {
      return "series times not strictly increasing at sample " +
             std::to_string(i);
    }
  }
  return "";
}

std::optional<FuzzFailure> check_telemetry(const obs::FlowTelemetry& tm) {
  const auto fail = [](size_t flow, const std::string& what) {
    return FuzzFailure{"telemetry", "flow " + std::to_string(flow) + ": " +
                                        what};
  };
  for (size_t i = 0; i < tm.flow_count(); ++i) {
    const obs::FlowTelemetry::FlowSeries& fs = tm.flow(i);
    const struct {
      const char* name;
      const obs::StreamingAggregate* agg;
    } aggs[] = {{"send_mbps", &fs.agg_send_mbps},
                {"deliver_mbps", &fs.agg_deliver_mbps},
                {"rtt_ms", &fs.agg_rtt_ms},
                {"qdelay_ms", &fs.agg_qdelay_ms}};
    for (const auto& a : aggs) {
      const std::string err = check_aggregate(*a.agg);
      if (!err.empty()) return fail(i, std::string(a.name) + ": " + err);
    }
    const struct {
      const char* name;
      const obs::RingSeries* ring;
    } rings[] = {{"send_mbps", &fs.send_mbps},
                 {"deliver_mbps", &fs.deliver_mbps},
                 {"rtt_ms", &fs.rtt_ms},
                 {"cwnd_bytes", &fs.cwnd_bytes}};
    for (const auto& r : rings) {
      const std::string err = check_ring_monotone(*r.ring);
      if (!err.empty()) return fail(i, std::string(r.name) + ": " + err);
    }
    if (fs.sent_bytes < fs.delivered_bytes &&
        tm.link().drops_total == 0) {
      // Delivered can only trail sent on a lossless path (seeded counters
      // keep the relation across mid-run attach too).
      return fail(i, "delivered_bytes above sent_bytes without drops");
    }
  }
  if (const std::string err = check_aggregate(tm.link().agg_queue_ms);
      !err.empty()) {
    return FuzzFailure{"telemetry", "link queue_ms: " + err};
  }
  for (const obs::RingSeries* r :
       {&tm.link().queue_ms, &tm.link().drops,
        &tm.starvation().timeline()}) {
    if (const std::string err = check_ring_monotone(*r); !err.empty()) {
      return FuzzFailure{"telemetry", "link/timeline: " + err};
    }
  }
  if (!std::isfinite(tm.starvation().last_ratio()) ||
      tm.starvation().last_ratio() < 1.0) {
    return FuzzFailure{"telemetry", "worst-pair ratio below 1 (max/min)"};
  }
  return std::nullopt;
}

}  // namespace

std::string FuzzCase::to_line() const {
  return std::to_string(seed) + "|" + flow_set + "|" + fmt(link_mbps) + "|" +
         fmt(rtt_ms) + "|" + (buffer.empty() ? "-" : buffer) + "|" +
         fmt(ecn_threshold_pkts) + "|" + std::to_string(prefill_bytes) + "|" +
         fmt(jitter_budget_ms) + "|" + fmt(duration_s) + "|" +
         (trace_link ? "1" : "0");
}

std::optional<FuzzCase> FuzzCase::from_line(const std::string& line,
                                            std::string* error) {
  const auto set_error = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
  };
  const std::vector<std::string> f = sweep::split(line, '|');
  if (f.size() != 10) {
    set_error("expected 10 '|'-separated fields, got " +
              std::to_string(f.size()));
    return std::nullopt;
  }
  FuzzCase c;
  try {
    c.seed = std::stoull(f[0]);
    c.flow_set = f[1];
    c.link_mbps = std::stod(f[2]);
    c.rtt_ms = std::stod(f[3]);
    c.buffer = f[4];
    c.ecn_threshold_pkts = std::stod(f[5]);
    c.prefill_bytes = std::stoull(f[6]);
    c.jitter_budget_ms = std::stod(f[7]);
    c.duration_s = std::stod(f[8]);
    c.trace_link = f[9] == "1";
  } catch (const std::exception& e) {
    set_error(std::string("bad numeric field: ") + e.what());
    return std::nullopt;
  }
  if (c.link_mbps <= 0 || c.rtt_ms <= 0 || c.duration_s <= 0) {
    set_error("link_mbps, rtt_ms and duration_s must be positive");
    return std::nullopt;
  }
  try {
    const auto flows = sweep::parse_flow_set(c.flow_set);
    if (c.trace_link && flows.size() != 1) {
      set_error("trace-link cases take exactly one flow");
      return std::nullopt;
    }
    sweep::parse_buffer_bytes(c.buffer, Rate::mbps(c.link_mbps), c.rtt_ms);
  } catch (const sweep::SpecError& e) {
    set_error(e.what());
    return std::nullopt;
  }
  return c;
}

golden::GoldenSpec FuzzCase::to_spec() const {
  golden::GoldenSpec s;
  s.name = "fuzz_" + std::to_string(seed);
  s.flow_set = flow_set;
  s.link_mbps = link_mbps;
  s.rtt_ms = rtt_ms;
  s.buffer = buffer;
  s.ecn_threshold_pkts = ecn_threshold_pkts;
  s.prefill_bytes = prefill_bytes;
  s.jitter_budget_ms = jitter_budget_ms;
  s.trace_link = trace_link;
  s.seed = seed;
  s.duration_s = duration_s;
  return s;
}

std::string FuzzCase::repro_command() const {
  if (trace_link) {
    return "ccstarve_fuzz --replay '" + to_line() + "'";
  }
  std::string cmd = "ccstarve_run";
  for (const std::string& f : sweep::split(flow_set, '+')) {
    cmd += " --flow=" + f;
  }
  cmd += " --link=" + fmt(link_mbps) + " --rtt=" + fmt(rtt_ms);
  if (!buffer.empty() && buffer != "-") cmd += " --buffer=" + buffer;
  if (ecn_threshold_pkts > 0) cmd += " --ecn=" + fmt(ecn_threshold_pkts);
  if (prefill_bytes > 0) {
    cmd += " --prefill=" + std::to_string(prefill_bytes);
  }
  if (jitter_budget_ms > 0) {
    cmd += " --jitter-budget=" + fmt(jitter_budget_ms);
  }
  cmd += " --duration=" + fmt(duration_s) + " --seed=" +
         std::to_string(seed) + " --check";
  return cmd;
}

FuzzCase generate_case(uint64_t seed) {
  FuzzCase c;
  c.seed = seed;
  Rng rng(seed ^ 0x5bf03635aca38fd5ULL);
  const std::vector<std::string>& names = sweep::cca_names();
  const double links[] = {24, 48, 96, 120, 192};
  const double rtts[] = {20, 40, 60, 100};
  const double durs[] = {0.8, 1.2, 1.6, 2.4};
  c.link_mbps = links[rng.next_below(5)];
  c.rtt_ms = rtts[rng.next_below(4)];
  c.duration_s = durs[rng.next_below(4)];

  if (rng.next_below(16) == 0) {
    // Mahimahi-style single-flow trace-link case; the remaining axes do not
    // apply to that topology.
    c.trace_link = true;
    c.flow_set = names[rng.next_below(names.size())];
    return c;
  }

  if (rng.next_below(8) == 0) {
    // Many-flow cohort via the `*N` multiplier grammar: one or two CCA
    // cohorts of up to 512 flows sharing the bottleneck. The link scales
    // with the cohort (~1 Mbps per flow) and the horizon shrinks, so even
    // the largest case stays cheap under the full oracle battery.
    const uint64_t sizes[] = {32, 64, 128, 256, 512};
    const uint64_t n = sizes[rng.next_below(5)];
    std::string f =
        names[rng.next_below(names.size())] + "*" + std::to_string(n);
    if (rng.next_below(2) == 0) {
      f += "+" + names[rng.next_below(names.size())] + "*" +
           std::to_string(n);
    }
    c.flow_set = std::move(f);
    c.link_mbps = static_cast<double>(n);
    c.duration_s = 0.8;
    const char* bufs[] = {"-", "2bdp"};
    c.buffer = bufs[rng.next_below(2)];
    return c;
  }

  const size_t flow_count = 1 + rng.next_below(4);
  std::vector<std::string> flows;
  for (size_t i = 0; i < flow_count; ++i) {
    std::string f = names[rng.next_below(names.size())];
    if (rng.next_below(4) == 0) {
      f += ":start=" + fmt(0.1 * static_cast<double>(1 + rng.next_below(5)));
    }
    if (rng.next_below(4) == 0) {
      f += ":rtt=" + fmt(rtts[rng.next_below(4)]);
    }
    if (rng.next_below(6) == 0) {
      const double losses[] = {0.005, 0.01, 0.02};
      f += ":loss=" + fmt(losses[rng.next_below(3)]);
    }
    if (rng.next_below(3) == 0) f += ":datajitter=" + jitter_spec(rng);
    if (rng.next_below(4) == 0) f += ":ackjitter=" + jitter_spec(rng);
    if (rng.next_below(6) == 0) {
      // Receiver-side flow control: a finite advertised window, sometimes
      // with a slow application drain (the starvation-prone corner) and
      // occasionally with window updates suppressed so recovery leans
      // entirely on zero-window persist probes.
      const uint64_t rwnds[] = {16, 30, 64};
      f += ":rwnd=" + std::to_string(rwnds[rng.next_below(3)]);
      if (rng.next_below(2) == 0) {
        // 0.1 sits in the true zero-window regime (one RTT of drain frees
        // less than an MSS), so persist probes and window-update wakeups
        // get fuzzed, not just the smooth rwnd clamp.
        const double drains[] = {0.1, 2, 8};
        f += ":drain=" + fmt(drains[rng.next_below(3)]);
        if (rng.next_below(3) == 0) f += ":drainburst=20";
        if (rng.next_below(4) == 0) f += ":wndupd=0";
      }
    }
    flows.push_back(std::move(f));
  }
  c.flow_set = join_flows(flows);

  const char* buffers[] = {"-", "1bdp", "2bdp", "4bdp", "90"};
  c.buffer = buffers[rng.next_below(5)];
  if (rng.next_below(8) == 0) c.ecn_threshold_pkts = 30;
  if (rng.next_below(8) == 0) c.prefill_bytes = 30000;
  // Largest jitter any generated policy can add is the 60 ms quantization
  // period, so a 100 ms budget must never be violated on a clean run.
  if (rng.next_below(4) == 0) c.jitter_budget_ms = 100;
  return c;
}

namespace {

// The scenario-topology oracle set (everything except trace-link cases).
std::optional<FuzzFailure> run_scenario_case(const FuzzCase& c,
                                             const FuzzOptions& opts) {
  const golden::GoldenSpec spec = c.to_spec();
  const TimeNs end = TimeNs::seconds(c.duration_s);
  Rng rng(c.seed ^ 0x853c49e6748fea9bULL);
  // Random quiescent snapshot point in the middle of the run.
  const TimeNs mid = TimeNs::nanos(static_cast<int64_t>(
      static_cast<double>(end.ns()) * (0.35 + 0.3 * rng.next_double())));

  // Run A: invariants on, tracer split at the snapshot point so the
  // continuation digest is comparable with the fork's.
  auto sc1 = golden::build_golden(spec);
  InvariantChecker ck1;
  ck1.attach(*sc1);
  // Telemetry and the flight recorder ride only on run A; run B stays
  // probe-free, so the determinism oracle below doubles as a
  // digest-transparency check for both.
  obs::FlightConfig fc;
  fc.trigger = obs::FlightTrigger::kAlways;
  fc.events_per_flow = 4096;  // bound memory on many-flow cases
  obs::FlightRecorder flight(fc);
  obs::TelemetryConfig tc;
  if (opts.flight) tc.flight = &flight;
  obs::FlowTelemetry telemetry(tc);
  if (opts.telemetry) telemetry.attach(*sc1);
  if (opts.flight) flight.attach(*sc1);
  if (opts.sabotage_before_run) opts.sabotage_before_run(*sc1);
  TraceRecorder r1;
  sc1->sim().set_tracer(&r1);
  sc1->run_until(mid);
  ScenarioSnapshot snap;
  try {
    snap = sc1->snapshot();
  } catch (const SnapshotError& e) {
    return FuzzFailure{"snapshot", e.what()};
  }
  const std::string d_pre = r1.digest_hex();
  TraceRecorder r2;
  sc1->sim().set_tracer(&r2);
  sc1->run_until(end);
  if (opts.corrupt_after_run) opts.corrupt_after_run(*sc1);
  ck1.checkpoint();
  if (!ck1.ok()) return FuzzFailure{"invariant", ck1.report()};
  if (opts.telemetry) {
    telemetry.finish(end);
    if (auto f = check_telemetry(telemetry)) return f;
  }
  if (opts.flight) {
    // Well-formedness oracle: the export must parse back through the
    // line-oriented reader that ccstarve_report forensics uses.
    std::ostringstream flight_json;
    obs::write_chrome_trace(flight_json, flight);
    std::istringstream in(flight_json.str());
    std::string err;
    if (!obs::read_chrome_trace(in, &err)) {
      return FuzzFailure{"flight", "export did not round-trip: " + err};
    }
  }
  const std::string d_post = r2.digest_hex();
  const std::vector<FlowEnd> ends1 = collect_ends(*sc1);

  // Run B: a second cold run must be byte-identical (determinism; this is
  // also what makes sweep results independent of --jobs scheduling).
  {
    auto sc2 = golden::build_golden(spec);
    TraceRecorder r3;
    sc2->sim().set_tracer(&r3);
    sc2->run_until(mid);
    if (r3.digest_hex() != d_pre) {
      return FuzzFailure{"determinism",
                         "prefix digests differ across identical runs: " +
                             d_pre + " vs " + r3.digest_hex()};
    }
    TraceRecorder r4;
    sc2->sim().set_tracer(&r4);
    sc2->run_until(end);
    if (r4.digest_hex() != d_post) {
      return FuzzFailure{"determinism",
                         "continuation digests differ across identical "
                         "runs: " +
                             d_post + " vs " + r4.digest_hex()};
    }
  }

  // Fork: a snapshot restored at the quiescent point must replay the
  // continuation byte-for-byte, with invariants (checker synced from the
  // fork's live state) holding throughout.
  {
    auto fk = Scenario::fork(snap);
    InvariantChecker ckf;
    ckf.attach(*fk);
    TraceRecorder r5;
    fk->sim().set_tracer(&r5);
    fk->run_until(end);
    ckf.checkpoint();
    if (!ckf.ok()) return FuzzFailure{"invariant-fork", ckf.report()};
    if (r5.digest_hex() != d_post) {
      return FuzzFailure{
          "fork-identity",
          "fork at t=" + std::to_string(mid.ns()) +
              "ns diverged from the uninterrupted continuation: " + d_post +
              " vs " + r5.digest_hex()};
    }
  }

  // Fast-forward metamorphic oracle: the same case through the warp engine.
  // The tracer split mirrors run A's (prefix to `mid`, continuation to the
  // horizon) so that a warp-free hybrid run is comparable digest-by-digest;
  // WarpRunner::run_until never advances past its argument, so neither
  // segment can straddle a warp boundary unnoticed.
  if (opts.fast_forward) {
    auto scw = golden::build_golden(spec);
    obs::FlowTelemetry tw;
    tw.attach(*scw);
    InvariantChecker ckw;
    ckw.attach(*scw);
    TraceRecorder rw1;
    scw->sim().set_tracer(&rw1);
    warp::WarpRunner runner(std::move(scw), warp::WarpConfig{});
    runner.on_fork = [&](Scenario& fsc, TimeNs from, TimeNs to,
                         const std::vector<uint64_t>& credits) {
      tw.note_warp(fsc, from, to, credits);
      ckw.attach(fsc);
    };
    runner.run_until(mid);
    const std::string w_pre = rw1.digest_hex();
    TraceRecorder rw2;
    runner.scenario().sim().set_tracer(&rw2);
    runner.run_until(end);
    tw.finish(end);
    ckw.checkpoint();
    if (!ckw.ok()) return FuzzFailure{"invariant-warp", ckw.report()};
    if (runner.stats().warps == 0) {
      if (w_pre != d_pre || rw2.digest_hex() != d_post) {
        return FuzzFailure{
            "fast-forward",
            "no warp fired but hybrid digests differ from pure: prefix " +
                d_pre + " vs " + w_pre + ", continuation " + d_post +
                " vs " + rw2.digest_hex()};
      }
    } else if (opts.telemetry) {
      const bool pure_crossed =
          telemetry.starvation().first_crossing() != TimeNs(-1);
      const bool warp_crossed =
          tw.starvation().first_crossing() != TimeNs(-1);
      if (pure_crossed != warp_crossed) {
        return FuzzFailure{
            "fast-forward-verdict",
            "starvation verdicts disagree after " +
                std::to_string(runner.stats().warps) + " warp(s): pure " +
                (pure_crossed ? "crossed" : "never crossed") +
                ", fast-forward " +
                (warp_crossed ? "crossed" : "never crossed")};
      }
    }
  }

  if (!opts.metamorphic) return std::nullopt;

  std::vector<sweep::FlowArgs> flows = sweep::parse_flow_set(c.flow_set);
  std::vector<std::string> flow_strs = sweep::split(c.flow_set, '+');

  // Relabel symmetry: swapping two position-independent flows permutes the
  // per-flow outcomes. Skipped when either run saw two flows reach the
  // bottleneck in the same nanosecond (the (time, seq) tie-break is then
  // order-dependent by design). Also skipped when the spec uses a cohort
  // multiplier (flow_strs then has fewer entries than expanded flows);
  // the property_test covers relabeling for expanded cohorts instead.
  if (flows.size() >= 2 && flow_strs.size() == flows.size()) {
    const size_t i = rng.next_below(flows.size());
    size_t j = rng.next_below(flows.size() - 1);
    if (j >= i) ++j;
    if (position_independent(flows[i]) && position_independent(flows[j])) {
      FuzzCase swapped = c;
      std::vector<std::string> sf = flow_strs;
      std::swap(sf[i], sf[j]);
      swapped.flow_set = join_flows(sf);
      auto scs = golden::build_golden(swapped.to_spec());
      InvariantChecker cks;
      cks.attach(*scs);
      scs->run_until(end);
      if (!ck1.saw_cross_flow_link_tie() && !cks.saw_cross_flow_link_tie()) {
        const std::vector<FlowEnd> endss = collect_ends(*scs);
        for (size_t k = 0; k < ends1.size(); ++k) {
          const size_t mapped = k == i ? j : (k == j ? i : k);
          if (!(ends1[k] == endss[mapped])) {
            return FuzzFailure{
                "relabel-symmetry",
                "swapping flows " + std::to_string(i) + " and " +
                    std::to_string(j) + ": flow " + std::to_string(k) +
                    " [" + end_str(ends1[k]) + "] became flow " +
                    std::to_string(mapped) + " [" + end_str(endss[mapped]) +
                    "]"};
          }
        }
      }
    }
  }

  // Constant-jitter exactness and monotonicity: a const:<c> data box adds
  // exactly c to every packet, and doubling c doubles the observation.
  for (size_t k = 0; k < flows.size(); ++k) {
    if (!starts_with(flows[k].data_jitter, "const:")) continue;
    const double c_ms = std::stod(flows[k].data_jitter.substr(6));
    const TimeNs c_ns = TimeNs::millis(c_ms);
    if (sc1->data_jitter_stats(k).packets == 0) break;
    const TimeNs seen = ck1.observed_max_added(static_cast<uint32_t>(k),
                                               /*ack_path=*/false);
    if (seen != c_ns) {
      return FuzzFailure{"const-jitter",
                         "flow " + std::to_string(k) + " datajitter=const:" +
                             fmt(c_ms) + " added " +
                             std::to_string(seen.ns()) + "ns, expected " +
                             std::to_string(c_ns.ns()) + "ns"};
    }
    if (c.jitter_budget_ms > 0 && 2 * c_ms > c.jitter_budget_ms) break;
    FuzzCase doubled = c;
    std::vector<sweep::FlowArgs> df = flows;
    df[k].data_jitter = "const:" + fmt(2 * c_ms);
    std::vector<std::string> dstrs;
    for (const sweep::FlowArgs& fa : df) dstrs.push_back(flow_to_string(fa));
    doubled.flow_set = join_flows(dstrs);
    auto scd = golden::build_golden(doubled.to_spec());
    InvariantChecker ckd;
    ckd.attach(*scd);
    scd->run_until(end);
    if (!ckd.ok()) return FuzzFailure{"invariant", ckd.report()};
    const TimeNs seen2 = ckd.observed_max_added(static_cast<uint32_t>(k),
                                                /*ack_path=*/false);
    if (scd->data_jitter_stats(k).packets > 0 &&
        (seen2 != c_ns + c_ns || seen2 <= seen)) {
      return FuzzFailure{
          "jitter-monotone",
          "flow " + std::to_string(k) + ": doubling const jitter " +
              fmt(c_ms) + "ms changed the observed added delay from " +
              std::to_string(seen.ns()) + "ns to " +
              std::to_string(seen2.ns()) + "ns, expected exactly " +
              std::to_string((c_ns + c_ns).ns()) + "ns"};
    }
    break;  // one const-jitter flow is enough per case
  }

  return std::nullopt;
}

std::optional<FuzzFailure> run_trace_case(const FuzzCase& c) {
  const golden::GoldenSpec spec = c.to_spec();
  InvariantChecker ck1;
  const golden::GoldenResult a = golden::run_trace_link_golden(spec, &ck1);
  if (!ck1.ok()) return FuzzFailure{"invariant", ck1.report()};
  InvariantChecker ck2;
  const golden::GoldenResult b = golden::run_trace_link_golden(spec, &ck2);
  if (a.digest_hex != b.digest_hex) {
    return FuzzFailure{"determinism",
                       "trace-link digests differ across identical runs: " +
                           a.digest_hex + " vs " + b.digest_hex};
  }
  return std::nullopt;
}

}  // namespace

std::optional<FuzzFailure> run_case(const FuzzCase& c,
                                    const FuzzOptions& opts) {
  try {
    if (c.trace_link) return run_trace_case(c);
    return run_scenario_case(c, opts);
  } catch (const sweep::SpecError& e) {
    return FuzzFailure{"spec", e.what()};
  } catch (const std::exception& e) {
    return FuzzFailure{"exception", e.what()};
  }
}

FuzzCase shrink_case(const FuzzCase& c, const FuzzOptions& opts,
                     FuzzFailure* out_failure, int max_runs) {
  FuzzCase cur = c;
  FuzzFailure fail;
  int runs = 0;
  const auto still_fails = [&](const FuzzCase& cand) {
    if (runs >= max_runs) return false;
    ++runs;
    const auto r = run_case(cand, opts);
    if (r.has_value()) {
      fail = *r;
      return true;
    }
    return false;
  };
  if (!still_fails(cur)) {
    // Not reproducible (or budget exhausted immediately): return as-is.
    if (out_failure != nullptr) *out_failure = fail;
    return cur;
  }

  bool changed = true;
  while (changed && runs < max_runs) {
    changed = false;

    // Drop whole flows.
    std::vector<std::string> flows = sweep::split(cur.flow_set, '+');
    for (size_t i = 0; i < flows.size() && flows.size() > 1;) {
      std::vector<std::string> fewer = flows;
      fewer.erase(fewer.begin() + static_cast<long>(i));
      FuzzCase cand = cur;
      cand.flow_set = join_flows(fewer);
      if (still_fails(cand)) {
        cur = cand;
        flows = std::move(fewer);
        changed = true;
      } else {
        ++i;
      }
    }

    // Bisect cohort multipliers: a failure inside a `spec*N` cohort usually
    // reproduces with far fewer flows, and halving converges in log2(N)
    // oracle runs instead of N drop-one attempts.
    for (size_t i = 0; i < flows.size(); ++i) {
      while (runs < max_runs) {
        const size_t star = flows[i].rfind('*');
        if (star == std::string::npos) break;
        uint64_t n = 0;
        try {
          n = std::stoull(flows[i].substr(star + 1));
        } catch (const std::exception&) {
          break;
        }
        if (n <= 1) break;
        const uint64_t half = n / 2;
        std::vector<std::string> ef = flows;
        ef[i] = half <= 1 ? flows[i].substr(0, star)
                          : flows[i].substr(0, star + 1) +
                                std::to_string(half);
        FuzzCase cand = cur;
        cand.flow_set = join_flows(ef);
        if (!still_fails(cand)) break;
        cur = std::move(cand);
        flows = std::move(ef);
        changed = true;
      }
    }

    // Strip per-flow options (skipping multiplier parts — their spec text
    // is not a bare flow spec until the bisect rule above has reduced the
    // cohort to a single flow).
    for (size_t i = 0; i < flows.size(); ++i) {
      if (flows[i].find('*') != std::string::npos) continue;
      sweep::FlowArgs fa = sweep::parse_flow(flows[i]);
      const auto try_edit = [&](sweep::FlowArgs edited) {
        std::vector<std::string> ef = flows;
        ef[i] = flow_to_string(edited);
        if (ef[i] == flows[i]) return;
        FuzzCase cand = cur;
        cand.flow_set = join_flows(ef);
        if (still_fails(cand)) {
          cur = cand;
          flows = std::move(ef);
          fa = std::move(edited);
          changed = true;
        }
      };
      sweep::FlowArgs e = fa;
      e.loss = 0.0;
      try_edit(e);
      e = fa;
      // Relax the receive window to infinite (drops drain/burst/wndupd with
      // it — flow_to_string nests those under rwnd). A genuine flow-control
      // bug keeps the rwnd option in the shrunk repro.
      e.rwnd_pkts = 0;
      try_edit(e);
      e = fa;
      e.drain_mbps = 0.0;
      try_edit(e);
      e = fa;
      e.window_updates = true;
      try_edit(e);
      e = fa;
      e.data_jitter.clear();
      try_edit(e);
      e = fa;
      e.ack_jitter.clear();
      try_edit(e);
      e = fa;
      e.rtt_ms.reset();
      try_edit(e);
      e = fa;
      e.start_s = 0.0;
      try_edit(e);
    }

    // Remove whole axes.
    const auto try_case = [&](FuzzCase cand) {
      if (still_fails(cand)) {
        cur = std::move(cand);
        changed = true;
      }
    };
    if (cur.ecn_threshold_pkts > 0) {
      FuzzCase cand = cur;
      cand.ecn_threshold_pkts = 0;
      try_case(std::move(cand));
    }
    if (cur.prefill_bytes > 0) {
      FuzzCase cand = cur;
      cand.prefill_bytes = 0;
      try_case(std::move(cand));
    }
    if (cur.jitter_budget_ms > 0) {
      FuzzCase cand = cur;
      cand.jitter_budget_ms = 0;
      try_case(std::move(cand));
    }
    if (!cur.buffer.empty() && cur.buffer != "-") {
      FuzzCase cand = cur;
      cand.buffer = "-";
      try_case(std::move(cand));
    }
    if (cur.trace_link) {
      FuzzCase cand = cur;
      cand.trace_link = false;
      try_case(std::move(cand));
    }

    // Halve the horizon.
    while (cur.duration_s > 0.25 && runs < max_runs) {
      FuzzCase cand = cur;
      cand.duration_s = cur.duration_s / 2;
      if (!still_fails(cand)) break;
      cur = std::move(cand);
      changed = true;
    }
  }

  if (out_failure != nullptr) *out_failure = fail;
  return cur;
}

}  // namespace ccstarve::check
