// Seed-driven deterministic scenario fuzzer.
//
// A FuzzCase is a point in the spec grammar the sweep engine already
// understands (CCA mix x jitter policies x loss x AQM x buffer x link /
// trace-link x durations). generate_case(seed) maps a seed to a case, the
// same seed always producing the same case; run_case() executes it under
// the runtime invariant observers (check/invariants.hpp) plus metamorphic
// oracles the emulator's design promises:
//
//   * determinism      — two cold runs produce byte-identical trace digests;
//   * fork-identity    — a snapshot at a quiescent mid-point, forked and run
//                        to the horizon, reproduces the continuation digest
//                        of the uninterrupted run (DESIGN.md par.8);
//   * relabel-symmetry — swapping two randomness-free flows in the '+' list
//                        permutes the per-flow outcomes (skipped when two
//                        flows ever hit the bottleneck in the same ns, where
//                        the (time, seq) tie-break is order-dependent);
//   * const-jitter     — a datajitter=const:<c> box adds exactly c to every
//                        packet, and doubling c doubles the observed added
//                        delay (monotonicity of eta in the configured bound).
//
// On failure, shrink_case() greedily minimises the spec — drop flows,
// bisect `*N` cohort multipliers, strip per-flow options (including
// relaxing a finite rwnd back to infinite), remove
// AQM/prefill/buffer axes, halve the horizon —
// re-running the oracles after each candidate edit, and the shrunk case
// prints a ready-to-paste repro command (ccstarve_run --check, or
// ccstarve_fuzz --replay for trace-link cases).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "check/scenarios.hpp"

namespace ccstarve::check {

struct FuzzCase {
  uint64_t seed = 1;
  std::string flow_set = "copa";
  double link_mbps = 96;
  double rtt_ms = 60;
  std::string buffer = "-";       // "-" | <pkts> | <x>bdp
  double ecn_threshold_pkts = 0;  // >0 installs ThresholdEcn
  uint64_t prefill_bytes = 0;
  double jitter_budget_ms = 0;  // 0 = unbounded D
  double duration_s = 2.0;
  bool trace_link = false;

  // Corpus line format, one case per line ('|' cannot occur in the spec
  // grammar): seed|flow_set|link_mbps|rtt_ms|buffer|ecn|prefill|budget|
  // duration_s|trace_link
  std::string to_line() const;
  // Parses and validates (the flow set must parse); returns nullopt and
  // fills *error on a malformed line.
  static std::optional<FuzzCase> from_line(const std::string& line,
                                           std::string* error = nullptr);

  golden::GoldenSpec to_spec() const;
  // Command line reproducing this case: ccstarve_run --check for scenario
  // cases, ccstarve_fuzz --replay for trace-link ones.
  std::string repro_command() const;
};

// Deterministic seed -> case mapping over the grammar axes.
FuzzCase generate_case(uint64_t seed);

struct FuzzFailure {
  std::string oracle;  // "invariant", "determinism", "fork-identity", ...
  std::string detail;
};

struct FuzzOptions {
  // Also run the relabel-symmetry and const-jitter variant oracles (extra
  // scenario runs per case).
  bool metamorphic = true;
  // Attach a FlowTelemetry probe (src/obs) to the primary run and check its
  // telemetry oracle: every streaming aggregate stays finite and
  // self-consistent, and every recorded series/timeline is strictly
  // monotone in time. Because the comparison run stays probe-free, the
  // determinism oracle then also pins that an attached probe never perturbs
  // trace digests.
  bool telemetry = true;
  // Attach a FlightRecorder (src/obs/flight.hpp, trigger=always) to the
  // primary run and round-trip its Chrome-trace export through the parser.
  // As with `telemetry`, the comparison run stays probe-free, so the
  // determinism oracle also pins flight-recorder digest transparency.
  // Scenario cases only. `--no-flight` on ccstarve_fuzz clears this, which
  // shrink replays preserve.
  bool flight = true;
  // Re-run the case through the fast-forward engine (sim/warp) and check
  // its metamorphic contract: when no warp fires the hybrid run's trace
  // digests are byte-identical to the pure packet run's (the chunked
  // driver and its snapshot attempts must be inert), and when warps do
  // fire the starvation verdict (did the worst-pair ratio ever cross the
  // threshold?) must match the pure run's. Needs `telemetry` for the
  // verdict half; scenario cases only.
  bool fast_forward = true;
  // Test-only fault injection: called on the primary scenario after its run
  // completes, immediately before the conservation checkpoint. Lets tests
  // prove that deliberately corrupted state (e.g. a swapped FlowTable
  // column) is caught by the invariant oracle and minimised by the
  // shrinker. Null in production.
  std::function<void(Scenario&)> corrupt_after_run;
  // Test-only behavioural sabotage: called on the primary scenario after
  // probes attach but before it runs. Lets tests break a live mechanism
  // (e.g. Sender::set_test_ignore_rwnd, which makes the sender overrun the
  // advertised window) and prove the runtime invariant observers catch it
  // and the shrinker keeps the triggering spec option. Null in production.
  std::function<void(Scenario&)> sabotage_before_run;
};

// Runs the case under invariant observers and oracles; nullopt means pass.
std::optional<FuzzFailure> run_case(const FuzzCase& c,
                                    const FuzzOptions& opts = {});

// Greedy minimisation of a failing case: applies spec-shrinking edits while
// run_case still fails, up to `max_runs` oracle executions. Returns the
// minimal failing case; *out_failure (optional) receives its failure.
FuzzCase shrink_case(const FuzzCase& c, const FuzzOptions& opts,
                     FuzzFailure* out_failure = nullptr, int max_runs = 200);

}  // namespace ccstarve::check
