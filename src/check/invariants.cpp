#include "check/invariants.hpp"

#include <algorithm>
#include <utility>

namespace ccstarve::check {

namespace {
std::string ns_str(TimeNs t) { return std::to_string(t.ns()) + "ns"; }
}  // namespace

InvariantChecker::PacketId InvariantChecker::PacketId::of(const Packet& p) {
  PacketId id;
  id.flow = p.flow;
  id.seq = p.seq;
  id.bytes = p.bytes;
  id.is_dummy = p.is_dummy;
  id.is_ack = p.is_ack;
  id.ack_cum = p.ack_cum;
  return id;
}

std::string InvariantChecker::PacketId::str() const {
  std::string s = "flow=" + std::to_string(flow) +
                  " seq=" + std::to_string(seq) +
                  " bytes=" + std::to_string(bytes);
  if (is_ack) s += " ack_cum=" + std::to_string(ack_cum);
  if (is_dummy) s += " dummy";
  if (is_ack) s += " ack";
  return s;
}

void InvariantChecker::attach(Scenario& sc) {
  scenario_ = &sc;
  // Exact conservation needs every packet movement observed: true when
  // nothing has moved yet. A forked scenario starts with zero events
  // processed but now() > 0 and restored in-flight traffic the probe never
  // saw, so both conditions are required. (Prefill dummies are injected at
  // construction without dispatching events; the queue sync below absorbs
  // them and the conservation checkpoint tracks only real flows.)
  full_accounting_ =
      sc.sim().events_processed() == 0 && sc.sim().now() == TimeNs::zero();
  if (sc.has_bottleneck()) {
    timing_enabled_ = true;
    link_rate_ = sc.link().rate();
    buffer_bytes_ = sc.link().buffer_bytes();
    link_queue_.clear();
    for (const Packet& p : sc.link().queue()) {
      link_queue_.push_back({PacketId::of(p)});
    }
    link_queued_bytes_ = sc.link().queued_bytes();
    link_busy_ = sc.link().busy();
    head_expected_valid_ = false;
    if (link_busy_) {
      head_expected_ = sc.link().service_at();
      head_expected_valid_ = true;
    }
    preattach_link_drops_ = sc.link().drops();
  }
  for (size_t i = 0; i < sc.flow_count(); ++i) {
    const uint32_t id = static_cast<uint32_t>(i);
    FlowCounters& fc = flow(id);
    fc.min_rtt = sc.min_rtt(i);
    fc.has_sanity = true;
    fc.sanity = sc.sender(i).cca().sanity();
    fc.last_receiver_cum = sc.receiver(i).cum_received();
    // Seed the shadow window limit from the receiver's current accept
    // limit: an upper bound on every advertisement the sender has seen (the
    // limit is monotone and each emitted ACK advertised the then-current
    // value), so the clamp check never false-positives on a mid-run attach.
    fc.wnd_limit = sc.receiver(i).accept_limit();
    const auto seed = [](BoxModel& bm, const JitterBox& jb) {
      bm.held.clear();
      for (const InFlightPacket& p : jb.in_flight()) {
        bm.held.push_back({PacketId::of(p.pkt), p.at});
      }
      bm.last_release = jb.last_release();
      bm.synced = true;
    };
    seed(box(id, /*ack_path=*/false), sc.data_box(i));
    seed(box(id, /*ack_path=*/true), sc.ack_box(i));
  }
  last_event_at_ = sc.sim().now();
  sc.sim().set_checker(this);
}

void InvariantChecker::attach(Simulator& sim) {
  scenario_ = nullptr;
  full_accounting_ = false;
  timing_enabled_ = false;
  last_event_at_ = sim.now();
  sim.set_checker(this);
}

void InvariantChecker::fail(const char* check, TimeNs at, std::string detail) {
  ++total_violations_;
  if (violations_.size() < kMaxStored) {
    violations_.push_back({check, at, std::move(detail)});
  }
}

void InvariantChecker::note_time(TimeNs now) {
  if (now < last_event_at_) {
    fail("time-monotone", now,
         "observed t=" + ns_str(now) + " after t=" + ns_str(last_event_at_));
  }
  last_event_at_ = ccstarve::max(last_event_at_, now);
}

InvariantChecker::FlowCounters& InvariantChecker::flow(uint32_t id) {
  if (id >= flows_.size()) flows_.resize(id + 1);
  return flows_[id];
}

InvariantChecker::BoxModel& InvariantChecker::box(uint32_t flow_id,
                                                  bool ack_path) {
  auto& v = ack_path ? ack_boxes_ : data_boxes_;
  if (flow_id >= v.size()) v.resize(flow_id + 1);
  return v[flow_id];
}

TimeNs InvariantChecker::observed_max_added(uint32_t flow_id,
                                            bool ack_path) const {
  const auto& v = ack_path ? ack_boxes_ : data_boxes_;
  if (flow_id >= v.size()) return TimeNs::zero();
  return v[flow_id].max_added;
}

void InvariantChecker::on_link_enqueue(TimeNs now, const Packet& pkt,
                                       uint64_t queued_after) {
  note_time(now);
  if (queued_after != link_queued_bytes_ + pkt.bytes) {
    fail("link-bytes", now,
         "queued_bytes " + std::to_string(queued_after) + " after enqueue of " +
             std::to_string(pkt.bytes) + "B, model had " +
             std::to_string(link_queued_bytes_) + "B");
  }
  link_queued_bytes_ = queued_after;  // resync: report once, not per packet
  if (queued_after > buffer_bytes_) {
    fail("link-buffer", now,
         "occupancy " + std::to_string(queued_after) + "B exceeds buffer " +
             std::to_string(buffer_bytes_) + "B");
  }
  if (!pkt.is_dummy) {
    if (now == last_link_arrival_ && !last_link_arrival_dummy_ &&
        pkt.flow != last_link_arrival_flow_) {
      cross_flow_link_tie_ = true;
    }
    last_link_arrival_ = now;
    last_link_arrival_flow_ = pkt.flow;
    last_link_arrival_dummy_ = false;
    ++flow(pkt.flow).link_enqueued;
  }
  link_queue_.push_back({PacketId::of(pkt)});
  if (!link_busy_) {
    link_busy_ = true;
    if (timing_enabled_) {
      head_expected_ = now + link_rate_.transmission_time(pkt.bytes);
      head_expected_valid_ = true;
    }
  }
}

void InvariantChecker::on_link_drop(TimeNs now, const Packet& pkt) {
  note_time(now);
  if (!pkt.is_dummy) ++flow(pkt.flow).link_dropped;
  ++link_drops_;
}

void InvariantChecker::on_link_deliver(TimeNs now, const Packet& pkt) {
  note_time(now);
  const PacketId id = PacketId::of(pkt);
  if (link_queue_.empty()) {
    fail("link-fifo", now, "delivery of [" + id.str() + "] with empty queue");
  } else {
    const ModelPacket front = link_queue_.front();
    link_queue_.pop_front();
    if (!(front.id == id)) {
      fail("link-fifo", now,
           "delivered [" + id.str() + "] but head of FIFO was [" +
               front.id.str() + "]");
    }
    link_queued_bytes_ -=
        std::min<uint64_t>(front.id.bytes, link_queued_bytes_);
    if (timing_enabled_ && head_expected_valid_ && now != head_expected_) {
      fail("link-service", now,
           "head [" + id.str() + "] completed at " + ns_str(now) +
               ", expected " + ns_str(head_expected_) +
               " (work conservation / service timing)");
    }
  }
  if (!link_queue_.empty()) {
    if (timing_enabled_) {
      head_expected_ =
          now + link_rate_.transmission_time(link_queue_.front().id.bytes);
      head_expected_valid_ = true;
    }
  } else {
    link_busy_ = false;
    head_expected_valid_ = false;
  }
  if (!pkt.is_dummy) ++flow(pkt.flow).link_delivered;
}

void InvariantChecker::on_link_rate_change(TimeNs now, Rate rate) {
  note_time(now);
  link_rate_ = rate;
  // Mirrors BottleneckLink::set_rate: the head packet restarts service at
  // the new rate from "now".
  if (timing_enabled_ && link_busy_ && !link_queue_.empty()) {
    head_expected_ = now + link_rate_.transmission_time(
                               link_queue_.front().id.bytes);
    head_expected_valid_ = true;
  }
}

void InvariantChecker::on_jitter_admit(TimeNs arrival, TimeNs release,
                                       const Packet& pkt, bool ack_path,
                                       TimeNs budget) {
  note_time(arrival);
  BoxModel& bm = box(pkt.flow, ack_path);
  const char* which = ack_path ? "ack" : "data";
  if (release < arrival) {
    fail("jitter-eta-negative", arrival,
         std::string(which) + " box flow " + std::to_string(pkt.flow) +
             ": release " + ns_str(release) + " before arrival " +
             ns_str(arrival));
  }
  if (release < bm.last_release) {
    fail("jitter-fifo", arrival,
         std::string(which) + " box flow " + std::to_string(pkt.flow) +
             ": [" + PacketId::of(pkt).str() + "] admitted for release " +
             ns_str(release) + " before the previous packet's " +
             ns_str(bm.last_release));
  }
  const TimeNs added = release - arrival;
  if (!budget.is_infinite() && added > budget) {
    fail("jitter-budget", arrival,
         std::string(which) + " box flow " + std::to_string(pkt.flow) +
             ": added delay " + ns_str(added) + " exceeds budget D=" +
             ns_str(budget));
  }
  bm.last_release = ccstarve::max(bm.last_release, release);
  bm.max_added = ccstarve::max(bm.max_added, added);
  bm.held.push_back({PacketId::of(pkt), ccstarve::max(release, arrival)});
  FlowCounters& fc = flow(pkt.flow);
  ++(ack_path ? fc.ack_admitted : fc.data_admitted);
}

void InvariantChecker::on_jitter_release(TimeNs now, const Packet& pkt,
                                         bool ack_path) {
  note_time(now);
  BoxModel& bm = box(pkt.flow, ack_path);
  const char* which = ack_path ? "ack" : "data";
  const PacketId id = PacketId::of(pkt);
  if (bm.held.empty()) {
    fail("jitter-fifo", now,
         std::string(which) + " box flow " + std::to_string(pkt.flow) +
             ": release of [" + id.str() + "] that was never admitted");
  } else {
    const BoxModel::Held front = bm.held.front();
    bm.held.pop_front();
    if (!(front.id == id)) {
      fail("jitter-fifo", now,
           std::string(which) + " box flow " + std::to_string(pkt.flow) +
               ": released [" + id.str() + "] but head of FIFO was [" +
               front.id.str() + "]");
    } else if (now != front.release) {
      fail("jitter-release-time", now,
           std::string(which) + " box flow " + std::to_string(pkt.flow) +
               ": [" + id.str() + "] released at " + ns_str(now) +
               ", admission promised " + ns_str(front.release));
    }
  }
  FlowCounters& fc = flow(pkt.flow);
  ++(ack_path ? fc.ack_released : fc.data_released);
}

void InvariantChecker::on_segment_sent(TimeNs now, const Packet& pkt) {
  note_time(now);
  FlowCounters& fc = flow(pkt.flow);
  if (pkt.is_probe) {
    // Zero-window probes carry a below-window seq by design and are
    // invisible to the scoreboard; count them separately.
    ++fc.probes_sent;
    return;
  }
  ++fc.sent;
  if (pkt.seq + pkt.bytes > fc.wnd_limit) {
    fail("rwnd-clamp", now,
         "flow " + std::to_string(pkt.flow) + ": sent seq " +
             std::to_string(pkt.seq) + "+" + std::to_string(pkt.bytes) +
             "B beyond the advertised window limit " +
             std::to_string(fc.wnd_limit));
  }
}

void InvariantChecker::on_receiver_data(TimeNs now, const Packet& pkt,
                                        uint64_t cum_after) {
  note_time(now);
  FlowCounters& fc = flow(pkt.flow);
  if (pkt.is_probe) {
    ++fc.probes_received;
  } else {
    ++fc.received;
  }
  if (cum_after < fc.last_receiver_cum) {
    fail("receiver-cum-monotone", now,
         "flow " + std::to_string(pkt.flow) + ": cumulative " +
             std::to_string(cum_after) + " fell below " +
             std::to_string(fc.last_receiver_cum));
  }
  fc.last_receiver_cum = cum_after;
}

void InvariantChecker::on_ack_emitted(TimeNs now, const Packet& ack) {
  note_time(now);
  FlowCounters& fc = flow(ack.flow);
  ++fc.acks_emitted;
  if (ack.ack_cum < fc.last_ack_cum) {
    fail("ack-cum-monotone", now,
         "flow " + std::to_string(ack.flow) + ": ack_cum " +
             std::to_string(ack.ack_cum) + " fell below " +
             std::to_string(fc.last_ack_cum));
  }
  fc.last_ack_cum = ack.ack_cum;
  if (ack.ack_wnd != kInfiniteWnd) {
    fc.wnd_limit = std::max(
        fc.wnd_limit, std::min(kInfiniteWnd, ack.ack_cum + ack.ack_wnd));
  }
}

void InvariantChecker::on_wnd_ack(TimeNs now, uint32_t flow_id,
                                  const Packet& /*ack*/) {
  note_time(now);
  ++flow(flow_id).wnd_acks;
}

void InvariantChecker::on_ack_sample(TimeNs now, uint32_t flow_id, TimeNs rtt,
                                     uint64_t cwnd_bytes, Rate pacing) {
  note_time(now);
  FlowCounters& fc = flow(flow_id);
  ++fc.ack_samples;
  if (rtt <= TimeNs::zero()) {
    fail("rtt-positive", now,
         "flow " + std::to_string(flow_id) + ": rtt " + ns_str(rtt));
  } else if (fc.min_rtt > TimeNs::zero() && rtt < fc.min_rtt) {
    fail("rtt-floor", now,
         "flow " + std::to_string(flow_id) + ": rtt " + ns_str(rtt) +
             " below the propagation floor " + ns_str(fc.min_rtt));
  }
  if (fc.has_sanity) {
    if (cwnd_bytes < fc.sanity.min_cwnd_bytes ||
        cwnd_bytes > fc.sanity.max_cwnd_bytes) {
      fail("cca-cwnd", now,
           "flow " + std::to_string(flow_id) + ": cwnd " +
               std::to_string(cwnd_bytes) + "B outside [" +
               std::to_string(fc.sanity.min_cwnd_bytes) + ", " +
               std::to_string(fc.sanity.max_cwnd_bytes) + "]");
    }
    if (pacing.is_infinite()) {
      if (!fc.sanity.pacing_may_be_infinite) {
        fail("cca-pacing", now,
             "flow " + std::to_string(flow_id) + ": infinite pacing rate");
      }
    } else if (pacing.bytes_per_second() <= 0.0) {
      fail("cca-pacing", now,
           "flow " + std::to_string(flow_id) + ": non-positive pacing rate");
    }
  }
}

void InvariantChecker::checkpoint() {
  if (scenario_ == nullptr) return;
  Scenario& sc = *scenario_;
  const TimeNs now = sc.sim().now();
  const bool link = sc.has_bottleneck();

  if (link) {
    if (link_queued_bytes_ != sc.link().queued_bytes()) {
      fail("conservation", now,
           "modeled link occupancy " + std::to_string(link_queued_bytes_) +
               "B != actual " + std::to_string(sc.link().queued_bytes()) +
               "B");
    }
    if (link_queue_.size() != sc.link().queue().size()) {
      fail("conservation", now,
           "modeled link queue holds " + std::to_string(link_queue_.size()) +
               " packets, actual " + std::to_string(sc.link().queue().size()));
    }
    if (full_accounting_ &&
        preattach_link_drops_ + link_drops_ != sc.link().drops()) {
      fail("conservation", now,
           "observed " + std::to_string(link_drops_) +
               " link drops, component counted " +
               std::to_string(sc.link().drops() - preattach_link_drops_));
    }
  }

  for (size_t i = 0; i < sc.flow_count(); ++i) {
    const uint32_t id = static_cast<uint32_t>(i);
    FlowCounters& fc = flow(id);
    const std::string fl = "flow " + std::to_string(i) + ": ";

    // Flow-table cross-checks (independent of attach timing): the SoA
    // columns must agree with the scoreboard's own accounting. A mis-wired
    // or swapped column shows up here immediately.
    const Sender& snd = sc.sender(i);
    if (snd.inflight_bytes() != snd.scoreboard_bytes()) {
      fail("flow-table", now,
           fl + "inflight column " + std::to_string(snd.inflight_bytes()) +
               "B != scoreboard accounting " +
               std::to_string(snd.scoreboard_bytes()) + "B");
    }
    const FlowTable& ft = sc.flow_table();
    if (ft.delivered[i] < ft.cum_acked[i]) {
      fail("flow-table", now,
           fl + "delivered column " + std::to_string(ft.delivered[i]) +
               "B below cum-acked column " + std::to_string(ft.cum_acked[i]) +
               "B");
    }
    // Receiver-window clamp at rest: everything ever sent fits under the
    // shadow advertised-window limit (trivially true at kInfiniteWnd).
    if (ft.next_seq[i] > fc.wnd_limit) {
      fail("rwnd-clamp", now,
           fl + "next_seq column " + std::to_string(ft.next_seq[i]) +
               " beyond the advertised window limit " +
               std::to_string(fc.wnd_limit));
    }
    // Persist-timer slot coverage: while a flow is rwnd-blocked with a live
    // persist timer, its owned slot must be queued at or before the true
    // deadline (otherwise a zero-window stall would never resolve).
    if (!snd.persist_covered()) {
      fail("persist-cover", now,
           fl + "persist timer live at " + ns_str(snd.persist_deadline()) +
               " but the owned slot does not cover the deadline");
    }

    if (!full_accounting_) continue;

    if (fc.sent != sc.sender(i).packets_sent()) {
      fail("conservation", now,
           fl + "probe saw " + std::to_string(fc.sent) +
               " segments sent, sender counted " +
               std::to_string(sc.sender(i).packets_sent()));
    }
    if (fc.received != sc.receiver(i).packets_received()) {
      fail("conservation", now,
           fl + "probe saw " + std::to_string(fc.received) +
               " segments received, receiver counted " +
               std::to_string(sc.receiver(i).packets_received()));
    }
    if (fc.probes_sent != sc.sender(i).probes_sent()) {
      fail("conservation", now,
           fl + "probe saw " + std::to_string(fc.probes_sent) +
               " persist probes sent, sender counted " +
               std::to_string(sc.sender(i).probes_sent()));
    }
    if (fc.probes_received != sc.receiver(i).probes_received()) {
      fail("conservation", now,
           fl + "probe saw " + std::to_string(fc.probes_received) +
               " persist probes received, receiver counted " +
               std::to_string(sc.receiver(i).probes_received()));
    }
    if (link) {
      const uint64_t gate = sc.loss_gate_dropped(i);
      if (fc.sent + fc.probes_sent !=
          gate + fc.link_enqueued + fc.link_dropped) {
        fail("conservation", now,
             fl + std::to_string(fc.sent) + " sent + " +
                 std::to_string(fc.probes_sent) + " probes != " +
                 std::to_string(gate) + " gate-dropped + " +
                 std::to_string(fc.link_enqueued) + " enqueued + " +
                 std::to_string(fc.link_dropped) + " buffer-dropped");
      }
      uint64_t queued = 0;
      for (const ModelPacket& p : link_queue_) {
        if (!p.id.is_dummy && p.id.flow == id) ++queued;
      }
      if (fc.link_enqueued != fc.link_delivered + queued) {
        fail("conservation", now,
             fl + std::to_string(fc.link_enqueued) + " enqueued != " +
                 std::to_string(fc.link_delivered) + " delivered + " +
                 std::to_string(queued) + " queued");
      }
      if (fc.link_delivered < fc.data_admitted) {
        fail("conservation", now,
             fl + "data jitter box admitted " +
                 std::to_string(fc.data_admitted) +
                 " packets but the link only delivered " +
                 std::to_string(fc.link_delivered));
      }
    }
    const uint64_t data_held = box(id, false).held.size();
    if (fc.data_admitted != fc.data_released + data_held) {
      fail("conservation", now,
           fl + "data box: " + std::to_string(fc.data_admitted) +
               " admitted != " + std::to_string(fc.data_released) +
               " released + " + std::to_string(data_held) + " held");
    }
    if (fc.data_released != fc.received + fc.probes_received) {
      fail("conservation", now,
           fl + std::to_string(fc.data_released) +
               " data-box releases != " + std::to_string(fc.received) +
               " receiver arrivals + " + std::to_string(fc.probes_received) +
               " probe arrivals");
    }
    if (fc.acks_emitted != fc.ack_admitted) {
      fail("conservation", now,
           fl + std::to_string(fc.acks_emitted) + " acks emitted != " +
               std::to_string(fc.ack_admitted) + " ack-box admissions");
    }
    const uint64_t ack_held = box(id, true).held.size();
    if (fc.ack_admitted != fc.ack_released + ack_held) {
      fail("conservation", now,
           fl + "ack box: " + std::to_string(fc.ack_admitted) +
               " admitted != " + std::to_string(fc.ack_released) +
               " released + " + std::to_string(ack_held) + " held");
    }
    if (fc.ack_released != fc.ack_samples + fc.wnd_acks) {
      fail("conservation", now,
           fl + std::to_string(fc.ack_released) +
               " ack-box releases != " + std::to_string(fc.ack_samples) +
               " sender ack samples + " + std::to_string(fc.wnd_acks) +
               " window-update acks");
    }
    if (sc.sender(i).delivered_bytes() > sc.receiver(i).cum_received()) {
      fail("conservation", now,
           fl + "sender believes " +
               std::to_string(sc.sender(i).delivered_bytes()) +
               "B delivered, receiver has " +
               std::to_string(sc.receiver(i).cum_received()) + "B");
    }
  }
}

std::string InvariantChecker::report(size_t max_lines) const {
  if (ok()) return "";
  std::string out = std::to_string(total_violations_) +
                    " invariant violation(s); first " +
                    std::to_string(std::min(violations_.size(), max_lines)) +
                    ":\n";
  for (size_t i = 0; i < violations_.size() && i < max_lines; ++i) {
    const Violation& v = violations_[i];
    out += "  [" + v.check + "] t=" + ns_str(v.at) + " " + v.detail + "\n";
  }
  return out;
}

}  // namespace ccstarve::check
