// Runtime invariant observers for the §3 network model.
//
// InvariantChecker is a CheckProbe (sim/check_probe.hpp) that audits, while
// a simulation runs, the physical properties the paper's theorems assume of
// the path — and that the emulator is therefore required to honor exactly:
//
//   * event times are monotone (no hook ever observes time going backwards);
//   * the bottleneck is FIFO (packets leave in arrival order, unmodified),
//     respects its buffer, and is work-conserving with byte-exact service
//     times (head-of-line completion at start + bytes/rate, restarted from
//     "now" on a rate change — mirroring BottleneckLink::set_rate);
//   * jitter boxes never reorder and never hold a packet longer than the
//     budget D: eta in [0, D] per packet, releases land exactly when the
//     admission said they would;
//   * measured RTTs never dip below the flow's propagation floor Rm;
//   * CCA outputs stay inside the algorithm's declared CcaSanity bounds;
//   * receiver cumulative-ACK state is monotone;
//   * the sender never sends new data beyond the receiver's advertised
//     window (a shadow wnd-limit integrates every emitted ACK's
//     ack_cum + ack_wnd; inflight therefore never exceeds min(cwnd, rwnd)),
//     and while a flow is rwnd-blocked its persist-timer slot covers the
//     live deadline.
//
// checkpoint() adds quiescent-point packet conservation: every segment a
// sender emitted is accounted for as dropped (loss gate or buffer),
// in flight (link queue, propagation, jitter box), or received — with the
// probe-side counts cross-checked against the components' own counters.
//
// A checker is exact from the moment it is attached: attach(Scenario&)
// seeds its link-queue and jitter-box models from live component state, so
// it can watch a forked continuation just as well as a cold run. Detached
// cost is one untaken branch per hook site (the tracer pattern).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/check_probe.hpp"
#include "sim/scenario.hpp"

namespace ccstarve::check {

struct Violation {
  std::string check;  // short id: "link-fifo", "jitter-budget", ...
  TimeNs at = TimeNs::zero();
  std::string detail;
};

class InvariantChecker final : public CheckProbe {
 public:
  InvariantChecker() = default;

  // Installs this checker on the scenario's simulator and seeds the link /
  // jitter-box models from live state, so attaching works both at t=0 and
  // at a quiescent point of a running (e.g. forked) scenario. The scenario
  // must outlive the checker's use.
  void attach(Scenario& sc);

  // Standalone attach for non-Scenario harnesses (the trace-driven-link
  // golden scenario). Service-timing, RTT-floor, CCA-sanity and
  // conservation checkpoints are disabled; FIFO/buffer/monotonicity run.
  void attach(Simulator& sim);

  // Upper bound for the queue-occupancy check when no Scenario supplied it.
  void set_link_buffer(uint64_t bytes) { buffer_bytes_ = bytes; }

  // Quiescent-point accounting (packet conservation, modeled-vs-actual
  // queue, probe-vs-component counters). Only meaningful when the checker
  // was attached to a Scenario; exact conservation additionally requires
  // the attach to have happened before any packet moved.
  void checkpoint();

  bool ok() const { return total_violations_ == 0; }
  uint64_t total_violations() const { return total_violations_; }
  const std::vector<Violation>& violations() const { return violations_; }
  // Human-readable summary of the first few violations (empty when ok).
  std::string report(size_t max_lines = 8) const;

  // Largest added delay observed through a flow's jitter box since attach
  // (zero if the box was never exercised). Used by the fuzzer's
  // constant-jitter exactness oracle.
  TimeNs observed_max_added(uint32_t flow, bool ack_path) const;
  // True if two packets from different flows ever arrived at the shared
  // bottleneck in the same nanosecond — the (time, seq) tie-break then
  // makes flow-relabel symmetry inapplicable, so that oracle must skip.
  bool saw_cross_flow_link_tie() const { return cross_flow_link_tie_; }

  // --- CheckProbe ---
  void on_link_enqueue(TimeNs now, const Packet& pkt,
                       uint64_t queued_after) override;
  void on_link_drop(TimeNs now, const Packet& pkt) override;
  void on_link_deliver(TimeNs now, const Packet& pkt) override;
  void on_link_rate_change(TimeNs now, Rate rate) override;
  void on_jitter_admit(TimeNs arrival, TimeNs release, const Packet& pkt,
                       bool ack_path, TimeNs budget) override;
  void on_jitter_release(TimeNs now, const Packet& pkt,
                         bool ack_path) override;
  void on_segment_sent(TimeNs now, const Packet& pkt) override;
  void on_receiver_data(TimeNs now, const Packet& pkt,
                        uint64_t cum_after) override;
  void on_ack_emitted(TimeNs now, const Packet& ack) override;
  void on_ack_sample(TimeNs now, uint32_t flow, TimeNs rtt,
                     uint64_t cwnd_bytes, Rate pacing) override;
  void on_wnd_ack(TimeNs now, uint32_t flow, const Packet& ack) override;

 private:
  // Identity of a packet for FIFO matching.
  struct PacketId {
    uint32_t flow = 0;
    uint64_t seq = 0;
    uint32_t bytes = 0;
    bool is_dummy = false;
    bool is_ack = false;
    uint64_t ack_cum = 0;

    static PacketId of(const Packet& p);
    bool operator==(const PacketId&) const = default;
    std::string str() const;
  };

  struct ModelPacket {
    PacketId id;
  };

  // Per (flow, data/ack) jitter-box model.
  struct BoxModel {
    struct Held {
      PacketId id;
      TimeNs release = TimeNs::zero();
    };
    std::deque<Held> held;
    TimeNs last_release = TimeNs::zero();
    TimeNs max_added = TimeNs::zero();
    bool synced = false;  // seeded from live state (or fresh at t=0)
  };

  // Per-flow running counters (probe side).
  struct FlowCounters {
    uint64_t sent = 0;
    uint64_t link_enqueued = 0;
    uint64_t link_dropped = 0;
    uint64_t link_delivered = 0;
    uint64_t data_admitted = 0;
    uint64_t data_released = 0;
    uint64_t received = 0;
    uint64_t acks_emitted = 0;
    uint64_t ack_admitted = 0;
    uint64_t ack_released = 0;
    uint64_t ack_samples = 0;
    uint64_t last_receiver_cum = 0;
    uint64_t last_ack_cum = 0;
    // Receiver-side flow control. The shadow window limit integrates every
    // emitted ACK's (ack_cum + ack_wnd) — an upper bound on what the sender
    // can know, so any send beyond it is a genuine clamp violation.
    uint64_t wnd_limit = kInfiniteWnd;
    uint64_t probes_sent = 0;
    uint64_t probes_received = 0;
    uint64_t wnd_acks = 0;  // pure window updates the sender consumed
    TimeNs min_rtt = TimeNs::zero();  // floor; zero = unknown
    bool has_sanity = false;
    CcaSanity sanity;
  };

  void fail(const char* check, TimeNs at, std::string detail);
  void note_time(TimeNs now);
  FlowCounters& flow(uint32_t id);
  BoxModel& box(uint32_t flow_id, bool ack_path);

  Scenario* scenario_ = nullptr;
  // All segments/acks observed since an attach that predates any traffic:
  // required for the exact conservation checkpoint.
  bool full_accounting_ = false;

  // Violations: first kMaxStored kept verbatim, the rest only counted.
  static constexpr size_t kMaxStored = 64;
  std::vector<Violation> violations_;
  uint64_t total_violations_ = 0;

  TimeNs last_event_at_ = TimeNs::zero();

  // Bottleneck model.
  std::deque<ModelPacket> link_queue_;
  uint64_t link_queued_bytes_ = 0;
  uint64_t buffer_bytes_ = ~uint64_t{0};
  bool link_busy_ = false;
  bool timing_enabled_ = false;  // exact service times (BottleneckLink only)
  Rate link_rate_ = Rate::zero();
  TimeNs head_expected_ = TimeNs::zero();
  bool head_expected_valid_ = false;
  uint64_t link_drops_ = 0;            // drops observed since attach
  uint64_t preattach_link_drops_ = 0;  // component's count at attach time
  TimeNs last_link_arrival_ = TimeNs(-1);
  uint32_t last_link_arrival_flow_ = 0;
  bool last_link_arrival_dummy_ = true;
  bool cross_flow_link_tie_ = false;

  std::vector<FlowCounters> flows_;
  std::vector<BoxModel> data_boxes_;
  std::vector<BoxModel> ack_boxes_;
};

}  // namespace ccstarve::check
