// Canonical scenario registry.
//
// Each GoldenSpec pins one corner of the emulator (a CCA family, a jitter
// policy, AQM, the strong model, the trace-driven link) with fixed seeds and
// durations. Three consumers draw from the same list so a scenario added
// here is automatically covered everywhere:
//
//   * tests/golden_trace_test.cpp runs golden_specs() with a TraceRecorder
//     installed and compares digests committed from the pre-optimisation
//     event loop, so behavioural drift from core rework fails loudly.
//   * bench/bench_simcore.cpp runs bench_specs() for its throughput rows.
//   * check/fuzzer seeds its generator pool from all_specs(), so every
//     named scenario is fuzz-reachable (mutated, shrunk, replayed).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "emu/trace.hpp"
#include "emu/trace_link.hpp"
#include "obs/flight.hpp"
#include "obs/telemetry.hpp"
#include "sim/scenario.hpp"
#include "sim/trace_probe.hpp"
#include "sweep/spec_parse.hpp"

namespace ccstarve::golden {

struct GoldenSpec {
  std::string name;
  // Flow set in the sweep grammar ("copa+vegas:loss=0.01"); empty only for
  // the special trace-link scenario below.
  std::string flow_set;
  double link_mbps = 96;
  double rtt_ms = 60;
  std::string buffer = "-";
  double ecn_threshold_pkts = 0;   // >0 installs ThresholdEcn
  uint64_t prefill_bytes = 0;
  // The model's D audited by the jitter boxes; 0 means unbounded (the
  // scenario default). The fuzzer sets it above the largest jitter it
  // configured, so a clean run must stay within budget.
  double jitter_budget_ms = 0;
  // >0 replaces the bottleneck with a DelayServerLink whose queueing delay
  // follows a triangle wave of this amplitude/period (the §6.5 strong
  // model). Integer-ratio arithmetic keeps the wave libm-free.
  double delay_server_amp_ms = 0;
  double delay_server_period_s = 1.0;
  // Uses a TraceDrivenLink (Mahimahi model) instead of the Scenario
  // topology; flow_set must then name exactly one flow.
  bool trace_link = false;
  uint64_t seed = 1;
  double duration_s = 8;
};

struct GoldenResult {
  std::string digest_hex;
  uint64_t records = 0;  // packet events folded into the digest
  uint64_t events = 0;   // simulator events processed
};

// ~20 scenarios: one per CCA family plus jitter/AQM/strong-model/trace-link/
// cohort/receiver-flow-control variants. Append rather than edit: digests
// are keyed by name.
inline std::vector<GoldenSpec> golden_specs() {
  std::vector<GoldenSpec> specs;
  auto add = [&specs](GoldenSpec s) { specs.push_back(std::move(s)); };
  add({.name = "vegas_solo", .flow_set = "vegas", .link_mbps = 48,
       .rtt_ms = 40});
  add({.name = "copa_duo", .flow_set = "copa+copa"});
  add({.name = "copa_minrtt_attack",
       .flow_set = "copa-default:datajitter=allbutone:1,2"
                   "+copa-default:datajitter=const:1",
       .link_mbps = 120});
  add({.name = "bbr_rtt_asym", .flow_set = "bbr:rtt=40+bbr:rtt=80"});
  add({.name = "vivace_ack_quantize",
       .flow_set = "vivace:ackjitter=quantize:60+vivace"});
  add({.name = "allegro_loss", .flow_set = "allegro:loss=0.02+allegro",
       .buffer = "2bdp"});
  add({.name = "newreno_droptail", .flow_set = "newreno+newreno",
       .link_mbps = 48, .buffer = "1bdp"});
  add({.name = "cubic_vs_vegas", .flow_set = "cubic+vegas",
       .buffer = "2bdp"});
  add({.name = "ledbat_vs_newreno", .flow_set = "ledbat+newreno",
       .link_mbps = 48, .buffer = "2bdp"});
  add({.name = "verus_uniform_jitter",
       .flow_set = "verus:datajitter=uniform:5", .link_mbps = 48});
  add({.name = "ecn_reno_aqm", .flow_set = "ecn-reno+ecn-reno",
       .link_mbps = 48, .ecn_threshold_pkts = 30});
  add({.name = "fast_onoff_jitter",
       .flow_set = "fast:datajitter=onoff:8,50,50+fast"});
  add({.name = "prefill_step_jitter",
       .flow_set = "jitter-aware:datajitter=step:10,3+vegas",
       .prefill_bytes = 60000});
  add({.name = "strong_model_triangle", .flow_set = "vegas+copa",
       .delay_server_amp_ms = 25, .delay_server_period_s = 2.0});
  add({.name = "trace_link_sawtooth", .flow_set = "cubic",
       .trace_link = true});
  // Fork-heavy shape: two Copas where flow 0 gains 8 ms of step jitter at
  // t = 5 s — exactly what prefix sharing snapshots at 5 s - 1 ns and
  // forks. Pins the digest the snapshot_test fork paths must reproduce.
  add({.name = "copa_late_step",
       .flow_set = "copa:datajitter=step:8,5+copa"});
  // Many-flow cohorts (the scale-out battery). Pin the flow-table/scoreboard
  // hot path at cohort sizes where per-flow heap state would have been the
  // bottleneck; also the only digests exercising the `*N` multiplier
  // grammar. Short horizons keep the pinned runs cheap.
  add({.name = "copa_64flow", .flow_set = "copa*64", .link_mbps = 192,
       .rtt_ms = 40, .buffer = "2bdp", .duration_s = 4});
  add({.name = "mixed_256flow",
       .flow_set = "newreno*64+cubic*64+vegas*64+copa*64",
       .link_mbps = 384, .rtt_ms = 40, .buffer = "2bdp", .duration_s = 2});
  // Receiver-side flow-control pathologies (the rwnd/persist/app-drain
  // stack). Each pins a different corner. The drain rates are deliberately
  // glacial: with every-packet ACKs the returning data-ACK stream refreshes
  // the advertisement each RTT, so a true zero-window stall only appears
  // when one RTT of drain frees less than the SWS threshold (here ~0.1 Mbit/s
  // at ~120 ms loaded RTT). rwnd_oscillate reads in 20-packet bursts ~500 ms
  // apart, so the window slams shut between reads and window-update wakeups
  // interleave with persist probes; rwnd_persist_stall suppresses window
  // updates entirely, so recovery happens only through zero-window persist
  // probes; rwnd_slow_drain is the smooth-clamp regime — the advertised
  // window throttles cubic continuously without ever reaching zero.
  add({.name = "rwnd_oscillate",
       .flow_set = "copa:rwnd=30:drain=0.5:drainburst=20+copa",
       .link_mbps = 48, .buffer = "2bdp"});
  add({.name = "rwnd_persist_stall",
       .flow_set = "newreno:rwnd=16:drain=0.1:wndupd=0+newreno",
       .link_mbps = 48, .buffer = "2bdp"});
  add({.name = "rwnd_slow_drain", .flow_set = "cubic:rwnd=64:drain=5+vegas",
       .link_mbps = 48, .buffer = "2bdp", .duration_s = 12});
  return specs;
}

// The bench_simcore throughput scenarios: 1/4/16 flows of mixed loss-based
// and delay-based families at a finite (2 BDP) buffer. No committed digest
// — their role is wall-clock rows in BENCH_simcore.json — but they are part
// of all_specs() so the fuzzer exercises the same shapes.
inline std::vector<GoldenSpec> bench_specs() {
  std::vector<GoldenSpec> specs;
  auto add = [&specs](GoldenSpec s) { specs.push_back(std::move(s)); };
  add({.name = "flows_1", .flow_set = "newreno", .link_mbps = 48,
       .rtt_ms = 40, .buffer = "2bdp"});
  add({.name = "flows_4", .flow_set = "newreno+cubic+vegas+copa",
       .buffer = "2bdp"});
  add({.name = "flows_16",
       .flow_set = "newreno+cubic+vegas+copa+newreno+cubic+vegas+copa"
                   "+newreno+cubic+vegas+copa+newreno+cubic+vegas+copa",
       .link_mbps = 192, .buffer = "2bdp"});
  return specs;
}

// Every named scenario (golden + bench), for consumers that want the full
// registry rather than the digest-pinned subset.
inline std::vector<GoldenSpec> all_specs() {
  std::vector<GoldenSpec> specs = golden_specs();
  for (GoldenSpec& s : bench_specs()) specs.push_back(std::move(s));
  return specs;
}

// Triangle wave in [0, amp] with the given period, evaluated at t. Pure
// integer modulus plus one double divide: bit-stable across runs.
inline TimeNs triangle_delay(TimeNs t, TimeNs amp, TimeNs period) {
  const int64_t pos = t.ns() % period.ns();
  const int64_t half = period.ns() / 2;
  const int64_t up = pos < half ? pos : period.ns() - pos;
  return TimeNs::nanos(static_cast<int64_t>(
      static_cast<double>(amp.ns()) * static_cast<double>(up) /
      static_cast<double>(half)));
}

// Builds the Scenario topology for a (non-trace-link) spec. Seed derivation
// mirrors sweep::run_point so digests stay comparable with sweep behaviour.
// `pool` forwards to ScenarioConfig::event_pool (null: private pool).
inline std::unique_ptr<Scenario> build_golden(const GoldenSpec& spec,
                                              EventPool* pool = nullptr) {
  const auto flows = sweep::parse_flow_set(spec.flow_set);
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(spec.link_mbps);
  cfg.buffer_bytes =
      sweep::parse_buffer_bytes(spec.buffer, cfg.link_rate, spec.rtt_ms);
  cfg.prefill_bytes = spec.prefill_bytes;
  cfg.event_pool = pool;
  if (spec.jitter_budget_ms > 0) {
    cfg.jitter_budget = TimeNs::millis(spec.jitter_budget_ms);
  }
  if (spec.ecn_threshold_pkts > 0) {
    cfg.aqm = std::make_unique<ThresholdEcn>(
        static_cast<uint64_t>(spec.ecn_threshold_pkts) * kMss);
  }
  if (spec.delay_server_amp_ms > 0) {
    const TimeNs amp = TimeNs::millis(spec.delay_server_amp_ms);
    const TimeNs period = TimeNs::seconds(spec.delay_server_period_s);
    cfg.delay_server = [amp, period](TimeNs arrival) {
      return triangle_delay(arrival, amp, period);
    };
  }
  auto sc = std::make_unique<Scenario>(std::move(cfg));
  const uint64_t base = spec.seed * 1000;
  for (size_t i = 0; i < flows.size(); ++i) {
    const sweep::FlowArgs& fa = flows[i];
    FlowSpec fs;
    fs.cca = sweep::make_cca(fa.cca, base + 7 + i);
    fs.min_rtt = TimeNs::millis(fa.rtt_ms.value_or(spec.rtt_ms));
    fs.start_at = TimeNs::seconds(fa.start_s);
    fs.loss_rate = fa.loss;
    fs.loss_seed = base + 77 + i;
    if (auto j = sweep::make_jitter(fa.ack_jitter, base + 100 + i)) {
      fs.ack_jitter = std::move(j);
    }
    if (auto j = sweep::make_jitter(fa.data_jitter, base + 200 + i)) {
      fs.data_jitter = std::move(j);
    }
    fs.recv = sweep::make_recv_config(fa);
    fs.stats_interval = TimeNs::millis(10);
    sc->add_flow(std::move(fs));
  }
  return sc;
}

// Runs the single-flow Mahimahi-style scenario: sender -> trace-driven
// link -> propagation -> receiver, with the recorder watching the link.
// `checker` (optional) is installed alongside the tracer, as is `telemetry`
// (the trace-link topology has no Scenario, so the probe attaches to the
// bare simulator with one flow and no propagation-floor seeds).
inline GoldenResult run_trace_link_golden(
    const GoldenSpec& spec, CheckProbe* checker = nullptr,
    obs::FlowTelemetry* telemetry = nullptr,
    obs::FlightRecorder* flight = nullptr) {
  const auto flows = sweep::parse_flow_set(spec.flow_set);
  Simulator sim;
  TraceRecorder recorder;
  sim.set_tracer(&recorder);
  if (checker != nullptr) sim.set_checker(checker);
  if (telemetry != nullptr) telemetry->attach(sim, 1);
  if (flight != nullptr) flight->attach(sim, 1);

  const uint64_t base = spec.seed * 1000;
  // Build back-to-front: each element needs its downstream neighbour.
  std::unique_ptr<Sender> sender;
  struct AckRelay final : PacketHandler {
    Sender** target;
    void handle(Packet pkt) override { (*target)->handle(pkt); }
  } ack_relay;
  ack_relay.target = nullptr;
  JitterBox ack_jitter(sim, std::make_unique<ZeroJitter>(), TimeNs::infinite(),
                       ack_relay);
  Receiver receiver(sim, AckPolicy{}, ack_jitter);
  JitterBox data_jitter(sim, std::make_unique<ZeroJitter>(),
                        TimeNs::infinite(), receiver);
  PropagationDelay prop(sim, TimeNs::millis(spec.rtt_ms), data_jitter);
  DeliveryTrace trace = DeliveryTrace::sawtooth(
      Rate::mbps(5), Rate::mbps(40), TimeNs::seconds(2), TimeNs::seconds(4));
  TraceDrivenLink::Config lc;
  lc.buffer_bytes = 120 * kMss;
  TraceDrivenLink link(sim, std::move(trace), lc, prop);
  Sender::Config sc;
  sc.flow_id = 0;
  sc.stats_interval = TimeNs::millis(10);
  sender = std::make_unique<Sender>(
      sim, sc, sweep::make_cca(flows[0].cca, base + 7), link);
  Sender* sender_ptr = sender.get();
  ack_relay.target = &sender_ptr;
  sender->start(TimeNs::zero());

  sim.run_until(TimeNs::seconds(spec.duration_s));
  if (telemetry != nullptr) {
    telemetry->finish(TimeNs::seconds(spec.duration_s));
  }
  return {recorder.digest_hex(), recorder.records(), sim.events_processed()};
}

inline GoldenResult run_golden(const GoldenSpec& spec,
                               CheckProbe* checker = nullptr) {
  if (spec.trace_link) return run_trace_link_golden(spec, checker);
  auto sc = build_golden(spec);
  TraceRecorder recorder;
  sc->sim().set_tracer(&recorder);
  if (checker != nullptr) sc->sim().set_checker(checker);
  sc->run_until(TimeNs::seconds(spec.duration_s));
  return {recorder.digest_hex(), recorder.records(),
          sc->sim().events_processed()};
}

// run_golden with a FlowTelemetry probe attached for the whole run. The
// probe observes the identical event stream (it never schedules events or
// mutates packets), so the returned digest must equal a bare run_golden's —
// tests/obs_test.cpp pins this against every committed digest.
inline GoldenResult run_golden_telemetry(const GoldenSpec& spec,
                                         obs::FlowTelemetry* telemetry) {
  if (spec.trace_link) {
    return run_trace_link_golden(spec, nullptr, telemetry);
  }
  auto sc = build_golden(spec);
  TraceRecorder recorder;
  sc->sim().set_tracer(&recorder);
  if (telemetry != nullptr) telemetry->attach(*sc);
  sc->run_until(TimeNs::seconds(spec.duration_s));
  if (telemetry != nullptr) {
    telemetry->finish(TimeNs::seconds(spec.duration_s));
  }
  return {recorder.digest_hex(), recorder.records(),
          sc->sim().events_processed()};
}

// run_golden with a FlightRecorder (and optionally a FlowTelemetry feeding
// it detector crossings) attached for the whole run. Like the other probes
// the recorder is strictly read-only, so the digest must equal a bare
// run_golden's — tests/flight_test.cpp pins this against every committed
// digest.
inline GoldenResult run_golden_flight(const GoldenSpec& spec,
                                      obs::FlightRecorder* flight,
                                      obs::FlowTelemetry* telemetry = nullptr) {
  if (spec.trace_link) {
    return run_trace_link_golden(spec, nullptr, telemetry, flight);
  }
  auto sc = build_golden(spec);
  TraceRecorder recorder;
  sc->sim().set_tracer(&recorder);
  if (telemetry != nullptr) telemetry->attach(*sc);
  if (flight != nullptr) flight->attach(*sc);
  sc->run_until(TimeNs::seconds(spec.duration_s));
  if (telemetry != nullptr) {
    telemetry->finish(TimeNs::seconds(spec.duration_s));
  }
  return {recorder.digest_hex(), recorder.records(),
          sc->sim().events_processed()};
}

// run_golden with a fully attached invariant checker: per-flow RTT floors /
// CCA sanity bounds are seeded from the scenario and the end-of-run
// conservation checkpoint runs. The checker adds no trace records, so the
// digest equals an unchecked run's.
inline GoldenResult run_golden_checked(const GoldenSpec& spec,
                                       check::InvariantChecker* ck) {
  if (spec.trace_link) return run_trace_link_golden(spec, ck);
  auto sc = build_golden(spec);
  if (ck != nullptr) ck->attach(*sc);
  TraceRecorder recorder;
  sc->sim().set_tracer(&recorder);
  sc->run_until(TimeNs::seconds(spec.duration_s));
  if (ck != nullptr) ck->checkpoint();
  return {recorder.digest_hex(), recorder.records(),
          sc->sim().events_processed()};
}

}  // namespace ccstarve::golden
