#include "core/equilibrium.hpp"

namespace ccstarve {

TimeNs vegas_equilibrium_rtt(Rate c, TimeNs rm, int n_flows,
                             double alpha_pkts) {
  return rm + c.transmission_time(static_cast<uint64_t>(
                  n_flows * alpha_pkts * kMss));
}

TimeNs bbr_cwnd_limited_rtt(Rate c, TimeNs rm, int n_flows,
                            double quanta_pkts) {
  return rm * 2.0 + c.transmission_time(static_cast<uint64_t>(
                        n_flows * quanta_pkts * kMss));
}

Rate bbr_cwnd_limited_rate(TimeNs rtt, TimeNs rm, double quanta_pkts) {
  const TimeNs excess = rtt - rm * 2.0;
  if (excess <= TimeNs::zero()) return Rate::infinite();
  return Rate::from_bytes_over(
      static_cast<uint64_t>(quanta_pkts * kMss), excess);
}

TimeNs copa_delta(Rate c) { return c.transmission_time(4 * kMss); }

Rate vegas_family_mu(TimeNs rtt, TimeNs rm, double alpha_pkts) {
  const TimeNs queueing = rtt - rm;
  if (queueing <= TimeNs::zero()) return Rate::infinite();
  return Rate::from_bytes_over(static_cast<uint64_t>(alpha_pkts * kMss),
                               queueing);
}

}  // namespace ccstarve
