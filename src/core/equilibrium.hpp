// Closed-form equilibria the paper derives in §5 — used by the test suite to
// validate that the packet-level CCA implementations reach the fixed points
// the theory predicts (our substitute for validating against kernel code).
#pragma once

#include "util/rate.hpp"
#include "util/time.hpp"

namespace ccstarve {

// Vegas/FAST/Copa-family equilibrium RTT with n flows each holding
// alpha_pkts packets in the queue: Rm + n*alpha*MSS/C (§5.2's comparison).
TimeNs vegas_equilibrium_rtt(Rate c, TimeNs rm, int n_flows,
                             double alpha_pkts);

// BBR cwnd-limited equilibrium RTT: 2*Rm + n*alpha*MSS/C (§5.2).
TimeNs bbr_cwnd_limited_rtt(Rate c, TimeNs rm, int n_flows,
                            double quanta_pkts);

// BBR cwnd-limited per-flow sending rate as a function of the prevailing
// RTT: quanta/(RTT - 2*Rm) (§5.2; diverges as RTT -> 2*Rm).
Rate bbr_cwnd_limited_rate(TimeNs rtt, TimeNs rm, double quanta_pkts);

// Copa's converged delay oscillation: delta(C) ~ 4*MSS/C seconds
// (the paper's "4 alpha / C" with alpha = packet size; < 0.5 ms at
// 96 Mbit/s).
TimeNs copa_delta(Rate c);

// Vegas-family rate-delay mapping mu(d) = alpha/(d - Rm) (§6.3).
Rate vegas_family_mu(TimeNs rtt, TimeNs rm, double alpha_pkts);

}  // namespace ccstarve
