#include "core/fairness.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace ccstarve {

FairnessReport measure_fairness(const Scenario& sc, TimeNs from, TimeNs to) {
  FairnessReport report;
  double total = 0.0, lo = 1e300, hi = 0.0;
  for (size_t i = 0; i < sc.flow_count(); ++i) {
    const double mbps = sc.throughput(i, from, to).to_mbps();
    report.throughput_mbps.push_back(mbps);
    total += mbps;
    lo = std::min(lo, mbps);
    hi = std::max(hi, mbps);
  }
  report.ratio = lo > 0.0 ? hi / lo : (hi > 0.0 ? 1e9 : 1.0);
  report.jain = jain_index(report.throughput_mbps);
  if (sc.has_bottleneck()) {
    report.utilization = total / sc.link().rate().to_mbps();
  }
  return report;
}

SFairnessVerdict check_s_fairness(const Scenario& sc, double s, TimeNs from,
                                  TimeNs to, int windows) {
  SFairnessVerdict v{true, 1.0};
  for (int w = 0; w < windows; ++w) {
    // Suffix windows [from + k*(to-from)/windows, to].
    const TimeNs start =
        from + (to - from) * (static_cast<double>(w) / windows);
    const FairnessReport r = measure_fairness(sc, start, to);
    v.worst_suffix_ratio = std::max(v.worst_suffix_ratio, r.ratio);
  }
  v.s_fair = v.worst_suffix_ratio < s;
  return v;
}

}  // namespace ccstarve
