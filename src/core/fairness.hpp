// Fairness and starvation metrics (paper §4.2, Definitions 2–3).
#pragma once

#include <cstddef>
#include <vector>

#include "sim/scenario.hpp"
#include "util/time.hpp"

namespace ccstarve {

struct FairnessReport {
  // Per-flow throughput over the measurement window, Mbit/s.
  std::vector<double> throughput_mbps;
  // max/min throughput ratio (the paper reports e.g. 107/8.3 ~ 13:1).
  double ratio = 1.0;
  double jain = 1.0;
  // Sum of throughputs / link rate (NaN-free; 0 if unknown link rate).
  double utilization = 0.0;
};

// Throughputs measured over [from, to]; link rate taken from the scenario's
// bottleneck (0 utilization when using a delay-server link).
FairnessReport measure_fairness(const Scenario& sc, TimeNs from, TimeNs to);

// Definition 2 check over a trajectory: the network is s-fair iff there is a
// time t after which the running-throughput ratio stays below s. We test the
// empirical analogue: the ratio over every suffix window of the run.
struct SFairnessVerdict {
  bool s_fair;
  double worst_suffix_ratio;
};
SFairnessVerdict check_s_fairness(const Scenario& sc, double s, TimeNs from,
                                  TimeNs to, int windows = 8);

}  // namespace ccstarve
