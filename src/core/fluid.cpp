#include "core/fluid.hpp"

#include <algorithm>
#include <cmath>

namespace ccstarve {

double FluidJitterAware::dwdt(double w, double rtt, double) const {
  const double mu = w / rtt;  // current rate, bytes/s
  const double exponent =
      (p_.rmax.to_seconds() - (rtt - p_.rm.to_seconds())) /
      p_.d.to_seconds();
  const double target = p_.mu_minus_bytes_per_s * std::pow(p_.s, exponent);
  double dmu_dt;
  if (mu < target) {
    dmu_dt = p_.a_bytes_per_s_per_rtt / p_.rm.to_seconds();
  } else {
    // mu *= b once per Rm  ->  dmu/dt = -(1-b)*mu/Rm.
    dmu_dt = -(1.0 - p_.b) * mu / p_.rm.to_seconds();
  }
  // w = mu * rtt; treat rtt as slowly varying within a step.
  return dmu_dt * rtt;
}

namespace {

struct State {
  std::vector<double> w;  // windows, bytes
  double q;               // queueing delay, seconds
};

// d/dt of the full state under the shared-queue fluid model.
State derivative(const State& s, const std::vector<FluidFlowSpec>& flows,
                 double capacity_bytes_per_s) {
  State d;
  d.w.resize(s.w.size());
  double sum_rate = 0.0;
  std::vector<double> rates(s.w.size());
  for (size_t i = 0; i < s.w.size(); ++i) {
    const double rtt =
        flows[i].rm.to_seconds() + flows[i].eta.to_seconds() + s.q;
    rates[i] = s.w[i] / rtt;
    sum_rate += rates[i];
  }
  for (size_t i = 0; i < s.w.size(); ++i) {
    const double rtt =
        flows[i].rm.to_seconds() + flows[i].eta.to_seconds() + s.q;
    d.w[i] = flows[i].cca->dwdt(s.w[i], rtt, rates[i]);
  }
  d.q = (sum_rate - capacity_bytes_per_s) / capacity_bytes_per_s;
  // Reflecting boundary at q = 0.
  if (s.q <= 0.0 && d.q < 0.0) d.q = 0.0;
  return d;
}

State axpy(const State& a, const State& b, double h) {
  State out = a;
  for (size_t i = 0; i < a.w.size(); ++i) out.w[i] += h * b.w[i];
  out.q = std::max(0.0, out.q + h * b.q);
  for (double& w : out.w) w = std::max(w, static_cast<double>(kMss));
  return out;
}

// One classic RK4 step of size h.
State rk4_step(const State& s, const std::vector<FluidFlowSpec>& flows,
               double cap, double h) {
  const State k1 = derivative(s, flows, cap);
  const State k2 = derivative(axpy(s, k1, h / 2.0), flows, cap);
  const State k3 = derivative(axpy(s, k2, h / 2.0), flows, cap);
  const State k4 = derivative(axpy(s, k3, h), flows, cap);
  State step;
  step.w.resize(s.w.size());
  for (size_t i = 0; i < s.w.size(); ++i) {
    step.w[i] = (k1.w[i] + 2 * k2.w[i] + 2 * k3.w[i] + k4.w[i]) / 6.0;
  }
  step.q = (k1.q + 2 * k2.q + 2 * k3.q + k4.q) / 6.0;
  return axpy(s, step, h);
}

}  // namespace

FluidResult run_fluid(const std::vector<FluidFlowSpec>& flows,
                      const FluidConfig& config) {
  FluidResult out;
  out.rate_mbps.resize(flows.size());
  out.rtt_seconds.resize(flows.size());

  State s;
  s.q = 0.0;
  for (const FluidFlowSpec& f : flows) {
    s.w.push_back(f.initial_window_bytes);
  }

  const double cap = config.link_rate.bytes_per_second();
  const double h = config.dt.to_seconds();
  TimeNs t = TimeNs::zero();
  TimeNs next_sample = TimeNs::zero();

  while (t < config.duration) {
    if (t >= next_sample) {
      for (size_t i = 0; i < flows.size(); ++i) {
        const double rtt =
            flows[i].rm.to_seconds() + flows[i].eta.to_seconds() + s.q;
        out.rate_mbps[i].add(t, s.w[i] / rtt * 8.0 / 1e6);
        out.rtt_seconds[i].add(t, rtt);
      }
      out.queue_seconds.add(t, s.q);
      next_sample = t + config.sample_every;
    }
    s = rk4_step(s, flows, cap, h);
    t += config.dt;
  }

  for (size_t i = 0; i < flows.size(); ++i) {
    const double rtt =
        flows[i].rm.to_seconds() + flows[i].eta.to_seconds() + s.q;
    out.final_rate_mbps.push_back(s.w[i] / rtt * 8.0 / 1e6);
    out.final_rtt_s.push_back(rtt);
  }
  out.final_queue_s = s.q;
  return out;
}

FluidIntegrateResult integrate_fluid(const std::vector<FluidFlowSpec>& flows,
                                     Rate link_rate,
                                     const std::vector<double>& w0_bytes,
                                     double q0_s, TimeNs horizon, TimeNs dt) {
  State s;
  s.w = w0_bytes;
  s.w.resize(flows.size(), static_cast<double>(kMss));
  for (double& w : s.w) w = std::max(w, static_cast<double>(kMss));
  s.q = std::max(0.0, q0_s);

  const double cap = link_rate.bytes_per_second();
  const auto rate_of = [&](const State& st, size_t i) {
    const double rtt =
        flows[i].rm.to_seconds() + flows[i].eta.to_seconds() + st.q;
    return st.w[i] / rtt;
  };
  std::vector<double> rate0(flows.size());
  for (size_t i = 0; i < flows.size(); ++i) rate0[i] = rate_of(s, i);

  const double h = dt.to_seconds();
  TimeNs t = TimeNs::zero();
  while (t < horizon) {
    s = rk4_step(s, flows, cap, h);
    t += dt;
  }

  FluidIntegrateResult out;
  out.w_bytes = s.w;
  out.q_s = s.q;
  out.queue_drift_s = std::abs(s.q - std::max(0.0, q0_s));
  out.rate_bytes_per_s.resize(flows.size());
  for (size_t i = 0; i < flows.size(); ++i) {
    out.rate_bytes_per_s[i] = rate_of(s, i);
    const double drift = std::abs(out.rate_bytes_per_s[i] - rate0[i]) /
                         std::max(rate0[i], 1.0);
    out.max_rate_drift_frac = std::max(out.max_rate_drift_frac, drift);
  }
  return out;
}

}  // namespace ccstarve
