// Fluid (ODE) models of the CCAs' window dynamics — the analytical
// counterpart to the packet-level emulator, used to cross-validate the
// equilibria the paper derives in §5 (and that our packet implementations
// must reach):
//
//   Vegas family:  dw/dt ~ sign(alpha - w*q/RTT)          -> q* = alpha/C
//   BBR (cwnd-limited): w = 2*xhat*Rm + quanta, xhat -> x -> x* = quanta/(RTT-2Rm)
//   Algorithm 1:   AIMD toward mu(d) = mu- * s^((Rmax-(d-Rm))/D)
//
// Flows share one queue: dq/dt = (sum_i x_i - C)/C, q >= 0, x_i = w_i/RTT_i,
// RTT_i = Rm_i + q + eta_i where eta_i is a constant per-flow non-congestive
// offset (the fluid version of the jitter element). Integrated with RK4.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/rate.hpp"
#include "util/series.hpp"
#include "util/time.hpp"

namespace ccstarve {

// One flow's fluid dynamics: returns dw/dt given the current window (bytes),
// the *measured* RTT (including the flow's eta), and its delivery rate.
class FluidCca {
 public:
  virtual ~FluidCca() = default;
  virtual double dwdt(double w_bytes, double rtt_s,
                      double rate_bytes_per_s) const = 0;
  virtual std::string name() const = 0;
};

// Vegas/FAST-family: drive the own-backlog estimate w*(q/RTT) into the
// [alpha, beta] band. The packet CCA holds cwnd anywhere inside the band,
// so the fluid stationary set is the whole band, not the single point
// alpha — a distinction the fast-forward engine's drift validation relies
// on (a band-stable packet state must read as fluid-stable too). beta < 0
// (the default) means beta = alpha: a point target, the historical
// behaviour for closed-form equilibrium work.
class FluidVegas final : public FluidCca {
 public:
  FluidVegas(double alpha_pkts, TimeNs rm, double gain_per_rtt = 1.0,
             double beta_pkts = -1.0)
      : alpha_bytes_(alpha_pkts * kMss),
        beta_bytes_((beta_pkts < 0 ? alpha_pkts : beta_pkts) * kMss),
        rm_s_(rm.to_seconds()), gain_(gain_per_rtt) {}
  double dwdt(double w, double rtt, double) const override {
    const double backlog = w * (rtt - rm_s_) / rtt;  // bytes queued (est.)
    // Smooth AIAD: +-1 packet per RTT scaled by how far we are from the
    // band; zero inside it.
    double err = 0.0;
    if (backlog < alpha_bytes_) {
      err = alpha_bytes_ - backlog;
    } else if (backlog > beta_bytes_) {
      err = beta_bytes_ - backlog;
    }
    const double step = std::clamp(err / static_cast<double>(kMss), -1.0, 1.0);
    return gain_ * step * kMss / rtt;
  }
  std::string name() const override { return "fluid-vegas"; }

 private:
  double alpha_bytes_, beta_bytes_, rm_s_, gain_;
};

// Copa: target rate 1/(delta * dq) packets/s where dq = RTT - Rm, i.e.
// target window w* = RTT * MSS / (delta * dq) bytes, approached within one
// RTT and slew-limited to at most +-w per RTT (Copa moves by v/(delta*cwnd)
// per ACK; the velocity cap keeps the fluid trajectory comparably tame).
// Equilibrium with N identical flows: q* = N * MSS / (delta * C).
class FluidCopa final : public FluidCca {
 public:
  FluidCopa(double delta, TimeNs rm)
      : delta_(delta), rm_s_(rm.to_seconds()) {}
  double dwdt(double w, double rtt, double) const override {
    // Floor dq at a tenth of a packet's serialization-ish time scale to
    // keep the target finite on an empty queue.
    const double dq = std::max(rtt - rm_s_, 1e-6);
    const double target = rtt * static_cast<double>(kMss) / (delta_ * dq);
    const double slew = w / rtt;
    return std::clamp((target - w) / rtt, -slew, slew);
  }
  std::string name() const override { return "fluid-copa"; }

 private:
  double delta_, rm_s_;
};

// BBR cwnd-limited mode: w = 2 * xhat * Rm + quanta, with the bandwidth
// estimate xhat relaxing toward the actual delivery rate over ~1 RTT. We
// model dw/dt directly from the implied target.
class FluidBbrCwndLimited final : public FluidCca {
 public:
  FluidBbrCwndLimited(double quanta_pkts, TimeNs rm)
      : quanta_bytes_(quanta_pkts * kMss), rm_s_(rm.to_seconds()) {}
  double dwdt(double w, double rtt, double rate) const override {
    const double target = 2.0 * rate * rm_s_ + quanta_bytes_;
    // Relax toward the target within one RTT.
    return (target - w) / rtt;
  }
  std::string name() const override { return "fluid-bbr-cwnd"; }

 private:
  double quanta_bytes_, rm_s_;
};

// Algorithm 1 (Eq. 2): AIMD on the sending rate toward the exponential
// target; expressed as window dynamics with w = mu * RTT.
class FluidJitterAware final : public FluidCca {
 public:
  struct Params {
    TimeNs rm = TimeNs::millis(100);
    TimeNs d = TimeNs::millis(10);
    TimeNs rmax = TimeNs::millis(200);
    double s = 2.0;
    double mu_minus_bytes_per_s = Rate::kbps(100).bytes_per_second();
    double a_bytes_per_s_per_rtt = Rate::kbps(500).bytes_per_second();
    double b = 0.9;
  };
  explicit FluidJitterAware(const Params& p) : p_(p) {}
  double dwdt(double w, double rtt, double) const override;
  std::string name() const override { return "fluid-jitter-aware"; }

 private:
  Params p_;
};

struct FluidFlowSpec {
  std::shared_ptr<FluidCca> cca;
  TimeNs rm = TimeNs::millis(100);
  // Constant non-congestive delay offset (the fluid jitter element).
  TimeNs eta = TimeNs::zero();
  double initial_window_bytes = 4.0 * kMss;
};

struct FluidConfig {
  Rate link_rate = Rate::mbps(10);
  TimeNs duration = TimeNs::seconds(60);
  TimeNs dt = TimeNs::millis(1);
  TimeNs sample_every = TimeNs::millis(50);
};

struct FluidResult {
  // Per-flow delivery rate (Mbit/s) and RTT (s) trajectories.
  std::vector<TimeSeries> rate_mbps;
  std::vector<TimeSeries> rtt_seconds;
  TimeSeries queue_seconds;
  // Values at the end of the run.
  std::vector<double> final_rate_mbps;
  std::vector<double> final_rtt_s;
  double final_queue_s = 0.0;
};

FluidResult run_fluid(const std::vector<FluidFlowSpec>& flows,
                      const FluidConfig& config);

// Integration from an explicit initial state — the fast-forward engine's
// validation primitive. Starts from per-flow windows `w0_bytes` and queue
// delay `q0_s` (both taken from a packet-level snapshot), integrates the
// shared-queue model for `horizon`, and reports where the state ended up
// plus how far it moved. A converged packet state should barely move:
// large drift means the fluid model disagrees that this is an equilibrium,
// and the warp is refused.
struct FluidIntegrateResult {
  std::vector<double> w_bytes;           // final windows
  std::vector<double> rate_bytes_per_s;  // final per-flow rates
  double q_s = 0.0;                      // final queue delay
  // max_i |rate_end - rate_start| / max(rate_start, 1 byte/s).
  double max_rate_drift_frac = 0.0;
  // |q_end - q_start| in seconds.
  double queue_drift_s = 0.0;
};

FluidIntegrateResult integrate_fluid(const std::vector<FluidFlowSpec>& flows,
                                     Rate link_rate,
                                     const std::vector<double>& w0_bytes,
                                     double q0_s, TimeNs horizon, TimeNs dt);

}  // namespace ccstarve
