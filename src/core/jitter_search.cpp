#include "core/jitter_search.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>

#include "core/fairness.hpp"
#include "sim/jitter.hpp"

namespace ccstarve {

namespace {

using PolicyMaker = std::function<std::unique_ptr<JitterPolicy>()>;

struct Schedule {
  std::string name;
  PolicyMaker make;
};

std::vector<Schedule> build_schedules(const JitterSearchConfig cfg) {
  std::vector<Schedule> out;
  const TimeNs d = cfg.d;
  out.push_back({"none", [] { return std::make_unique<ZeroJitter>(); }});
  out.push_back(
      {"constant-D", [d] { return std::make_unique<ConstantJitter>(d); }});
  out.push_back({"constant-D/2", [d] {
                   return std::make_unique<ConstantJitter>(d / 2.0);
                 }});
  for (const double periods : {0.5, 1.0, 4.0, 16.0}) {
    const TimeNs half = cfg.min_rtt * periods;
    char label[32];
    std::snprintf(label, sizeof label, "square-%.1frtt", periods);
    out.push_back({label, [d, half] {
                     return std::make_unique<OnOffJitter>(d, half, half);
                   }});
  }
  out.push_back({"ack-quantize-D", [d] {
                   return std::make_unique<PeriodicReleaseJitter>(d);
                 }});
  // The §5.1-style attack: every packet is delayed by D except one early
  // packet, so the victim's min-RTT filter under-estimates by D.
  out.push_back({"minrtt-skew-D", [d, cfg] {
                   return std::make_unique<AllButOneJitter>(
                       d, cfg.min_rtt * 2.0);
                 }});
  for (int i = 0; i < cfg.random_schedules; ++i) {
    const uint64_t seed = cfg.seed + static_cast<uint64_t>(i);
    out.push_back({"uniform-rand-" + std::to_string(i),
                   [d, seed] {
                     return std::make_unique<UniformJitter>(TimeNs::zero(), d,
                                                            seed);
                   }});
  }
  return out;
}

}  // namespace

namespace {

// Applies the configured onset: before cfg.onset the adversary is
// behaviourally absent (DelayedOnsetJitter passes packets through without
// consulting the inner policy, so its state at the onset equals a fresh
// instance — the property the shared warm-up relies on).
std::unique_ptr<JitterPolicy> with_onset(const JitterSearchConfig& cfg,
                                         std::unique_ptr<JitterPolicy> p) {
  if (cfg.onset == TimeNs::zero()) return p;
  return std::make_unique<DelayedOnsetJitter>(cfg.onset, std::move(p));
}

std::unique_ptr<Scenario> build_two_flow(const CcaMaker& maker,
                                         const JitterSearchConfig& cfg,
                                         std::unique_ptr<JitterPolicy> adv) {
  ScenarioConfig sc;
  sc.link_rate = cfg.link_rate;
  sc.jitter_budget = cfg.d;
  auto scenario = std::make_unique<Scenario>(std::move(sc));
  for (int i = 0; i < 2; ++i) {
    FlowSpec spec;
    spec.cca = maker();
    spec.min_rtt = cfg.min_rtt;
    if (i == 0) spec.ack_jitter = std::move(adv);
    scenario->add_flow(std::move(spec));
  }
  return scenario;
}

}  // namespace

JitterSearchResult search_jitter_adversary(const CcaMaker& maker,
                                           const JitterSearchConfig& cfg) {
  JitterSearchResult result;

  const bool fork_schedules =
      cfg.share_warmup && cfg.onset > TimeNs::zero() &&
      cfg.onset < cfg.duration;
  ScenarioSnapshot warm;
  if (fork_schedules) {
    // One converged equilibrium, shared by every schedule: the schedules
    // are inert before the onset, so a jitter-free stem is exact.
    auto stem = build_two_flow(maker, cfg, nullptr);
    stem->run_until(cfg.onset - TimeNs::nanos(1));
    warm = stem->snapshot();
  }

  for (const Schedule& sched : build_schedules(cfg)) {
    std::unique_ptr<Scenario> scenario;
    if (fork_schedules) {
      ForkOptions fo;
      fo.flows.resize(1);
      fo.flows[0].replace_ack_jitter = true;
      fo.flows[0].ack_jitter = with_onset(cfg, sched.make());
      scenario = Scenario::fork(warm, std::move(fo));
    } else {
      scenario = build_two_flow(maker, cfg, with_onset(cfg, sched.make()));
    }
    scenario->run_until(cfg.duration);

    const FairnessReport rep =
        measure_fairness(*scenario, cfg.duration * 0.4, cfg.duration);
    ScheduleOutcome outcome;
    outcome.name = sched.name;
    outcome.utilization = rep.utilization;
    outcome.ratio = rep.ratio;
    outcome.efficiency_violation = rep.utilization < cfg.f;
    outcome.fairness_violation = rep.ratio > cfg.s;
    result.worst_utilization =
        std::min(result.worst_utilization, outcome.utilization);
    result.worst_ratio = std::max(result.worst_ratio, outcome.ratio);
    result.any_violation |=
        outcome.efficiency_violation || outcome.fairness_violation;
    result.outcomes.push_back(std::move(outcome));
  }
  return result;
}

}  // namespace ccstarve
