// Bounded adversary search — our stand-in for the paper's CCAC SMT runs
// (§6.3 "we used CCAC to produce traces where the algorithm is either
// inefficient or more than s-unfair; CCAC was unable to produce such
// traces").
//
// We search a family of jitter schedules bounded by D (constants, square
// waves across periods, ACK quantizers, random walks), apply each to one
// flow of a two-flow scenario, and report the worst utilization and
// throughput ratio observed. Like CCAC over finite traces, finding nothing
// is evidence, not proof.
#pragma once

#include <string>
#include <vector>

#include "core/solo.hpp"
#include "sim/scenario.hpp"

namespace ccstarve {

struct JitterSearchConfig {
  Rate link_rate = Rate::mbps(20);
  TimeNs min_rtt = TimeNs::millis(100);
  TimeNs d = TimeNs::millis(10);  // adversary's budget
  TimeNs duration = TimeNs::seconds(60);
  double f = 0.3;  // efficiency floor to check
  double s = 4.0;  // fairness ceiling to check
  int random_schedules = 4;
  uint64_t seed = 1234;
  // Adversary onset: every schedule is wrapped in a DelayedOnsetJitter so
  // it starts perturbing at this sim time — the paper's constructions
  // attack an already-converged equilibrium, not the slow-start phase.
  // Zero (the default) keeps the legacy immediate-onset behaviour.
  TimeNs onset = TimeNs::zero();
  // With a non-zero onset, run the jitter-free two-flow warm-up once,
  // snapshot it just before the onset, and fork every schedule from that
  // snapshot instead of cold-running each (DESIGN.md §8). Outcomes are
  // identical either way; this only removes the repeated warm-ups.
  bool share_warmup = false;
};

struct ScheduleOutcome {
  std::string name;
  double utilization = 0.0;
  double ratio = 1.0;
  bool efficiency_violation = false;
  bool fairness_violation = false;
};

struct JitterSearchResult {
  std::vector<ScheduleOutcome> outcomes;
  double worst_utilization = 1.0;
  double worst_ratio = 1.0;
  bool any_violation = false;
};

JitterSearchResult search_jitter_adversary(const CcaMaker& maker,
                                           const JitterSearchConfig& cfg);

}  // namespace ccstarve
