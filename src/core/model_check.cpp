#include "core/model_check.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

namespace ccstarve {

int AbstractExpMapping::update(int cwnd, double measured_queue_rtt,
                               bool loss) const {
  if (loss) return std::max(1, cwnd / 2);
  // Target window from the exponential mapping mu(d) = mu- * s^((Rmax-d)/D),
  // evaluated on the measured queueing delay.
  const double exponent = (rmax_rtt_ - measured_queue_rtt) / d_rtt_;
  const double target = mu_minus_ * std::pow(s_, exponent);
  if (cwnd < target) return cwnd + 1;
  // Multiplicative decrease, at least one packet.
  return std::max(1, cwnd - std::max(1, cwnd / 8));
}

namespace {

struct State {
  int c1, c2;
  auto operator<=>(const State&) const = default;
};

struct Provenance {
  State parent;
  std::string choice;
};

}  // namespace

ModelCheckResult model_check(const AbstractCca& cca,
                             const ModelCheckConfig& cfg) {
  ModelCheckResult out;
  out.traces_represented = 1;
  for (int i = 0; i < cfg.horizon_rtts; ++i) {
    out.traces_represented *= 9;  // 3 jitter choices per flow per round
  }

  const double jitters[3] = {0.0, cfg.d_rtt / 2.0, cfg.d_rtt};
  const char* jitter_names[3] = {"0", "D/2", "D"};

  std::map<State, Provenance> layer;
  layer[{cfg.initial_cwnd1, cfg.initial_cwnd2}] = {{0, 0}, "start"};
  std::vector<std::map<State, Provenance>> history;

  for (int round = 0; round < cfg.horizon_rtts; ++round) {
    history.push_back(layer);
    std::map<State, Provenance> next;
    for (const auto& [st, _] : layer) {
      const int total = st.c1 + st.c2;
      const int queue = std::max(0, total - cfg.capacity_pkts_per_rtt);
      const bool overflow = queue > cfg.buffer_pkts;
      const double q_rtt =
          static_cast<double>(std::min(queue, cfg.buffer_pkts)) /
          cfg.capacity_pkts_per_rtt;

      // Loss assignment choices: none (no overflow) or adversary-chosen.
      struct LossChoice {
        bool l1, l2;
        const char* name;
      };
      std::vector<LossChoice> loss_choices;
      if (overflow && cfg.preferential_loss) {
        loss_choices = {{true, false, "loss:1"},
                        {false, true, "loss:2"},
                        {true, true, "loss:both"}};
      } else if (overflow) {
        loss_choices = {{true, true, "loss:both"}};
      } else {
        loss_choices = {{false, false, "noloss"}};
      }

      for (int j1 = 0; j1 < 3; ++j1) {
        for (int j2 = 0; j2 < 3; ++j2) {
          for (const LossChoice& lc : loss_choices) {
            State ns;
            ns.c1 = std::clamp(
                cca.update(st.c1, q_rtt + jitters[j1], lc.l1), 1,
                cfg.max_cwnd_pkts);
            ns.c2 = std::clamp(
                cca.update(st.c2, q_rtt + jitters[j2], lc.l2), 1,
                cfg.max_cwnd_pkts);
            ++out.states_explored;
            if (!next.count(ns)) {
              char buf[64];
              std::snprintf(buf, sizeof buf, "r%d j=(%s,%s) %s", round,
                            jitter_names[j1], jitter_names[j2], lc.name);
              next[ns] = {st, buf};
            }
          }
        }
      }
    }
    layer = std::move(next);
  }

  // Evaluate properties over the final layer and extract a witness.
  State worst{cfg.initial_cwnd1, cfg.initial_cwnd2};
  for (const auto& [st, _] : layer) {
    const double ratio =
        static_cast<double>(std::max(st.c1, st.c2)) /
        static_cast<double>(std::min(st.c1, st.c2));
    if (ratio > out.worst_final_ratio) {
      out.worst_final_ratio = ratio;
      worst = st;
    }
    const double util =
        std::min(1.0, static_cast<double>(st.c1 + st.c2) /
                          cfg.capacity_pkts_per_rtt);
    out.worst_final_utilization =
        std::min(out.worst_final_utilization, util);
  }

  if (out.worst_final_ratio > 1.0) {
    // Walk the provenance chain backwards.
    State cur = worst;
    std::map<State, Provenance> final_layer = layer;
    std::vector<std::string> rev;
    for (int round = cfg.horizon_rtts; round >= 1; --round) {
      const auto& lay =
          round == cfg.horizon_rtts ? final_layer : history[static_cast<size_t>(round)];
      const auto it = lay.find(cur);
      if (it == lay.end()) break;
      char buf[96];
      std::snprintf(buf, sizeof buf, "%s -> (%d, %d)",
                    it->second.choice.c_str(), cur.c1, cur.c2);
      rev.push_back(buf);
      cur = it->second.parent;
    }
    out.witness.assign(rev.rbegin(), rev.rend());
  }
  return out;
}

}  // namespace ccstarve
