// Bounded model checking of abstract CCA models — our in-C++ substitute for
// the paper's CCAC/SMT experiments (Appendix C extends CCAC to two flows;
// §5.4 "We used CCAC to prove that there is no trace of length 10 RTTs where
// starvation is unbounded for two AIMD flows when the bottleneck has 1 BDP
// of buffer").
//
// Like CCAC, the checker works on *models* of CCAs, not the packet-level
// implementations: time advances in RTT-sized rounds, windows take integer
// packet values, and the adversary chooses, every round,
//   * a per-flow non-congestive delay from {0, D/2, D}, and
//   * when the buffer overflows, which subset of flows takes the loss
//     (the §5.4 "the bursty flow is more likely to lose packets" knob).
// Exhaustive breadth-first search over all adversary strategies up to a
// horizon yields reachable (cwnd_1, cwnd_2) states; properties are checked
// over every reachable trace, so "no violation" is a proof for the model
// and the horizon, exactly like CCAC's finite-trace guarantees.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace ccstarve {

// One flow's abstract congestion controller: a deterministic window update.
class AbstractCca {
 public:
  virtual ~AbstractCca() = default;
  // `cwnd` in packets; `measured_queue_rtt` is the congestive queueing delay
  // plus the adversary's jitter, in units of the base RTT; `loss` is whether
  // this flow lost a packet this round. Returns the next cwnd (packets).
  virtual int update(int cwnd, double measured_queue_rtt,
                     bool loss) const = 0;
  virtual std::string name() const = 0;
};

// AIMD (Reno-like): +1 per round, halve on loss, ignore delay.
class AbstractAimd final : public AbstractCca {
 public:
  int update(int cwnd, double, bool loss) const override {
    return loss ? std::max(1, cwnd / 2) : cwnd + 1;
  }
  std::string name() const override { return "aimd"; }
};

// Vegas-like: keep `alpha` packets queued; +-1 based on inferred backlog.
// The inferred backlog uses the *measured* delay, which the adversary can
// inflate by up to D — the delay-convergent victim of Theorem 1.
class AbstractVegas final : public AbstractCca {
 public:
  explicit AbstractVegas(int alpha = 2) : alpha_(alpha) {}
  int update(int cwnd, double measured_queue_rtt, bool loss) const override {
    if (loss) return std::max(1, cwnd / 2);
    // Estimated own backlog: cwnd * queueing / (1 + queueing).
    const double diff = cwnd * measured_queue_rtt / (1.0 + measured_queue_rtt);
    if (diff < alpha_) return cwnd + 1;
    if (diff > alpha_ + 1) return std::max(1, cwnd - 1);
    return cwnd;
  }
  std::string name() const override { return "vegas"; }

 private:
  int alpha_;
};

// Algorithm-1-like: AIMD toward an exponential delay->rate target, so rates
// a factor s apart need delays D apart (§6.3). `d_rtt` is the designed
// jitter bound in base-RTT units.
class AbstractExpMapping final : public AbstractCca {
 public:
  AbstractExpMapping(double d_rtt = 0.25, double s = 2.0, double rmax_rtt = 2.0,
                     int mu_minus = 2)
      : d_rtt_(d_rtt), s_(s), rmax_rtt_(rmax_rtt), mu_minus_(mu_minus) {}
  int update(int cwnd, double measured_queue_rtt, bool loss) const override;
  std::string name() const override { return "exp-mapping"; }

 private:
  double d_rtt_, s_, rmax_rtt_;
  int mu_minus_;
};

struct ModelCheckConfig {
  int capacity_pkts_per_rtt = 10;  // C (also the BDP at 1 RTT)
  int buffer_pkts = 10;            // 1 BDP of buffer
  double d_rtt = 0.5;              // jitter bound D, in base-RTT units
  int horizon_rtts = 10;           // the paper's trace length
  int max_cwnd_pkts = 64;          // state-space clamp
  // Initial windows; (1, C) models "one flow was running, one just joined".
  int initial_cwnd1 = 1;
  int initial_cwnd2 = 10;
  // true: on overflow the adversary picks which flow loses (models biased /
  // non-congestive loss — §6.4: with it, "AIMD, Cubic and PCC Allegro all
  // suffer starvation"). false: overflow losses hit both flows (plain
  // drop-tail synchronization — the Appendix C setting where AIMD stays
  // bounded).
  bool preferential_loss = true;
};

struct ModelCheckResult {
  uint64_t states_explored = 0;
  uint64_t traces_represented;  // adversary branching ^ horizon (info only)
  // Worst cwnd ratio over all reachable states at the horizon.
  double worst_final_ratio = 1.0;
  // Worst sum of windows (utilization proxy) at the horizon, as a fraction
  // of capacity.
  double worst_final_utilization = 1.0;
  // A witness trace of per-round (jitter1, jitter2, loss assignment) choices
  // reaching the worst ratio (empty if the ratio is 1).
  std::vector<std::string> witness;
};

// Exhaustive BFS over adversary strategies for two flows running `cca`.
ModelCheckResult model_check(const AbstractCca& cca,
                             const ModelCheckConfig& config);

}  // namespace ccstarve
