#include "core/rate_delay.hpp"

#include <algorithm>
#include <cmath>

#include "util/parallel.hpp"

namespace ccstarve {

std::vector<RateDelayPoint> rate_delay_sweep(const CcaMaker& maker,
                                             const RateDelaySweepConfig& cfg) {
  std::vector<RateDelayPoint> out(static_cast<size_t>(cfg.points));
  const double lo = std::log10(cfg.min_rate.bits_per_sec());
  const double hi = std::log10(cfg.max_rate.bits_per_sec());
  // Each point is an independent solo run writing its own slot, so the
  // sweep result does not depend on the worker count.
  parallel_for(out.size(), cfg.jobs, [&](size_t i) {
    const double frac =
        cfg.points == 1 ? 0.0
                        : static_cast<double>(i) / (cfg.points - 1);
    SoloConfig sc;
    sc.link_rate = Rate::bps(std::pow(10.0, lo + frac * (hi - lo)));
    sc.min_rtt = cfg.min_rtt;
    sc.duration = cfg.duration;
    sc.trim_percent = cfg.trim_percent;
    const SoloResult r = run_solo(maker, sc);
    out[i] = {sc.link_rate, r.d_min_s, r.d_max_s, r.utilization()};
  });
  return out;
}

DelayBounds delay_bounds(const std::vector<RateDelayPoint>& sweep,
                         Rate lambda) {
  DelayBounds b{0.0, 0.0};
  for (const auto& p : sweep) {
    if (p.link_rate < lambda) continue;
    b.d_max_s = std::max(b.d_max_s, p.d_max_s);
    b.delta_max_s = std::max(b.delta_max_s, p.delta_s());
  }
  return b;
}

}  // namespace ccstarve
