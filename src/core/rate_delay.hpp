// Rate–delay sweeps: Figures 2 and 3 of the paper. For a fixed Rm, sweep the
// ideal-path link rate C over a log grid and record the converged delay
// range of a CCA at each point.
#pragma once

#include <vector>

#include "core/solo.hpp"

namespace ccstarve {

struct RateDelayPoint {
  Rate link_rate;
  double d_min_s;
  double d_max_s;
  double delta_s() const { return d_max_s - d_min_s; }
  double utilization;
};

struct RateDelaySweepConfig {
  Rate min_rate = Rate::mbps(0.1);
  Rate max_rate = Rate::mbps(100);
  int points = 13;  // log-spaced
  TimeNs min_rtt = TimeNs::millis(100);
  TimeNs duration = TimeNs::seconds(60);
  double trim_percent = 1.0;
  // Worker threads for the per-point solo runs (each owns its Scenario, so
  // results are identical to a serial sweep); 0 = one per hardware thread,
  // the default here and in sweep::SweepOptions::jobs — every parallel
  // knob in this codebase uses the machine unless told otherwise.
  unsigned jobs = 0;
};

// One solo run per grid point; points run across `jobs` workers, so with
// jobs != 1 the maker must be safe to invoke concurrently (the usual
// stateless make_unique lambdas are).
std::vector<RateDelayPoint> rate_delay_sweep(const CcaMaker& maker,
                                             const RateDelaySweepConfig& cfg);

// delta_max and d_max over all sweep points with C >= lambda
// (Definition 1's bounds, estimated empirically).
struct DelayBounds {
  double d_max_s;
  double delta_max_s;
};
DelayBounds delay_bounds(const std::vector<RateDelayPoint>& sweep,
                         Rate lambda);

}  // namespace ccstarve
