#include "core/rate_range.hpp"

#include <cmath>

namespace ccstarve {

double vegas_family_rate_range(const RateRangeParams& p) {
  return (p.rmax - p.rm).to_seconds() / p.d.to_seconds() * (1.0 - 1.0 / p.s);
}

double exponential_rate_range(const RateRangeParams& p) {
  const double exponent =
      (p.rmax - p.rm - p.d).to_seconds() / p.d.to_seconds();
  return std::pow(p.s, exponent);
}

double exponential_mu(const RateRangeParams& p, TimeNs rtt) {
  const double exponent =
      (p.rmax - (rtt - p.rm)).to_seconds() / p.d.to_seconds();
  return std::pow(p.s, exponent);
}

double vegas_family_mu_plus(const RateRangeParams& p) {
  // mu- corresponds to d = Rmax, i.e. mu- = alpha/(Rmax - Rm); in units of
  // mu-, mu+ = (Rmax - Rm)/D * (1 - 1/s).
  return vegas_family_rate_range(p);
}

}  // namespace ccstarve
