// §6.3: avoiding starvation in a bounded rate range.
//
// For jitter bound D, tolerable unfairness s and max delay Rmax, a rate-delay
// curve supports s-fair operation over [mu-, mu+] iff rates s apart map to
// delays more than D apart. The paper derives the figure of merit mu+/mu-:
//
//   Vegas family  mu(d) = alpha/(d - Rm):
//       mu+/mu- = (Rmax - Rm)/D * (1 - 1/s)            (Eq. 1)
//   Exponential   mu(d) = mu- * s^((Rmax - d)/D):
//       mu+/mu- = s^((Rmax - Rm - D)/D)                (Eq. 2)
//
// These closed forms drive the §6.3 table bench and are cross-checked
// against the JitterAware CCA's behaviour in tests.
#pragma once

#include "util/rate.hpp"
#include "util/time.hpp"

namespace ccstarve {

struct RateRangeParams {
  TimeNs d = TimeNs::millis(10);       // jitter bound D
  double s = 2.0;                      // tolerated throughput ratio
  TimeNs rm = TimeNs::zero();          // propagation RTT
  TimeNs rmax = TimeNs::millis(100);   // max tolerable RTT
};

// Eq. 1 figure of merit for the Vegas/FAST/Copa family.
double vegas_family_rate_range(const RateRangeParams& p);

// Eq. 2 figure of merit for the exponential mapping.
double exponential_rate_range(const RateRangeParams& p);

// The exponential mapping itself (Eq. 2), normalized to mu- = 1:
// mu(d)/mu- given queueing headroom d - Rm.
double exponential_mu(const RateRangeParams& p, TimeNs rtt);

// Largest rate (in multiples of mu-) at which the Vegas-family curve still
// separates rates s apart by more than D: mu+ = alpha/D * (1 - 1/s), with
// alpha expressed via mu- = alpha/(Rmax - Rm).
double vegas_family_mu_plus(const RateRangeParams& p);

}  // namespace ccstarve
