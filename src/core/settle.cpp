#include "core/settle.hpp"

#include <algorithm>
#include <cmath>

namespace ccstarve {

void SettlingDetector::trim(TimeNs now) {
  const TimeNs cutoff = now - config_.window;
  while (!rtt_.empty() && rtt_.front().at < cutoff) {
    const Sample s = rtt_.front();
    rtt_.pop_front();
    rtt_sum_ -= s.value;
    if (!band_dirty_ && (s.value <= rtt_min_ || s.value >= rtt_max_)) {
      band_dirty_ = true;
    }
  }
  while (!delivered_.empty() && delivered_.front().at < cutoff) {
    delivered_.pop_front();
  }
}

void SettlingDetector::refresh_band() const {
  rtt_min_ = rtt_.empty() ? 0.0 : rtt_.front().value;
  rtt_max_ = rtt_min_;
  for (const Sample& s : rtt_) {
    rtt_min_ = std::min(rtt_min_, s.value);
    rtt_max_ = std::max(rtt_max_, s.value);
  }
  band_dirty_ = false;
}

void SettlingDetector::add_rtt(TimeNs at, double rtt_s) {
  if (rtt_.empty()) {
    rtt_min_ = rtt_max_ = rtt_s;
    band_dirty_ = false;
  } else if (!band_dirty_) {
    rtt_min_ = std::min(rtt_min_, rtt_s);
    rtt_max_ = std::max(rtt_max_, rtt_s);
  }
  rtt_.push_back(Sample{at, rtt_s});
  rtt_sum_ += rtt_s;
  trim(at);
}

void SettlingDetector::add_delivered(TimeNs at, double delivered_bytes) {
  delivered_.push_back(Sample{at, delivered_bytes});
  trim(at);
}

double SettlingDetector::window_rate_bytes_per_s() const {
  if (delivered_.size() < 2) return 0.0;
  const double span_s =
      (delivered_.back().at - delivered_.front().at).to_seconds();
  if (span_s <= 0.0) return 0.0;
  return (delivered_.back().value - delivered_.front().value) / span_s;
}

bool SettlingDetector::settled() const {
  if (rtt_.size() < config_.min_rtt_samples) return false;
  if (delivered_.size() < 4) return false;
  // Coverage: both series must actually span (most of) the window — a burst
  // of samples after a long silence is not evidence of a steady state.
  const double need_span_s = config_.window.to_seconds() * 0.8;
  if ((rtt_.back().at - rtt_.front().at).to_seconds() < need_span_s) {
    return false;
  }
  if ((delivered_.back().at - delivered_.front().at).to_seconds() <
      need_span_s) {
    return false;
  }
  // RTT band: max - min small relative to the mean.
  if (band_dirty_) refresh_band();
  const double band = rtt_max_ - rtt_min_;
  if (band >
      config_.band_frac * rtt_mean_s() + config_.band_floor.to_seconds()) {
    return false;
  }
  // Half-window delivery rates agree (the throughput trajectory is flat).
  const TimeNs mid =
      delivered_.front().at + (delivered_.back().at - delivered_.front().at) / 2.0;
  const auto at_less = [](const Sample& s, TimeNs t) { return s.at < t; };
  const auto it =
      std::lower_bound(delivered_.begin(), delivered_.end(), mid, at_less);
  if (it == delivered_.begin() || it == delivered_.end()) return false;
  const auto rate = [](const Sample& a, const Sample& b) {
    const double span_s = (b.at - a.at).to_seconds();
    return span_s <= 0.0 ? 0.0 : (b.value - a.value) / span_s;
  };
  const double r1 = rate(delivered_.front(), *it);
  const double r2 = rate(*it, delivered_.back());
  if (r1 <= 0.0 || r2 <= 0.0) return false;
  return std::abs(r1 - r2) <= config_.rate_agree_frac * std::max(r1, r2);
}

void SettlingDetector::reset() {
  rtt_.clear();
  delivered_.clear();
  rtt_sum_ = 0.0;
  rtt_min_ = rtt_max_ = 0.0;
  band_dirty_ = false;
}

TimeNs earliest_settled(const TimeSeries& rtt_seconds,
                        const TimeSeries& delivered_bytes,
                        const SettleConfig& config) {
  SettlingDetector det(config);
  const auto& rs = rtt_seconds.samples();
  const auto& ds = delivered_bytes.samples();
  size_t ri = 0, di = 0;
  while (ri < rs.size() || di < ds.size()) {
    const bool take_rtt =
        di >= ds.size() || (ri < rs.size() && rs[ri].at <= ds[di].at);
    if (take_rtt) {
      det.add_rtt(rs[ri].at, rs[ri].value);
      if (det.settled()) return rs[ri].at;
      ++ri;
    } else {
      det.add_delivered(ds[di].at, ds[di].value);
      if (det.settled()) return ds[di].at;
      ++di;
    }
  }
  return TimeNs(-1);
}

}  // namespace ccstarve
