// Online settling detector: the "converged region" heuristic of core/solo,
// generalized from a fixed trailing fraction of a finished run into an
// incremental detector that can watch a live trajectory.
//
// A flow is *settled* when, over a trailing window,
//   * enough RTT samples cover the window,
//   * the RTT band (max - min) is small relative to its mean, and
//   * the delivery rate over the first and second half of the window agree —
// i.e. both the delay and the throughput trajectory have flattened out.
// run_solo's detector mode uses it post-hoc to find the earliest converged
// point; the fast-forward engine (sim/warp) uses it online to decide when a
// packet run has reached the equilibrium its fluid model describes.
#pragma once

#include <cstddef>
#include <deque>

#include "util/series.hpp"
#include "util/time.hpp"

namespace ccstarve {

struct SettleConfig {
  // Trailing window the decision looks at.
  TimeNs window = TimeNs::seconds(5);
  // Minimum RTT samples inside the window (sparse series never settle).
  size_t min_rtt_samples = 16;
  // RTT band test: (max - min) <= band_frac * mean + band_floor.
  double band_frac = 0.10;
  TimeNs band_floor = TimeNs::millis(2);
  // Half-window delivery rates must agree within this relative fraction.
  double rate_agree_frac = 0.10;
};

class SettlingDetector {
 public:
  SettlingDetector() = default;
  explicit SettlingDetector(const SettleConfig& config) : config_(config) {}

  const SettleConfig& config() const { return config_; }

  // Feed samples in nondecreasing time order. `delivered_bytes` is the
  // flow's cumulative delivered-byte counter.
  void add_rtt(TimeNs at, double rtt_s);
  void add_delivered(TimeNs at, double delivered_bytes);

  // True when the trailing window ending at the newest sample passes all
  // three tests. Constant-time against the trimmed window.
  bool settled() const;

  // Mean delivery rate (bytes/s) across the window; 0 until two delivered
  // samples are present. This is the packet-measured equilibrium rate the
  // warp engine credits flows with across a warp.
  double window_rate_bytes_per_s() const;

  // RTT band over the window (seconds); meaningful only once samples exist.
  double rtt_min_s() const { return rtt_min_; }
  double rtt_max_s() const { return rtt_max_; }
  double rtt_mean_s() const {
    return rtt_.empty() ? 0.0 : rtt_sum_ / static_cast<double>(rtt_.size());
  }

  // Forget everything (e.g. after a warp lands in a fresh regime).
  void reset();

 private:
  struct Sample {
    TimeNs at;
    double value;
  };

  void trim(TimeNs now);
  void refresh_band() const;

  SettleConfig config_;
  std::deque<Sample> rtt_;
  std::deque<Sample> delivered_;
  double rtt_sum_ = 0.0;
  // Band cache, recomputed lazily when eviction removed an extremum.
  mutable double rtt_min_ = 0.0;
  mutable double rtt_max_ = 0.0;
  mutable bool band_dirty_ = false;
};

// Post-hoc convenience shared by run_solo's detector mode: feeds the two
// finished series through a detector and returns the earliest time at which
// it reports settled, or TimeNs(-1) if it never does.
TimeNs earliest_settled(const TimeSeries& rtt_seconds,
                        const TimeSeries& delivered_bytes,
                        const SettleConfig& config);

}  // namespace ccstarve
