#include "core/solo.hpp"

#include <utility>

#include "util/stats.hpp"

namespace ccstarve {

SoloResult run_solo(const CcaMaker& maker, const SoloConfig& config) {
  ScenarioConfig sc;
  sc.link_rate = config.link_rate;
  auto scenario = std::make_unique<Scenario>(std::move(sc));

  FlowSpec spec;
  spec.cca = maker();
  spec.min_rtt = config.min_rtt;
  scenario->add_flow(std::move(spec));
  scenario->run_until(config.duration);

  SoloResult out;
  out.link_rate = config.link_rate;
  out.min_rtt = config.min_rtt;
  out.rtt = scenario->stats(0).rtt_seconds;
  out.delivered_bytes = scenario->stats(0).delivered_bytes;
  out.end_time = config.duration;
  out.converged_from = config.duration * (1.0 - config.converged_fraction);
  if (config.use_settling_detector) {
    const TimeNs settled_at =
        earliest_settled(out.rtt, out.delivered_bytes, config.settle);
    if (settled_at != TimeNs(-1) && settled_at < config.duration) {
      out.converged_from = settled_at;
    }
  }

  if (!out.rtt.empty()) {
    if (config.trim_percent > 0.0) {
      std::vector<double> window;
      for (const auto& s : out.rtt.samples()) {
        if (s.at >= out.converged_from) window.push_back(s.value);
      }
      out.d_min_s = percentile(window, config.trim_percent);
      out.d_max_s = percentile(window, 100.0 - config.trim_percent);
    } else {
      out.d_min_s = out.rtt.min_over(out.converged_from, out.end_time);
      out.d_max_s = out.rtt.max_over(out.converged_from, out.end_time);
    }
  }
  out.throughput =
      scenario->throughput(0, out.converged_from, out.end_time);
  out.scenario = std::move(scenario);
  return out;
}

std::optional<TimeNs> convergence_time(const TimeSeries& rtt, double d_min_s,
                                       double d_max_s, double tolerance_s) {
  if (rtt.empty()) return std::nullopt;
  const double lo = d_min_s - tolerance_s;
  const double hi = d_max_s + tolerance_s;
  // Scan backwards for the last excursion; T is just after it.
  const auto& samples = rtt.samples();
  for (size_t i = samples.size(); i-- > 0;) {
    if (samples[i].value < lo || samples[i].value > hi) {
      if (i + 1 >= samples.size()) return std::nullopt;
      return samples[i + 1].at;
    }
  }
  return rtt.front_time();
}

}  // namespace ccstarve
