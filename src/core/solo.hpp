// Solo ("ideal path") runs: the measurement primitive of the paper's
// Definition 1. A CCA runs alone on a constant-rate, fixed-Rm, deep-buffer
// path; we record its RTT and delivery trajectories and extract the
// converged delay range [d_min(C), d_max(C)] and delta(C).
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "cc/cca.hpp"
#include "core/settle.hpp"
#include "sim/scenario.hpp"
#include "util/rate.hpp"
#include "util/series.hpp"
#include "util/time.hpp"

namespace ccstarve {

// Creates a fresh CCA instance for each run of a sweep.
using CcaMaker = std::function<std::unique_ptr<Cca>()>;

struct SoloConfig {
  Rate link_rate = Rate::mbps(10);
  TimeNs min_rtt = TimeNs::millis(100);
  TimeNs duration = TimeNs::seconds(60);
  // The converged region is taken as the last `converged_fraction` of the
  // run (after inspecting that the trajectory has settled, benches may
  // choose a longer duration instead of a cleverer detector — this matches
  // how the paper eyeballs Fig. 1's "converged region").
  double converged_fraction = 0.5;
  // Drop the most extreme tail when reporting d_min/d_max so one stray
  // sample (e.g. a ProbeRTT dip) does not define the range; 0 = strict.
  double trim_percent = 0.0;
  // Detector-driven converged region: when set, converged_from becomes the
  // earliest time the online settling detector (core/settle.hpp) reports
  // settled, falling back to the fraction above when it never does. Off by
  // default so existing bench numbers are unchanged.
  bool use_settling_detector = false;
  SettleConfig settle;
};

struct SoloResult {
  // Scenario kept alive so callers can transplant the converged CCA.
  std::unique_ptr<Scenario> scenario;
  Rate link_rate;
  TimeNs min_rtt;
  // Full trajectories (seconds on the value axis for RTT).
  TimeSeries rtt;
  TimeSeries delivered_bytes;
  // Start of the converged window used for the delay range.
  TimeNs converged_from;
  TimeNs end_time;
  // Converged delay range, in seconds.
  double d_min_s = 0.0;
  double d_max_s = 0.0;
  double delta_s() const { return d_max_s - d_min_s; }
  // Long-term throughput over the converged window.
  Rate throughput;
  double utilization() const { return throughput / link_rate; }
  // RTT trajectory over the converged window, time-shifted to start at 0:
  // the paper's d-bar_i(t).
  TimeSeries converged_rtt() const {
    return rtt.shifted_window(converged_from, end_time);
  }
};

// Runs `maker()`'s CCA alone on the ideal path described by `config`.
SoloResult run_solo(const CcaMaker& maker, const SoloConfig& config);

// Definition 1's convergence time T: the first instant after which every
// RTT sample lies within [d_min - tolerance, d_max + tolerance]. Returns
// nullopt if even the final sample is outside the band (not converged).
std::optional<TimeNs> convergence_time(const TimeSeries& rtt, double d_min_s,
                                       double d_max_s, double tolerance_s);

}  // namespace ccstarve
