#include "core/theorem1.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace ccstarve {

PigeonholeSummary PigeonholePair::summary() const {
  PigeonholeSummary s;
  s.found = found;
  s.dmax_by_step_s = dmax_by_step_s;
  s.c1_mbps = slow.link_rate.to_mbps();
  s.c2_mbps = fast.link_rate.to_mbps();
  s.dmax1_s = slow.d_max_s;
  s.dmax2_s = fast.d_max_s;
  s.dmax_gap_s = dmax_gap_s;
  s.delta_max_s = delta_max_s;
  s.x1_mbps = slow.throughput.to_mbps();
  s.x2_mbps = fast.throughput.to_mbps();
  return s;
}

PigeonholePair find_rate_pair(const CcaMaker& maker,
                              const PigeonholeConfig& cfg) {
  PigeonholePair out;
  const double step_factor = cfg.s / cfg.f;

  std::vector<SoloResult> runs;
  runs.reserve(static_cast<size_t>(cfg.max_steps));
  for (int i = 0; i < cfg.max_steps; ++i) {
    SoloConfig sc;
    sc.link_rate = cfg.lambda * std::pow(step_factor, i);
    sc.min_rtt = cfg.min_rtt;
    sc.duration = cfg.duration;
    sc.trim_percent = 1.0;
    runs.push_back(run_solo(maker, sc));
    out.dmax_by_step_s.push_back(runs.back().d_max_s);
    out.delta_max_s = std::max(out.delta_max_s, runs.back().delta_s());
  }

  // Best colliding pair: adjacent-or-not i < j minimizing the d_max gap.
  int best_i = -1, best_j = -1;
  double best_gap = 1e300;
  for (size_t i = 0; i < runs.size(); ++i) {
    for (size_t j = i + 1; j < runs.size(); ++j) {
      const double gap = std::abs(runs[i].d_max_s - runs[j].d_max_s);
      if (gap < best_gap) {
        best_gap = gap;
        best_i = static_cast<int>(i);
        best_j = static_cast<int>(j);
      }
    }
  }
  if (best_i < 0) return out;
  out.found = best_gap < cfg.epsilon_s;
  out.dmax_gap_s = best_gap;
  out.slow = std::move(runs[static_cast<size_t>(best_i)]);
  out.fast = std::move(runs[static_cast<size_t>(best_j)]);
  return out;
}

namespace {

// Builds the per-flow emulation target trajectory: the converged window for
// transplant mode, or the full solo trajectory for cold start.
TimeSeries target_for(const SoloResult& solo, bool transplant) {
  if (transplant) return solo.converged_rtt();
  TimeSeries full = solo.rtt;
  return full;
}

}  // namespace

EmulationOutcome emulate_two_flow(const CcaMaker& maker, PigeonholePair pair,
                                  const EmulationConfig& cfg) {
  EmulationOutcome out;

  ScenarioConfig sc;
  sc.link_rate = pair.slow.link_rate + pair.fast.link_rate;
  sc.jitter_budget = cfg.jitter_budget_d;
  sc.prefill_bytes = cfg.prefill_bytes;
  auto scenario = std::make_unique<Scenario>(std::move(sc));

  auto add = [&](SoloResult& solo) {
    FlowSpec spec;
    if (cfg.transplant) {
      // The proof's initial condition: the flow continues from its
      // converged state. Internal CCA timestamps are shifted from the solo
      // timeline (which ended at solo.end_time) onto the new one (t = 0).
      spec.cca = solo.scenario->sender(0).take_cca();
      spec.cca->rebase_time(TimeNs::zero() - solo.end_time);
    } else {
      spec.cca = maker();
    }
    spec.min_rtt = solo.min_rtt;
    spec.ack_jitter = std::make_unique<DelayEmulationJitter>(
        target_for(solo, cfg.transplant), /*loop=*/cfg.transplant);
    scenario->add_flow(std::move(spec));
  };
  add(pair.slow);
  add(pair.fast);

  scenario->run_until(cfg.duration);

  const TimeNs from = cfg.duration * cfg.measure_from_fraction;
  out.throughput_slow_mbps =
      scenario->throughput(0, from, cfg.duration).to_mbps();
  out.throughput_fast_mbps =
      scenario->throughput(1, from, cfg.duration).to_mbps();
  out.ratio = out.throughput_slow_mbps > 0.0
                  ? out.throughput_fast_mbps / out.throughput_slow_mbps
                  : 1e9;
  out.slow_jitter = scenario->ack_jitter_stats(0);
  out.fast_jitter = scenario->ack_jitter_stats(1);
  out.scenario = std::move(scenario);
  return out;
}

Theorem1Report run_theorem1(const CcaMaker& maker, const PigeonholeConfig& pg,
                            EmulationConfig emu) {
  Theorem1Report report;
  PigeonholePair pair = find_rate_pair(maker, pg);
  report.pigeonhole = pair.summary();
  if (!pair.found) return report;
  // D = 2*delta_max + 2*epsilon, the theorem's threshold.
  report.d_used =
      TimeNs::seconds(2.0 * pair.delta_max_s + 2.0 * pg.epsilon_s);
  emu.jitter_budget_d = report.d_used;
  report.outcome = emulate_two_flow(maker, std::move(pair), emu);
  return report;
}

}  // namespace ccstarve
