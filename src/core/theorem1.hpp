// Constructive machinery of Theorem 1: starvation is inevitable for
// deterministic, f-efficient, delay-convergent CCAs when D > 2*delta_max.
//
// Step 1 (pigeonhole): scan the geometric rate sequence lambda*(s/f)^i until
//   two rates C1 << C2 have converged d_max within epsilon of each other.
// Step 2 is implicit: the solo runs at C1 and C2 give throughputs >= s apart.
// Step 3 (emulation): run both flows on one link of rate C1+C2 and drive
//   each flow's ACK path with a DelayEmulationJitter so it observes exactly
//   its solo delay trajectory d-bar_i(t). The jitter boxes audit that the
//   non-congestive delay they had to add stayed within [0, D].
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/solo.hpp"
#include "sim/jitter.hpp"
#include "sim/scenario.hpp"

namespace ccstarve {

struct PigeonholeConfig {
  double f = 0.5;          // assumed efficiency of the CCA
  double s = 8.0;          // target starvation ratio
  Rate lambda = Rate::mbps(1);
  // Two rates "collide" when their d_max differ by less than this (the
  // proof's epsilon; Step 1 guarantees a collision exists for any eps > 0).
  double epsilon_s = 0.005;
  int max_steps = 5;       // rates lambda*(s/f)^0 .. ^(max_steps-1)
  TimeNs min_rtt = TimeNs::millis(100);
  TimeNs duration = TimeNs::seconds(60);
};

// Copyable digest of a pigeonhole search (what benches print).
struct PigeonholeSummary {
  bool found = false;
  std::vector<double> dmax_by_step_s;  // diagnostics: d_max at each rate
  double c1_mbps = 0.0, c2_mbps = 0.0;
  double dmax1_s = 0.0, dmax2_s = 0.0;
  double dmax_gap_s = 0.0;
  // delta_max over the scanned rates (empirical Definition 1 bound).
  double delta_max_s = 0.0;
  // Solo throughputs x1, x2 (Step 2 of the proof).
  double x1_mbps = 0.0, x2_mbps = 0.0;
};

struct PigeonholePair {
  bool found = false;
  std::vector<double> dmax_by_step_s;
  SoloResult slow;  // the C1 run
  SoloResult fast;  // the C2 run
  double dmax_gap_s = 0.0;
  double delta_max_s = 0.0;

  PigeonholeSummary summary() const;
};

PigeonholePair find_rate_pair(const CcaMaker& maker,
                              const PigeonholeConfig& cfg);

struct EmulationConfig {
  // The model's non-congestive delay bound D. The construction needs
  // D > 2*delta_max; the caller typically sets it from the pigeonhole
  // result.
  TimeNs jitter_budget_d = TimeNs::millis(25);
  TimeNs duration = TimeNs::seconds(30);
  // Converged-state transplant (the proof's construction) vs. starting both
  // flows cold and replaying the full solo trajectories (works because the
  // CCA is deterministic; transients may briefly exceed the budget).
  bool transplant = true;
  uint64_t prefill_bytes = 0;
  // Measurement window start for the reported throughputs.
  double measure_from_fraction = 0.2;
};

struct EmulationOutcome {
  std::unique_ptr<Scenario> scenario;
  double throughput_slow_mbps = 0.0;
  double throughput_fast_mbps = 0.0;
  double ratio = 1.0;
  // Emulation audit: how much non-congestive delay was needed.
  JitterBox::Stats slow_jitter;
  JitterBox::Stats fast_jitter;
};

// Step 3: the two-flow scenario. `maker` is only used in cold-start mode.
EmulationOutcome emulate_two_flow(const CcaMaker& maker, PigeonholePair pair,
                                  const EmulationConfig& cfg);

// End-to-end driver: Step 1 + Step 3 with D = 2*delta_max + 2*epsilon.
struct Theorem1Report {
  PigeonholeSummary pigeonhole;
  std::optional<EmulationOutcome> outcome;
  TimeNs d_used = TimeNs::zero();
};
Theorem1Report run_theorem1(const CcaMaker& maker, const PigeonholeConfig& pg,
                            EmulationConfig emu);

}  // namespace ccstarve
