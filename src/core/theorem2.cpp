#include "core/theorem2.hpp"

#include <utility>

namespace ccstarve {

Theorem2Outcome run_theorem2(const CcaMaker& maker,
                             const Theorem2Config& cfg) {
  Theorem2Outcome out;

  SoloConfig solo_cfg;
  solo_cfg.link_rate = cfg.modest_rate;
  solo_cfg.min_rtt = cfg.min_rtt;
  solo_cfg.duration = cfg.solo_duration;
  SoloResult solo = run_solo(maker, solo_cfg);
  out.solo_throughput_mbps = solo.throughput.to_mbps();

  ScenarioConfig sc;
  sc.link_rate = cfg.huge_rate;
  // The replay must only need up to d_max(C) - Rm of non-congestive delay.
  sc.jitter_budget = TimeNs::seconds(solo.d_max_s) - cfg.min_rtt;
  auto scenario = std::make_unique<Scenario>(std::move(sc));

  FlowSpec spec;
  spec.cca = maker();  // fresh deterministic CCA: cold-start replay
  spec.min_rtt = cfg.min_rtt;
  spec.ack_jitter =
      std::make_unique<DelayEmulationJitter>(solo.rtt, /*loop=*/false);
  scenario->add_flow(std::move(spec));
  scenario->run_until(cfg.emu_duration);

  out.emulated_throughput_mbps = scenario->throughput(0).to_mbps();
  out.utilization = out.emulated_throughput_mbps / cfg.huge_rate.to_mbps();
  out.max_jitter_needed = scenario->ack_jitter_stats(0).max_added;
  out.scenario = std::move(scenario);
  return out;
}

}  // namespace ccstarve
