// Theorem 2: a deterministic CCA whose converged delay is within the jitter
// budget (d_max(C) - Rm <= D of non-congestive headroom) can be driven to
// arbitrarily low utilization. Construction: record the CCA's solo delay
// trajectory on a modest link C, then replay it as pure non-congestive delay
// on a link C' >> C. The deterministic CCA sends exactly as it did at rate
// ~C, so utilization ~ C/C' -> 0 as C' grows.
#pragma once

#include <memory>

#include "core/solo.hpp"
#include "sim/jitter.hpp"
#include "sim/scenario.hpp"

namespace ccstarve {

struct Theorem2Config {
  Rate modest_rate = Rate::mbps(5);     // C: where the trajectory is recorded
  Rate huge_rate = Rate::mbps(500);     // C': the actual (wasted) link
  TimeNs min_rtt = TimeNs::millis(100);
  TimeNs solo_duration = TimeNs::seconds(40);
  TimeNs emu_duration = TimeNs::seconds(40);
};

struct Theorem2Outcome {
  std::unique_ptr<Scenario> scenario;
  double solo_throughput_mbps = 0.0;   // ~ C
  double emulated_throughput_mbps = 0.0;
  double utilization = 1.0;            // emulated throughput / C'
  // Max non-congestive delay the replay needed (must be <= d_max(C) - Rm
  // when the queue at C' stays empty).
  TimeNs max_jitter_needed = TimeNs::zero();
};

Theorem2Outcome run_theorem2(const CcaMaker& maker, const Theorem2Config& cfg);

}  // namespace ccstarve
