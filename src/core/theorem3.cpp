#include "core/theorem3.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "sim/jitter.hpp"

namespace ccstarve {

namespace {
// Keeps strong-model windows finite (throughput legitimately diverges as the
// perceived queueing delay goes to zero; the proof only needs "very large").
constexpr uint64_t kStrongModelCwndCap = uint64_t{20000} * kMss;
}  // namespace

Theorem3Outcome run_theorem3(const CcaMaker& maker,
                             const Theorem3Config& cfg) {
  Theorem3Outcome out;

  // Trace 0: ordinary ideal link at rate lambda.
  SoloConfig solo_cfg;
  solo_cfg.link_rate = cfg.lambda;
  solo_cfg.min_rtt = cfg.min_rtt;
  solo_cfg.duration = cfg.duration;
  SoloResult trace0 = run_solo(maker, solo_cfg);
  out.trace_throughputs_mbps.push_back(
      Rate::from_bytes_over(trace0.scenario->sender(0).delivered_bytes(),
                            cfg.duration)
          .to_mbps());

  // q_0(t) = observed RTT - Rm; D = max_t q_0(t) over the converged window
  // (the supremum the proof uses; taking it post-convergence keeps D tight
  // instead of letting the slow-start transient dominate).
  auto q0 = std::make_shared<TimeSeries>(trace0.rtt);
  const double rm_s = cfg.min_rtt.to_seconds();
  const double max_q =
      trace0.rtt.max_over(trace0.converged_from, trace0.end_time) - rm_s;
  out.d = TimeNs::seconds(max_q);

  // Traces k >= 1: delay servers imposing q_k(t) = max(0, q_0(t) - k*D).
  auto make_delay_fn = [q0, rm_s, max_q](int k) {
    return [q0, rm_s, max_q, k](TimeNs arrival) {
      const double q = q0->at(arrival) - rm_s - k * max_q;
      return TimeNs::seconds(std::max(0.0, q));
    };
  };

  double prev = out.trace_throughputs_mbps[0];
  for (int k = 1; k <= cfg.max_traces; ++k) {
    ScenarioConfig sc;
    sc.delay_server = make_delay_fn(k);
    Scenario scenario(std::move(sc));
    FlowSpec spec;
    spec.cca = maker();
    spec.min_rtt = cfg.min_rtt;
    spec.max_cwnd_bytes = kStrongModelCwndCap;
    scenario.add_flow(std::move(spec));
    scenario.run_until(cfg.duration);
    const double tput = scenario.throughput(0).to_mbps();
    out.trace_throughputs_mbps.push_back(tput);

    const double ratio =
        std::max(tput, prev) / std::max(std::min(tput, prev), 1e-9);
    if (ratio > cfg.s) {
      out.found_pair = true;
      out.slow_trace = k - 1;
      break;
    }
    prev = tput;
  }
  if (!out.found_pair) return out;

  // Two-flow demo over the faster trace's delay server. The slow flow's
  // non-congestive element re-creates trace `slow_trace`'s delay trajectory
  // (it must add at most (slow_trace+1)*D, which is within the per-flow
  // budget the iterated construction grants); the fast flow's element adds
  // nothing and so it sees the fast trace.
  ScenarioConfig sc;
  sc.delay_server = make_delay_fn(out.slow_trace + 1);
  sc.jitter_budget = out.d * static_cast<double>(out.slow_trace + 1);
  auto scenario = std::make_unique<Scenario>(std::move(sc));
  for (int i = 0; i < 2; ++i) {
    FlowSpec spec;
    spec.cca = maker();
    spec.min_rtt = cfg.min_rtt;
    spec.max_cwnd_bytes = kStrongModelCwndCap;
    if (i == 0) {
      TimeSeries target;
      if (out.slow_trace == 0) {
        target = trace0.rtt;
      } else {
        // Trace k's delays are q_0 reduced by k*D; rebuild the trajectory.
        const double reduce = static_cast<double>(out.slow_trace) * max_q;
        for (const auto& smp : q0->samples()) {
          target.add(smp.at,
                     rm_s + std::max(0.0, smp.value - rm_s - reduce));
        }
      }
      spec.ack_jitter =
          std::make_unique<DelayEmulationJitter>(std::move(target));
    }
    scenario->add_flow(std::move(spec));
  }
  scenario->run_until(cfg.duration);
  out.slow_throughput_mbps = scenario->throughput(0).to_mbps();
  out.fast_throughput_mbps = scenario->throughput(1).to_mbps();
  out.ratio = out.fast_throughput_mbps /
              std::max(out.slow_throughput_mbps, 1e-9);
  out.scenario = std::move(scenario);
  return out;
}

}  // namespace ccstarve
