// Theorem 3 ("absolute upper bound", §6.5 / Appendix B): in the strong model
// — where the adversary controls the queueing-delay pattern outright — any
// deterministic, f-efficient, delay-bounding CCA starves, even without
// controlling initial conditions.
//
// Constructive search, following Appendix B:
//   trace_0: ideal link at rate lambda, observed queueing delay q_0(t);
//            D := max_t q_0(t).
//   trace_{k+1}: delay-server imposing q_{k+1}(t) = max(0, q_k(t) - D).
//   Stop at the first k where throughput(k+1)/throughput(k) > s; the two-flow
//   demo then runs both flows over the q_{k+1} delay server and gives one
//   flow a constant extra D of non-congestive delay: that flow sees q_k
//   exactly and reproduces the slow trace.
#pragma once

#include <memory>
#include <vector>

#include "core/solo.hpp"
#include "sim/scenario.hpp"

namespace ccstarve {

struct Theorem3Config {
  Rate lambda = Rate::mbps(5);
  TimeNs min_rtt = TimeNs::millis(50);
  TimeNs duration = TimeNs::seconds(40);
  double s = 4.0;      // starvation ratio to exhibit
  int max_traces = 12; // ceil(Q/D) bound from the proof
};

struct Theorem3Outcome {
  // Throughput of each constructed single-flow trace, Mbit/s.
  std::vector<double> trace_throughputs_mbps;
  TimeNs d = TimeNs::zero();  // the proof's D = max delay of trace 0
  bool found_pair = false;
  int slow_trace = -1;  // index k whose successor is > s faster
  // Two-flow demo results.
  double slow_throughput_mbps = 0.0;
  double fast_throughput_mbps = 0.0;
  double ratio = 1.0;
  std::unique_ptr<Scenario> scenario;
};

Theorem3Outcome run_theorem3(const CcaMaker& maker, const Theorem3Config& cfg);

}  // namespace ccstarve
