#include "emu/trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace ccstarve {

DeliveryTrace::DeliveryTrace(std::vector<TimeNs> opportunities)
    : opportunities_(std::move(opportunities)) {
  if (!std::is_sorted(opportunities_.begin(), opportunities_.end())) {
    throw std::runtime_error("delivery trace timestamps must be sorted");
  }
}

DeliveryTrace DeliveryTrace::parse(std::istream& in) {
  std::vector<TimeNs> opps;
  std::string line;
  int64_t prev = -1;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    int64_t ms = 0;
    try {
      size_t pos = 0;
      ms = std::stoll(line, &pos);
      if (pos != line.size()) throw std::invalid_argument(line);
    } catch (const std::exception&) {
      throw std::runtime_error("trace line " + std::to_string(lineno) +
                               ": expected integer milliseconds, got '" +
                               line + "'");
    }
    if (ms < prev) {
      throw std::runtime_error("trace line " + std::to_string(lineno) +
                               ": timestamps must be non-decreasing");
    }
    prev = ms;
    opps.push_back(TimeNs::millis(static_cast<double>(ms)));
  }
  return DeliveryTrace(std::move(opps));
}

DeliveryTrace DeliveryTrace::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return parse(in);
}

void DeliveryTrace::write(std::ostream& out) const {
  for (const TimeNs t : opportunities_) {
    out << static_cast<int64_t>(t.to_millis()) << '\n';
  }
}

void DeliveryTrace::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write trace file: " + path);
  write(out);
}

DeliveryTrace DeliveryTrace::constant(Rate rate, TimeNs duration) {
  std::vector<TimeNs> opps;
  const double interval_s = static_cast<double>(kMss) / rate.bytes_per_second();
  const auto n = static_cast<size_t>(duration.to_seconds() / interval_s);
  opps.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Snap to the millisecond grid like Mahimahi's saved traces.
    const double ms = std::floor((i + 1) * interval_s * 1e3);
    opps.push_back(TimeNs::millis(ms));
  }
  return DeliveryTrace(std::move(opps));
}

DeliveryTrace DeliveryTrace::sawtooth(Rate lo, Rate hi, TimeNs period,
                                      TimeNs duration) {
  std::vector<TimeNs> opps;
  // Integrate the instantaneous rate in 1 ms steps; emit an opportunity per
  // accumulated MTU.
  double accumulated_bytes = 0.0;
  for (int64_t ms = 0; ms < static_cast<int64_t>(duration.to_millis()); ++ms) {
    const double phase =
        std::fmod(static_cast<double>(ms), period.to_millis()) /
        period.to_millis();
    const double tri = phase < 0.5 ? 2.0 * phase : 2.0 * (1.0 - phase);
    const Rate rate = lo + (hi - lo) * tri;
    accumulated_bytes += rate.bytes_per_second() * 1e-3;
    while (accumulated_bytes >= kMss) {
      accumulated_bytes -= kMss;
      opps.push_back(TimeNs::millis(static_cast<double>(ms)));
    }
  }
  return DeliveryTrace(std::move(opps));
}

DeliveryTrace DeliveryTrace::poisson(Rate mean_rate, TimeNs duration,
                                     uint64_t seed) {
  std::vector<TimeNs> opps;
  Rng rng(seed);
  const double mean_interval_s =
      static_cast<double>(kMss) / mean_rate.bytes_per_second();
  double t = 0.0;
  while (true) {
    t += -mean_interval_s * std::log(1.0 - rng.next_double());
    if (t >= duration.to_seconds()) break;
    opps.push_back(TimeNs::millis(std::floor(t * 1e3)));
  }
  return DeliveryTrace(std::move(opps));
}

TimeNs DeliveryTrace::span() const {
  if (opportunities_.empty()) return TimeNs::zero();
  // Round up to the next ms so a trailing opportunity at t=span still fires
  // before the loop wraps.
  return opportunities_.back() + TimeNs::millis(1);
}

Rate DeliveryTrace::mean_rate() const {
  const TimeNs s = span();
  if (s <= TimeNs::zero()) return Rate::zero();
  return Rate::from_bytes_over(opportunities_.size() * kMss, s);
}

}  // namespace ccstarve
