// Mahimahi packet-delivery traces.
//
// The paper runs its experiments in Mahimahi [32], whose link model is a
// text file with one integer millisecond timestamp per line; each line is an
// opportunity to deliver one MTU-sized packet. We implement the same format
// (reader, writer, generators) and a trace-driven bottleneck so workloads
// like cellular sawtooth links can be replayed deterministically.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/rate.hpp"
#include "util/time.hpp"

namespace ccstarve {

class DeliveryTrace {
 public:
  DeliveryTrace() = default;
  explicit DeliveryTrace(std::vector<TimeNs> opportunities);

  // Parses Mahimahi's format: one non-negative integer (milliseconds) per
  // line, non-decreasing. Throws std::runtime_error on malformed input.
  static DeliveryTrace parse(std::istream& in);
  static DeliveryTrace load(const std::string& path);

  // Writes the trace in Mahimahi's format (millisecond granularity).
  void write(std::ostream& out) const;
  void save(const std::string& path) const;

  // --- Generators ---
  // One opportunity every MTU/rate (rounded to the trace's ms grid).
  static DeliveryTrace constant(Rate rate, TimeNs duration);
  // Rate ramping linearly between lo and hi with the given period
  // (triangle wave) — a stylized cellular link.
  static DeliveryTrace sawtooth(Rate lo, Rate hi, TimeNs period,
                                TimeNs duration);
  // Poisson arrivals of delivery opportunities at the given mean rate.
  static DeliveryTrace poisson(Rate mean_rate, TimeNs duration, uint64_t seed);

  const std::vector<TimeNs>& opportunities() const { return opportunities_; }
  bool empty() const { return opportunities_.empty(); }
  size_t size() const { return opportunities_.size(); }
  // Total span; a trace-driven link loops with this period.
  TimeNs span() const;
  // Average delivery rate over the span (MTU bytes per opportunity).
  Rate mean_rate() const;

 private:
  std::vector<TimeNs> opportunities_;  // sorted, ms-granular
};

}  // namespace ccstarve
