#include "emu/trace_link.hpp"

#include <cassert>
#include <utility>

#include "sim/check_probe.hpp"
#include "sim/flight_probe.hpp"
#include "sim/obs_probe.hpp"

namespace ccstarve {

TraceDrivenLink::TraceDrivenLink(Simulator& sim, DeliveryTrace trace,
                                 const Config& config, PacketSink next)
    : sim_(sim), trace_(std::move(trace)), config_(config), next_(next) {
  assert(!trace_.empty());
  schedule_next_opportunity();
}

void TraceDrivenLink::handle(Packet pkt) {
  if (queued_bytes_ + pkt.bytes > config_.buffer_bytes) {
    ++drops_;
    if (TraceRecorder* tr = sim_.tracer()) {
      tr->record('D', sim_.now(), pkt.flow, pkt.seq, pkt.is_dummy ? 1 : 0);
    }
    if (CheckProbe* ck = sim_.checker()) ck->on_link_drop(sim_.now(), pkt);
    if (ObsProbe* ob = sim_.telemetry()) ob->on_link_drop(sim_.now(), pkt);
    if (FlightProbe* fp = sim_.flight()) fp->link_drop(sim_.now(), pkt);
    return;
  }
  queued_bytes_ += pkt.bytes;
  if (TraceRecorder* tr = sim_.tracer()) {
    tr->record('E', sim_.now(), pkt.flow, pkt.seq, queued_bytes_);
  }
  queue_.push_back(pkt);
  if (CheckProbe* ck = sim_.checker()) {
    ck->on_link_enqueue(sim_.now(), pkt, queued_bytes_);
  }
  if (ObsProbe* ob = sim_.telemetry()) {
    ob->on_link_enqueue(sim_.now(), pkt, queued_bytes_);
  }
  if (FlightProbe* fp = sim_.flight()) {
    fp->link_enqueue(sim_.now(), pkt, queued_bytes_);
  }
}

void TraceDrivenLink::schedule_next_opportunity() {
  const TimeNs base = trace_.span() * static_cast<double>(loop_count_);
  const TimeNs at = base + trace_.opportunities()[next_index_];
  sim_.schedule_at(ccstarve::max(at, sim_.now()), [this] { on_opportunity(); });
}

void TraceDrivenLink::on_opportunity() {
  if (queue_.empty()) {
    ++wasted_;
  } else {
    Packet pkt = queue_.front();
    queue_.pop_front();
    queued_bytes_ -= pkt.bytes;
    ++used_;
    if (TraceRecorder* tr = sim_.tracer()) {
      tr->record('L', sim_.now(), pkt.flow, pkt.seq, pkt.bytes);
    }
    if (CheckProbe* ck = sim_.checker()) ck->on_link_deliver(sim_.now(), pkt);
    if (ObsProbe* ob = sim_.telemetry()) {
      ob->on_link_deliver(sim_.now(), pkt, queued_bytes_);
    }
    if (FlightProbe* fp = sim_.flight()) {
      fp->link_deliver(sim_.now(), pkt, queued_bytes_);
    }
    next_.handle(pkt);
  }
  if (++next_index_ >= trace_.size()) {
    next_index_ = 0;
    ++loop_count_;
  }
  schedule_next_opportunity();
}

}  // namespace ccstarve
