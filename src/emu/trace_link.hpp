// Trace-driven bottleneck: Mahimahi's link model. Packets wait in a FIFO
// drop-tail queue; one MTU-sized packet departs at each delivery opportunity
// of the trace, which loops forever.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <utility>

#include "emu/trace.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"

namespace ccstarve {

class TraceDrivenLink final : public PacketHandler {
 public:
  struct Config {
    uint64_t buffer_bytes = std::numeric_limits<uint64_t>::max() / 2;
  };

  template <typename Next>
  TraceDrivenLink(Simulator& sim, DeliveryTrace trace, const Config& config,
                  Next& next)
      : TraceDrivenLink(sim, std::move(trace), config, as_sink(next)) {}

  TraceDrivenLink(Simulator& sim, DeliveryTrace trace, const Config& config,
                  PacketSink next);

  void handle(Packet pkt) override;

  uint64_t queued_bytes() const { return queued_bytes_; }
  uint64_t buffer_bytes() const { return config_.buffer_bytes; }
  uint64_t drops() const { return drops_; }
  uint64_t opportunities_used() const { return used_; }
  uint64_t opportunities_wasted() const { return wasted_; }

 private:
  void schedule_next_opportunity();
  void on_opportunity();

  Simulator& sim_;
  DeliveryTrace trace_;
  Config config_;
  PacketSink next_;
  std::deque<Packet> queue_;
  uint64_t queued_bytes_ = 0;
  uint64_t drops_ = 0;
  uint64_t used_ = 0;
  uint64_t wasted_ = 0;
  size_t next_index_ = 0;
  uint64_t loop_count_ = 0;
};

}  // namespace ccstarve
