#include "obs/aggregate.hpp"

#include <algorithm>
#include <cmath>

namespace ccstarve::obs {

P2Quantile::P2Quantile(double q) : q_(q) {
  want_ = {1, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5};
  inc_ = {0, q / 2, q, (1 + q) / 2, 1};
}

double P2Quantile::parabolic(int i, double d) const {
  return heights_[i] +
         d / (pos_[i + 1] - pos_[i - 1]) *
             ((pos_[i] - pos_[i - 1] + d) * (heights_[i + 1] - heights_[i]) /
                  (pos_[i + 1] - pos_[i]) +
              (pos_[i + 1] - pos_[i] - d) * (heights_[i] - heights_[i - 1]) /
                  (pos_[i] - pos_[i - 1]));
}

double P2Quantile::linear(int i, double d) const {
  const int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) /
                           (pos_[j] - pos_[i]);
}

void P2Quantile::add(double x) {
  if (n_ < 5) {
    heights_[n_++] = x;
    if (n_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) pos_[i] = i + 1;
    }
    return;
  }
  ++n_;

  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) pos_[i] += 1;
  for (int i = 0; i < 5; ++i) want_[i] += inc_[i];

  // Adjust the three interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = want_[i] - pos_[i];
    if ((d >= 1 && pos_[i + 1] - pos_[i] > 1) ||
        (d <= -1 && pos_[i - 1] - pos_[i] < -1)) {
      const double s = d >= 0 ? 1 : -1;
      double h = parabolic(i, s);
      if (heights_[i - 1] < h && h < heights_[i + 1]) {
        heights_[i] = h;
      } else {
        heights_[i] = linear(i, s);
      }
      pos_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  if (n_ == 0) return 0.0;
  if (n_ < 5) {
    // Exact order statistic of the partial buffer (nearest-rank).
    std::array<double, 5> tmp = heights_;
    std::sort(tmp.begin(), tmp.begin() + static_cast<long>(n_));
    const size_t rank = std::min(
        n_ - 1, static_cast<size_t>(q_ * static_cast<double>(n_)));
    return tmp[rank];
  }
  return heights_[2];
}

void StreamingAggregate::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  p50_.add(x);
  p90_.add(x);
  p99_.add(x);
}

}  // namespace ccstarve::obs
