// O(1)-memory streaming aggregates for telemetry series.
//
// A StreamingAggregate folds an unbounded sample stream into constant
// state: Welford mean/variance, exact min/max, and P² (Jain & Chlamtac,
// CACM 1985) estimates of the 50th/90th/99th percentiles. Five markers per
// quantile, three quantiles, ~200 bytes per aggregate — the memory bound
// DESIGN.md §11 quotes for week-long simulated horizons.
#pragma once

#include <array>
#include <cstddef>

namespace ccstarve::obs {

// P² single-quantile estimator. Exact until 5 samples have arrived, then a
// piecewise-parabolic approximation that never stores more than 5 markers.
class P2Quantile {
 public:
  explicit P2Quantile(double q = 0.5);

  void add(double x);
  // Current estimate; with fewer than 5 samples, the exact order statistic
  // of what has arrived.
  double value() const;
  size_t count() const { return n_; }

 private:
  double parabolic(int i, double d) const;
  double linear(int i, double d) const;

  double q_;
  std::array<double, 5> heights_{};   // marker heights (sorted)
  std::array<double, 5> pos_{};       // actual marker positions (1-based)
  std::array<double, 5> want_{};      // desired positions
  std::array<double, 5> inc_{};       // desired-position increments
  size_t n_ = 0;
};

// Welford mean/variance + min/max + P² p50/p90/p99 over one series.
class StreamingAggregate {
 public:
  StreamingAggregate() : p50_(0.50), p90_(0.90), p99_(0.99) {}

  void add(double x);

  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double p50() const { return p50_.value(); }
  double p90() const { return p90_.value(); }
  double p99() const { return p99_.value(); }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  P2Quantile p50_, p90_, p99_;
};

}  // namespace ccstarve::obs
