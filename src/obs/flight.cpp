#include "obs/flight.hpp"

#include <algorithm>

#include "sim/scenario.hpp"
#include "sim/simulator.hpp"

namespace ccstarve::obs {

const char* to_string(FlightTrigger t) {
  switch (t) {
    case FlightTrigger::kStarvation: return "starvation";
    case FlightTrigger::kAlways: return "always";
    case FlightTrigger::kNever: return "never";
  }
  return "?";
}

bool parse_flight_trigger(const std::string& s, FlightTrigger* out) {
  if (s == "starvation") {
    *out = FlightTrigger::kStarvation;
  } else if (s == "always") {
    *out = FlightTrigger::kAlways;
  } else if (s == "never") {
    *out = FlightTrigger::kNever;
  } else {
    return false;
  }
  return true;
}

FlightRecorder::FlightRecorder(FlightConfig config)
    : config_(std::move(config)) {
  if (config_.events_per_flow == 0) config_.events_per_flow = 1;
  if (config_.window <= TimeNs::zero()) config_.window = TimeNs::seconds(2);
  ring_capacity_ = config_.events_per_flow;
  global_ = FlightRing(config_.global_events);
  // Configure the seam's inline fast gates: the data-path sampling step,
  // and a cwnd-change subscription that excludes kAck — per-ACK growth is
  // already captured exactly by the cwnd counter the kAck events carry, so
  // recording it again as a change event would double the control-plane
  // volume for zero export value. Only the interesting reasons (loss, RTO,
  // send-time adjustments) become instants.
  path_step_ns_ = ccstarve::max(config_.data_path_step, TimeNs::zero()).ns();
  cwnd_reason_mask_ =
      0xFFu & ~(1u << static_cast<unsigned>(CwndReason::kAck));
}

void FlightRecorder::init_flows(size_t n, TimeNs now) {
  flows_.assign(n, FlightRing(ring_capacity_));
  path_clock_.assign(n, {kLongAgoNs, kLongAgoNs});
  attached_at_ = now;
  last_seen_ns_ = now.ns();
}

void FlightRecorder::attach(Scenario& sc) {
  init_flows(sc.flow_count(), sc.sim().now());
  sc.sim().set_flight(this);
}

void FlightRecorder::attach(Simulator& sim, size_t flows) {
  init_flows(flows, sim.now());
  sim.set_flight(this);
}

void FlightRecorder::note_warp(Scenario& sc, TimeNs from, TimeNs to) {
  if (flows_.empty()) {
    attach(sc);
  } else {
    sc.sim().set_flight(this);
  }
  last_seen_ns_ = to.ns();
  if (!pass_freeze(from)) return;
  FlightEvent e;
  e.at = from;
  e.type = FlightEvent::Type::kWarp;
  e.a = static_cast<uint64_t>(from.ns());
  e.b = static_cast<uint64_t>(to.ns());
  global_.push(e);
}

void FlightRecorder::note_crossing(TimeNs at, uint32_t flow_a,
                                   uint32_t flow_b, double ratio) {
  last_seen_ns_ = std::max(last_seen_ns_, at.ns());
  if (!triggered_) {
    triggered_ = true;
    trigger_at_ = at;
    if (config_.trigger == FlightTrigger::kStarvation) {
      freeze_at_ns_ = (at + config_.window).ns();
    }
  }
  if (frozen_) return;
  FlightEvent e;
  e.at = at;
  e.type = FlightEvent::Type::kCrossing;
  e.a = flow_a;
  e.b = flow_b;
  e.c = fbits(ratio);
  global_.push(e);
}

void FlightRecorder::note_verdict(TimeNs at, bool starved,
                                  uint32_t starved_flow,
                                  const std::string& kind, double ratio) {
  last_seen_ns_ = std::max(last_seen_ns_, at.ns());
  FlightEvent e;
  e.at = at;
  e.type = FlightEvent::Type::kVerdict;
  e.a = starved ? 1 : 0;
  e.b = starved_flow;
  e.c = fbits(ratio);
  e.code = kind == "receiver-limited" ? 1 : (kind == "congestion-limited" ? 2 : 0);
  // Bypass the freeze: the verdict is end-of-run metadata the export must
  // always carry, even when it postdates the trigger window.
  global_.push(e);
}

bool FlightRecorder::should_export() const {
  switch (config_.trigger) {
    case FlightTrigger::kNever: return false;
    case FlightTrigger::kAlways: return true;
    case FlightTrigger::kStarvation: return triggered_;
  }
  return false;
}

void FlightRecorder::export_window(TimeNs* lo, TimeNs* hi) const {
  if (config_.trigger == FlightTrigger::kStarvation && triggered_) {
    *lo = ccstarve::max(TimeNs::zero(), trigger_at_ - config_.window);
    *hi = trigger_at_ + config_.window;
    return;
  }
  *lo = TimeNs::zero();
  *hi = TimeNs(std::max(last_seen_ns_, attached_at_.ns()));
}

}  // namespace ccstarve::obs
