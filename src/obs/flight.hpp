// FlightRecorder: the concrete flight probe (sim/flight_probe.hpp).
//
// The base FlightProbe owns the recording machinery — typed, timestamped
// causal events (the packet lifecycle, control-plane decisions, link rate
// changes) written into bounded per-flow ring buffers plus a small global
// ring, fully inline at the seam call sites. This class adds the policy
// around it: sizing and attaching the rings, the retroactive starvation
// trigger, warp boundaries and detector events, and the export-window
// selection. Memory is horizon-independent: an N-hour run costs the same
// as an N-second one, and the *pre-trigger* window survives because the
// ring only ever evicts the oldest events.
//
// Triggering is retroactive. With FlightTrigger::kStarvation the recorder
// runs continuously until the starvation detector's first crossing
// (delivered via note_crossing, wired through FlowTelemetry), keeps
// recording for `window` beyond it, then freezes; the export window is
// [crossing - window, crossing + window] intersected with what the rings
// retained. kAlways exports everything retained at finish; kNever records
// (so the probe cost can be measured) but never exports.
//
// The recorder is strictly read-only — it never schedules events, never
// mutates packets, and attaching it leaves every committed golden trace
// digest byte-identical (pinned by tests/flight_test.cpp). Exports go to
// Chrome trace-event JSON (obs/flight_export.hpp) and never enter
// canonical result records: a flight trace is a debugging artifact, not a
// measurement.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "sim/flight_probe.hpp"
#include "util/rate.hpp"
#include "util/time.hpp"

namespace ccstarve {
class Scenario;
class Simulator;
}  // namespace ccstarve

namespace ccstarve::obs {

// The event and ring types live with the record paths in the sim-layer
// seam header; everything observer-side keeps naming them through obs.
using FlightEvent = ccstarve::FlightEvent;
using FlightRing = ccstarve::FlightRing;

enum class FlightTrigger : uint8_t { kStarvation, kAlways, kNever };

const char* to_string(FlightTrigger t);
// Parses "starvation" | "always" | "never"; returns false on anything else.
bool parse_flight_trigger(const std::string& s, FlightTrigger* out);

struct FlightConfig {
  FlightTrigger trigger = FlightTrigger::kStarvation;
  // Half-width of the export window around the trigger crossing.
  TimeNs window = TimeNs::seconds(2);
  // Ring capacity per flow; oldest events are evicted when full. The slab
  // (sizeof(FlightEvent) = 32 B per slot) is allocated and faulted at
  // attach so the recording path never pays for growth — budget
  // flows * events_per_flow * 32 B when attaching to large cohorts.
  size_t events_per_flow = size_t{1} << 15;
  // Ring capacity of the global ring (rate changes, warps, detector
  // events). These are rare; the cap is a safety bound.
  size_t global_events = 4096;
  // Record-time sampling step for bulk data-path events: per flow, at most
  // one normal (non-retransmit) send and one enqueue/deliver queue sample
  // per step. The exporter thins the queue counter to 1 ms anyway, so the
  // default loses nothing the export would have shown, while it cuts the
  // recording cost of the packet firehose and stretches the ring's
  // retained horizon several-fold. Retransmits, drops and every
  // control-plane event always record. Zero records everything.
  TimeNs data_path_step = TimeNs::millis(1);
  // Optional per-flow labels (CCA names) for exported track names.
  std::vector<std::string> flow_labels;
};

// Bit-pattern round trip for stashing a ratio in a FlightEvent payload.
// Single precision: ~7 significant digits comfortably covers a starvation
// throughput ratio (the export prints %.6g).
inline uint32_t fbits(double v) {
  const float f = static_cast<float>(v);
  uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}
inline double bits_f(uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return static_cast<double>(f);
}

class FlightRecorder final : public FlightProbe {
 public:
  explicit FlightRecorder(FlightConfig config = {});

  // Installs the probe on the scenario's simulator and sizes one ring per
  // flow. The recorder must outlive the scenario's run.
  void attach(Scenario& sc);
  // Standalone topologies (e.g. the trace-driven link) with no Scenario.
  void attach(Simulator& sim, size_t flows);

  // Fast-forward seam: records a warp-boundary event and re-installs the
  // probe on the forked scenario's simulator. Ring contents and trigger
  // state are preserved across the seam.
  void note_warp(Scenario& sc, TimeNs from, TimeNs to);

  // Detector link (wired through TelemetryConfig::flight): the starvation
  // detector's pair crossings, in detection order. The first one arms the
  // retroactive trigger under FlightTrigger::kStarvation.
  void note_crossing(TimeNs at, uint32_t flow_a, uint32_t flow_b,
                     double ratio);
  // End-of-run verdict; kind is "none" | "receiver-limited" |
  // "congestion-limited". Recorded even after the freeze so the export
  // always carries the verdict.
  void note_verdict(TimeNs at, bool starved, uint32_t starved_flow,
                    const std::string& kind, double ratio);

  bool triggered() const { return triggered_; }
  TimeNs trigger_at() const { return trigger_at_; }
  // Whether export_window() describes anything exportable: false only for
  // kNever, and for kStarvation when no crossing ever happened.
  bool should_export() const;
  // [lo, hi] of the export selection (inclusive); meaningful only when
  // should_export().
  void export_window(TimeNs* lo, TimeNs* hi) const;

  const FlightConfig& config() const { return config_; }
  size_t flow_count() const { return flows_.size(); }
  const FlightRing& flow_ring(size_t i) const { return flows_[i]; }
  const FlightRing& global_ring() const { return global_; }
  // Total events recorded into the rings (including evicted ones; folded
  // and coalesced gate transitions never became events). Summed on demand
  // so the recording path doesn't maintain a counter of its own.
  uint64_t recorded() const {
    uint64_t n = global_.total();
    for (const FlightRing& r : flows_) n += r.total();
    return n;
  }
  TimeNs attached_at() const { return attached_at_; }

 private:
  void init_flows(size_t n, TimeNs now);

  FlightConfig config_;
  TimeNs attached_at_ = TimeNs::zero();
  bool triggered_ = false;
  TimeNs trigger_at_ = TimeNs(-1);
};

}  // namespace ccstarve::obs
