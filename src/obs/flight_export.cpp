#include "obs/flight_export.hpp"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "obs/flight.hpp"

namespace ccstarve::obs {
namespace {

constexpr uint32_t kLinkPid = 1000;
// Thinning step for dense counters (inflight, queue occupancy): one sample
// per millisecond is plenty for a Perfetto chart and keeps exports small.
constexpr int64_t kThinNs = 1'000'000;
// Advertised-window headroom against an infinite window is ~2^63; clamp so
// the counter chart stays readable next to cwnd.
constexpr uint64_t kRwndClamp = 1'000'000'000'000ull;

const char* gate_name(uint64_t g) {
  switch (g) {
    case static_cast<uint64_t>(SendGate::kCwnd): return "cwnd-bound";
    case static_cast<uint64_t>(SendGate::kRwnd): return "rwnd-bound";
    case static_cast<uint64_t>(SendGate::kPacing): return "pacing-bound";
    default: return "sending";
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
  return out;
}

class EventWriter {
 public:
  explicit EventWriter(std::ostream& os) : os_(os) {}

  void line(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    if (!first_) os_ << ",\n";
    first_ = false;
    os_ << buf;
  }

  void counter(uint32_t pid, const char* name, TimeNs at, uint64_t value) {
    line("{\"ph\":\"C\",\"pid\":%u,\"tid\":1,\"ts\":%.3f,\"name\":\"%s\","
         "\"args\":{\"value\":%" PRIu64 "}}",
         pid, us(at), name, value);
  }

  static double us(TimeNs t) { return static_cast<double>(t.ns()) / 1000.0; }

 private:
  std::ostream& os_;
  bool first_ = true;
};

struct QueueSample {
  int64_t ns;
  uint64_t bytes;
};

}  // namespace

void write_chrome_trace(std::ostream& os, const FlightRecorder& rec) {
  TimeNs lo = TimeNs::zero();
  TimeNs hi = TimeNs::zero();
  const bool exporting = rec.should_export();
  if (exporting) rec.export_window(&lo, &hi);

  os << "{\"traceEvents\":[\n";
  EventWriter w(os);

  // Track metadata. pid = flow + 1 so flow 0 is not process 0.
  for (size_t f = 0; f < rec.flow_count(); ++f) {
    std::string label = f < rec.config().flow_labels.size()
                            ? json_escape(rec.config().flow_labels[f])
                            : std::string();
    if (label.empty()) {
      w.line("{\"ph\":\"M\",\"pid\":%zu,\"name\":\"process_name\","
             "\"args\":{\"name\":\"flow %zu\"}}",
             f + 1, f);
    } else {
      w.line("{\"ph\":\"M\",\"pid\":%zu,\"name\":\"process_name\","
             "\"args\":{\"name\":\"flow %zu (%s)\"}}",
             f + 1, f, label.c_str());
    }
    w.line("{\"ph\":\"M\",\"pid\":%zu,\"name\":\"process_sort_index\","
           "\"args\":{\"sort_index\":%zu}}",
           f + 1, f + 1);
  }
  w.line("{\"ph\":\"M\",\"pid\":%u,\"name\":\"process_name\","
         "\"args\":{\"name\":\"link\"}}",
         kLinkPid);

  std::vector<QueueSample> queue;
  if (exporting) {
    for (size_t f = 0; f < rec.flow_count(); ++f) {
      const FlightRing& ring = rec.flow_ring(f);
      const uint32_t pid = static_cast<uint32_t>(f) + 1;

      uint64_t last_cwnd = 0, last_rwnd = 0;
      bool have_cwnd = false, have_rwnd = false;
      // "long before any event" without risking subtraction overflow.
      int64_t last_inflight_ns = -(int64_t{1} << 62);
      bool have_gate = false;
      uint64_t cur_gate = 0;
      TimeNs gate_since = lo;
      // Closes the open gate slice and starts the next one. Transitions
      // arrive either as standalone kGate events or folded into a kAck's
      // code byte (the ACK-clocked rebind; see flight.hpp).
      auto gate_transition = [&](TimeNs at, uint64_t prev, uint64_t gate) {
        const TimeNs start = have_gate ? gate_since : lo;
        const uint64_t name = have_gate ? cur_gate : prev;
        const double dur_us = EventWriter::us(at) - EventWriter::us(start);
        if (dur_us > 0) {
          w.line("{\"ph\":\"X\",\"pid\":%u,\"tid\":1,\"ts\":%.3f,"
                 "\"dur\":%.3f,\"cat\":\"flight\",\"name\":\"%s\"}",
                 pid, EventWriter::us(start), dur_us, gate_name(name));
        }
        have_gate = true;
        cur_gate = gate;
        gate_since = at;
      };

      for (size_t i = 0; i < ring.size(); ++i) {
        const FlightEvent& e = ring.at(i);
        if (e.at < lo || e.at > hi) continue;
        switch (e.type) {
          case FlightEvent::Type::kSend:
            if (e.code) {  // only retransmits become instants; normal sends
                           // stay ring-only to keep the JSON compact
              w.line("{\"ph\":\"i\",\"pid\":%u,\"tid\":1,\"ts\":%.3f,"
                     "\"s\":\"t\",\"cat\":\"flight\",\"name\":\"retransmit\","
                     "\"args\":{\"seq\":%" PRIu64 ",\"bytes\":%" PRIu64 "}}",
                     pid, EventWriter::us(e.at), e.a, e.b);
            }
            break;
          case FlightEvent::Type::kEnqueue:
          case FlightEvent::Type::kDeliver:
            queue.push_back({e.at.ns(), e.b});
            break;
          case FlightEvent::Type::kDrop:
            w.line("{\"ph\":\"i\",\"pid\":%u,\"tid\":1,\"ts\":%.3f,"
                   "\"s\":\"t\",\"cat\":\"flight\",\"name\":\"drop\","
                   "\"args\":{\"seq\":%" PRIu64 "}}",
                   pid, EventWriter::us(e.at), e.a);
            break;
          case FlightEvent::Type::kAck:
            if (!have_cwnd || e.a != last_cwnd) {
              w.counter(pid, "cwnd_bytes", e.at, e.a);
              last_cwnd = e.a;
              have_cwnd = true;
            }
            if (!have_rwnd || e.b != last_rwnd) {
              w.counter(pid, "rwnd_bytes", e.at,
                        std::min(e.b, kRwndClamp));
              last_rwnd = e.b;
              have_rwnd = true;
            }
            if (e.at.ns() - last_inflight_ns >= kThinNs) {
              w.counter(pid, "inflight_bytes", e.at, e.c);
              last_inflight_ns = e.at.ns();
            }
            if (e.code & 0x80) {
              gate_transition(e.at, (e.code >> 3) & 7, e.code & 7);
            }
            break;
          case FlightEvent::Type::kCwndChange:
            w.line("{\"ph\":\"i\",\"pid\":%u,\"tid\":1,\"ts\":%.3f,"
                   "\"s\":\"t\",\"cat\":\"flight\",\"name\":\"cwnd_change\","
                   "\"args\":{\"old\":%" PRIu64 ",\"new\":%" PRIu64
                   ",\"reason\":\"%s\"}}",
                   pid, EventWriter::us(e.at), e.a, e.b,
                   to_string(static_cast<CwndReason>(e.code)));
            break;
          case FlightEvent::Type::kGate:
            gate_transition(e.at, e.a, e.b);
            break;
          case FlightEvent::Type::kPersistProbe:
            w.line("{\"ph\":\"i\",\"pid\":%u,\"tid\":1,\"ts\":%.3f,"
                   "\"s\":\"t\",\"cat\":\"flight\",\"name\":\"persist_probe\","
                   "\"args\":{\"seq\":%" PRIu64 ",\"backoff\":%" PRIu64 "}}",
                   pid, EventWriter::us(e.at), e.a, e.b);
            break;
          case FlightEvent::Type::kRto:
            w.line("{\"ph\":\"i\",\"pid\":%u,\"tid\":1,\"ts\":%.3f,"
                   "\"s\":\"t\",\"cat\":\"flight\",\"name\":\"rto\","
                   "\"args\":{\"backoff\":%" PRIu64 "}}",
                   pid, EventWriter::us(e.at), e.a);
            break;
          case FlightEvent::Type::kDelack:
            w.line("{\"ph\":\"i\",\"pid\":%u,\"tid\":1,\"ts\":%.3f,"
                   "\"s\":\"t\",\"cat\":\"flight\",\"name\":\"delack\"}",
                   pid, EventWriter::us(e.at));
            break;
          case FlightEvent::Type::kWindowDrop:
            w.line("{\"ph\":\"i\",\"pid\":%u,\"tid\":1,\"ts\":%.3f,"
                   "\"s\":\"t\",\"cat\":\"flight\",\"name\":\"window_drop\","
                   "\"args\":{\"seq\":%" PRIu64 "}}",
                   pid, EventWriter::us(e.at), e.a);
            break;
          default:
            break;
        }
      }
      // Close the last open gate interval at the window edge.
      if (have_gate) {
        const double dur_us = EventWriter::us(hi) - EventWriter::us(gate_since);
        if (dur_us > 0) {
          w.line("{\"ph\":\"X\",\"pid\":%u,\"tid\":1,\"ts\":%.3f,"
                 "\"dur\":%.3f,\"cat\":\"flight\",\"name\":\"%s\"}",
                 pid, EventWriter::us(gate_since), dur_us,
                 gate_name(cur_gate));
        }
      }
    }

    // Bottleneck occupancy: enqueue/deliver samples merged across flows.
    std::stable_sort(queue.begin(), queue.end(),
                     [](const QueueSample& a, const QueueSample& b) {
                       return a.ns < b.ns;
                     });
    int64_t last_q_ns = -(int64_t{1} << 62);
    for (size_t i = 0; i < queue.size(); ++i) {
      const bool last = i + 1 == queue.size();
      if (!last && queue[i].ns - last_q_ns < kThinNs) continue;
      w.counter(kLinkPid, "queue_bytes", TimeNs(queue[i].ns),
                queue[i].bytes);
      last_q_ns = queue[i].ns;
    }
  }

  // Global ring: the verdict bypasses the window filter (it is end-of-run
  // metadata), everything else respects it.
  const FlightRing& g = rec.global_ring();
  for (size_t i = 0; i < g.size(); ++i) {
    const FlightEvent& e = g.at(i);
    const bool in_window = exporting && e.at >= lo && e.at <= hi;
    switch (e.type) {
      case FlightEvent::Type::kRateChange:
        if (in_window) {
          w.counter(kLinkPid, "link_rate_bps", e.at, e.a);
        }
        break;
      case FlightEvent::Type::kWarp:
        if (in_window) {
          w.line("{\"ph\":\"i\",\"pid\":%u,\"tid\":1,\"ts\":%.3f,"
                 "\"s\":\"t\",\"cat\":\"flight\",\"name\":\"warp\","
                 "\"args\":{\"from_s\":%.6f,\"to_s\":%.6f}}",
                 kLinkPid, EventWriter::us(e.at), e.a / 1e9, e.b / 1e9);
        }
        break;
      case FlightEvent::Type::kCrossing:
        if (in_window) {
          w.line("{\"ph\":\"i\",\"pid\":%u,\"tid\":1,\"ts\":%.3f,"
                 "\"s\":\"t\",\"cat\":\"flight\",\"name\":\"crossing\","
                 "\"args\":{\"flow_a\":%" PRIu64 ",\"flow_b\":%" PRIu64
                 ",\"ratio\":%.6g}}",
                 kLinkPid, EventWriter::us(e.at), e.a, e.b, bits_f(e.c));
        }
        break;
      case FlightEvent::Type::kVerdict:
        w.line("{\"ph\":\"i\",\"pid\":%u,\"tid\":1,\"ts\":%.3f,"
               "\"s\":\"g\",\"cat\":\"flight\","
               "\"name\":\"starvation_verdict\","
               "\"args\":{\"starved\":%s,\"flow\":%" PRIu64
               ",\"kind\":\"%s\",\"ratio\":%.6g}}",
               kLinkPid, EventWriter::us(e.at), e.a ? "true" : "false", e.b,
               e.code == 1 ? "receiver-limited"
                           : (e.code == 2 ? "congestion-limited" : "none"),
               bits_f(e.c));
        break;
      default:
        break;
    }
  }

  os << "\n],\n";
  {
    char buf[256];
    snprintf(buf, sizeof(buf),
             "\"otherData\":{\"tool\":\"ccstarve_flight\",\"flows\":%zu,"
             "\"trigger\":\"%s\",\"trigger_at_s\":%.6f,\"window_s\":%.3f,"
             "\"window_lo_s\":%.6f,\"window_hi_s\":%.6f,"
             "\"recorded\":%" PRIu64 ",\"labels\":[",
             rec.flow_count(), to_string(rec.config().trigger),
             rec.triggered() ? rec.trigger_at().to_seconds() : -1.0,
             rec.config().window.to_seconds(),
             exporting ? lo.to_seconds() : 0.0,
             exporting ? hi.to_seconds() : 0.0,
             rec.recorded());
    os << buf;
  }
  for (size_t f = 0; f < rec.flow_count(); ++f) {
    std::string label = f < rec.config().flow_labels.size()
                            ? json_escape(rec.config().flow_labels[f])
                            : std::string();
    os << (f ? "," : "") << '"' << label << '"';
  }
  os << "]}}\n";
}

// --- parser ---------------------------------------------------------------

namespace {

bool find_number(const std::string& line, const std::string& key,
                 double* out) {
  const size_t pos = line.find(key);
  if (pos == std::string::npos) return false;
  const char* p = line.c_str() + pos + key.size();
  char* end = nullptr;
  const double v = strtod(p, &end);
  if (end == p) return false;
  *out = v;
  return true;
}

bool find_string(const std::string& line, const std::string& key,
                 std::string* out) {
  const size_t pos = line.find(key);
  if (pos == std::string::npos) return false;
  const size_t start = pos + key.size();
  const size_t end = line.find('"', start);
  if (end == std::string::npos) return false;
  *out = line.substr(start, end - start);
  return true;
}

void ensure_flow(FlightTrace* t, size_t idx) {
  if (idx >= t->flows) t->flows = idx + 1;
  if (t->cwnd.size() < t->flows) {
    t->cwnd.resize(t->flows);
    t->rwnd.resize(t->flows);
    t->inflight.resize(t->flows);
    t->gates.resize(t->flows);
  }
}

}  // namespace

std::optional<FlightTrace> read_chrome_trace(std::istream& in,
                                             std::string* error) {
  auto fail = [&](const char* msg) -> std::optional<FlightTrace> {
    if (error) *error = msg;
    return std::nullopt;
  };
  FlightTrace t;
  std::string line;
  bool saw_header = false;
  bool saw_meta = false;
  while (std::getline(in, line)) {
    if (!saw_header) {
      if (line.find("\"traceEvents\"") == std::string::npos) {
        return fail("not a trace-event JSON file (missing traceEvents)");
      }
      saw_header = true;
      // The header line is just the array opener; fall through in case a
      // compacted file put events on the same line (we only support the
      // one-per-line layout we write, so nothing more to do here).
      continue;
    }
    if (line.find("\"otherData\"") != std::string::npos) {
      double v;
      if (find_number(line, "\"flows\":", &v)) {
        ensure_flow(&t, static_cast<size_t>(v) ? static_cast<size_t>(v) - 1
                                               : 0);
        t.flows = static_cast<size_t>(v);
      }
      find_string(line, "\"trigger\":\"", &t.trigger);
      if (find_number(line, "\"trigger_at_s\":", &v)) t.trigger_at_s = v;
      if (find_number(line, "\"window_s\":", &v)) t.window_s = v;
      const size_t lp = line.find("\"labels\":[");
      if (lp != std::string::npos) {
        size_t p = lp + 10;
        while (p < line.size() && line[p] == '"') {
          const size_t e = line.find('"', p + 1);
          if (e == std::string::npos) break;
          t.labels.push_back(line.substr(p + 1, e - p - 1));
          p = e + 1;
          if (p < line.size() && line[p] == ',') ++p;
        }
      }
      saw_meta = true;
      continue;
    }

    std::string ph;
    if (!find_string(line, "\"ph\":\"", &ph)) continue;
    double pid = 0, ts = 0;
    std::string name;
    find_number(line, "\"pid\":", &pid);
    find_number(line, "\"ts\":", &ts);
    find_string(line, "\"name\":\"", &name);
    const double t_s = ts / 1e6;
    const bool is_link = static_cast<uint32_t>(pid) == kLinkPid;
    const int flow = is_link ? -1 : static_cast<int>(pid) - 1;
    if (flow >= 0) ensure_flow(&t, static_cast<size_t>(flow));

    if (ph == "C") {
      double value = 0;
      find_number(line, "\"value\":", &value);
      if (is_link) {
        if (name == "queue_bytes") t.queue.push_back({t_s, value});
      } else if (flow >= 0) {
        if (name == "cwnd_bytes") {
          t.cwnd[flow].push_back({t_s, value});
        } else if (name == "rwnd_bytes") {
          t.rwnd[flow].push_back({t_s, value});
        } else if (name == "inflight_bytes") {
          t.inflight[flow].push_back({t_s, value});
        }
      }
    } else if (ph == "X" && flow >= 0) {
      double dur = 0;
      find_number(line, "\"dur\":", &dur);
      t.gates[flow].push_back({t_s, dur / 1e6, name});
    } else if (ph == "i") {
      t.instants.push_back({t_s, flow, name});
      if (name == "starvation_verdict") {
        t.verdict_present = true;
        t.verdict_starved = line.find("\"starved\":true") != std::string::npos;
        double v;
        if (find_number(line, "\"flow\":", &v)) {
          t.verdict_flow = static_cast<int>(v);
        }
        find_string(line, "\"kind\":\"", &t.verdict_kind);
        if (find_number(line, "\"ratio\":", &v)) t.verdict_ratio = v;
      }
    }
  }
  if (!saw_header) return fail("empty input");
  if (!saw_meta) return fail("missing otherData footer (truncated export?)");
  return t;
}

// --- forensics ------------------------------------------------------------

namespace {

// Binding-constraint classes per bucket. kNone ("sending") occupancy and
// uncovered time both count as idle: neither is a *constraint*.
enum Constraint { kIdle = 0, kCwndBound = 1, kRwndBound = 2, kPacingBound = 3 };

const char* constraint_name(int c) {
  switch (c) {
    case kCwndBound: return "cwnd-bound";
    case kRwndBound: return "rwnd-bound";
    case kPacingBound: return "pacing-bound";
    default: return "idle";
  }
}

int constraint_of(const std::string& gate) {
  if (gate == "cwnd-bound") return kCwndBound;
  if (gate == "rwnd-bound") return kRwndBound;
  if (gate == "pacing-bound") return kPacingBound;
  return kIdle;
}

}  // namespace

bool write_forensics(std::ostream& os, const FlightTrace& trace,
                     const ForensicsOptions& opt) {
  if (trace.flows == 0) return false;

  double t0 = 1e300, t1 = -1e300;
  for (size_t f = 0; f < trace.flows; ++f) {
    for (const FlightGateSlice& s : trace.gates[f]) {
      t0 = std::min(t0, s.t_s);
      t1 = std::max(t1, s.t_s + s.dur_s);
    }
    for (const FlightCounterSample& s : trace.cwnd[f]) {
      t0 = std::min(t0, s.t_s);
      t1 = std::max(t1, s.t_s);
    }
  }
  for (const FlightInstant& i : trace.instants) {
    if (i.name == "starvation_verdict") continue;  // may postdate the window
    t0 = std::min(t0, i.t_s);
    t1 = std::max(t1, i.t_s);
  }
  if (t1 <= t0) {
    os << "# flight forensics: no events in the export window\n";
    return true;
  }

  double bucket_s = opt.bucket_s > 0 ? opt.bucket_s : 0.1;
  while ((t1 - t0) / bucket_s > 4000) bucket_s *= 2;
  const size_t buckets =
      static_cast<size_t>(std::ceil((t1 - t0) / bucket_s));

  // occupancy[b][f][c] = seconds flow f spent under constraint c in bucket b.
  std::vector<std::vector<std::array<double, 4>>> occ(
      buckets, std::vector<std::array<double, 4>>(
                   trace.flows, std::array<double, 4>{0, 0, 0, 0}));
  for (size_t f = 0; f < trace.flows; ++f) {
    for (const FlightGateSlice& s : trace.gates[f]) {
      const int c = constraint_of(s.name);
      double lo = std::max(s.t_s, t0);
      const double hi = std::min(s.t_s + s.dur_s, t1);
      while (lo < hi) {
        const size_t b = std::min(
            buckets - 1, static_cast<size_t>((lo - t0) / bucket_s));
        const double edge = t0 + (b + 1) * bucket_s;
        const double take = std::min(hi, edge) - lo;
        occ[b][f][c] += take;
        lo += take > 0 ? take : bucket_s;
      }
    }
  }

  char buf[256];
  snprintf(buf, sizeof(buf),
           "# flight forensics: %zu flows, trigger=%s", trace.flows,
           trace.trigger.empty() ? "?" : trace.trigger.c_str());
  os << buf;
  if (trace.trigger_at_s >= 0) {
    snprintf(buf, sizeof(buf), ", first crossing at %.3fs",
             trace.trigger_at_s);
    os << buf;
  }
  os << "\n";
  snprintf(buf, sizeof(buf),
           "# binding constraint per %.0fms bucket (constraint that held the"
           " flow back longest; idle = unconstrained)\n",
           bucket_s * 1e3);
  os << buf;

  os << "t_s";
  for (size_t f = 0; f < trace.flows; ++f) {
    snprintf(buf, sizeof(buf), "\tflow%zu", f);
    os << buf;
  }
  os << "\n";

  // label[b][f] for the summary below.
  std::vector<std::vector<int>> label(buckets,
                                      std::vector<int>(trace.flows, kIdle));
  for (size_t b = 0; b < buckets; ++b) {
    snprintf(buf, sizeof(buf), "%.3f", t0 + b * bucket_s);
    os << buf;
    for (size_t f = 0; f < trace.flows; ++f) {
      int best = kIdle;
      double best_occ = 0;
      for (int c = kCwndBound; c <= kPacingBound; ++c) {
        if (occ[b][f][c] > best_occ) {
          best_occ = occ[b][f][c];
          best = c;
        }
      }
      // A constraint must actually dominate the bucket; otherwise the flow
      // was mostly unconstrained (sending or not running).
      if (best_occ < bucket_s * 0.5) best = kIdle;
      label[b][f] = best;
      os << '\t' << constraint_name(best);
    }
    os << "\n";
  }

  // "why flow F starved" summary.
  os << "\n";
  if (!trace.verdict_present) {
    os << "# no starvation verdict in this trace (run finished without "
          "telemetry, or export predates the verdict)\n";
    return true;
  }
  if (!trace.verdict_starved || trace.verdict_flow < 0 ||
      static_cast<size_t>(trace.verdict_flow) >= trace.flows) {
    snprintf(buf, sizeof(buf),
             "# verdict: not starved (kind=%s, ratio=%.3g)\n",
             trace.verdict_kind.empty() ? "none" : trace.verdict_kind.c_str(),
             trace.verdict_ratio);
    os << buf;
    return true;
  }

  const size_t victim = static_cast<size_t>(trace.verdict_flow);
  std::array<size_t, 4> counts{0, 0, 0, 0};
  for (size_t b = 0; b < buckets; ++b) ++counts[label[b][victim]];
  int dominant = kIdle;
  for (int c = 1; c < 4; ++c) {
    if (counts[c] > counts[dominant]) dominant = c;
  }
  if (counts[dominant] == 0) dominant = kIdle;

  size_t drops = 0, rtos = 0, persists = 0, cuts = 0, wdrops = 0;
  for (const FlightInstant& i : trace.instants) {
    if (i.flow != trace.verdict_flow) continue;
    if (i.name == "drop") ++drops;
    if (i.name == "rto") ++rtos;
    if (i.name == "persist_probe") ++persists;
    if (i.name == "cwnd_change") ++cuts;
    if (i.name == "window_drop") ++wdrops;
  }

  const std::string label_str =
      victim < trace.labels.size() && !trace.labels[victim].empty()
          ? " (" + trace.labels[victim] + ")"
          : "";
  snprintf(buf, sizeof(buf), "== why flow %zu%s starved ==\n", victim,
           label_str.c_str());
  os << buf;
  snprintf(buf, sizeof(buf),
           "verdict: starved, %s, throughput ratio %.3g\n",
           trace.verdict_kind.c_str(), trace.verdict_ratio);
  os << buf;
  snprintf(buf, sizeof(buf),
           "dominant binding constraint: %s (%zu/%zu buckets; cwnd-bound "
           "%zu, rwnd-bound %zu, pacing-bound %zu, idle %zu)\n",
           constraint_name(dominant), counts[dominant], buckets,
           counts[kCwndBound], counts[kRwndBound], counts[kPacingBound],
           counts[kIdle]);
  os << buf;
  snprintf(buf, sizeof(buf),
           "events in window: %zu drops, %zu window drops, %zu RTOs, "
           "%zu persist probes, %zu cwnd changes\n",
           drops, wdrops, rtos, persists, cuts);
  os << buf;
  if (trace.trigger_at_s >= 0) {
    snprintf(buf, sizeof(buf), "first starvation crossing at %.3fs\n",
             trace.trigger_at_s);
    os << buf;
  }
  return true;
}

}  // namespace ccstarve::obs
