// Chrome trace-event export of a FlightRecorder (obs/flight.hpp), plus the
// parser and forensics renderer behind `ccstarve_report --mode=forensics`.
//
// write_chrome_trace emits the JSON Object Format of the Trace Event
// specification ({"traceEvents":[...], "otherData":{...}}), loadable
// directly in Perfetto (ui.perfetto.dev) or chrome://tracing:
//
//   * one process per flow (pid = flow + 1, named after the flow's label)
//     whose single thread carries the send-gate timeline as complete ("X")
//     slices — "cwnd-bound" / "rwnd-bound" / "pacing-bound" / "sending" —
//     and instant ("i") events for drops, retransmits, persist probes,
//     RTOs, delayed-ACK fires, receiver window drops and cwnd changes;
//   * per-flow counter ("C") tracks cwnd_bytes / rwnd_bytes /
//     inflight_bytes sampled at ACK processing (exactly the signal
//     FlowTelemetry's bucket gauges sample, which the cross-check test
//     leans on);
//   * a "link" process (pid 1000) with the bottleneck queue_bytes counter
//     and rate-change / warp / crossing / starvation_verdict instants.
//
// Every traceEvents entry is written on its own line, which is what lets
// read_chrome_trace get away with a tolerant line-oriented parser instead
// of a full JSON reader (the same trade report.cpp makes for JSONL).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace ccstarve::obs {

class FlightRecorder;

// Writes the recorder's export selection (see FlightRecorder's trigger
// semantics) as Chrome trace-event JSON. With should_export() false this
// still writes a valid, near-empty document (metadata only) so callers can
// unconditionally produce a well-formed file.
void write_chrome_trace(std::ostream& os, const FlightRecorder& rec);

// --- parsed form (for forensics) -----------------------------------------

struct FlightCounterSample {
  double t_s = 0;
  double value = 0;
};

struct FlightGateSlice {
  double t_s = 0;
  double dur_s = 0;
  std::string name;  // "cwnd-bound" | "rwnd-bound" | "pacing-bound" | "sending"
};

struct FlightInstant {
  double t_s = 0;
  int flow = -1;  // -1 for link/global events
  std::string name;
};

struct FlightTrace {
  size_t flows = 0;
  std::vector<std::string> labels;
  std::string trigger;
  double trigger_at_s = -1;
  double window_s = 0;
  std::vector<std::vector<FlightCounterSample>> cwnd;
  std::vector<std::vector<FlightCounterSample>> rwnd;
  std::vector<std::vector<FlightCounterSample>> inflight;
  std::vector<FlightCounterSample> queue;
  std::vector<std::vector<FlightGateSlice>> gates;
  std::vector<FlightInstant> instants;
  bool verdict_present = false;
  bool verdict_starved = false;
  int verdict_flow = -1;
  std::string verdict_kind;
  double verdict_ratio = 0;
};

// Parses a write_chrome_trace document. Returns nullopt (and fills *error
// when given) on input that is not a flight trace.
std::optional<FlightTrace> read_chrome_trace(std::istream& in,
                                             std::string* error = nullptr);

struct ForensicsOptions {
  // Bucket width of the binding-constraint timeline.
  double bucket_s = 0.1;
};

// Renders the per-bucket binding-constraint timeline (cwnd-bound vs
// rwnd-bound vs pacing-bound vs idle per flow) plus a human-readable
// "why flow F starved" summary. Returns false when the trace has no flows.
bool write_forensics(std::ostream& os, const FlightTrace& trace,
                     const ForensicsOptions& opt = {});

}  // namespace ccstarve::obs
