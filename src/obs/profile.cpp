#include "obs/profile.hpp"

#include <time.h>

#include <cmath>
#include <cstdio>
#include <ostream>

namespace ccstarve::obs {

namespace {

double clock_ms(clockid_t id) {
  timespec ts{};
  clock_gettime(id, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) * 1e-6;
}

const char* how_name(char how) {
  switch (how) {
    case 'r':
      return "simulated";
    case 'c':
      return "cached";
    case 'f':
      return "forked";
    default:
      return "?";
  }
}

std::string fmt_num(double v) {
  char buf[40];
  if (std::isnan(v) || std::isinf(v)) v = 0.0;
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  std::string s = buf;
  if (s == "-0") s = "0";
  return s;
}

}  // namespace

double thread_cpu_ms() { return clock_ms(CLOCK_THREAD_CPUTIME_ID); }

double wall_clock_ms() { return clock_ms(CLOCK_MONOTONIC); }

Table profile_summary_table(const SweepProfile& profile) {
  Table t({"section", "points", "wall ms", "cpu ms", "share %"});

  const char kinds[] = {'r', 'c', 'f'};
  double total_wall = 0.0;
  for (const PointProfile& p : profile.points) total_wall += p.wall_ms;
  for (char kind : kinds) {
    size_t n = 0;
    double wall = 0.0, cpu = 0.0;
    for (const PointProfile& p : profile.points) {
      if (p.how != kind) continue;
      ++n;
      wall += p.wall_ms;
      cpu += p.cpu_ms;
    }
    const double share = total_wall > 0.0 ? wall / total_wall * 100.0 : 0.0;
    t.add_row({how_name(kind), std::to_string(n), Table::num(wall),
               Table::num(cpu), Table::num(share, 1)});
  }

  for (size_t w = 0; w < profile.workers.size(); ++w) {
    const WorkerProfile& wp = profile.workers[w];
    const double idle = profile.wall_ms > wp.busy_wall_ms
                            ? profile.wall_ms - wp.busy_wall_ms
                            : 0.0;
    const double share = profile.wall_ms > 0.0
                             ? wp.busy_wall_ms / profile.wall_ms * 100.0
                             : 0.0;
    t.add_row({"worker " + std::to_string(w) + " (idle " +
                   Table::num(idle) + " ms)",
               std::to_string(wp.points), Table::num(wp.busy_wall_ms),
               Table::num(wp.busy_cpu_ms), Table::num(share, 1)});
  }
  return t;
}

void write_profile_jsonl(std::ostream& os, const SweepProfile& profile) {
  for (const PointProfile& p : profile.points) {
    os << "{\"type\":\"point\",\"key\":\"" << p.key << "\",\"how\":\""
       << how_name(p.how) << "\",\"wall_ms\":" << fmt_num(p.wall_ms)
       << ",\"cpu_ms\":" << fmt_num(p.cpu_ms) << ",\"worker\":" << p.worker
       << "}\n";
  }
  for (size_t w = 0; w < profile.workers.size(); ++w) {
    const WorkerProfile& wp = profile.workers[w];
    os << "{\"type\":\"worker\",\"id\":" << w
       << ",\"busy_wall_ms\":" << fmt_num(wp.busy_wall_ms)
       << ",\"busy_cpu_ms\":" << fmt_num(wp.busy_cpu_ms)
       << ",\"points\":" << wp.points << "}\n";
  }
  size_t simulated = 0, cached = 0, forked = 0;
  for (const PointProfile& p : profile.points) {
    if (p.how == 'r') ++simulated;
    if (p.how == 'c') ++cached;
    if (p.how == 'f') ++forked;
  }
  os << "{\"type\":\"sweep_profile\",\"points\":" << profile.points.size()
     << ",\"simulated\":" << simulated << ",\"cached\":" << cached
     << ",\"forked\":" << forked << ",\"workers\":" << profile.workers.size()
     << ",\"wall_ms\":" << fmt_num(profile.wall_ms) << "}\n";
}

}  // namespace ccstarve::obs
