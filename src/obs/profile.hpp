// Sweep-engine self-profiling: where does a sweep's wall clock go?
//
// The sweep engine (src/sweep/engine.cpp) fills one PointProfile per grid
// point — how the point was satisfied (simulated, cache hit, or forked off
// a shared warm-up prefix), its wall and thread-CPU cost, and which worker
// ran it — plus one WorkerProfile per worker thread. The CLI renders the
// aggregate as a run-end table (profile_summary_table) and optionally
// streams per-point lines as JSONL (write_profile_jsonl) next to the sweep
// results, never into them: profiling is wall-clock-dependent and must stay
// out of the canonical result records so cached and fresh runs remain
// byte-identical.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace ccstarve::obs {

// Current thread's CPU time (CLOCK_THREAD_CPUTIME_ID) in milliseconds.
double thread_cpu_ms();

// Monotonic wall clock in milliseconds (CLOCK_MONOTONIC).
double wall_clock_ms();

struct PointProfile {
  std::string key;   // canonical grid-point key
  char how = 'r';    // 'r' simulated (ran), 'c' cache hit, 'f' forked
  double wall_ms = 0.0;
  double cpu_ms = 0.0;
  int worker = -1;
};

struct WorkerProfile {
  double busy_wall_ms = 0.0;  // summed point wall time on this worker
  double busy_cpu_ms = 0.0;
  size_t points = 0;
};

struct SweepProfile {
  bool enabled = false;
  std::vector<PointProfile> points;
  std::vector<WorkerProfile> workers;
  double wall_ms = 0.0;  // whole-sweep wall clock (incl. queue waits)
};

// Per-kind totals plus per-worker busy/idle rows. Idle is the gap between
// the sweep's wall clock and the worker's busy time — queue-wait plus any
// serial section (cache probing, prefix simulation) the worker sat out.
Table profile_summary_table(const SweepProfile& profile);

// One {"type":"point",...} line per grid point and one {"type":"worker",...}
// line per worker, then a {"type":"sweep_profile",...} trailer.
void write_profile_jsonl(std::ostream& os, const SweepProfile& profile);

}  // namespace ccstarve::obs
