#include "obs/report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>

namespace ccstarve::obs {

namespace {

// Tolerant extraction parser for the flat one-line JSON objects this repo
// emits (telemetry logs, sweep records). Missing fields yield the caller's
// default instead of failing, so new fields stay backward-compatible.
class JsonLine {
 public:
  explicit JsonLine(const std::string& line) : line_(line) {}

  bool has(const char* field) const {
    return line_.find(needle(field)) != std::string::npos;
  }

  double num(const char* field, double fallback = 0.0) const {
    const size_t pos = value_pos(field);
    if (pos == std::string::npos) return fallback;
    const char* start = line_.c_str() + pos;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    return end == start ? fallback : v;
  }

  std::string str(const char* field) const {
    size_t pos = value_pos(field);
    std::string out;
    if (pos == std::string::npos || pos >= line_.size() || line_[pos] != '"')
      return out;
    for (size_t i = pos + 1; i < line_.size(); ++i) {
      if (line_[i] == '\\' && i + 1 < line_.size()) {
        out.push_back(line_[++i]);
      } else if (line_[i] == '"') {
        break;
      } else {
        out.push_back(line_[i]);
      }
    }
    return out;
  }

  std::vector<double> num_array(const char* field) const {
    std::vector<double> out;
    size_t pos = value_pos(field);
    if (pos == std::string::npos || pos >= line_.size() || line_[pos] != '[')
      return out;
    ++pos;
    while (pos < line_.size() && line_[pos] != ']') {
      const char* start = line_.c_str() + pos;
      char* end = nullptr;
      const double v = std::strtod(start, &end);
      if (end == start) break;
      out.push_back(v);
      pos += static_cast<size_t>(end - start);
      if (pos < line_.size() && line_[pos] == ',') ++pos;
    }
    return out;
  }

  std::vector<std::string> str_array(const char* field) const {
    std::vector<std::string> out;
    size_t pos = value_pos(field);
    if (pos == std::string::npos || pos >= line_.size() || line_[pos] != '[')
      return out;
    ++pos;
    while (pos < line_.size() && line_[pos] != ']') {
      if (line_[pos] != '"') break;
      std::string v;
      size_t i = pos + 1;
      for (; i < line_.size(); ++i) {
        if (line_[i] == '\\' && i + 1 < line_.size()) {
          v.push_back(line_[++i]);
        } else if (line_[i] == '"') {
          break;
        } else {
          v.push_back(line_[i]);
        }
      }
      out.push_back(std::move(v));
      pos = i + 1;
      if (pos < line_.size() && line_[pos] == ',') ++pos;
    }
    return out;
  }

 private:
  static std::string needle(const char* field) {
    return std::string("\"") + field + "\":";
  }
  size_t value_pos(const char* field) const {
    const size_t at = line_.find(needle(field));
    if (at == std::string::npos) return std::string::npos;
    return at + needle(field).size();
  }

  const std::string& line_;
};

AggSummary parse_agg(const std::string& line, const char* field) {
  // Aggregates are nested objects; slice the object out and parse it flat.
  AggSummary a;
  const std::string needle = std::string("\"") + field + "\":{";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return a;
  const size_t open = at + needle.size() - 1;
  const size_t close = line.find('}', open);
  if (close == std::string::npos) return a;
  const std::string obj = line.substr(open, close - open + 1);
  JsonLine j(obj);
  a.n = j.num("n");
  a.mean = j.num("mean");
  a.var = j.num("var");
  a.min = j.num("min");
  a.max = j.num("max");
  a.p50 = j.num("p50");
  a.p90 = j.num("p90");
  a.p99 = j.num("p99");
  return a;
}

std::string csv_num(double v) {
  if (std::isnan(v) || std::isinf(v)) v = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  std::string s = buf;
  if (s == "-0") s = "0";
  return s;
}

}  // namespace

std::optional<TelemetryLog> TelemetryLog::read(std::istream& in) {
  TelemetryLog log;
  bool have_meta = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonLine j(line);
    const std::string type = j.str("type");
    if (type == "meta") {
      have_meta = true;
      log.flows = static_cast<size_t>(j.num("flows"));
      log.interval_ms = j.num("interval_ms");
      log.ratio_window_ms = j.num("ratio_window_ms");
      log.threshold = j.num("threshold", 2.0);
      log.attached_at_s = j.num("attached_at_s");
      log.link_mbps = j.num("link_mbps", -1.0);
      log.labels = j.str_array("labels");
      log.min_rtt_ms = j.num_array("min_rtt_ms");
    } else if (type == "sample") {
      Sample s;
      s.t_s = j.num("t_s");
      s.flow = static_cast<uint32_t>(j.num("flow"));
      s.send_mbps = j.num("send_mbps");
      s.deliver_mbps = j.num("deliver_mbps");
      s.rtt_ms = j.num("rtt_ms");
      s.qdelay_ms = j.num("qdelay_ms");
      s.cwnd_bytes = j.num("cwnd_bytes");
      s.pacing_mbps = j.num("pacing_mbps");
      s.jitter_ms = j.num("jitter_ms");
      log.samples.push_back(s);
    } else if (type == "link") {
      LinkSample s;
      s.t_s = j.num("t_s");
      s.queue_bytes = j.num("queue_bytes");
      s.queue_ms = j.num("queue_ms");
      s.drops = j.num("drops");
      s.deliver_mbps = j.num("deliver_mbps");
      log.link.push_back(s);
    } else if (type == "ratio") {
      Ratio r;
      r.t_s = j.num("t_s");
      r.ratio = j.num("ratio", 1.0);
      log.ratios.push_back(r);
    } else if (type == "crossing") {
      Crossing c;
      c.t_s = j.num("t_s");
      c.a = static_cast<uint32_t>(j.num("a"));
      c.b = static_cast<uint32_t>(j.num("b"));
      c.ratio = j.num("ratio");
      c.threshold = j.num("threshold");
      log.crossings.push_back(c);
    } else if (type == "flow_summary") {
      FlowSummary f;
      f.flow = static_cast<uint32_t>(j.num("flow"));
      f.label = j.str("label");
      f.sent_bytes = j.num("sent_bytes");
      f.delivered_bytes = j.num("delivered_bytes");
      f.drops = j.num("drops");
      f.rwnd_limited_frac = j.num("rwnd_limited_frac");
      f.send_mbps = parse_agg(line, "send_mbps");
      f.deliver_mbps = parse_agg(line, "deliver_mbps");
      f.rtt_ms = parse_agg(line, "rtt_ms");
      f.qdelay_ms = parse_agg(line, "qdelay_ms");
      log.flow_summaries.push_back(f);
    } else if (type == "end") {
      log.end.present = true;
      log.end.t_s = j.num("t_s");
      log.end.buckets = j.num("buckets");
      log.end.ratio = j.num("ratio", 1.0);
      log.end.starved = j.num("starved");
      log.end.first_crossing_s = j.num("first_crossing_s", -1.0);
      log.end.threshold = j.num("threshold", 2.0);
      log.end.link_drops = j.num("link_drops");
      const std::string kind = j.str("starved_kind");
      if (!kind.empty()) log.end.starved_kind = kind;
      log.end.starved_flow = j.num("starved_flow", -1.0);
    }
  }
  if (!have_meta) return std::nullopt;
  return log;
}

void write_timeline_csv(std::ostream& out, const TelemetryLog& log) {
  out << "# per-flow telemetry timeline, interval_ms="
      << csv_num(log.interval_ms) << "\n";
  out << "t_s";
  for (size_t i = 0; i < log.flows; ++i) {
    const std::string sfx = std::to_string(i);
    out << ",send" << sfx << "_mbps,deliver" << sfx << "_mbps,rtt" << sfx
        << "_ms,qdelay" << sfx << "_ms,cwnd" << sfx << "_bytes";
  }
  out << ",queue_ms,link_drops\n";

  // Samples arrive flow-major per bucket (flow 0..N-1, then the link line),
  // all stamped with the bucket's end time; walk them bucket by bucket.
  size_t si = 0, li = 0;
  while (si < log.samples.size()) {
    const double t = log.samples[si].t_s;
    out << csv_num(t);
    for (size_t f = 0; f < log.flows; ++f) {
      if (si < log.samples.size() && log.samples[si].t_s == t &&
          log.samples[si].flow == f) {
        const TelemetryLog::Sample& s = log.samples[si++];
        out << ',' << csv_num(s.send_mbps) << ',' << csv_num(s.deliver_mbps)
            << ',' << csv_num(s.rtt_ms) << ',' << csv_num(s.qdelay_ms) << ','
            << csv_num(s.cwnd_bytes);
      } else {
        out << ",0,0,0,0,0";
      }
    }
    if (li < log.link.size() && log.link[li].t_s == t) {
      out << ',' << csv_num(log.link[li].queue_ms) << ','
          << csv_num(log.link[li].drops);
      ++li;
    } else {
      out << ",0,0";
    }
    out << '\n';
  }
}

void write_ratio_csv(std::ostream& out, const TelemetryLog& log) {
  out << "# starvation-ratio timeline (worst flow pair), threshold="
      << csv_num(log.threshold) << ", window_ms="
      << csv_num(log.ratio_window_ms) << "\n";
  out << "t_s,ratio\n";
  double timeline_first = -1.0;
  for (const TelemetryLog::Ratio& r : log.ratios) {
    out << csv_num(r.t_s) << ',' << csv_num(r.ratio) << '\n';
    if (timeline_first < 0 && r.ratio >= log.threshold) timeline_first = r.t_s;
  }
  const double end_first = log.end.present ? log.end.first_crossing_s : -1.0;
  const bool starved = log.end.present && log.end.starved != 0.0;
  // The timeline's first crossing must retell the end-of-run verdict: if the
  // run ended starved there must be a crossing, and the recomputed crossing
  // time must match the detector's recorded one.
  const bool times_match =
      (timeline_first < 0 && end_first < 0) ||
      (timeline_first >= 0 && end_first >= 0 &&
       std::fabs(timeline_first - end_first) < 1e-9);
  const bool agree = times_match && (!starved || timeline_first >= 0);
  out << "# first_crossing_s=" << csv_num(timeline_first) << "\n";
  out << "# end_first_crossing_s=" << csv_num(end_first) << "\n";
  out << "# end_ratio=" << csv_num(log.end.present ? log.end.ratio : 1.0)
      << "\n";
  out << "# end_starved=" << (starved ? 1 : 0) << "\n";
  out << "# starved_kind=" << (log.end.present ? log.end.starved_kind : "none")
      << "\n";
  out << "# starved_flow="
      << csv_num(log.end.present ? log.end.starved_flow : -1.0) << "\n";
  out << "# agree=" << (agree ? 1 : 0) << "\n";
}

void write_delay_dist_csv(std::ostream& out, const TelemetryLog& log) {
  out << "# per-flow delay distributions (streaming aggregates)\n";
  out << "flow,label,metric,n,mean,min,p50,p90,p99,max\n";
  for (const TelemetryLog::FlowSummary& f : log.flow_summaries) {
    const struct {
      const char* name;
      const AggSummary* agg;
    } metrics[] = {{"rtt_ms", &f.rtt_ms}, {"qdelay_ms", &f.qdelay_ms}};
    for (const auto& m : metrics) {
      out << f.flow << ',' << f.label << ',' << m.name << ','
          << csv_num(m.agg->n) << ',' << csv_num(m.agg->mean) << ','
          << csv_num(m.agg->min) << ',' << csv_num(m.agg->p50) << ','
          << csv_num(m.agg->p90) << ',' << csv_num(m.agg->p99) << ','
          << csv_num(m.agg->max) << '\n';
    }
  }
}

bool write_rate_delay_csv(std::ostream& out, std::istream& sweep_jsonl) {
  out << "# rate-delay scatter from sweep records (Fig. 3 style)\n";
  out << "key,flow,cca,throughput_mbps,mean_rtt_ms,d_min_ms,d_max_ms\n";
  bool any = false;
  std::string line;
  while (std::getline(sweep_jsonl, line)) {
    if (line.empty()) continue;
    JsonLine j(line);
    if (!j.has("key") || !j.has("throughput_mbps")) continue;
    const std::string key = j.str("key");
    const std::vector<std::string> ccas = j.str_array("ccas");
    const std::vector<double> tput = j.num_array("throughput_mbps");
    const std::vector<double> rtt = j.num_array("mean_rtt_ms");
    const std::vector<double> dmin = j.num_array("d_min_ms");
    const std::vector<double> dmax = j.num_array("d_max_ms");
    for (size_t f = 0; f < tput.size(); ++f) {
      out << key << ',' << f << ','
          << (f < ccas.size() ? ccas[f] : std::string()) << ','
          << csv_num(tput[f]) << ','
          << csv_num(f < rtt.size() ? rtt[f] : 0.0) << ','
          << csv_num(f < dmin.size() ? dmin[f] : 0.0) << ','
          << csv_num(f < dmax.size() ? dmax[f] : 0.0) << '\n';
      any = true;
    }
  }
  return any;
}

std::string detect_input_kind(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.find("\"type\":\"meta\"") != std::string::npos)
      return "telemetry";
    if (line.find("\"key\":") != std::string::npos &&
        line.find("\"throughput_mbps\":") != std::string::npos)
      return "sweep";
    return "unknown";
  }
  return "unknown";
}

}  // namespace ccstarve::obs
