// Figure-data back end for tools/ccstarve_report.
//
// Reads the JSONL streams this repo itself produces — FlowTelemetry logs
// (obs/telemetry.hpp) and sweep result files (sweep/record.hpp) — and turns
// them into gnuplot-ready CSV: per-flow rate/RTT timelines, the
// starvation-ratio timeline with its first threshold crossing, per-flow
// delay distributions, and Fig. 3-style rate-delay scatter data from sweep
// records. The sweep-record reader is a local mini parser on purpose:
// ccstarve_obs sits below ccstarve_sweep in the link order, so it cannot
// call SweepRecord::from_json.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace ccstarve::obs {

struct AggSummary {
  double n = 0, mean = 0, var = 0, min = 0, max = 0, p50 = 0, p90 = 0,
         p99 = 0;
};

struct TelemetryLog {
  // meta line
  size_t flows = 0;
  double interval_ms = 0, ratio_window_ms = 0, threshold = 2;
  double attached_at_s = 0, link_mbps = -1;
  std::vector<std::string> labels;
  std::vector<double> min_rtt_ms;

  struct Sample {
    double t_s = 0;
    uint32_t flow = 0;
    double send_mbps = 0, deliver_mbps = 0, rtt_ms = 0, qdelay_ms = 0;
    double cwnd_bytes = 0, pacing_mbps = 0, jitter_ms = 0;
  };
  struct LinkSample {
    double t_s = 0;
    double queue_bytes = 0, queue_ms = 0, drops = 0, deliver_mbps = 0;
  };
  struct Ratio {
    double t_s = 0, ratio = 1;
  };
  struct Crossing {
    double t_s = 0;
    uint32_t a = 0, b = 0;
    double ratio = 0, threshold = 0;
  };
  struct FlowSummary {
    uint32_t flow = 0;
    std::string label;
    double sent_bytes = 0, delivered_bytes = 0, drops = 0;
    double rwnd_limited_frac = 0;  // fraction of run spent rwnd-blocked
    AggSummary send_mbps, deliver_mbps, rtt_ms, qdelay_ms;
  };
  struct End {
    bool present = false;
    double t_s = 0, buckets = 0, ratio = 1, starved = 0;
    double first_crossing_s = -1, threshold = 2, link_drops = 0;
    // Starvation classification: "none" when not starved, else
    // "receiver-limited" (victim spent >= half the run rwnd-blocked) or
    // "congestion-limited". starved_flow is the victim index, -1 when none.
    std::string starved_kind = "none";
    double starved_flow = -1;
  };

  std::vector<Sample> samples;
  std::vector<LinkSample> link;
  std::vector<Ratio> ratios;
  std::vector<Crossing> crossings;
  std::vector<FlowSummary> flow_summaries;
  End end;

  // Parses a FlowTelemetry JSONL stream. Unknown line types are skipped;
  // nullopt only when no meta line was found (not a telemetry log).
  static std::optional<TelemetryLog> read(std::istream& in);
};

// Wide per-bucket timeline: t_s, then send/deliver/rtt/qdelay/cwnd per flow,
// then the link's queue_ms and drop delta. One row per sample bucket.
void write_timeline_csv(std::ostream& out, const TelemetryLog& log);

// Starvation-ratio timeline plus footer comments: the first crossing
// recomputed from the timeline itself, the log's end-of-run verdict
// (including the receiver-limited vs congestion-limited classification),
// and `# agree=` saying whether the two tell the same story.
void write_ratio_csv(std::ostream& out, const TelemetryLog& log);

// Per-flow delay distributions (rtt_ms and qdelay_ms streaming aggregates).
void write_delay_dist_csv(std::ostream& out, const TelemetryLog& log);

// Sweep JSONL -> rate-delay scatter rows (one per flow per grid point):
// key, flow, cca, throughput_mbps, mean_rtt_ms, d_min_ms, d_max_ms.
// Returns false when no parseable sweep record was found.
bool write_rate_delay_csv(std::ostream& out, std::istream& sweep_jsonl);

// Sniffs the first non-empty line: "telemetry", "sweep", or "unknown".
std::string detect_input_kind(std::istream& in);

}  // namespace ccstarve::obs
