// Fixed-capacity (time, value) ring series.
//
// Telemetry keeps one of these per recorded series so memory stays bounded
// no matter how long the simulated horizon is: the ring retains the newest
// `capacity` samples and counts (but forgets) everything older. Streaming
// aggregates (obs/aggregate.hpp) cover the forgotten prefix, so a week-long
// run still reports exact means/quantile estimates plus a full-resolution
// tail window.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace ccstarve::obs {

class RingSeries {
 public:
  struct Sample {
    TimeNs at = TimeNs::zero();
    double value = 0.0;
  };

  RingSeries() : RingSeries(4096) {}
  explicit RingSeries(size_t capacity) : buf_(capacity ? capacity : 1) {}

  void push(TimeNs at, double value) {
    buf_[head_] = Sample{at, value};
    head_ = (head_ + 1) % buf_.size();
    if (size_ < buf_.size()) ++size_;
    ++total_;
  }

  // Samples currently retained (<= capacity).
  size_t size() const { return size_; }
  size_t capacity() const { return buf_.size(); }
  // Samples ever pushed; total() - size() were evicted.
  uint64_t total() const { return total_; }
  bool empty() const { return size_ == 0; }

  // i = 0 is the oldest retained sample, i = size()-1 the newest.
  const Sample& at(size_t i) const {
    assert(i < size_);
    return buf_[(head_ + buf_.size() - size_ + i) % buf_.size()];
  }
  const Sample& back() const { return at(size_ - 1); }

  // Retained samples in time order (copies; for export, not hot paths).
  std::vector<Sample> snapshot() const {
    std::vector<Sample> out;
    out.reserve(size_);
    for (size_t i = 0; i < size_; ++i) out.push_back(at(i));
    return out;
  }

 private:
  std::vector<Sample> buf_;
  size_t head_ = 0;
  size_t size_ = 0;
  uint64_t total_ = 0;
};

}  // namespace ccstarve::obs
