#include "obs/sink.hpp"

#include <ostream>

namespace ccstarve::obs {

void OstreamSink::line(const std::string& l) { os_ << l << '\n'; }

void OstreamSink::finish() { os_.flush(); }

void MemorySink::line(const std::string& l) {
  lines_.push_back(l);
  ++total_;
  if (lines_.size() > capacity_) lines_.pop_front();
}

std::vector<std::string> MemorySink::snapshot() const {
  return std::vector<std::string>(lines_.begin(), lines_.end());
}

void MemorySink::clear() {
  lines_.clear();
  total_ = 0;
}

void TeeSink::line(const std::string& l) {
  for (TelemetrySink* s : sinks_) s->line(l);
}

void TeeSink::finish() {
  for (TelemetrySink* s : sinks_) s->finish();
}

}  // namespace ccstarve::obs
