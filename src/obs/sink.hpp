// TelemetrySink: where FlowTelemetry's JSONL lines go.
//
// The telemetry probe renders every closed bucket into canonical one-line
// JSON objects (meta / sample / link / ratio / crossing / flow_summary /
// end — see telemetry.cpp). A sink receives those lines, newline excluded,
// in emission order. The guarantee that makes sinks interchangeable: the
// LINE SEQUENCE is identical whichever sink is attached — an ostream sink
// writing a --metrics file, an in-memory ring, and a live network fan-out
// (serve/hub.hpp) observe byte-identical streams, which is what lets the
// serve smoke test `cmp` a subscriber's capture against an offline
// --metrics file.
//
// line() is called from the simulation thread, inside event dispatch: a
// sink must never block on a slow downstream (the network sink applies a
// bounded-queue drop/coalesce policy instead; see serve/hub.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

namespace ccstarve::obs {

class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;

  // One complete JSONL object, no trailing newline. Called on the
  // simulation thread; must not block indefinitely.
  virtual void line(const std::string& l) = 0;

  // End-of-stream (after the telemetry end line). Default: nothing.
  virtual void finish() {}
};

// JSONL-file sink: appends '\n' per line, the historical --metrics format.
class OstreamSink final : public TelemetrySink {
 public:
  explicit OstreamSink(std::ostream& os) : os_(os) {}
  void line(const std::string& l) override;
  void finish() override;

 private:
  std::ostream& os_;
};

// Bounded in-memory line log: retains the newest `capacity` lines and
// counts (but forgets) older ones — the RingSeries idea lifted to whole
// lines. Doubles as the per-job results backlog in the serve subsystem.
// Not thread-safe; callers that share one (serve's JobChannel) lock.
class MemorySink final : public TelemetrySink {
 public:
  explicit MemorySink(size_t capacity = 65536)
      : capacity_(capacity ? capacity : 1) {}

  void line(const std::string& l) override;

  // Retained lines, oldest first.
  const std::deque<std::string>& lines() const { return lines_; }
  std::vector<std::string> snapshot() const;
  // Lines ever received; total() - lines().size() were evicted.
  uint64_t total() const { return total_; }
  uint64_t evicted() const { return total_ - lines_.size(); }
  size_t capacity() const { return capacity_; }
  void clear();

 private:
  const size_t capacity_;
  std::deque<std::string> lines_;
  uint64_t total_ = 0;
};

// Fan-out to several sinks in registration order.
class TeeSink final : public TelemetrySink {
 public:
  void add(TelemetrySink* sink) { sinks_.push_back(sink); }
  void line(const std::string& l) override;
  void finish() override;

 private:
  std::vector<TelemetrySink*> sinks_;
};

}  // namespace ccstarve::obs
