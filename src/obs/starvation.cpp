#include "obs/starvation.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace ccstarve::obs {

void StarvationDetector::configure(size_t flows, size_t window_buckets,
                                   double threshold, size_t ring_capacity,
                                   size_t pair_cap) {
  flows_ = flows;
  window_buckets_ = std::max<size_t>(1, window_buckets);
  threshold_ = threshold;
  deltas_.assign(flows, std::vector<uint64_t>(window_buckets_, 0));
  window_sum_.assign(flows, 0);
  window_fill_.assign(flows, 0);
  flow_started_.assign(flows, false);
  next_slot_ = 0;
  timeline_ = RingSeries(ring_capacity);
  crossings_.clear();
  engaged_ = false;
  last_ratio_ = 1.0;
  last_max_flow_ = 0;
  last_min_flow_ = 0;

  pairs_.clear();
  sampled_ = false;
  pair_cap = std::max<size_t>(1, pair_cap);
  const size_t total_pairs = flows < 2 ? 0 : flows * (flows - 1) / 2;
  if (total_pairs <= pair_cap) {
    pairs_.reserve(total_pairs);
    for (size_t i = 0; i < flows; ++i) {
      for (size_t j = i + 1; j < flows; ++j) {
        pairs_.emplace_back(static_cast<uint32_t>(i),
                            static_cast<uint32_t>(j));
      }
    }
  } else {
    // Deterministic sample without replacement: a fixed-seed LCG draws
    // (i, j) candidates until pair_cap distinct pairs are collected. The
    // sample depends only on (flows, pair_cap), never on wall-clock or
    // global RNG state, so runs stay reproducible.
    sampled_ = true;
    pairs_.reserve(pair_cap);
    std::unordered_set<uint64_t> seen;
    seen.reserve(pair_cap * 2);
    uint64_t lcg = 0x9e3779b97f4a7c15ull ^ (flows * 0x2545f4914f6cdd1dull);
    const auto next = [&lcg] {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      return lcg >> 17;
    };
    // Attempt budget bounds the loop even in degenerate corner cases; with
    // pair_cap << total_pairs collisions are rare and it never binds.
    size_t attempts = 64 * pair_cap;
    while (pairs_.size() < pair_cap && attempts-- > 0) {
      uint32_t i = static_cast<uint32_t>(next() % flows);
      uint32_t j = static_cast<uint32_t>(next() % flows);
      if (i == j) continue;
      if (i > j) std::swap(i, j);
      const uint64_t key = (static_cast<uint64_t>(i) << 32) | j;
      if (!seen.insert(key).second) continue;
      pairs_.emplace_back(i, j);
    }
    // Crossing-time ordering is about buckets, not pair ids, but a sorted
    // pair list keeps the per-bucket walk cache-friendly.
    std::sort(pairs_.begin(), pairs_.end());
  }
  pair_crossed_.assign(pairs_.size(), false);
}

void StarvationDetector::on_bucket(TimeNs bucket_end,
                                   const std::vector<uint64_t>& delivered_delta,
                                   const std::vector<bool>& started) {
  if (flows_ < 2) return;  // a solo flow cannot starve anyone
  assert(delivered_delta.size() == flows_ && started.size() == flows_);

  for (size_t i = 0; i < flows_; ++i) {
    if (!flow_started_[i] && started[i]) flow_started_[i] = true;
    if (!flow_started_[i]) continue;  // window starts at the flow's start
    window_sum_[i] += delivered_delta[i] - deltas_[i][next_slot_];
    deltas_[i][next_slot_] = delivered_delta[i];
    if (window_fill_[i] < window_buckets_) ++window_fill_[i];
  }
  next_slot_ = (next_slot_ + 1) % window_buckets_;

  // Engage once every flow has started and accumulated a full window, so a
  // late-starting flow's ramp-up never reads as a crossing.
  bool all_full = true;
  for (size_t i = 0; i < flows_; ++i) {
    if (!flow_started_[i] || window_fill_[i] < window_buckets_) {
      all_full = false;
      break;
    }
  }
  if (!all_full) return;
  engaged_ = true;

  const auto pair_ratio = [](uint64_t hi, uint64_t lo) {
    if (lo == 0) return hi == 0 ? 1.0 : kStarvedRatioCap;
    return std::min(kStarvedRatioCap,
                    static_cast<double>(hi) / static_cast<double>(lo));
  };

  uint64_t max_sum = window_sum_[0], min_sum = window_sum_[0];
  last_max_flow_ = 0;
  last_min_flow_ = 0;
  for (size_t i = 1; i < flows_; ++i) {
    if (window_sum_[i] > max_sum) {
      max_sum = window_sum_[i];
      last_max_flow_ = static_cast<uint32_t>(i);
    }
    if (window_sum_[i] < min_sum) {
      min_sum = window_sum_[i];
      last_min_flow_ = static_cast<uint32_t>(i);
    }
  }
  last_ratio_ = pair_ratio(max_sum, min_sum);
  timeline_.push(bucket_end, last_ratio_);

  for (size_t p = 0; p < pairs_.size(); ++p) {
    if (pair_crossed_[p]) continue;
    const uint32_t i = pairs_[p].first;
    const uint32_t j = pairs_[p].second;
    const uint64_t hi = std::max(window_sum_[i], window_sum_[j]);
    const uint64_t lo = std::min(window_sum_[i], window_sum_[j]);
    const double r = pair_ratio(hi, lo);
    if (r >= threshold_) {
      pair_crossed_[p] = true;
      PairCrossing c;
      const bool i_faster = window_sum_[i] >= window_sum_[j];
      c.a = i_faster ? i : j;
      c.b = i_faster ? j : i;
      c.at = bucket_end;
      c.ratio = r;
      crossings_.push_back(c);
    }
  }
}

}  // namespace ccstarve::obs
