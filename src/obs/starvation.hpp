// Sliding-window throughput-ratio starvation detector (the paper's §7
// metric, made into a timeline instead of an end-of-run scalar).
//
// FlowTelemetry feeds it one delivered-bytes delta per flow per sample
// bucket. The detector maintains a sliding window of the last W buckets per
// flow and, once every flow has started and a full window has elapsed,
// computes the max/min delivered ratio across flows for every bucket — the
// worst-pair ratio timeline — plus, per flow pair, the first time the
// pair's ratio crossed the configured threshold. A run's end-of-run verdict
// (ratio at the final bucket) and the first-crossing timestamp together say
// not only *that* a flow starved but *when* it started to.
//
// Pair tracking is capped: with N flows there are N(N-1)/2 pairs, which at
// 10k flows is 50M — far too many to walk per bucket (or even to store a
// crossed bit for). Up to `pair_cap` pairs the detector is exhaustive;
// above it, it tracks a deterministic pseudo-random sample of `pair_cap`
// pairs and starved_pair_fraction() becomes an estimator (the sampled and
// exhaustive modes agree in expectation; obs_test pins the agreement).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/ring.hpp"
#include "util/time.hpp"

namespace ccstarve::obs {

class StarvationDetector {
 public:
  // Ratio reported when the window minimum is zero bytes while the maximum
  // is not — "infinitely starved", clamped to stay JSON-representable.
  static constexpr double kStarvedRatioCap = 1e6;

  struct PairCrossing {
    uint32_t a = 0;  // the faster flow at crossing time
    uint32_t b = 0;  // the slower flow
    TimeNs at = TimeNs::zero();
    double ratio = 0.0;  // the pair ratio at the crossing bucket
  };

  // Default cap on tracked pairs: exhaustive up to 128 flows (8128 pairs),
  // sampled beyond.
  static constexpr size_t kDefaultPairCap = 8192;

  StarvationDetector() = default;
  // `window_buckets` sliding-window length in sample buckets (>= 1);
  // `threshold` the ratio that counts as starvation (paper §7 uses
  // r >= 2 as "one flow gets less than half its share"); `pair_cap` the
  // maximum number of flow pairs tracked for crossings (see file header).
  void configure(size_t flows, size_t window_buckets, double threshold,
                 size_t ring_capacity, size_t pair_cap = kDefaultPairCap);

  // One call per closed sample bucket, in time order. `delivered_delta[i]`
  // is flow i's delivered-byte delta over the bucket; `started[i]` whether
  // the flow has sent anything yet (pre-start flows are excluded rather
  // than counted as starved).
  void on_bucket(TimeNs bucket_end, const std::vector<uint64_t>& delivered_delta,
                 const std::vector<bool>& started);

  // Worst-pair ratio timeline, one point per bucket once engaged.
  const RingSeries& timeline() const { return timeline_; }
  bool engaged() const { return engaged_; }
  double last_ratio() const { return last_ratio_; }
  // The flows realizing the last bucket's worst-pair ratio (ties resolve to
  // the lowest flow index). Meaningful once engaged(); the min flow is the
  // starvation victim a classifier should inspect.
  uint32_t last_max_flow() const { return last_max_flow_; }
  uint32_t last_min_flow() const { return last_min_flow_; }
  double threshold() const { return threshold_; }
  size_t window_buckets() const { return window_buckets_; }

  // First threshold crossing per tracked flow pair, in crossing-time order.
  const std::vector<PairCrossing>& crossings() const { return crossings_; }
  // Earliest crossing across all tracked pairs; TimeNs(-1) when none.
  TimeNs first_crossing() const {
    return crossings_.empty() ? TimeNs(-1) : crossings_.front().at;
  }

  // Number of pairs actually tracked, and whether they are a sample of the
  // full N(N-1)/2 set rather than all of it.
  size_t tracked_pair_count() const { return pairs_.size(); }
  bool sampled() const { return sampled_; }
  // Fraction of tracked pairs whose ratio has crossed the threshold at any
  // bucket so far. Exact when !sampled(); an unbiased estimate otherwise.
  double starved_pair_fraction() const {
    return pairs_.empty()
               ? 0.0
               : static_cast<double>(crossings_.size()) /
                     static_cast<double>(pairs_.size());
  }

 private:
  size_t flows_ = 0;
  size_t window_buckets_ = 1;
  double threshold_ = 2.0;

  // Per-flow circular window of bucket deltas plus its running sum.
  std::vector<std::vector<uint64_t>> deltas_;
  std::vector<uint64_t> window_sum_;
  std::vector<size_t> window_fill_;  // buckets accumulated since start
  std::vector<bool> flow_started_;
  size_t next_slot_ = 0;

  bool engaged_ = false;
  double last_ratio_ = 1.0;
  uint32_t last_max_flow_ = 0;
  uint32_t last_min_flow_ = 0;
  RingSeries timeline_{4096};
  std::vector<PairCrossing> crossings_;
  // Tracked pairs (i < j) and their crossed bits, parallel vectors. Either
  // the full upper triangle (exhaustive) or a deterministic sample.
  std::vector<std::pair<uint32_t, uint32_t>> pairs_;
  std::vector<bool> pair_crossed_;
  bool sampled_ = false;
};

}  // namespace ccstarve::obs
