// Sliding-window throughput-ratio starvation detector (the paper's §7
// metric, made into a timeline instead of an end-of-run scalar).
//
// FlowTelemetry feeds it one delivered-bytes delta per flow per sample
// bucket. The detector maintains a sliding window of the last W buckets per
// flow and, once every flow has started and a full window has elapsed,
// computes the max/min delivered ratio across flows for every bucket — the
// worst-pair ratio timeline — plus, per flow pair, the first time the
// pair's ratio crossed the configured threshold. A run's end-of-run verdict
// (ratio at the final bucket) and the first-crossing timestamp together say
// not only *that* a flow starved but *when* it started to.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/ring.hpp"
#include "util/time.hpp"

namespace ccstarve::obs {

class StarvationDetector {
 public:
  // Ratio reported when the window minimum is zero bytes while the maximum
  // is not — "infinitely starved", clamped to stay JSON-representable.
  static constexpr double kStarvedRatioCap = 1e6;

  struct PairCrossing {
    uint32_t a = 0;  // the faster flow at crossing time
    uint32_t b = 0;  // the slower flow
    TimeNs at = TimeNs::zero();
    double ratio = 0.0;  // the pair ratio at the crossing bucket
  };

  StarvationDetector() = default;
  // `window_buckets` sliding-window length in sample buckets (>= 1);
  // `threshold` the ratio that counts as starvation (paper §7 uses
  // r >= 2 as "one flow gets less than half its share").
  void configure(size_t flows, size_t window_buckets, double threshold,
                 size_t ring_capacity);

  // One call per closed sample bucket, in time order. `delivered_delta[i]`
  // is flow i's delivered-byte delta over the bucket; `started[i]` whether
  // the flow has sent anything yet (pre-start flows are excluded rather
  // than counted as starved).
  void on_bucket(TimeNs bucket_end, const std::vector<uint64_t>& delivered_delta,
                 const std::vector<bool>& started);

  // Worst-pair ratio timeline, one point per bucket once engaged.
  const RingSeries& timeline() const { return timeline_; }
  bool engaged() const { return engaged_; }
  double last_ratio() const { return last_ratio_; }
  double threshold() const { return threshold_; }
  size_t window_buckets() const { return window_buckets_; }

  // First threshold crossing per flow pair, in crossing-time order.
  const std::vector<PairCrossing>& crossings() const { return crossings_; }
  // Earliest crossing across all pairs; TimeNs(-1) when none happened.
  TimeNs first_crossing() const {
    return crossings_.empty() ? TimeNs(-1) : crossings_.front().at;
  }

 private:
  size_t flows_ = 0;
  size_t window_buckets_ = 1;
  double threshold_ = 2.0;

  // Per-flow circular window of bucket deltas plus its running sum.
  std::vector<std::vector<uint64_t>> deltas_;
  std::vector<uint64_t> window_sum_;
  std::vector<size_t> window_fill_;  // buckets accumulated since start
  std::vector<bool> flow_started_;
  size_t next_slot_ = 0;

  bool engaged_ = false;
  double last_ratio_ = 1.0;
  RingSeries timeline_{4096};
  std::vector<PairCrossing> crossings_;
  std::vector<bool> pair_crossed_;  // flows_ x flows_ upper triangle
};

}  // namespace ccstarve::obs
