#include "obs/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "obs/flight.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"

namespace ccstarve::obs {

namespace {

// Canonical number rendering, mirroring sweep/grid.hpp's canon_num so
// telemetry JSONL is byte-comparable across runs. Not shared with the sweep
// library: obs sits below it in the dependency order (sweep links obs).
std::string json_num(double v) {
  if (std::isnan(v)) return "0";
  if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  std::string s = buf;
  if (s == "-0") s = "0";
  return s;
}

void append_num(std::string& j, const char* field, double v) {
  j += '"';
  j += field;
  j += "\":";
  j += json_num(v);
}

void append_str(std::string& j, const char* field, const std::string& v) {
  j += '"';
  j += field;
  j += "\":\"";
  for (char c : v) {
    if (c == '"' || c == '\\') j += '\\';
    j += c;
  }
  j += '"';
}

void append_agg(std::string& j, const char* field,
                const StreamingAggregate& a) {
  j += '"';
  j += field;
  j += "\":{";
  append_num(j, "n", static_cast<double>(a.count()));
  j += ',';
  append_num(j, "mean", a.mean());
  j += ',';
  append_num(j, "var", a.variance());
  j += ',';
  append_num(j, "min", a.min());
  j += ',';
  append_num(j, "max", a.max());
  j += ',';
  append_num(j, "p50", a.p50());
  j += ',';
  append_num(j, "p90", a.p90());
  j += ',';
  append_num(j, "p99", a.p99());
  j += '}';
}

}  // namespace

FlowTelemetry::FlowTelemetry(TelemetryConfig config)
    : config_(std::move(config)) {
  if (config_.interval <= TimeNs::zero()) config_.interval = TimeNs::millis(10);
  if (config_.sink != nullptr) {
    out_ = config_.sink;
  } else if (config_.jsonl != nullptr) {
    owned_sink_ = std::make_unique<OstreamSink>(*config_.jsonl);
    out_ = owned_sink_.get();
  }
}

void FlowTelemetry::init_flows(size_t n, TimeNs now) {
  flows_.clear();
  accum_.assign(n, FlowAccum{});
  for (size_t i = 0; i < n; ++i) {
    FlowSeries fs;
    fs.send_mbps = RingSeries(config_.ring_capacity);
    fs.deliver_mbps = RingSeries(config_.ring_capacity);
    fs.rtt_ms = RingSeries(config_.ring_capacity);
    fs.cwnd_bytes = RingSeries(config_.ring_capacity);
    flows_.push_back(std::move(fs));
  }
  link_ = LinkSeries{};
  link_.queue_ms = RingSeries(config_.ring_capacity);
  link_.drops = RingSeries(config_.ring_capacity);
  bucket_delivered_delta_.assign(n, 0);
  bucket_started_.assign(n, false);
  const int64_t w = config_.ratio_window.ns() / config_.interval.ns();
  starvation_.configure(n, static_cast<size_t>(std::max<int64_t>(1, w)),
                        config_.starvation_threshold, config_.ring_capacity,
                        config_.starvation_pair_cap);
  emitted_crossings_ = 0;
  flight_crossings_ = 0;
  cur_bucket_ = bucket_of(now);
  next_close_ns_ = (cur_bucket_ + 1) * config_.interval.ns();
  buckets_closed_ = 0;
  attached_at_ns_ = now.ns();
  attached_ = true;
  summaries_written_ = false;
}

void FlowTelemetry::attach(Scenario& sc) {
  init_flows(sc.flow_count(), sc.sim().now());
  for (size_t i = 0; i < flows_.size(); ++i) {
    const Sender& s = sc.sender(i);
    // Seed the cumulative counters a cold-attached probe would have
    // accumulated by now, so a probe attached to a fork reproduces the
    // cold run's post-fork deltas exactly.
    accum_[i].sent_bytes = s.packets_sent() * kMss;
    accum_[i].delivered_bytes = s.delivered_bytes();
    flows_[i].sent_bytes = accum_[i].sent_bytes;
    flows_[i].delivered_bytes = accum_[i].delivered_bytes;
    accum_[i].prev_sent = accum_[i].sent_bytes;
    accum_[i].prev_delivered = accum_[i].delivered_bytes;
    accum_[i].min_rtt_ms = sc.min_rtt(i).to_seconds() * 1e3;
    accum_[i].last_cwnd = s.cca().cwnd_bytes();
    accum_[i].last_pacing = s.cca().pacing_rate();
    // A flow blocked on the receiver window at attach time starts its
    // rwnd-limited interval here; the transition hook only fires on
    // subsequent gate changes.
    accum_[i].rwnd_since_ns = s.rwnd_blocked() ? sc.sim().now().ns() : -1;
  }
  if (sc.has_bottleneck()) {
    link_queue_bytes_ = sc.link().queued_bytes();
    link_.drops_total = sc.link().drops();
    link_prev_drops_ = link_.drops_total;
    const Rate r = sc.link().rate();
    link_rate_mbps_ = r.is_infinite() ? -1.0 : r.to_mbps();
  } else {
    link_queue_bytes_ = 0;
    link_rate_mbps_ = -1.0;
  }
  link_prev_delivered_ = link_.delivered_bytes;
  sc.sim().set_telemetry(this);

  if (emitting() && !meta_written_) {
    meta_written_ = true;
    std::string j = "{";
    append_str(j, "type", "meta");
    j += ',';
    append_num(j, "flows", static_cast<double>(flows_.size()));
    j += ',';
    append_num(j, "interval_ms", config_.interval.to_seconds() * 1e3);
    j += ',';
    append_num(j, "ratio_window_ms", config_.ratio_window.to_seconds() * 1e3);
    j += ',';
    append_num(j, "threshold", config_.starvation_threshold);
    j += ',';
    append_num(j, "attached_at_s", sc.sim().now().to_seconds());
    j += ',';
    append_num(j, "link_mbps", link_rate_mbps_);
    j += ",\"labels\":[";
    for (size_t i = 0; i < flows_.size(); ++i) {
      if (i) j += ',';
      j += '"';
      j += i < config_.flow_labels.size() ? config_.flow_labels[i] : "";
      j += '"';
    }
    j += "],\"min_rtt_ms\":[";
    for (size_t i = 0; i < flows_.size(); ++i) {
      if (i) j += ',';
      j += json_num(accum_[i].min_rtt_ms);
    }
    j += "]}";
    emit(j);
  }
}

void FlowTelemetry::attach(Simulator& sim, size_t flows) {
  init_flows(flows, sim.now());
  link_queue_bytes_ = 0;
  link_rate_mbps_ = -1.0;
  sim.set_telemetry(this);
  if (emitting() && !meta_written_) {
    meta_written_ = true;
    std::string j = "{";
    append_str(j, "type", "meta");
    j += ',';
    append_num(j, "flows", static_cast<double>(flows));
    j += ',';
    append_num(j, "interval_ms", config_.interval.to_seconds() * 1e3);
    j += ',';
    append_num(j, "ratio_window_ms", config_.ratio_window.to_seconds() * 1e3);
    j += ',';
    append_num(j, "threshold", config_.starvation_threshold);
    j += ',';
    append_num(j, "attached_at_s", sim.now().to_seconds());
    j += ',';
    append_num(j, "link_mbps", -1.0);
    j += ",\"labels\":[";
    for (size_t i = 0; i < flows; ++i) {
      if (i) j += ',';
      j += '"';
      j += i < config_.flow_labels.size() ? config_.flow_labels[i] : "";
      j += '"';
    }
    j += "],\"min_rtt_ms\":[";
    for (size_t i = 0; i < flows; ++i) {
      if (i) j += ',';
      j += json_num(-1.0);
    }
    j += "]}";
    emit(j);
  }
}

void FlowTelemetry::advance_buckets(TimeNs now) {
  if (!attached_) return;
  const int64_t b = bucket_of(now);
  while (cur_bucket_ < b) {
    close_bucket(cur_bucket_);
    ++cur_bucket_;
  }
  next_close_ns_ = (cur_bucket_ + 1) * config_.interval.ns();
}

void FlowTelemetry::close_bucket(int64_t index) {
  const TimeNs bucket_end =
      TimeNs::nanos((index + 1) * config_.interval.ns());
  const double t_s = bucket_end.to_seconds();
  const double interval_s = config_.interval.to_seconds();
  const int64_t bucket_start_ns = index * config_.interval.ns();
  const int64_t bucket_end_ns = bucket_end.ns();

  for (size_t i = 0; i < flows_.size(); ++i) {
    FlowSeries& fs = flows_[i];
    FlowAccum& ac = accum_[i];
    const uint64_t sent_delta = ac.sent_bytes - ac.prev_sent;
    const uint64_t deliver_delta = ac.delivered_bytes - ac.prev_delivered;
    ac.prev_sent = ac.sent_bytes;
    ac.prev_delivered = ac.delivered_bytes;
    fs.sent_bytes = ac.sent_bytes;
    fs.delivered_bytes = ac.delivered_bytes;
    fs.drops = ac.drops;
    bucket_delivered_delta_[i] = deliver_delta;
    bucket_started_[i] = ac.sent_bytes > 0;

    const double send_mbps =
        static_cast<double>(sent_delta) * 8.0 / interval_s * 1e-6;
    const double deliver_mbps =
        static_cast<double>(deliver_delta) * 8.0 / interval_s * 1e-6;
    // Receiver-window-limited time inside this bucket: the closed intervals
    // plus the overlap of a still-open blocked interval. An open interval
    // keeps contributing to later buckets from their start.
    int64_t rwnd_ns = ac.rwnd_ns_in_bucket;
    if (ac.rwnd_since_ns >= 0) {
      rwnd_ns += std::max<int64_t>(
          0, bucket_end_ns - std::max(ac.rwnd_since_ns, bucket_start_ns));
    }
    ac.rwnd_ns_in_bucket = 0;
    ac.rwnd_ns_total += rwnd_ns;
    const double rwnd_frac =
        std::min(1.0, static_cast<double>(rwnd_ns) /
                          static_cast<double>(config_.interval.ns()));

    const bool have_rtt = ac.last_rtt_ns >= 0;
    const double rtt_ms =
        have_rtt ? TimeNs::nanos(ac.last_rtt_ns).to_seconds() * 1e3 : 0.0;
    const double qdelay_ms =
        have_rtt && ac.min_rtt_ms >= 0.0
            ? std::max(0.0, rtt_ms - ac.min_rtt_ms)
            : 0.0;

    fs.send_mbps.push(bucket_end, send_mbps);
    fs.deliver_mbps.push(bucket_end, deliver_mbps);
    fs.rtt_ms.push(bucket_end, rtt_ms);
    fs.cwnd_bytes.push(bucket_end, static_cast<double>(ac.last_cwnd));
    fs.agg_send_mbps.add(send_mbps);
    fs.agg_deliver_mbps.add(deliver_mbps);
    if (have_rtt) {
      fs.agg_rtt_ms.add(rtt_ms);
      if (ac.min_rtt_ms >= 0.0) fs.agg_qdelay_ms.add(qdelay_ms);
    }

    if (emitting()) {
      std::string j = "{";
      append_str(j, "type", "sample");
      j += ',';
      append_num(j, "t_s", t_s);
      j += ',';
      append_num(j, "flow", static_cast<double>(i));
      j += ',';
      append_num(j, "send_mbps", send_mbps);
      j += ',';
      append_num(j, "deliver_mbps", deliver_mbps);
      j += ',';
      append_num(j, "rtt_ms", rtt_ms);
      j += ',';
      append_num(j, "qdelay_ms", qdelay_ms);
      j += ',';
      append_num(j, "cwnd_bytes", static_cast<double>(ac.last_cwnd));
      j += ',';
      append_num(j, "pacing_mbps",
                 ac.last_pacing.is_infinite() ? 0.0 : ac.last_pacing.to_mbps());
      j += ',';
      append_num(j, "jitter_ms",
                 TimeNs::nanos(ac.bucket_max_jitter_ns).to_seconds() * 1e3);
      j += ',';
      append_num(j, "rwnd_frac", rwnd_frac);
      j += '}';
      emit(j);
    }
    ac.bucket_max_jitter_ns = 0;
  }

  // Link row: queue depth expressed as drain time at the last known rate.
  const double queue_ms =
      link_rate_mbps_ > 0.0
          ? static_cast<double>(link_queue_bytes_) * 8.0 /
                (link_rate_mbps_ * 1e6) * 1e3
          : 0.0;
  const uint64_t drop_delta = link_.drops_total - link_prev_drops_;
  const uint64_t link_deliver_delta =
      link_.delivered_bytes - link_prev_delivered_;
  link_prev_drops_ = link_.drops_total;
  link_prev_delivered_ = link_.delivered_bytes;
  link_.queue_ms.push(bucket_end, queue_ms);
  link_.drops.push(bucket_end, static_cast<double>(drop_delta));
  link_.agg_queue_ms.add(queue_ms);
  if (emitting()) {
    std::string j = "{";
    append_str(j, "type", "link");
    j += ',';
    append_num(j, "t_s", t_s);
    j += ',';
    append_num(j, "queue_bytes", static_cast<double>(link_queue_bytes_));
    j += ',';
    append_num(j, "queue_ms", queue_ms);
    j += ',';
    append_num(j, "drops", static_cast<double>(drop_delta));
    j += ',';
    append_num(j, "deliver_mbps",
               static_cast<double>(link_deliver_delta) * 8.0 / interval_s *
                   1e-6);
    j += '}';
    emit(j);
  }

  starvation_.on_bucket(bucket_end, bucket_delivered_delta_, bucket_started_);
  // Forward new detector crossings to the flight recorder regardless of
  // whether a JSONL stream exists: the recorder's retroactive trigger must
  // arm even on stream-less runs.
  if (config_.flight != nullptr) {
    for (; flight_crossings_ < starvation_.crossings().size();
         ++flight_crossings_) {
      const StarvationDetector::PairCrossing& c =
          starvation_.crossings()[flight_crossings_];
      config_.flight->note_crossing(c.at, c.a, c.b, c.ratio);
    }
  }
  if (emitting() && starvation_.engaged()) {
    std::string j = "{";
    append_str(j, "type", "ratio");
    j += ',';
    append_num(j, "t_s", t_s);
    j += ',';
    append_num(j, "ratio", starvation_.last_ratio());
    j += '}';
    emit(j);
    for (; emitted_crossings_ < starvation_.crossings().size();
         ++emitted_crossings_) {
      const StarvationDetector::PairCrossing& c =
          starvation_.crossings()[emitted_crossings_];
      std::string k = "{";
      append_str(k, "type", "crossing");
      k += ',';
      append_num(k, "t_s", c.at.to_seconds());
      k += ',';
      append_num(k, "a", static_cast<double>(c.a));
      k += ',';
      append_num(k, "b", static_cast<double>(c.b));
      k += ',';
      append_num(k, "ratio", c.ratio);
      k += ',';
      append_num(k, "threshold", starvation_.threshold());
      k += '}';
      emit(k);
    }
  }
  ++buckets_closed_;
}

void FlowTelemetry::finish(TimeNs end_time) {
  note_time(end_time);
  // Sync the public counters once more: events in the final partial bucket
  // (if end_time is off the grid) have updated only the accumulators.
  for (size_t i = 0; i < flows_.size(); ++i) {
    flows_[i].sent_bytes = accum_[i].sent_bytes;
    flows_[i].delivered_bytes = accum_[i].delivered_bytes;
    flows_[i].drops = accum_[i].drops;
  }
  if (!summaries_written_) {
    summaries_written_ = true;
    if (config_.flight != nullptr) {
      const bool starved =
          starvation_.engaged() &&
          starvation_.last_ratio() >= starvation_.threshold();
      const uint32_t victim = starvation_.last_min_flow();
      std::string kind = "none";
      if (starved) {
        kind = victim < flows_.size() &&
                       rwnd_limited_frac(victim, end_time) >= 0.5
                   ? "receiver-limited"
                   : "congestion-limited";
      }
      config_.flight->note_verdict(
          end_time, starved, victim, kind,
          starvation_.engaged() ? starvation_.last_ratio() : 1.0);
    }
    emit_summaries(end_time);
    if (emitting()) out_->finish();
  }
}

void FlowTelemetry::note_warp(Scenario& sc, TimeNs from, TimeNs to,
                              const std::vector<uint64_t>& credit_bytes) {
  if (!attached_) {
    attach(sc);
    return;
  }
  advance_buckets(from);
  if (emitting()) {
    uint64_t total = 0;
    for (uint64_t c : credit_bytes) total += c;
    std::string j = "{";
    append_str(j, "type", "warp");
    j += ',';
    append_num(j, "from_s", from.to_seconds());
    j += ',';
    append_num(j, "to_s", to.to_seconds());
    j += ',';
    append_num(j, "credited_bytes", static_cast<double>(total));
    j += ",\"credits\":[";
    for (size_t i = 0; i < flows_.size(); ++i) {
      if (i) j += ',';
      j += json_num(i < credit_bytes.size()
                        ? static_cast<double>(credit_bytes[i])
                        : 0.0);
    }
    j += "]}";
    emit(j);
  }
  // Jump the grid across the gap.
  cur_bucket_ = bucket_of(to);
  next_close_ns_ = (cur_bucket_ + 1) * config_.interval.ns();
  // Re-anchor every delta baseline on the forked scenario's (credited)
  // counters, so the first post-warp bucket reports only post-warp
  // activity; last-value gauges refresh from the forked CCA clones.
  for (size_t i = 0; i < flows_.size() && i < sc.flow_count(); ++i) {
    const Sender& s = sc.sender(i);
    FlowAccum& ac = accum_[i];
    ac.sent_bytes = s.packets_sent() * kMss;
    ac.delivered_bytes = s.delivered_bytes();
    ac.prev_sent = ac.sent_bytes;
    ac.prev_delivered = ac.delivered_bytes;
    ac.last_cwnd = s.cca().cwnd_bytes();
    ac.last_pacing = s.cca().pacing_rate();
    flows_[i].sent_bytes = ac.sent_bytes;
    flows_[i].delivered_bytes = ac.delivered_bytes;
    // Re-seat the gate interval on the forked sender's live gate state (an
    // interval spanning the warp gap contributes nothing for the skipped
    // buckets, which never close).
    ac.rwnd_ns_in_bucket = 0;
    ac.rwnd_since_ns = s.rwnd_blocked() ? to.ns() : -1;
  }
  if (sc.has_bottleneck()) {
    uint64_t total = 0;
    for (uint64_t c : credit_bytes) total += c;
    link_queue_bytes_ = sc.link().queued_bytes();
    link_.delivered_bytes += total;
    link_prev_delivered_ = link_.delivered_bytes;
    link_.drops_total = sc.link().drops();
    link_prev_drops_ = link_.drops_total;
  }
  sc.sim().set_telemetry(this);
}

void FlowTelemetry::emit_summaries(TimeNs end_time) {
  if (!emitting()) return;
  // Whole-run receiver-window-limited fraction per flow: the closed bucket
  // totals plus whatever accumulated in the final partial bucket, including
  // a still-open blocked interval reaching end_time.
  std::vector<double> rwnd_frac(flows_.size(), 0.0);
  for (size_t i = 0; i < flows_.size(); ++i) {
    rwnd_frac[i] = rwnd_limited_frac(i, end_time);
  }
  for (size_t i = 0; i < flows_.size(); ++i) {
    const FlowSeries& fs = flows_[i];
    std::string j = "{";
    append_str(j, "type", "flow_summary");
    j += ',';
    append_num(j, "flow", static_cast<double>(i));
    j += ',';
    append_str(j, "label",
               i < config_.flow_labels.size() ? config_.flow_labels[i] : "");
    j += ',';
    append_num(j, "sent_bytes", static_cast<double>(fs.sent_bytes));
    j += ',';
    append_num(j, "delivered_bytes", static_cast<double>(fs.delivered_bytes));
    j += ',';
    append_num(j, "drops", static_cast<double>(fs.drops));
    j += ',';
    append_agg(j, "send_mbps", fs.agg_send_mbps);
    j += ',';
    append_agg(j, "deliver_mbps", fs.agg_deliver_mbps);
    j += ',';
    append_agg(j, "rtt_ms", fs.agg_rtt_ms);
    j += ',';
    append_agg(j, "qdelay_ms", fs.agg_qdelay_ms);
    j += ',';
    append_num(j, "rwnd_limited_frac", rwnd_frac[i]);
    j += '}';
    emit(j);
  }
  const bool starved = starvation_.engaged() &&
                       starvation_.last_ratio() >= starvation_.threshold();
  // Classify a starved run by its victim (the worst pair's min flow): a
  // victim that spent most of the run blocked on the receiver window is
  // receiver-limited; otherwise the bottleneck (congestion) starved it.
  const uint32_t victim = starvation_.last_min_flow();
  std::string kind = "none";
  if (starved) {
    kind = victim < rwnd_frac.size() && rwnd_frac[victim] >= 0.5
               ? "receiver-limited"
               : "congestion-limited";
  }
  std::string j = "{";
  append_str(j, "type", "end");
  j += ',';
  append_num(j, "t_s", end_time.to_seconds());
  j += ',';
  append_num(j, "buckets", static_cast<double>(buckets_closed_));
  j += ',';
  append_num(j, "ratio",
             starvation_.engaged() ? starvation_.last_ratio() : 1.0);
  j += ',';
  append_num(j, "starved", starved ? 1.0 : 0.0);
  j += ',';
  append_num(j, "first_crossing_s",
             starvation_.first_crossing() == TimeNs(-1)
                 ? -1.0
                 : starvation_.first_crossing().to_seconds());
  j += ',';
  append_num(j, "threshold", starvation_.threshold());
  j += ',';
  append_num(j, "link_drops", static_cast<double>(link_.drops_total));
  j += ',';
  append_str(j, "starved_kind", kind);
  j += ',';
  append_num(j, "starved_flow",
             starved ? static_cast<double>(victim) : -1.0);
  j += '}';
  emit(j);
}

double FlowTelemetry::rwnd_limited_frac(size_t i, TimeNs end_time) const {
  const int64_t elapsed_ns = end_time.ns() - attached_at_ns_;
  if (elapsed_ns <= 0 || i >= accum_.size()) return 0.0;
  const FlowAccum& ac = accum_[i];
  int64_t total = ac.rwnd_ns_total + ac.rwnd_ns_in_bucket;
  if (ac.rwnd_since_ns >= 0) {
    const int64_t bucket_start_ns = cur_bucket_ * config_.interval.ns();
    total += std::max<int64_t>(
        0, end_time.ns() - std::max(ac.rwnd_since_ns, bucket_start_ns));
  }
  return std::min(1.0, static_cast<double>(total) /
                           static_cast<double>(elapsed_ns));
}

void FlowTelemetry::on_segment_sent(TimeNs now, const Packet& pkt) {
  note_time(now);
  // Persist probes are excluded: attach/note_warp seed sent_bytes from the
  // sender's packets_sent() column, which never counts probes, and the
  // throughput series must not see 40-byte probe blips.
  if (pkt.flow < accum_.size() && !pkt.is_dummy && !pkt.is_probe) {
    accum_[pkt.flow].sent_bytes += pkt.bytes;
  }
}

void FlowTelemetry::on_send_gate(TimeNs now, uint32_t flow, SendGate gate) {
  note_time(now);
  if (flow >= accum_.size()) return;
  FlowAccum& ac = accum_[flow];
  const bool blocked = gate == SendGate::kRwnd;
  if (blocked == (ac.rwnd_since_ns >= 0)) return;
  if (blocked) {
    ac.rwnd_since_ns = now.ns();
  } else {
    const int64_t bucket_start_ns = cur_bucket_ * config_.interval.ns();
    ac.rwnd_ns_in_bucket += std::max<int64_t>(
        0, now.ns() - std::max(ac.rwnd_since_ns, bucket_start_ns));
    ac.rwnd_since_ns = -1;
  }
}

void FlowTelemetry::on_ack_sample(TimeNs now, uint32_t flow, TimeNs rtt,
                                  uint64_t cwnd_bytes, Rate pacing,
                                  uint64_t delivered_bytes) {
  note_time(now);
  if (flow >= accum_.size()) return;
  FlowAccum& ac = accum_[flow];
  ac.delivered_bytes = delivered_bytes;
  ac.last_rtt_ns = rtt.ns();
  ac.last_cwnd = cwnd_bytes;
  ac.last_pacing = pacing;
}

void FlowTelemetry::on_link_enqueue(TimeNs now, const Packet&,
                                    uint64_t queued_after) {
  note_time(now);
  link_queue_bytes_ = queued_after;
}

void FlowTelemetry::on_link_drop(TimeNs now, const Packet& pkt) {
  note_time(now);
  ++link_.drops_total;
  if (pkt.flow < accum_.size() && !pkt.is_dummy) ++accum_[pkt.flow].drops;
}

void FlowTelemetry::on_link_deliver(TimeNs now, const Packet& pkt,
                                    uint64_t queued_after) {
  note_time(now);
  link_queue_bytes_ = queued_after;
  link_.delivered_bytes += pkt.bytes;
}

void FlowTelemetry::on_link_rate_change(TimeNs now, Rate rate) {
  note_time(now);
  link_rate_mbps_ = rate.is_infinite() ? -1.0 : rate.to_mbps();
}

void FlowTelemetry::on_jitter_admit(TimeNs arrival, TimeNs release,
                                    const Packet& pkt, bool /*ack_path*/,
                                    TimeNs /*budget*/) {
  note_time(arrival);
  if (pkt.flow >= accum_.size()) return;
  FlowAccum& ac = accum_[pkt.flow];
  ac.bucket_max_jitter_ns =
      std::max(ac.bucket_max_jitter_ns, (release - arrival).ns());
}

}  // namespace ccstarve::obs
