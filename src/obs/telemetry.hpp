// FlowTelemetry: the concrete ObsProbe (sim/obs_probe.hpp).
//
// Samples per-flow and per-link series on a fixed cadence without ever
// scheduling simulator events: every hook first lazily closes any sample
// buckets the observed event time has moved past (buckets are aligned to
// the absolute grid [k*I, (k+1)*I)), then folds the event into the current
// bucket's accumulators. Because bucket closing is driven purely by the
// event stream — which is identical with and without the probe — attaching
// telemetry leaves golden trace digests byte-identical.
//
// Per closed bucket and flow: send/deliver throughput (delta of cumulative
// byte counters), the last raw RTT sample (carry-forward), queueing delay
// (RTT minus the flow's propagation floor), cwnd, pacing rate, and the
// largest jitter-box delay admitted in the bucket. Per bucket and link:
// queue depth/delay and drop/deliver deltas. Each series lands in a
// fixed-capacity ring (obs/ring.hpp) plus an O(1) streaming aggregate
// (obs/aggregate.hpp), so memory is bounded by
//   flows * (4 rings * capacity * 16 B + 4 aggregates * ~200 B)
// regardless of horizon. Closed buckets also feed the starvation detector
// (obs/starvation.hpp) and, when configured, a JSONL stream that
// tools/ccstarve_report turns into figure data.
//
// Attach mid-run (e.g. to a forked Scenario) seeds the cumulative counters
// from live component state, so a fork-attached probe reproduces the
// series a cold-attached run records for every post-fork bucket (pinned by
// tests/obs_test.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "obs/aggregate.hpp"
#include "obs/ring.hpp"
#include "obs/sink.hpp"
#include "obs/starvation.hpp"
#include "sim/obs_probe.hpp"
#include "util/rate.hpp"
#include "util/time.hpp"

namespace ccstarve {
class Scenario;
class Simulator;
}  // namespace ccstarve

namespace ccstarve::obs {

class FlightRecorder;

struct TelemetryConfig {
  // Sample cadence; buckets align to the absolute grid [k*I, (k+1)*I).
  TimeNs interval = TimeNs::millis(10);
  // Samples retained per ring series (older ones live on in aggregates).
  size_t ring_capacity = 4096;
  // Sliding window of the starvation-ratio timeline.
  TimeNs ratio_window = TimeNs::seconds(1);
  // Throughput ratio that counts as starvation (paper §7: >= 2).
  double starvation_threshold = 2.0;
  // Cap on flow pairs tracked for threshold crossings; above it the
  // detector samples deterministically (see obs/starvation.hpp).
  size_t starvation_pair_cap = StarvationDetector::kDefaultPairCap;
  // When set, one JSON object per closed bucket/flow is streamed here
  // (meta + sample/link/ratio lines, then summaries from finish()). The
  // line sequence is sink-independent: an OstreamSink writing a --metrics
  // file, a MemorySink, and the serve subsystem's subscriber fan-out all
  // observe byte-identical streams (pinned by tests/obs_test.cpp).
  TelemetrySink* sink = nullptr;
  // Convenience for the common JSONL-file case: when `sink` is null and
  // this is set, the probe emits through an internally owned OstreamSink.
  std::ostream* jsonl = nullptr;
  // Optional per-flow labels (CCA names) for the meta line.
  std::vector<std::string> flow_labels;
  // Optional flight recorder (obs/flight.hpp), notified of detector pair
  // crossings — the first one arms its retroactive trigger — and of the
  // end-of-run starvation verdict. Purely an extra consumer: the JSONL
  // stream and golden digests are unchanged by setting this.
  FlightRecorder* flight = nullptr;
};

class FlowTelemetry final : public ObsProbe {
 public:
  struct FlowSeries {
    RingSeries send_mbps;
    RingSeries deliver_mbps;
    RingSeries rtt_ms;
    RingSeries cwnd_bytes;
    StreamingAggregate agg_send_mbps;
    StreamingAggregate agg_deliver_mbps;
    StreamingAggregate agg_rtt_ms;
    StreamingAggregate agg_qdelay_ms;
    // Cumulative counters, synced from the hook-side accumulators at every
    // bucket close and at finish() (hooks write the compact FlowAccum array
    // instead of these ~1 KB structs to keep per-event cache traffic low).
    uint64_t sent_bytes = 0;
    uint64_t delivered_bytes = 0;
    uint64_t drops = 0;  // bottleneck drops attributed to this flow
  };

  struct LinkSeries {
    RingSeries queue_ms;
    RingSeries drops;  // drop delta per bucket
    StreamingAggregate agg_queue_ms;
    uint64_t drops_total = 0;
    uint64_t delivered_bytes = 0;
  };

  explicit FlowTelemetry(TelemetryConfig config = {});

  // Installs the probe on the scenario's simulator and seeds per-flow
  // cumulative counters, propagation floors and CCA gauges from live state.
  // Call any time at or before run_until; attach-to-a-fork is the
  // mid-stream case. The probe must outlive the scenario's run.
  void attach(Scenario& sc);
  // Standalone topologies (e.g. the trace-driven link) that have no
  // Scenario: flows are assumed fresh, propagation floors unknown.
  void attach(Simulator& sim, size_t flows);

  // Closes every bucket that ends at or before `end_time` and, when a JSONL
  // stream is configured, emits per-flow summary + end lines. Idempotent
  // per bucket; call once after run_until(end).
  void finish(TimeNs end_time);

  // Fast-forward seam (sim/warp): closes the buckets before `from`, emits a
  // {"type":"warp"} marker, jumps the bucket grid to `to` — the gap's
  // buckets simply never close, so the stream skips them — then re-syncs
  // cumulative counters, floors and gauges from the forked scenario and
  // installs the probe on its simulator. Rings, aggregates and crossing
  // history are preserved across the seam; the partial bucket containing
  // `from` is dropped (its baseline is re-anchored post-warp).
  void note_warp(Scenario& sc, TimeNs from, TimeNs to,
                 const std::vector<uint64_t>& credit_bytes);

  size_t flow_count() const { return flows_.size(); }
  const FlowSeries& flow(size_t i) const { return flows_[i]; }
  const LinkSeries& link() const { return link_; }
  const StarvationDetector& starvation() const { return starvation_; }
  uint64_t buckets_closed() const { return buckets_closed_; }
  TimeNs interval() const { return config_.interval; }

  // --- ObsProbe hooks ---
  void on_segment_sent(TimeNs now, const Packet& pkt) override;
  void on_ack_sample(TimeNs now, uint32_t flow, TimeNs rtt,
                     uint64_t cwnd_bytes, Rate pacing,
                     uint64_t delivered_bytes) override;
  void on_link_enqueue(TimeNs now, const Packet& pkt,
                       uint64_t queued_after) override;
  void on_link_drop(TimeNs now, const Packet& pkt) override;
  void on_link_deliver(TimeNs now, const Packet& pkt,
                       uint64_t queued_after) override;
  void on_link_rate_change(TimeNs now, Rate rate) override;
  void on_jitter_admit(TimeNs arrival, TimeNs release, const Packet& pkt,
                       bool ack_path, TimeNs budget) override;
  void on_send_gate(TimeNs now, uint32_t flow, SendGate gate) override;

 private:
  // Per-flow bucket-scoped accumulators (reset or carried at bucket close).
  // Hooks store raw ns / Rate values; conversion to ms/Mbit/s is deferred
  // to close_bucket so per-event hook bodies stay a few integer stores.
  struct FlowAccum {
    uint64_t sent_bytes = 0;
    uint64_t delivered_bytes = 0;
    uint64_t drops = 0;
    uint64_t prev_sent = 0;
    uint64_t prev_delivered = 0;
    int64_t last_rtt_ns = -1;      // < 0: no sample observed yet
    double min_rtt_ms = -1.0;      // < 0: propagation floor unknown
    uint64_t last_cwnd = 0;
    Rate last_pacing;
    int64_t bucket_max_jitter_ns = 0;
    // Receiver-window-limited time accounting. rwnd_since_ns >= 0 while the
    // flow's send gate is SendGate::kRwnd; closed intervals within the
    // current bucket accumulate in rwnd_ns_in_bucket, and close_bucket adds
    // the still-open overlap, emitting rwnd_frac per sample.
    int64_t rwnd_since_ns = -1;
    int64_t rwnd_ns_in_bucket = 0;
    int64_t rwnd_ns_total = 0;
  };

  void init_flows(size_t n, TimeNs now);
  int64_t bucket_of(TimeNs t) const { return t.ns() / config_.interval.ns(); }
  // Closes all buckets with index < bucket_of(now). Hooks call this on
  // every event, so the no-rollover case must stay a compare + branch: the
  // division and close loop live out of line in advance_buckets().
  void note_time(TimeNs now) {
    if (now.ns() < next_close_ns_) return;
    advance_buckets(now);
  }
  void advance_buckets(TimeNs now);
  void close_bucket(int64_t index);
  void emit_summaries(TimeNs end_time);
  // Whole-run receiver-window-limited fraction of flow i up to end_time
  // (closed buckets + the final partial one + a still-open interval).
  double rwnd_limited_frac(size_t i, TimeNs end_time) const;

  bool emitting() const { return out_ != nullptr; }
  void emit(const std::string& l) { out_->line(l); }

  TelemetryConfig config_;
  // Resolved sink: config_.sink, else an owned OstreamSink over
  // config_.jsonl, else null (no emission).
  TelemetrySink* out_ = nullptr;
  std::unique_ptr<OstreamSink> owned_sink_;
  std::vector<FlowSeries> flows_;
  std::vector<FlowAccum> accum_;
  LinkSeries link_;
  uint64_t link_queue_bytes_ = 0;
  uint64_t link_prev_drops_ = 0;
  uint64_t link_prev_delivered_ = 0;
  double link_rate_mbps_ = -1.0;  // < 0: unknown or infinite
  StarvationDetector starvation_;
  std::vector<uint64_t> bucket_delivered_delta_;  // scratch for the detector
  std::vector<bool> bucket_started_;
  size_t emitted_crossings_ = 0;
  size_t flight_crossings_ = 0;  // crossings forwarded to config_.flight
  int64_t cur_bucket_ = 0;
  // End of the current bucket in ns; INT64_MAX until attached so detached
  // calls fall through the fast path.
  int64_t next_close_ns_ = INT64_MAX;
  uint64_t buckets_closed_ = 0;
  int64_t attached_at_ns_ = 0;  // for the summary's rwnd_limited_frac
  bool attached_ = false;
  bool meta_written_ = false;
  bool summaries_written_ = false;
};

}  // namespace ccstarve::obs
