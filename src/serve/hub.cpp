#include "serve/hub.hpp"

#include <algorithm>
#include <chrono>

#include "serve/protocol.hpp"

namespace ccstarve::serve {

bool SubscriberQueue::offer(std::shared_ptr<const std::string> line) {
  bool ok;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ok = offer_locked(std::move(line));
  }
  if (!ok) not_empty_.notify_all();  // overflow/close: wake the consumer
  return ok;
}

bool SubscriberQueue::offer_batch(
    const std::vector<std::shared_ptr<const std::string>>& lines) {
  bool ok = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& line : lines) {
      if (!(ok = offer_locked(line))) break;
    }
  }
  if (!ok) not_empty_.notify_all();
  return ok;
}

bool SubscriberQueue::offer_locked(std::shared_ptr<const std::string> line) {
  if (closed_ || overflowed_) return false;
  if (items_.size() >= capacity_) {
    // Full: evict the oldest bulk line and fold its gap into whatever
    // follows it, keeping the reliable skeleton intact and ordered.
    bool evicted = false;
    for (size_t k = 0; k < items_.size(); ++k) {
      if (!is_bulk_line(*items_[k].line)) continue;
      const uint64_t gap = items_[k].dropped_before + 1;
      if (k + 1 < items_.size()) {
        items_[k + 1].dropped_before += gap;
      } else {
        pending_tail_drops_ += gap;
      }
      items_.erase(items_.begin() + static_cast<ptrdiff_t>(k));
      ++dropped_total_;
      evicted = true;
      break;
    }
    if (!evicted) {
      // All-reliable queue. A bulk arrival is droppable; a reliable one
      // means the consumer can never catch up within bounded memory.
      if (is_bulk_line(*line)) {
        ++pending_tail_drops_;
        ++dropped_total_;
        return true;
      }
      overflowed_ = true;
      closed_ = true;
      items_.clear();
      return false;
    }
  }
  StreamItem item{std::move(line), pending_tail_drops_};
  pending_tail_drops_ = 0;
  items_.push_back(std::move(item));
  return true;
}

// offer() deliberately never notifies (a futex wake per line per
// subscriber would dominate the publisher's cost; see the header), so an
// empty-queue wait is sliced: sleep at most kPollSlice on the condvar,
// recheck, repeat until the deadline. close() still notifies, so shutdown
// wakes a parked consumer instantly rather than a slice late.
//
// The slice is deliberately long. Each parked consumer costs one timer
// wakeup (and, on a busy machine, one preemption of the simulation
// thread) per slice: at 32 subscribers a 2 ms slice is 16k wakeups/s and
// measurably starves a single-core host, while 50 ms is 640/s. The queue
// absorbs the added latency easily — at the default capacity (8192) a
// publisher would need >160k lines/s before a napping consumer risks
// drops, two orders of magnitude above what a job emits.
constexpr auto kPollSlice = std::chrono::milliseconds(50);

std::optional<StreamItem> SubscriberQueue::pop_for(
    std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (!items_.empty()) {
      StreamItem item = std::move(items_.front());
      items_.pop_front();
      return item;
    }
    if (closed_) return std::nullopt;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return std::nullopt;
    not_empty_.wait_for(
        lock, std::min<std::chrono::steady_clock::duration>(
                  kPollSlice, deadline - now));
  }
}

std::vector<StreamItem> SubscriberQueue::pop_batch_for(
    std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (!items_.empty()) {
      std::vector<StreamItem> batch;
      batch.reserve(items_.size());
      for (auto& item : items_) batch.push_back(std::move(item));
      items_.clear();
      return batch;
    }
    if (closed_) return {};
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return {};
    not_empty_.wait_for(
        lock, std::min<std::chrono::steady_clock::duration>(
                  kPollSlice, deadline - now));
  }
}

void SubscriberQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
}

bool SubscriberQueue::drained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_ && items_.empty();
}

bool SubscriberQueue::overflowed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overflowed_;
}

uint64_t SubscriberQueue::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_total_;
}

size_t SubscriberQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

void SubscriberQueue::preload_dropped(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_tail_drops_ += n;
  dropped_total_ += n;
}

void JobChannel::publish(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  backlog_.line(line);
  if (subs_.empty()) return;
  // One allocation per line; each queue holds a reference, not a copy.
  pending_.push_back(std::make_shared<const std::string>(line));
  // Micro-batch: bulk lines can wait one burst; anything reliable (a
  // crossing, a summary, a sweep record) flushes immediately.
  if (pending_.size() >= kFlushBatch || !is_bulk_line(line)) flush_locked();
}

void JobChannel::flush_locked() {
  if (pending_.empty()) return;
  for (size_t i = 0; i < subs_.size();) {
    if (subs_[i]->offer_batch(pending_)) {
      ++i;
    } else {
      subs_.erase(subs_.begin() + static_cast<ptrdiff_t>(i));
    }
  }
  pending_.clear();
}

void JobChannel::finish() {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  finished_ = true;
  flush_locked();
  for (auto& q : subs_) q->close();
  subs_.clear();
}

bool JobChannel::finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_;
}

std::shared_ptr<SubscriberQueue> JobChannel::subscribe() {
  std::lock_guard<std::mutex> lock(mu_);
  // Flush so existing subscribers are fully caught up before this one
  // replays the backlog — otherwise the pending lines (already in the
  // backlog) would reach the new queue twice.
  flush_locked();
  auto q = std::make_shared<SubscriberQueue>(queue_capacity_);
  if (backlog_.evicted() > 0) q->preload_dropped(backlog_.evicted());
  for (const auto& l : backlog_.lines()) {
    if (!q->offer(l)) break;  // replay overflow: q is closed, stop early
  }
  if (finished_) {
    q->close();
  } else if (!q->overflowed()) {
    subs_.push_back(q);
  }
  return q;
}

std::vector<std::string> JobChannel::backlog_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return backlog_.snapshot();
}

uint64_t JobChannel::backlog_evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return backlog_.evicted();
}

uint64_t JobChannel::published() const {
  std::lock_guard<std::mutex> lock(mu_);
  return backlog_.total();
}

size_t JobChannel::subscriber_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return subs_.size();
}

std::shared_ptr<JobChannel> SubscriberHub::create(uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto ch = std::make_shared<JobChannel>(backlog_lines_, queue_capacity_);
  channels_[job_id] = ch;
  return ch;
}

std::shared_ptr<JobChannel> SubscriberHub::get(uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = channels_.find(job_id);
  return it == channels_.end() ? nullptr : it->second;
}

}  // namespace ccstarve::serve
