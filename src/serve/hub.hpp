// Fan-out from one producing job to many subscribers, with the invariant
// the whole serve subsystem hangs on: a stalled subscriber can never block
// (or slow unboundedly) the simulation thread.
//
// The shape is jittertrap's: the compute side publishes into bounded
// per-subscriber queues and continues immediately; each session thread
// drains its own queue at the client's pace. What this repo adds is a
// byte-identity requirement — a subscriber that keeps up must observe a
// stream `cmp`-equal to the offline --metrics JSONL — which rules out the
// obvious "reliable queue + bulk queue" split (draining one before the
// other would reorder lines even with zero drops). Instead each subscriber
// owns a SINGLE FIFO in which tier is a drop class, not a lane:
//
//   * offer() on a full queue scans from the front for the oldest BULK
//     line (sample/link/ratio — dense, re-derivable from later buckets),
//     removes it, and folds its drop count into the item behind it. The
//     reliable skeleton (meta, crossings, summaries, records, control
//     lines) is never dropped and never reordered.
//   * If the queue is all-reliable and the incoming line is bulk, the
//     incoming line is dropped (counted).
//   * If the queue is all-reliable and the incoming line is reliable too,
//     the subscriber is irrecoverably behind: it is marked overflowed and
//     closed, the session reports an error. This bounds memory even
//     against a consumer that ignores every line.
//
// Drops surface in-stream: the item after a gap carries dropped_before > 0
// and the session emits a {"type":"dropped","n":N} control line there, so
// a client always knows its capture is incomplete. A fast consumer sees
// dropped_before == 0 everywhere and its payload capture is byte-identical
// to the offline file.
//
// Notification strategy: offer() never notifies. A condvar wake is a futex
// syscall (~microseconds) paid on the SIMULATION thread, per line, per
// subscriber — at 32 subscribers it dwarfs the lock-and-push itself and
// was measured slowing the simulation >70%. Instead a consumer's pop_for
// slices its wait into bounded condvar naps and rechecks, bounding
// delivery latency at one slice — irrelevant for telemetry streaming —
// while the publisher pays only an uncontended lock per queue (~tens of
// ns). close() and overflow still notify, so shutdown and kill wake a
// parked consumer instantly.
//
// JobChannel is the per-job publication point. It holds a bounded backlog
// (MemorySink) of everything published so far, and subscription replays
// the backlog and registers the queue under ONE mutex — so every line is
// delivered exactly once, in order, no matter when the subscriber arrives
// relative to the job's progress. A subscriber arriving after backlog
// eviction starts with a dropped marker covering the evicted prefix.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/sink.hpp"

namespace ccstarve::serve {

// One delivered line plus the number of bulk lines dropped immediately
// before it for this subscriber. The line is shared across every
// subscriber queue it sits in — the publisher allocates it once and each
// offer costs a refcount bump, not a string copy (at 32 subscribers the
// copies were the second-largest publish cost after condvar wakes).
struct StreamItem {
  std::shared_ptr<const std::string> line;
  uint64_t dropped_before = 0;

  const std::string& text() const { return *line; }
};

class SubscriberQueue {
 public:
  explicit SubscriberQueue(size_t capacity)
      : capacity_(capacity ? capacity : 1) {}

  // Non-blocking enqueue with the drop/coalesce policy above. Returns
  // false once the subscriber has overflowed or closed (the caller then
  // forgets the queue).
  bool offer(std::shared_ptr<const std::string> line);
  bool offer(const std::string& line) {
    return offer(std::make_shared<const std::string>(line));
  }

  // Enqueues a burst under ONE lock acquisition (same per-line policy).
  // JobChannel publishes through this so the fan-out cost per line is
  // lock_cost/batch, not lock_cost — the difference between 18% and <10%
  // simulation slowdown at 32 subscribers.
  bool offer_batch(
      const std::vector<std::shared_ptr<const std::string>>& lines);

  // Blocking pop with timeout; nullopt on timeout or closed-and-drained.
  std::optional<StreamItem> pop_for(std::chrono::milliseconds timeout);

  // Drains everything currently buffered in ONE lock acquisition (empty on
  // timeout or closed-and-drained). The streaming consumers use this so
  // the publisher almost always finds the queue mutex free — per-item
  // pops were measured contending with 32 publishers' offers.
  std::vector<StreamItem> pop_batch_for(std::chrono::milliseconds timeout);

  // Drain-only from here on; wakes a blocked consumer.
  void close();

  // Closed and nothing left to pop.
  bool drained() const;

  bool overflowed() const;
  // Total bulk lines dropped for this subscriber so far.
  uint64_t dropped() const;
  size_t capacity() const { return capacity_; }
  size_t size() const;

  // Seeds the drop counter (backlog eviction before this subscriber
  // arrived); the count attaches to the next enqueued line.
  void preload_dropped(uint64_t n);

 private:
  // The per-line policy, caller holds mu_. Returns false on overflow/closed.
  bool offer_locked(std::shared_ptr<const std::string> line);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::deque<StreamItem> items_;
  // Drops that happened at the tail (or before any enqueue) and have no
  // following item yet to carry them.
  uint64_t pending_tail_drops_ = 0;
  uint64_t dropped_total_ = 0;
  bool overflowed_ = false;
  bool closed_ = false;
};

// Per-job publication point: backlog + live subscribers behind one mutex.
class JobChannel {
 public:
  explicit JobChannel(size_t backlog_lines, size_t queue_capacity)
      : backlog_(backlog_lines), queue_capacity_(queue_capacity) {}

  // Called from the job's thread (for telemetry lines, from inside event
  // dispatch via ChannelSink). Appends to the backlog immediately; the
  // subscriber fan-out is micro-batched: bulk lines buffer up to
  // kFlushBatch and a reliable line (or finish(), or a new subscriber)
  // flushes the buffer, so each subscriber queue's lock is taken once per
  // burst. A keeping-up subscriber therefore sees bulk lines at most one
  // telemetry bucket late and reliable lines (crossings, summaries,
  // records) immediately — order always exactly the publish order.
  // Overflowed/closed subscribers are dropped from the fan-out list at
  // flush time.
  void publish(const std::string& line);

  // Marks the stream complete and closes every subscriber queue (they
  // drain what is buffered, then report drained()).
  void finish();
  bool finished() const;

  // Atomically replays the backlog into a fresh queue and registers it
  // for live lines. If the channel already finished, the queue comes back
  // closed (pure replay). Evicted-backlog prefix becomes a preloaded drop
  // count.
  std::shared_ptr<SubscriberQueue> subscribe();

  // Backlog snapshot for the non-streaming "results" command.
  std::vector<std::string> backlog_snapshot() const;
  uint64_t backlog_evicted() const;
  uint64_t published() const;

  size_t subscriber_count() const;

 private:
  static constexpr size_t kFlushBatch = 8;

  // Offers buffered lines to every subscriber (one offer_batch each) and
  // forgets dead subscribers. Caller holds mu_.
  void flush_locked();

  mutable std::mutex mu_;
  obs::MemorySink backlog_;
  const size_t queue_capacity_;
  std::vector<std::shared_ptr<SubscriberQueue>> subs_;
  std::vector<std::shared_ptr<const std::string>> pending_;
  bool finished_ = false;
};

// TelemetrySink adapter: FlowTelemetry emits straight into a JobChannel.
// finish() is NOT forwarded — the job publishes its own job_done control
// line after the telemetry end line, then finishes the channel itself.
class ChannelSink final : public obs::TelemetrySink {
 public:
  explicit ChannelSink(JobChannel& ch) : ch_(ch) {}
  void line(const std::string& l) override { ch_.publish(l); }

 private:
  JobChannel& ch_;
};

// Registry of job channels, keyed by job id.
class SubscriberHub {
 public:
  explicit SubscriberHub(size_t backlog_lines = 65536,
                         size_t queue_capacity = 8192)
      : backlog_lines_(backlog_lines), queue_capacity_(queue_capacity) {}

  std::shared_ptr<JobChannel> create(uint64_t job_id);
  std::shared_ptr<JobChannel> get(uint64_t job_id) const;

  size_t backlog_lines() const { return backlog_lines_; }
  size_t queue_capacity() const { return queue_capacity_; }

 private:
  const size_t backlog_lines_;
  const size_t queue_capacity_;
  mutable std::mutex mu_;
  std::map<uint64_t, std::shared_ptr<JobChannel>> channels_;
};

}  // namespace ccstarve::serve
