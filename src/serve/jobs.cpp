#include "serve/jobs.hpp"

#include <algorithm>
#include <exception>
#include <sstream>

#include "check/invariants.hpp"
#include "obs/flight.hpp"
#include "obs/flight_export.hpp"
#include "obs/telemetry.hpp"
#include "sim/scenario.hpp"
#include "sweep/engine.hpp"
#include "sweep/spec_parse.hpp"

namespace ccstarve::serve {

const char* to_string(JobKind k) {
  return k == JobKind::run ? "run" : "sweep";
}

const char* to_string(JobState s) {
  switch (s) {
    case JobState::queued: return "queued";
    case JobState::running: return "running";
    case JobState::done: return "done";
    case JobState::cancelled: return "cancelled";
    case JobState::failed: return "failed";
  }
  return "?";
}

namespace {

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t sep = s.find(';', start);
    if (sep == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, sep - start));
    start = sep + 1;
  }
  return out;
}

}  // namespace

std::optional<JobSpec> parse_job_spec(const Request& req,
                                      std::string* error) {
  JobSpec spec;
  const std::string kind = req.str("kind", "run");
  if (kind == "run") {
    spec.kind = JobKind::run;
  } else if (kind == "sweep") {
    spec.kind = JobKind::sweep;
  } else {
    *error = "unknown job kind '" + kind + "' (run or sweep)";
    return std::nullopt;
  }
  const std::string flows = req.str("flows");
  if (flows.empty()) {
    *error = "submit needs a \"flows\" spec";
    return std::nullopt;
  }

  try {
    if (spec.kind == JobKind::run) {
      sweep::parse_flow_set(flows);  // validate before the job runs
      spec.point.flow_set = flows;
      spec.point.link_mbps = req.num("link", 60);
      spec.point.rtt_ms = req.num("rtt", 60);
      spec.point.duration_s = req.num("duration", 60);
      spec.point.jitter = req.str("jitter", "none");
      spec.point.buffer = req.str("buffer", "-");
      const double seed = req.num("seed", 0);
      if (seed < 0) {
        *error = "negative seed";
        return std::nullopt;
      }
      spec.point.seed = static_cast<uint64_t>(seed);
      sweep::make_jitter(spec.point.jitter, 0);  // validate
      spec.interval_ms = req.num("interval", 10);
      if (spec.interval_ms <= 0) {
        *error = "interval wants a positive cadence in ms";
        return std::nullopt;
      }
      if (spec.point.duration_s <= 0) {
        *error = "duration wants positive seconds";
        return std::nullopt;
      }
      spec.check = req.num("check", 0) != 0;
      spec.flight = req.num("flight", 0) != 0;
      spec.flight_trigger = req.str("flight_trigger", "starvation");
      obs::FlightTrigger trig;
      if (!obs::parse_flight_trigger(spec.flight_trigger, &trig)) {
        *error = "flight_trigger wants starvation, always or never";
        return std::nullopt;
      }
      spec.flight_window_s = req.num("flight_window", 2);
      if (spec.flight_window_s <= 0) {
        *error = "flight_window wants positive seconds";
        return std::nullopt;
      }
      const double fe = req.num("flight_events", 4096);
      if (fe < 64 || fe > (1 << 20)) {
        *error = "flight_events wants a per-flow ring size in [64, 1048576]";
        return std::nullopt;
      }
      spec.flight_events = static_cast<size_t>(fe);
    } else {
      sweep::SweepGrid grid;
      grid.flow_sets = split_list(flows);
      if (req.has("link")) {
        grid.link_mbps = sweep::parse_axis_values(req.str("link"));
      }
      if (req.has("rtt")) {
        grid.rtt_ms = sweep::parse_axis_values(req.str("rtt"));
      }
      if (req.has("duration")) {
        grid.duration_s = sweep::parse_axis_values(req.str("duration"));
      }
      if (req.has("jitter")) grid.jitter = split_list(req.str("jitter"));
      if (req.has("buffer")) grid.buffer = split_list(req.str("buffer"));
      if (req.has("seeds")) {
        grid.seeds.clear();
        for (double v : sweep::parse_axis_values(req.str("seeds"))) {
          if (v < 0) {
            *error = "negative seed in seeds list";
            return std::nullopt;
          }
          grid.seeds.push_back(static_cast<uint64_t>(v));
        }
      }
      if (req.has("warmup_frac")) {
        grid.warmup_fraction = req.num("warmup_frac");
        if (grid.warmup_fraction < 0 || grid.warmup_fraction >= 1) {
          *error = "warmup_frac wants a fraction in [0, 1)";
          return std::nullopt;
        }
      }
      spec.points = grid.expand();
      spec.jobs = static_cast<unsigned>(req.num("jobs", 0));
      spec.share_prefix = req.num("share_prefix", 0) != 0;
      spec.starvation_window_ms = req.num("starvation_window", 0);
      spec.starvation_threshold = req.num("starvation_threshold", 2.0);
      if (spec.starvation_window_ms > 0 && spec.share_prefix) {
        // Same rule as ccstarve_sweep: crossings are not fork-invariant.
        spec.share_prefix = false;
      }
    }
  } catch (const sweep::SpecError& e) {
    *error = e.what();
    return std::nullopt;
  }
  return spec;
}

JobManager::JobManager(SubscriberHub& hub, JobManagerOptions opt)
    : hub_(hub), opt_(std::move(opt)) {
  const unsigned n = std::max(1u, opt_.executors);
  executors_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

JobManager::~JobManager() { shutdown(); }

uint64_t JobManager::submit(JobSpec spec) {
  auto job = std::make_shared<Job>();
  job->spec = std::move(spec);
  job->points_total =
      job->spec.kind == JobKind::run ? 1 : job->spec.points.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_.load(std::memory_order_relaxed)) return 0;
    job->id = next_id_++;
    job->channel = hub_.create(job->id);
    jobs_[job->id] = job;
  }
  if (queue_.push(job) != BoundedMq<std::shared_ptr<Job>>::Push::ok) {
    finish_job(*job, JobState::cancelled);
    return 0;
  }
  return job->id;
}

bool JobManager::cancel(uint64_t id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    job = it->second;
  }
  const JobState st = job->state.load(std::memory_order_acquire);
  if (st == JobState::done || st == JobState::cancelled ||
      st == JobState::failed) {
    return false;
  }
  job->cancel.store(true, std::memory_order_relaxed);
  return true;
}

std::optional<JobStatus> JobManager::status(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return snapshot(*it->second);
}

std::vector<JobStatus> JobManager::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(snapshot(*job));
  return out;
}

JobStatus JobManager::snapshot(const Job& job) const {
  JobStatus st;
  st.id = job.id;
  st.kind = job.spec.kind;
  st.state = job.state.load(std::memory_order_acquire);
  st.published = job.channel ? job.channel->published() : 0;
  st.points_total = job.points_total;
  st.points_done = job.points_done.load(std::memory_order_relaxed);
  if (st.state == JobState::failed) st.error = job.error;
  return st;
}

void JobManager::shutdown() {
  if (shutdown_.exchange(true)) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, job] : jobs_) {
      job->cancel.store(true, std::memory_order_relaxed);
    }
  }
  // close() is drain-only: executors still pop every queued job and, with
  // its cancel flag set, immediately finish it as cancelled.
  queue_.close();
  for (auto& t : executors_) {
    if (t.joinable()) t.join();
  }
}

void JobManager::executor_loop() {
  while (auto job = queue_.pop()) {
    execute(**job);
  }
}

void JobManager::execute(Job& job) {
  if (job.cancel.load(std::memory_order_relaxed)) {
    finish_job(job, JobState::cancelled);
    return;
  }
  job.state.store(JobState::running, std::memory_order_release);
  JobState terminal = JobState::done;
  try {
    if (job.spec.kind == JobKind::run) {
      run_single(job);
    } else {
      run_grid(job);
    }
    if (job.cancel.load(std::memory_order_relaxed)) {
      terminal = JobState::cancelled;
    } else if (!job.error.empty()) {
      terminal = JobState::failed;
    }
  } catch (const std::exception& e) {
    job.error = e.what();
    terminal = JobState::failed;
  }
  finish_job(job, terminal);
}

void JobManager::finish_job(Job& job, JobState terminal) {
  job.state.store(terminal, std::memory_order_release);
  JsonObj done;
  done.str("type", "job_done")
      .num("job", static_cast<double>(job.id))
      .str("state", to_string(terminal))
      .num("points", static_cast<double>(
                         job.points_done.load(std::memory_order_relaxed)))
      .num("total", static_cast<double>(job.points_total));
  if (terminal == JobState::failed) done.str("error", job.error);
  job.channel->publish(done.done());
  job.channel->finish();
}

void JobManager::run_single(Job& job) {
  const sweep::SweepPoint& pt = job.spec.point;
  auto sc = sweep::build_point_scenario(pt, nullptr);

  ChannelSink sink(*job.channel);
  obs::TelemetryConfig tc;
  tc.interval = TimeNs::millis(job.spec.interval_ms);
  tc.sink = &sink;
  for (const auto& fa : sweep::parse_flow_set(pt.flow_set)) {
    tc.flow_labels.push_back(fa.cca);
  }

  std::unique_ptr<obs::FlightRecorder> flight;
  if (job.spec.flight) {
    obs::FlightConfig fc;
    obs::parse_flight_trigger(job.spec.flight_trigger, &fc.trigger);
    fc.window = TimeNs::seconds(job.spec.flight_window_s);
    fc.events_per_flow = job.spec.flight_events;
    fc.flow_labels = tc.flow_labels;
    flight = std::make_unique<obs::FlightRecorder>(std::move(fc));
    tc.flight = flight.get();
  }

  obs::FlowTelemetry telemetry(std::move(tc));
  telemetry.attach(*sc);
  if (flight) flight->attach(*sc);

  check::InvariantChecker checker;
  if (job.spec.check) checker.attach(*sc);

  // Slice-stepped run: identical event stream to a single run_until, with
  // a bounded-latency cancel check between slices.
  const TimeNs end = TimeNs::seconds(pt.duration_s);
  const TimeNs slice = TimeNs::millis(250);
  TimeNs t = TimeNs::zero();
  bool completed = true;
  while (t < end) {
    if (job.cancel.load(std::memory_order_relaxed)) {
      completed = false;
      break;
    }
    t = std::min(t + slice, end);
    sc->run_until(t);
  }
  // Even a cancelled run flushes summaries + end line for the time it
  // reached — subscribers never see a truncated stream.
  telemetry.finish(t);
  if (completed) job.points_done.store(1, std::memory_order_relaxed);

  if (flight) {
    if (flight->should_export()) {
      // The dump is raw Chrome-trace JSON, one line per event, bracketed
      // by marker lines so a subscriber can carve it back out into a
      // standalone .json for Perfetto / ccstarve_report forensics. None
      // of these lines are sample/link/ratio, so the whole dump rides
      // the reliable tier — bounded by flight_events per flow.
      std::ostringstream os;
      obs::write_chrome_trace(os, *flight);
      const std::string dump = os.str();
      size_t lines = 0;
      for (size_t start = 0; start < dump.size();) {
        size_t nl = dump.find('\n', start);
        if (nl == std::string::npos) nl = dump.size();
        ++lines;
        start = nl + 1;
      }
      job.channel->publish(JsonObj()
                               .str("type", "flight_begin")
                               .num("job", static_cast<double>(job.id))
                               .num("lines", static_cast<double>(lines))
                               .num("events",
                                    static_cast<double>(flight->recorded()))
                               .done());
      for (size_t start = 0; start < dump.size();) {
        size_t nl = dump.find('\n', start);
        if (nl == std::string::npos) nl = dump.size();
        job.channel->publish(dump.substr(start, nl - start));
        start = nl + 1;
      }
      job.channel->publish(JsonObj()
                               .str("type", "flight_end")
                               .num("job", static_cast<double>(job.id))
                               .num("lines", static_cast<double>(lines))
                               .done());
    } else {
      job.channel->publish(JsonObj()
                               .str("type", "flight_skipped")
                               .num("job", static_cast<double>(job.id))
                               .str("reason",
                                    flight->config().trigger ==
                                            obs::FlightTrigger::kNever
                                        ? "trigger=never"
                                        : "trigger never fired")
                               .done());
    }
  }

  if (job.spec.check && completed) {
    checker.checkpoint();
    if (!checker.ok()) job.error = "invariant check failed: " +
                                   checker.report();
  }
}

void JobManager::run_grid(Job& job) {
  sweep::SweepOptions opt;
  opt.jobs = job.spec.jobs;
  opt.cache_dir = opt_.cache_dir;
  opt.share_prefix = job.spec.share_prefix;
  opt.starvation_window_ms = job.spec.starvation_window_ms;
  opt.starvation_threshold = job.spec.starvation_threshold;
  opt.cancel = &job.cancel;
  const size_t total = job.points_total;
  opt.on_line = [&job, total](size_t, const std::string& line, char) {
    // Two publishes per point; workers may interleave their pairs, but a
    // record always precedes the progress line that counts it.
    job.channel->publish(line);
    const size_t done =
        job.points_done.fetch_add(1, std::memory_order_relaxed) + 1;
    job.channel->publish(JsonObj()
                             .str("type", "progress")
                             .num("job", static_cast<double>(job.id))
                             .num("done", static_cast<double>(done))
                             .num("total", static_cast<double>(total))
                             .done());
  };
  sweep::run_sweep(job.spec.points, opt);
}

}  // namespace ccstarve::serve
