// Job lifecycle for the serve daemon: submit / status / cancel over a
// small executor pool, with every job's output flowing through its
// SubscriberHub channel.
//
// Two job kinds, both built from the same spec grammar the offline tools
// use (sweep/spec_parse + sweep/grid):
//
//   * run — one scenario with a FlowTelemetry probe attached, streaming
//     the telemetry JSONL live. The scenario comes from
//     sweep::build_point_scenario and the probe uses ccstarve_run's
//     defaults, so for the same spec and seed the payload stream is
//     byte-identical to `ccstarve_run --metrics` output (the serve smoke
//     test cmp's exactly this). Cancellation is slice-stepped: run_until
//     advances in 250 ms sim-time slices between checks of the cancel
//     flag — behaviourally identical to one run_until call, since slicing
//     changes no event. A cancelled run still gets telemetry finish() at
//     the time reached, so subscribers always see well-formed summaries
//     and an end line, never a truncated stream.
//
//   * sweep — a grid on the sweep engine (run_sweep) with the per-run
//     cancel flag and the on_line hook publishing each point's canonical
//     record as it completes. Records stream in COMPLETION order (the
//     engine's hook contract), not grid order; `results` on a finished
//     job returns the backlog in that same order. Each record is followed
//     by a {"type":"progress"} control line.
//
// Executor threads pull jobs off a BoundedMq; shutdown() cancels
// everything, closes the queue (drain-only — queued jobs surface as
// cancelled, never silently vanish) and joins.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/hub.hpp"
#include "serve/protocol.hpp"
#include "sweep/grid.hpp"
#include "util/mq.hpp"

namespace ccstarve::serve {

enum class JobKind { run, sweep };
enum class JobState { queued, running, done, cancelled, failed };

const char* to_string(JobKind k);
const char* to_string(JobState s);

struct JobSpec {
  JobKind kind = JobKind::run;

  // run: the single scenario (flow_set/link/rtt/jitter/buffer/seed/
  // duration used; warmup is a measurement concept and ignored here).
  sweep::SweepPoint point;
  double interval_ms = 10;  // telemetry cadence, ccstarve_run's default
  bool check = false;       // attach the runtime invariant checker

  // run: attach a flight recorder and publish its Chrome-trace dump on
  // the job channel after the run, bracketed by flight_begin/flight_end
  // marker lines. The dump rides the reliable tier (it is not
  // sample/link/ratio), so the ring is kept small by default to bound
  // how much a subscriber must absorb. Trigger grammar matches
  // ccstarve_run --flight-trigger; validated at submit time.
  bool flight = false;
  std::string flight_trigger = "starvation";
  double flight_window_s = 2;
  size_t flight_events = 4096;  // per-flow ring capacity

  // sweep: the expanded grid (validated at submit time).
  std::vector<sweep::SweepPoint> points;
  unsigned jobs = 0;  // worker threads per sweep; 0 = hardware threads
  bool share_prefix = false;
  double starvation_window_ms = 0;
  double starvation_threshold = 2.0;
};

// Builds a JobSpec from a submit request. Field grammar mirrors the
// offline CLIs, flattened into one JSON object:
//
//   kind     "run" (default) | "sweep"
//   flows    run: one flow set. sweep: ';'-separated flow sets (flow
//            specs themselves use '+' ':' ',', so the list needs a
//            separator they don't).
//   link/rtt/duration
//            run: one number. sweep: an axis spec ("a,b,c" / lin: / log:).
//   jitter   run: data-path jitter on flow 0. sweep: ';'-separated specs.
//   buffer   run: one buffer spec. sweep: ';'-separated list.
//   seed     run: one integer (default 0, like ccstarve_run).
//   seeds    sweep: axis list (default "1", like the grid).
//   warmup_frac, jobs, share_prefix, starvation_window (ms),
//   starvation_threshold
//            sweep execution knobs, as in ccstarve_sweep.
//   interval run: telemetry cadence ms.   check: 0/1, run only.
//   flight   run: 0/1, attach the flight recorder and publish its
//            Chrome-trace dump on the channel. flight_trigger
//            (starvation|always|never), flight_window (seconds around
//            the trigger) and flight_events (per-flow ring capacity)
//            tune it, as in ccstarve_run.
//
// Returns nullopt and sets *error on a bad spec (SpecError text included).
std::optional<JobSpec> parse_job_spec(const Request& req, std::string* error);

struct JobStatus {
  uint64_t id = 0;
  JobKind kind = JobKind::run;
  JobState state = JobState::queued;
  uint64_t published = 0;    // lines published to the channel so far
  size_t points_total = 0;   // sweep: grid size; run: 1
  size_t points_done = 0;
  std::string error;         // set when state == failed
};

struct JobManagerOptions {
  unsigned executors = 1;  // concurrent jobs (each sweep parallelizes within)
  std::string cache_dir;   // sweep result cache; empty = disabled
};

class JobManager {
 public:
  JobManager(SubscriberHub& hub, JobManagerOptions opt);
  ~JobManager();

  // Creates the job's channel (subscribable immediately) and queues it.
  // Returns 0 if the manager is shutting down.
  uint64_t submit(JobSpec spec);

  // Requests cancellation; false for unknown or already-terminal jobs.
  // Queued jobs surface as cancelled when an executor reaches them.
  bool cancel(uint64_t id);

  std::optional<JobStatus> status(uint64_t id) const;
  std::vector<JobStatus> list() const;

  // Cancels everything, closes the queue and joins the executors. Safe to
  // call twice; the destructor calls it.
  void shutdown();

 private:
  struct Job {
    uint64_t id = 0;
    JobSpec spec;
    std::shared_ptr<JobChannel> channel;
    std::atomic<JobState> state{JobState::queued};
    std::atomic<bool> cancel{false};
    std::atomic<size_t> points_done{0};
    size_t points_total = 0;
    // Written before state stores `failed` (release); read after an
    // acquire load observes the terminal state.
    std::string error;
  };

  void executor_loop();
  void execute(Job& job);
  void run_single(Job& job);
  void run_grid(Job& job);
  void finish_job(Job& job, JobState terminal);
  JobStatus snapshot(const Job& job) const;

  SubscriberHub& hub_;
  const JobManagerOptions opt_;
  mutable std::mutex mu_;
  std::map<uint64_t, std::shared_ptr<Job>> jobs_;
  uint64_t next_id_ = 1;
  BoundedMq<std::shared_ptr<Job>> queue_{1024};
  std::vector<std::thread> executors_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace ccstarve::serve
