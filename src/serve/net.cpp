#include "serve/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ccstarve::serve {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

TcpConn::TcpConn(TcpConn&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)), buf_(std::move(o.buf_)) {}

TcpConn& TcpConn::operator=(TcpConn&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = std::exchange(o.fd_, -1);
    buf_ = std::move(o.buf_);
  }
  return *this;
}

bool TcpConn::read_line(std::string* line) {
  while (true) {
    const size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buf_, 0, nl);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      buf_.erase(0, nl + 1);
      return true;
    }
    if (fd_ < 0) return false;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF or hard error; a partial final line is discarded
  }
}

bool TcpConn::write_line(const std::string& line) {
  if (fd_ < 0) return false;
  std::string framed = line;
  framed += '\n';
  size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n =
        ::send(fd_, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void TcpConn::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

bool TcpListener::open(const std::string& host, uint16_t port,
                       std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *error = errno_text("socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad listen address '" + host + "' (IPv4 literal expected)";
    close();
    return false;
  }
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = errno_text("bind");
    close();
    return false;
  }
  if (::listen(fd_, 64) != 0) {
    *error = errno_text("listen");
    close();
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    *error = errno_text("getsockname");
    close();
    return false;
  }
  port_ = ntohs(addr.sin_port);
  return true;
}

TcpConn TcpListener::accept_for(std::chrono::milliseconds timeout) {
  if (fd_ < 0) return TcpConn();
  pollfd pfd{fd_, POLLIN, 0};
  const int r = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  if (r <= 0 || (pfd.revents & POLLIN) == 0) return TcpConn();
  const int cfd = ::accept(fd_, nullptr, nullptr);
  if (cfd < 0) return TcpConn();
  const int one = 1;
  ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConn(cfd);
}

void TcpListener::close() {
  if (fd_ >= 0) {
    // shutdown() first so a thread parked in poll()/accept() wakes.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

TcpConn tcp_connect(const std::string& host, uint16_t port,
                    std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = errno_text("socket");
    return TcpConn();
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad address '" + host + "' (IPv4 literal expected)";
    ::close(fd);
    return TcpConn();
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = errno_text("connect");
    ::close(fd);
    return TcpConn();
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConn(fd);
}

}  // namespace ccstarve::serve
