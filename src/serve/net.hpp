// Minimal blocking TCP transport for the serve daemon: a poll-able
// listener and a buffered line-oriented connection. The protocol layer
// (serve/protocol.hpp) works on strings, so everything socket-specific
// lives here; tests exercise Server end-to-end through these same classes
// rather than mocking.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

namespace ccstarve::serve {

// Move-only owner of a connected socket. Reading is line-buffered
// (newline-delimited, CR stripped); writing is all-or-nothing.
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(int fd) : fd_(fd) {}
  ~TcpConn() { close(); }
  TcpConn(TcpConn&& o) noexcept;
  TcpConn& operator=(TcpConn&& o) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Next line without its terminator; false on EOF/error with nothing
  // buffered. Blocks until a full line arrives.
  bool read_line(std::string* line);

  // Writes `line` plus '\n'; false on a broken connection (SIGPIPE is
  // suppressed — a dead client must never kill the daemon).
  bool write_line(const std::string& line);

  // Unblocks any reader/writer on another thread, then releases the fd.
  void shutdown_both();
  void close();

 private:
  int fd_ = -1;
  std::string buf_;
};

// Listening socket bound to host:port; port 0 picks an ephemeral port
// (tests and the CI smoke job read it back via port()).
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { close(); }
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Binds and listens; false (with *error set) on failure.
  bool open(const std::string& host, uint16_t port, std::string* error);
  uint16_t port() const { return port_; }
  bool valid() const { return fd_ >= 0; }

  // Waits up to `timeout` for a connection; invalid TcpConn on timeout or
  // closed listener. The timeout bounds the accept loop's shutdown latency.
  TcpConn accept_for(std::chrono::milliseconds timeout);

  void close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

// Client-side connect; invalid TcpConn (with *error set) on failure.
TcpConn tcp_connect(const std::string& host, uint16_t port,
                    std::string* error);

}  // namespace ccstarve::serve
