#include "serve/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ccstarve::serve {

namespace {

// Canonical number rendering (the sweep/grid + obs/telemetry convention),
// re-stated here because serve sits above both and the protocol must not
// drift from the JSONL the jobs emit.
std::string json_num(double v) {
  if (std::isnan(v)) return "0";
  if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  std::string s = buf;
  if (s == "-0") s = "0";
  return s;
}

struct Cursor {
  const std::string& s;
  size_t i = 0;

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r')) ++i;
  }
  bool eat(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return i < s.size() && s[i] == c;
  }
};

bool parse_json_string(Cursor& c, std::string* out) {
  if (!c.eat('"')) return false;
  out->clear();
  while (c.i < c.s.size()) {
    const char ch = c.s[c.i++];
    if (ch == '"') return true;
    if (ch == '\\') {
      if (c.i >= c.s.size()) return false;
      const char esc = c.s[c.i++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'n': *out += '\n'; break;
        case 't': *out += '\t'; break;
        case 'r': *out += '\r'; break;
        default: return false;  // \uXXXX etc: not needed by this protocol
      }
    } else {
      *out += ch;
    }
  }
  return false;
}

bool parse_json_number(Cursor& c, double* out) {
  c.skip_ws();
  const char* start = c.s.c_str() + c.i;
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return false;
  c.i += static_cast<size_t>(end - start);
  *out = v;
  return true;
}

}  // namespace

std::string Request::str(const std::string& key,
                         const std::string& dflt) const {
  auto s = strs.find(key);
  if (s != strs.end()) return s->second;
  auto n = nums.find(key);
  if (n != nums.end()) return json_num(n->second);
  return dflt;
}

double Request::num(const std::string& key, double dflt) const {
  auto n = nums.find(key);
  if (n != nums.end()) return n->second;
  auto s = strs.find(key);
  if (s != strs.end()) {
    char* end = nullptr;
    const double v = std::strtod(s->second.c_str(), &end);
    if (end != s->second.c_str() && *end == '\0') return v;
  }
  return dflt;
}

std::optional<Request> parse_request(const std::string& line,
                                     std::string* error) {
  Cursor c{line};
  Request req;
  if (!c.eat('{')) {
    *error = "request is not a JSON object";
    return std::nullopt;
  }
  if (!c.peek('}')) {
    do {
      std::string key;
      if (!parse_json_string(c, &key)) {
        *error = "bad key in request";
        return std::nullopt;
      }
      if (!c.eat(':')) {
        *error = "missing ':' after key '" + key + "'";
        return std::nullopt;
      }
      c.skip_ws();
      if (c.peek('"')) {
        std::string v;
        if (!parse_json_string(c, &v)) {
          *error = "bad string value for '" + key + "'";
          return std::nullopt;
        }
        req.strs[key] = std::move(v);
      } else if (c.s.compare(c.i, 4, "true") == 0) {
        c.i += 4;
        req.nums[key] = 1;
      } else if (c.s.compare(c.i, 5, "false") == 0) {
        c.i += 5;
        req.nums[key] = 0;
      } else if (c.s.compare(c.i, 4, "null") == 0) {
        c.i += 4;
        req.nums[key] = 0;
      } else if (c.peek('{') || c.peek('[')) {
        *error = "nested values are not part of this protocol (key '" + key +
                 "')";
        return std::nullopt;
      } else {
        double v = 0;
        if (!parse_json_number(c, &v)) {
          *error = "bad value for '" + key + "'";
          return std::nullopt;
        }
        req.nums[key] = v;
      }
    } while (c.eat(','));
  }
  if (!c.eat('}')) {
    *error = "unterminated request object";
    return std::nullopt;
  }
  c.skip_ws();
  if (c.i != line.size()) {
    *error = "trailing bytes after request object";
    return std::nullopt;
  }
  auto cmd = req.strs.find("cmd");
  if (cmd == req.strs.end() || cmd->second.empty()) {
    *error = "request has no \"cmd\"";
    return std::nullopt;
  }
  req.cmd = cmd->second;
  req.strs.erase(cmd);
  return req;
}

JsonObj& JsonObj::str(const char* key, const std::string& v) {
  if (!first_) j_ += ',';
  first_ = false;
  j_ += '"';
  j_ += key;
  j_ += "\":\"";
  for (char c : v) {
    if (c == '"' || c == '\\') j_ += '\\';
    j_ += c;
  }
  j_ += '"';
  return *this;
}

JsonObj& JsonObj::num(const char* key, double v) {
  if (!first_) j_ += ',';
  first_ = false;
  j_ += '"';
  j_ += key;
  j_ += "\":";
  j_ += json_num(v);
  return *this;
}

std::string JsonObj::done() {
  j_ += '}';
  return std::move(j_);
}

namespace {

// Extracts the value of a leading {"type":"..."} field, empty if absent.
// Payload and control lines alike put "type" first (telemetry emission and
// JsonObj both build objects in field order), so a prefix check suffices.
std::string line_type(const std::string& line) {
  static const std::string kPrefix = "{\"type\":\"";
  if (line.compare(0, kPrefix.size(), kPrefix) != 0) return "";
  const size_t end = line.find('"', kPrefix.size());
  if (end == std::string::npos) return "";
  return line.substr(kPrefix.size(), end - kPrefix.size());
}

}  // namespace

bool is_control_line(const std::string& line) {
  const std::string t = line_type(line);
  return t == "hello" || t == "ok" || t == "error" || t == "job" ||
         t == "progress" || t == "subscribed" || t == "stream_end" ||
         t == "job_done" || t == "dropped";
}

bool is_bulk_line(const std::string& line) {
  const std::string t = line_type(line);
  return t == "sample" || t == "link" || t == "ratio";
}

}  // namespace ccstarve::serve
