// ccstarve_serve wire protocol: newline-delimited JSON over a byte stream.
//
// Requests are flat one-line JSON objects with a "cmd" string plus
// string/number fields:
//
//   {"cmd":"ping"}
//   {"cmd":"submit","kind":"run","flows":"copa+copa","link":120,
//    "rtt":60,"duration":20,"seed":0}
//   {"cmd":"status","job":1}        {"cmd":"cancel","job":1}
//   {"cmd":"subscribe","job":1}     {"cmd":"results","job":1}
//   {"cmd":"shutdown"}
//
// Responses and streamed events are one-line JSON objects too. The stream a
// subscriber sees interleaves two kinds of lines:
//
//   * PAYLOAD lines, forwarded verbatim from the job: flow-telemetry
//     objects (type meta/sample/link/ratio/crossing/flow_summary/end) and
//     sweep result records (no "type" field at all). These are
//     byte-identical to what the offline tools write (--metrics JSONL,
//     sweep --out), which is what makes `ccstarve_client tail` output
//     `cmp`-equal to an offline run.
//   * CONTROL lines, originated by the server: type hello/ok/error/job/
//     progress/subscribed/stream_end/job_done/dropped. Clients filter
//     these out of payload captures (is_control_line).
//
// The protocol layer is deliberately transport-agnostic: requests are
// parsed from strings and responses built as strings, so the same session
// logic runs over TCP (serve/net.hpp), a socketpair in tests, or any future
// transport (websocket framing would wrap these same lines).
#pragma once

#include <map>
#include <optional>
#include <string>

namespace ccstarve::serve {

// A parsed flat JSON request: "cmd" plus leftover fields, strings and
// numbers kept separate (true/false arrive as 1/0).
struct Request {
  std::string cmd;
  std::map<std::string, std::string> strs;
  std::map<std::string, double> nums;

  bool has(const std::string& key) const {
    return strs.count(key) != 0 || nums.count(key) != 0;
  }
  // String view of a field: verbatim for strings, canonical rendering for
  // numbers (so "link":60 and "link":"60" mean the same axis spec).
  std::string str(const std::string& key, const std::string& dflt = "") const;
  double num(const std::string& key, double dflt = 0.0) const;
};

// Parses one request line. Returns nullopt (and sets *error) on malformed
// JSON, a non-flat object, or a missing "cmd".
std::optional<Request> parse_request(const std::string& line,
                                     std::string* error);

// One-line JSON object builder for responses/control events, matching the
// repo's canonical number rendering (%.12g, -0 -> 0).
class JsonObj {
 public:
  JsonObj& str(const char* key, const std::string& v);
  JsonObj& num(const char* key, double v);
  // Serializes and closes; the builder is spent afterwards.
  std::string done();

 private:
  std::string j_ = "{";
  bool first_ = true;
};

// True for server-originated control lines (see the header comment); false
// for payload lines a client capture should keep.
bool is_control_line(const std::string& line);

// The bulk/reliable split for the tiered subscriber queues: sample, link
// and ratio lines are high-rate and droppable for a slow consumer; every
// other line (meta, crossings, summaries, records, control) is reliable.
bool is_bulk_line(const std::string& line);

}  // namespace ccstarve::serve
