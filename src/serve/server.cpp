#include "serve/server.hpp"

#include "serve/protocol.hpp"

namespace ccstarve::serve {

namespace {

constexpr int kProtoVersion = 1;

std::string error_line(const std::string& msg) {
  return JsonObj().str("type", "error").str("error", msg).done();
}

std::string status_line(const JobStatus& st) {
  JsonObj j;
  j.str("type", "job")
      .num("job", static_cast<double>(st.id))
      .str("kind", to_string(st.kind))
      .str("state", to_string(st.state))
      .num("published", static_cast<double>(st.published))
      .num("done", static_cast<double>(st.points_done))
      .num("total", static_cast<double>(st.points_total));
  if (!st.error.empty()) j.str("error", st.error);
  return j.done();
}

}  // namespace

Server::Server(ServeOptions opt)
    : opt_(std::move(opt)),
      hub_(opt_.backlog_lines, opt_.queue_capacity),
      jobs_(std::make_unique<JobManager>(
          hub_, JobManagerOptions{opt_.executors, opt_.cache_dir})) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  if (!listener_.open(opt_.host, opt_.port, error)) return false;
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::wait() const {
  while (!stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  request_stop();
  // Join the accept loop before touching the listener: it polls with a
  // short timeout and rechecks stop_requested(), so it exits within one
  // slice — and the listener fd is never closed under a concurrent poll.
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  // Cancel jobs first: every channel finishes, so session threads parked
  // in a subscription stream drain and fall back to read_line ...
  jobs_->shutdown();
  // ... where the socket shutdown wakes them for good.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& s : sessions_) s->conn.shutdown_both();
    for (auto& s : finished_sessions_) s->conn.shutdown_both();
  }
  std::vector<std::unique_ptr<Session>> all;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& s : sessions_) all.push_back(std::move(s));
    for (auto& s : finished_sessions_) all.push_back(std::move(s));
    sessions_.clear();
    finished_sessions_.clear();
  }
  for (auto& s : all) {
    if (s->thread.joinable()) s->thread.join();
  }
}

void Server::accept_loop() {
  while (!stop_requested()) {
    TcpConn conn = listener_.accept_for(std::chrono::milliseconds(200));
    reap_finished_sessions();
    if (!conn.valid()) continue;
    auto session = std::make_unique<Session>();
    session->conn = std::move(conn);
    Session* raw = session.get();
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      if (stopped_) return;  // stop() races the accept: drop the conn
      sessions_.push_back(std::move(session));
    }
    raw->thread = std::thread([this, raw] { session_loop(raw); });
  }
}

void Server::reap_finished_sessions() {
  std::vector<std::unique_ptr<Session>> done;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    done.swap(finished_sessions_);
  }
  for (auto& s : done) {
    if (s->thread.joinable()) s->thread.join();
  }
}

void Server::session_loop(Session* session) {
  session->conn.write_line(JsonObj()
                               .str("type", "hello")
                               .str("service", "ccstarve_serve")
                               .num("proto", kProtoVersion)
                               .done());
  std::string line;
  while (!stop_requested() && session->conn.read_line(&line)) {
    if (line.empty()) continue;
    if (!handle_line(session, line)) break;
  }
  // Move ourselves to the finished list; the accept loop (or stop()) joins.
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (size_t i = 0; i < sessions_.size(); ++i) {
    if (sessions_[i].get() == session) {
      finished_sessions_.push_back(std::move(sessions_[i]));
      sessions_.erase(sessions_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
}

bool Server::handle_line(Session* session, const std::string& line) {
  std::string perr;
  auto req = parse_request(line, &perr);
  if (!req) return session->conn.write_line(error_line(perr));
  TcpConn& conn = session->conn;

  if (req->cmd == "ping") {
    return conn.write_line(JsonObj().str("type", "ok").done());
  }

  if (req->cmd == "submit") {
    std::string serr;
    auto spec = parse_job_spec(*req, &serr);
    if (!spec) return conn.write_line(error_line(serr));
    const uint64_t id = jobs_->submit(std::move(*spec));
    if (id == 0) return conn.write_line(error_line("server is shutting down"));
    return conn.write_line(JsonObj()
                               .str("type", "job")
                               .num("job", static_cast<double>(id))
                               .str("state", "queued")
                               .done());
  }

  if (req->cmd == "status") {
    if (req->has("job")) {
      auto st = jobs_->status(static_cast<uint64_t>(req->num("job")));
      if (!st) return conn.write_line(error_line("no such job"));
      return conn.write_line(status_line(*st));
    }
    for (const auto& st : jobs_->list()) {
      if (!conn.write_line(status_line(st))) return false;
    }
    return conn.write_line(JsonObj().str("type", "ok").done());
  }

  if (req->cmd == "cancel") {
    if (!req->has("job")) return conn.write_line(error_line("cancel what?"));
    if (!jobs_->cancel(static_cast<uint64_t>(req->num("job")))) {
      return conn.write_line(error_line("no such job (or already finished)"));
    }
    return conn.write_line(JsonObj().str("type", "ok").done());
  }

  if (req->cmd == "results") {
    const uint64_t id = static_cast<uint64_t>(req->num("job"));
    auto ch = hub_.get(id);
    if (!ch) return conn.write_line(error_line("no such job"));
    const uint64_t evicted = ch->backlog_evicted();
    if (evicted > 0) {
      if (!conn.write_line(JsonObj()
                               .str("type", "dropped")
                               .num("n", static_cast<double>(evicted))
                               .done())) {
        return false;
      }
    }
    for (const auto& l : ch->backlog_snapshot()) {
      if (!conn.write_line(l)) return false;
    }
    return conn.write_line(JsonObj()
                               .str("type", "stream_end")
                               .num("job", static_cast<double>(id))
                               .done());
  }

  if (req->cmd == "subscribe") {
    const uint64_t id = static_cast<uint64_t>(req->num("job"));
    if (hub_.get(id) == nullptr) {
      return conn.write_line(error_line("no such job"));
    }
    stream_subscription(session, id);
    return conn.valid();
  }

  if (req->cmd == "shutdown") {
    conn.write_line(JsonObj().str("type", "ok").done());
    request_stop();
    return false;
  }

  return conn.write_line(error_line("unknown command '" + req->cmd + "'"));
}

void Server::stream_subscription(Session* session, uint64_t job_id) {
  auto ch = hub_.get(job_id);
  auto q = ch->subscribe();
  TcpConn& conn = session->conn;
  if (!conn.write_line(JsonObj()
                           .str("type", "subscribed")
                           .num("job", static_cast<double>(job_id))
                           .done())) {
    q->close();
    return;
  }
  while (true) {
    // Batch drain: one queue-lock acquisition per burst keeps the
    // publishing simulation thread off this queue's mutex.
    const auto batch = q->pop_batch_for(std::chrono::milliseconds(250));
    for (const StreamItem& item : batch) {
      if (item.dropped_before > 0 &&
          !conn.write_line(
              JsonObj()
                  .str("type", "dropped")
                  .num("n", static_cast<double>(item.dropped_before))
                  .done())) {
        q->close();
        return;
      }
      if (!conn.write_line(item.text())) {
        q->close();
        return;
      }
    }
    if (!batch.empty()) continue;
    if (q->overflowed()) {
      conn.write_line(error_line(
          "subscriber too slow: reliable backlog exceeded the queue"));
      return;
    }
    if (q->drained()) break;
    if (stop_requested()) {
      q->close();
      break;
    }
  }
  conn.write_line(JsonObj()
                      .str("type", "stream_end")
                      .num("job", static_cast<double>(job_id))
                      .num("dropped", static_cast<double>(q->dropped()))
                      .done());
}

}  // namespace ccstarve::serve
