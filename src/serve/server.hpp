// The ccstarve_serve daemon core: accept loop + session-per-connection
// command handling, glued over JobManager (lifecycle) and SubscriberHub
// (fan-out). tools/ccstarve_serve.cpp is a thin flag wrapper; tests run a
// Server in-process on an ephemeral port.
//
// Session protocol (one NDJSON line each way; see serve/protocol.hpp):
//
//   -> greeting            {"type":"hello","proto":1,...}
//   ping                   {"type":"ok"}
//   submit ...             {"type":"job","job":N} or {"type":"error",...}
//   status [job]           {"type":"job",...} per job
//   cancel job             {"type":"ok"} / {"type":"error",...}
//   results job            backlog replay, then {"type":"stream_end",...}
//   subscribe job          {"type":"subscribed","job":N}, then the live
//                          stream: payload lines verbatim, a
//                          {"type":"dropped","n":K} marker wherever the
//                          slow-consumer policy opened a gap, and finally
//                          {"type":"stream_end",...} when the job
//                          finishes. The connection then accepts commands
//                          again. A subscriber too slow even for the drop
//                          policy gets {"type":"error"} and is closed.
//   shutdown               {"type":"ok"}, then the daemon stops.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/hub.hpp"
#include "serve/jobs.hpp"
#include "serve/net.hpp"

namespace ccstarve::serve {

struct ServeOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;       // 0 = ephemeral (tests); daemons pass a real port
  unsigned executors = 1;  // concurrent jobs
  std::string cache_dir;   // sweep result cache; empty = disabled
  size_t queue_capacity = 8192;   // per-subscriber line queue
  size_t backlog_lines = 65536;   // per-job replay backlog
};

class Server {
 public:
  explicit Server(ServeOptions opt);
  ~Server();

  // Binds and spawns the accept loop; false (with *error) on bind failure.
  bool start(std::string* error);
  uint16_t port() const { return listener_.port(); }

  // Asynchronous stop request — a single atomic store, safe from a signal
  // handler or a session thread (the shutdown command). The accept loop
  // and wait() notice within their poll timeouts.
  void request_stop() { stopping_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const {
    return stopping_.load(std::memory_order_relaxed);
  }

  // Full teardown: closes the listener, cancels and joins every job, wakes
  // and joins every session. Idempotent; the destructor calls it.
  void stop();

  // Polls until request_stop(); the daemon's main thread parks here.
  void wait() const;

  JobManager& jobs() { return *jobs_; }
  SubscriberHub& hub() { return hub_; }

 private:
  struct Session {
    TcpConn conn;
    std::thread thread;
  };

  void accept_loop();
  void session_loop(Session* session);
  // One command; returns false when the session should end (EOF, write
  // failure, shutdown).
  bool handle_line(Session* session, const std::string& line);
  void stream_subscription(Session* session, uint64_t job_id);
  void reap_finished_sessions();

  const ServeOptions opt_;
  SubscriberHub hub_;
  std::unique_ptr<JobManager> jobs_;
  TcpListener listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<std::unique_ptr<Session>> finished_sessions_;
  bool stopped_ = false;
};

}  // namespace ccstarve::serve
