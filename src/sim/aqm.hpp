// Active queue management and explicit congestion notification (§6.4).
//
// The paper conjectures that ECN — an unambiguous congestion signal, unlike
// delay or loss — lets CCAs avoid starvation: "if the router set ECN bits
// when the queue exceeds a threshold, and a CCA reacted to that and not to
// small amounts of loss, then it may avoid starvation."
//
// This header adds marking disciplines to the bottleneck:
//   * ThresholdEcn — mark when the instantaneous queue exceeds a threshold
//     (the simple heuristic §6.4 describes);
//   * RedEcn — Random Early Detection (Floyd & Jacobson 1993): mark with a
//     probability ramping between two thresholds of the averaged queue.
//
// Marks ride on Packet::ecn_ce and are echoed by the receiver onto ACKs
// (Packet::ack_ece); the AckSample carries them to the CCA.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/packet.hpp"
#include "util/rng.hpp"

namespace ccstarve {

class AqmPolicy {
 public:
  virtual ~AqmPolicy() = default;
  // Decide whether to CE-mark a packet that arrives with the queue holding
  // `queued_bytes` (excluding this packet).
  virtual bool should_mark(uint64_t queued_bytes) = 0;
  // Value copy of the policy including its live state (EWMA, RNG), so a
  // forked scenario continues the same marking sequence (sim/snapshot.hpp).
  virtual std::unique_ptr<AqmPolicy> clone() const = 0;
};

// Mark everything above a fixed backlog threshold.
class ThresholdEcn final : public AqmPolicy {
 public:
  explicit ThresholdEcn(uint64_t threshold_bytes)
      : threshold_bytes_(threshold_bytes) {}
  bool should_mark(uint64_t queued_bytes) override {
    return queued_bytes >= threshold_bytes_;
  }
  std::unique_ptr<AqmPolicy> clone() const override {
    return std::make_unique<ThresholdEcn>(*this);
  }

 private:
  uint64_t threshold_bytes_;
};

// RED-style probabilistic marking on an EWMA of the queue length.
class RedEcn final : public AqmPolicy {
 public:
  struct Params {
    uint64_t min_threshold_bytes = 15 * kMss;
    uint64_t max_threshold_bytes = 45 * kMss;
    double max_probability = 0.2;
    double queue_weight = 0.05;  // EWMA gain
    uint64_t seed = 19;
  };

  explicit RedEcn(const Params& params) : params_(params), rng_(params.seed) {}

  bool should_mark(uint64_t queued_bytes) override {
    avg_ += params_.queue_weight * (static_cast<double>(queued_bytes) - avg_);
    if (avg_ < static_cast<double>(params_.min_threshold_bytes)) return false;
    if (avg_ >= static_cast<double>(params_.max_threshold_bytes)) return true;
    const double frac =
        (avg_ - static_cast<double>(params_.min_threshold_bytes)) /
        static_cast<double>(params_.max_threshold_bytes -
                            params_.min_threshold_bytes);
    return rng_.bernoulli(frac * params_.max_probability);
  }

  double average_queue_bytes() const { return avg_; }

  std::unique_ptr<AqmPolicy> clone() const override {
    return std::make_unique<RedEcn>(*this);
  }

 private:
  Params params_;
  Rng rng_;
  double avg_ = 0.0;
};

}  // namespace ccstarve
