// Runtime invariant probe: the observer seam of the §3 model emulation.
//
// A CheckProbe installed on a Simulator receives every packet-level
// transition that matters for the model invariants the paper's theorems
// rest on (FIFO bottleneck service, no-reorder jitter boxes with bounded
// eta, work conservation, monotone time). Components report through
// `if (CheckProbe* ck = sim.checker()) ck->on_...(...)` — exactly the
// trace-recorder pattern — so a detached probe costs one untaken branch
// per transition and an attached one costs a virtual call.
//
// The concrete invariant observers live in src/check/invariants.hpp; this
// header stays tiny so sim components can depend on it without pulling the
// checking subsystem into the core library.
#pragma once

#include "sim/packet.hpp"
#include "util/rate.hpp"
#include "util/time.hpp"

namespace ccstarve {

class CheckProbe {
 public:
  virtual ~CheckProbe() = default;

  // --- bottleneck (BottleneckLink and TraceDrivenLink) ---
  // `queued_after` includes the packet just admitted.
  virtual void on_link_enqueue(TimeNs /*now*/, const Packet& /*pkt*/,
                               uint64_t /*queued_after*/) {}
  virtual void on_link_drop(TimeNs /*now*/, const Packet& /*pkt*/) {}
  virtual void on_link_deliver(TimeNs /*now*/, const Packet& /*pkt*/) {}
  // BottleneckLink::set_rate — suspends the exact service-timing check for
  // the packet in service when it fires mid-transmission.
  virtual void on_link_rate_change(TimeNs /*now*/, Rate /*rate*/) {}

  // --- jitter boxes ---
  // Admission: the box decided (after clamping) to hold `pkt` until
  // `release`; `budget` is the box's configured D. `ack_path`
  // distinguishes a flow's two boxes.
  virtual void on_jitter_admit(TimeNs /*arrival*/, TimeNs /*release*/,
                               const Packet& /*pkt*/, bool /*ack_path*/,
                               TimeNs /*budget*/) {}
  virtual void on_jitter_release(TimeNs /*now*/, const Packet& /*pkt*/,
                                 bool /*ack_path*/) {}

  // --- endpoints ---
  virtual void on_segment_sent(TimeNs /*now*/, const Packet& /*pkt*/) {}
  virtual void on_receiver_data(TimeNs /*now*/, const Packet& /*pkt*/,
                                uint64_t /*cum_after*/) {}
  virtual void on_ack_emitted(TimeNs /*now*/, const Packet& /*ack*/) {}
  // One call per ACK the sender processed: the RTT sample it measured and
  // the CCA outputs it will act on next.
  virtual void on_ack_sample(TimeNs /*now*/, uint32_t /*flow*/,
                             TimeNs /*rtt*/, uint64_t /*cwnd_bytes*/,
                             Rate /*pacing*/) {}
  // Pure window-update ACK consumed by the sender (ack_wnd_only; carries no
  // new cumulative data and bypasses the RTT/dupack/CCA machinery).
  virtual void on_wnd_ack(TimeNs /*now*/, uint32_t /*flow*/,
                          const Packet& /*ack*/) {}
};

}  // namespace ccstarve
