// Pooled event nodes for the discrete-event core.
//
// Every scheduled callback lives in a fixed-size Event node: timestamp,
// insertion sequence (the determinism tie-break), an intrusive link used
// both by timer-wheel slot lists and by the pool's free list, and an
// InlineFn holding the callback in place. Nodes are recycled through an
// intrusive free list, so after warm-up the schedule→dispatch cycle
// performs zero allocations; chunked backing storage keeps nodes stable in
// memory (heaps and slot lists hold Event*, never move nodes).
//
// A pool may be shared across consecutive Simulator instances (the sweep
// engine keeps one per worker thread), which removes per-point allocation
// churn from grid runs. The pool must outlive every Simulator using it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/inline_fn.hpp"
#include "util/time.hpp"

namespace ccstarve {

// Sized so the common hot callbacks — a lambda over (sink, Packet), 80
// bytes — stay inline, and Event lands on exactly two cache lines: 24B
// header, then the InlineFn (2 pointers + max_align_t-aligned 80B buffer).
inline constexpr std::size_t kEventCallbackCapacity = 80;

struct Event {
  // Flag bits. kOwned marks a caller-provided node (a flat per-flow timer
  // slot): the dispatcher never returns it to the pool and its callback is
  // emplaced once for the node's whole lifetime — re-arming re-inserts the
  // same node with a fresh (at, seq). kQueued tracks whether the node is
  // currently linked into the wheel/heaps (maintained for owned nodes so
  // Simulator::disarm can refuse a no-op removal cheaply).
  static constexpr uint8_t kOwned = 1;
  static constexpr uint8_t kQueued = 2;

  TimeNs at;
  uint64_t seq = 0;
  Event* next = nullptr;
  uint8_t flags = 0;  // lives in the padding between the header and fn
  InlineFn<void(), kEventCallbackCapacity> fn;
};
static_assert(sizeof(Event) == 128, "Event should stay two cache lines");

class EventPool {
 public:
  EventPool() = default;
  EventPool(const EventPool&) = delete;
  EventPool& operator=(const EventPool&) = delete;

  // Returns a node with fn unset. O(1); allocates only when the free list
  // and the current chunk are both exhausted.
  Event* alloc() {
    if (free_ != nullptr) {
      Event* e = free_;
      free_ = e->next;
      return e;
    }
    if (used_in_chunk_ == kChunkSize) {
      chunks_.push_back(std::make_unique<Event[]>(kChunkSize));
      used_in_chunk_ = 0;
    }
    ++carved_;
    return &chunks_.back()[used_in_chunk_++];
  }

  // Destroys the node's callback and recycles the node.
  void release(Event* e) {
    e->fn.reset();
    e->next = free_;
    free_ = e;
  }

  // Nodes ever carved from chunk storage: stops growing once the workload's
  // peak concurrent event count has been reached — the "zero steady-state
  // allocation" property bench_simcore and sim_test assert on.
  uint64_t nodes_carved() const { return carved_; }

 private:
  static constexpr std::size_t kChunkSize = 512;

  std::vector<std::unique_ptr<Event[]>> chunks_;
  std::size_t used_in_chunk_ = kChunkSize;
  Event* free_ = nullptr;
  uint64_t carved_ = 0;
};

}  // namespace ccstarve
