// Flight-recorder probe: the fourth observer seam of the simulator, next
// to the golden-trace recorder (sim/trace_probe.hpp), the invariant
// checker (sim/check_probe.hpp) and the telemetry probe
// (sim/obs_probe.hpp).
//
// A FlightProbe installed on a Simulator receives typed, timestamped
// *causal* events — the packet lifecycle (send/enqueue/drop/deliver/ack)
// plus the control-plane decisions the other seams do not individuate:
// cwnd changes with the CCA callback that caused them, every send-gate
// transition (not just the rwnd boundary ObsProbe reports), persist-probe
// fires, RTO expirations and delayed-ACK timer fires. It buffers them in
// bounded per-flow rings so a retroactive trigger can export the window
// *around* a starvation crossing; the trigger, window and export policy
// live in the derived recorder (obs/flight.hpp).
//
// Hook pattern matches the other seams: `if (FlightProbe* fp =
// sim.flight()) fp->segment_sent(...)`. Detached cost is one untaken
// branch per site. Attached, the whole record path — the seam-level fast
// gates (the retroactive-trigger freeze, the data-path sampling clocks)
// and the ring write itself — is non-virtual and inlines into the call
// site. This class deliberately has no virtual hooks: the simulator
// records millions of events per second, and an out-of-line call per
// event (the indirect dispatch, the argument marshalling, the
// caller-saved spills it forces in the sender's hot loop) measurably
// costs more than the ring write it would perform. Keeping the writes in
// the header is what holds the attached overhead inside the 10% budget
// BENCH_flight.json gates.
//
// Contract: a FlightProbe is strictly read-only. It never schedules
// events, never mutates packets, and never feeds anything back into the
// components it observes, so attaching one leaves trace digests
// byte-identical (pinned by tests/flight_test.cpp against every committed
// golden digest).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/packet.hpp"
#include "util/rate.hpp"
#include "util/time.hpp"

namespace ccstarve {

// Which CCA callback produced a cwnd change. Exported verbatim into the
// flight trace as the event's reason code.
enum class CwndReason : uint8_t {
  kAck = 0,       // CongestionControl::on_ack
  kLoss = 1,      // fast-retransmit on_loss (3 dupacks)
  kRto = 2,       // retransmission-timeout on_loss
  kSent = 3,      // on_packet_sent adjusted the window
};

inline const char* to_string(CwndReason r) {
  switch (r) {
    case CwndReason::kAck: return "ack";
    case CwndReason::kLoss: return "fast_retx";
    case CwndReason::kRto: return "rto";
    case CwndReason::kSent: return "sent";
  }
  return "?";
}

// One recorded event. `code` and the a/b/c payload are type-specific; see
// the record paths in FlightProbe for each layout. There is no flow
// field: per-flow events live in per-flow rings (the ring index IS the
// flow), and the global-ring types that reference flows carry them in the
// payload. The slot is exactly half a cache line and 32-byte aligned, so
// at millions of writes per second no event ever straddles a line — the
// recording cost is bounded by one read-for-ownership per two events.
struct alignas(32) FlightEvent {
  enum class Type : uint8_t {
    kSend = 0,          // a=seq b=bytes code=retransmit
    kEnqueue = 1,       // a=seq b=queued_after
    kDrop = 2,          // a=seq
    kDeliver = 3,       // a=seq b=queued_after
    kAck = 4,           // a=cwnd b=rwnd_advertised c=inflight; code holds a
                        // folded same-instant gate rebind when bit 7 is
                        // set: 0x80 | prev << 3 | gate (SendGate values)
    kCwndChange = 5,    // a=old b=new code=CwndReason
    kGate = 6,          // a=prev b=gate (SendGate values)
    kPersistProbe = 7,  // a=seq b=backoff
    kRto = 8,           // a=backoff
    kDelack = 9,        //
    kWindowDrop = 10,   // a=seq
    kRateChange = 11,   // a=bits_per_second (global ring)
    kWarp = 12,         // a=from_ns b=to_ns (global ring)
    kCrossing = 13,     // a=flow_a b=flow_b c=fbits(ratio) (global ring)
    kVerdict = 14,      // a=starved b=victim c=fbits(ratio) code=kind
  };

  TimeNs at = TimeNs::zero();
  uint64_t a = 0;
  uint64_t b = 0;
  uint32_t c = 0;
  Type type = Type::kSend;
  uint8_t code = 0;
};
static_assert(sizeof(FlightEvent) == 32,
              "FlightEvent must stay half a cache line");

// Fixed-capacity event ring: push evicts the oldest once full; at(i) walks
// oldest-to-newest through the wrap seam. The whole slab is allocated and
// faulted in when the ring is built (at attach time), so the recording
// path never reallocates, never copies on growth, and never takes a
// first-touch page fault — recording runs at millions of events per
// second and those are the costs that pushed the attached overhead past
// the 10% budget.
class FlightRing {
 public:
  explicit FlightRing(size_t capacity = 1)
      : capacity_(capacity ? capacity : 1), buf_(capacity_) {}

  // Hands out the slot to fill in place, evicting the oldest event once
  // full. A reused slot still holds the evicted event's payload, so
  // callers must write every field their event layout reads.
  FlightEvent& emplace() {
    ++total_;
    FlightEvent& slot = buf_[head_];
    if (++head_ == capacity_) head_ = 0;
    // The ring cycles through megabytes, so the slot line is essentially
    // never cached; hint upcoming slots into cache (write intent) while
    // the caller fills this one, hiding the read-for-ownership latency
    // that otherwise dominates the recording cost. Events arrive ~100 ns
    // apart at full simulation speed, so a few slots of distance gives
    // the lines time to land.
    __builtin_prefetch(reinterpret_cast<const char*>(&slot) + 128, 1);
    __builtin_prefetch(reinterpret_cast<const char*>(&slot) + 256, 1);
    return slot;
  }

  void push(const FlightEvent& e) { emplace() = e; }

  // `back`-th newest retained event (0 = newest), or null when fewer are
  // retained — the gate-fold path peeks a few slots back before deciding
  // to append (a same-instant data-path event may sit between an ACK and
  // its gate rebind).
  FlightEvent* newest(size_t back = 0) {
    if (size() <= back) return nullptr;
    size_t j = head_ + capacity_ - 1 - back;
    if (j >= capacity_) j -= capacity_;
    return &buf_[j];
  }

  size_t size() const {
    return total_ < capacity_ ? static_cast<size_t>(total_) : capacity_;
  }
  size_t capacity() const { return capacity_; }
  // Events ever pushed; total() - size() were evicted.
  uint64_t total() const { return total_; }
  const FlightEvent& at(size_t i) const {
    // Until the first wrap the oldest event sits at 0 (and head_ == size).
    size_t j = (total_ < capacity_ ? 0 : head_) + i;
    if (j >= capacity_) j -= capacity_;
    return buf_[j];
  }

 private:
  size_t capacity_;
  std::vector<FlightEvent> buf_;
  size_t head_ = 0;
  uint64_t total_ = 0;
};

class FlightProbe {
 public:
  // --- inline record paths (what the simulator components call) ---
  // Dummy/probe segments never reach the packet-lifecycle hooks (persist
  // probes arrive via their dedicated hook instead). After the freeze
  // fires every hook swallows its event. Normal sends and queue samples
  // additionally pass the per-flow data-path sampling clocks; retransmits,
  // drops and control-plane events always record.

  void segment_sent(TimeNs now, const Packet& pkt) {
    if (pkt.is_dummy || pkt.is_probe) return;
    if (!pass_freeze(now)) return;
    if (!pkt.is_retransmit && !path_due(pkt.flow, 0, now)) return;
    last_seen_ns_ = now.ns();
    FlightEvent& e = ring_of(pkt.flow).emplace();
    e.at = now;
    e.type = FlightEvent::Type::kSend;
    e.code = pkt.is_retransmit ? 1 : 0;
    e.a = pkt.seq;
    e.b = pkt.bytes;
    e.c = 0;
  }

  void link_enqueue(TimeNs now, const Packet& pkt, uint64_t queued_after) {
    if (pkt.is_dummy) return;
    if (!pass_freeze(now)) return;
    if (!path_due(pkt.flow, 1, now)) return;
    last_seen_ns_ = now.ns();
    FlightEvent& e = ring_of(pkt.flow).emplace();
    e.at = now;
    e.type = FlightEvent::Type::kEnqueue;
    e.code = 0;
    e.a = pkt.seq;
    e.b = queued_after;
    e.c = 0;
  }

  void link_drop(TimeNs now, const Packet& pkt) {
    if (pkt.is_dummy) return;
    if (!pass_freeze(now)) return;
    last_seen_ns_ = now.ns();
    FlightEvent& e = ring_of(pkt.flow).emplace();
    e.at = now;
    e.type = FlightEvent::Type::kDrop;
    e.code = 0;
    e.a = pkt.seq;
    e.b = 0;
    e.c = 0;
  }

  void link_deliver(TimeNs now, const Packet& pkt, uint64_t queued_after) {
    if (pkt.is_dummy) return;
    if (!pass_freeze(now)) return;
    if (!path_due(pkt.flow, 1, now)) return;
    last_seen_ns_ = now.ns();
    FlightEvent& e = ring_of(pkt.flow).emplace();
    e.at = now;
    e.type = FlightEvent::Type::kDeliver;
    e.code = 0;
    e.a = pkt.seq;
    e.b = queued_after;
    e.c = 0;
  }

  // One call per ACK the sender processed, carrying the gauge values the
  // counter tracks sample: cwnd as the CCA just set it, the
  // advertised-window limit the ACK carried, and bytes in flight after
  // the ACK was absorbed.
  void ack_sample(TimeNs now, uint32_t flow, TimeNs /*rtt*/,
                  uint64_t cwnd_bytes, Rate /*pacing*/, uint64_t wnd_limit,
                  uint64_t inflight, uint64_t delivered_bytes) {
    if (!pass_freeze(now)) return;
    last_seen_ns_ = now.ns();
    FlightEvent& e = ring_of(flow).emplace();
    e.at = now;
    e.type = FlightEvent::Type::kAck;
    e.code = 0;
    e.a = cwnd_bytes;
    // Advertised receive window beyond the cumulative ACK; saturates
    // instead of wrapping when the limit is kInfiniteWnd.
    e.b = wnd_limit > delivered_bytes ? wnd_limit - delivered_bytes : 0;
    // The 32-bit slot caps the inflight counter at 4 GB — far beyond any
    // window this simulator can carry.
    e.c = inflight > 0xFFFFFFFFull ? 0xFFFFFFFFu
                                   : static_cast<uint32_t>(inflight);
  }

  // Fired only when the CCA callback actually changed cwnd, and only for
  // reasons the probe subscribed to via cwnd_reason_mask_.
  void cwnd_change(TimeNs now, uint32_t flow, uint64_t old_cwnd,
                   uint64_t new_cwnd, CwndReason reason) {
    if (!(cwnd_reason_mask_ & (1u << static_cast<unsigned>(reason)))) return;
    if (!pass_freeze(now)) return;
    last_seen_ns_ = now.ns();
    FlightEvent& e = ring_of(flow).emplace();
    e.at = now;
    e.type = FlightEvent::Type::kCwndChange;
    e.code = static_cast<uint8_t>(reason);
    e.a = old_cwnd;
    e.b = new_cwnd;
    e.c = 0;
  }

  // Every send-gate transition (kNone/kCwnd/kRwnd/kPacing), unlike
  // ObsProbe::on_send_gate which only reports the rwnd boundary. ACK
  // processing routinely flips the gate twice at one timestamp (window
  // opens -> kNone, the immediate send re-binds -> kCwnd/kPacing), and it
  // does so right after the kAck event for the same instant was recorded.
  // The intermediate state would only ever export as a zero-duration slice
  // the writer skips, so fold flaps into the previous transition — and
  // fold the whole ACK-clocked rebind into the kAck event's spare code
  // byte (0x80 | prev << 3 | gate) instead of spending a ring slot on it.
  // In steady state that one byte, written into a still-hot slot, replaces
  // a full event per ACK: about a third of all ring writes. The walk looks
  // a few slots back because a sampled data-path event (the send the
  // opened window released, its link enqueue) may have landed between the
  // kAck and the re-binding transition.
  void send_gate(TimeNs now, uint32_t flow, SendGate prev, SendGate gate) {
    if (!pass_freeze(now)) return;
    last_seen_ns_ = now.ns();
    FlightRing& ring = ring_of(flow);
    for (size_t back = 0; back < 3; ++back) {
      FlightEvent* last = ring.newest(back);
      if (!last || last->at != now) break;
      if (last->type == FlightEvent::Type::kGate) {
        last->b = static_cast<uint64_t>(gate);
        return;
      }
      if (last->type == FlightEvent::Type::kAck) {
        const uint8_t p = (last->code & 0x80)
                              ? static_cast<uint8_t>((last->code >> 3) & 7)
                              : static_cast<uint8_t>(prev);
        last->code = static_cast<uint8_t>(
            0x80u | (p << 3) | (static_cast<uint8_t>(gate) & 7));
        return;
      }
    }
    FlightEvent& e = ring.emplace();
    e.at = now;
    e.type = FlightEvent::Type::kGate;
    e.code = 0;
    e.a = static_cast<uint64_t>(prev);
    e.b = static_cast<uint64_t>(gate);
    e.c = 0;
  }

  // Zero-window persist probe left the sender; backoff is the current
  // persist exponential-backoff level.
  void persist_probe(TimeNs now, uint32_t flow, uint64_t seq,
                     uint32_t backoff) {
    if (!pass_freeze(now)) return;
    last_seen_ns_ = now.ns();
    FlightEvent e;
    e.at = now;
    e.type = FlightEvent::Type::kPersistProbe;
    e.a = seq;
    e.b = backoff;
    ring_of(flow).push(e);
  }

  // Retransmission timeout fired; backoff is the post-increment level.
  void rto(TimeNs now, uint32_t flow, uint32_t backoff) {
    if (!pass_freeze(now)) return;
    last_seen_ns_ = now.ns();
    FlightEvent e;
    e.at = now;
    e.type = FlightEvent::Type::kRto;
    e.a = backoff;
    ring_of(flow).push(e);
  }

  // Delayed-ACK timer fired with data pending, forcing an ACK out.
  void delack_fire(TimeNs now, uint32_t flow) {
    if (!pass_freeze(now)) return;
    last_seen_ns_ = now.ns();
    FlightEvent e;
    e.at = now;
    e.type = FlightEvent::Type::kDelack;
    ring_of(flow).push(e);
  }

  // Receiver discarded an in-window-violating segment (advertised-window
  // overrun).
  void window_drop(TimeNs now, const Packet& pkt) {
    if (!pass_freeze(now)) return;
    last_seen_ns_ = now.ns();
    FlightEvent e;
    e.at = now;
    e.type = FlightEvent::Type::kWindowDrop;
    e.a = pkt.seq;
    ring_of(pkt.flow).push(e);
  }

  // Bottleneck rate change (global ring).
  void link_rate_change(TimeNs now, Rate rate) {
    if (!pass_freeze(now)) return;
    last_seen_ns_ = now.ns();
    FlightEvent e;
    e.at = now;
    e.type = FlightEvent::Type::kRateChange;
    e.a = rate.is_infinite() ? 0
                             : static_cast<uint64_t>(rate.to_mbps() * 1e6);
    global_.push(e);
  }

  // True once the freeze gate has swallowed an event (the post-trigger
  // window has been fully recorded).
  bool frozen() const { return frozen_; }

 protected:
  // Constructed and torn down only as part of the derived recorder; the
  // simulator's FlightProbe* is non-owning.
  FlightProbe() = default;
  ~FlightProbe() = default;

  // --- fast-gate state (configured by the derived recorder) ---
  // "long before any event" without risking subtraction overflow; also
  // the reset value of the data-path sampling clocks.
  static constexpr int64_t kLongAgoNs = -(int64_t{1} << 62);

  // Freeze gate shared by every record path: false once `now` passes
  // freeze_at_ns_. Armed by moving freeze_at_ns_ down from INT64_MAX, so
  // the hot path is a single predictable compare.
  bool pass_freeze(TimeNs now) {
    if (now.ns() > freeze_at_ns_) {
      frozen_ = true;
      return false;
    }
    return true;
  }
  // Per-flow data-path sampling clock: true when path_step_ns_ has
  // elapsed since the clock in `which` ([0] normal sends, [1] queue
  // samples) last fired, advancing it. Step zero passes everything.
  bool path_due(uint32_t flow, int which, TimeNs now) {
    if (path_step_ns_ <= 0) return true;
    if (flow >= path_clock_.size()) {
      path_clock_.resize(flow + 1, {kLongAgoNs, kLongAgoNs});
    }
    int64_t& slot = path_clock_[flow][which];
    if (now.ns() - slot < path_step_ns_) return false;
    slot = now.ns();
    return true;
  }

  FlightRing& ring_of(uint32_t flow) {
    if (flow >= flows_.size()) grow_flow(flow);
    return flows_[flow];
  }
  // Cold path: flows appearing after attach (always outlined — resize
  // machinery keeps it off the hot record path on its own).
  void grow_flow(uint32_t flow) {
    flows_.resize(flow + 1, FlightRing(ring_capacity_));
  }

  // INT64_MAX = freeze not armed.
  int64_t freeze_at_ns_ = std::numeric_limits<int64_t>::max();
  bool frozen_ = false;
  // Sampling step for normal sends / queue samples; 0 = record everything.
  int64_t path_step_ns_ = 0;
  std::vector<std::array<int64_t, 2>> path_clock_;
  // Bit per CwndReason value; the default subscribes to all of them.
  uint8_t cwnd_reason_mask_ = 0xFF;

  // --- ring storage (sized by the derived recorder at attach) ---
  std::vector<FlightRing> flows_;
  FlightRing global_;
  size_t ring_capacity_ = 1;  // capacity for rings grow_flow adds
  // Timestamp of the newest recorded event; the export window's upper
  // bound under FlightTrigger::kAlways.
  int64_t last_seen_ns_ = 0;
};

}  // namespace ccstarve
