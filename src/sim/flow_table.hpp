// Struct-of-arrays hot state for many-flow scenarios.
//
// With thousands of flows, the per-flow transport state that the event loop
// touches on every ACK and every send must not be scattered across
// individually-allocated Sender/Receiver objects: a 10k-flow cohort would
// pull 10k distinct cache-line neighborhoods per simulated RTT. The
// FlowTable packs the per-flow hot scalars (cwnd/pacing mirrors, inflight,
// cumulative ACK, next seq, packets sent) into dense columns indexed by the
// flow's row id, and carves five flat timer-slot arrays — pacing wakeup,
// RTO, delayed-ACK, zero-window persist, receiver window-update — of
// caller-owned Event nodes that the Simulator re-arms
// in place (sim/event_pool.hpp, Event::kOwned). N flows therefore cost N
// contiguous cache lines per column sweep, and timer re-arms touch only the
// flow's own 128-byte slot instead of churning pool nodes.
//
// Sender/Receiver objects remain the behavior carriers; they borrow a row
// (Scenario wires one table across all flows) or, when constructed
// standalone, own a private single-row table so unit tests and the
// trace-link topology need no wiring changes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/event_pool.hpp"
#include "util/rate.hpp"

namespace ccstarve {

class FlowTable {
 public:
  FlowTable() = default;
  explicit FlowTable(size_t n) {
    for (size_t i = 0; i < n; ++i) add_row();
  }

  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;

  size_t size() const { return inflight_bytes.size(); }

  // Appends one flow row (all columns zeroed, timer slots idle) and returns
  // its index. Slot addresses are stable across growth (deque), so senders/
  // receivers may cache Event pointers while later flows are added.
  uint32_t add_row() {
    const uint32_t row = static_cast<uint32_t>(size());
    inflight_bytes.push_back(0);
    cum_acked.push_back(0);
    delivered.push_back(0);
    next_seq.push_back(0);
    packets_sent.push_back(0);
    cwnd_bytes.push_back(0);
    pacing.emplace_back();
    started.push_back(0);
    pace_slots.emplace_back();
    rto_slots.emplace_back();
    ack_slots.emplace_back();
    persist_slots.emplace_back();
    wnd_slots.emplace_back();
    return row;
  }

  // Hot columns. `cwnd_bytes`/`pacing` mirror the CCA's const getters —
  // refreshed by the Sender after every CCA callback — so the send loop's
  // window/pacing gates read a dense column instead of making a virtual
  // call per iteration (the values are identical by construction).
  std::vector<uint64_t> inflight_bytes;
  std::vector<uint64_t> cum_acked;
  std::vector<uint64_t> delivered;
  std::vector<uint64_t> next_seq;
  std::vector<uint64_t> packets_sent;
  std::vector<uint64_t> cwnd_bytes;
  std::vector<Rate> pacing;
  std::vector<uint8_t> started;

  // Flat per-flow timer slots (owned Event nodes; see Simulator::arm).
  // Deques: reference-stable growth, chunked-contiguous storage.
  std::deque<Event> pace_slots;
  std::deque<Event> rto_slots;
  std::deque<Event> ack_slots;
  // Sender-side zero-window persist probe timer.
  std::deque<Event> persist_slots;
  // Receiver-side window-update wakeup (fires when the app drain will have
  // re-opened a worthwhile window).
  std::deque<Event> wnd_slots;

  // Test-only fault injection: swaps two hot columns wholesale so the
  // invariant checker's table-vs-scoreboard cross-check (and the fuzzer
  // shrinker sitting on top of it) can be proven to catch a mis-wired
  // column. Never called outside tests.
  void corrupt_swap_inflight_cum() { inflight_bytes.swap(cum_acked); }
};

}  // namespace ccstarve
