#include "sim/jitter.hpp"

namespace ccstarve {

TimeNs PeriodicReleaseJitter::release_at(const Packet&, TimeNs arrival) {
  const int64_t rel = arrival.ns() - phase_.ns();
  if (rel <= 0) return phase_;
  const int64_t periods = (rel + period_.ns() - 1) / period_.ns();
  return phase_ + TimeNs::nanos(periods * period_.ns());
}

TimeNs OnOffJitter::release_at(const Packet&, TimeNs arrival) {
  const int64_t cycle = on_time_.ns() + off_time_.ns();
  const int64_t pos = arrival.ns() % cycle;
  return pos < on_time_.ns() ? arrival + high_ : arrival;
}

}  // namespace ccstarve
