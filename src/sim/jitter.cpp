#include "sim/jitter.hpp"

namespace ccstarve {

TimeNs PeriodicReleaseJitter::release_at(const Packet&, TimeNs arrival) {
  const int64_t rel = arrival.ns() - phase_.ns();
  if (rel <= 0) return phase_;
  const int64_t periods = (rel + period_.ns() - 1) / period_.ns();
  return phase_ + TimeNs::nanos(periods * period_.ns());
}

TimeNs OnOffJitter::release_at(const Packet&, TimeNs arrival) {
  const int64_t cycle = on_time_.ns() + off_time_.ns();
  const int64_t pos = arrival.ns() % cycle;
  return pos < on_time_.ns() ? arrival + high_ : arrival;
}

JitterBox::JitterBox(Simulator& sim, std::unique_ptr<JitterPolicy> policy,
                     TimeNs budget, PacketHandler& next)
    : sim_(sim), policy_(std::move(policy)), budget_(budget), next_(next) {}

void JitterBox::handle(Packet pkt) {
  const TimeNs arrival = sim_.now();
  TimeNs release = policy_->release_at(pkt, arrival);
  release = ccstarve::max(release, arrival);     // eta >= 0
  release = ccstarve::max(release, last_release_);  // no reordering
  last_release_ = release;

  const TimeNs added = release - arrival;
  ++stats_.packets;
  stats_.total_added_seconds += added.to_seconds();
  stats_.max_added = ccstarve::max(stats_.max_added, added);
  if (added > budget_) ++stats_.budget_violations;

  sim_.schedule_at(release, [this, pkt] { next_.handle(pkt); });
}

}  // namespace ccstarve
