// The non-congestive delay element of the paper's §3 model: a per-flow box
// that may hold any packet for a bounded extra time without reordering.
//
// A JitterPolicy decides the (absolute) release time of each packet; the
// JitterBox enforces FIFO order and accounts for how much non-congestive
// delay was actually added, including violations of the [0, D] budget —
// the Theorem 1 construction asserts that its emulation stayed within
// budget by reading these counters.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>

#include "sim/check_probe.hpp"
#include "sim/obs_probe.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "sim/snapshot.hpp"
#include "util/rng.hpp"
#include "util/series.hpp"
#include "util/time.hpp"

namespace ccstarve {

class JitterPolicy {
 public:
  // What the fast-forward engine (sim/warp) may do across this policy.
  // A policy is *transparent* when a uniform time shift of the whole
  // scenario commutes with its release schedule — shifting every timestamp
  // by delta (a multiple of `quantum`, when nonzero) produces exactly the
  // releases the policy would have produced anyway. Policies whose schedule
  // depends on absolute time in a non-periodic way (random draws, recorded
  // trajectories) report `opaque` and block warping while active.
  struct WarpCaps {
    // Conservative default: an unknown policy blocks warping.
    bool opaque = true;
    // Next absolute time the policy's behaviour changes regime (a step
    // start, an exemption window opening, a delayed onset). The warp engine
    // never skips across this point. infinite() = no upcoming change.
    TimeNs next_change = TimeNs::infinite();
    // When nonzero, time shifts must be integer multiples of this (the
    // policy's release grid period). zero() = any shift.
    TimeNs quantum = TimeNs::zero();
    // Effective non-congestive delay the policy adds per packet in its
    // current regime (an average for periodic/square-wave policies). Feeds
    // the fluid model's eta term during warp validation; approximate is
    // fine — the rate-agreement tolerance absorbs it.
    TimeNs eta = TimeNs::zero();
  };

  virtual ~JitterPolicy() = default;
  // Absolute release time for a packet arriving now. The box clamps this to
  // `arrival` from below and enforces no-reordering.
  virtual TimeNs release_at(const Packet& pkt, TimeNs arrival) = 0;
  // Value copy including live state (RNGs, last-arrival trackers), so a
  // forked scenario continues the exact release sequence a cold run would
  // have produced (sim/snapshot.hpp). Every policy holds only value-type
  // state, so implementations are one-line copy-constructor wrappers.
  virtual std::unique_ptr<JitterPolicy> clone() const = 0;
  // Warpability at time `now` (see WarpCaps). The default — opaque — is the
  // safe answer for any policy that does not opt in.
  virtual WarpCaps warp_caps(TimeNs /*now*/) const { return WarpCaps{}; }
  // Shift internal *measurement* state by delta (new_time = old_time +
  // delta) after a warp. Spec-anchored times (step starts, onsets, exempt
  // windows) stay put — they are scenario coordinates, not measurements.
  virtual void rebase_time(TimeNs /*delta*/) {}
};

// eta(t) = 0: the ideal path.
class ZeroJitter final : public JitterPolicy {
 public:
  TimeNs release_at(const Packet&, TimeNs arrival) override { return arrival; }
  std::unique_ptr<JitterPolicy> clone() const override {
    return std::make_unique<ZeroJitter>(*this);
  }
  WarpCaps warp_caps(TimeNs) const override {
    return WarpCaps{false, TimeNs::infinite(), TimeNs::zero()};
  }
};

// eta(t) = c for every packet (e.g. a constant processing overhead).
class ConstantJitter final : public JitterPolicy {
 public:
  explicit ConstantJitter(TimeNs c) : c_(c) {}
  TimeNs release_at(const Packet&, TimeNs arrival) override {
    return arrival + c_;
  }
  std::unique_ptr<JitterPolicy> clone() const override {
    return std::make_unique<ConstantJitter>(*this);
  }
  WarpCaps warp_caps(TimeNs) const override {
    return WarpCaps{false, TimeNs::infinite(), TimeNs::zero(), c_};
  }

 private:
  TimeNs c_;
};

// eta(t) = c for every packet except one, which passes through untouched:
// the first packet arriving at or after `exempt_after`. Reproduces the
// paper's §5.1 Copa attack — a single packet with an RTT 1 ms below every
// other makes Copa under-estimate its min RTT for as long as the sample
// stays in its min-RTT window. Exempting by time (rather than sequence
// number) lets the experiment pick a moment when the queue is empty, so the
// exempt packet's RTT really is Rm.
class AllButOneJitter final : public JitterPolicy {
 public:
  AllButOneJitter(TimeNs c, TimeNs exempt_after)
      : c_(c), exempt_after_(exempt_after) {}
  TimeNs release_at(const Packet& pkt, TimeNs arrival) override {
    (void)pkt;
    // Only exempt a packet whose early release would not reorder it behind
    // its (+c delayed) predecessor, i.e. one preceded by a >= c gap;
    // otherwise the box's no-reorder clamp would erase the exemption.
    const bool gap_ok = arrival - last_arrival_ >= c_;
    last_arrival_ = arrival;
    if (!exempted_ && arrival >= exempt_after_ && gap_ok) {
      exempted_ = true;
      return arrival;
    }
    return arrival + c_;
  }

  bool fired() const { return exempted_; }
  std::unique_ptr<JitterPolicy> clone() const override {
    return std::make_unique<AllButOneJitter>(*this);
  }
  WarpCaps warp_caps(TimeNs now) const override {
    // Before the exemption window opens the policy is a plain +c constant;
    // once open but unfired, which packet gets exempted depends on exact
    // inter-arrival gaps — opaque. After firing it is constant again.
    if (exempted_) {
      return WarpCaps{false, TimeNs::infinite(), TimeNs::zero(), c_};
    }
    if (now < exempt_after_) {
      return WarpCaps{false, exempt_after_, TimeNs::zero(), c_};
    }
    return WarpCaps{};
  }
  void rebase_time(TimeNs delta) override { last_arrival_ += delta; }

 private:
  TimeNs c_;
  TimeNs exempt_after_;
  TimeNs last_arrival_ = TimeNs(-(int64_t)1e15);
  bool exempted_ = false;
};

// Constant jitter that switches on at `start`: zero before, c after. Lets
// an experiment poison a CCA's steady state while its min-RTT baseline was
// learned clean (persistent non-congestive delay arriving mid-connection).
class StepJitter final : public JitterPolicy {
 public:
  StepJitter(TimeNs c, TimeNs start) : c_(c), start_(start) {}
  TimeNs release_at(const Packet&, TimeNs arrival) override {
    return arrival < start_ ? arrival : arrival + c_;
  }
  std::unique_ptr<JitterPolicy> clone() const override {
    return std::make_unique<StepJitter>(*this);
  }
  WarpCaps warp_caps(TimeNs now) const override {
    // Constant on either side of the step; the step itself is an epoch the
    // warp engine must not skip.
    return WarpCaps{false, now < start_ ? start_ : TimeNs::infinite(),
                    TimeNs::zero(), now < start_ ? TimeNs::zero() : c_};
  }

 private:
  TimeNs c_;
  TimeNs start_;
};

// Uniform random jitter in [lo, hi] (OS-scheduling-style noise).
class UniformJitter final : public JitterPolicy {
 public:
  UniformJitter(TimeNs lo, TimeNs hi, uint64_t seed)
      : lo_(lo), hi_(hi), rng_(seed) {}
  TimeNs release_at(const Packet&, TimeNs arrival) override {
    return arrival +
           TimeNs::nanos(static_cast<int64_t>(rng_.uniform(
               static_cast<double>(lo_.ns()), static_cast<double>(hi_.ns()))));
  }
  std::unique_ptr<JitterPolicy> clone() const override {
    return std::make_unique<UniformJitter>(*this);
  }

 private:
  TimeNs lo_, hi_;
  Rng rng_;
};

// Releases packets only at integer multiples of `period` (measured from
// `phase`). Models ACK aggregation / quantized delivery: the paper's §5.3
// Vivace experiment delivers one flow's ACKs only at multiples of 60 ms.
class PeriodicReleaseJitter final : public JitterPolicy {
 public:
  explicit PeriodicReleaseJitter(TimeNs period, TimeNs phase = TimeNs::zero())
      : period_(period), phase_(phase) {}
  TimeNs release_at(const Packet&, TimeNs arrival) override;
  std::unique_ptr<JitterPolicy> clone() const override {
    return std::make_unique<PeriodicReleaseJitter>(*this);
  }
  WarpCaps warp_caps(TimeNs) const override {
    // Stateless and grid-anchored: a shift by a whole number of periods
    // maps the release grid onto itself. Mean added delay ~ period/2.
    return WarpCaps{false, TimeNs::infinite(), period_,
                    TimeNs::nanos(period_.ns() / 2)};
  }

 private:
  TimeNs period_, phase_;
};

// Square-wave jitter: alternates between `high` for `on_time` and zero for
// `off_time`. A simple model of a link-layer scheduler whose allocation lags
// demand (the §5.2 BBR discussion).
class OnOffJitter final : public JitterPolicy {
 public:
  OnOffJitter(TimeNs high, TimeNs on_time, TimeNs off_time)
      : high_(high), on_time_(on_time), off_time_(off_time) {}
  TimeNs release_at(const Packet&, TimeNs arrival) override;
  std::unique_ptr<JitterPolicy> clone() const override {
    return std::make_unique<OnOffJitter>(*this);
  }
  WarpCaps warp_caps(TimeNs) const override {
    // Stateless square wave anchored at t=0: shifts by whole cycles
    // preserve the on/off phase every arrival sees. Mean added delay is
    // the duty-cycle-weighted high level.
    return WarpCaps{false, TimeNs::infinite(), on_time_ + off_time_,
                    TimeNs::nanos(high_.ns() * on_time_.ns() /
                                  std::max<int64_t>(
                                      (on_time_ + off_time_).ns(), 1))};
  }

 private:
  TimeNs high_, on_time_, off_time_;
};

// Jitter given by an arbitrary trajectory eta(t) sampled from a TimeSeries
// (seconds). Used to replay adversarial schedules produced by the analysis
// core.
class TrajectoryJitter final : public JitterPolicy {
 public:
  explicit TrajectoryJitter(TimeSeries eta) : eta_(std::move(eta)) {}
  TimeNs release_at(const Packet&, TimeNs arrival) override {
    return arrival + TimeNs::seconds(eta_.at(arrival));
  }
  std::unique_ptr<JitterPolicy> clone() const override {
    return std::make_unique<TrajectoryJitter>(*this);
  }

 private:
  TimeSeries eta_;
};

// Delay-emulation policy used by the Theorem 1/2 constructions. Placed on a
// flow's ACK path, it holds each ACK until the total RTT of the associated
// data packet equals a target trajectory d(t) evaluated at the data packet's
// send time: release = data_sent_at + d(data_sent_at). The implied
// non-congestive delay is eta = release - arrival, which the surrounding
// JitterBox audits against the budget D.
class DelayEmulationJitter final : public JitterPolicy {
 public:
  // `target_rtt` maps send time (series time axis) to target RTT in seconds.
  // With `loop` set, the trajectory is tiled: send times beyond its span are
  // wrapped modulo the span, so a converged-window recording can drive an
  // arbitrarily long emulation.
  explicit DelayEmulationJitter(TimeSeries target_rtt, bool loop = false)
      : target_(std::move(target_rtt)), loop_(loop) {}

  TimeNs release_at(const Packet& pkt, TimeNs arrival) override {
    const TimeNs want = pkt.data_sent_at + TimeNs::seconds(target_at(pkt.data_sent_at));
    return ccstarve::max(want, arrival);
  }

  double target_at(TimeNs send_time) const {
    if (!loop_) return target_.at(send_time);
    const int64_t span = target_.back_time().ns();
    if (span <= 0) return target_.at(send_time);
    return target_.at(TimeNs::nanos(send_time.ns() % span));
  }
  std::unique_ptr<JitterPolicy> clone() const override {
    return std::make_unique<DelayEmulationJitter>(*this);
  }

 private:
  TimeSeries target_;
  bool loop_;
};

// Identity until `onset`, then delegates to an inner policy. Because the
// inner policy is never consulted before onset, its state at onset equals
// its freshly-constructed state — which is what lets the jitter-adversary
// search run one clean warm-up, snapshot it, and fork every candidate
// schedule from the same converged equilibrium (core/jitter_search.cpp).
class DelayedOnsetJitter final : public JitterPolicy {
 public:
  DelayedOnsetJitter(TimeNs onset, std::unique_ptr<JitterPolicy> inner)
      : onset_(onset), inner_(std::move(inner)) {}
  TimeNs release_at(const Packet& pkt, TimeNs arrival) override {
    if (arrival < onset_ || !inner_) return arrival;
    return inner_->release_at(pkt, arrival);
  }
  std::unique_ptr<JitterPolicy> clone() const override {
    return std::make_unique<DelayedOnsetJitter>(
        onset_, inner_ ? inner_->clone() : nullptr);
  }
  WarpCaps warp_caps(TimeNs now) const override {
    if (now < onset_ || !inner_) {
      return WarpCaps{false, inner_ ? onset_ : TimeNs::infinite(),
                      TimeNs::zero()};
    }
    return inner_->warp_caps(now);
  }
  void rebase_time(TimeNs delta) override {
    if (inner_) inner_->rebase_time(delta);
  }

 private:
  TimeNs onset_;
  std::unique_ptr<JitterPolicy> inner_;
};

// The box itself: applies a policy, forbids reordering, audits the added
// delay against a budget D.
class JitterBox final : public PacketHandler {
 public:
  struct Stats {
    uint64_t packets = 0;
    // Packets whose added delay exceeded the budget D.
    uint64_t budget_violations = 0;
    TimeNs max_added = TimeNs::zero();
    double total_added_seconds = 0.0;
  };

  // `budget` is the model's D; pass TimeNs::infinite() to disable auditing.
  template <typename Next>
  JitterBox(Simulator& sim, std::unique_ptr<JitterPolicy> policy,
            TimeNs budget, Next& next)
      : sim_(sim),
        policy_(std::move(policy)),
        budget_(budget),
        next_(as_sink(next)) {}

  void handle(Packet pkt) override {
    const TimeNs arrival = sim_.now();
    TimeNs release = policy_->release_at(pkt, arrival);
    release = ccstarve::max(release, arrival);     // eta >= 0
    release = ccstarve::max(release, last_release_);  // no reordering
    last_release_ = release;

    const TimeNs added = release - arrival;
    ++stats_.packets;
    stats_.total_added_seconds += added.to_seconds();
    stats_.max_added = ccstarve::max(stats_.max_added, added);
    if (added > budget_) ++stats_.budget_violations;
    if (CheckProbe* ck = sim_.checker()) {
      ck->on_jitter_admit(arrival, release, pkt, pkt.is_ack, budget_);
    }
    if (ObsProbe* ob = sim_.telemetry()) {
      ob->on_jitter_admit(arrival, release, pkt, pkt.is_ack, budget_);
    }

    schedule_release(release, pkt);
  }

  const Stats& stats() const { return stats_; }

  // Read-only policy access for the warp engine's epoch/refusal scan.
  const JitterPolicy& policy() const { return *policy_; }

  // Attach-time sync for the invariant checker (src/check/invariants.hpp):
  // packets currently held by the box with their scheduled release times,
  // and the FIFO horizon the next admission will be clamped to.
  const InFlightQueue& in_flight() const { return inflight_; }
  TimeNs last_release() const { return last_release_; }

  // --- snapshot/fork hooks (sim/snapshot.hpp) ---

  struct State {
    TimeNs last_release = TimeNs::zero();
    Stats stats;
  };

  // The policy is captured separately (see Scenario::snapshot), because a
  // fork may substitute a divergent policy for the snapshot's.
  std::unique_ptr<JitterPolicy> clone_policy() const {
    return policy_->clone();
  }

  State capture(std::vector<PendingEvent>* events, PendingEvent::Kind kind,
                uint32_t flow) const {
    capture_in_flight(inflight_, kind, flow, events);
    return State{last_release_, stats_};
  }

  void restore(const State& st) {
    last_release_ = st.last_release;
    stats_ = st.stats;
  }

  // Held packets re-enter in ascending (at, seq) order — the box is FIFO,
  // so this rebuilds the in-flight deque in release order.
  void restore_in_flight(const PendingEvent& e) {
    schedule_release(e.at, e.pkt);
  }

 private:
  void schedule_release(TimeNs release, const Packet& pkt) {
    InFlightPacket rec;
    rec.at = release;
    rec.pkt = pkt;
    rec.seq = sim_.schedule_at(release, [this] { drain_releases(); });
    inflight_.push_back(rec);
  }

  // Delivers the head packet, then batches any immediately-following
  // releases that share this timestamp: if the next held packet's event is
  // literally the next pending event (same at, same seq — e.g. a quantized
  // ACK bucket), claim it and deliver inline instead of paying another
  // dispatch. Exact by construction: a claimed event was next anyway, and
  // anything scheduled while delivering gets a later seq, so it would have
  // run after that event in the unbatched order too.
  void drain_releases() {
    for (;;) {
      const Packet pkt = inflight_.front().pkt;
      inflight_.pop_front();
      if (CheckProbe* ck = sim_.checker()) {
        ck->on_jitter_release(sim_.now(), pkt, pkt.is_ack);
      }
      next_.handle(pkt);
      if (inflight_.empty()) return;
      const InFlightPacket& head = inflight_.front();
      if (head.at != sim_.now()) return;
      if (!sim_.try_claim_next(head.at, head.seq)) return;
    }
  }

  Simulator& sim_;
  std::unique_ptr<JitterPolicy> policy_;
  TimeNs budget_;
  PacketSink next_;
  TimeNs last_release_ = TimeNs::zero();
  InFlightQueue inflight_;
  Stats stats_;
};

}  // namespace ccstarve
