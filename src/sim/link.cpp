#include "sim/link.hpp"

#include <utility>

namespace ccstarve {

BottleneckLink::BottleneckLink(Simulator& sim, const Config& config,
                               PacketHandler& next)
    : sim_(sim),
      rate_(config.rate),
      buffer_bytes_(config.buffer_bytes),
      next_(next) {}

void BottleneckLink::handle(Packet pkt) {
  if (queued_bytes_ + pkt.bytes > buffer_bytes_) {
    ++drops_;
    if (drop_listener_) drop_listener_(pkt);
    return;
  }
  if (aqm_ && !pkt.is_dummy && !pkt.is_ack &&
      aqm_->should_mark(queued_bytes_)) {
    pkt.ecn_ce = true;
    ++ce_marks_;
  }
  queued_bytes_ += pkt.bytes;
  queue_.push_back(pkt);
  if (!busy_) start_service();
}

void BottleneckLink::prefill(uint64_t bytes) {
  while (bytes > 0) {
    Packet dummy;
    dummy.is_dummy = true;
    dummy.bytes = static_cast<uint32_t>(bytes < kMss ? bytes : kMss);
    bytes -= dummy.bytes;
    handle(dummy);
  }
}

void BottleneckLink::set_rate(Rate r) {
  rate_ = r;
  if (busy_) {
    // Restart service of the head packet at the new rate. The epoch bump
    // cancels the previously scheduled completion.
    ++epoch_;
    busy_ = false;
    start_service();
  }
}

void BottleneckLink::start_service() {
  if (queue_.empty()) return;
  busy_ = true;
  const uint64_t epoch = epoch_;
  const TimeNs tx = rate_.transmission_time(queue_.front().bytes);
  sim_.schedule_in(tx, [this, epoch] {
    if (epoch != epoch_) return;  // cancelled by set_rate
    finish_service();
  });
}

void BottleneckLink::finish_service() {
  Packet pkt = queue_.front();
  queue_.pop_front();
  queued_bytes_ -= pkt.bytes;
  busy_ = false;
  ++delivered_packets_;
  next_.handle(pkt);
  if (!queue_.empty()) start_service();
}

void PropagationDelay::handle(Packet pkt) {
  sim_.schedule_in(delay_, [this, pkt] { next_.handle(pkt); });
}

void DelayServerLink::handle(Packet pkt) {
  const TimeNs arrival = sim_.now();
  TimeNs release = arrival + ccstarve::max(TimeNs::zero(), fn_(arrival));
  release = ccstarve::max(release, last_release_);
  last_release_ = release;
  sim_.schedule_at(release, [this, pkt] { next_.handle(pkt); });
}

}  // namespace ccstarve
