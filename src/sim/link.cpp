#include "sim/link.hpp"

#include <cassert>

#include "sim/obs_probe.hpp"

namespace ccstarve {

void BottleneckLink::prefill(uint64_t bytes) {
  while (bytes > 0) {
    Packet dummy;
    dummy.is_dummy = true;
    dummy.bytes = static_cast<uint32_t>(bytes < kMss ? bytes : kMss);
    bytes -= dummy.bytes;
    handle(dummy);
  }
}

void BottleneckLink::set_rate(Rate r) {
  rate_ = r;
  if (CheckProbe* ck = sim_.checker()) ck->on_link_rate_change(sim_.now(), r);
  if (ObsProbe* ob = sim_.telemetry()) ob->on_link_rate_change(sim_.now(), r);
  if (FlightProbe* fp = sim_.flight()) fp->link_rate_change(sim_.now(), r);
  if (busy_) {
    // Restart service of the head packet at the new rate. The epoch bump
    // cancels the previously scheduled completion.
    ++epoch_;
    busy_ = false;
    start_service();
  }
}

void BottleneckLink::start_service() {
  if (queue_.empty()) return;
  busy_ = true;
  const uint64_t epoch = epoch_;
  const TimeNs tx = rate_.transmission_time(queue_.front().bytes);
  service_at_ = sim_.now() + tx;
  service_seq_ = sim_.schedule_in(tx, [this, epoch] {
    if (epoch != epoch_) return;  // cancelled by set_rate
    finish_service();
  });
}

BottleneckLink::State BottleneckLink::capture(
    std::vector<PendingEvent>* events) const {
  State st;
  st.rate = rate_;
  st.queue = queue_;
  st.queued_bytes = queued_bytes_;
  st.busy = busy_;
  st.drops = drops_;
  st.delivered_packets = delivered_packets_;
  st.aqm = aqm_ ? aqm_->clone() : nullptr;
  st.ce_marks = ce_marks_;
  st.epoch = epoch_;
  st.service_at = service_at_;
  if (busy_) {
    PendingEvent e;
    e.at = service_at_;
    e.seq = service_seq_;
    e.kind = PendingEvent::Kind::kLinkService;
    events->push_back(e);
  }
  return st;
}

void BottleneckLink::restore(const State& st) {
  rate_ = st.rate;
  queue_ = st.queue;
  queued_bytes_ = st.queued_bytes;
  busy_ = st.busy;
  drops_ = st.drops;
  delivered_packets_ = st.delivered_packets;
  aqm_ = st.aqm ? st.aqm->clone() : nullptr;
  ce_marks_ = st.ce_marks;
  epoch_ = st.epoch;
  service_at_ = st.service_at;
}

void BottleneckLink::restore_service(const PendingEvent& e) {
  assert(busy_ && !queue_.empty());
  const uint64_t epoch = epoch_;
  service_at_ = e.at;
  service_seq_ = sim_.schedule_at(e.at, [this, epoch] {
    if (epoch != epoch_) return;
    finish_service();
  });
}

void BottleneckLink::finish_service() {
  Packet pkt = queue_.front();
  queue_.pop_front();
  queued_bytes_ -= pkt.bytes;
  busy_ = false;
  ++delivered_packets_;
  if (TraceRecorder* tr = sim_.tracer()) {
    tr->record('L', sim_.now(), pkt.flow, pkt.seq, pkt.bytes);
  }
  if (CheckProbe* ck = sim_.checker()) ck->on_link_deliver(sim_.now(), pkt);
  if (ObsProbe* ob = sim_.telemetry()) {
    ob->on_link_deliver(sim_.now(), pkt, queued_bytes_);
  }
  if (FlightProbe* fp = sim_.flight()) {
    fp->link_deliver(sim_.now(), pkt, queued_bytes_);
  }
  next_.handle(pkt);
  if (!queue_.empty()) start_service();
}

}  // namespace ccstarve
