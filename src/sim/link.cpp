#include "sim/link.hpp"

namespace ccstarve {

void BottleneckLink::prefill(uint64_t bytes) {
  while (bytes > 0) {
    Packet dummy;
    dummy.is_dummy = true;
    dummy.bytes = static_cast<uint32_t>(bytes < kMss ? bytes : kMss);
    bytes -= dummy.bytes;
    handle(dummy);
  }
}

void BottleneckLink::set_rate(Rate r) {
  rate_ = r;
  if (busy_) {
    // Restart service of the head packet at the new rate. The epoch bump
    // cancels the previously scheduled completion.
    ++epoch_;
    busy_ = false;
    start_service();
  }
}

void BottleneckLink::start_service() {
  if (queue_.empty()) return;
  busy_ = true;
  const uint64_t epoch = epoch_;
  const TimeNs tx = rate_.transmission_time(queue_.front().bytes);
  sim_.schedule_in(tx, [this, epoch] {
    if (epoch != epoch_) return;  // cancelled by set_rate
    finish_service();
  });
}

void BottleneckLink::finish_service() {
  Packet pkt = queue_.front();
  queue_.pop_front();
  queued_bytes_ -= pkt.bytes;
  busy_ = false;
  ++delivered_packets_;
  if (TraceRecorder* tr = sim_.tracer()) {
    tr->record('L', sim_.now(), pkt.flow, pkt.seq, pkt.bytes);
  }
  next_.handle(pkt);
  if (!queue_.empty()) start_service();
}

}  // namespace ccstarve
