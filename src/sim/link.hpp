// Bottleneck and delay elements of the paper's §3 network model:
//
//   * BottleneckLink — byte-accurate FIFO drop-tail queue drained at a
//     constant (but settable, for the §6.5 strong model) rate. Supports
//     prefilling with dummy bytes to establish an initial queueing delay,
//     which the Theorem 1 construction needs to set d*(0).
//   * PropagationDelay — fixed delay Rm portion of the path.
//   * DelayServerLink — FIFO element that imposes an arbitrary caller-chosen
//     queueing-delay trajectory; this is the §6.5 "strong model" adversary,
//     which may emulate any variable-rate link.
//
// Downstream edges are PacketSinks bound at construction (see
// sim/packet.hpp): constructors accept any handler type and capture its
// concrete static type, and the per-packet handle() bodies live here in the
// header so the Link→Jitter→Receiver chain inlines at the wiring site.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <limits>

#include "sim/aqm.hpp"
#include "sim/check_probe.hpp"
#include "sim/flight_probe.hpp"
#include "sim/obs_probe.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "sim/snapshot.hpp"
#include "util/rate.hpp"
#include "util/series.hpp"
#include "util/time.hpp"

namespace ccstarve {

class BottleneckLink final : public PacketHandler {
 public:
  struct Config {
    Rate rate = Rate::mbps(10);
    // Drop-tail capacity. Defaults to effectively infinite, matching the
    // paper's ideal path ("a bottleneck queue large enough to never
    // overflow").
    uint64_t buffer_bytes = std::numeric_limits<uint64_t>::max() / 2;
  };

  template <typename Next>
  BottleneckLink(Simulator& sim, const Config& config, Next& next)
      : sim_(sim),
        rate_(config.rate),
        buffer_bytes_(config.buffer_bytes),
        next_(as_sink(next)) {}

  void handle(Packet pkt) override {
    if (queued_bytes_ + pkt.bytes > buffer_bytes_) {
      ++drops_;
      if (TraceRecorder* tr = sim_.tracer()) {
        tr->record('D', sim_.now(), pkt.flow, pkt.seq, pkt.is_dummy ? 1 : 0);
      }
      if (CheckProbe* ck = sim_.checker()) ck->on_link_drop(sim_.now(), pkt);
      if (ObsProbe* ob = sim_.telemetry()) ob->on_link_drop(sim_.now(), pkt);
      if (FlightProbe* fp = sim_.flight()) fp->link_drop(sim_.now(), pkt);
      if (drop_listener_) drop_listener_(pkt);
      return;
    }
    if (aqm_ && !pkt.is_dummy && !pkt.is_ack &&
        aqm_->should_mark(queued_bytes_)) {
      pkt.ecn_ce = true;
      ++ce_marks_;
    }
    queued_bytes_ += pkt.bytes;
    if (TraceRecorder* tr = sim_.tracer()) {
      tr->record('E', sim_.now(), pkt.flow, pkt.seq, queued_bytes_);
    }
    queue_.push_back(pkt);
    if (CheckProbe* ck = sim_.checker()) {
      ck->on_link_enqueue(sim_.now(), pkt, queued_bytes_);
    }
    if (ObsProbe* ob = sim_.telemetry()) {
      ob->on_link_enqueue(sim_.now(), pkt, queued_bytes_);
    }
    if (FlightProbe* fp = sim_.flight()) {
      fp->link_enqueue(sim_.now(), pkt, queued_bytes_);
    }
    if (!busy_) start_service();
  }

  // Installs an ECN marking discipline (install before traffic flows).
  void set_aqm(std::unique_ptr<AqmPolicy> aqm) { aqm_ = std::move(aqm); }
  uint64_t ce_marks() const { return ce_marks_; }

  // Inserts `bytes` of dummy traffic ahead of everything else; they are
  // served normally and discarded by the demultiplexer.
  void prefill(uint64_t bytes);

  // Changes the drain rate; affects packets whose service starts afterwards.
  void set_rate(Rate r);
  Rate rate() const { return rate_; }

  uint64_t queued_bytes() const { return queued_bytes_; }
  // Backlog expressed as time-to-drain at the current rate.
  TimeNs queueing_delay() const { return rate_.transmission_time(queued_bytes_); }

  // Attach-time sync for the invariant checker (src/check/invariants.hpp):
  // a checker installed mid-run seeds its queue model from the live state.
  const std::deque<Packet>& queue() const { return queue_; }
  bool busy() const { return busy_; }
  TimeNs service_at() const { return service_at_; }
  uint64_t buffer_bytes() const { return buffer_bytes_; }

  uint64_t drops() const { return drops_; }
  uint64_t delivered_packets() const { return delivered_packets_; }

  // Optional observer invoked when a packet is dropped at enqueue.
  void set_drop_listener(std::function<void(const Packet&)> fn) {
    drop_listener_ = std::move(fn);
  }

  // --- snapshot/fork hooks (sim/snapshot.hpp) ---

  struct State {
    Rate rate = Rate::zero();
    std::deque<Packet> queue;
    uint64_t queued_bytes = 0;
    bool busy = false;
    uint64_t drops = 0;
    uint64_t delivered_packets = 0;
    std::unique_ptr<AqmPolicy> aqm;
    uint64_t ce_marks = 0;
    uint64_t epoch = 0;
    TimeNs service_at = TimeNs::zero();
  };

  State capture(std::vector<PendingEvent>* events) const;
  void restore(const State& st);
  // Re-schedules the head-of-line completion captured at snapshot time.
  void restore_service(const PendingEvent& e);

 private:
  void start_service();
  void finish_service();

  Simulator& sim_;
  Rate rate_;
  uint64_t buffer_bytes_;
  PacketSink next_;
  std::deque<Packet> queue_;
  uint64_t queued_bytes_ = 0;
  bool busy_ = false;
  uint64_t drops_ = 0;
  uint64_t delivered_packets_ = 0;
  std::unique_ptr<AqmPolicy> aqm_;
  uint64_t ce_marks_ = 0;
  uint64_t epoch_ = 0;  // invalidates in-flight service events after set_rate
  // When busy_, the pending completion of the head packet (the snapshot
  // captures this instead of the scheduled closure).
  TimeNs service_at_ = TimeNs::zero();
  uint64_t service_seq_ = 0;
  std::function<void(const Packet&)> drop_listener_;
};

class PropagationDelay final : public PacketHandler {
 public:
  template <typename Next>
  PropagationDelay(Simulator& sim, TimeNs delay, Next& next)
      : sim_(sim), delay_(delay), next_(as_sink(next)) {}

  void handle(Packet pkt) override {
    schedule_release(sim_.now() + delay_, pkt);
  }

  TimeNs delay() const { return delay_; }

  // --- snapshot/fork hooks (sim/snapshot.hpp) ---

  void capture(std::vector<PendingEvent>* events, uint32_t flow) const {
    capture_in_flight(inflight_, PendingEvent::Kind::kPropDeliver, flow,
                      events);
  }
  void restore_in_flight(const PendingEvent& e) {
    schedule_release(e.at, e.pkt);
  }

 private:
  void schedule_release(TimeNs at, const Packet& pkt) {
    InFlightPacket rec;
    rec.at = at;
    rec.pkt = pkt;
    rec.seq = sim_.schedule_at(at, [this, pkt] {
      inflight_.pop_front();
      next_.handle(pkt);
    });
    inflight_.push_back(rec);
  }

  Simulator& sim_;
  TimeNs delay_;
  PacketSink next_;
  InFlightQueue inflight_;
};

// FIFO element whose per-packet holding time is a caller-supplied function of
// arrival time. Releases never reorder. This gives the adversary direct
// control of the queueing-delay pattern (Theorem 3 notes a variable-rate link
// "can create any queueing delay pattern it likes").
class DelayServerLink final : public PacketHandler {
 public:
  using DelayFn = std::function<TimeNs(TimeNs arrival)>;

  template <typename Next>
  DelayServerLink(Simulator& sim, DelayFn fn, Next& next)
      : sim_(sim), fn_(std::move(fn)), next_(as_sink(next)) {}

  void handle(Packet pkt) override {
    const TimeNs arrival = sim_.now();
    TimeNs release = arrival + ccstarve::max(TimeNs::zero(), fn_(arrival));
    release = ccstarve::max(release, last_release_);
    last_release_ = release;
    schedule_release(release, pkt);
  }

  // --- snapshot/fork hooks (sim/snapshot.hpp) ---

  struct State {
    TimeNs last_release = TimeNs::zero();
  };

  State capture(std::vector<PendingEvent>* events) const {
    capture_in_flight(inflight_, PendingEvent::Kind::kDelayServerDeliver, 0,
                      events);
    return State{last_release_};
  }
  void restore(const State& st) { last_release_ = st.last_release; }
  void restore_in_flight(const PendingEvent& e) {
    schedule_release(e.at, e.pkt);
  }

 private:
  void schedule_release(TimeNs release, const Packet& pkt) {
    InFlightPacket rec;
    rec.at = release;
    rec.pkt = pkt;
    rec.seq = sim_.schedule_at(release, [this, pkt] {
      inflight_.pop_front();
      next_.handle(pkt);
    });
    inflight_.push_back(rec);
  }

  Simulator& sim_;
  DelayFn fn_;
  PacketSink next_;
  TimeNs last_release_ = TimeNs::zero();
  InFlightQueue inflight_;
};

}  // namespace ccstarve
