// Bernoulli packet-loss gate (the §5.4 PCC Allegro experiment injects 2%
// random loss on one flow's path).
#pragma once

#include <cstdint>

#include "sim/packet.hpp"
#include "util/rng.hpp"

namespace ccstarve {

class LossGate final : public PacketHandler {
 public:
  template <typename Next>
  LossGate(double loss_rate, uint64_t seed, Next& next)
      : loss_rate_(loss_rate), rng_(seed), next_(as_sink(next)) {}

  void handle(Packet pkt) override {
    if (!pkt.is_dummy && loss_rate_ > 0.0 && rng_.bernoulli(loss_rate_)) {
      ++dropped_;
      return;
    }
    next_.handle(pkt);
  }

  uint64_t dropped() const { return dropped_; }

  // --- snapshot/fork hooks (sim/snapshot.hpp) ---

  struct State {
    Rng rng;
    uint64_t dropped = 0;
  };

  State capture() const { return State{rng_, dropped_}; }
  void restore(const State& st) {
    rng_ = st.rng;
    dropped_ = st.dropped;
  }

 private:
  double loss_rate_;
  Rng rng_;
  PacketSink next_;
  uint64_t dropped_ = 0;
};

}  // namespace ccstarve
