// Telemetry probe: the third observer seam of the simulator, next to the
// golden-trace recorder (sim/trace_probe.hpp) and the invariant checker
// (sim/check_probe.hpp).
//
// An ObsProbe installed on a Simulator receives the packet-level signals a
// measurement layer needs — sends, ACK samples with the CCA outputs, link
// enqueue/drop/deliver, jitter-box admissions — through the same pattern as
// the other two probes: `if (ObsProbe* ob = sim.telemetry()) ob->on_...()`.
// Detached cost is one untaken branch per hook; attached cost is a virtual
// call into the concrete FlowTelemetry (src/obs/telemetry.hpp).
//
// Contract: an ObsProbe is strictly read-only. It never schedules events,
// never mutates packets, and never feeds anything back into the components
// it observes, so attaching one leaves trace digests byte-identical (pinned
// by tests/obs_test.cpp against every committed golden digest).
#pragma once

#include "sim/packet.hpp"
#include "util/rate.hpp"
#include "util/time.hpp"

namespace ccstarve {

class ObsProbe {
 public:
  virtual ~ObsProbe() = default;

  // --- endpoints ---
  virtual void on_segment_sent(TimeNs /*now*/, const Packet& /*pkt*/) {}
  // One call per ACK the sender processed: the raw RTT sample, the CCA
  // outputs it will act on next, and the cumulative delivered byte count —
  // the delta of which is the per-flow throughput signal.
  virtual void on_ack_sample(TimeNs /*now*/, uint32_t /*flow*/,
                             TimeNs /*rtt*/, uint64_t /*cwnd_bytes*/,
                             Rate /*pacing*/, uint64_t /*delivered_bytes*/) {}
  // Send-gate transition: fired when the gate blocking the flow's next send
  // flips into or out of SendGate::kRwnd (receiver-window-limited), so the
  // telemetry layer can integrate rwnd-limited time fractions.
  virtual void on_send_gate(TimeNs /*now*/, uint32_t /*flow*/,
                            SendGate /*gate*/) {}

  // --- bottleneck (BottleneckLink and TraceDrivenLink) ---
  // `queued_after` includes the packet just admitted.
  virtual void on_link_enqueue(TimeNs /*now*/, const Packet& /*pkt*/,
                               uint64_t /*queued_after*/) {}
  virtual void on_link_drop(TimeNs /*now*/, const Packet& /*pkt*/) {}
  virtual void on_link_deliver(TimeNs /*now*/, const Packet& /*pkt*/,
                               uint64_t /*queued_after*/) {}
  virtual void on_link_rate_change(TimeNs /*now*/, Rate /*rate*/) {}

  // --- jitter boxes ---
  // Admission: the box decided (after clamping) to hold `pkt` until
  // `release`; `budget` is the box's configured D. `added` = release -
  // arrival is the jitter-budget consumption this packet observed.
  virtual void on_jitter_admit(TimeNs /*arrival*/, TimeNs /*release*/,
                               const Packet& /*pkt*/, bool /*ack_path*/,
                               TimeNs /*budget*/) {}
};

}  // namespace ccstarve
