// The single packet type that flows through every emulator component.
//
// Data segments and ACKs share one struct so queues, delay elements and
// jitter boxes can be reused on either path; ACK-only fields are prefixed
// `ack_`.
#pragma once

#include <cstdint>
#include <type_traits>

#include "util/rate.hpp"
#include "util/time.hpp"

namespace ccstarve {

// Advertised-window value meaning "no receiver limit". Large enough that
// cum + wnd never overflows for any reachable sequence number, small enough
// that adding a buffer size to it cannot wrap either.
inline constexpr uint64_t kInfiniteWnd = uint64_t{1} << 62;

// Which gate is currently blocking a sender's next segment; reported to the
// telemetry probe so receiver-limited time can be told apart from
// congestion-limited time.
enum class SendGate : uint8_t {
  kNone = 0,   // nothing blocked (sending, or flow not started)
  kCwnd = 1,   // congestion window full
  kRwnd = 2,   // advertised receive window exhausted
  kPacing = 3  // pacing inter-send spacing
};

struct Packet {
  uint32_t flow = 0;
  // Data: sequence number of the first payload byte. Segments are always
  // MSS-sized, so seq advances in multiples of kMss.
  uint64_t seq = 0;
  // Wire size; determines queue occupancy and transmission time.
  uint32_t bytes = kMss;
  bool is_ack = false;
  bool is_retransmit = false;
  // Queue-prefill filler used to set an initial queueing delay (Theorem 1
  // construction); occupies the bottleneck but is discarded downstream.
  bool is_dummy = false;
  // Zero-window persist probe: a header-sized segment sent while the
  // advertised window is closed, solely to elicit a window-bearing ACK. Not
  // tracked in the scoreboard and invisible to the CCA.
  bool is_probe = false;
  // When the corresponding data segment left the sender (echoed on ACKs so
  // the sender can take an RTT sample).
  TimeNs data_sent_at = TimeNs::zero();
  // Congestion Experienced: set by an ECN-marking bottleneck (sim/aqm.hpp).
  bool ecn_ce = false;
  // ACKs: echo of CE marks seen by the receiver (ECN-Echo).
  bool ack_ece = false;

  // --- ACK fields ---
  // Cumulative bytes received in order at the receiver.
  uint64_t ack_cum = 0;
  // Sequence number of the data segment that triggered this ACK (a 1-segment
  // SACK, enough for fast retransmit in a fixed-MSS world).
  uint64_t ack_seq = 0;
  // Number of data segments this ACK covers (>1 with delayed ACKs).
  uint32_t ack_pkts = 1;
  // Advertised receive window: bytes beyond ack_cum the receiver can accept.
  // kInfiniteWnd (the default) means flow control is off for this flow.
  uint64_t ack_wnd = kInfiniteWnd;
  // Pure window update (persist-probe reply, window-update wakeup, or the
  // reply to out-of-window data): carries ack_cum/ack_wnd but acknowledges
  // no new data, so the sender must skip RTT/dupack/CCA processing.
  bool ack_wnd_only = false;
};

// Anything that accepts packets at the current simulation time.
class PacketHandler {
 public:
  virtual ~PacketHandler() = default;
  virtual void handle(Packet pkt) = 0;
};

// Statically-bound packet destination: the fast-path alternative to a
// PacketHandler& edge.
//
// PacketSink::of<T>(target) captures the *concrete* type of its target in a
// specialized thunk, so a hop through a sink is one indirect call into a
// function whose body is T::handle — no vtable load, and (because the
// wiring in scenario.cpp instantiates the thunks next to the inline handler
// bodies) the compiler can flatten the whole Link→Jitter→Receiver chain.
// Binding a plain PacketHandler& still works; the thunk then performs the
// virtual call, so generic composition in tests loses nothing.
class PacketSink {
 public:
  PacketSink() = default;

  template <typename T>
  static PacketSink of(T& target) {
    return PacketSink(&target, [](void* ctx, const Packet& pkt) {
      static_cast<T*>(ctx)->handle(pkt);
    });
  }

  void handle(const Packet& pkt) const { fn_(ctx_, pkt); }
  explicit operator bool() const { return fn_ != nullptr; }

 private:
  using Fn = void (*)(void*, const Packet&);
  PacketSink(void* ctx, Fn fn) : ctx_(ctx), fn_(fn) {}

  void* ctx_ = nullptr;
  Fn fn_ = nullptr;
};

// Accepts either a ready-made PacketSink or any object with a handle()
// member; used by path-element constructors so existing call sites that
// pass concrete handlers (or PacketHandler&) keep compiling while the sink
// records the most-derived static type it was given.
template <typename T>
PacketSink as_sink(T& target) {
  if constexpr (std::is_same_v<std::remove_cv_t<T>, PacketSink>) {
    return target;
  } else {
    return PacketSink::of(target);
  }
}

// Terminal sink that discards packets (used for dummies and in tests).
class NullHandler final : public PacketHandler {
 public:
  void handle(Packet) override {}
};

}  // namespace ccstarve
