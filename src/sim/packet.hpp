// The single packet type that flows through every emulator component.
//
// Data segments and ACKs share one struct so queues, delay elements and
// jitter boxes can be reused on either path; ACK-only fields are prefixed
// `ack_`.
#pragma once

#include <cstdint>

#include "util/rate.hpp"
#include "util/time.hpp"

namespace ccstarve {

struct Packet {
  uint32_t flow = 0;
  // Data: sequence number of the first payload byte. Segments are always
  // MSS-sized, so seq advances in multiples of kMss.
  uint64_t seq = 0;
  // Wire size; determines queue occupancy and transmission time.
  uint32_t bytes = kMss;
  bool is_ack = false;
  bool is_retransmit = false;
  // Queue-prefill filler used to set an initial queueing delay (Theorem 1
  // construction); occupies the bottleneck but is discarded downstream.
  bool is_dummy = false;
  // When the corresponding data segment left the sender (echoed on ACKs so
  // the sender can take an RTT sample).
  TimeNs data_sent_at = TimeNs::zero();
  // Congestion Experienced: set by an ECN-marking bottleneck (sim/aqm.hpp).
  bool ecn_ce = false;
  // ACKs: echo of CE marks seen by the receiver (ECN-Echo).
  bool ack_ece = false;

  // --- ACK fields ---
  // Cumulative bytes received in order at the receiver.
  uint64_t ack_cum = 0;
  // Sequence number of the data segment that triggered this ACK (a 1-segment
  // SACK, enough for fast retransmit in a fixed-MSS world).
  uint64_t ack_seq = 0;
  // Number of data segments this ACK covers (>1 with delayed ACKs).
  uint32_t ack_pkts = 1;
};

// Anything that accepts packets at the current simulation time.
class PacketHandler {
 public:
  virtual ~PacketHandler() = default;
  virtual void handle(Packet pkt) = 0;
};

// Terminal sink that discards packets (used for dummies and in tests).
class NullHandler final : public PacketHandler {
 public:
  void handle(Packet) override {}
};

}  // namespace ccstarve
