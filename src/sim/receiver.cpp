#include "sim/receiver.hpp"

namespace ccstarve {

void Receiver::arm_timer() {
  timer_armed_ = true;
  const uint64_t epoch = ++timer_epoch_;
  sim_.schedule_in(policy_.delayed_ack_timeout, [this, epoch] {
    if (epoch != timer_epoch_ || unacked_ == 0) return;
    emit_ack(last_data_);
  });
}

void Receiver::emit_ack(const Packet& trigger) {
  Packet ack;
  ack.flow = trigger.flow;
  ack.is_ack = true;
  ack.bytes = 40;  // header-only; the return path has no bottleneck
  ack.data_sent_at = trigger.data_sent_at;
  ack.ack_cum = cum_;
  ack.ack_seq = trigger.seq;
  ack.ack_pkts = unacked_ == 0 ? 1 : unacked_;
  ack.ack_ece = ece_pending_;
  ece_pending_ = false;
  unacked_ = 0;
  timer_armed_ = false;
  ++timer_epoch_;
  if (TraceRecorder* tr = sim_.tracer()) {
    tr->record('A', sim_.now(), ack.flow, ack.ack_cum,
               ack.ack_seq * 2 + (ack.ack_ece ? 1 : 0));
  }
  ack_path_.handle(ack);
}

}  // namespace ccstarve
