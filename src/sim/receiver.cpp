#include "sim/receiver.hpp"

namespace ccstarve {

Receiver::~Receiver() {
  if (Event* slot = timer_slot_ ? timer_slot_ : owned_slot_.get()) {
    sim_.disarm(slot);
  }
  if (Event* slot = wnd_slot_ ? wnd_slot_ : owned_wnd_slot_.get()) {
    sim_.disarm(slot);
  }
}

Event* Receiver::timer_slot() {
  if (timer_slot_ == nullptr) {
    owned_slot_ = std::make_unique<Event>();
    timer_slot_ = owned_slot_.get();
  }
  if (!timer_slot_->fn) {
    timer_slot_->fn.emplace([this] { on_timer_fire(); });
  }
  return timer_slot_;
}

void Receiver::arm_timer() {
  timer_armed_ = true;
  ++timer_epoch_;  // kept for State compatibility (epochs once keyed events)
  timer_at_ = sim_.now() + policy_.delayed_ack_timeout;
  Event* slot = timer_slot();
  if ((slot->flags & Event::kQueued) == 0) {
    timer_seq_ = sim_.arm(slot, timer_at_);
  } else {
    // A cancelled earlier-epoch slot is still queued (at an earlier time);
    // it will fire, see the live deadline, and re-arm itself.
    timer_seq_ = slot->seq;
  }
}

void Receiver::on_timer_fire() {
  if (!timer_armed_) return;  // cancelled (the emitting ACK raced the slot)
  if (sim_.now() < timer_at_) {
    // Stale early fire: the timer was re-armed with a later deadline after
    // this slot was queued. Restore coverage at the live deadline.
    timer_seq_ = sim_.arm(timer_slot(), timer_at_);
    return;
  }
  if (unacked_ == 0) return;
  if (FlightProbe* fp = sim_.flight()) {
    fp->delack_fire(sim_.now(), last_data_.flow);
  }
  emit_ack(last_data_);
}

Event* Receiver::wnd_slot() {
  if (wnd_slot_ == nullptr) {
    owned_wnd_slot_ = std::make_unique<Event>();
    wnd_slot_ = owned_wnd_slot_.get();
  }
  if (!wnd_slot_->fn) {
    wnd_slot_->fn.emplace([this] { on_wnd_timer_fire(); });
  }
  return wnd_slot_;
}

void Receiver::advance_drain() {
  if (!recv_.enabled()) return;
  if (drain_interval_ns_ == 0) {  // infinite drain: consume instantly
    app_consumed_ = cum_;
    return;
  }
  const uint64_t k =
      static_cast<uint64_t>(sim_.now().ns()) /
      static_cast<uint64_t>(drain_interval_ns_);
  if (k <= last_read_idx_) return;
  const uint64_t backlog = cum_ - app_consumed_;
  const uint64_t reads = k - last_read_idx_;
  // Each read consumes up to a burst; saturate instead of multiplying two
  // potentially huge factors.
  const uint64_t consumed =
      reads >= backlog / recv_.drain_burst_bytes + 1
          ? backlog
          : std::min<uint64_t>(backlog, reads * recv_.drain_burst_bytes);
  app_consumed_ += consumed;
  last_read_idx_ = k;
}

void Receiver::maybe_arm_wnd_timer() {
  if (!recv_.enabled() || !recv_.window_updates || drain_interval_ns_ == 0) {
    return;
  }
  if (wnd_armed_) return;
  const uint64_t wnd = advertised_wnd();
  if (wnd >= wnd_threshold_ || cum_ == app_consumed_) return;
  // Wake at the read that lifts the advertised window back to the
  // threshold. needed < backlog always (threshold <= buffer/2), so the
  // drain can actually get there.
  const uint64_t needed = wnd_threshold_ - wnd;
  const uint64_t reads =
      (needed + recv_.drain_burst_bytes - 1) / recv_.drain_burst_bytes;
  wnd_armed_ = true;
  wnd_at_ = TimeNs(static_cast<int64_t>(last_read_idx_ + reads) *
                   drain_interval_ns_);
  Event* slot = wnd_slot();
  if ((slot->flags & Event::kQueued) == 0) {
    wnd_seq_ = sim_.arm(slot, wnd_at_);
  } else {
    wnd_seq_ = slot->seq;
  }
}

void Receiver::on_wnd_timer_fire() {
  if (!wnd_armed_) return;
  if (sim_.now() < wnd_at_) {
    wnd_seq_ = sim_.arm(wnd_slot(), wnd_at_);
    return;
  }
  wnd_armed_ = false;
  advance_drain();
  if (advertised_wnd() >= wnd_threshold_) {
    emit_wnd_ack(last_data_);
  } else {
    maybe_arm_wnd_timer();
  }
}

void Receiver::on_probe(const Packet& pkt) {
  ++probes_received_;
  advance_drain();
  if (TraceRecorder* tr = sim_.tracer()) {
    tr->record('P', sim_.now(), pkt.flow, pkt.seq, cum_);
  }
  if (CheckProbe* ck = sim_.checker()) {
    ck->on_receiver_data(sim_.now(), pkt, cum_);
  }
  emit_wnd_ack(pkt);
}

void Receiver::emit_wnd_ack(const Packet& trigger) {
  advance_drain();
  Packet ack;
  ack.flow = trigger.flow;
  ack.is_ack = true;
  ack.ack_wnd_only = true;
  ack.bytes = 40;
  ack.data_sent_at = trigger.data_sent_at;
  ack.ack_cum = cum_;
  ack.ack_seq = trigger.seq;
  ack.ack_pkts = 0;  // acknowledges no new data
  ack.ack_wnd = advertised_wnd();
  if (TraceRecorder* tr = sim_.tracer()) {
    tr->record('W', sim_.now(), ack.flow, ack.ack_cum, ack.ack_wnd);
  }
  if (CheckProbe* ck = sim_.checker()) ck->on_ack_emitted(sim_.now(), ack);
  maybe_arm_wnd_timer();
  ack_path_.handle(ack);
}

Receiver::State Receiver::capture(std::vector<PendingEvent>* events,
                                  uint32_t flow) const {
  State st;
  st.ooo = ooo_;
  st.cum = cum_;
  st.packets = packets_;
  st.unacked = unacked_;
  st.last_data = last_data_;
  st.timer_epoch = timer_epoch_;
  st.timer_armed = timer_armed_;
  st.ece_pending = ece_pending_;
  st.timer_at = timer_at_;
  st.app_consumed = app_consumed_;
  st.last_read_idx = last_read_idx_;
  st.probes_received = probes_received_;
  st.window_drops = window_drops_;
  st.wnd_armed = wnd_armed_;
  st.wnd_at = wnd_at_;
  if (wnd_slot_ != nullptr && (wnd_slot_->flags & Event::kQueued) != 0) {
    PendingEvent e;
    e.at = wnd_slot_->at;
    e.seq = wnd_slot_->seq;
    e.kind = PendingEvent::Kind::kReceiverWndTimer;
    e.flow = flow;
    events->push_back(e);
  }
  if (timer_slot_ != nullptr && (timer_slot_->flags & Event::kQueued) != 0) {
    // Capture the slot at its ACTUAL queued time, which may be earlier than
    // the live deadline (a reused earlier-epoch slot) or stale after the
    // emitting ACK cancelled it. The fork must replay the early/stale fire
    // and its re-arm so it consumes the same insertion seqs as the parent's
    // own continuation; the live deadline travels in State (timer_at).
    PendingEvent e;
    e.at = timer_slot_->at;
    e.seq = timer_slot_->seq;
    e.kind = PendingEvent::Kind::kReceiverAckTimer;
    e.flow = flow;
    events->push_back(e);
  }
  return st;
}

void Receiver::restore(const State& st) {
  ooo_ = st.ooo;
  cum_ = st.cum;
  packets_ = st.packets;
  unacked_ = st.unacked;
  last_data_ = st.last_data;
  timer_epoch_ = st.timer_epoch;
  timer_armed_ = st.timer_armed;
  ece_pending_ = st.ece_pending;
  timer_at_ = st.timer_at;
  app_consumed_ = st.app_consumed;
  last_read_idx_ = st.last_read_idx;
  probes_received_ = st.probes_received;
  window_drops_ = st.window_drops;
  wnd_armed_ = st.wnd_armed;
  wnd_at_ = st.wnd_at;
}

void Receiver::restore_timer(const PendingEvent& e) {
  // restore() already set timer_armed_/timer_at_ (the live deadline); e.at
  // is the slot's queued time, which may be earlier or stale-cancelled.
  timer_seq_ = sim_.arm(timer_slot(), e.at);
}

void Receiver::restore_wnd_timer(const PendingEvent& e) {
  wnd_seq_ = sim_.arm(wnd_slot(), e.at);
}

void Receiver::emit_ack(const Packet& trigger) {
  advance_drain();
  Packet ack;
  ack.flow = trigger.flow;
  ack.is_ack = true;
  ack.bytes = 40;  // header-only; the return path has no bottleneck
  ack.data_sent_at = trigger.data_sent_at;
  ack.ack_cum = cum_;
  ack.ack_seq = trigger.seq;
  ack.ack_pkts = unacked_ == 0 ? 1 : unacked_;
  ack.ack_ece = ece_pending_;
  ack.ack_wnd = advertised_wnd();
  ece_pending_ = false;
  unacked_ = 0;
  timer_armed_ = false;
  ++timer_epoch_;
  if (TraceRecorder* tr = sim_.tracer()) {
    tr->record('A', sim_.now(), ack.flow, ack.ack_cum,
               ack.ack_seq * 2 + (ack.ack_ece ? 1 : 0));
  }
  if (CheckProbe* ck = sim_.checker()) ck->on_ack_emitted(sim_.now(), ack);
  maybe_arm_wnd_timer();
  ack_path_.handle(ack);
}

}  // namespace ccstarve
