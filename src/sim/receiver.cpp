#include "sim/receiver.hpp"

namespace ccstarve {

void Receiver::arm_timer() {
  timer_armed_ = true;
  const uint64_t epoch = ++timer_epoch_;
  timer_at_ = sim_.now() + policy_.delayed_ack_timeout;
  timer_seq_ = sim_.schedule_at(timer_at_, [this, epoch] {
    if (epoch != timer_epoch_ || unacked_ == 0) return;
    emit_ack(last_data_);
  });
}

Receiver::State Receiver::capture(std::vector<PendingEvent>* events,
                                  uint32_t flow) const {
  State st;
  st.ooo = ooo_;
  st.cum = cum_;
  st.packets = packets_;
  st.unacked = unacked_;
  st.last_data = last_data_;
  st.timer_epoch = timer_epoch_;
  st.timer_armed = timer_armed_;
  st.ece_pending = ece_pending_;
  st.timer_at = timer_at_;
  if (timer_armed_) {
    // Only the live timer matters; timers from earlier epochs fire as
    // no-ops in a cold run and are skippable on restore.
    PendingEvent e;
    e.at = timer_at_;
    e.seq = timer_seq_;
    e.kind = PendingEvent::Kind::kReceiverAckTimer;
    e.flow = flow;
    events->push_back(e);
  }
  return st;
}

void Receiver::restore(const State& st) {
  ooo_ = st.ooo;
  cum_ = st.cum;
  packets_ = st.packets;
  unacked_ = st.unacked;
  last_data_ = st.last_data;
  timer_epoch_ = st.timer_epoch;
  timer_armed_ = st.timer_armed;
  ece_pending_ = st.ece_pending;
  timer_at_ = st.timer_at;
}

void Receiver::restore_timer(const PendingEvent& e) {
  const uint64_t epoch = timer_epoch_;
  timer_at_ = e.at;
  timer_seq_ = sim_.schedule_at(e.at, [this, epoch] {
    if (epoch != timer_epoch_ || unacked_ == 0) return;
    emit_ack(last_data_);
  });
}

void Receiver::emit_ack(const Packet& trigger) {
  Packet ack;
  ack.flow = trigger.flow;
  ack.is_ack = true;
  ack.bytes = 40;  // header-only; the return path has no bottleneck
  ack.data_sent_at = trigger.data_sent_at;
  ack.ack_cum = cum_;
  ack.ack_seq = trigger.seq;
  ack.ack_pkts = unacked_ == 0 ? 1 : unacked_;
  ack.ack_ece = ece_pending_;
  ece_pending_ = false;
  unacked_ = 0;
  timer_armed_ = false;
  ++timer_epoch_;
  if (TraceRecorder* tr = sim_.tracer()) {
    tr->record('A', sim_.now(), ack.flow, ack.ack_cum,
               ack.ack_seq * 2 + (ack.ack_ece ? 1 : 0));
  }
  if (CheckProbe* ck = sim_.checker()) ck->on_ack_emitted(sim_.now(), ack);
  ack_path_.handle(ack);
}

}  // namespace ccstarve
