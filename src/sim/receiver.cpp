#include "sim/receiver.hpp"

namespace ccstarve {

Receiver::Receiver(Simulator& sim, const AckPolicy& policy,
                   PacketHandler& ack_path)
    : sim_(sim), policy_(policy), ack_path_(ack_path) {}

void Receiver::handle(Packet pkt) {
  if (pkt.is_dummy || pkt.is_ack) return;
  ++packets_;

  if (pkt.seq == cum_) {
    cum_ += pkt.bytes;
    // Absorb any previously buffered out-of-order segments that are now
    // contiguous.
    auto it = ooo_.begin();
    while (it != ooo_.end() && *it <= cum_) {
      if (*it == cum_) cum_ += kMss;
      it = ooo_.erase(it);
    }
  } else if (pkt.seq > cum_) {
    ooo_.insert(pkt.seq);
  }
  // pkt.seq < cum_: spurious retransmission, still ACKed below so the
  // sender's scoreboard converges.

  last_data_ = pkt;
  ece_pending_ |= pkt.ecn_ce;
  ++unacked_;

  const bool gap = pkt.seq != cum_ - pkt.bytes;  // did not advance in order
  if (gap || unacked_ >= policy_.ack_every) {
    // Out-of-order data triggers an immediate (duplicate) ACK, as TCP does;
    // in-order data respects the delayed-ACK policy.
    emit_ack(pkt);
  } else if (!timer_armed_) {
    arm_timer();
  }
}

void Receiver::arm_timer() {
  timer_armed_ = true;
  const uint64_t epoch = ++timer_epoch_;
  sim_.schedule_in(policy_.delayed_ack_timeout, [this, epoch] {
    if (epoch != timer_epoch_ || unacked_ == 0) return;
    emit_ack(last_data_);
  });
}

void Receiver::emit_ack(const Packet& trigger) {
  Packet ack;
  ack.flow = trigger.flow;
  ack.is_ack = true;
  ack.bytes = 40;  // header-only; the return path has no bottleneck
  ack.data_sent_at = trigger.data_sent_at;
  ack.ack_cum = cum_;
  ack.ack_seq = trigger.seq;
  ack.ack_pkts = unacked_ == 0 ? 1 : unacked_;
  ack.ack_ece = ece_pending_;
  ece_pending_ = false;
  unacked_ = 0;
  timer_armed_ = false;
  ++timer_epoch_;
  ack_path_.handle(ack);
}

}  // namespace ccstarve
