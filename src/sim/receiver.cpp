#include "sim/receiver.hpp"

namespace ccstarve {

Receiver::~Receiver() {
  if (Event* slot = timer_slot_ ? timer_slot_ : owned_slot_.get()) {
    sim_.disarm(slot);
  }
}

Event* Receiver::timer_slot() {
  if (timer_slot_ == nullptr) {
    owned_slot_ = std::make_unique<Event>();
    timer_slot_ = owned_slot_.get();
  }
  if (!timer_slot_->fn) {
    timer_slot_->fn.emplace([this] { on_timer_fire(); });
  }
  return timer_slot_;
}

void Receiver::arm_timer() {
  timer_armed_ = true;
  ++timer_epoch_;  // kept for State compatibility (epochs once keyed events)
  timer_at_ = sim_.now() + policy_.delayed_ack_timeout;
  Event* slot = timer_slot();
  if ((slot->flags & Event::kQueued) == 0) {
    timer_seq_ = sim_.arm(slot, timer_at_);
  } else {
    // A cancelled earlier-epoch slot is still queued (at an earlier time);
    // it will fire, see the live deadline, and re-arm itself.
    timer_seq_ = slot->seq;
  }
}

void Receiver::on_timer_fire() {
  if (!timer_armed_) return;  // cancelled (the emitting ACK raced the slot)
  if (sim_.now() < timer_at_) {
    // Stale early fire: the timer was re-armed with a later deadline after
    // this slot was queued. Restore coverage at the live deadline.
    timer_seq_ = sim_.arm(timer_slot(), timer_at_);
    return;
  }
  if (unacked_ == 0) return;
  emit_ack(last_data_);
}

Receiver::State Receiver::capture(std::vector<PendingEvent>* events,
                                  uint32_t flow) const {
  State st;
  st.ooo = ooo_;
  st.cum = cum_;
  st.packets = packets_;
  st.unacked = unacked_;
  st.last_data = last_data_;
  st.timer_epoch = timer_epoch_;
  st.timer_armed = timer_armed_;
  st.ece_pending = ece_pending_;
  st.timer_at = timer_at_;
  if (timer_slot_ != nullptr && (timer_slot_->flags & Event::kQueued) != 0) {
    // Capture the slot at its ACTUAL queued time, which may be earlier than
    // the live deadline (a reused earlier-epoch slot) or stale after the
    // emitting ACK cancelled it. The fork must replay the early/stale fire
    // and its re-arm so it consumes the same insertion seqs as the parent's
    // own continuation; the live deadline travels in State (timer_at).
    PendingEvent e;
    e.at = timer_slot_->at;
    e.seq = timer_slot_->seq;
    e.kind = PendingEvent::Kind::kReceiverAckTimer;
    e.flow = flow;
    events->push_back(e);
  }
  return st;
}

void Receiver::restore(const State& st) {
  ooo_ = st.ooo;
  cum_ = st.cum;
  packets_ = st.packets;
  unacked_ = st.unacked;
  last_data_ = st.last_data;
  timer_epoch_ = st.timer_epoch;
  timer_armed_ = st.timer_armed;
  ece_pending_ = st.ece_pending;
  timer_at_ = st.timer_at;
}

void Receiver::restore_timer(const PendingEvent& e) {
  // restore() already set timer_armed_/timer_at_ (the live deadline); e.at
  // is the slot's queued time, which may be earlier or stale-cancelled.
  timer_seq_ = sim_.arm(timer_slot(), e.at);
}

void Receiver::emit_ack(const Packet& trigger) {
  Packet ack;
  ack.flow = trigger.flow;
  ack.is_ack = true;
  ack.bytes = 40;  // header-only; the return path has no bottleneck
  ack.data_sent_at = trigger.data_sent_at;
  ack.ack_cum = cum_;
  ack.ack_seq = trigger.seq;
  ack.ack_pkts = unacked_ == 0 ? 1 : unacked_;
  ack.ack_ece = ece_pending_;
  ece_pending_ = false;
  unacked_ = 0;
  timer_armed_ = false;
  ++timer_epoch_;
  if (TraceRecorder* tr = sim_.tracer()) {
    tr->record('A', sim_.now(), ack.flow, ack.ack_cum,
               ack.ack_seq * 2 + (ack.ack_ece ? 1 : 0));
  }
  if (CheckProbe* ck = sim_.checker()) ck->on_ack_emitted(sim_.now(), ack);
  ack_path_.handle(ack);
}

}  // namespace ccstarve
