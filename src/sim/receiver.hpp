// Receiver endpoint: tracks in-order delivery, generates cumulative ACKs
// (optionally delayed, as in the Fig. 7 experiment where one receiver ACKs
// only every 4th segment) and echoes timestamps for RTT measurement.
#pragma once

#include <cstdint>
#include <memory>
#include <set>

#include "sim/check_probe.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "sim/snapshot.hpp"
#include "util/time.hpp"

namespace ccstarve {

struct AckPolicy {
  // Send an ACK after this many unacknowledged data segments.
  uint32_t ack_every = 1;
  // ...or after this long since the first unacknowledged segment arrived,
  // whichever comes first (classic delayed-ACK timer).
  TimeNs delayed_ack_timeout = TimeNs::millis(40);
};

class Receiver final : public PacketHandler {
 public:
  template <typename AckPath>
  Receiver(Simulator& sim, const AckPolicy& policy, AckPath& ack_path)
      : sim_(sim), policy_(policy), ack_path_(as_sink(ack_path)) {}
  ~Receiver() override;

  // Wires the delayed-ACK timer to a FlowTable-owned Event slot (see
  // sim/flow_table.hpp). Must be called before any data arrives; without a
  // slot the receiver lazily allocates a private one.
  void set_timer_slot(Event* slot) { timer_slot_ = slot; }

  void handle(Packet pkt) override {
    if (pkt.is_dummy || pkt.is_ack) return;
    ++packets_;
    if (TraceRecorder* tr = sim_.tracer()) {
      tr->record('R', sim_.now(), pkt.flow, pkt.seq, cum_);
    }

    if (pkt.seq == cum_) {
      cum_ += pkt.bytes;
      // Absorb any previously buffered out-of-order segments that are now
      // contiguous.
      auto it = ooo_.begin();
      while (it != ooo_.end() && *it <= cum_) {
        if (*it == cum_) cum_ += kMss;
        it = ooo_.erase(it);
      }
    } else if (pkt.seq > cum_) {
      ooo_.insert(pkt.seq);
    }
    // pkt.seq < cum_: spurious retransmission, still ACKed below so the
    // sender's scoreboard converges.

    if (CheckProbe* ck = sim_.checker()) {
      ck->on_receiver_data(sim_.now(), pkt, cum_);
    }

    last_data_ = pkt;
    ece_pending_ |= pkt.ecn_ce;
    ++unacked_;

    const bool gap = pkt.seq != cum_ - pkt.bytes;  // did not advance in order
    if (gap || unacked_ >= policy_.ack_every) {
      // Out-of-order data triggers an immediate (duplicate) ACK, as TCP
      // does; in-order data respects the delayed-ACK policy.
      emit_ack(pkt);
    } else if (!timer_armed_) {
      arm_timer();
    }
  }

  uint64_t cum_received() const { return cum_; }
  uint64_t packets_received() const { return packets_; }

  // --- snapshot/fork hooks (sim/snapshot.hpp) ---

  struct State {
    std::set<uint64_t> ooo;
    uint64_t cum = 0;
    uint64_t packets = 0;
    uint32_t unacked = 0;
    Packet last_data;
    uint64_t timer_epoch = 0;
    bool timer_armed = false;
    bool ece_pending = false;
    TimeNs timer_at = TimeNs::zero();
  };

  State capture(std::vector<PendingEvent>* events, uint32_t flow) const;
  void restore(const State& st);
  // Re-arms the live delayed-ACK timer captured at snapshot time.
  void restore_timer(const PendingEvent& e);

 private:
  void emit_ack(const Packet& trigger);
  void arm_timer();
  void on_timer_fire();
  Event* timer_slot();

  Simulator& sim_;
  AckPolicy policy_;
  PacketSink ack_path_;
  // Owned delayed-ACK timer slot, re-armed in place (Event::kOwned). While
  // timer_armed_, the slot is queued at some time <= timer_at_; a stale
  // early fire re-arms itself at the live deadline.
  Event* timer_slot_ = nullptr;
  std::unique_ptr<Event> owned_slot_;  // standalone fallback
  std::set<uint64_t> ooo_;  // out-of-order segment seqs awaiting the gap
  uint64_t cum_ = 0;        // bytes received in order
  uint64_t packets_ = 0;
  uint32_t unacked_ = 0;    // segments since last ACK
  Packet last_data_;        // newest data segment (echo fields for the ACK)
  uint64_t timer_epoch_ = 0;
  bool timer_armed_ = false;
  // Deadline/seq of the live timer (epoch == timer_epoch_), for snapshots.
  TimeNs timer_at_ = TimeNs::zero();
  uint64_t timer_seq_ = 0;
  // CE seen since the last ACK (ECN-Echo accumulation).
  bool ece_pending_ = false;
};

}  // namespace ccstarve
