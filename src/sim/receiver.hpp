// Receiver endpoint: tracks in-order delivery, generates cumulative ACKs
// (optionally delayed, as in the Fig. 7 experiment where one receiver ACKs
// only every 4th segment) and echoes timestamps for RTT measurement.
//
// Optionally models receiver-side flow control (RecvConfig): a bounded
// receive buffer drained by the application in fixed-size reads at a
// configured rate. Every ACK then advertises the remaining window
// (accept_limit - cum), data beyond the advertised window is dropped and
// answered with a pure window update, zero-window persist probes are
// answered likewise, and a window-update timer wakes the sender when the
// drain has re-opened a worthwhile window. With the default RecvConfig
// (infinite buffer) every one of these paths is inert: no timer is armed, no
// extra packet or trace record is produced, and every ACK carries
// ack_wnd = kInfiniteWnd — which is why the committed golden digests are
// unchanged by this feature.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>

#include "sim/check_probe.hpp"
#include "sim/flight_probe.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "sim/snapshot.hpp"
#include "util/time.hpp"

namespace ccstarve {

struct AckPolicy {
  // Send an ACK after this many unacknowledged data segments.
  uint32_t ack_every = 1;
  // ...or after this long since the first unacknowledged segment arrived,
  // whichever comes first (classic delayed-ACK timer).
  TimeNs delayed_ack_timeout = TimeNs::millis(40);
};

// Application-drain / receive-buffer model. Defaults mean "flow control
// off": an infinite buffer advertises kInfiniteWnd forever and schedules
// nothing.
struct RecvConfig {
  // Receive-buffer capacity in bytes; >= kInfiniteWnd disables flow control.
  uint64_t buffer_bytes = kInfiniteWnd;
  // Application read (drain) rate. infinite() = the app consumes in-order
  // data the instant it arrives, so a finite buffer becomes a fixed rwnd
  // clamp; a finite rate leaves a backlog that shrinks the advertised
  // window between reads.
  Rate drain_rate = Rate::infinite();
  // Bytes consumed per application read: reads happen every
  // drain_burst_bytes / drain_rate and consume up to a burst each. Larger
  // bursts make the advertised window oscillate in coarser steps.
  uint64_t drain_burst_bytes = kMss;
  // Emit pure window-update ACKs when the drain re-opens the window past
  // the SWS threshold (min(buffer/2, MSS)). Disabling this models the
  // classic lost-window-update pathology: the sender can then only recover
  // via persist probes.
  bool window_updates = true;

  bool enabled() const { return buffer_bytes < kInfiniteWnd; }
};

class Receiver final : public PacketHandler {
 public:
  template <typename AckPath>
  Receiver(Simulator& sim, const AckPolicy& policy, AckPath& ack_path,
           RecvConfig recv = {})
      : sim_(sim), policy_(policy), ack_path_(as_sink(ack_path)), recv_(recv) {
    if (recv_.drain_burst_bytes == 0) recv_.drain_burst_bytes = kMss;
    if (recv_.enabled()) {
      wnd_threshold_ = std::min<uint64_t>(recv_.buffer_bytes / 2, kMss);
      if (!recv_.drain_rate.is_infinite()) {
        drain_interval_ns_ = std::max<int64_t>(
            1, recv_.drain_rate.transmission_time(recv_.drain_burst_bytes)
                   .ns());
      }
    }
  }
  ~Receiver() override;

  // Wires the delayed-ACK timer to a FlowTable-owned Event slot (see
  // sim/flow_table.hpp). Must be called before any data arrives; without a
  // slot the receiver lazily allocates a private one.
  void set_timer_slot(Event* slot) { timer_slot_ = slot; }
  // Same, for the window-update wakeup timer.
  void set_wnd_timer_slot(Event* slot) { wnd_slot_ = slot; }

  void handle(Packet pkt) override {
    if (pkt.is_dummy || pkt.is_ack) return;
    if (pkt.is_probe) {
      on_probe(pkt);
      return;
    }
    ++packets_;
    if (recv_.enabled()) {
      advance_drain();
      if (pkt.seq + pkt.bytes > accept_limit()) {
        // Beyond the advertised window: the buffer cannot hold it. Drop and
        // answer with a pure window update so a sender that overran (or
        // raced a shrinking... never-shrinking window means this only
        // happens to a deliberately misbehaving sender) re-synchronizes.
        ++window_drops_;
        if (TraceRecorder* tr = sim_.tracer()) {
          tr->record('X', sim_.now(), pkt.flow, pkt.seq, cum_);
        }
        if (CheckProbe* ck = sim_.checker()) {
          ck->on_receiver_data(sim_.now(), pkt, cum_);
        }
        if (FlightProbe* fp = sim_.flight()) {
          fp->window_drop(sim_.now(), pkt);
        }
        emit_wnd_ack(pkt);
        return;
      }
    }
    if (TraceRecorder* tr = sim_.tracer()) {
      tr->record('R', sim_.now(), pkt.flow, pkt.seq, cum_);
    }

    if (pkt.seq == cum_) {
      cum_ += pkt.bytes;
      // Absorb any previously buffered out-of-order segments that are now
      // contiguous.
      auto it = ooo_.begin();
      while (it != ooo_.end() && *it <= cum_) {
        if (*it == cum_) cum_ += kMss;
        it = ooo_.erase(it);
      }
    } else if (pkt.seq > cum_) {
      ooo_.insert(pkt.seq);
    }
    // pkt.seq < cum_: spurious retransmission, still ACKed below so the
    // sender's scoreboard converges.

    if (CheckProbe* ck = sim_.checker()) {
      ck->on_receiver_data(sim_.now(), pkt, cum_);
    }

    last_data_ = pkt;
    ece_pending_ |= pkt.ecn_ce;
    ++unacked_;

    const bool gap = pkt.seq != cum_ - pkt.bytes;  // did not advance in order
    if (gap || unacked_ >= policy_.ack_every) {
      // Out-of-order data triggers an immediate (duplicate) ACK, as TCP
      // does; in-order data respects the delayed-ACK policy.
      emit_ack(pkt);
    } else if (!timer_armed_) {
      arm_timer();
    }
  }

  uint64_t cum_received() const { return cum_; }
  uint64_t packets_received() const { return packets_; }
  uint64_t probes_received() const { return probes_received_; }
  uint64_t window_drops() const { return window_drops_; }
  const RecvConfig& recv_config() const { return recv_; }
  // Highest sequence the receiver can currently buffer: every ACK it has
  // ever emitted advertised ack_cum + ack_wnd <= accept_limit(), and the
  // limit is monotone (the drain only consumes), so TCP's never-shrinking
  // window holds by construction. kInfiniteWnd when flow control is off.
  uint64_t accept_limit() const {
    return recv_.enabled() ? app_consumed_ + recv_.buffer_bytes
                           : kInfiniteWnd;
  }

  // --- snapshot/fork hooks (sim/snapshot.hpp) ---

  struct State {
    std::set<uint64_t> ooo;
    uint64_t cum = 0;
    uint64_t packets = 0;
    uint32_t unacked = 0;
    Packet last_data;
    uint64_t timer_epoch = 0;
    bool timer_armed = false;
    bool ece_pending = false;
    TimeNs timer_at = TimeNs::zero();
    // Flow-control state (all zero with the default RecvConfig).
    uint64_t app_consumed = 0;
    uint64_t last_read_idx = 0;
    uint64_t probes_received = 0;
    uint64_t window_drops = 0;
    bool wnd_armed = false;
    TimeNs wnd_at = TimeNs::zero();
  };

  State capture(std::vector<PendingEvent>* events, uint32_t flow) const;
  void restore(const State& st);
  // Re-arms the live delayed-ACK timer captured at snapshot time.
  void restore_timer(const PendingEvent& e);
  // Re-arms the live window-update timer captured at snapshot time.
  void restore_wnd_timer(const PendingEvent& e);

 private:
  void emit_ack(const Packet& trigger);
  void arm_timer();
  void on_timer_fire();
  Event* timer_slot();
  void on_probe(const Packet& pkt);
  void emit_wnd_ack(const Packet& trigger);
  void advance_drain();
  uint64_t advertised_wnd() const { return accept_limit() - cum_; }
  void maybe_arm_wnd_timer();
  void on_wnd_timer_fire();
  Event* wnd_slot();

  Simulator& sim_;
  AckPolicy policy_;
  PacketSink ack_path_;
  // Owned delayed-ACK timer slot, re-armed in place (Event::kOwned). While
  // timer_armed_, the slot is queued at some time <= timer_at_; a stale
  // early fire re-arms itself at the live deadline.
  Event* timer_slot_ = nullptr;
  std::unique_ptr<Event> owned_slot_;  // standalone fallback
  std::set<uint64_t> ooo_;  // out-of-order segment seqs awaiting the gap
  uint64_t cum_ = 0;        // bytes received in order
  uint64_t packets_ = 0;
  uint32_t unacked_ = 0;    // segments since last ACK
  Packet last_data_;        // newest data segment (echo fields for the ACK)
  uint64_t timer_epoch_ = 0;
  bool timer_armed_ = false;
  // Deadline/seq of the live timer (epoch == timer_epoch_), for snapshots.
  TimeNs timer_at_ = TimeNs::zero();
  uint64_t timer_seq_ = 0;
  // CE seen since the last ACK (ECN-Echo accumulation).
  bool ece_pending_ = false;

  // --- receiver-side flow control (inert with the default RecvConfig) ---
  RecvConfig recv_;
  // In-order bytes the application has consumed; advanced lazily to the
  // read-schedule position implied by now() before any use, which is exact
  // because reads are a deterministic function of absolute time.
  uint64_t app_consumed_ = 0;
  uint64_t last_read_idx_ = 0;  // reads completed = floor(now / interval)
  int64_t drain_interval_ns_ = 0;  // 0 = infinite drain rate
  uint64_t wnd_threshold_ = 0;  // SWS-style update threshold
  uint64_t probes_received_ = 0;
  uint64_t window_drops_ = 0;
  // Window-update wakeup timer (same owned-slot coverage discipline as the
  // delayed-ACK timer above).
  Event* wnd_slot_ = nullptr;
  std::unique_ptr<Event> owned_wnd_slot_;
  bool wnd_armed_ = false;
  TimeNs wnd_at_ = TimeNs::zero();
  uint64_t wnd_seq_ = 0;
};

}  // namespace ccstarve
