#include "sim/scenario.hpp"

#include <cassert>
#include <utility>

namespace ccstarve {

Scenario::Scenario(ScenarioConfig config)
    : sim_(config.event_pool), config_(std::move(config)), demux_(*this) {
  // The sinks below capture concrete types (Demux, BottleneckLink, ...), so
  // this translation unit instantiates thunks whose bodies are the inline
  // handle() definitions — the hot per-packet chain devirtualizes here.
  if (config_.delay_server) {
    delay_server_ =
        std::make_unique<DelayServerLink>(sim_, config_.delay_server, demux_);
    ingress_ = as_sink(*delay_server_);
  } else {
    BottleneckLink::Config lc;
    lc.rate = config_.link_rate;
    lc.buffer_bytes = config_.buffer_bytes;
    link_ = std::make_unique<BottleneckLink>(sim_, lc, demux_);
    if (config_.aqm) link_->set_aqm(std::move(config_.aqm));
    if (config_.prefill_bytes > 0) link_->prefill(config_.prefill_bytes);
    ingress_ = as_sink(*link_);
  }
}

Scenario::~Scenario() = default;

void Scenario::Demux::handle(Packet pkt) {
  if (pkt.is_dummy) return;
  assert(pkt.flow < owner_.flows_.size());
  owner_.flows_[pkt.flow]->prop->handle(pkt);
}

uint32_t Scenario::add_flow(FlowSpec spec) {
  assert(spec.cca != nullptr);
  const uint32_t id = static_cast<uint32_t>(flows_.size());
  auto flow = std::make_unique<Flow>();

  Sender::Config sc;
  sc.flow_id = id;
  sc.stats_interval = spec.stats_interval;
  sc.max_cwnd_bytes = spec.max_cwnd_bytes;
  // The chain is built in dependency order: each element references the one
  // that consumes its output.
  PacketSink sender_egress = ingress_;
  if (spec.loss_rate > 0.0) {
    flow->loss_gate =
        std::make_unique<LossGate>(spec.loss_rate, spec.loss_seed, ingress_);
    sender_egress = as_sink(*flow->loss_gate);
  }
  flow->sender =
      std::make_unique<Sender>(sim_, sc, std::move(spec.cca), sender_egress);
  flow->ack_jitter = std::make_unique<JitterBox>(
      sim_,
      spec.ack_jitter ? std::move(spec.ack_jitter)
                      : std::make_unique<ZeroJitter>(),
      config_.jitter_budget, *flow->sender);
  flow->receiver =
      std::make_unique<Receiver>(sim_, spec.ack_policy, *flow->ack_jitter);
  flow->data_jitter = std::make_unique<JitterBox>(
      sim_,
      spec.data_jitter ? std::move(spec.data_jitter)
                       : std::make_unique<ZeroJitter>(),
      config_.jitter_budget, *flow->receiver);
  flow->prop = std::make_unique<PropagationDelay>(sim_, spec.min_rtt,
                                                  *flow->data_jitter);

  flow->sender->start(spec.start_at);
  flows_.push_back(std::move(flow));
  return id;
}

void Scenario::run_until(TimeNs until) { sim_.run_until(until); }

Rate Scenario::throughput(size_t i, TimeNs from, TimeNs to) const {
  const FlowStats& st = stats(i);
  if (st.delivered_bytes.empty() || to <= from) return Rate::zero();
  const double bytes =
      st.delivered_bytes.at(to) - st.delivered_bytes.at(from);
  return Rate::bytes_per_sec(bytes / (to - from).to_seconds());
}

Rate Scenario::throughput(size_t i) const {
  const TimeNs now = sim_.now();
  if (now <= TimeNs::zero()) return Rate::zero();
  return Rate::from_bytes_over(flows_[i]->sender->delivered_bytes(), now);
}

}  // namespace ccstarve
