#include "sim/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ccstarve {

Scenario::Scenario(ScenarioConfig config)
    : sim_(config.event_pool), config_(std::move(config)), demux_(*this) {
  // The sinks below capture concrete types (Demux, BottleneckLink, ...), so
  // this translation unit instantiates thunks whose bodies are the inline
  // handle() definitions — the hot per-packet chain devirtualizes here.
  if (config_.delay_server) {
    delay_server_ =
        std::make_unique<DelayServerLink>(sim_, config_.delay_server, demux_);
    ingress_ = as_sink(*delay_server_);
  } else {
    BottleneckLink::Config lc;
    lc.rate = config_.link_rate;
    lc.buffer_bytes = config_.buffer_bytes;
    link_ = std::make_unique<BottleneckLink>(sim_, lc, demux_);
    if (config_.aqm) link_->set_aqm(std::move(config_.aqm));
    if (config_.prefill_bytes > 0) link_->prefill(config_.prefill_bytes);
    ingress_ = as_sink(*link_);
  }
}

Scenario::~Scenario() = default;

void Scenario::Demux::handle(Packet pkt) {
  if (pkt.is_dummy) return;
  assert(pkt.flow < owner_.flows_.size());
  owner_.flows_[pkt.flow]->prop->handle(pkt);
}

uint32_t Scenario::add_flow(FlowSpec spec) {
  return build_flow(std::move(spec), /*schedule_start=*/true);
}

uint32_t Scenario::build_flow(FlowSpec spec, bool schedule_start) {
  assert(spec.cca != nullptr);
  const uint32_t id = static_cast<uint32_t>(flows_.size());
  auto flow = std::make_unique<Flow>();
  flow->min_rtt = spec.min_rtt;
  flow->loss_rate = spec.loss_rate;
  flow->loss_seed = spec.loss_seed;
  flow->ack_policy = spec.ack_policy;
  flow->stats_interval = spec.stats_interval;
  flow->max_cwnd_bytes = spec.max_cwnd_bytes;
  flow->recv = spec.recv;

  Sender::Config sc;
  sc.flow_id = id;
  sc.stats_interval = spec.stats_interval;
  sc.max_cwnd_bytes = spec.max_cwnd_bytes;
  // The handshake advertises the receive buffer: a flow-controlled sender
  // starts bounded by the peer's buffer, not blind until the first ACK.
  if (spec.recv.enabled()) sc.initial_wnd_limit = spec.recv.buffer_bytes;
  sc.table = &table_;
  sc.row = table_.add_row();
  // The chain is built in dependency order: each element references the one
  // that consumes its output.
  PacketSink sender_egress = ingress_;
  if (spec.loss_rate > 0.0) {
    flow->loss_gate =
        std::make_unique<LossGate>(spec.loss_rate, spec.loss_seed, ingress_);
    sender_egress = as_sink(*flow->loss_gate);
  }
  flow->sender =
      std::make_unique<Sender>(sim_, sc, std::move(spec.cca), sender_egress);
  flow->ack_jitter = std::make_unique<JitterBox>(
      sim_,
      spec.ack_jitter ? std::move(spec.ack_jitter)
                      : std::make_unique<ZeroJitter>(),
      config_.jitter_budget, *flow->sender);
  flow->receiver = std::make_unique<Receiver>(sim_, spec.ack_policy,
                                              *flow->ack_jitter, spec.recv);
  flow->receiver->set_timer_slot(&table_.ack_slots[id]);
  flow->receiver->set_wnd_timer_slot(&table_.wnd_slots[id]);
  flow->data_jitter = std::make_unique<JitterBox>(
      sim_,
      spec.data_jitter ? std::move(spec.data_jitter)
                       : std::make_unique<ZeroJitter>(),
      config_.jitter_budget, *flow->receiver);
  flow->prop = std::make_unique<PropagationDelay>(sim_, spec.min_rtt,
                                                  *flow->data_jitter);

  if (schedule_start) flow->sender->start(spec.start_at);
  flows_.push_back(std::move(flow));
  return id;
}

void Scenario::run_until(TimeNs until) { sim_.run_until(until); }

ScenarioSnapshot Scenario::snapshot() const {
  // Quiescence: every pending event strictly in the future. An event due
  // exactly "now" may or may not have been dispatched yet depending on how
  // the caller advanced the clock, so its state is ambiguous to capture.
  const TimeNs next = sim_.next_pending_at();
  if (next <= sim_.now()) {
    throw SnapshotError("Scenario::snapshot: not quiescent: pending event at " +
                        std::to_string(next.ns()) + "ns is not after now=" +
                        std::to_string(sim_.now().ns()) + "ns");
  }
  ScenarioSnapshot snap;
  snap.at = sim_.now();
  snap.link_rate = config_.link_rate;
  snap.delay_server = config_.delay_server;
  snap.buffer_bytes = config_.buffer_bytes;
  snap.jitter_budget = config_.jitter_budget;
  snap.has_link = link_ != nullptr;
  if (link_) snap.link = link_->capture(&snap.events);
  if (delay_server_) snap.dsl = delay_server_->capture(&snap.events);
  for (size_t i = 0; i < flows_.size(); ++i) {
    const Flow& f = *flows_[i];
    const uint32_t id = static_cast<uint32_t>(i);
    ScenarioSnapshot::FlowSnapshot fs;
    fs.min_rtt = f.min_rtt;
    fs.loss_rate = f.loss_rate;
    fs.loss_seed = f.loss_seed;
    fs.ack_policy = f.ack_policy;
    fs.stats_interval = f.stats_interval;
    fs.max_cwnd_bytes = f.max_cwnd_bytes;
    fs.recv = f.recv;
    fs.cca = f.sender->cca().clone();
    fs.data_jitter = f.data_jitter->clone_policy();
    fs.ack_jitter = f.ack_jitter->clone_policy();
    fs.sender = f.sender->capture(&snap.events);
    fs.receiver = f.receiver->capture(&snap.events, id);
    fs.data_box = f.data_jitter->capture(
        &snap.events, PendingEvent::Kind::kDataJitterDeliver, id);
    fs.ack_box = f.ack_jitter->capture(
        &snap.events, PendingEvent::Kind::kAckJitterDeliver, id);
    f.prop->capture(&snap.events, id);
    if (f.loss_gate) fs.loss_gate = f.loss_gate->capture();
    snap.flows.push_back(std::move(fs));
  }
  std::sort(snap.events.begin(), snap.events.end(), pending_event_before);
  return snap;
}

std::unique_ptr<Scenario> Scenario::fork(const ScenarioSnapshot& snap,
                                         ForkOptions opts) {
  if (opts.flows.size() > snap.flows.size()) {
    throw SnapshotError("Scenario::fork: flow override index " +
                        std::to_string(opts.flows.size() - 1) +
                        " out of range (snapshot has " +
                        std::to_string(snap.flows.size()) + " flows)");
  }
  for (size_t i = 0; i < opts.flows.size(); ++i) {
    if (opts.flows[i].start_at && *opts.flows[i].start_at <= snap.at) {
      throw SnapshotError(
          "Scenario::fork: flow " + std::to_string(i) + " start_at " +
          std::to_string(opts.flows[i].start_at->ns()) +
          "ns is not after the snapshot time " + std::to_string(snap.at.ns()) +
          "ns");
    }
  }
  ScenarioConfig cfg;
  cfg.link_rate = snap.link_rate;
  cfg.delay_server = snap.delay_server;
  cfg.buffer_bytes = snap.buffer_bytes;
  cfg.jitter_budget = snap.jitter_budget;
  cfg.event_pool = opts.event_pool;
  auto sc = std::make_unique<Scenario>(std::move(cfg));
  sc->sim_.warp_to(snap.at);

  for (size_t i = 0; i < snap.flows.size(); ++i) {
    const auto& fs = snap.flows[i];
    FlowFork* ff = i < opts.flows.size() ? &opts.flows[i] : nullptr;
    FlowSpec spec;
    spec.cca = fs.cca->clone();
    spec.min_rtt = fs.min_rtt;
    spec.loss_rate = fs.loss_rate;
    spec.loss_seed = fs.loss_seed;
    spec.ack_policy = fs.ack_policy;
    spec.stats_interval = fs.stats_interval;
    spec.max_cwnd_bytes = fs.max_cwnd_bytes;
    spec.recv = fs.recv;
    spec.data_jitter = ff && ff->replace_data_jitter
                           ? std::move(ff->data_jitter)
                           : fs.data_jitter->clone();
    spec.ack_jitter = ff && ff->replace_ack_jitter ? std::move(ff->ack_jitter)
                                                   : fs.ack_jitter->clone();
    sc->build_flow(std::move(spec), /*schedule_start=*/false);

    Flow& flow = *sc->flows_.back();
    flow.sender->restore(fs.sender);
    flow.receiver->restore(fs.receiver);
    flow.data_jitter->restore(fs.data_box);
    flow.ack_jitter->restore(fs.ack_box);
    if (flow.loss_gate) flow.loss_gate->restore(fs.loss_gate);
  }
  if (snap.has_link) sc->link_->restore(snap.link);
  if (sc->delay_server_) sc->delay_server_->restore(snap.dsl);

  // Re-schedule the captured pending events. Divergent start times are
  // rewritten first, then the records are re-sorted: scheduling in
  // ascending (at, seq) order hands out fresh ascending sequences, so
  // same-timestamp events keep their cold-run relative order.
  std::vector<PendingEvent> events = snap.events;
  for (PendingEvent& e : events) {
    if (e.kind != PendingEvent::Kind::kSenderStart) continue;
    if (e.flow < opts.flows.size() && opts.flows[e.flow].start_at) {
      e.at = *opts.flows[e.flow].start_at;
    }
  }
  std::sort(events.begin(), events.end(), pending_event_before);
  for (const PendingEvent& e : events) {
    switch (e.kind) {
      case PendingEvent::Kind::kLinkService:
        sc->link_->restore_service(e);
        break;
      case PendingEvent::Kind::kDelayServerDeliver:
        sc->delay_server_->restore_in_flight(e);
        break;
      case PendingEvent::Kind::kPropDeliver:
        sc->flows_[e.flow]->prop->restore_in_flight(e);
        break;
      case PendingEvent::Kind::kDataJitterDeliver:
        sc->flows_[e.flow]->data_jitter->restore_in_flight(e);
        break;
      case PendingEvent::Kind::kAckJitterDeliver:
        sc->flows_[e.flow]->ack_jitter->restore_in_flight(e);
        break;
      case PendingEvent::Kind::kSenderStart:
      case PendingEvent::Kind::kSenderPace:
      case PendingEvent::Kind::kSenderRto:
      case PendingEvent::Kind::kSenderPersist:
        sc->flows_[e.flow]->sender->restore_event(e);
        break;
      case PendingEvent::Kind::kReceiverAckTimer:
        sc->flows_[e.flow]->receiver->restore_timer(e);
        break;
      case PendingEvent::Kind::kReceiverWndTimer:
        sc->flows_[e.flow]->receiver->restore_wnd_timer(e);
        break;
    }
  }
  return sc;
}

Rate Scenario::throughput(size_t i, TimeNs from, TimeNs to) const {
  const FlowStats& st = stats(i);
  if (st.delivered_bytes.empty() || to <= from) return Rate::zero();
  const double bytes =
      st.delivered_bytes.at(to) - st.delivered_bytes.at(from);
  return Rate::bytes_per_sec(bytes / (to - from).to_seconds());
}

Rate Scenario::throughput(size_t i) const {
  const TimeNs now = sim_.now();
  if (now <= TimeNs::zero()) return Rate::zero();
  return Rate::from_bytes_over(flows_[i]->sender->delivered_bytes(), now);
}

}  // namespace ccstarve
