// Scenario: the paper's §3 topology, assembled and ready to run.
//
//   sender_i -> [loss gate_i] -> shared FIFO bottleneck -> demux
//        -> propagation Rm_i -> data jitter box_i -> receiver_i
//        -> ack jitter box_i -> sender_i
//
// Every experiment in the paper (and every bench binary here) is an
// instance of this scenario with different flow specs, jitter policies and
// link parameters.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cc/cca.hpp"
#include "sim/aqm.hpp"
#include "sim/flow_table.hpp"
#include "sim/jitter.hpp"
#include "sim/link.hpp"
#include "sim/loss.hpp"
#include "sim/packet.hpp"
#include "sim/receiver.hpp"
#include "sim/sender.hpp"
#include "sim/simulator.hpp"
#include "sim/snapshot.hpp"
#include "util/rate.hpp"
#include "util/time.hpp"

namespace ccstarve {

struct FlowSpec {
  std::unique_ptr<Cca> cca;
  TimeNs start_at = TimeNs::zero();
  // Per-flow minimum propagation RTT (the non-bottleneck path may differ
  // between flows, e.g. the §5.2 BBR experiment uses 40 ms and 80 ms).
  TimeNs min_rtt = TimeNs::millis(100);
  // Optional non-congestive delay elements; null means the ideal path.
  std::unique_ptr<JitterPolicy> data_jitter;
  std::unique_ptr<JitterPolicy> ack_jitter;
  // Random loss on the data path before the bottleneck.
  double loss_rate = 0.0;
  uint64_t loss_seed = 1;
  AckPolicy ack_policy;
  TimeNs stats_interval = TimeNs::zero();
  // Sender-level window cap (see Sender::Config::max_cwnd_bytes).
  uint64_t max_cwnd_bytes = uint64_t{1} << 40;
  // Receiver-side flow control: buffer size + application drain model.
  // Defaults mean "off" (infinite buffer, instant drain).
  RecvConfig recv;
};

struct ScenarioConfig {
  Rate link_rate = Rate::mbps(100);
  // When set, the shared bottleneck is replaced by a DelayServerLink whose
  // queueing delay is this function of arrival time — the §6.5 strong model
  // where the adversary controls the queueing pattern directly (via an
  // arbitrarily variable link rate). link_rate/buffer/prefill are ignored.
  DelayServerLink::DelayFn delay_server;
  // Drop-tail buffer; default effectively infinite (the paper's ideal path).
  uint64_t buffer_bytes = std::numeric_limits<uint64_t>::max() / 2;
  // The model's D: jitter boxes audit added delay against this budget.
  TimeNs jitter_budget = TimeNs::infinite();
  // Dummy bytes pre-loaded into the bottleneck at t=0 (sets d*(0)).
  uint64_t prefill_bytes = 0;
  // Optional ECN marking discipline installed at the bottleneck (paper 6.4).
  std::unique_ptr<AqmPolicy> aqm;
  // Optional shared event pool (see sim/event_pool.hpp). Null: the
  // simulator owns a private pool. The sweep engine passes a per-worker
  // pool so consecutive grid points reuse warm event nodes.
  EventPool* event_pool = nullptr;
};

// Full live state of a Scenario at one sim time, sufficient to build any
// number of byte-identical continuations (see DESIGN.md §8). Component
// state is value copies; CCAs and jitter/AQM policies are clones; pending
// events are data records re-scheduled on restore in their original
// (at, seq) order. Move-only (it owns the clones); reusable for N forks.
struct ScenarioSnapshot {
  struct FlowSnapshot {
    // Rebuild recipe (the FlowSpec fields the fork must reproduce).
    TimeNs min_rtt = TimeNs::zero();
    double loss_rate = 0.0;
    uint64_t loss_seed = 1;
    AckPolicy ack_policy;
    TimeNs stats_interval = TimeNs::zero();
    uint64_t max_cwnd_bytes = uint64_t{1} << 40;
    RecvConfig recv;
    // Live state.
    std::unique_ptr<Cca> cca;
    std::unique_ptr<JitterPolicy> data_jitter;
    std::unique_ptr<JitterPolicy> ack_jitter;
    Sender::State sender;
    Receiver::State receiver;
    JitterBox::State data_box;
    JitterBox::State ack_box;
    LossGate::State loss_gate;  // meaningful when loss_rate > 0
  };

  TimeNs at = TimeNs::zero();
  // Scenario recipe.
  Rate link_rate = Rate::zero();
  DelayServerLink::DelayFn delay_server;
  uint64_t buffer_bytes = 0;
  TimeNs jitter_budget = TimeNs::infinite();
  // Live state.
  bool has_link = false;
  BottleneckLink::State link;
  DelayServerLink::State dsl;
  std::vector<FlowSnapshot> flows;
  // Every pending event, sorted by (at, seq) — cold-run dispatch order.
  std::vector<PendingEvent> events;
};

// Per-flow divergence applied at fork time. The caller is responsible for
// only overriding things that could not have influenced the simulation
// before the snapshot (a not-yet-fired start time, a jitter policy that
// was behaviorally identity before the snapshot); the fork-equivalence
// tests pin this contract.
struct FlowFork {
  // New start time for a flow whose start event had not fired; must be
  // later than the snapshot time.
  std::optional<TimeNs> start_at;
  // When set, replaces the snapshot's policy clone (null = ZeroJitter).
  bool replace_data_jitter = false;
  std::unique_ptr<JitterPolicy> data_jitter;
  bool replace_ack_jitter = false;
  std::unique_ptr<JitterPolicy> ack_jitter;
};

struct ForkOptions {
  // Optional shared event pool for the forked simulator (see
  // ScenarioConfig::event_pool).
  EventPool* event_pool = nullptr;
  // Indexed by flow; may be shorter than the snapshot's flow count.
  std::vector<FlowFork> flows;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);
  ~Scenario();
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  // Adds a flow and returns its index. All flows must be added before run.
  uint32_t add_flow(FlowSpec spec);

  // Advances the simulation to absolute time `until`.
  void run_until(TimeNs until);

  Simulator& sim() { return sim_; }
  // Only valid when the scenario uses a rate-limited bottleneck (no
  // delay_server).
  BottleneckLink& link() { return *link_; }
  const BottleneckLink& link() const { return *link_; }
  bool has_bottleneck() const { return link_ != nullptr; }

  size_t flow_count() const { return flows_.size(); }
  // Shared per-flow hot-state columns (one row per flow, in add order).
  const FlowTable& flow_table() const { return table_; }
  FlowTable& flow_table() { return table_; }
  const Sender& sender(size_t i) const { return *flows_[i]->sender; }
  Sender& sender(size_t i) { return *flows_[i]->sender; }
  const Receiver& receiver(size_t i) const { return *flows_[i]->receiver; }
  TimeNs min_rtt(size_t i) const { return flows_[i]->min_rtt; }
  double loss_rate(size_t i) const { return flows_[i]->loss_rate; }
  // Packets the flow's Bernoulli loss gate swallowed (0 when loss_rate==0).
  uint64_t loss_gate_dropped(size_t i) const {
    return flows_[i]->loss_gate ? flows_[i]->loss_gate->dropped() : 0;
  }
  // True when flow i models receiver-side flow control (finite buffer).
  // Such flows depend on absolute time through the receiver's app-drain
  // read schedule, so the warp engine refuses to fast-forward them.
  bool rwnd_limited(size_t i) const {
    return flows_[i]->recv.enabled();
  }
  uint64_t buffer_bytes() const { return config_.buffer_bytes; }
  TimeNs jitter_budget() const { return config_.jitter_budget; }
  const FlowStats& stats(size_t i) const { return flows_[i]->sender->stats(); }
  const JitterBox::Stats& data_jitter_stats(size_t i) const {
    return flows_[i]->data_jitter->stats();
  }
  const JitterBox::Stats& ack_jitter_stats(size_t i) const {
    return flows_[i]->ack_jitter->stats();
  }
  const JitterBox& data_box(size_t i) const { return *flows_[i]->data_jitter; }
  const JitterBox& ack_box(size_t i) const { return *flows_[i]->ack_jitter; }

  // Average throughput of flow i over [from, to] measured from delivered
  // (cumulatively ACKed) bytes.
  Rate throughput(size_t i, TimeNs from, TimeNs to) const;
  // Paper's definition: bytes acknowledged between time 0 and now()/t.
  Rate throughput(size_t i) const;

  // Captures the complete live state at the current sim time. Call at a
  // quiescent point — immediately after run_until(T), when every pending
  // event is strictly in the future. The snapshot is independent of this
  // scenario (all state is copied/cloned) and may outlive it.
  ScenarioSnapshot snapshot() const;

  // Builds a continuation of `snap`, optionally diverging per-flow. The
  // forked scenario starts with now() == snap.at and, absent overrides,
  // dispatches the exact event sequence a cold run would have — trace
  // digests over the continuation are byte-identical (DESIGN.md §8).
  static std::unique_ptr<Scenario> fork(const ScenarioSnapshot& snap,
                                        ForkOptions opts = {});

 private:
  struct Flow;

  // Routes bottleneck egress to the owning flow's path; discards dummies.
  class Demux final : public PacketHandler {
   public:
    explicit Demux(Scenario& owner) : owner_(owner) {}
    void handle(Packet pkt) override;

   private:
    Scenario& owner_;
  };

  struct Flow {
    std::unique_ptr<Sender> sender;
    std::unique_ptr<LossGate> loss_gate;   // sender -> bottleneck
    std::unique_ptr<PropagationDelay> prop;
    std::unique_ptr<JitterBox> data_jitter;
    std::unique_ptr<Receiver> receiver;
    std::unique_ptr<JitterBox> ack_jitter;
    // Spec fields a snapshot needs to rebuild this flow in a fork.
    TimeNs min_rtt = TimeNs::zero();
    double loss_rate = 0.0;
    uint64_t loss_seed = 1;
    AckPolicy ack_policy;
    TimeNs stats_interval = TimeNs::zero();
    uint64_t max_cwnd_bytes = uint64_t{1} << 40;
    RecvConfig recv;
  };

  // add_flow minus the start() scheduling — fork restores the pending
  // start event (if any) from the snapshot instead.
  uint32_t build_flow(FlowSpec spec, bool schedule_start);

  Simulator sim_;
  ScenarioConfig config_;
  // Declared before flows_ so rows outlive the Sender/Receiver objects that
  // borrow them (their destructors disarm the table's timer slots).
  FlowTable table_;
  Demux demux_;
  std::unique_ptr<BottleneckLink> link_;
  std::unique_ptr<DelayServerLink> delay_server_;
  PacketSink ingress_;  // where senders push data packets
  std::vector<std::unique_ptr<Flow>> flows_;
};

}  // namespace ccstarve
