// Scenario: the paper's §3 topology, assembled and ready to run.
//
//   sender_i -> [loss gate_i] -> shared FIFO bottleneck -> demux
//        -> propagation Rm_i -> data jitter box_i -> receiver_i
//        -> ack jitter box_i -> sender_i
//
// Every experiment in the paper (and every bench binary here) is an
// instance of this scenario with different flow specs, jitter policies and
// link parameters.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cc/cca.hpp"
#include "sim/aqm.hpp"
#include "sim/jitter.hpp"
#include "sim/link.hpp"
#include "sim/loss.hpp"
#include "sim/packet.hpp"
#include "sim/receiver.hpp"
#include "sim/sender.hpp"
#include "sim/simulator.hpp"
#include "util/rate.hpp"
#include "util/time.hpp"

namespace ccstarve {

struct FlowSpec {
  std::unique_ptr<Cca> cca;
  TimeNs start_at = TimeNs::zero();
  // Per-flow minimum propagation RTT (the non-bottleneck path may differ
  // between flows, e.g. the §5.2 BBR experiment uses 40 ms and 80 ms).
  TimeNs min_rtt = TimeNs::millis(100);
  // Optional non-congestive delay elements; null means the ideal path.
  std::unique_ptr<JitterPolicy> data_jitter;
  std::unique_ptr<JitterPolicy> ack_jitter;
  // Random loss on the data path before the bottleneck.
  double loss_rate = 0.0;
  uint64_t loss_seed = 1;
  AckPolicy ack_policy;
  TimeNs stats_interval = TimeNs::zero();
  // Sender-level window cap (see Sender::Config::max_cwnd_bytes).
  uint64_t max_cwnd_bytes = uint64_t{1} << 40;
};

struct ScenarioConfig {
  Rate link_rate = Rate::mbps(100);
  // When set, the shared bottleneck is replaced by a DelayServerLink whose
  // queueing delay is this function of arrival time — the §6.5 strong model
  // where the adversary controls the queueing pattern directly (via an
  // arbitrarily variable link rate). link_rate/buffer/prefill are ignored.
  DelayServerLink::DelayFn delay_server;
  // Drop-tail buffer; default effectively infinite (the paper's ideal path).
  uint64_t buffer_bytes = std::numeric_limits<uint64_t>::max() / 2;
  // The model's D: jitter boxes audit added delay against this budget.
  TimeNs jitter_budget = TimeNs::infinite();
  // Dummy bytes pre-loaded into the bottleneck at t=0 (sets d*(0)).
  uint64_t prefill_bytes = 0;
  // Optional ECN marking discipline installed at the bottleneck (paper 6.4).
  std::unique_ptr<AqmPolicy> aqm;
  // Optional shared event pool (see sim/event_pool.hpp). Null: the
  // simulator owns a private pool. The sweep engine passes a per-worker
  // pool so consecutive grid points reuse warm event nodes.
  EventPool* event_pool = nullptr;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);
  ~Scenario();
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  // Adds a flow and returns its index. All flows must be added before run.
  uint32_t add_flow(FlowSpec spec);

  // Advances the simulation to absolute time `until`.
  void run_until(TimeNs until);

  Simulator& sim() { return sim_; }
  // Only valid when the scenario uses a rate-limited bottleneck (no
  // delay_server).
  BottleneckLink& link() { return *link_; }
  const BottleneckLink& link() const { return *link_; }
  bool has_bottleneck() const { return link_ != nullptr; }

  size_t flow_count() const { return flows_.size(); }
  const Sender& sender(size_t i) const { return *flows_[i]->sender; }
  Sender& sender(size_t i) { return *flows_[i]->sender; }
  const FlowStats& stats(size_t i) const { return flows_[i]->sender->stats(); }
  const JitterBox::Stats& data_jitter_stats(size_t i) const {
    return flows_[i]->data_jitter->stats();
  }
  const JitterBox::Stats& ack_jitter_stats(size_t i) const {
    return flows_[i]->ack_jitter->stats();
  }

  // Average throughput of flow i over [from, to] measured from delivered
  // (cumulatively ACKed) bytes.
  Rate throughput(size_t i, TimeNs from, TimeNs to) const;
  // Paper's definition: bytes acknowledged between time 0 and now()/t.
  Rate throughput(size_t i) const;

 private:
  struct Flow;

  // Routes bottleneck egress to the owning flow's path; discards dummies.
  class Demux final : public PacketHandler {
   public:
    explicit Demux(Scenario& owner) : owner_(owner) {}
    void handle(Packet pkt) override;

   private:
    Scenario& owner_;
  };

  struct Flow {
    std::unique_ptr<Sender> sender;
    std::unique_ptr<LossGate> loss_gate;   // sender -> bottleneck
    std::unique_ptr<PropagationDelay> prop;
    std::unique_ptr<JitterBox> data_jitter;
    std::unique_ptr<Receiver> receiver;
    std::unique_ptr<JitterBox> ack_jitter;
  };

  Simulator sim_;
  ScenarioConfig config_;
  Demux demux_;
  std::unique_ptr<BottleneckLink> link_;
  std::unique_ptr<DelayServerLink> delay_server_;
  PacketSink ingress_;  // where senders push data packets
  std::vector<std::unique_ptr<Flow>> flows_;
};

}  // namespace ccstarve
