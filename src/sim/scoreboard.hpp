// Arena-backed retransmission scoreboard.
//
// Replaces the sender's node-based std::map<seq, SentInfo> outstanding set
// and std::set<seq> retransmit queue with one power-of-two ring of slots
// indexed by packet number (seq / kMss — segments are always MSS-sized).
// Present-in-flight and queued-for-retransmit are independent flag bits on
// the slot, mirroring the old containers exactly: a 1-segment SACK erases
// the outstanding entry but leaves the retransmit flag, and a popped
// retransmit is re-sent whether or not its entry survived, just as the old
// set/map pair behaved.
//
// All operations the ACK hot path performs — insert at the tail, erase
// below the cumulative ACK, oldest-present lookup, lowest-retransmit pop —
// are amortized O(1) via monotone cursors; the ring never allocates after
// it has grown to the flow's peak window span.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "util/time.hpp"

namespace ccstarve {

// Per-segment transmission record (field order matches the original
// Sender::SentInfo aggregate — snapshot States still carry these).
struct SentInfo {
  TimeNs sent_at;
  uint32_t bytes;
  uint64_t delivered_at_send;
};

class Scoreboard {
 public:
  explicit Scoreboard(uint32_t seg_bytes) : seg_(seg_bytes) {
    slots_.resize(kInitialSlots);
    mask_ = kInitialSlots - 1;
  }

  bool empty() const { return present_ == 0; }
  size_t size() const { return present_; }
  bool retx_empty() const { return retx_ == 0; }
  // Sum of present entries' bytes, maintained incrementally — the invariant
  // checker cross-checks it against the flow table's inflight column.
  uint64_t present_bytes() const { return present_bytes_; }

  bool contains(uint64_t seq) const {
    const uint64_t pkt = pkt_of(seq);
    if (pkt < base_ || pkt >= end_) return false;
    return (slot(pkt).flags & kPresent) != 0;
  }

  const SentInfo* find(uint64_t seq) const {
    const uint64_t pkt = pkt_of(seq);
    if (pkt < base_ || pkt >= end_) return nullptr;
    const Slot& s = slot(pkt);
    return (s.flags & kPresent) != 0 ? &s.info : nullptr;
  }

  // Inserts or replaces; returns true when the seq was not present (the
  // map's insert_or_assign `inserted` result, which gates inflight growth).
  bool insert_or_assign(uint64_t seq, const SentInfo& info) {
    const uint64_t pkt = pkt_of(seq);
    assert(pkt >= base_);
    if (pkt >= end_) {
      reserve_span(pkt + 1 - base_);
      end_ = pkt + 1;
    }
    Slot& s = slot(pkt);
    const bool inserted = (s.flags & kPresent) == 0;
    s.info = info;
    s.flags |= kPresent;
    if (inserted) {
      ++present_;
      present_bytes_ += info.bytes;
      if (pkt < oldest_hint_) oldest_hint_ = pkt;
    }
    return inserted;
  }

  // Seq / record of the oldest present entry; call only when !empty().
  uint64_t oldest_seq() const {
    advance_oldest();
    return oldest_hint_ * seg_;
  }
  const SentInfo& oldest_info() const {
    advance_oldest();
    return slot(oldest_hint_).info;
  }

  // Erases a present entry; returns its byte count (0 if absent).
  uint32_t erase(uint64_t seq) {
    const uint64_t pkt = pkt_of(seq);
    if (pkt < base_ || pkt >= end_) return 0;
    Slot& s = slot(pkt);
    if ((s.flags & kPresent) == 0) return 0;
    const uint32_t bytes = s.info.bytes;
    s.flags &= ~kPresent;
    --present_;
    present_bytes_ -= bytes;
    return bytes;
  }

  // --- retransmit queue ---

  void retx_insert(uint64_t seq) {
    const uint64_t pkt = pkt_of(seq);
    assert(pkt >= base_ && pkt < end_);
    Slot& s = slot(pkt);
    if ((s.flags & kRetx) != 0) return;
    s.flags |= kRetx;
    ++retx_;
    if (pkt < retx_hint_) retx_hint_ = pkt;
  }

  bool retx_contains(uint64_t seq) const {
    const uint64_t pkt = pkt_of(seq);
    if (pkt < base_ || pkt >= end_) return false;
    return (slot(pkt).flags & kRetx) != 0;
  }

  // Seq of the lowest queued retransmit; call only when !retx_empty().
  uint64_t retx_min_seq() const {
    advance_retx();
    return retx_hint_ * seg_;
  }

  // Pops the lowest queued retransmit. The slot is deliberately left
  // reserved (base never advances here): the caller immediately re-sends
  // this seq, re-inserting at the same slot.
  void retx_pop_lowest() {
    advance_retx();
    Slot& s = slot(retx_hint_);
    s.flags &= ~kRetx;
    --retx_;
    ++retx_hint_;
  }

  // Advances the ring floor past fully-cleared slots below `seq` (call
  // after the erase-below-cumulative-ACK loops; everything below the
  // cumulative ACK is unflagged by then, so the span stays window-bounded).
  void advance_floor(uint64_t seq) {
    const uint64_t limit = std::min(pkt_of(seq), end_);
    while (base_ < limit && slot(base_).flags == 0) ++base_;
    if (oldest_hint_ < base_) oldest_hint_ = base_;
    if (retx_hint_ < base_) retx_hint_ = base_;
  }

  // Ascending scan over present entries with seq < seq_limit;
  // `fn(seq, info)` returns false to stop early.
  template <typename Fn>
  void scan_present_below(uint64_t seq_limit, Fn&& fn) const {
    if (present_ == 0) return;
    advance_oldest();
    const uint64_t pkt_limit =
        std::min<uint64_t>(end_, (seq_limit + seg_ - 1) / seg_);
    for (uint64_t pkt = oldest_hint_; pkt < pkt_limit; ++pkt) {
      const Slot& s = slot(pkt);
      if ((s.flags & kPresent) == 0) continue;
      if (pkt * seg_ >= seq_limit) break;
      if (!fn(pkt * seg_, s.info)) return;
    }
  }

  // --- snapshot interop: the State structs keep the container types ---

  void export_state(std::map<uint64_t, SentInfo>* outstanding,
                    std::set<uint64_t>* retx_queue) const {
    for (uint64_t pkt = base_; pkt < end_; ++pkt) {
      const Slot& s = slot(pkt);
      if ((s.flags & kPresent) != 0) (*outstanding)[pkt * seg_] = s.info;
      if ((s.flags & kRetx) != 0) retx_queue->insert(pkt * seg_);
    }
  }

  void import_state(const std::map<uint64_t, SentInfo>& outstanding,
                    const std::set<uint64_t>& retx_queue) {
    clear();
    uint64_t lo = UINT64_MAX;
    for (const auto& [seq, info] : outstanding) {
      (void)info;
      lo = std::min(lo, pkt_of(seq));
    }
    for (uint64_t seq : retx_queue) lo = std::min(lo, pkt_of(seq));
    if (lo == UINT64_MAX) return;
    base_ = end_ = oldest_hint_ = retx_hint_ = lo;
    for (const auto& [seq, info] : outstanding) insert_or_assign(seq, info);
    for (uint64_t seq : retx_queue) {
      const uint64_t pkt = pkt_of(seq);
      if (pkt >= end_) {
        reserve_span(pkt + 1 - base_);
        end_ = pkt + 1;
      }
      Slot& s = slot(pkt);
      if ((s.flags & kRetx) == 0) {
        s.flags |= kRetx;
        ++retx_;
        if (pkt < retx_hint_) retx_hint_ = pkt;
      }
    }
  }

  void clear() {
    for (uint64_t pkt = base_; pkt < end_; ++pkt) slot(pkt).flags = 0;
    base_ = end_ = oldest_hint_ = retx_hint_ = 0;
    present_ = retx_ = 0;
    present_bytes_ = 0;
  }

 private:
  static constexpr size_t kInitialSlots = 1024;
  static constexpr uint8_t kPresent = 1;
  static constexpr uint8_t kRetx = 2;

  struct Slot {
    SentInfo info = {};
    uint8_t flags = 0;
  };

  uint64_t pkt_of(uint64_t seq) const { return seq / seg_; }
  Slot& slot(uint64_t pkt) { return slots_[pkt & mask_]; }
  const Slot& slot(uint64_t pkt) const { return slots_[pkt & mask_]; }

  void reserve_span(uint64_t span) {
    if (span <= slots_.size()) return;
    size_t cap = slots_.size();
    while (cap < span) cap *= 2;
    std::vector<Slot> grown(cap);
    for (uint64_t pkt = base_; pkt < end_; ++pkt) {
      grown[pkt & (cap - 1)] = slots_[pkt & mask_];
    }
    slots_ = std::move(grown);
    mask_ = cap - 1;
  }

  // Presence never reappears below the oldest present entry (new sends land
  // at the tail, retransmits replace slots whose flags are still set), so
  // this cursor is monotone and each slot is skipped at most once.
  void advance_oldest() const {
    while (oldest_hint_ < end_ &&
           (slot(oldest_hint_).flags & kPresent) == 0) {
      ++oldest_hint_;
    }
    assert(oldest_hint_ < end_);
  }
  // The retransmit cursor is only a lower bound — retx_insert may move it
  // back down — so it advances lazily from the last known floor.
  void advance_retx() const {
    while (retx_hint_ < end_ && (slot(retx_hint_).flags & kRetx) == 0) {
      ++retx_hint_;
    }
    assert(retx_hint_ < end_);
  }

  uint32_t seg_;
  std::vector<Slot> slots_;
  uint64_t mask_ = 0;
  uint64_t base_ = 0;  // ring floor: no flags below this pkt
  uint64_t end_ = 0;   // one past the highest flagged pkt
  size_t present_ = 0;
  size_t retx_ = 0;
  uint64_t present_bytes_ = 0;
  mutable uint64_t oldest_hint_ = 0;  // lowest possibly-present pkt
  mutable uint64_t retx_hint_ = 0;    // lowest possibly-retx pkt
};

}  // namespace ccstarve
