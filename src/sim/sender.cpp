#include "sim/sender.hpp"

#include <algorithm>
#include <cassert>

#include "sim/check_probe.hpp"
#include "sim/flight_probe.hpp"
#include "sim/obs_probe.hpp"

namespace ccstarve {

namespace {
constexpr TimeNs kMinRto = TimeNs::millis(200);
constexpr TimeNs kMaxRto = TimeNs::seconds(60);
}  // namespace

Sender::Sender(Simulator& sim, const Config& config, std::unique_ptr<Cca> cca,
               PacketSink data_path)
    : sim_(sim),
      config_(config),
      cca_(std::move(cca)),
      data_path_(data_path),
      scoreboard_(kMss) {
  assert(cca_ != nullptr);
  if (config_.table != nullptr) {
    table_ = config_.table;
    row_ = config_.row;
    assert(row_ < table_->size());
  } else {
    owned_table_ = std::make_unique<FlowTable>(1);
    table_ = owned_table_.get();
    row_ = 0;
  }
  pace_slot_ = &table_->pace_slots[row_];
  rto_slot_ = &table_->rto_slots[row_];
  persist_slot_ = &table_->persist_slots[row_];
  // Owned slots: the callback is emplaced once; arming re-inserts the node.
  pace_slot_->fn.emplace([this] {
    wakeup_scheduled_ = false;
    maybe_send();
  });
  rto_slot_->fn.emplace([this] { on_rto_slot_fire(); });
  persist_slot_->fn.emplace([this] { on_persist_fire(); });
  wnd_limit_ = config_.initial_wnd_limit;
  sync_cca_gauges();
}

Sender::~Sender() {
  sim_.disarm(pace_slot_);
  sim_.disarm(rto_slot_);
  sim_.disarm(persist_slot_);
}

void Sender::start(TimeNs at) {
  start_pending_ = true;
  start_at_ = at;
  start_seq_ = sim_.schedule_at(at, [this] {
    start_pending_ = false;
    started_ = true;
    table_->started[row_] = 1;
    start_time_ = sim_.now();
    pace_next_ = sim_.now();
    maybe_send();
  });
}

void Sender::maybe_send() {
  if (!started_ || !cca_) return;
  const TimeNs now = sim_.now();
  while (true) {
    const bool has_retx = !scoreboard_.retx_empty();
    // Effective window = min(cwnd, rwnd). The rwnd gate comes first so the
    // blocking gate is attributed to the receiver whenever the advertised
    // window (not congestion) is what stops the flow. Retransmissions are
    // always within the advertised window (it never retracts), so they
    // bypass both window gates exactly as before.
    if (!has_retx && !test_ignore_rwnd_ &&
        next_seq_col() + kMss > wnd_limit_) {
      set_gate(SendGate::kRwnd);
      maybe_arm_persist();
      return;  // receiver-blocked; a window update will re-invoke us
    }
    const uint64_t cwnd = std::min(cwnd_col(), config_.max_cwnd_bytes);
    if (!has_retx && inflight_col() + kMss > cwnd) {
      set_gate(SendGate::kCwnd);
      return;  // window-blocked; an ACK will re-invoke us
    }
    if (pace_next_ > now) {
      if (!wakeup_scheduled_) {
        wakeup_scheduled_ = true;
        wakeup_at_ = pace_next_;
        wakeup_seq_ = sim_.arm(pace_slot_, pace_next_);
      }
      set_gate(SendGate::kPacing);
      return;  // pacing-blocked
    }
    uint64_t seq;
    bool retx = false;
    if (has_retx) {
      seq = scoreboard_.retx_min_seq();
      scoreboard_.retx_pop_lowest();
      retx = true;
    } else {
      seq = next_seq_col();
      next_seq_col() += kMss;
    }
    set_gate(SendGate::kNone);
    send_segment(seq, retx);
    const Rate pr = pacing_col();
    pace_next_ = ccstarve::max(pace_next_, now) + pr.transmission_time(kMss);
  }
}

void Sender::set_gate(SendGate g) {
  const SendGate prev = gate_;
  const bool was_rwnd = prev == SendGate::kRwnd;
  gate_ = g;
  const bool is_rwnd = g == SendGate::kRwnd;
  if (was_rwnd != is_rwnd) {
    if (!is_rwnd) {
      // The window opened (or another gate took over): the persist cycle
      // starts fresh next time.
      persist_live_ = false;  // a queued slot fires as a no-op
      persist_backoff_ = 0;
    }
    if (ObsProbe* ob = sim_.telemetry()) {
      ob->on_send_gate(sim_.now(), config_.flow_id, g);
    }
  }
  if (prev != g) {
    // The flight recorder sees EVERY gate transition, not just the rwnd
    // boundary — the forensics binding-constraint timeline needs the full
    // cwnd/rwnd/pacing/none interval structure.
    if (FlightProbe* fp = sim_.flight()) {
      fp->send_gate(sim_.now(), config_.flow_id, prev, g);
    }
  }
}

void Sender::maybe_arm_persist() {
  // Only a true zero-window stall needs probing: while data is in flight
  // (or repairs are pending) the returning ACK stream doubles as the
  // window-update channel.
  if (persist_live_ || !scoreboard_.empty()) return;
  const TimeNs interval = ccstarve::min(
      rto_ * static_cast<double>(uint64_t{1} << persist_backoff_), kMaxRto);
  persist_live_ = true;
  persist_at_ = sim_.now() + interval;
  // Same coverage discipline as the RTO slot: while live, the owned slot is
  // queued at some time <= persist_at_; an early fire re-arms itself.
  if ((persist_slot_->flags & Event::kQueued) == 0) {
    persist_seq_ = sim_.arm(persist_slot_, persist_at_);
  } else if (persist_slot_->at > persist_at_) {
    sim_.disarm(persist_slot_);
    persist_seq_ = sim_.arm(persist_slot_, persist_at_);
  } else {
    persist_seq_ = persist_slot_->seq;
  }
}

void Sender::on_persist_fire() {
  if (!persist_live_) return;  // window opened since this slot was armed
  if (sim_.now() < persist_at_) {
    persist_seq_ = sim_.arm(persist_slot_, persist_at_);
    return;
  }
  persist_live_ = false;
  if (!started_ || !scoreboard_.empty()) return;
  if (test_ignore_rwnd_ || next_seq_col() + kMss <= wnd_limit_) {
    maybe_send();  // a window update raced the timer; just send
    return;
  }
  send_probe();
  if (persist_backoff_ < 30) ++persist_backoff_;
  maybe_arm_persist();
}

void Sender::send_probe() {
  Packet pkt;
  pkt.flow = config_.flow_id;
  pkt.seq = next_seq_col();  // the first byte beyond the advertised window
  pkt.bytes = 40;            // header-sized, like a 1-byte TCP window probe
  pkt.is_probe = true;
  pkt.data_sent_at = sim_.now();
  ++probes_sent_;
  if (TraceRecorder* tr = sim_.tracer()) {
    tr->record('p', sim_.now(), pkt.flow, pkt.seq,
               static_cast<uint64_t>(persist_backoff_));
  }
  if (CheckProbe* ck = sim_.checker()) ck->on_segment_sent(sim_.now(), pkt);
  if (ObsProbe* ob = sim_.telemetry()) ob->on_segment_sent(sim_.now(), pkt);
  if (FlightProbe* fp = sim_.flight()) {
    fp->persist_probe(sim_.now(), pkt.flow, pkt.seq, persist_backoff_);
  }
  data_path_.handle(pkt);
}

void Sender::send_segment(uint64_t seq, bool retransmit) {
  Packet pkt;
  pkt.flow = config_.flow_id;
  pkt.seq = seq;
  pkt.bytes = kMss;
  pkt.is_retransmit = retransmit;
  pkt.data_sent_at = sim_.now();

  // A retransmitted segment replaces its scoreboard entry; inflight only
  // grows when the segment was not already outstanding.
  const bool inserted = scoreboard_.insert_or_assign(
      seq, SentInfo{sim_.now(), pkt.bytes, delivered_col()});
  if (inserted) inflight_col() += pkt.bytes;
  ++sent_col();

  const uint64_t cwnd_before = cwnd_col();
  cca_->on_packet_sent(sim_.now(), seq, pkt.bytes, inflight_col(),
                       retransmit);
  sync_cca_gauges();
  if (TraceRecorder* tr = sim_.tracer()) {
    tr->record('S', sim_.now(), pkt.flow, pkt.seq, retransmit ? 1 : 0);
  }
  if (CheckProbe* ck = sim_.checker()) ck->on_segment_sent(sim_.now(), pkt);
  if (ObsProbe* ob = sim_.telemetry()) ob->on_segment_sent(sim_.now(), pkt);
  if (FlightProbe* fp = sim_.flight()) {
    fp->segment_sent(sim_.now(), pkt);
    if (cwnd_col() != cwnd_before) {
      fp->cwnd_change(sim_.now(), pkt.flow, cwnd_before, cwnd_col(),
                         CwndReason::kSent);
    }
  }
  arm_rto();
  data_path_.handle(pkt);
}

void Sender::handle(Packet pkt) {
  if (!pkt.is_ack || pkt.flow != config_.flow_id) return;
  on_ack_packet(pkt);
}

void Sender::update_wnd_limit(const Packet& ack) {
  // max() because ACKs can arrive reordered through the ACK jitter box and
  // the receiver's limit itself is monotone.
  wnd_limit_ = std::max(
      wnd_limit_, std::min(kInfiniteWnd, ack.ack_cum + ack.ack_wnd));
}

void Sender::on_ack_packet(const Packet& ack) {
  const TimeNs now = sim_.now();
  update_wnd_limit(ack);
  if (ack.ack_wnd_only) {
    // Pure window update (persist-probe reply or window-update wakeup):
    // no data is acknowledged, so RTT/dupack/CCA/scoreboard processing
    // must not run — a burst of these must not fake a fast retransmit.
    if (CheckProbe* ck = sim_.checker()) {
      ck->on_wnd_ack(now, config_.flow_id, ack);
    }
    maybe_send();
    return;
  }
  const TimeNs rtt = now - ack.data_sent_at;

  // RTT estimators (RFC 6298 shape).
  if (srtt_ == TimeNs::zero()) {
    srtt_ = rtt;
    rttvar_ = rtt / 2.0;
  } else {
    const TimeNs err = rtt > srtt_ ? rtt - srtt_ : srtt_ - rtt;
    rttvar_ = rttvar_ * 0.75 + err * 0.25;
    srtt_ = srtt_ * 0.875 + rtt * 0.125;
  }
  // The 1.25 multiplier keeps the timer clear of the steady-state boundary
  // (with constant RTT, rttvar decays to zero and srtt alone would make the
  // deadline coincide with the expected ACK arrival).
  rto_ = ccstarve::min(ccstarve::max(srtt_ * 1.25 + 4.0 * rttvar_, kMinRto),
                       kMaxRto);

  // Scoreboard update: everything below the cumulative ACK, plus the
  // specifically-acknowledged segment (1-segment SACK).
  uint64_t newly_acked = 0;
  uint64_t delivered_at_send = 0;
  if (const SentInfo* info = scoreboard_.find(ack.ack_seq)) {
    delivered_at_send = info->delivered_at_send;
  }
  while (!scoreboard_.empty() && scoreboard_.oldest_seq() < ack.ack_cum) {
    const uint64_t oldest = scoreboard_.oldest_seq();
    const uint32_t bytes = scoreboard_.erase(oldest);
    newly_acked += bytes;
    inflight_col() -= bytes;
  }
  if (scoreboard_.contains(ack.ack_seq)) {
    const uint32_t bytes = scoreboard_.erase(ack.ack_seq);
    newly_acked += bytes;
    inflight_col() -= bytes;
  }
  // Drop pending retransmits that the ACK made moot.
  while (!scoreboard_.retx_empty() &&
         scoreboard_.retx_min_seq() < ack.ack_cum) {
    scoreboard_.retx_pop_lowest();
  }
  scoreboard_.advance_floor(ack.ack_cum);

  if (ack.ack_seq > max_sacked_) max_sacked_ = ack.ack_seq;

  const uint64_t prev_cum = cum_col();
  const bool advanced = ack.ack_cum > prev_cum;
  if (advanced) {
    cum_col() = ack.ack_cum;
    backoff_ = 0;
    if (in_recovery_) {
      if (cum_col() >= recovery_point_) {
        in_recovery_ = false;
        dupacks_ = 0;
      } else {
        // Partial ACK: repair the known holes (SACK-style), starting with
        // the one at the new cumulative point.
        queue_retransmit(cum_col());
        repair_holes(now);
      }
    } else {
      dupacks_ = 0;
    }
  } else if (ack.ack_seq >= ack.ack_cum) {
    // Duplicate ACK carrying evidence of out-of-order arrival.
    ++dupacks_;
    if (in_recovery_) repair_holes(now);
    if (dupacks_ == 3 && !in_recovery_) {
      in_recovery_ = true;
      recovery_point_ = next_seq_col();
      ++stats_.fast_retransmits;
      queue_retransmit(ack.ack_cum);
      repair_holes(now);
      LossSample loss;
      loss.now = now;
      loss.lost_bytes = kMss;
      loss.inflight_bytes = inflight_col();
      loss.is_timeout = false;
      const uint64_t cwnd_before = cwnd_col();
      cca_->on_loss(loss);
      sync_cca_gauges();
      if (FlightProbe* fp = sim_.flight()) {
        if (cwnd_col() != cwnd_before) {
          fp->cwnd_change(now, config_.flow_id, cwnd_before, cwnd_col(),
                             CwndReason::kLoss);
        }
      }
    }
  }

  if (cum_col() > delivered_col()) delivered_col() = cum_col();

  AckSample sample;
  sample.now = now;
  sample.rtt = rtt;
  sample.sent_at = ack.data_sent_at;
  sample.acked_seq = ack.ack_seq;
  sample.delivered_at_send = delivered_at_send;
  sample.newly_acked_bytes = newly_acked;
  sample.delivered_bytes = delivered_col();
  sample.inflight_bytes = inflight_col();
  sample.is_duplicate = !advanced;
  sample.in_recovery = in_recovery_;
  sample.ece = ack.ack_ece;
  const uint64_t cwnd_before = cwnd_col();
  cca_->on_ack(sample);
  sync_cca_gauges();
  if (CheckProbe* ck = sim_.checker()) {
    ck->on_ack_sample(now, config_.flow_id, rtt, cwnd_col(), pacing_col());
  }
  if (ObsProbe* ob = sim_.telemetry()) {
    ob->on_ack_sample(now, config_.flow_id, rtt, cwnd_col(), pacing_col(),
                      delivered_col());
  }
  if (FlightProbe* fp = sim_.flight()) {
    if (cwnd_col() != cwnd_before) {
      fp->cwnd_change(now, config_.flow_id, cwnd_before, cwnd_col(),
                         CwndReason::kAck);
    }
    fp->ack_sample(now, config_.flow_id, rtt, cwnd_col(), pacing_col(),
                      wnd_limit_, inflight_col(), delivered_col());
  }

  record_stats(now, rtt);
  arm_rto();
  maybe_send();
}

void Sender::queue_retransmit(uint64_t seq) {
  if (scoreboard_.contains(seq)) scoreboard_.retx_insert(seq);
}

void Sender::repair_holes(TimeNs now) {
  // Segments below the highest SACK that have been outstanding for an RTT
  // are presumed lost. The per-call cap bounds ACK-processing cost.
  const TimeNs age_limit = srtt_ > TimeNs::zero() ? srtt_ : rto_;
  int budget = 128;
  std::vector<uint64_t> to_queue;
  scoreboard_.scan_present_below(
      max_sacked_, [&](uint64_t seq, const SentInfo& info) {
        if (budget == 0) return false;
        if (now - info.sent_at > age_limit &&
            !scoreboard_.retx_contains(seq)) {
          to_queue.push_back(seq);
          --budget;
        }
        return true;
      });
  for (uint64_t seq : to_queue) scoreboard_.retx_insert(seq);
}

void Sender::arm_rto() {
  if (scoreboard_.empty()) {
    ++rto_epoch_;  // cancel (the slot fires as a no-op if still queued)
    rto_live_ = false;
    return;
  }
  ++rto_epoch_;
  const TimeNs backoff_rto = ccstarve::min(
      rto_ * static_cast<double>(uint64_t{1} << backoff_), kMaxRto);
  // Anchor the deadline to the oldest outstanding transmission, not to the
  // last ACK: a busy ACK stream must not postpone the timeout of a head-of-
  // line hole forever.
  const TimeNs deadline =
      ccstarve::max(scoreboard_.oldest_info().sent_at + backoff_rto,
                    sim_.now() + TimeNs::millis(1));
  rto_live_ = true;
  rto_at_ = deadline;
  // Coverage invariant: while rto_live_, the owned slot is queued at some
  // time <= rto_at_. A slot queued early fires, notices the deadline moved,
  // and re-arms itself — so the common per-ACK deadline extension schedules
  // nothing at all.
  if ((rto_slot_->flags & Event::kQueued) == 0) {
    rto_seq_ = sim_.arm(rto_slot_, deadline);
  } else if (rto_slot_->at > deadline) {
    sim_.disarm(rto_slot_);
    rto_seq_ = sim_.arm(rto_slot_, deadline);
  } else {
    rto_seq_ = rto_slot_->seq;
  }
}

void Sender::on_rto_slot_fire() {
  if (!rto_live_) return;  // cancelled after this slot was armed
  if (sim_.now() < rto_at_) {
    // Deadline was pushed later since the slot was armed; restore coverage.
    rto_seq_ = sim_.arm(rto_slot_, rto_at_);
    return;
  }
  rto_live_ = false;
  if (scoreboard_.empty()) return;
  const TimeNs backoff_rto = ccstarve::min(
      rto_ * static_cast<double>(uint64_t{1} << backoff_), kMaxRto);
  if (sim_.now() - scoreboard_.oldest_info().sent_at < backoff_rto) {
    arm_rto();  // the head was retransmitted recently; re-check later
    return;
  }
  rto_timeout_action();
}

void Sender::rto_timeout_action() {
  ++stats_.timeouts;
  ++backoff_;
  dupacks_ = 0;
  in_recovery_ = false;
  queue_retransmit(scoreboard_.oldest_seq());
  LossSample loss;
  loss.now = sim_.now();
  loss.lost_bytes = scoreboard_.oldest_info().bytes;
  loss.inflight_bytes = inflight_col();
  loss.is_timeout = true;
  const uint64_t cwnd_before = cwnd_col();
  cca_->on_loss(loss);
  sync_cca_gauges();
  if (FlightProbe* fp = sim_.flight()) {
    fp->rto(sim_.now(), config_.flow_id, backoff_);
    if (cwnd_col() != cwnd_before) {
      fp->cwnd_change(sim_.now(), config_.flow_id, cwnd_before, cwnd_col(),
                         CwndReason::kRto);
    }
  }
  arm_rto();
  maybe_send();
}

Sender::State Sender::capture(std::vector<PendingEvent>* events) const {
  State st;
  st.started = started_;
  st.start_time = start_time_;
  st.next_seq = table_->next_seq[row_];
  scoreboard_.export_state(&st.outstanding, &st.retx_queue);
  st.inflight_bytes = table_->inflight_bytes[row_];
  st.cum_acked = table_->cum_acked[row_];
  st.delivered = table_->delivered[row_];
  st.packets_sent = table_->packets_sent[row_];
  st.dupacks = dupacks_;
  st.in_recovery = in_recovery_;
  st.recovery_point = recovery_point_;
  st.max_sacked = max_sacked_;
  st.pace_next = pace_next_;
  st.wakeup_scheduled = wakeup_scheduled_;
  st.srtt = srtt_;
  st.rttvar = rttvar_;
  st.rto = rto_;
  st.backoff = backoff_;
  st.rto_epoch = rto_epoch_;
  st.stats = stats_;
  st.last_stats_at = last_stats_at_;
  st.start_pending = start_pending_;
  st.start_at = start_at_;
  st.rto_live = rto_live_;
  st.rto_at = rto_at_;
  st.wakeup_at = wakeup_at_;
  st.wnd_limit = wnd_limit_;
  st.probes_sent = probes_sent_;
  st.persist_backoff = persist_backoff_;
  st.persist_live = persist_live_;
  st.persist_at = persist_at_;
  st.gate = gate_;
  const uint32_t flow = config_.flow_id;
  if (start_pending_) {
    PendingEvent e;
    e.at = start_at_;
    e.seq = start_seq_;
    e.kind = PendingEvent::Kind::kSenderStart;
    e.flow = flow;
    events->push_back(e);
  }
  if (wakeup_scheduled_) {
    PendingEvent e;
    e.at = wakeup_at_;
    e.seq = wakeup_seq_;
    e.kind = PendingEvent::Kind::kSenderPace;
    e.flow = flow;
    events->push_back(e);
  }
  if ((rto_slot_->flags & Event::kQueued) != 0) {
    // Capture the slot at its ACTUAL queued time, which may be earlier than
    // the live deadline (coverage invariant) or stale after a cancel. The
    // fork must replay the early/stale fire and its re-arm so it consumes
    // the same insertion seqs as the parent's own continuation; the true
    // deadline travels in State (rto_live/rto_at).
    PendingEvent e;
    e.at = rto_slot_->at;
    e.seq = rto_slot_->seq;
    e.kind = PendingEvent::Kind::kSenderRto;
    e.flow = flow;
    events->push_back(e);
  }
  if ((persist_slot_->flags & Event::kQueued) != 0) {
    // Same queued-time capture as the RTO slot; the true deadline travels
    // in State (persist_live/persist_at).
    PendingEvent e;
    e.at = persist_slot_->at;
    e.seq = persist_slot_->seq;
    e.kind = PendingEvent::Kind::kSenderPersist;
    e.flow = flow;
    events->push_back(e);
  }
  return st;
}

void Sender::restore(const State& st) {
  started_ = st.started;
  table_->started[row_] = st.started ? 1 : 0;
  start_time_ = st.start_time;
  table_->next_seq[row_] = st.next_seq;
  scoreboard_.import_state(st.outstanding, st.retx_queue);
  table_->inflight_bytes[row_] = st.inflight_bytes;
  table_->cum_acked[row_] = st.cum_acked;
  table_->delivered[row_] = st.delivered;
  table_->packets_sent[row_] = st.packets_sent;
  dupacks_ = st.dupacks;
  in_recovery_ = st.in_recovery;
  recovery_point_ = st.recovery_point;
  max_sacked_ = st.max_sacked;
  pace_next_ = st.pace_next;
  wakeup_scheduled_ = st.wakeup_scheduled;
  srtt_ = st.srtt;
  rttvar_ = st.rttvar;
  rto_ = st.rto;
  backoff_ = st.backoff;
  rto_epoch_ = st.rto_epoch;
  stats_ = st.stats;
  last_stats_at_ = st.last_stats_at;
  start_pending_ = st.start_pending;
  start_at_ = st.start_at;
  rto_live_ = st.rto_live;
  rto_at_ = st.rto_at;
  wakeup_at_ = st.wakeup_at;
  wnd_limit_ = st.wnd_limit;
  probes_sent_ = st.probes_sent;
  persist_backoff_ = st.persist_backoff;
  persist_live_ = st.persist_live;
  persist_at_ = st.persist_at;
  gate_ = st.gate;
  if (cca_ != nullptr) sync_cca_gauges();
}

void Sender::restore_event(const PendingEvent& e) {
  switch (e.kind) {
    case PendingEvent::Kind::kSenderStart:
      // A fork may move a not-yet-started flow's start time; everything
      // else about the pending event is re-created as start() would.
      start(e.at);
      break;
    case PendingEvent::Kind::kSenderPace:
      wakeup_at_ = e.at;
      wakeup_seq_ = sim_.arm(pace_slot_, e.at);
      break;
    case PendingEvent::Kind::kSenderRto:
      // restore() already set rto_live_/rto_at_ (the true deadline); e.at is
      // the slot's queued time, which may be earlier or stale-cancelled.
      rto_seq_ = sim_.arm(rto_slot_, e.at);
      break;
    case PendingEvent::Kind::kSenderPersist:
      // restore() already set persist_live_/persist_at_.
      persist_seq_ = sim_.arm(persist_slot_, e.at);
      break;
    default:
      assert(false && "not a sender event");
  }
}

void Sender::record_stats(TimeNs now, TimeNs rtt) {
  if (last_stats_at_ >= TimeNs::zero() &&
      now - last_stats_at_ < config_.stats_interval) {
    return;
  }
  last_stats_at_ = now;
  stats_.rtt_seconds.add(now, rtt.to_seconds());
  stats_.delivered_bytes.add(now, static_cast<double>(delivered_col()));
  stats_.cwnd_bytes.add(now, static_cast<double>(cwnd_col()));
  const Rate pr = pacing_col();
  stats_.pacing_mbps.add(now, pr.is_infinite() ? -1.0 : pr.to_mbps());
}

}  // namespace ccstarve
