#include "sim/sender.hpp"

#include <algorithm>
#include <cassert>

#include "sim/check_probe.hpp"
#include "sim/obs_probe.hpp"

namespace ccstarve {

namespace {
constexpr TimeNs kMinRto = TimeNs::millis(200);
constexpr TimeNs kMaxRto = TimeNs::seconds(60);
}  // namespace

Sender::Sender(Simulator& sim, const Config& config, std::unique_ptr<Cca> cca,
               PacketSink data_path)
    : sim_(sim), config_(config), cca_(std::move(cca)), data_path_(data_path) {
  assert(cca_ != nullptr);
}

void Sender::start(TimeNs at) {
  start_pending_ = true;
  start_at_ = at;
  start_seq_ = sim_.schedule_at(at, [this] {
    start_pending_ = false;
    started_ = true;
    start_time_ = sim_.now();
    pace_next_ = sim_.now();
    maybe_send();
  });
}

void Sender::maybe_send() {
  if (!started_ || !cca_) return;
  const TimeNs now = sim_.now();
  while (true) {
    const bool has_retx = !retx_queue_.empty();
    const uint64_t cwnd =
        std::min(cca_->cwnd_bytes(), config_.max_cwnd_bytes);
    if (!has_retx && inflight_bytes_ + kMss > cwnd) {
      return;  // window-blocked; an ACK will re-invoke us
    }
    if (pace_next_ > now) {
      if (!wakeup_scheduled_) {
        wakeup_scheduled_ = true;
        wakeup_at_ = pace_next_;
        wakeup_seq_ = sim_.schedule_at(pace_next_, [this] {
          wakeup_scheduled_ = false;
          maybe_send();
        });
      }
      return;  // pacing-blocked
    }
    uint64_t seq;
    bool retx = false;
    if (has_retx) {
      seq = *retx_queue_.begin();
      retx_queue_.erase(retx_queue_.begin());
      retx = true;
    } else {
      seq = next_seq_;
      next_seq_ += kMss;
    }
    send_segment(seq, retx);
    const Rate pr = cca_->pacing_rate();
    pace_next_ = ccstarve::max(pace_next_, now) + pr.transmission_time(kMss);
  }
}

void Sender::send_segment(uint64_t seq, bool retransmit) {
  Packet pkt;
  pkt.flow = config_.flow_id;
  pkt.seq = seq;
  pkt.bytes = kMss;
  pkt.is_retransmit = retransmit;
  pkt.data_sent_at = sim_.now();

  // A retransmitted segment replaces its scoreboard entry; inflight only
  // grows when the segment was not already outstanding.
  auto [it, inserted] = outstanding_.insert_or_assign(
      seq, SentInfo{sim_.now(), pkt.bytes, delivered_});
  (void)it;
  if (inserted) inflight_bytes_ += pkt.bytes;
  ++packets_sent_;

  cca_->on_packet_sent(sim_.now(), seq, pkt.bytes, inflight_bytes_,
                        retransmit);
  if (TraceRecorder* tr = sim_.tracer()) {
    tr->record('S', sim_.now(), pkt.flow, pkt.seq, retransmit ? 1 : 0);
  }
  if (CheckProbe* ck = sim_.checker()) ck->on_segment_sent(sim_.now(), pkt);
  if (ObsProbe* ob = sim_.telemetry()) ob->on_segment_sent(sim_.now(), pkt);
  arm_rto();
  data_path_.handle(pkt);
}

void Sender::handle(Packet pkt) {
  if (!pkt.is_ack || pkt.flow != config_.flow_id) return;
  on_ack_packet(pkt);
}

void Sender::on_ack_packet(const Packet& ack) {
  const TimeNs now = sim_.now();
  const TimeNs rtt = now - ack.data_sent_at;

  // RTT estimators (RFC 6298 shape).
  if (srtt_ == TimeNs::zero()) {
    srtt_ = rtt;
    rttvar_ = rtt / 2.0;
  } else {
    const TimeNs err = rtt > srtt_ ? rtt - srtt_ : srtt_ - rtt;
    rttvar_ = rttvar_ * 0.75 + err * 0.25;
    srtt_ = srtt_ * 0.875 + rtt * 0.125;
  }
  // The 1.25 multiplier keeps the timer clear of the steady-state boundary
  // (with constant RTT, rttvar decays to zero and srtt alone would make the
  // deadline coincide with the expected ACK arrival).
  rto_ = ccstarve::min(ccstarve::max(srtt_ * 1.25 + 4.0 * rttvar_, kMinRto),
                       kMaxRto);

  // Scoreboard update: everything below the cumulative ACK, plus the
  // specifically-acknowledged segment (1-segment SACK).
  uint64_t newly_acked = 0;
  uint64_t delivered_at_send = 0;
  if (auto it = outstanding_.find(ack.ack_seq); it != outstanding_.end()) {
    delivered_at_send = it->second.delivered_at_send;
  }
  while (!outstanding_.empty() && outstanding_.begin()->first < ack.ack_cum) {
    newly_acked += outstanding_.begin()->second.bytes;
    inflight_bytes_ -= outstanding_.begin()->second.bytes;
    outstanding_.erase(outstanding_.begin());
  }
  if (auto it = outstanding_.find(ack.ack_seq); it != outstanding_.end()) {
    newly_acked += it->second.bytes;
    inflight_bytes_ -= it->second.bytes;
    outstanding_.erase(it);
  }
  // Drop pending retransmits that the ACK made moot.
  while (!retx_queue_.empty() && *retx_queue_.begin() < ack.ack_cum) {
    retx_queue_.erase(retx_queue_.begin());
  }

  if (ack.ack_seq > max_sacked_) max_sacked_ = ack.ack_seq;

  const uint64_t prev_cum = cum_acked_;
  const bool advanced = ack.ack_cum > prev_cum;
  if (advanced) {
    cum_acked_ = ack.ack_cum;
    backoff_ = 0;
    if (in_recovery_) {
      if (cum_acked_ >= recovery_point_) {
        in_recovery_ = false;
        dupacks_ = 0;
      } else {
        // Partial ACK: repair the known holes (SACK-style), starting with
        // the one at the new cumulative point.
        queue_retransmit(cum_acked_);
        repair_holes(now);
      }
    } else {
      dupacks_ = 0;
    }
  } else if (ack.ack_seq >= ack.ack_cum) {
    // Duplicate ACK carrying evidence of out-of-order arrival.
    ++dupacks_;
    if (in_recovery_) repair_holes(now);
    if (dupacks_ == 3 && !in_recovery_) {
      in_recovery_ = true;
      recovery_point_ = next_seq_;
      ++stats_.fast_retransmits;
      queue_retransmit(ack.ack_cum);
      repair_holes(now);
      LossSample loss;
      loss.now = now;
      loss.lost_bytes = kMss;
      loss.inflight_bytes = inflight_bytes_;
      loss.is_timeout = false;
      cca_->on_loss(loss);
    }
  }

  delivered_ = cum_acked_ > delivered_ ? cum_acked_ : delivered_;

  AckSample sample;
  sample.now = now;
  sample.rtt = rtt;
  sample.sent_at = ack.data_sent_at;
  sample.acked_seq = ack.ack_seq;
  sample.delivered_at_send = delivered_at_send;
  sample.newly_acked_bytes = newly_acked;
  sample.delivered_bytes = delivered_;
  sample.inflight_bytes = inflight_bytes_;
  sample.is_duplicate = !advanced;
  sample.in_recovery = in_recovery_;
  sample.ece = ack.ack_ece;
  cca_->on_ack(sample);
  if (CheckProbe* ck = sim_.checker()) {
    ck->on_ack_sample(now, config_.flow_id, rtt, cca_->cwnd_bytes(),
                      cca_->pacing_rate());
  }
  if (ObsProbe* ob = sim_.telemetry()) {
    ob->on_ack_sample(now, config_.flow_id, rtt, cca_->cwnd_bytes(),
                      cca_->pacing_rate(), delivered_);
  }

  record_stats(now, rtt);
  arm_rto();
  maybe_send();
}

void Sender::queue_retransmit(uint64_t seq) {
  if (outstanding_.count(seq)) retx_queue_.insert(seq);
}

void Sender::repair_holes(TimeNs now) {
  // Segments below the highest SACK that have been outstanding for an RTT
  // are presumed lost. The per-call cap bounds ACK-processing cost.
  const TimeNs age_limit = srtt_ > TimeNs::zero() ? srtt_ : rto_;
  int budget = 128;
  for (const auto& [seq, info] : outstanding_) {
    if (seq >= max_sacked_ || budget == 0) break;
    if (now - info.sent_at > age_limit && !retx_queue_.count(seq)) {
      retx_queue_.insert(seq);
      --budget;
    }
  }
}

void Sender::arm_rto() {
  if (outstanding_.empty()) {
    ++rto_epoch_;  // cancel
    rto_live_ = false;
    return;
  }
  const uint64_t epoch = ++rto_epoch_;
  const TimeNs backoff_rto =
      ccstarve::min(rto_ * static_cast<double>(uint64_t{1} << backoff_), kMaxRto);
  // Anchor the deadline to the oldest outstanding transmission, not to the
  // last ACK: a busy ACK stream must not postpone the timeout of a head-of-
  // line hole forever.
  const TimeNs deadline = ccstarve::max(
      outstanding_.begin()->second.sent_at + backoff_rto,
      sim_.now() + TimeNs::millis(1));
  rto_live_ = true;
  rto_at_ = deadline;
  rto_seq_ = sim_.schedule_at(deadline, [this, epoch] { on_rto_fire(epoch); });
}

void Sender::on_rto_fire(uint64_t epoch) {
  if (epoch == rto_epoch_) rto_live_ = false;  // the live event is firing
  if (epoch != rto_epoch_ || outstanding_.empty()) return;
  const TimeNs backoff_rto =
      ccstarve::min(rto_ * static_cast<double>(uint64_t{1} << backoff_), kMaxRto);
  if (sim_.now() - outstanding_.begin()->second.sent_at < backoff_rto) {
    arm_rto();  // the head was retransmitted recently; re-check later
    return;
  }
  ++stats_.timeouts;
  ++backoff_;
  dupacks_ = 0;
  in_recovery_ = false;
  queue_retransmit(outstanding_.begin()->first);
  LossSample loss;
  loss.now = sim_.now();
  loss.lost_bytes = outstanding_.begin()->second.bytes;
  loss.inflight_bytes = inflight_bytes_;
  loss.is_timeout = true;
  cca_->on_loss(loss);
  arm_rto();
  maybe_send();
}

Sender::State Sender::capture(std::vector<PendingEvent>* events) const {
  State st;
  st.started = started_;
  st.start_time = start_time_;
  st.next_seq = next_seq_;
  st.outstanding = outstanding_;
  st.inflight_bytes = inflight_bytes_;
  st.retx_queue = retx_queue_;
  st.cum_acked = cum_acked_;
  st.delivered = delivered_;
  st.packets_sent = packets_sent_;
  st.dupacks = dupacks_;
  st.in_recovery = in_recovery_;
  st.recovery_point = recovery_point_;
  st.max_sacked = max_sacked_;
  st.pace_next = pace_next_;
  st.wakeup_scheduled = wakeup_scheduled_;
  st.srtt = srtt_;
  st.rttvar = rttvar_;
  st.rto = rto_;
  st.backoff = backoff_;
  st.rto_epoch = rto_epoch_;
  st.stats = stats_;
  st.last_stats_at = last_stats_at_;
  st.start_pending = start_pending_;
  st.start_at = start_at_;
  st.rto_live = rto_live_;
  st.rto_at = rto_at_;
  st.wakeup_at = wakeup_at_;
  const uint32_t flow = config_.flow_id;
  if (start_pending_) {
    PendingEvent e;
    e.at = start_at_;
    e.seq = start_seq_;
    e.kind = PendingEvent::Kind::kSenderStart;
    e.flow = flow;
    events->push_back(e);
  }
  if (wakeup_scheduled_) {
    PendingEvent e;
    e.at = wakeup_at_;
    e.seq = wakeup_seq_;
    e.kind = PendingEvent::Kind::kSenderPace;
    e.flow = flow;
    events->push_back(e);
  }
  if (rto_live_) {
    PendingEvent e;
    e.at = rto_at_;
    e.seq = rto_seq_;
    e.kind = PendingEvent::Kind::kSenderRto;
    e.flow = flow;
    events->push_back(e);
  }
  return st;
}

void Sender::restore(const State& st) {
  started_ = st.started;
  start_time_ = st.start_time;
  next_seq_ = st.next_seq;
  outstanding_ = st.outstanding;
  inflight_bytes_ = st.inflight_bytes;
  retx_queue_ = st.retx_queue;
  cum_acked_ = st.cum_acked;
  delivered_ = st.delivered;
  packets_sent_ = st.packets_sent;
  dupacks_ = st.dupacks;
  in_recovery_ = st.in_recovery;
  recovery_point_ = st.recovery_point;
  max_sacked_ = st.max_sacked;
  pace_next_ = st.pace_next;
  wakeup_scheduled_ = st.wakeup_scheduled;
  srtt_ = st.srtt;
  rttvar_ = st.rttvar;
  rto_ = st.rto;
  backoff_ = st.backoff;
  rto_epoch_ = st.rto_epoch;
  stats_ = st.stats;
  last_stats_at_ = st.last_stats_at;
  start_pending_ = st.start_pending;
  start_at_ = st.start_at;
  rto_live_ = st.rto_live;
  rto_at_ = st.rto_at;
  wakeup_at_ = st.wakeup_at;
}

void Sender::restore_event(const PendingEvent& e) {
  switch (e.kind) {
    case PendingEvent::Kind::kSenderStart:
      // A fork may move a not-yet-started flow's start time; everything
      // else about the pending event is re-created as start() would.
      start(e.at);
      break;
    case PendingEvent::Kind::kSenderPace:
      wakeup_at_ = e.at;
      wakeup_seq_ = sim_.schedule_at(e.at, [this] {
        wakeup_scheduled_ = false;
        maybe_send();
      });
      break;
    case PendingEvent::Kind::kSenderRto: {
      const uint64_t epoch = rto_epoch_;
      rto_at_ = e.at;
      rto_seq_ = sim_.schedule_at(e.at, [this, epoch] { on_rto_fire(epoch); });
      break;
    }
    default:
      assert(false && "not a sender event");
  }
}

void Sender::record_stats(TimeNs now, TimeNs rtt) {
  if (last_stats_at_ >= TimeNs::zero() &&
      now - last_stats_at_ < config_.stats_interval) {
    return;
  }
  last_stats_at_ = now;
  stats_.rtt_seconds.add(now, rtt.to_seconds());
  stats_.delivered_bytes.add(now, static_cast<double>(delivered_));
  stats_.cwnd_bytes.add(now, static_cast<double>(cca_->cwnd_bytes()));
  const Rate pr = cca_->pacing_rate();
  stats_.pacing_mbps.add(now, pr.is_infinite() ? -1.0 : pr.to_mbps());
}

}  // namespace ccstarve
