// Reliable, always-backlogged sender endpoint.
//
// Implements the transport machinery the CCAs sit on: fixed-MSS
// segmentation, a scoreboard with cumulative + 1-segment-SACK accounting,
// duplicate-ACK fast retransmit with NewReno-style recovery, a
// retransmission timeout with exponential backoff, and dual cwnd/pacing
// gating so both window-based (Vegas, Cubic, ...) and rate-based (BBR, PCC,
// ...) algorithms run on the same code path.
//
// Receiver-side flow control: every ACK carries an advertised window and the
// sender sends only within the effective window min(cwnd, rwnd) — new data
// stops at wnd_limit = max over ACKs of (ack_cum + ack_wnd), which is
// monotone because the receiver's window never retracts. A zero window with
// nothing in flight arms a persist timer (a fourth owned FlowTable slot)
// whose exponentially backed-off probes elicit pure window updates; probes
// are invisible to the CCA, the scoreboard, and the packets_sent column.
// With the default wnd_limit = kInfiniteWnd all of it is dead code on the
// hot path (one always-false compare), which keeps golden digests intact.
//
// Hot per-flow state lives in a FlowTable row (sim/flow_table.hpp): the
// inflight/cum-ACK/next-seq/packets-sent counters and the cwnd/pacing CCA
// mirrors are dense columns shared across a scenario's flows, and the
// pacing-wakeup and RTO timers are flat owned Event slots re-armed in place
// (no pool traffic per ACK). A standalone Sender owns a private single-row
// table, so unit-test construction is unchanged.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>

#include "cc/cca.hpp"
#include "sim/flow_table.hpp"
#include "sim/packet.hpp"
#include "sim/scoreboard.hpp"
#include "sim/simulator.hpp"
#include "sim/snapshot.hpp"
#include "util/series.hpp"
#include "util/time.hpp"

namespace ccstarve {

// Per-flow measurement record. Values are sampled on every ACK (optionally
// throttled); RTTs are in seconds on the series' value axis.
struct FlowStats {
  TimeSeries rtt_seconds;
  TimeSeries delivered_bytes;  // cumulative in-order bytes vs time
  TimeSeries cwnd_bytes;
  TimeSeries pacing_mbps;
  uint64_t fast_retransmits = 0;
  uint64_t timeouts = 0;
};

class Sender final : public PacketHandler {
 public:
  struct Config {
    uint32_t flow_id = 0;
    // Record at most one stats sample per this interval (zero = every ACK).
    TimeNs stats_interval = TimeNs::zero();
    // Hard cap on the window regardless of the CCA (safety valve for
    // strong-model experiments where throughput legitimately diverges).
    uint64_t max_cwnd_bytes = uint64_t{1} << 40;
    // Receive window known before the first ACK (the peer's buffer size, as
    // a handshake would advertise it). kInfiniteWnd = no flow control.
    uint64_t initial_wnd_limit = kInfiniteWnd;
    // Shared flow table + this sender's row. Null: the sender owns a
    // private single-row table (standalone/unit-test construction).
    FlowTable* table = nullptr;
    uint32_t row = 0;
  };

  template <typename DataPath>
  Sender(Simulator& sim, const Config& config, std::unique_ptr<Cca> cca,
         DataPath& data_path)
      : Sender(sim, config, std::move(cca), as_sink(data_path)) {}

  Sender(Simulator& sim, const Config& config, std::unique_ptr<Cca> cca,
         PacketSink data_path);
  ~Sender() override;

  // Begins transmitting at the given absolute time.
  void start(TimeNs at);

  // ACK ingress.
  void handle(Packet pkt) override;

  const Cca& cca() const { return *cca_; }
  Cca& cca() { return *cca_; }
  // Releases the CCA (with its converged state) for transplantation.
  std::unique_ptr<Cca> take_cca() { return std::move(cca_); }

  uint64_t delivered_bytes() const { return table_->delivered[row_]; }
  uint64_t inflight_bytes() const { return table_->inflight_bytes[row_]; }
  uint64_t packets_sent() const { return table_->packets_sent[row_]; }
  bool started() const { return started_; }
  // A scheduled-but-unfired start() — a spec-anchored epoch the warp engine
  // must never skip across.
  bool start_pending() const { return start_pending_; }
  TimeNs pending_start_at() const { return start_at_; }
  const FlowStats& stats() const { return stats_; }
  // Independent inflight accounting (scoreboard-internal), cross-checked
  // against the flow-table column by the invariant checker.
  uint64_t scoreboard_bytes() const { return scoreboard_.present_bytes(); }

  // --- receiver flow control (rwnd) ---
  // Highest sequence the receiver has ever advertised room for.
  uint64_t wnd_limit() const { return wnd_limit_; }
  uint64_t probes_sent() const { return probes_sent_; }
  // The gate that blocked the most recent send attempt.
  SendGate send_gate() const { return gate_; }
  bool rwnd_blocked() const { return gate_ == SendGate::kRwnd; }
  bool persist_live() const { return persist_live_; }
  TimeNs persist_deadline() const { return persist_at_; }
  // Slot-coverage invariant for the persist timer (checked at invariant
  // checkpoints): while live, the owned slot is queued at or before the
  // true deadline.
  bool persist_covered() const {
    return !persist_live_ ||
           ((persist_slot_->flags & Event::kQueued) != 0 &&
            persist_slot_->at <= persist_at_);
  }
  // Test-only seam: disables the rwnd send gate so the invariant checker's
  // window-clamp check can be proven to fire (check/fuzzer sabotage hook).
  void set_test_ignore_rwnd(bool v) { test_ignore_rwnd_ = v; }

  using SentInfo = ccstarve::SentInfo;

  // --- snapshot/fork hooks (sim/snapshot.hpp) ---
  //
  // The CCA itself is captured separately via Cca::clone() (see
  // Scenario::snapshot); State covers the transport machinery plus the
  // data records of the sender's own pending timers (start, pacing wakeup,
  // live RTO). The State keeps the original container types — capture
  // exports the scoreboard ring, restore imports it.

  struct State {
    bool started = false;
    TimeNs start_time = TimeNs::zero();
    uint64_t next_seq = 0;
    std::map<uint64_t, SentInfo> outstanding;
    uint64_t inflight_bytes = 0;
    std::set<uint64_t> retx_queue;
    uint64_t cum_acked = 0;
    uint64_t delivered = 0;
    uint64_t packets_sent = 0;
    uint32_t dupacks = 0;
    bool in_recovery = false;
    uint64_t recovery_point = 0;
    uint64_t max_sacked = 0;
    TimeNs pace_next = TimeNs::zero();
    bool wakeup_scheduled = false;
    TimeNs srtt = TimeNs::zero();
    TimeNs rttvar = TimeNs::zero();
    TimeNs rto = TimeNs::millis(1000);
    int backoff = 0;
    uint64_t rto_epoch = 0;
    FlowStats stats;
    TimeNs last_stats_at = TimeNs(-1);
    bool start_pending = false;
    TimeNs start_at = TimeNs::zero();
    bool rto_live = false;
    TimeNs rto_at = TimeNs::zero();
    TimeNs wakeup_at = TimeNs::zero();
    // Flow-control state (defaults when flow control is off).
    uint64_t wnd_limit = kInfiniteWnd;
    uint64_t probes_sent = 0;
    int persist_backoff = 0;
    bool persist_live = false;
    TimeNs persist_at = TimeNs::zero();
    SendGate gate = SendGate::kNone;
  };

  State capture(std::vector<PendingEvent>* events) const;
  void restore(const State& st);
  // Re-schedules one of the sender's own captured timers. For kSenderStart
  // the event's `at` may have been overridden by the fork (a divergent
  // flow-start time); it must be later than the snapshot time.
  void restore_event(const PendingEvent& e);

 private:
  void maybe_send();
  void send_segment(uint64_t seq, bool retransmit);
  void on_ack_packet(const Packet& ack);
  void update_wnd_limit(const Packet& ack);
  void set_gate(SendGate g);
  void maybe_arm_persist();
  void on_persist_fire();
  void send_probe();
  void queue_retransmit(uint64_t seq);
  // SACK-style loss repair: queue retransmits for outstanding segments below
  // the highest SACKed seq that have not been (re)sent for an RTT.
  void repair_holes(TimeNs now);
  void arm_rto();
  void on_rto_slot_fire();
  void rto_timeout_action();
  void record_stats(TimeNs now, TimeNs rtt);

  // Flow-table column accessors for this sender's row.
  uint64_t& inflight_col() { return table_->inflight_bytes[row_]; }
  uint64_t& cum_col() { return table_->cum_acked[row_]; }
  uint64_t& delivered_col() { return table_->delivered[row_]; }
  uint64_t& next_seq_col() { return table_->next_seq[row_]; }
  uint64_t& sent_col() { return table_->packets_sent[row_]; }
  uint64_t cwnd_col() const { return table_->cwnd_bytes[row_]; }
  Rate pacing_col() const { return table_->pacing[row_]; }
  // Refreshes the CCA gauge mirrors; call after every CCA callback. The
  // getters are pure, so the mirror always equals what a direct virtual
  // call would have returned.
  void sync_cca_gauges() {
    table_->cwnd_bytes[row_] = cca_->cwnd_bytes();
    table_->pacing[row_] = cca_->pacing_rate();
  }

  Simulator& sim_;
  Config config_;
  std::unique_ptr<Cca> cca_;
  PacketSink data_path_;

  FlowTable* table_ = nullptr;
  uint32_t row_ = 0;
  std::unique_ptr<FlowTable> owned_table_;  // standalone fallback
  Event* pace_slot_ = nullptr;
  Event* rto_slot_ = nullptr;
  Event* persist_slot_ = nullptr;

  Scoreboard scoreboard_;

  bool started_ = false;
  TimeNs start_time_ = TimeNs::zero();
  // Pending start() event (not yet fired), for snapshots.
  bool start_pending_ = false;
  TimeNs start_at_ = TimeNs::zero();
  uint64_t start_seq_ = 0;

  // Fast-retransmit state.
  uint32_t dupacks_ = 0;
  bool in_recovery_ = false;
  uint64_t recovery_point_ = 0;
  uint64_t max_sacked_ = 0;

  // Pacing. The wakeup is the flow's owned pace slot; wakeup_scheduled_
  // mirrors its queued bit, and wakeup_at_/wakeup_seq_ record the armed
  // deadline for snapshots (pace_next_ may move past it before it fires).
  TimeNs pace_next_ = TimeNs::zero();
  bool wakeup_scheduled_ = false;
  TimeNs wakeup_at_ = TimeNs::zero();
  uint64_t wakeup_seq_ = 0;

  // RTO machinery. rto_at_ is the true deadline; the owned RTO slot is
  // armed at or before it (it fires early when the deadline was pushed
  // later, re-arming itself — the invariant is that while rto_live_ the
  // slot covers some time <= rto_at_). rto_epoch_ survives for State
  // compatibility and restore ordering.
  TimeNs srtt_ = TimeNs::zero();
  TimeNs rttvar_ = TimeNs::zero();
  TimeNs rto_ = TimeNs::millis(1000);
  int backoff_ = 0;
  uint64_t rto_epoch_ = 0;
  bool rto_live_ = false;
  TimeNs rto_at_ = TimeNs::zero();
  uint64_t rto_seq_ = 0;

  FlowStats stats_;
  TimeNs last_stats_at_ = TimeNs(-1);

  // Receiver flow control. wnd_limit_ only grows (never-shrinking window),
  // so a retransmission is always within window by construction. The
  // persist timer follows the same owned-slot coverage discipline as the
  // RTO above; its interval is the backed-off RTO, reset whenever the
  // window opens.
  uint64_t wnd_limit_ = kInfiniteWnd;
  uint64_t probes_sent_ = 0;
  int persist_backoff_ = 0;
  bool persist_live_ = false;
  TimeNs persist_at_ = TimeNs::zero();
  uint64_t persist_seq_ = 0;
  SendGate gate_ = SendGate::kNone;
  bool test_ignore_rwnd_ = false;
};

}  // namespace ccstarve
