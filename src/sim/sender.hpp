// Reliable, always-backlogged sender endpoint.
//
// Implements the transport machinery the CCAs sit on: fixed-MSS
// segmentation, a scoreboard with cumulative + 1-segment-SACK accounting,
// duplicate-ACK fast retransmit with NewReno-style recovery, a
// retransmission timeout with exponential backoff, and dual cwnd/pacing
// gating so both window-based (Vegas, Cubic, ...) and rate-based (BBR, PCC,
// ...) algorithms run on the same code path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>

#include "cc/cca.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "sim/snapshot.hpp"
#include "util/series.hpp"
#include "util/time.hpp"

namespace ccstarve {

// Per-flow measurement record. Values are sampled on every ACK (optionally
// throttled); RTTs are in seconds on the series' value axis.
struct FlowStats {
  TimeSeries rtt_seconds;
  TimeSeries delivered_bytes;  // cumulative in-order bytes vs time
  TimeSeries cwnd_bytes;
  TimeSeries pacing_mbps;
  uint64_t fast_retransmits = 0;
  uint64_t timeouts = 0;
};

class Sender final : public PacketHandler {
 public:
  struct Config {
    uint32_t flow_id = 0;
    // Record at most one stats sample per this interval (zero = every ACK).
    TimeNs stats_interval = TimeNs::zero();
    // Hard cap on the window regardless of the CCA (safety valve for
    // strong-model experiments where throughput legitimately diverges).
    uint64_t max_cwnd_bytes = uint64_t{1} << 40;
  };

  template <typename DataPath>
  Sender(Simulator& sim, const Config& config, std::unique_ptr<Cca> cca,
         DataPath& data_path)
      : Sender(sim, config, std::move(cca), as_sink(data_path)) {}

  Sender(Simulator& sim, const Config& config, std::unique_ptr<Cca> cca,
         PacketSink data_path);

  // Begins transmitting at the given absolute time.
  void start(TimeNs at);

  // ACK ingress.
  void handle(Packet pkt) override;

  const Cca& cca() const { return *cca_; }
  Cca& cca() { return *cca_; }
  // Releases the CCA (with its converged state) for transplantation.
  std::unique_ptr<Cca> take_cca() { return std::move(cca_); }

  uint64_t delivered_bytes() const { return delivered_; }
  uint64_t inflight_bytes() const { return inflight_bytes_; }
  uint64_t packets_sent() const { return packets_sent_; }
  const FlowStats& stats() const { return stats_; }

  struct SentInfo {
    TimeNs sent_at;
    uint32_t bytes;
    uint64_t delivered_at_send;
  };

  // --- snapshot/fork hooks (sim/snapshot.hpp) ---
  //
  // The CCA itself is captured separately via Cca::clone() (see
  // Scenario::snapshot); State covers the transport machinery plus the
  // data records of the sender's own pending timers (start, pacing wakeup,
  // live RTO). Timers from stale epochs fire as no-ops in a cold run, so
  // only the live one per kind is captured.

  struct State {
    bool started = false;
    TimeNs start_time = TimeNs::zero();
    uint64_t next_seq = 0;
    std::map<uint64_t, SentInfo> outstanding;
    uint64_t inflight_bytes = 0;
    std::set<uint64_t> retx_queue;
    uint64_t cum_acked = 0;
    uint64_t delivered = 0;
    uint64_t packets_sent = 0;
    uint32_t dupacks = 0;
    bool in_recovery = false;
    uint64_t recovery_point = 0;
    uint64_t max_sacked = 0;
    TimeNs pace_next = TimeNs::zero();
    bool wakeup_scheduled = false;
    TimeNs srtt = TimeNs::zero();
    TimeNs rttvar = TimeNs::zero();
    TimeNs rto = TimeNs::millis(1000);
    int backoff = 0;
    uint64_t rto_epoch = 0;
    FlowStats stats;
    TimeNs last_stats_at = TimeNs(-1);
    bool start_pending = false;
    TimeNs start_at = TimeNs::zero();
    bool rto_live = false;
    TimeNs rto_at = TimeNs::zero();
    TimeNs wakeup_at = TimeNs::zero();
  };

  State capture(std::vector<PendingEvent>* events) const;
  void restore(const State& st);
  // Re-schedules one of the sender's own captured timers. For kSenderStart
  // the event's `at` may have been overridden by the fork (a divergent
  // flow-start time); it must be later than the snapshot time.
  void restore_event(const PendingEvent& e);

 private:

  void maybe_send();
  void send_segment(uint64_t seq, bool retransmit);
  void on_ack_packet(const Packet& ack);
  void queue_retransmit(uint64_t seq);
  // SACK-style loss repair: queue retransmits for outstanding segments below
  // the highest SACKed seq that have not been (re)sent for an RTT.
  void repair_holes(TimeNs now);
  void arm_rto();
  void on_rto_fire(uint64_t epoch);
  void record_stats(TimeNs now, TimeNs rtt);

  Simulator& sim_;
  Config config_;
  std::unique_ptr<Cca> cca_;
  PacketSink data_path_;

  bool started_ = false;
  TimeNs start_time_ = TimeNs::zero();
  // Pending start() event (not yet fired), for snapshots.
  bool start_pending_ = false;
  TimeNs start_at_ = TimeNs::zero();
  uint64_t start_seq_ = 0;

  uint64_t next_seq_ = 0;
  std::map<uint64_t, SentInfo> outstanding_;
  uint64_t inflight_bytes_ = 0;
  std::set<uint64_t> retx_queue_;
  uint64_t cum_acked_ = 0;
  uint64_t delivered_ = 0;
  uint64_t packets_sent_ = 0;

  // Fast-retransmit state.
  uint32_t dupacks_ = 0;
  bool in_recovery_ = false;
  uint64_t recovery_point_ = 0;
  uint64_t max_sacked_ = 0;

  // Pacing.
  TimeNs pace_next_ = TimeNs::zero();
  bool wakeup_scheduled_ = false;
  // Deadline/seq of the scheduled wakeup — pace_next_ may move past it
  // between scheduling and firing, so it is tracked separately.
  TimeNs wakeup_at_ = TimeNs::zero();
  uint64_t wakeup_seq_ = 0;

  // RTO machinery.
  TimeNs srtt_ = TimeNs::zero();
  TimeNs rttvar_ = TimeNs::zero();
  TimeNs rto_ = TimeNs::millis(1000);
  int backoff_ = 0;
  uint64_t rto_epoch_ = 0;
  // Deadline/seq of the live (current-epoch) RTO event, for snapshots.
  bool rto_live_ = false;
  TimeNs rto_at_ = TimeNs::zero();
  uint64_t rto_seq_ = 0;

  FlowStats stats_;
  TimeNs last_stats_at_ = TimeNs(-1);
};

}  // namespace ccstarve
