#include "sim/shaper.hpp"

#include <algorithm>

namespace ccstarve {

void TokenBucketFilter::refill() {
  const TimeNs now = sim_.now();
  tokens_ = std::min(
      static_cast<double>(config_.burst_bytes),
      tokens_ + config_.rate.bytes_per_second() *
                    (now - last_refill_).to_seconds());
  last_refill_ = now;
}

void TokenBucketFilter::handle(Packet pkt) {
  refill();
  if (queue_.empty() && tokens_ >= pkt.bytes) {
    tokens_ -= pkt.bytes;
    next_.handle(pkt);
    return;
  }
  ++delayed_;
  queue_.push_back(pkt);
  drain_queue();
}

void TokenBucketFilter::drain_queue() {
  refill();
  while (!queue_.empty() && tokens_ >= queue_.front().bytes) {
    tokens_ -= queue_.front().bytes;
    next_.handle(queue_.front());
    queue_.pop_front();
  }
  if (queue_.empty() || drain_scheduled_) return;
  // Wake when enough tokens will exist for the head packet.
  const double deficit = queue_.front().bytes - tokens_;
  const TimeNs wait = TimeNs::seconds(
      deficit / std::max(config_.rate.bytes_per_second(), 1.0));
  drain_scheduled_ = true;
  sim_.schedule_in(ccstarve::max(wait, TimeNs::micros(1)), [this] {
    drain_scheduled_ = false;
    drain_queue();
  });
}

void GsoBurster::handle(Packet pkt) {
  held_.push_back(pkt);
  if (held_.size() >= config_.burst_pkts) {
    flush();
    return;
  }
  const uint64_t epoch = ++timer_epoch_;
  sim_.schedule_in(config_.flush_timeout, [this, epoch] {
    if (epoch == timer_epoch_ && !held_.empty()) flush();
  });
}

void GsoBurster::flush() {
  ++timer_epoch_;  // cancel any pending flush timer
  ++bursts_;
  while (!held_.empty()) {
    next_.handle(held_.front());
    held_.pop_front();
  }
}

}  // namespace ccstarve
