// Traffic-shaping path elements the paper names as real-world sources of
// non-congestive delay (§2.1): token-bucket filters and segmentation-offload
// (GSO) style burst aggregation.
//
//   * TokenBucketFilter — passes packets while tokens last, then delays them
//     until the bucket refills (CCAC models this element explicitly; our
//     network model subsumes its delay effects, §3).
//   * GsoBurster — holds packets until `burst_pkts` have accumulated (or a
//     flush timeout expires) and releases them back-to-back: the sender-side
//     burstiness that makes one flow lossier at a nearly-full drop-tail
//     queue (§5.4's delayed-ACK/GSO discussion).
#pragma once

#include <cstdint>
#include <deque>

#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "util/rate.hpp"
#include "util/time.hpp"

namespace ccstarve {

class TokenBucketFilter final : public PacketHandler {
 public:
  struct Config {
    Rate rate = Rate::mbps(10);       // token refill rate
    uint64_t burst_bytes = 10 * kMss;  // bucket depth
  };

  template <typename Next>
  TokenBucketFilter(Simulator& sim, const Config& config, Next& next)
      : sim_(sim),
        config_(config),
        next_(as_sink(next)),
        tokens_(static_cast<double>(config.burst_bytes)) {}

  void handle(Packet pkt) override;

  double tokens_bytes() const { return tokens_; }
  uint64_t delayed_packets() const { return delayed_; }

 private:
  void refill();
  void drain_queue();

  Simulator& sim_;
  Config config_;
  PacketSink next_;
  double tokens_;
  TimeNs last_refill_ = TimeNs::zero();
  std::deque<Packet> queue_;
  bool drain_scheduled_ = false;
  uint64_t delayed_ = 0;
};

class GsoBurster final : public PacketHandler {
 public:
  struct Config {
    uint32_t burst_pkts = 4;
    // Flush a partial burst after this long (so a trickle still flows).
    TimeNs flush_timeout = TimeNs::millis(5);
  };

  template <typename Next>
  GsoBurster(Simulator& sim, const Config& config, Next& next)
      : sim_(sim), config_(config), next_(as_sink(next)) {}

  void handle(Packet pkt) override;

  uint64_t bursts_released() const { return bursts_; }

 private:
  void flush();

  Simulator& sim_;
  Config config_;
  PacketSink next_;
  std::deque<Packet> held_;
  uint64_t timer_epoch_ = 0;
  uint64_t bursts_ = 0;
};

}  // namespace ccstarve
