#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

namespace ccstarve {

void Simulator::schedule_at(TimeNs at, std::function<void()> fn) {
  assert(at >= now_);
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void Simulator::schedule_in(TimeNs delay, std::function<void()> fn) {
  schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::run_next() {
  if (queue_.empty()) return false;
  // priority_queue::top() returns const&; the move is safe because we pop
  // immediately and nothing else observes the moved-from function.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.at;
  ++processed_;
  ev.fn();
  return true;
}

void Simulator::run_until(TimeNs t) {
  while (!queue_.empty() && queue_.top().at <= t) {
    run_next();
  }
  if (now_ < t) now_ = t;
}

}  // namespace ccstarve
