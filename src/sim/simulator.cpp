#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>

namespace ccstarve {

Simulator::Simulator(EventPool* shared_pool)
    : pool_(shared_pool != nullptr ? shared_pool : &owned_pool_),
      wheel_(kWheelSlots, nullptr) {
  near_.reserve(16);
  far_.reserve(64);
}

Simulator::~Simulator() { release_all(); }

void Simulator::release_all() {
  // Owned nodes (flat timer slots) are caller storage: unlink them and
  // clear their queued bit, but never hand them to the pool.
  const auto drop = [this](Event* e) {
    e->flags &= ~Event::kQueued;
    if ((e->flags & Event::kOwned) == 0) pool_->release(e);
  };
  for (Event* e : near_) drop(e);
  near_.clear();
  for (Event* e : far_) drop(e);
  far_.clear();
  for (uint64_t word = 0; word < kBitmapWords; ++word) {
    uint64_t bits = occupancy_[word];
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      Event* e = wheel_[word * 64 + static_cast<uint64_t>(bit)];
      while (e != nullptr) {
        Event* next = e->next;
        drop(e);
        e = next;
      }
      wheel_[word * 64 + static_cast<uint64_t>(bit)] = nullptr;
    }
    occupancy_[word] = 0;
  }
  pending_ = 0;
}

bool Simulator::disarm(Event* e) {
  if ((e->flags & Event::kQueued) == 0) return false;
  const auto scan_heap = [this](std::vector<Event*>& heap, Event* target) {
    auto it = std::find(heap.begin(), heap.end(), target);
    if (it == heap.end()) return false;
    heap.erase(it);
    std::make_heap(heap.begin(), heap.end(), Later{});
    return true;
  };
  bool removed = scan_heap(near_, e);
  if (!removed) {
    const uint64_t tick = tick_of(e->at);
    if (tick >= cur_tick_ && tick - cur_tick_ < kWheelSlots) {
      const uint64_t slot = tick & kWheelMask;
      Event** p = &wheel_[slot];
      while (*p != nullptr && *p != e) p = &(*p)->next;
      if (*p == e) {
        *p = e->next;
        removed = true;
        if (wheel_[slot] == nullptr) {
          occupancy_[slot >> 6] &= ~(uint64_t{1} << (slot & 63));
        }
      }
    }
  }
  if (!removed) removed = scan_heap(far_, e);
  if (removed) {
    e->flags &= ~Event::kQueued;
    --pending_;
  }
  return removed;
}

bool Simulator::try_claim_next(TimeNs at, uint64_t seq) {
  if (next_pending_at() != at) return false;
  Event* e = pop_next(at);
  if (e == nullptr) return false;
  if (e->at == at && e->seq == seq && (e->flags & Event::kOwned) == 0) {
    e->flags &= ~Event::kQueued;
    --pending_;
    ++coalesced_;
    pool_->release(e);
    return true;
  }
  // Not the expected event: put it back. insert() keys off the node's own
  // (at, seq), so ordering is restored exactly.
  insert(e);
  return false;
}

void Simulator::heap_push(std::vector<Event*>& heap, Event* e) {
  heap.push_back(e);
  std::push_heap(heap.begin(), heap.end(), Later{});
}

Event* Simulator::heap_pop(std::vector<Event*>& heap) {
  std::pop_heap(heap.begin(), heap.end(), Later{});
  Event* e = heap.back();
  heap.pop_back();
  return e;
}

void Simulator::insert(Event* e) {
  const uint64_t tick = tick_of(e->at);
  if (tick <= cur_tick_) {
    // The event's slot has already been harvested (or is being drained);
    // order it through the near heap.
    heap_push(near_, e);
    return;
  }
  if (tick - cur_tick_ < kWheelSlots) {
    const uint64_t slot = tick & kWheelMask;
    e->next = wheel_[slot];
    wheel_[slot] = e;
    occupancy_[slot >> 6] |= uint64_t{1} << (slot & 63);
    return;
  }
  heap_push(far_, e);
}

bool Simulator::find_next_slot(uint64_t* tick_out) const {
  const uint64_t start = cur_tick_ & kWheelMask;
  // Scan kBitmapWords+1 words circularly: the first word is masked to bits
  // at or after `start`, the wrapped revisit of that word covers the bits
  // before it.
  for (uint64_t i = 0; i <= kBitmapWords; ++i) {
    const uint64_t word = ((start >> 6) + i) % kBitmapWords;
    uint64_t bits = occupancy_[word];
    if (i == 0) bits &= ~uint64_t{0} << (start & 63);
    if (bits == 0) continue;
    const uint64_t slot =
        word * 64 + static_cast<uint64_t>(std::countr_zero(bits));
    // Map the slot index back to an absolute tick within the window
    // [cur_tick_, cur_tick_ + kWheelSlots).
    *tick_out = cur_tick_ + ((slot - cur_tick_) & kWheelMask);
    return true;
  }
  return false;
}

void Simulator::harvest(uint64_t tick) {
  const uint64_t slot = tick & kWheelMask;
  Event* e = wheel_[slot];
  wheel_[slot] = nullptr;
  occupancy_[slot >> 6] &= ~(uint64_t{1} << (slot & 63));
  while (e != nullptr) {
    Event* next = e->next;
    heap_push(near_, e);
    e = next;
  }
}

void Simulator::advance_to(uint64_t tick) {
  if (tick <= cur_tick_) return;
  cur_tick_ = tick;
  while (!far_.empty()) {
    Event* top = far_.front();
    const uint64_t top_tick = tick_of(top->at);
    if (top_tick >= cur_tick_ && top_tick - cur_tick_ >= kWheelSlots) break;
    insert(heap_pop(far_));
  }
}

Event* Simulator::pop_next(TimeNs limit) {
  for (;;) {
    if (!near_.empty()) {
      if (near_.front()->at > limit) return nullptr;
      return heap_pop(near_);
    }
    uint64_t next_tick = 0;
    if (find_next_slot(&next_tick)) {
      const TimeNs slot_start =
          TimeNs::nanos(static_cast<int64_t>(next_tick << kGranularityBits));
      if (slot_start > limit) {
        advance_to(tick_of(limit));
        return nullptr;
      }
      advance_to(next_tick);
      harvest(next_tick);
      continue;
    }
    if (!far_.empty()) {
      if (far_.front()->at > limit) {
        if (!limit.is_infinite()) advance_to(tick_of(limit));
        return nullptr;
      }
      // Jumping to the far top's tick migrates it (and any peers within the
      // new horizon) into the wheel or near heap.
      advance_to(tick_of(far_.front()->at));
      continue;
    }
    if (!limit.is_infinite()) advance_to(tick_of(limit));
    return nullptr;
  }
}

bool Simulator::run_next() {
  Event* e = pop_next(TimeNs::infinite());
  if (e == nullptr) return false;
  now_ = e->at;
  ++processed_;
  --pending_;
  e->flags &= ~Event::kQueued;
  // An owned node's callback may re-arm the node, so after fn() the node
  // must not be touched (and is never pool-released).
  const bool owned = (e->flags & Event::kOwned) != 0;
  try {
    e->fn();
  } catch (...) {
    if (!owned) pool_->release(e);
    throw;
  }
  if (!owned) pool_->release(e);
  return true;
}

void Simulator::run_until(TimeNs t) {
  while (Event* e = pop_next(t)) {
    now_ = e->at;
    ++processed_;
    --pending_;
    e->flags &= ~Event::kQueued;
    const bool owned = (e->flags & Event::kOwned) != 0;
    try {
      e->fn();
    } catch (...) {
      if (!owned) pool_->release(e);
      throw;
    }
    if (!owned) pool_->release(e);
  }
  if (now_ < t) now_ = t;
}

TimeNs Simulator::next_pending_at() const {
  // near_ holds only events at ticks <= cur_tick_, which precede every
  // wheel slot; wheel slots precede everything in far_. So the earliest
  // pending event is in the first non-empty tier.
  if (!near_.empty()) return near_.front()->at;
  uint64_t tick = 0;
  if (find_next_slot(&tick)) {
    const uint64_t slot = tick & kWheelMask;
    TimeNs best = TimeNs::infinite();
    for (Event* e = wheel_[slot]; e != nullptr; e = e->next) {
      best = ccstarve::min(best, e->at);
    }
    return best;
  }
  if (!far_.empty()) return far_.front()->at;
  return TimeNs::infinite();
}

void Simulator::warp_to(TimeNs t) {
  assert(pending_ == 0);
  assert(t >= now_);
  now_ = t;
  advance_to(tick_of(t));
}

}  // namespace ccstarve
