// Deterministic discrete-event simulator.
//
// A single global event queue orders callbacks by (time, insertion sequence);
// the sequence tie-break makes runs bit-for-bit reproducible regardless of
// how many events share a timestamp.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace ccstarve {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (>= now).
  void schedule_at(TimeNs at, std::function<void()> fn);
  // Schedules `fn` to run `delay` from now.
  void schedule_in(TimeNs delay, std::function<void()> fn);

  // Runs events until the queue is empty or the next event is after `t`;
  // afterwards now() == t (time advances even if idle).
  void run_until(TimeNs t);

  // Runs a single event if one exists. Returns false when idle.
  bool run_next();

  bool idle() const { return queue_.empty(); }
  uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    TimeNs at;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  TimeNs now_ = TimeNs::zero();
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace ccstarve
