// Deterministic discrete-event simulator.
//
// Events are ordered by (time, insertion sequence); the sequence tie-break
// makes runs bit-for-bit reproducible regardless of how many events share a
// timestamp. tests/golden/*.digest pins this ordering against the original
// binary-heap implementation.
//
// The core is built for throughput rather than generality:
//
//   * Timer wheel: 4096 slots of 16.384 µs cover a ~67 ms horizon.
//     Sub-RTT events (pacing, transmission completions, jitter releases) —
//     the vast majority — insert in O(1) into an intrusive slot list; an
//     occupancy bitmap finds the next busy slot with a handful of word
//     scans. Ordering within a slot is restored on harvest by pushing the
//     slot's events through the tiny `near_` binary heap, so dispatch order
//     is exactly (at, seq) — identical to a global priority queue.
//   * Far heap: events beyond the horizon (RTT-scale timers, RTOs) wait in
//     a conventional binary heap and migrate into the wheel as the window
//     advances; each event migrates at most once.
//   * Pooled, alloc-free events: nodes come from an intrusive free-list
//     pool (sim/event_pool.hpp) and callbacks are emplaced into the node's
//     inline small-buffer storage (util/inline_fn.hpp), so steady-state
//     scheduling performs zero allocations. A pool can be shared across
//     consecutive simulators (see the sweep engine) to also eliminate
//     per-scenario warm-up churn.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_pool.hpp"
#include "sim/trace_probe.hpp"
#include "util/time.hpp"

namespace ccstarve {

class CheckProbe;
class ObsProbe;
class FlightProbe;

class Simulator {
 public:
  Simulator() : Simulator(nullptr) {}
  // `shared_pool` may be null (the simulator then owns a private pool); a
  // non-null pool must outlive the simulator.
  explicit Simulator(EventPool* shared_pool);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (>= now). The callable is
  // emplaced directly into a pooled event node — no intermediate moves, no
  // allocation for captures up to kEventCallbackCapacity bytes. Returns the
  // event's insertion sequence — the determinism tie-break — which the
  // snapshot machinery records so a restored run can reproduce the relative
  // order of same-timestamp events (see sim/snapshot.hpp).
  template <typename F>
  uint64_t schedule_at(TimeNs at, F&& fn) {
    assert(at >= now_);
    if (tracer_) tracer_->on_schedule(now_, at);
    Event* e = pool_->alloc();
    e->at = at;
    e->seq = next_seq_++;
    e->fn.emplace(std::forward<F>(fn));
    insert(e);
    ++pending_;
    return e->seq;
  }

  // Schedules `fn` to run `delay` from now.
  template <typename F>
  uint64_t schedule_in(TimeNs delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  // --- Owned timer slots -------------------------------------------------
  //
  // A component may provide its own Event node (typically one cache-line
  // pair inside a flow-table column) instead of drawing from the pool. The
  // node's callback is emplaced ONCE, then the node is re-armed for each
  // firing: arm() stamps a fresh (at, seq) and links the node into the
  // wheel exactly like a pooled event, so dispatch order is identical. The
  // dispatcher skips the pool release for owned nodes, and the callback is
  // free to re-arm its own node. The node must outlive the simulator or be
  // disarmed before destruction (Sender/Receiver do so in their dtors).

  // Schedules an owned node at absolute time `at` (>= now). The node must
  // not currently be queued. Returns the insertion sequence.
  uint64_t arm(Event* e, TimeNs at) {
    assert(at >= now_);
    assert((e->flags & Event::kQueued) == 0);
    if (tracer_) tracer_->on_schedule(now_, at);
    e->at = at;
    e->seq = next_seq_++;
    e->flags |= Event::kOwned | Event::kQueued;
    insert(e);
    ++pending_;
    return e->seq;
  }

  // Removes a queued owned node without running it. Returns false (no-op)
  // when the node is not queued. O(pending) worst case; used on re-arm-
  // earlier paths and in component destructors, never per event.
  bool disarm(Event* e);

  // Dispatch-time event coalescing: if the earliest pending event is
  // exactly (at, seq), consume it without a separate dispatch and return
  // true. The caller then performs the event's work inline, which is
  // exact by construction — the claimed event was literally next, so doing
  // its work now, inside the current dispatch, yields the identical action
  // order a separate dispatch would have. Used by JitterBox to batch
  // same-timestamp releases (e.g. quantized ACK buckets) into one wakeup.
  bool try_claim_next(TimeNs at, uint64_t seq);

  // Events absorbed by try_claim_next (not counted in events_processed).
  uint64_t events_coalesced() const { return coalesced_; }

  // Runs events until the queue is empty or the next event is after `t`;
  // afterwards now() == t (time advances even if idle).
  void run_until(TimeNs t);

  // Runs a single event if one exists. Returns false when idle.
  bool run_next();

  // Jumps an *empty* simulator (no pending events) straight to absolute
  // time `t` without dispatching anything. Used when restoring a snapshot:
  // the forked simulator starts its clock at the snapshot time before the
  // captured pending events are re-scheduled.
  void warp_to(TimeNs t);

  bool idle() const { return pending_ == 0; }
  uint64_t events_processed() const { return processed_; }

  // Golden-trace probe (see sim/trace_probe.hpp). Null means tracing off;
  // the recorder must outlive the simulation.
  void set_tracer(TraceRecorder* tracer) { tracer_ = tracer; }
  TraceRecorder* tracer() const { return tracer_; }

  // Runtime invariant probe (see sim/check_probe.hpp). Null means checking
  // off; the probe must outlive the simulation. Orthogonal to the tracer:
  // attaching a checker never changes the event stream or its digest.
  void set_checker(CheckProbe* checker) { checker_ = checker; }
  CheckProbe* checker() const { return checker_; }

  // Telemetry probe (see sim/obs_probe.hpp). Null means telemetry off; the
  // probe must outlive the simulation. Like the other two seams it is
  // read-only: attaching telemetry never changes the event stream or its
  // digest, so all three probes may be installed simultaneously.
  void set_telemetry(ObsProbe* telemetry) { telemetry_ = telemetry; }
  ObsProbe* telemetry() const { return telemetry_; }

  // Flight-recorder probe (see sim/flight_probe.hpp). Null means the
  // recorder is off; the probe must outlive the simulation. Read-only like
  // the other seams: attaching it never changes the event stream or its
  // digest, so all four probes may be installed simultaneously.
  void set_flight(FlightProbe* flight) { flight_ = flight; }
  FlightProbe* flight() const { return flight_; }

  // Absolute time of the earliest pending event, or TimeNs::infinite() when
  // idle. O(pending) in the worst case (it may scan one wheel slot); used
  // by the snapshot machinery to verify quiescence, not on the hot path.
  TimeNs next_pending_at() const;

 private:
  // log2 of the slot width in ns (16.384 µs) and of the slot count (4096):
  // a ~67 ms horizon, chosen to swallow propagation-delay events (tens of
  // ms) — the single most common far-future schedule — leaving only RTO-
  // scale timers to the far heap. Slot width only affects bucketing cost,
  // never ordering: a slot's events are re-sorted through `near_` anyway.
  static constexpr int kGranularityBits = 14;
  static constexpr int kWheelBits = 12;
  static constexpr uint64_t kWheelSlots = uint64_t{1} << kWheelBits;
  static constexpr uint64_t kWheelMask = kWheelSlots - 1;
  static constexpr uint64_t kBitmapWords = kWheelSlots / 64;

  static uint64_t tick_of(TimeNs at) {
    return static_cast<uint64_t>(at.ns()) >> kGranularityBits;
  }

  // Min-heap comparator over (at, seq) for use with std::push_heap.
  struct Later {
    bool operator()(const Event* a, const Event* b) const {
      if (a->at != b->at) return a->at > b->at;
      return a->seq > b->seq;
    }
  };

  void insert(Event* e);
  void heap_push(std::vector<Event*>& heap, Event* e);
  Event* heap_pop(std::vector<Event*>& heap);
  // Next event with at <= limit, or null (having advanced the window to
  // `limit` so future insertions stay fast). Does not adjust pending_.
  Event* pop_next(TimeNs limit);
  // Moves the window forward to `tick` (only ever forward) and migrates
  // far-heap events that now fall inside the wheel horizon.
  void advance_to(uint64_t tick);
  // Scans the occupancy bitmap for the first busy slot at or after the
  // current tick. Returns false when the wheel is empty.
  bool find_next_slot(uint64_t* tick_out) const;
  // Empties one slot into the near heap, restoring (at, seq) order.
  void harvest(uint64_t tick);
  void release_all();

  TimeNs now_ = TimeNs::zero();
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
  uint64_t pending_ = 0;
  uint64_t coalesced_ = 0;
  TraceRecorder* tracer_ = nullptr;
  CheckProbe* checker_ = nullptr;
  ObsProbe* telemetry_ = nullptr;
  FlightProbe* flight_ = nullptr;

  EventPool owned_pool_;
  EventPool* pool_ = nullptr;

  // Events at or before the current slot, ordered by (at, seq).
  std::vector<Event*> near_;
  // Events beyond the wheel horizon.
  std::vector<Event*> far_;
  uint64_t cur_tick_ = 0;
  std::vector<Event*> wheel_;
  uint64_t occupancy_[kBitmapWords] = {};
};

}  // namespace ccstarve
