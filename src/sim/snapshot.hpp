// Building blocks of the scenario checkpoint/fork engine (DESIGN.md §8).
//
// A snapshot captures the pending events of a running simulation as plain
// *data records*, never as cloned closures: each record stores the event's
// absolute time, its original insertion sequence (the determinism
// tie-break), which component owns it, and — for packet deliveries — the
// Packet itself. Restoring schedules a fresh, behaviorally identical
// callback on the forked simulator for each record, in ascending
// (at, seq) order, so the forked run dispatches the exact event order the
// cold run would have. The timer wheel, the event pool and InlineFn
// internals therefore never need to be serialized.
//
// The original `seq` values are only used for this *relative* ordering at
// restore time; the forked simulator assigns its own fresh sequences.
#pragma once

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/packet.hpp"
#include "util/time.hpp"

namespace ccstarve {

// Thrown on snapshot/fork misuse: snapshotting at a non-quiescent time
// (some pending event is not strictly in the future) or forking with an
// out-of-range flow override or a start time at or before the snapshot.
// The messages are pinned by tests/snapshot_test.cpp.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error(what) {}
};

// One captured pending event. `kind` + `flow` identify the owning
// component; `pkt` is meaningful only for the packet-delivery kinds.
struct PendingEvent {
  enum class Kind : uint8_t {
    kLinkService,         // BottleneckLink head-of-line completion
    kDelayServerDeliver,  // DelayServerLink release
    kPropDeliver,         // PropagationDelay arrival downstream
    kDataJitterDeliver,   // data-path JitterBox release
    kAckJitterDeliver,    // ack-path JitterBox release
    kSenderStart,         // Sender::start() not yet fired
    kSenderPace,          // pacing wakeup
    kSenderRto,           // live (current-epoch) retransmission timer
    kReceiverAckTimer,    // live delayed-ACK timer
    kSenderPersist,       // live zero-window persist probe timer
    kReceiverWndTimer,    // live window-update wakeup timer
  };

  TimeNs at = TimeNs::zero();
  uint64_t seq = 0;
  Kind kind = Kind::kLinkService;
  uint32_t flow = 0;
  Packet pkt;
};

// Sorts captured events into cold-run dispatch order.
inline bool pending_event_before(const PendingEvent& a, const PendingEvent& b) {
  if (a.at != b.at) return a.at < b.at;
  return a.seq < b.seq;
}

// Bookkeeping for a packet currently "inside" a FIFO delay element
// (PropagationDelay, JitterBox, DelayServerLink). These elements never
// reorder, so a deque with pop-front-on-dispatch mirrors the scheduled
// deliveries exactly; capture is a copy of the deque.
struct InFlightPacket {
  TimeNs at = TimeNs::zero();  // absolute delivery time
  uint64_t seq = 0;            // insertion sequence of the delivery event
  Packet pkt;
};

using InFlightQueue = std::deque<InFlightPacket>;

// Appends one PendingEvent per in-flight packet.
inline void capture_in_flight(const InFlightQueue& q, PendingEvent::Kind kind,
                              uint32_t flow, std::vector<PendingEvent>* out) {
  for (const InFlightPacket& p : q) {
    PendingEvent e;
    e.at = p.at;
    e.seq = p.seq;
    e.kind = kind;
    e.flow = flow;
    e.pkt = p.pkt;
    out->push_back(e);
  }
}

}  // namespace ccstarve
