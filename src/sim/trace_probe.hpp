// Golden-trace probe: an order-sensitive digest over the full packet event
// stream of a simulation.
//
// Components report every packet-level transition (send, enqueue, drop,
// deliver, receive, ack) to the Simulator's installed TraceRecorder, which
// folds each tuple into a running FNV-1a hash. Two runs produce the same
// digest iff they perform the identical sequence of packet events at the
// identical times — which is exactly the property the event-loop
// optimisation work must preserve. tests/golden_trace_test.cpp compares
// digests of canonical scenarios against values committed from the
// pre-optimisation build; any behavioural drift shows up as a mismatch.
//
// When no recorder is installed the per-event cost is a single untaken
// branch, so production runs pay nothing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace ccstarve {

struct Packet;

class TraceRecorder {
 public:
  // Event tags, one per packet transition:
  //   'S' sender transmitted a segment
  //   'E' bottleneck enqueued a packet
  //   'D' bottleneck (or trace link) dropped a packet at enqueue
  //   'L' packet left the bottleneck (delivered downstream)
  //   'R' receiver accepted a data segment
  //   'A' receiver emitted an ACK
  void record(char tag, TimeNs now, uint64_t a, uint64_t b, uint64_t c) {
    mix(static_cast<uint64_t>(static_cast<unsigned char>(tag)));
    mix(static_cast<uint64_t>(now.ns()));
    mix(a);
    mix(b);
    mix(c);
    ++records_;
  }

  // Optional schedule-pattern capture: when set, every schedule_at is
  // reported as its delay relative to the simulator clock. bench_simcore
  // replays these delays through competing event-queue implementations so
  // the microbenchmark workload matches a real scenario's schedule mix.
  void collect_schedule_deltas(std::vector<int64_t>* sink) {
    schedule_deltas_ = sink;
  }
  void on_schedule(TimeNs now, TimeNs at) {
    if (schedule_deltas_) schedule_deltas_->push_back((at - now).ns());
  }

  uint64_t digest() const { return hash_; }
  uint64_t records() const { return records_; }

  // Digest rendered as 16 lowercase hex digits.
  std::string digest_hex() const {
    static const char* kHex = "0123456789abcdef";
    std::string out(16, '0');
    uint64_t h = hash_;
    for (int i = 15; i >= 0; --i) {
      out[static_cast<size_t>(i)] = kHex[h & 0xf];
      h >>= 4;
    }
    return out;
  }

 private:
  void mix(uint64_t v) {
    // FNV-1a over the value's 8 little-endian bytes.
    for (int i = 0; i < 8; ++i) {
      hash_ ^= v & 0xff;
      hash_ *= 1099511628211ull;
      v >>= 8;
    }
  }

  uint64_t hash_ = 14695981039346656037ull;
  uint64_t records_ = 0;
  std::vector<int64_t>* schedule_deltas_ = nullptr;
};

}  // namespace ccstarve
