#include <memory>

#include "cc/bbr.hpp"
#include "cc/copa.hpp"
#include "cc/fast.hpp"
#include "cc/vegas.hpp"
#include "sim/warp/warp.hpp"

namespace ccstarve::warp {

// Each mapping parameterizes the fluid model with the live CCA's *beliefs*
// (its base-/min-RTT filter state), not the true path geometry — the fluid
// derivative sees the true RTT (rm + eta + q) via FluidFlowSpec, while the
// model's internal reference point must match what the packet CCA would
// subtract. A belief that is still unset (infinite/zero filter) means the
// CCA has not measured yet, and no faithful model exists.
std::shared_ptr<FluidCca> fluid_model_for(const Cca& cca) {
  if (const auto* v = dynamic_cast<const Vegas*>(&cca)) {
    const double base_s = v->base_rtt_seconds();
    if (base_s <= 0.0 || base_s > 1e6) return nullptr;
    // The packet CCA holds cwnd anywhere inside [alpha, beta]; the fluid
    // model must treat that whole band as stationary or every band-interior
    // packet equilibrium would read as drift.
    return std::make_shared<FluidVegas>(v->params().alpha_pkts,
                                        TimeNs::seconds(base_s), 1.0,
                                        v->params().beta_pkts);
  }
  if (const auto* f = dynamic_cast<const FastTcp*>(&cca)) {
    // FAST shares Vegas's equilibrium (alpha packets queued); the fluid
    // trajectory differs but the fixed point — all a warp certifies — is
    // identical.
    const double base_s = f->base_rtt_seconds();
    if (base_s <= 0.0 || base_s > 1e6) return nullptr;
    return std::make_shared<FluidVegas>(f->params().alpha_pkts,
                                        TimeNs::seconds(base_s));
  }
  if (const auto* c = dynamic_cast<const Copa*>(&cca)) {
    const TimeNs believed = c->min_rtt_estimate();
    if (believed <= TimeNs::zero() || believed.is_infinite()) return nullptr;
    return std::make_shared<FluidCopa>(c->delta(), believed);
  }
  if (const auto* b = dynamic_cast<const Bbr*>(&cca)) {
    // Only the cwnd-limited fixed point (paper §5.2) has a fluid model;
    // pacing-limited BBR cycles its gain and never holds an equilibrium a
    // warp could certify.
    if (!b->cwnd_limited()) return nullptr;
    const TimeNs believed = b->min_rtt_estimate();
    if (believed <= TimeNs::zero() || believed.is_infinite()) return nullptr;
    return std::make_shared<FluidBbrCwndLimited>(b->params().quanta_pkts,
                                                 believed);
  }
  return nullptr;
}

}  // namespace ccstarve::warp
