#include <map>
#include <set>
#include <utility>

#include "sim/warp/warp.hpp"

namespace ccstarve::warp {

namespace {

// A warp relabels time by +delta and flow f's byte space by +credit[f].
// Data packets move in seq space; ACKs move in both the cumulative and the
// SACK coordinate; dummies live outside any flow's byte space. Every packet
// additionally carries the absolute send time of its data segment (ACKs
// echo it for RTT sampling), which moves with time.
struct Shifter {
  TimeNs delta;
  const std::vector<uint64_t>& credits;

  uint64_t credit_of(uint32_t flow) const {
    return flow < credits.size() ? credits[flow] : 0;
  }

  void packet(Packet& p) const {
    if (p.is_dummy) return;
    p.data_sent_at += delta;
    const uint64_t c = credit_of(p.flow);
    if (p.is_ack) {
      p.ack_cum += c;
      p.ack_seq += c;
    } else {
      p.seq += c;
    }
  }
};

}  // namespace

void shift_snapshot(ScenarioSnapshot& snap, TimeNs delta,
                    const std::vector<uint64_t>& credit_bytes) {
  const Shifter sh{delta, credit_bytes};

  snap.at += delta;

  // Pending events. kSenderStart is spec-anchored (the caller guaranteed
  // the warp lands before any pending start); everything else is a
  // measurement of the pre-warp present and moves with it.
  for (PendingEvent& e : snap.events) {
    if (e.kind == PendingEvent::Kind::kSenderStart) continue;
    e.at += delta;
    switch (e.kind) {
      case PendingEvent::Kind::kSenderPace:
      case PendingEvent::Kind::kSenderRto:
      case PendingEvent::Kind::kReceiverAckTimer:
        break;  // pure timer records, no packet payload
      default:
        sh.packet(e.pkt);
    }
  }

  // Bottleneck: head-of-line completion time and every queued packet move;
  // the egress counter is credited with the packets that "crossed" during
  // the gap.
  uint64_t credited_packets = 0;
  for (uint64_t c : credit_bytes) credited_packets += c / kMss;
  if (snap.has_link) {
    snap.link.service_at += delta;
    for (Packet& p : snap.link.queue) sh.packet(p);
    snap.link.delivered_packets += credited_packets;
  }

  for (size_t i = 0; i < snap.flows.size(); ++i) {
    ScenarioSnapshot::FlowSnapshot& fs = snap.flows[i];
    const uint64_t c = sh.credit_of(static_cast<uint32_t>(i));
    const uint64_t n = c / kMss;

    // --- sender transport state ---
    Sender::State& s = fs.sender;
    if (s.started) s.start_time += delta;
    // start_at / start_pending are spec-anchored: untouched.
    s.next_seq += c;
    s.cum_acked += c;
    s.delivered += c;
    s.packets_sent += n;
    // recovery_point / max_sacked only ever enter comparisons against other
    // seq-space values, so the uniform shift keeps them coherent even when
    // they still hold their initial 0.
    s.recovery_point += c;
    s.max_sacked += c;
    s.pace_next += delta;
    if (s.wakeup_scheduled) s.wakeup_at += delta;
    if (s.rto_live) s.rto_at += delta;
    if (s.last_stats_at >= TimeNs::zero()) s.last_stats_at += delta;
    // srtt/rttvar/rto are durations; stats series stay historical (their
    // pre-warp samples keep pre-warp timestamps).
    {
      std::map<uint64_t, Sender::SentInfo> moved;
      for (const auto& [seq, info] : s.outstanding) {
        Sender::SentInfo shifted = info;
        shifted.sent_at += delta;
        shifted.delivered_at_send += c;
        moved.emplace(seq + c, shifted);
      }
      s.outstanding = std::move(moved);
    }
    {
      std::set<uint64_t> moved;
      for (uint64_t seq : s.retx_queue) moved.insert(seq + c);
      s.retx_queue = std::move(moved);
    }

    // --- CCA and jitter policy clones ---
    if (fs.cca) {
      fs.cca->rebase_time(delta);
      fs.cca->rebase_progress(c);
    }
    if (fs.data_jitter) fs.data_jitter->rebase_time(delta);
    if (fs.ack_jitter) fs.ack_jitter->rebase_time(delta);

    // --- receiver ---
    Receiver::State& r = fs.receiver;
    const bool had_data = r.packets > 0;
    {
      std::set<uint64_t> moved;
      for (uint64_t seq : r.ooo) moved.insert(seq + c);
      r.ooo = std::move(moved);
    }
    r.cum += c;
    r.packets += n;
    if (had_data) sh.packet(r.last_data);
    if (r.timer_armed) r.timer_at += delta;

    // --- jitter boxes (FIFO horizons) ---
    fs.data_box.last_release += delta;
    fs.ack_box.last_release += delta;

    // Loss gates are never active across a warp (random loss is a
    // structural refusal), so their RNG state is untouched.
  }
}

}  // namespace ccstarve::warp
