#include "sim/warp/warp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "sim/snapshot.hpp"

namespace ccstarve::warp {

namespace {

// lcm(a, b) capped at `cap`; returns 0 when the true lcm exceeds it (the
// caller treats an unusable release-grid alignment as a refusal).
int64_t lcm_capped(int64_t a, int64_t b, int64_t cap) {
  const int64_t g = std::gcd(a, b);
  const int64_t q = a / g;
  if (b != 0 && q > cap / b) return 0;
  const int64_t l = q * b;
  return l > cap ? 0 : l;
}

}  // namespace

WarpRunner::WarpRunner(std::unique_ptr<Scenario> sc, WarpConfig config)
    : sc_(std::move(sc)), config_(std::move(config)) {}

void WarpRunner::ensure_flows() {
  const size_t n = sc_->flow_count();
  if (detectors_.size() == n) return;
  detectors_.assign(n, SettlingDetector(config_.settle));
  fed_rtt_.assign(n, 0);
  fed_delivered_.assign(n, 0);
}

void WarpRunner::feed_detectors() {
  for (size_t i = 0; i < detectors_.size(); ++i) {
    const FlowStats& st = sc_->stats(i);
    const auto& rtt = st.rtt_seconds.samples();
    for (size_t k = fed_rtt_[i]; k < rtt.size(); ++k) {
      detectors_[i].add_rtt(rtt[k].at, rtt[k].value);
    }
    fed_rtt_[i] = rtt.size();
    const auto& del = st.delivered_bytes.samples();
    for (size_t k = fed_delivered_[i]; k < del.size(); ++k) {
      detectors_[i].add_delivered(del[k].at, del[k].value);
    }
    fed_delivered_[i] = del.size();
  }
}

bool WarpRunner::all_started_settled() const {
  bool any = false;
  for (size_t i = 0; i < detectors_.size(); ++i) {
    if (!sc_->sender(i).started()) continue;
    any = true;
    if (!detectors_[i].settled()) return false;
  }
  return any;
}

void WarpRunner::reset_detectors() {
  for (size_t i = 0; i < detectors_.size(); ++i) {
    detectors_[i].reset();
    fed_rtt_[i] = sc_->stats(i).rtt_seconds.size();
    fed_delivered_[i] = sc_->stats(i).delivered_bytes.size();
  }
}

void WarpRunner::run_until(TimeNs until) {
  ensure_flows();

  // Structural warpability never changes after construction: a delay-server
  // path (delay as a function of absolute arrival time) or random loss
  // (RNG draws that cannot be replayed analytically) rule out every warp.
  if (!structural_counted_) {
    structural_counted_ = true;
    structural_ok_ = sc_->has_bottleneck();
    for (size_t i = 0; i < sc_->flow_count(); ++i) {
      if (sc_->loss_rate(i) > 0.0) structural_ok_ = false;
      // Receiver-side flow control ties behavior to absolute time (the
      // app-drain read schedule) and to persist/window-update timers the
      // fluid models don't represent; such flows never fast-forward.
      if (sc_->rwnd_limited(i)) structural_ok_ = false;
    }
    if (!structural_ok_) {
      ++stats_.attempts;
      ++stats_.refused_structural;
    }
  }
  if (!structural_ok_) {
    sc_->run_until(until);
    return;
  }

  while (sc_->sim().now() < until) {
    const TimeNs chunk_end =
        ccstarve::min(sc_->sim().now() + config_.chunk, until);
    sc_->run_until(chunk_end);
    if (chunk_end >= until) break;
    feed_detectors();
    if (!all_started_settled()) continue;
    attempt_warp(until);
  }
}

void WarpRunner::attempt_warp(TimeNs until) {
  ++stats_.attempts;
  Scenario& sc = *sc_;
  const TimeNs now = sc.sim().now();
  const size_t n = sc.flow_count();

  // Every running flow needs a fluid counterpart.
  std::vector<std::shared_ptr<FluidCca>> models(n);
  for (size_t i = 0; i < n; ++i) {
    if (!sc.sender(i).started()) continue;
    models[i] = fluid_model_for(sc.sender(i).cca());
    if (!models[i]) {
      ++stats_.refused_no_model;
      reset_detectors();
      return;
    }
  }

  // Scan the jitter policies: opaqueness blocks the warp, regime changes
  // bound it, release grids quantize it, and the effective constant delay
  // feeds the fluid model's eta term.
  TimeNs epoch = until;
  int64_t quantum_lcm = 1;
  std::vector<TimeNs> eta(n, TimeNs::zero());
  for (size_t i = 0; i < n; ++i) {
    const JitterBox* boxes[2] = {&sc.data_box(i), &sc.ack_box(i)};
    for (const JitterBox* box : boxes) {
      const JitterPolicy::WarpCaps caps = box->policy().warp_caps(now);
      if (caps.opaque) {
        ++stats_.refused_jitter;
        reset_detectors();
        return;
      }
      if (!caps.next_change.is_infinite() && caps.next_change > now) {
        epoch = ccstarve::min(epoch, caps.next_change);
      }
      if (caps.quantum > TimeNs::zero()) {
        quantum_lcm = lcm_capped(quantum_lcm, caps.quantum.ns(),
                                 std::numeric_limits<int64_t>::max() / 4);
        if (quantum_lcm == 0) {
          ++stats_.refused_jitter;
          reset_detectors();
          return;
        }
      }
      eta[i] += caps.eta;
    }
    // A scheduled-but-unfired flow start is a spec-anchored epoch.
    if (sc.sender(i).start_pending()) {
      epoch = ccstarve::min(epoch, sc.sender(i).pending_start_at());
    }
  }
  for (TimeNs mark : config_.epoch_marks) {
    if (mark > now) epoch = ccstarve::min(epoch, mark);
  }

  // Land `guard` before the epoch so re-entry transients wash out first,
  // and round down onto the release grid.
  TimeNs delta = (epoch - config_.guard) - now;
  if (quantum_lcm > 1) {
    delta = TimeNs::nanos((delta.ns() / quantum_lcm) * quantum_lcm);
  }
  if (delta < config_.min_warp) {
    ++stats_.refused_window;
    reset_detectors();
    return;
  }

  // Fluid validation: the model must agree that the packet state is an
  // equilibrium, both instantaneously (rate agreement) and across the gap
  // (drift under integration).
  const double q0 = sc.link().queueing_delay().to_seconds();
  const double link_bps = sc.link().rate().bytes_per_second();
  std::vector<FluidFlowSpec> fflows;
  std::vector<size_t> fidx;
  std::vector<double> w0;
  std::vector<double> pkt_rate;
  for (size_t i = 0; i < n; ++i) {
    if (!models[i]) continue;
    FluidFlowSpec fs;
    fs.cca = models[i];
    fs.rm = sc.min_rtt(i);
    fs.eta = eta[i];
    fflows.push_back(std::move(fs));
    fidx.push_back(i);
    w0.push_back(static_cast<double>(sc.flow_table().cwnd_bytes[i]));
    pkt_rate.push_back(detectors_[i].window_rate_bytes_per_s());
  }
  for (size_t k = 0; k < fflows.size(); ++k) {
    const double rtt_s =
        fflows[k].rm.to_seconds() + fflows[k].eta.to_seconds() + q0;
    const double fluid_rate = w0[k] / std::max(rtt_s, 1e-9);
    const double tol =
        config_.rate_tolerance_frac * pkt_rate[k] + 0.01 * link_bps;
    if (std::abs(fluid_rate - pkt_rate[k]) > tol) {
      ++stats_.refused_disagree;
      reset_detectors();
      return;
    }
  }
  const TimeNs horizon = ccstarve::min(delta, config_.validation_horizon);
  const FluidIntegrateResult fr = integrate_fluid(
      fflows, sc.link().rate(), w0, q0, horizon, config_.fluid_dt);
  if (fr.max_rate_drift_frac > config_.drift_tolerance_frac ||
      fr.queue_drift_s > config_.queue_drift_tolerance_s) {
    ++stats_.refused_disagree;
    reset_detectors();
    return;
  }

  // Certified: snapshot, shift, fork.
  ScenarioSnapshot snap;
  try {
    snap = sc.snapshot();
  } catch (const SnapshotError&) {
    // The chunk boundary happened to be non-quiescent; the next one will
    // almost surely not be. Keep the detectors — this costs one chunk.
    ++stats_.refused_snapshot;
    return;
  }

  std::vector<uint64_t> credits(n, 0);
  for (size_t k = 0; k < fidx.size(); ++k) {
    const double bytes = pkt_rate[k] * delta.to_seconds();
    const uint64_t pkts = static_cast<uint64_t>(
        std::llround(bytes / static_cast<double>(kMss)));
    credits[fidx[k]] = pkts * kMss;
  }
  shift_snapshot(snap, delta, credits);

  ForkOptions fo;
  fo.event_pool = config_.event_pool;
  TraceRecorder* tracer = sc.sim().tracer();
  std::unique_ptr<Scenario> next = Scenario::fork(snap, std::move(fo));
  next->sim().set_tracer(tracer);

  const TimeNs to = now + delta;
  sc_ = std::move(next);
  ++stats_.warps;
  stats_.warped_seconds += delta.to_seconds();
  if (on_fork) on_fork(*sc_, now, to, credits);
  reset_detectors();
}

}  // namespace ccstarve::warp
