// Hybrid packet/fluid fast-forward ("warp") engine — DESIGN.md §14.
//
// Long-horizon starvation experiments spend almost all of their wall-clock
// simulating an equilibrium the fluid models of core/fluid.hpp describe in
// closed form. The warp engine detects that equilibrium online (via the
// settling detectors of core/settle.hpp), validates it against the fluid
// model, and then *teleports* the scenario across the boring interval:
//
//   packet run -> settled? -> snapshot -> fluid check -> shift -> fork
//
// The shift is a pure relabeling of the quiescent snapshot: every absolute
// timestamp moves forward by delta, and every flow's sequence/delivered
// space moves forward by the bytes it would have delivered at its measured
// equilibrium rate. Because the shift is uniform per flow, every transport
// invariant (scoreboard ordering, cumulative-ACK relations, in-flight
// conservation) is preserved *exactly* — the forked scenario is a legal
// packet state that simply believes it is `delta` later and `credit` bytes
// further along.
//
// The engine refuses to warp — and silently keeps packet-simulating —
// whenever its error budget cannot be certified:
//   * a flow's CCA has no fluid counterpart (or BBR is pacing-limited),
//   * an opaque jitter policy is active (random draws, recorded traces),
//   * random loss is configured (RNG draws cannot be fast-forwarded),
//   * receiver-side flow control is active (the app-drain read schedule is
//     a function of absolute time and the persist/window-update timers have
//     no fluid counterpart),
//   * the path uses a delay-server link (delay is a function of absolute
//     arrival time),
//   * the fluid model's rate disagrees with the packet-measured rate, or
//   * integrating the fluid model across the gap drifts (not an
//     equilibrium after all).
// A run in which no warp fires dispatches exactly the event sequence the
// pure packet run would have — trace digests are byte-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/fluid.hpp"
#include "core/settle.hpp"
#include "sim/scenario.hpp"
#include "util/time.hpp"

namespace ccstarve::warp {

// Translates a quiescent snapshot `delta` forward in time and each flow
// `credit_bytes[i]` forward in seq/delivered space (credits must be
// multiples of kMss; missing entries mean 0). Spec-anchored times — pending
// flow starts, jitter step/onset points — stay put; the caller must have
// chosen `delta` so the warp does not cross any of them.
void shift_snapshot(ScenarioSnapshot& snap, TimeNs delta,
                    const std::vector<uint64_t>& credit_bytes);

// The fluid counterpart of a packet CCA, parameterized by the live
// instance's current *beliefs* (its base-RTT / min-RTT filter state), not
// the true path geometry. Returns null when no faithful model exists:
// unknown CCA classes, or BBR outside its cwnd-limited mode.
std::shared_ptr<FluidCca> fluid_model_for(const Cca& cca);

struct WarpConfig {
  // Packet-run granularity between settledness checks.
  TimeNs chunk = TimeNs::seconds(1);
  // Smallest gap worth the snapshot/validate/fork overhead.
  TimeNs min_warp = TimeNs::seconds(5);
  // Re-enter packet simulation this long before the next epoch, so
  // re-entry transients have washed out by the time anything interesting
  // happens.
  TimeNs guard = TimeNs::seconds(1);
  SettleConfig settle;

  // --- error budget ---
  // Fluid initial rate must match the packet-measured rate within
  // rate_tolerance_frac (relative, per flow) plus 1% of link capacity.
  double rate_tolerance_frac = 0.20;
  // Integrating the fluid model across the gap must not move any flow's
  // rate by more than this fraction, nor the queue by more than this.
  double drift_tolerance_frac = 0.10;
  double queue_drift_tolerance_s = 0.005;
  // The drift integration is capped at this horizon — a state that holds
  // still this long under the ODE is a fixed point for any longer gap.
  TimeNs validation_horizon = TimeNs::seconds(30);
  TimeNs fluid_dt = TimeNs::millis(1);

  // Absolute times the warp must never skip across (measurement-window
  // edges, scheduled interventions). Pending flow starts and jitter-policy
  // regime changes are discovered automatically.
  std::vector<TimeNs> epoch_marks;

  // Shared event pool for forked scenarios (see ScenarioConfig).
  EventPool* event_pool = nullptr;
};

struct WarpStats {
  uint64_t warps = 0;
  double warped_seconds = 0.0;
  // Settled states considered (each either warps or is refused).
  uint64_t attempts = 0;
  uint64_t refused_structural = 0;  // delay server / loss / rwnd
  uint64_t refused_no_model = 0;    // CCA without a fluid counterpart
  uint64_t refused_jitter = 0;      // opaque policy / incompatible quanta
  uint64_t refused_window = 0;      // next epoch too close (< min_warp)
  uint64_t refused_disagree = 0;    // fluid/packet mismatch or drift
  uint64_t refused_snapshot = 0;    // not quiescent at the chunk boundary
  uint64_t refusals() const {
    return refused_structural + refused_no_model + refused_jitter +
           refused_window + refused_disagree + refused_snapshot;
  }
};

// Drives a scenario to a horizon, warping across certified-converged
// intervals. Owns the scenario: every warp replaces it with a fork, so
// callers must re-resolve any pointers into it from the on_fork hook.
class WarpRunner {
 public:
  WarpRunner(std::unique_ptr<Scenario> sc, WarpConfig config);

  // Invoked with the freshly forked scenario after every warp, before the
  // packet run resumes. Probes (telemetry, invariant checkers) must be
  // re-attached here; the trace recorder is carried over automatically.
  std::function<void(Scenario& sc, TimeNs from, TimeNs to,
                     const std::vector<uint64_t>& credit_bytes)>
      on_fork;

  // Advances to absolute time `until` (chunked run_until + warps).
  void run_until(TimeNs until);

  Scenario& scenario() { return *sc_; }
  const Scenario& scenario() const { return *sc_; }
  std::unique_ptr<Scenario> take_scenario() { return std::move(sc_); }
  const WarpStats& stats() const { return stats_; }

 private:
  void ensure_flows();
  void feed_detectors();
  bool all_started_settled() const;
  void reset_detectors();
  void attempt_warp(TimeNs until);

  std::unique_ptr<Scenario> sc_;
  WarpConfig config_;
  WarpStats stats_;
  std::vector<SettlingDetector> detectors_;
  // High-water marks into each flow's stats series (which survive forks).
  std::vector<size_t> fed_rtt_;
  std::vector<size_t> fed_delivered_;
  // Structural warpability (delay server, loss) never changes after
  // construction; checked once, refusal counted once.
  bool structural_ok_ = true;
  bool structural_counted_ = false;
};

}  // namespace ccstarve::warp
