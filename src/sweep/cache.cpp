#include "sweep/cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "sweep/record.hpp"

namespace ccstarve::sweep {

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) std::filesystem::create_directories(dir_);
}

uint64_t ResultCache::fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string ResultCache::path_for(const std::string& key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.json",
                static_cast<unsigned long long>(fnv1a(key)));
  return dir_ + "/" + name;
}

std::optional<std::string> ResultCache::lookup(const std::string& key) const {
  if (!enabled()) return std::nullopt;
  std::ifstream is(path_for(key));
  if (!is) return std::nullopt;
  std::string line;
  if (!std::getline(is, line)) return std::nullopt;
  const auto rec = SweepRecord::from_json(line);
  if (!rec || rec->key != key) return std::nullopt;
  return line;
}

void ResultCache::store(const std::string& key,
                        const std::string& record_line) const {
  if (!enabled()) return;
  const std::string path = path_for(key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    os << record_line << '\n';
    if (!os) return;  // disk full etc: leave no entry rather than a bad one
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
}

}  // namespace ccstarve::sweep
