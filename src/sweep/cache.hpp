// Disk-backed sweep result cache: one file per completed point, named by
// the FNV-1a hash of the point's canonical key and containing the point's
// serialized JSONL record verbatim. Re-running a sweep skips every point
// whose record is already on disk, which also makes interrupted sweeps
// resumable — workers write each record as soon as the point finishes.
//
// Lookups verify the stored record's embedded key against the requested
// key, so a (vanishingly unlikely) 64-bit hash collision degrades to a
// cache miss rather than returning the wrong point's result.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace ccstarve::sweep {

class ResultCache {
 public:
  // Empty dir disables the cache (lookup always misses, store is a no-op).
  // A non-empty dir is created if missing.
  explicit ResultCache(std::string dir);

  bool enabled() const { return !dir_.empty(); }

  // Returns the stored record line for `key`, or nullopt on miss,
  // key mismatch, or unparseable file.
  std::optional<std::string> lookup(const std::string& key) const;

  // Persists a record line for `key`. Writes to a temporary file first and
  // renames into place so a killed sweep never leaves a truncated entry.
  // Safe to call concurrently for distinct keys.
  void store(const std::string& key, const std::string& record_line) const;

  // Path of the entry file for `key` (whether or not it exists).
  std::string path_for(const std::string& key) const;

  static uint64_t fnv1a(const std::string& s);

 private:
  std::string dir_;
};

}  // namespace ccstarve::sweep
