#include "sweep/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <ostream>

#include "core/fairness.hpp"
#include "obs/telemetry.hpp"
#include "sim/scenario.hpp"
#include "sim/warp/warp.hpp"
#include "sweep/cache.hpp"
#include "sweep/prefix.hpp"
#include "sweep/spec_parse.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace ccstarve::sweep {

namespace {

std::atomic<bool> g_stop{false};

// Per-run worker identities for self-profiling. parallel_for spawns fresh
// threads per call, so thread_local ids must be re-issued per sweep: bumping
// the generation invalidates every cached id (including the main thread's,
// which serves cache hits in share-prefix pass 1).
std::atomic<uint64_t> g_worker_gen{0};
std::atomic<int> g_next_worker{0};

int profiling_worker_id() {
  thread_local uint64_t tls_gen = ~uint64_t{0};
  thread_local int tls_id = -1;
  const uint64_t gen = g_worker_gen.load(std::memory_order_relaxed);
  if (tls_gen != gen) {
    tls_gen = gen;
    tls_id = g_next_worker.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_id;
}

// Seed derivation: every random element of a point's scenario is seeded
// from the point's seed axis and the flow index only, so a point's record
// does not depend on which worker ran it or on the rest of the grid. The
// offsets mirror ccstarve_run's historical choices (7/77/100/200) shifted
// into per-point seed space.
uint64_t seed_base(const SweepPoint& pt) { return pt.seed * 1000; }

}  // namespace

void request_stop() { g_stop.store(true, std::memory_order_relaxed); }
void clear_stop() { g_stop.store(false, std::memory_order_relaxed); }
bool stop_requested() { return g_stop.load(std::memory_order_relaxed); }

std::unique_ptr<Scenario> build_point_scenario(const SweepPoint& pt,
                                               EventPool* event_pool) {
  const auto flows = parse_flow_set(pt.flow_set);

  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(pt.link_mbps);
  cfg.buffer_bytes = parse_buffer_bytes(pt.buffer, cfg.link_rate, pt.rtt_ms);
  cfg.event_pool = event_pool;
  auto sc = std::make_unique<Scenario>(std::move(cfg));

  for (size_t i = 0; i < flows.size(); ++i) {
    const FlowArgs& fa = flows[i];
    const uint64_t base = seed_base(pt);
    FlowSpec spec;
    spec.cca = make_cca(fa.cca, base + 7 + i);
    spec.min_rtt = TimeNs::millis(fa.rtt_ms.value_or(pt.rtt_ms));
    spec.start_at = TimeNs::seconds(fa.start_s);
    spec.loss_rate = fa.loss;
    spec.loss_seed = base + 77 + i;
    std::string data_jitter = fa.data_jitter;
    // The grid's jitter axis targets flow 0 (the "victim" in the paper's
    // constructions); a per-flow datajitter= option takes precedence.
    if (i == 0 && data_jitter.empty()) data_jitter = pt.jitter;
    if (auto j = make_jitter(fa.ack_jitter, base + 100 + i)) {
      spec.ack_jitter = std::move(j);
    }
    if (auto j = make_jitter(data_jitter, base + 200 + i)) {
      spec.data_jitter = std::move(j);
    }
    spec.recv = make_recv_config(fa);
    spec.stats_interval = TimeNs::millis(10);
    sc->add_flow(std::move(spec));
  }
  return sc;
}

namespace {

// Drives a freshly built point scenario to its duration through the warp
// engine. The warm-up boundary is pinned as an epoch mark so no warp skips
// across the measurement window's edge; a telemetry probe, when present,
// is re-seated across every warp via note_warp.
std::unique_ptr<Scenario> run_point_warp(std::unique_ptr<Scenario> sc,
                                         const SweepPoint& pt,
                                         EventPool* pool,
                                         obs::FlowTelemetry* telemetry,
                                         uint64_t* warps_out) {
  warp::WarpConfig wc;
  wc.event_pool = pool;
  wc.epoch_marks.push_back(TimeNs::seconds(pt.warmup_s));
  warp::WarpRunner runner(std::move(sc), std::move(wc));
  runner.on_fork = [&](Scenario& fsc, TimeNs from, TimeNs to,
                       const std::vector<uint64_t>& credits) {
    if (telemetry) telemetry->note_warp(fsc, from, to, credits);
  };
  runner.run_until(TimeNs::seconds(pt.duration_s));
  if (warps_out) *warps_out += runner.stats().warps;
  return runner.take_scenario();
}

}  // namespace

SweepRecord run_point(const SweepPoint& pt) {
  // Each worker thread keeps a warm event pool across the grid points it
  // runs, so per-point Simulator construction reuses event nodes instead of
  // re-carving them. Determinism is unaffected: the pool only recycles
  // storage, never ordering state.
  static thread_local EventPool tls_pool;
  auto sc = build_point_scenario(pt, &tls_pool);
  sc->run_until(TimeNs::seconds(pt.duration_s));
  return measure_point(pt, *sc);
}

SweepRecord run_point_fast_forward(const SweepPoint& pt,
                                   uint64_t* warps_out) {
  static thread_local EventPool tls_pool;
  auto sc = build_point_scenario(pt, &tls_pool);
  sc = run_point_warp(std::move(sc), pt, &tls_pool, nullptr, warps_out);
  SweepRecord rec = measure_point(pt, *sc);
  // Matches effective_key's suffix: the cache verifies stored keys, and a
  // fast-forwarded record must never satisfy a pure-run lookup.
  rec.key += "|ff=1";
  return rec;
}

namespace {

std::string starvation_key_suffix(double window_ms, double threshold) {
  return "|swin=" + canon_num(window_ms) + "|sthr=" + canon_num(threshold);
}

SweepRecord run_point_telemetry_impl(const SweepPoint& pt,
                                     double starvation_window_ms,
                                     double starvation_threshold,
                                     bool fast_forward, uint64_t* warps_out) {
  static thread_local EventPool tls_pool;
  auto sc = build_point_scenario(pt, &tls_pool);

  obs::TelemetryConfig tc;
  tc.interval = TimeNs::millis(10);
  tc.ratio_window = TimeNs::millis(starvation_window_ms);
  tc.starvation_threshold = starvation_threshold;
  obs::FlowTelemetry telemetry(std::move(tc));
  telemetry.attach(*sc);

  const TimeNs duration = TimeNs::seconds(pt.duration_s);
  if (fast_forward) {
    sc = run_point_warp(std::move(sc), pt, &tls_pool, &telemetry, warps_out);
  } else {
    sc->run_until(duration);
  }
  telemetry.finish(duration);

  SweepRecord rec = measure_point(pt, *sc);
  rec.key += starvation_key_suffix(starvation_window_ms, starvation_threshold);
  if (fast_forward) rec.key += "|ff=1";
  const TimeNs fc = telemetry.starvation().first_crossing();
  rec.first_crossing_s = fc == TimeNs(-1) ? -1.0 : fc.to_seconds();
  return rec;
}

}  // namespace

std::string effective_key(const SweepPoint& pt, const SweepOptions& opt) {
  std::string key = pt.key();
  if (opt.starvation_window_ms > 0) {
    key += starvation_key_suffix(opt.starvation_window_ms,
                                 opt.starvation_threshold);
  }
  // Fast-forwarded records are verdict-equivalent but not bit-identical to
  // pure packet runs, so the two must never share cache entries.
  if (opt.fast_forward) key += "|ff=1";
  return key;
}

SweepRecord run_point_telemetry(const SweepPoint& pt,
                                double starvation_window_ms,
                                double starvation_threshold) {
  return run_point_telemetry_impl(pt, starvation_window_ms,
                                  starvation_threshold, false, nullptr);
}

SweepRecord measure_point(const SweepPoint& pt, const Scenario& sc) {
  const auto flows = parse_flow_set(pt.flow_set);
  const TimeNs duration = TimeNs::seconds(pt.duration_s);
  const TimeNs warmup = TimeNs::seconds(pt.warmup_s);

  std::vector<double> flow_rtt_ms;
  for (const auto& fa : flows) {
    flow_rtt_ms.push_back(fa.rtt_ms.value_or(pt.rtt_ms));
  }

  SweepRecord rec;
  rec.key = pt.key();
  for (const auto& fa : flows) rec.ccas.push_back(fa.cca);

  const FairnessReport fair = measure_fairness(sc, warmup, duration);
  rec.throughput_mbps = fair.throughput_mbps;
  rec.min_mbps = *std::min_element(rec.throughput_mbps.begin(),
                                   rec.throughput_mbps.end());
  rec.max_mbps = *std::max_element(rec.throughput_mbps.begin(),
                                   rec.throughput_mbps.end());
  rec.starvation_ratio = fair.ratio;
  rec.jain = fair.jain;
  rec.utilization = fair.utilization;

  double qdelay_sum = 0.0;
  size_t qdelay_n = 0;
  for (size_t i = 0; i < flows.size(); ++i) {
    const TimeSeries& rtt = sc.stats(i).rtt_seconds;
    std::vector<double> window;
    for (const auto& s : rtt.samples()) {
      if (s.at >= warmup && s.at <= duration) window.push_back(s.value);
    }
    if (window.empty()) {
      // A fully starved flow may never complete an RTT sample in the
      // window; report zeros rather than poisoning aggregates with NaN.
      rec.mean_rtt_ms.push_back(0.0);
      rec.d_min_ms.push_back(0.0);
      rec.d_max_ms.push_back(0.0);
      continue;
    }
    const double mean_ms = rtt.mean_over(warmup, duration) * 1e3;
    // 1%-trimmed converged delay range, matching the rate-delay figures'
    // treatment of stray samples (e.g. a ProbeRTT dip).
    const double d_min_ms = percentile(window, 1.0) * 1e3;
    const double d_max_ms = percentile(std::move(window), 99.0) * 1e3;
    rec.mean_rtt_ms.push_back(mean_ms);
    rec.d_min_ms.push_back(d_min_ms);
    rec.d_max_ms.push_back(d_max_ms);
    qdelay_sum += std::max(0.0, mean_ms - flow_rtt_ms[i]);
    rec.qdelay_max_ms = std::max(rec.qdelay_max_ms,
                                 std::max(0.0, d_max_ms - flow_rtt_ms[i]));
    ++qdelay_n;
    rec.retransmits += sc.stats(i).fast_retransmits;
    rec.timeouts += sc.stats(i).timeouts;
  }
  rec.qdelay_mean_ms = qdelay_n ? qdelay_sum / qdelay_n : 0.0;
  return rec;
}

SweepOutcome run_sweep(const std::vector<SweepPoint>& points,
                       const SweepOptions& opt) {
  const size_t n = points.size();
  const bool telemetry = opt.starvation_window_ms > 0;
  // See SweepOptions::starvation_window_ms: first crossings are not
  // fork-invariant, so telemetry-enabled sweeps always cold-run misses.
  // Fast-forward likewise disables prefix sharing — the warp engine skips
  // the shared stem analytically, so the stem/fork machinery would only
  // add state to reason about for no wall-clock gain.
  const bool share_prefix =
      opt.share_prefix && !telemetry && !opt.fast_forward;
  std::vector<std::string> lines(n);
  // 0 = not completed; otherwise how: 'r' simulated, 'c' cached, 'f' forked.
  std::vector<char> done(n, 0);
  std::atomic<size_t> completed{0};
  std::mutex progress_mu;
  const ResultCache cache(opt.cache_dir);
  // Global request_stop() or this run's own cancel flag (serve jobs).
  auto stopping = [&] {
    return stop_requested() ||
           (opt.cancel != nullptr &&
            opt.cancel->load(std::memory_order_relaxed));
  };

  obs::SweepProfile profile;
  profile.enabled = opt.profile;
  std::mutex profile_mu;
  g_worker_gen.fetch_add(1, std::memory_order_relaxed);
  g_next_worker.store(0, std::memory_order_relaxed);
  const double sweep_wall0 = obs::wall_clock_ms();

  auto note = [&](size_t i, const char* how) {
    const size_t c = completed.fetch_add(1, std::memory_order_relaxed) + 1;
    if (opt.progress) {
      std::lock_guard<std::mutex> lock(progress_mu);
      std::fprintf(stderr, "sweep: %zu/%zu (%s) %s\n", c, n, how,
                   points[i].key().c_str());
    }
  };
  // Charges the elapsed wall/CPU since (wall0, cpu0) to point i on the
  // calling worker. The caller samples the clocks before starting the
  // point, so stem simulation in a prefix group lands on its first member.
  auto profile_point = [&](size_t i, char how, double wall0, double cpu0) {
    if (!opt.profile) return;
    obs::PointProfile p;
    p.key = points[i].key();
    p.how = how;
    p.wall_ms = obs::wall_clock_ms() - wall0;
    p.cpu_ms = obs::thread_cpu_ms() - cpu0;
    p.worker = profiling_worker_id();
    std::lock_guard<std::mutex> lock(profile_mu);
    const size_t w = static_cast<size_t>(p.worker);
    if (profile.workers.size() <= w) profile.workers.resize(w + 1);
    profile.workers[w].busy_wall_ms += p.wall_ms;
    profile.workers[w].busy_cpu_ms += p.cpu_ms;
    profile.workers[w].points += 1;
    profile.points.push_back(std::move(p));
  };
  std::atomic<uint64_t> total_warps{0};
  auto run_miss = [&](const SweepPoint& pt) {
    uint64_t warps = 0;
    SweepRecord rec;
    if (telemetry) {
      rec = opt.fast_forward
                ? run_point_telemetry_impl(pt, opt.starvation_window_ms,
                                           opt.starvation_threshold, true,
                                           &warps)
                : run_point_telemetry(pt, opt.starvation_window_ms,
                                      opt.starvation_threshold);
    } else {
      rec = opt.fast_forward ? run_point_fast_forward(pt, &warps)
                             : run_point(pt);
    }
    if (warps) total_warps.fetch_add(warps, std::memory_order_relaxed);
    return rec;
  };
  auto try_cache = [&](size_t i) {
    auto hit = cache.lookup(effective_key(points[i], opt));
    if (!hit) return false;
    lines[i] = std::move(*hit);
    done[i] = 'c';
    note(i, "cached");
    if (opt.on_line) opt.on_line(i, lines[i], 'c');
    return true;
  };
  auto finish = [&](size_t i, const SweepRecord& rec, char how,
                    const char* how_name) {
    lines[i] = rec.to_json();
    cache.store(effective_key(points[i], opt), lines[i]);
    done[i] = how;
    note(i, how_name);
    if (opt.on_line) opt.on_line(i, lines[i], how);
  };

  if (!share_prefix) {
    parallel_for(n, opt.jobs, [&](size_t i) {
      if (stopping()) return;
      const double wall0 = obs::wall_clock_ms();
      const double cpu0 = obs::thread_cpu_ms();
      if (try_cache(i)) {
        profile_point(i, 'c', wall0, cpu0);
        return;
      }
      finish(i, run_miss(points[i]), 'r', "run");
      profile_point(i, 'r', wall0, cpu0);
    });
  } else {
    // Pass 1: serve cache hits (cheap disk reads, done serially), then
    // plan prefix sharing over the misses only — a group whose members
    // are all cached never builds its stem.
    std::vector<size_t> misses;
    std::vector<SweepPoint> miss_points;
    for (size_t i = 0; i < n && !stopping(); ++i) {
      const double wall0 = obs::wall_clock_ms();
      const double cpu0 = obs::thread_cpu_ms();
      if (try_cache(i)) {
        profile_point(i, 'c', wall0, cpu0);
      } else {
        misses.push_back(i);
        miss_points.push_back(points[i]);
      }
    }
    const PrefixPlan plan = plan_prefix_sharing(miss_points);

    // Pass 2: one work unit per stem group or solo point. Records are
    // byte-identical with and without sharing (fork equivalence, pinned
    // by the sweep tests), so the cache stays oblivious to how a point
    // was produced.
    const size_t units = plan.groups.size() + plan.solo.size();
    parallel_for(units, opt.jobs, [&](size_t u) {
      if (stopping()) return;
      double wall0 = obs::wall_clock_ms();
      double cpu0 = obs::thread_cpu_ms();
      if (u >= plan.groups.size()) {
        const size_t i = misses[plan.solo[u - plan.groups.size()]];
        finish(i, run_point(points[i]), 'r', "run");
        profile_point(i, 'r', wall0, cpu0);
        return;
      }
      static thread_local EventPool tls_pool;
      const PrefixGroup& g = plan.groups[u];
      SweepPoint stem_pt = points[misses[g.members.front()]];
      stem_pt.jitter = "none";
      const ScenarioSnapshot snap = [&] {
        auto stem = build_point_scenario(stem_pt, &tls_pool);
        stem->run_until(g.fork_at);
        return stem->snapshot();
      }();
      for (size_t m : g.members) {
        if (stopping()) return;
        const size_t i = misses[m];
        const SweepPoint& pt = points[i];
        ForkOptions fo;
        fo.event_pool = &tls_pool;
        // Same policy instance a cold run would build (seed offset 200,
        // flow 0); "none" members just continue the stem's ideal path.
        if (auto j = make_jitter(pt.jitter, seed_base(pt) + 200)) {
          fo.flows.resize(1);
          fo.flows[0].replace_data_jitter = true;
          fo.flows[0].data_jitter = std::move(j);
        }
        auto sc = Scenario::fork(snap, std::move(fo));
        sc->run_until(TimeNs::seconds(pt.duration_s));
        finish(i, measure_point(pt, *sc), 'f', "forked");
        // The group's first member also carries the stem's cost, making
        // the prefix-sharing saving visible as (first - later) wall time.
        profile_point(i, 'f', wall0, cpu0);
        wall0 = obs::wall_clock_ms();
        cpu0 = obs::thread_cpu_ms();
      }
    });
  }

  SweepOutcome out;
  out.stats.total = n;
  for (size_t i = 0; i < n; ++i) {
    if (!done[i]) {
      ++out.stats.skipped;
      continue;
    }
    auto rec = SweepRecord::from_json(lines[i]);
    if (!rec) {
      // lines[i] came from to_json or a key-verified cache entry; a parse
      // failure here would be a bug. Count the point as skipped rather
      // than attributing a record that is not in the outcome, so
      // stats.done() == records.size() holds unconditionally.
      ++out.stats.skipped;
      continue;
    }
    switch (done[i]) {
      case 'c':
        ++out.stats.cache_hits;
        break;
      case 'f':
        ++out.stats.forked;
        break;
      default:
        ++out.stats.simulated;
        break;
    }
    out.records.push_back(std::move(*rec));
    out.lines.push_back(std::move(lines[i]));
  }
  out.stats.warps = total_warps.load(std::memory_order_relaxed);
  profile.wall_ms = obs::wall_clock_ms() - sweep_wall0;
  out.profile = std::move(profile);
  out.interrupted = stopping();
  return out;
}

void write_jsonl(std::ostream& os, const SweepOutcome& outcome) {
  for (const auto& line : outcome.lines) os << line << '\n';
}

namespace {

// Pulls one "name=value" field out of a canonical point key for display.
std::string key_field(const std::string& key, const std::string& name) {
  for (const auto& part : split(key, '|')) {
    if (part.compare(0, name.size() + 1, name + "=") == 0) {
      return part.substr(name.size() + 1);
    }
  }
  return "?";
}

std::string join_nums(const std::vector<double>& vs, int precision) {
  std::string out;
  for (size_t i = 0; i < vs.size(); ++i) {
    if (i) out += "/";
    out += Table::num(vs[i], precision);
  }
  return out;
}

}  // namespace

Table summary_table(const std::vector<SweepRecord>& records) {
  Table t({"flows", "link", "rtt", "jitter", "buf", "seed",
           "thr Mbit/s", "ratio", "jain", "util", "qdelay ms"});
  for (const auto& r : records) {
    t.add_row({key_field(r.key, "flows"), key_field(r.key, "link"),
               key_field(r.key, "rtt"), key_field(r.key, "jit"),
               key_field(r.key, "buf"), key_field(r.key, "seed"),
               join_nums(r.throughput_mbps, 2),
               Table::num(r.starvation_ratio, 2), Table::num(r.jain, 3),
               Table::num(r.utilization, 2),
               Table::num(r.qdelay_mean_ms, 2)});
  }
  return t;
}

}  // namespace ccstarve::sweep
