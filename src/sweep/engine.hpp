// Parallel sweep executor. Each SweepPoint is simulated by exactly one
// worker thread on its own Scenario (which owns its own Simulator and RNGs
// — no state is shared between points), so results are bit-for-bit
// identical to a serial run regardless of --jobs. Completed points are
// written to the result cache immediately, making interrupted sweeps
// resumable; cached points are returned verbatim without re-simulating.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "obs/profile.hpp"
#include "sim/scenario.hpp"
#include "sweep/grid.hpp"
#include "sweep/record.hpp"
#include "util/table.hpp"

namespace ccstarve::sweep {

struct SweepOptions {
  // Worker threads; 0 = one per hardware thread (the same convention as
  // RateDelaySweepConfig::jobs — every parallel knob in this codebase
  // defaults to "use the machine").
  unsigned jobs = 0;
  std::string cache_dir;  // empty = caching disabled
  bool progress = false;  // one stderr line per completed point
  // Share warm-up prefixes between points that differ only in a
  // late-activating jitter axis (see sweep/prefix.hpp): one stem run per
  // group, snapshotted and forked per member. Off by default; records are
  // byte-identical either way, sharing only changes wall-clock time.
  bool share_prefix = false;
  // Collect per-point wall/CPU cost and per-worker busy time into
  // SweepOutcome::profile. Profiling data is wall-clock-dependent and is
  // kept strictly out of the canonical result records (see obs/profile.hpp).
  bool profile = false;
  // > 0: attach a FlowTelemetry probe to every simulated point and export
  // the first time the sliding-window (this many ms) throughput ratio
  // crossed starvation_threshold as SweepRecord::first_crossing_s. Changes
  // record content, so the window/threshold become part of the record key
  // (plain and telemetry-enabled sweeps never share cache entries), and
  // share_prefix is ignored: a probe attached to a forked continuation has
  // a shorter history than a cold run's, so first crossings would not be
  // fork-invariant.
  double starvation_window_ms = 0;
  double starvation_threshold = 2.0;
  // Run points through the hybrid packet/fluid fast-forward engine
  // (sim/warp): certified-converged stretches are skipped analytically, so
  // long-horizon points finish in a fraction of the packet-run wall time.
  // Starvation verdicts match pure runs within the warp error budget, but
  // records are not bit-identical when a warp fires, so the cache key gains
  // an "|ff=1" suffix (hybrid and pure sweeps never share entries) and
  // share_prefix is ignored (the warp engine already skips the stem cost).
  bool fast_forward = false;
  // Per-run cooperative cancellation, for callers that host several sweeps
  // in one process (the serve daemon runs one per job): when set and *cancel
  // becomes true, workers finish the point they are on and skip the rest,
  // exactly like the global request_stop() but scoped to this run. The
  // outcome has `interrupted` set. The flag must outlive run_sweep.
  const std::atomic<bool>* cancel = nullptr;
  // Lifecycle hook: called once per completed point, right after its
  // canonical JSONL line exists — how is 'r' (simulated), 'c' (cache hit)
  // or 'f' (forked continuation). Invoked concurrently from worker threads
  // in completion order (NOT grid order); the callee synchronizes. Skipped
  // points never reach the hook.
  std::function<void(size_t index, const std::string& line, char how)> on_line;
};

struct SweepStats {
  size_t total = 0;       // points in the grid
  size_t simulated = 0;   // points cold-run this invocation
  size_t cache_hits = 0;  // points served from the result cache
  size_t forked = 0;      // points completed as forked continuations
  size_t skipped = 0;     // points abandoned after request_stop()
  // Total fast-forward warps fired across all simulated points (0 unless
  // SweepOptions::fast_forward). Purely informational — not part of the
  // partition invariant below.
  uint64_t warps = 0;
  // Invariant: simulated + cache_hits + forked + skipped == total, and
  // done() always equals the number of records in the outcome.
  size_t done() const { return simulated + cache_hits + forked; }
};

struct SweepOutcome {
  // Completed points in grid order. `lines` holds each record's canonical
  // JSONL line — for cache hits this is the stored line verbatim, which is
  // what makes warm-cache output byte-identical to the run that filled it.
  std::vector<SweepRecord> records;
  std::vector<std::string> lines;
  SweepStats stats;
  // Self-profiling data; populated only when SweepOptions::profile is set.
  obs::SweepProfile profile;
  bool interrupted = false;
};

// Simulates one point: builds the Scenario from the point's specs, runs it
// for the point's duration, and measures throughput/fairness/delay over
// [warmup_s, duration_s]. Deterministic in the point alone.
SweepRecord run_point(const SweepPoint& pt);

// run_point with a starvation-timeline telemetry probe attached (10 ms
// cadence): the record additionally carries first_crossing_s and its key
// gains a "|swin=...|sthr=..." suffix. Deterministic in (pt, window,
// threshold) alone.
SweepRecord run_point_telemetry(const SweepPoint& pt,
                                double starvation_window_ms,
                                double starvation_threshold);

// run_point through the warp engine (sim/warp): the point's warm-up
// boundary is pinned as an epoch mark so no warp skips across the
// measurement window's edge. When `warps_out` is non-null it receives the
// number of warps that fired (0 means the run was byte-identical to
// run_point). Deterministic in the point alone.
SweepRecord run_point_fast_forward(const SweepPoint& pt,
                                   uint64_t* warps_out = nullptr);

// The key under which run_sweep caches/labels a point's record: pt.key()
// plus the starvation window/threshold suffix when opt enables telemetry.
std::string effective_key(const SweepPoint& pt, const SweepOptions& opt);

// The two halves of run_point, exposed so prefix sharing (and tests) can
// put a snapshot/fork between them: build the point's scenario without
// running it, and measure a scenario that has run to the point's duration.
std::unique_ptr<Scenario> build_point_scenario(const SweepPoint& pt,
                                               EventPool* event_pool);
SweepRecord measure_point(const SweepPoint& pt, const Scenario& sc);

// Runs every point across opt.jobs workers. Never throws on a per-point
// basis — a malformed spec throws SpecError before any simulation starts
// (points are validated when the grid expands, and run_point re-derives
// everything from validated specs).
SweepOutcome run_sweep(const std::vector<SweepPoint>& points,
                       const SweepOptions& opt);

// Asks an in-flight run_sweep to stop: workers finish the point they are
// on, remaining points are skipped, and the outcome (with interrupted set)
// contains every record completed so far. Safe to call from a signal
// handler. clear_stop() re-arms for the next sweep.
void request_stop();
void clear_stop();
bool stop_requested();

// Writes outcome.lines, one record per line.
void write_jsonl(std::ostream& os, const SweepOutcome& outcome);

// Human-readable per-point summary (one row per record).
Table summary_table(const std::vector<SweepRecord>& records);

}  // namespace ccstarve::sweep
