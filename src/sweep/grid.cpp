#include "sweep/grid.hpp"

#include <cstdio>

#include "sweep/spec_parse.hpp"
#include "util/rate.hpp"

namespace ccstarve::sweep {

std::string canon_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  std::string s(buf);
  if (s == "-0") s = "0";
  return s;
}

std::string SweepPoint::key() const {
  std::string k;
  k += "flows=" + flow_set;
  k += "|link=" + canon_num(link_mbps);
  k += "|rtt=" + canon_num(rtt_ms);
  k += "|jit=" + (jitter.empty() ? std::string("none") : jitter);
  k += "|buf=" + (buffer.empty() ? std::string("-") : buffer);
  k += "|seed=" + std::to_string(seed);
  k += "|dur=" + canon_num(duration_s);
  k += "|warm=" + canon_num(warmup_s);
  return k;
}

std::vector<SweepPoint> SweepGrid::expand() const {
  if (flow_sets.empty()) throw SpecError("sweep grid has no flow sets");
  auto require = [](bool ok, const char* what) {
    if (!ok) throw SpecError(std::string("sweep grid axis '") + what +
                             "' is empty");
  };
  require(!link_mbps.empty(), "link");
  require(!rtt_ms.empty(), "rtt");
  require(!jitter.empty(), "jitter");
  require(!buffer.empty(), "buffer");
  require(!seeds.empty(), "seed");
  require(!duration_s.empty(), "duration");

  // Validate specs once up front rather than per point (a flow set may be
  // repeated across thousands of points).
  for (const auto& fs : flow_sets) parse_flow_set(fs);
  for (const auto& j : jitter) make_jitter(j, 1);
  for (const auto& b : buffer) parse_buffer_bytes(b, Rate::mbps(60), 60);

  std::vector<SweepPoint> out;
  out.reserve(flow_sets.size() * link_mbps.size() * rtt_ms.size() *
              jitter.size() * buffer.size() * seeds.size() *
              duration_s.size());
  for (const auto& fs : flow_sets)
    for (double link : link_mbps)
      for (double rtt : rtt_ms)
        for (const auto& jit : jitter)
          for (const auto& buf : buffer)
            for (uint64_t seed : seeds)
              for (double dur : duration_s) {
                SweepPoint p;
                p.flow_set = fs;
                p.link_mbps = link;
                p.rtt_ms = rtt;
                p.jitter = jit.empty() ? "none" : jit;
                p.buffer = buf.empty() ? "-" : buf;
                p.seed = seed;
                p.duration_s = dur;
                p.warmup_s = dur * warmup_fraction;
                out.push_back(std::move(p));
              }
  return out;
}

}  // namespace ccstarve::sweep
