// Declarative sweep grids: a cartesian product of scenario axes expanded
// into SweepPoints, each with a canonical string key. The key is the unit
// of identity for the whole subsystem — JSONL records echo it, the result
// cache is addressed by its hash, and the determinism guarantee is stated
// in terms of it (same key => same record bytes, regardless of worker
// count or which machine ran the point).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ccstarve::sweep {

// One concrete scenario to simulate. All fields are plain values (flow sets
// and jitter remain spec strings; see spec_parse.hpp for the grammar) so a
// point is trivially copyable across worker threads and serializable into
// its key.
struct SweepPoint {
  std::string flow_set;   // '+'-joined flow specs, e.g. "copa+copa:loss=0.01"
  double link_mbps = 60;
  double rtt_ms = 60;     // default per-flow min RTT (flow rtt= overrides)
  std::string jitter;     // data-path jitter on flow 0 ("none" = ideal path)
  std::string buffer;     // "-" unbounded | <pkts> | <x>bdp
  uint64_t seed = 1;
  double duration_s = 60;
  double warmup_s = 0;    // measurement window is [warmup_s, duration_s]

  // Canonical key, e.g.
  //   flows=copa+copa|link=120|rtt=60|jit=none|buf=-|seed=1|dur=60|warm=10
  // Numbers are rendered with canon_num so the same value always yields the
  // same bytes.
  std::string key() const;
};

// Axis values for the cartesian product. expand() iterates axes outermost
// to innermost in declaration order, so point order is deterministic and
// independent of how the axes were filled in.
struct SweepGrid {
  std::vector<std::string> flow_sets;          // required, at least one
  std::vector<double> link_mbps = {60};
  std::vector<double> rtt_ms = {60};
  std::vector<std::string> jitter = {"none"};
  std::vector<std::string> buffer = {"-"};
  std::vector<uint64_t> seeds = {1};
  std::vector<double> duration_s = {60};
  // Measurement window starts at this fraction of the duration (1/6 of a
  // 60 s run reproduces the benches' [10 s, 60 s] window).
  double warmup_fraction = 1.0 / 6.0;

  // Validates every spec (throws SpecError on a bad axis value) and returns
  // the full product. Size is the product of the axis sizes.
  std::vector<SweepPoint> expand() const;
};

// Shortest round-trippable decimal rendering used in keys and JSONL
// records: "%.12g" with "-0" normalized to "0".
std::string canon_num(double v);

}  // namespace ccstarve::sweep
