#include "sweep/prefix.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "sweep/spec_parse.hpp"

namespace ccstarve::sweep {

TimeNs jitter_activation(const std::string& jitter_spec) {
  if (jitter_spec.empty() || jitter_spec == "none") return TimeNs::infinite();
  const std::string step = "step:";
  if (jitter_spec.compare(0, step.size(), step) != 0) return TimeNs::zero();
  // "step:<ms>,<start s>" — active from its onset, idle before it.
  const auto args = split(jitter_spec.substr(step.size()), ',');
  if (args.size() != 2) return TimeNs::zero();
  try {
    return TimeNs::seconds(std::stod(args[1]));
  } catch (const std::exception&) {
    return TimeNs::zero();
  }
}

PrefixPlan plan_prefix_sharing(const std::vector<SweepPoint>& points) {
  PrefixPlan plan;
  // Stem signature: the point's canonical key with the jitter axis
  // neutralized ("*" is not a valid jitter spec, so signatures cannot
  // collide with real keys). std::map keeps group order deterministic.
  std::map<std::string, std::vector<size_t>> groups;
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& pt = points[i];
    // A per-flow datajitter= override makes the grid's jitter axis inert
    // for this point, and an immediately-active jitter has no shareable
    // prefix; both run cold.
    const bool grid_jitter_applies =
        parse_flow_set(pt.flow_set).front().data_jitter.empty();
    if (!grid_jitter_applies ||
        jitter_activation(pt.jitter) == TimeNs::zero()) {
      plan.solo.push_back(i);
      continue;
    }
    SweepPoint sig = pt;
    sig.jitter = "*";
    groups[sig.key()].push_back(i);
  }
  for (auto& [sig, members] : groups) {
    if (members.size() < 2) {
      // Nothing to share with — run cold.
      plan.solo.push_back(members.front());
      continue;
    }
    TimeNs earliest = TimeNs::infinite();
    for (size_t i : members) {
      earliest = std::min(earliest, jitter_activation(points[i].jitter));
    }
    // An all-"none" group (duplicate points) still forks; the stem then
    // simply covers almost the whole run.
    const TimeNs duration = TimeNs::seconds(points[members.front()].duration_s);
    PrefixGroup g;
    g.members = std::move(members);
    g.fork_at = std::min(earliest, duration) - TimeNs::nanos(1);
    plan.groups.push_back(std::move(g));
  }
  std::sort(plan.solo.begin(), plan.solo.end());
  return plan;
}

}  // namespace ccstarve::sweep
