// Prefix-sharing planner for the sweep engine (DESIGN.md §8, consumer #1).
//
// Points that differ only in the grid's jitter axis share their warm-up
// prefix whenever every divergent jitter spec first perturbs the path
// strictly after t=0: one jitter-free "stem" scenario is run to just
// before the earliest activation, snapshotted, and each member point is
// completed by a fork with its own policy swapped in. Fork equivalence
// (sim/snapshot.hpp) makes the member records byte-identical to cold
// runs, so sharing is purely a wall-clock optimization — the engine keeps
// it behind SweepOptions::share_prefix and the sweep tests pin the
// byte-identity.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sweep/grid.hpp"
#include "util/time.hpp"

namespace ccstarve::sweep {

// Sim time at which `jitter_spec` first perturbs flow 0's data path:
// infinite for "none"/"" (it never does), the onset for
// "step:<ms>,<start s>", and zero for every other form (they are active
// from the first packet, so a warm-up prefix cannot be shared with them).
TimeNs jitter_activation(const std::string& jitter_spec);

struct PrefixGroup {
  // Indices into the planned point vector, in input order. Always >= 2
  // entries — a group of one is returned as a solo point instead.
  std::vector<size_t> members;
  // Stem length: one nanosecond before the earliest member activation
  // (clamped below the duration), so the jitter-free stem is behaviorally
  // identical to every member over [0, fork_at].
  TimeNs fork_at = TimeNs::zero();
};

struct PrefixPlan {
  std::vector<PrefixGroup> groups;
  std::vector<size_t> solo;
};

// Plans prefix sharing over `points` (which must already be validated, as
// SweepGrid::expand guarantees). Points group when their canonical keys
// are identical except for the jitter axis, flow 0 leaves its data jitter
// to the grid (no per-flow datajitter= override), and their jitter
// activates after t=0. Deterministic in the input alone.
PrefixPlan plan_prefix_sharing(const std::vector<SweepPoint>& points);

}  // namespace ccstarve::sweep
