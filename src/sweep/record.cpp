#include "sweep/record.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "sweep/grid.hpp"

namespace ccstarve::sweep {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void append_str(std::string& j, const char* field, const std::string& v) {
  j += '"';
  j += field;
  j += "\":\"";
  j += escape(v);
  j += '"';
}

// canon_num renders non-finite values as inf/nan, which is not JSON;
// records should never contain them, but clamp defensively.
std::string json_num(double v) {
  if (std::isnan(v)) return "0";
  if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
  return canon_num(v);
}

void append_num(std::string& j, const char* field, double v) {
  j += '"';
  j += field;
  j += "\":";
  j += json_num(v);
}

void append_num_array(std::string& j, const char* field,
                      const std::vector<double>& vs) {
  j += '"';
  j += field;
  j += "\":[";
  for (size_t i = 0; i < vs.size(); ++i) {
    if (i) j += ',';
    j += json_num(vs[i]);
  }
  j += ']';
}

void append_str_array(std::string& j, const char* field,
                      const std::vector<std::string>& vs) {
  j += '"';
  j += field;
  j += "\":[";
  for (size_t i = 0; i < vs.size(); ++i) {
    if (i) j += ',';
    j += '"';
    j += escape(vs[i]);
    j += '"';
  }
  j += ']';
}

// Minimal extraction parser for the record's own flat schema (the only JSON
// this repo ever reads back). Each find_* locates `"field":` at the top
// level of the one-line object and parses the value after it.
class Extractor {
 public:
  explicit Extractor(const std::string& line) : line_(line) {}
  bool ok() const { return ok_; }

  std::string str(const char* field) {
    size_t pos = value_pos(field);
    std::string out;
    if (!ok_ || !parse_string(pos, &out)) ok_ = false;
    return out;
  }

  double num(const char* field) {
    size_t pos = value_pos(field);
    double out = 0;
    if (!ok_ || !parse_number(pos, &out)) ok_ = false;
    return out;
  }

  std::vector<double> num_array(const char* field) {
    size_t pos = value_pos(field);
    std::vector<double> out;
    if (!ok_ || pos >= line_.size() || line_[pos] != '[') {
      ok_ = false;
      return out;
    }
    ++pos;
    while (pos < line_.size() && line_[pos] != ']') {
      double v = 0;
      size_t end = pos;
      if (!parse_number_at(&end, &v)) {
        ok_ = false;
        return out;
      }
      out.push_back(v);
      pos = end;
      if (pos < line_.size() && line_[pos] == ',') ++pos;
    }
    if (pos >= line_.size()) ok_ = false;
    return out;
  }

  std::vector<std::string> str_array(const char* field) {
    size_t pos = value_pos(field);
    std::vector<std::string> out;
    if (!ok_ || pos >= line_.size() || line_[pos] != '[') {
      ok_ = false;
      return out;
    }
    ++pos;
    while (pos < line_.size() && line_[pos] != ']') {
      std::string v;
      if (!parse_string(pos, &v)) {
        ok_ = false;
        return out;
      }
      out.push_back(std::move(v));
      // Advance past the quoted string we just parsed (escapes included).
      pos = skip_string(pos);
      if (pos < line_.size() && line_[pos] == ',') ++pos;
    }
    if (pos >= line_.size()) ok_ = false;
    return out;
  }

 private:
  size_t value_pos(const char* field) {
    const std::string needle = std::string("\"") + field + "\":";
    // Field names never appear inside values (keys use '=' not '":'), so a
    // plain find is sufficient for this self-produced format.
    const size_t at = line_.find(needle);
    if (at == std::string::npos) {
      ok_ = false;
      return std::string::npos;
    }
    return at + needle.size();
  }

  bool parse_string(size_t pos, std::string* out) {
    if (pos >= line_.size() || line_[pos] != '"') return false;
    for (size_t i = pos + 1; i < line_.size(); ++i) {
      if (line_[i] == '\\' && i + 1 < line_.size()) {
        out->push_back(line_[++i]);
      } else if (line_[i] == '"') {
        return true;
      } else {
        out->push_back(line_[i]);
      }
    }
    return false;
  }

  size_t skip_string(size_t pos) {
    for (size_t i = pos + 1; i < line_.size(); ++i) {
      if (line_[i] == '\\') {
        ++i;
      } else if (line_[i] == '"') {
        return i + 1;
      }
    }
    return line_.size();
  }

  bool parse_number(size_t pos, double* out) {
    size_t end = pos;
    return parse_number_at(&end, out);
  }

  bool parse_number_at(size_t* pos, double* out) {
    if (*pos >= line_.size()) return false;
    const char* start = line_.c_str() + *pos;
    char* end = nullptr;
    *out = std::strtod(start, &end);
    if (end == start) return false;
    *pos += static_cast<size_t>(end - start);
    return true;
  }

  const std::string& line_;
  bool ok_ = true;
};

}  // namespace

std::string SweepRecord::to_json() const {
  std::string j = "{";
  append_str(j, "key", key);
  j += ',';
  append_str_array(j, "ccas", ccas);
  j += ',';
  append_num_array(j, "throughput_mbps", throughput_mbps);
  j += ',';
  append_num(j, "min_mbps", min_mbps);
  j += ',';
  append_num(j, "max_mbps", max_mbps);
  j += ',';
  append_num(j, "starvation_ratio", starvation_ratio);
  j += ',';
  append_num(j, "jain", jain);
  j += ',';
  append_num(j, "utilization", utilization);
  j += ',';
  append_num_array(j, "mean_rtt_ms", mean_rtt_ms);
  j += ',';
  append_num_array(j, "d_min_ms", d_min_ms);
  j += ',';
  append_num_array(j, "d_max_ms", d_max_ms);
  j += ',';
  append_num(j, "qdelay_mean_ms", qdelay_mean_ms);
  j += ',';
  append_num(j, "qdelay_max_ms", qdelay_max_ms);
  j += ',';
  append_num(j, "retransmits", static_cast<double>(retransmits));
  j += ',';
  append_num(j, "timeouts", static_cast<double>(timeouts));
  if (first_crossing_s) {
    j += ',';
    append_num(j, "first_crossing_s", *first_crossing_s);
  }
  j += '}';
  return j;
}

std::optional<SweepRecord> SweepRecord::from_json(const std::string& line) {
  Extractor ex(line);
  SweepRecord r;
  r.key = ex.str("key");
  r.ccas = ex.str_array("ccas");
  r.throughput_mbps = ex.num_array("throughput_mbps");
  r.min_mbps = ex.num("min_mbps");
  r.max_mbps = ex.num("max_mbps");
  r.starvation_ratio = ex.num("starvation_ratio");
  r.jain = ex.num("jain");
  r.utilization = ex.num("utilization");
  r.mean_rtt_ms = ex.num_array("mean_rtt_ms");
  r.d_min_ms = ex.num_array("d_min_ms");
  r.d_max_ms = ex.num_array("d_max_ms");
  r.qdelay_mean_ms = ex.num("qdelay_mean_ms");
  r.qdelay_max_ms = ex.num("qdelay_max_ms");
  r.retransmits = static_cast<uint64_t>(ex.num("retransmits"));
  r.timeouts = static_cast<uint64_t>(ex.num("timeouts"));
  // Optional field: only telemetry-enabled sweeps emit it.
  if (line.find("\"first_crossing_s\":") != std::string::npos) {
    r.first_crossing_s = ex.num("first_crossing_s");
  }
  if (!ex.ok()) return std::nullopt;
  return r;
}

}  // namespace ccstarve::sweep
