// Per-point sweep result record and its canonical JSONL form.
//
// A record is produced exactly once per sweep point, by whichever worker
// simulated it, and is the unit of output (one JSON object per line) and of
// caching (the cache stores the serialized line verbatim). Serialization is
// canonical — fixed field order, canon_num number rendering — so records
// are byte-comparable across runs, worker counts, and cache hits.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ccstarve::sweep {

struct SweepRecord {
  std::string key;                      // SweepPoint::key() of the point
  std::vector<std::string> ccas;        // per-flow CCA names
  // Per-flow throughput over the measurement window [warmup, duration].
  std::vector<double> throughput_mbps;
  double min_mbps = 0.0;
  double max_mbps = 0.0;
  // max/min throughput over the window (the paper's starvation ratio).
  double starvation_ratio = 1.0;
  double jain = 1.0;                    // Jain fairness index
  double utilization = 0.0;             // sum(throughput) / link rate
  // Per-flow RTT statistics over the window, milliseconds. d_min/d_max are
  // the 1st/99th percentile of RTT samples (the trimmed converged delay
  // range of the rate-delay figures).
  std::vector<double> mean_rtt_ms;
  std::vector<double> d_min_ms;
  std::vector<double> d_max_ms;
  // Queueing + jitter delay: RTT in excess of the flow's propagation RTT,
  // averaged (resp. maxed) across flows.
  double qdelay_mean_ms = 0.0;
  double qdelay_max_ms = 0.0;
  uint64_t retransmits = 0;             // summed across flows
  uint64_t timeouts = 0;
  // First time the sliding-window throughput ratio crossed the starvation
  // threshold (seconds; -1 = never). Present only when the sweep ran with a
  // starvation-timeline telemetry probe (SweepOptions::starvation_window_ms
  // > 0); such runs also carry the window/threshold in `key`, so plain and
  // telemetry-enabled sweeps never share cache entries.
  std::optional<double> first_crossing_s;

  // One-line canonical JSON object (no trailing newline).
  std::string to_json() const;

  // Parses a line produced by to_json(). Returns nullopt on malformed or
  // schema-incomplete input (e.g. a truncated cache file).
  static std::optional<SweepRecord> from_json(const std::string& line);
};

}  // namespace ccstarve::sweep
