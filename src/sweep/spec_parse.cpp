#include "sweep/spec_parse.hpp"

#include <cmath>
#include <cstdint>

#include "cc/allegro.hpp"
#include "cc/bbr.hpp"
#include "cc/copa.hpp"
#include "cc/cubic.hpp"
#include "cc/ecn_reno.hpp"
#include "cc/fast.hpp"
#include "cc/jitter_aware.hpp"
#include "cc/ledbat.hpp"
#include "cc/misc.hpp"
#include "cc/reno.hpp"
#include "cc/vegas.hpp"
#include "cc/verus.hpp"
#include "cc/vivace.hpp"
#include "sim/scenario.hpp"
#include "util/time.hpp"

namespace ccstarve::sweep {

namespace {

double parse_num(const std::string& s, const std::string& what) {
  try {
    size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size() || std::isnan(v)) {
      throw SpecError("bad " + what + " '" + s + "'");
    }
    return v;
  } catch (const SpecError&) {
    throw;
  } catch (const std::exception&) {
    throw SpecError("bad " + what + " '" + s + "'");
  }
}

}  // namespace

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    out.push_back(s.substr(start, pos - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return out;
}

const std::vector<std::string>& cca_names() {
  static const std::vector<std::string> names = {
      "vegas",  "fast",   "copa",       "copa-default", "bbr",
      "vivace", "allegro", "newreno",   "cubic",        "ledbat",
      "verus",  "delay-aimd", "jitter-aware", "ecn-reno", "const-cwnd"};
  return names;
}

std::unique_ptr<Cca> make_cca(const std::string& name, uint64_t seed) {
  if (name == "vegas") return std::make_unique<Vegas>();
  if (name == "fast") return std::make_unique<FastTcp>();
  if (name == "copa") return std::make_unique<Copa>();
  if (name == "copa-default") {
    Copa::Params p;
    p.enable_mode_switching = false;
    p.min_rtt_window = TimeNs::seconds(600);
    return std::make_unique<Copa>(p);
  }
  if (name == "bbr") {
    Bbr::Params p;
    p.seed = seed;
    return std::make_unique<Bbr>(p);
  }
  if (name == "vivace") {
    Vivace::Params p;
    p.seed = seed;
    return std::make_unique<Vivace>(p);
  }
  if (name == "allegro") {
    Allegro::Params p;
    p.seed = seed;
    return std::make_unique<Allegro>(p);
  }
  if (name == "newreno") return std::make_unique<NewReno>();
  if (name == "cubic") return std::make_unique<Cubic>();
  if (name == "ledbat") return std::make_unique<Ledbat>();
  if (name == "delay-aimd") return std::make_unique<DelayAimd>();
  if (name == "jitter-aware") return std::make_unique<JitterAware>();
  if (name == "ecn-reno") return std::make_unique<EcnReno>();
  if (name == "verus") return std::make_unique<Verus>();
  if (name == "const-cwnd") return std::make_unique<ConstCwnd>(50);
  throw SpecError("unknown cca '" + name + "'");
}

std::unique_ptr<JitterPolicy> make_jitter(const std::string& spec,
                                          uint64_t seed) {
  if (spec.empty() || spec == "none") return nullptr;
  const auto parts = split(spec, ':');
  const std::string& kind = parts[0];
  if (parts.size() > 2) {
    throw SpecError("jitter spec '" + spec + "' has unexpected extra part '" +
                    parts[2] + "'");
  }
  const auto args = parts.size() > 1 ? split(parts[1], ',')
                                     : std::vector<std::string>{};
  // Each kind takes a fixed argument count; extra arguments used to be
  // silently ignored, which hid typos like onoff:8,50,50,50.
  auto expect_args = [&](size_t n) {
    if (args.size() != n) {
      throw SpecError("jitter spec '" + spec + "' wants " + std::to_string(n) +
                      " argument(s), got " + std::to_string(args.size()));
    }
  };
  auto num = [&](size_t i) {
    const double v = parse_num(args[i], "jitter argument");
    if (v < 0) {
      throw SpecError("jitter spec '" + spec + "': argument '" + args[i] +
                      "' must be >= 0");
    }
    return v;
  };
  auto ms = [&](size_t i) { return TimeNs::millis(num(i)); };
  auto secs = [&](size_t i) { return TimeNs::seconds(num(i)); };
  if (kind == "const") {
    expect_args(1);
    return std::make_unique<ConstantJitter>(ms(0));
  }
  if (kind == "uniform") {
    expect_args(1);
    return std::make_unique<UniformJitter>(TimeNs::zero(), ms(0), seed);
  }
  if (kind == "quantize") {
    expect_args(1);
    const TimeNs period = ms(0);
    if (period <= TimeNs::zero()) {
      throw SpecError("jitter spec '" + spec + "': period '" + args[0] +
                      "' must be positive");
    }
    return std::make_unique<PeriodicReleaseJitter>(period);
  }
  if (kind == "onoff") {
    expect_args(3);
    const TimeNs high = ms(0), on = ms(1), off = ms(2);
    if (on + off <= TimeNs::zero()) {
      throw SpecError("jitter spec '" + spec + "': on '" + args[1] +
                      "' + off '" + args[2] + "' must be positive");
    }
    return std::make_unique<OnOffJitter>(high, on, off);
  }
  if (kind == "step") {
    expect_args(2);
    return std::make_unique<StepJitter>(ms(0), secs(1));
  }
  if (kind == "allbutone") {
    expect_args(2);
    return std::make_unique<AllButOneJitter>(ms(0), secs(1));
  }
  throw SpecError("unknown jitter kind '" + kind + "' in '" + spec + "'");
}

FlowArgs parse_flow(const std::string& value) {
  FlowArgs out;
  const auto parts = split(value, ':');
  out.cca = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) {
    const size_t eq = parts[i].find('=');
    if (eq == std::string::npos) {
      throw SpecError("bad flow option '" + parts[i] + "'");
    }
    const std::string key = parts[i].substr(0, eq);
    const std::string val = parts[i].substr(eq + 1);
    if (key == "start") {
      out.start_s = parse_num(val, "flow start");
      if (out.start_s < 0) {
        throw SpecError("flow start '" + val + "' must be >= 0");
      }
    } else if (key == "rtt") {
      out.rtt_ms = parse_num(val, "flow rtt");
      if (*out.rtt_ms <= 0) {
        throw SpecError("flow rtt '" + val + "' must be positive");
      }
    } else if (key == "loss") {
      out.loss = parse_num(val, "flow loss");
      if (out.loss < 0 || out.loss > 1) {
        throw SpecError("flow loss '" + val + "' must be in [0, 1]");
      }
    } else if (key == "rwnd") {
      const double pkts = parse_num(val, "flow rwnd");
      if (pkts < 1 ||
          pkts != static_cast<double>(static_cast<uint64_t>(pkts))) {
        throw SpecError("flow rwnd '" + val +
                        "' must be a whole packet count >= 1");
      }
      out.rwnd_pkts = static_cast<uint64_t>(pkts);
    } else if (key == "drain") {
      out.drain_mbps = parse_num(val, "flow drain");
      if (out.drain_mbps <= 0) {
        throw SpecError("flow drain '" + val + "' must be positive (Mbit/s)");
      }
    } else if (key == "drainburst") {
      const double pkts = parse_num(val, "flow drainburst");
      if (pkts < 1 ||
          pkts != static_cast<double>(static_cast<uint64_t>(pkts))) {
        throw SpecError("flow drainburst '" + val +
                        "' must be a whole packet count >= 1");
      }
      out.drain_burst_pkts = static_cast<uint64_t>(pkts);
    } else if (key == "wndupd") {
      if (val != "0" && val != "1") {
        throw SpecError("flow wndupd '" + val + "' must be 0 or 1");
      }
      out.window_updates = val == "1";
    } else if (key == "ackjitter" || key == "datajitter") {
      std::string spec = val;
      // Jitter args may themselves contain ':' (e.g. quantize:60): re-join
      // the following ':'-parts until the next key=value option.
      for (size_t j = i + 1; j < parts.size(); ++j) {
        if (parts[j].find('=') != std::string::npos) break;
        spec += ":" + parts[j];
        ++i;
      }
      (key == "ackjitter" ? out.ack_jitter : out.data_jitter) = spec;
    } else {
      throw SpecError("unknown flow option '" + key + "'");
    }
  }
  // Validate eagerly so errors surface at parse time, not mid-sweep.
  make_cca(out.cca, 1);
  make_jitter(out.ack_jitter, 1);
  make_jitter(out.data_jitter, 1);
  return out;
}

RecvConfig make_recv_config(const FlowArgs& fa) {
  RecvConfig rc;
  if (fa.rwnd_pkts == 0) return rc;  // flow control off
  rc.buffer_bytes = fa.rwnd_pkts * kMss;
  if (fa.drain_mbps > 0) rc.drain_rate = Rate::mbps(fa.drain_mbps);
  rc.drain_burst_bytes = fa.drain_burst_pkts * kMss;
  rc.window_updates = fa.window_updates;
  return rc;
}

std::vector<FlowArgs> parse_flow_set(const std::string& value) {
  // Hard ceiling on the expanded cohort; catches typos like copa*1000000
  // before they allocate a scenario.
  constexpr uint64_t kMaxFlowMultiplier = 16384;
  std::vector<FlowArgs> out;
  for (const auto& part : split(value, '+')) {
    if (part.empty()) throw SpecError("empty flow spec in '" + value + "'");
    // Cohort multiplier: `<flow spec>*<count>` expands to `count` identical
    // flows (e.g. copa:rtt=40*256). '*' never appears inside a flow spec.
    std::string spec = part;
    uint64_t count = 1;
    if (const size_t star = part.rfind('*'); star != std::string::npos) {
      const std::string rep = part.substr(star + 1);
      if (rep.empty() ||
          rep.find_first_not_of("0123456789") != std::string::npos) {
        throw SpecError("bad flow multiplier '" + rep + "' in '" + part +
                        "' (want <flow spec>*<count>)");
      }
      count = std::stoull(rep);
      if (count == 0 || count > kMaxFlowMultiplier) {
        throw SpecError("flow multiplier " + rep + " in '" + part +
                        "' out of range [1, " +
                        std::to_string(kMaxFlowMultiplier) + "]");
      }
      spec = part.substr(0, star);
      if (spec.empty()) {
        throw SpecError("empty flow spec before '*' in '" + part + "'");
      }
    }
    const FlowArgs args = parse_flow(spec);
    out.insert(out.end(), count, args);
  }
  return out;
}

uint64_t parse_buffer_bytes(const std::string& spec, Rate link_rate,
                            double rtt_ms) {
  if (spec.empty() || spec == "-") {
    return ScenarioConfig{}.buffer_bytes;  // unbounded default
  }
  if (spec.size() > 3 && spec.substr(spec.size() - 3) == "bdp") {
    const double x = parse_num(spec.substr(0, spec.size() - 3), "buffer");
    if (x <= 0) {
      throw SpecError("buffer spec '" + spec + "' must be positive");
    }
    return static_cast<uint64_t>(x * link_rate.bytes_per_second() * rtt_ms /
                                 1e3);
  }
  // A packet count: a negative or fractional value used to be silently
  // truncated to whatever the cast produced.
  const double pkts = parse_num(spec, "buffer");
  if (pkts < 1 || pkts != static_cast<double>(static_cast<uint64_t>(pkts))) {
    throw SpecError("buffer spec '" + spec +
                    "' must be a whole packet count >= 1 (or <x>bdp, or '-')");
  }
  return static_cast<uint64_t>(pkts) * kMss;
}

std::vector<double> parse_axis_values(const std::string& spec) {
  std::vector<double> out;
  if (spec.compare(0, 4, "lin:") == 0 || spec.compare(0, 4, "log:") == 0) {
    const bool logspace = spec[2] == 'g';
    const auto parts = split(spec.substr(4), ':');
    if (parts.size() != 3) {
      throw SpecError("range spec '" + spec + "' wants <lo>:<hi>:<n>");
    }
    const double lo = parse_num(parts[0], "range lo");
    const double hi = parse_num(parts[1], "range hi");
    const int n = static_cast<int>(parse_num(parts[2], "range count"));
    if (n < 1) throw SpecError("range spec '" + spec + "' wants n >= 1");
    if (logspace && (lo <= 0 || hi <= 0)) {
      throw SpecError("log range '" + spec + "' wants positive bounds");
    }
    for (int i = 0; i < n; ++i) {
      const double frac = n == 1 ? 0.0 : static_cast<double>(i) / (n - 1);
      out.push_back(logspace ? std::pow(10.0, std::log10(lo) +
                                                  frac * (std::log10(hi) -
                                                          std::log10(lo)))
                             : lo + frac * (hi - lo));
    }
    return out;
  }
  for (const auto& part : split(spec, ',')) {
    out.push_back(parse_num(part, "axis value"));
  }
  return out;
}

}  // namespace ccstarve::sweep
