// Shared command-line spec grammar for scenario construction, used by both
// ccstarve_run and ccstarve_sweep (and by the sweep engine itself, which
// stores flow sets as spec strings inside canonical sweep-point keys).
//
// Grammar (unchanged from the original ccstarve_run flags):
//
//   flow spec:   <cca>[:opt=val]*
//     options:   start=<s>  rtt=<ms>  loss=<frac>
//                ackjitter=<jitter spec>  datajitter=<jitter spec>
//                rwnd=<pkts>  drain=<mbps>  drainburst=<pkts>  wndupd=<0|1>
//   jitter spec: const:<ms> | uniform:<ms> | quantize:<ms> |
//                onoff:<ms>,<on ms>,<off ms> | step:<ms>,<start s> |
//                allbutone:<ms>,<exempt s> | none
//   flow set:    one or more flow specs joined by '+'
//                (e.g. "copa+copa:datajitter=const:1")
//   buffer spec: "-" (unbounded) | <pkts> | <x>bdp
//
// Parse errors throw SpecError; the CLIs catch it and exit, the sweep grid
// validates specs eagerly at expansion time so a bad axis value fails before
// any simulation work starts.
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "cc/cca.hpp"
#include "sim/jitter.hpp"
#include "sim/receiver.hpp"
#include "util/rate.hpp"

namespace ccstarve::sweep {

class SpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

std::vector<std::string> split(const std::string& s, char sep);

// Known CCA names, in the order ccstarve_run's --help lists them.
const std::vector<std::string>& cca_names();

// Instantiates a CCA by name; `seed` feeds the randomized CCAs (BBR,
// Vivace, Allegro). Throws SpecError for unknown names.
std::unique_ptr<Cca> make_cca(const std::string& name, uint64_t seed);

// Instantiates a jitter policy from a spec string; "none" and "" yield null.
std::unique_ptr<JitterPolicy> make_jitter(const std::string& spec,
                                          uint64_t seed);

struct FlowArgs {
  std::string cca;
  double start_s = 0.0;
  std::optional<double> rtt_ms;
  double loss = 0.0;
  std::string ack_jitter, data_jitter;
  // Receiver-side flow control (rwnd=0: off, the default).
  uint64_t rwnd_pkts = 0;          // receive-buffer size in packets
  double drain_mbps = 0.0;         // app drain rate; 0 = instant consumption
  uint64_t drain_burst_pkts = 1;   // packets consumed per application read
  bool window_updates = true;      // wndupd=0 models lost window updates
};

FlowArgs parse_flow(const std::string& value);

// RecvConfig for a parsed flow (defaults when rwnd_pkts == 0).
RecvConfig make_recv_config(const FlowArgs& fa);

// '+'-separated list of flow specs; must be non-empty. Each spec may carry
// a cohort multiplier `*<count>` (e.g. "copa*64+bbr:rtt=80*64") expanding
// to that many identical flows.
std::vector<FlowArgs> parse_flow_set(const std::string& value);

// Buffer size in bytes. "-" or "" means unbounded (the scenario default);
// "<x>bdp" scales with link rate and rtt; otherwise a packet count.
uint64_t parse_buffer_bytes(const std::string& spec, Rate link_rate,
                            double rtt_ms);

// Parses "a,b,c" into doubles, or expands the range forms
// "lin:<lo>:<hi>:<n>" and "log:<lo>:<hi>:<n>" into n inclusive grid points.
std::vector<double> parse_axis_values(const std::string& spec);

}  // namespace ccstarve::sweep
