#include "util/cli.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace ccstarve::cli {

namespace {

// Full-string numeric conversions: the std::sto* family accepts trailing
// garbage ("60x" parses as 60), which hides typos in grid specs. Reject
// anything that does not consume the whole value.
template <typename T, typename Conv>
T parse_full(const std::string& name, const std::string& v, Conv conv) {
  if (v.empty()) throw UsageError("flag " + name + " wants a value");
  errno = 0;
  char* end = nullptr;
  const auto parsed = conv(v.c_str(), &end);
  if (errno != 0 || end == nullptr || *end != '\0') {
    throw UsageError("bad value '" + v + "' for " + name);
  }
  return static_cast<T>(parsed);
}

}  // namespace

Flags::Flags(std::string prog) : prog_(std::move(prog)) {}

void Flags::add(std::string name, Kind kind,
                std::function<void(const std::string&)> on_value,
                std::function<void()> on_switch) {
  specs_.push_back(
      Spec{std::move(name), kind, std::move(on_value), std::move(on_switch)});
}

void Flags::value(const std::string& name, double* out) {
  add(name, Kind::value, [name, out](const std::string& v) {
    *out = parse_full<double>(name, v, [](const char* s, char** e) {
      return std::strtod(s, e);
    });
  }, nullptr);
}

void Flags::value(const std::string& name, std::string* out) {
  add(name, Kind::value, [out](const std::string& v) { *out = v; }, nullptr);
}

void Flags::value(const std::string& name, uint64_t* out) {
  add(name, Kind::value, [name, out](const std::string& v) {
    if (!v.empty() && v[0] == '-') {
      throw UsageError("bad value '" + v + "' for " + name);
    }
    *out = parse_full<uint64_t>(name, v, [](const char* s, char** e) {
      return std::strtoull(s, e, 10);
    });
  }, nullptr);
}

void Flags::value(const std::string& name, unsigned* out) {
  add(name, Kind::value, [name, out](const std::string& v) {
    if (!v.empty() && v[0] == '-') {
      throw UsageError("bad value '" + v + "' for " + name);
    }
    const unsigned long parsed =
        parse_full<unsigned long>(name, v, [](const char* s, char** e) {
          return std::strtoul(s, e, 10);
        });
    *out = static_cast<unsigned>(parsed);
  }, nullptr);
}

void Flags::value(const std::string& name, int* out) {
  add(name, Kind::value, [name, out](const std::string& v) {
    *out = static_cast<int>(
        parse_full<long>(name, v, [](const char* s, char** e) {
          return std::strtol(s, e, 10);
        }));
  }, nullptr);
}

void Flags::each(const std::string& name,
                 std::function<void(const std::string&)> fn) {
  add(name, Kind::value, std::move(fn), nullptr);
}

void Flags::toggle(const std::string& name, bool* out) {
  add(name, Kind::switch_, nullptr, [out] { *out = true; });
}

void Flags::on(const std::string& name, std::function<void()> fn) {
  add(name, Kind::switch_, nullptr, std::move(fn));
}

void Flags::optional_value(
    const std::string& name,
    std::function<void(const std::string&)> bare_or_value) {
  auto shared = std::move(bare_or_value);
  add(name, Kind::optional, shared, [shared] { shared(""); });
}

void Flags::positionals(std::vector<std::string>* out) { positionals_ = out; }

void Flags::parse(int argc, char** argv) const {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("see the header comment of tools/%s.cpp\n", prog_.c_str());
      std::exit(0);
    }
    if (arg.compare(0, 2, "--") != 0) {
      if (positionals_ != nullptr) {
        positionals_->push_back(arg);
        continue;
      }
      throw UsageError("unexpected argument '" + arg + "' (try --help)");
    }
    const size_t eq = arg.find('=');
    const std::string name = eq == std::string::npos ? arg : arg.substr(0, eq);
    const Spec* spec = nullptr;
    for (const Spec& s : specs_) {
      if (s.name == name) {
        spec = &s;
        break;
      }
    }
    if (spec == nullptr) {
      throw UsageError("unknown flag '" + arg + "' (try --help)");
    }
    const bool has_value = eq != std::string::npos;
    switch (spec->kind) {
      case Kind::value:
        if (!has_value) {
          throw UsageError("flag " + name + " wants " + name + "=<value>");
        }
        spec->on_value(arg.substr(eq + 1));
        break;
      case Kind::switch_:
        if (has_value) {
          throw UsageError("flag " + name + " takes no value");
        }
        spec->on_switch();
        break;
      case Kind::optional:
        if (has_value) {
          spec->on_value(arg.substr(eq + 1));
        } else {
          spec->on_switch();
        }
        break;
    }
  }
}

}  // namespace ccstarve::cli
