// Shared --flag=value command-line parsing for the tools/ binaries.
//
// Every CLI in this repo speaks the same dialect: long flags with '='-glued
// values ("--link=120"), bare boolean switches ("--quiet"), repeatable flags
// whose order matters ("--flow=..."), and -h/--help printing a pointer to
// the tool's header comment. Each binary used to hand-roll the same
// prefix-compare loop; cli::Flags centralizes it so new tools get the
// dialect (and its error messages) for free.
//
//   cli::Flags flags("ccstarve_run");
//   flags.value("--link", &link_mbps);
//   flags.each("--flow", [&](const std::string& v) { ... });
//   flags.toggle("--check", &check);
//   flags.parse(argc, argv);        // throws cli::UsageError on bad input
//
// parse() handles --help/-h itself (prints the standard header-comment
// pointer and exits 0) and throws UsageError for unknown flags or
// unparsable values; tools catch it alongside their other fatal errors.
// Positional (non-flag) arguments are rejected unless positionals() was
// called, in which case they are collected in order.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace ccstarve::cli {

class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Flags {
 public:
  // `prog` names the binary in error messages and the --help pointer.
  explicit Flags(std::string prog);

  // --name=value flags bound to a typed variable. Values are parsed with
  // the same std::sto* conversions the tools used, but a trailing-garbage
  // or empty value is an error instead of being silently truncated.
  void value(const std::string& name, double* out);
  void value(const std::string& name, std::string* out);
  void value(const std::string& name, uint64_t* out);
  void value(const std::string& name, unsigned* out);
  void value(const std::string& name, int* out);

  // --name=value flag whose occurrences (in order) go to `fn`; use for
  // repeatable flags and for values needing custom validation.
  void each(const std::string& name, std::function<void(const std::string&)> fn);

  // Bare switch: "--name" sets *out. "--name=..." is rejected.
  void toggle(const std::string& name, bool* out);
  // Bare switch routed to a callback.
  void on(const std::string& name, std::function<void()> fn);

  // A flag usable both bare and with a value, e.g. --profile[=path].
  void optional_value(const std::string& name,
                      std::function<void(const std::string&)> bare_or_value);

  // Collect non-flag arguments (subcommands, file operands) here instead of
  // rejecting them. Arguments starting with "--" are still parsed as flags.
  void positionals(std::vector<std::string>* out);

  // Parses argv[1..argc-1]. On --help or -h prints the standard pointer to
  // the tool's header comment and exits 0. Throws UsageError on an unknown
  // flag, a malformed value, or an unexpected positional.
  void parse(int argc, char** argv) const;

 private:
  enum class Kind { value, switch_, optional };
  struct Spec {
    std::string name;  // including leading "--"
    Kind kind;
    std::function<void(const std::string&)> on_value;  // value / optional
    std::function<void()> on_switch;                   // switch_ / optional
  };

  void add(std::string name, Kind kind,
           std::function<void(const std::string&)> on_value,
           std::function<void()> on_switch);

  std::string prog_;
  std::vector<Spec> specs_;
  std::vector<std::string>* positionals_ = nullptr;
};

}  // namespace ccstarve::cli
