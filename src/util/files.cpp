#include "util/files.hpp"

#include <filesystem>
#include <fstream>

namespace ccstarve {

bool write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& fill) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) return false;
    fill(os);
    os.flush();
    if (!os) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace ccstarve
