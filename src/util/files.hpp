// Atomic whole-file writes: write to "<path>.tmp", fsync-free rename over
// the destination. Readers (and a crash or a second SIGINT mid-flush) see
// either the old complete file or the new complete file, never a truncated
// record — the same idiom sweep/cache.cpp uses per cache entry, shared here
// so tool-level outputs (--out JSONL, profiles, bench JSON) get it too.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

namespace ccstarve {

// Runs `fill` on an ofstream for "<path>.tmp", then renames over `path`.
// Returns false (and removes the temp file) if the file cannot be opened,
// the stream errors, or the rename fails. A `path` of "-" is the caller's
// stdout convention and is NOT handled here.
bool write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& fill);

}  // namespace ccstarve
