// Time-windowed min/max filters and an EWMA, the estimator building blocks
// the delay-bounding CCAs in this repo are made of:
//   * Copa / LEDBAT keep windowed minimums of RTT,
//   * BBR keeps a windowed maximum of delivery rate,
//   * Vegas / FAST use smoothed averages.
//
// The windowed filters use a monotonic deque so each sample is amortized
// O(1); expiry is by timestamp, matching "min over the last W seconds".
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "util/time.hpp"

namespace ccstarve {

namespace detail {

template <typename T, typename Better>
class WindowedExtremum {
 public:
  explicit WindowedExtremum(TimeNs window) : window_(window) {}

  void set_window(TimeNs w) { window_ = w; }
  TimeNs window() const { return window_; }

  void update(T value, TimeNs now) {
    // Drop samples that are no longer extremal once `value` arrives.
    while (!q_.empty() && !Better{}(q_.back().value, value)) q_.pop_back();
    q_.push_back({value, now});
    expire(now);
  }

  // Current extremum over [now - window, now]; call with a monotone clock.
  std::optional<T> get(TimeNs now) {
    expire(now);
    if (q_.empty()) return std::nullopt;
    return q_.front().value;
  }

  std::optional<T> peek() const {
    if (q_.empty()) return std::nullopt;
    return q_.front().value;
  }

  void clear() { q_.clear(); }
  bool empty() const { return q_.empty(); }

  // Shift every stored timestamp by `delta` (used when a CCA with windowed
  // state is transplanted onto a different simulation timeline).
  void rebase_time(TimeNs delta) {
    for (auto& e : q_) e.at += delta;
  }

 private:
  struct Entry {
    T value;
    TimeNs at;
  };

  void expire(TimeNs now) {
    while (!q_.empty() && q_.front().at + window_ < now) q_.pop_front();
  }

  TimeNs window_;
  std::deque<Entry> q_;
};

template <typename T>
struct StrictlyLess {
  bool operator()(const T& a, const T& b) const { return a < b; }
};
template <typename T>
struct StrictlyGreater {
  bool operator()(const T& a, const T& b) const { return a > b; }
};

}  // namespace detail

// Minimum of samples seen within the trailing time window.
template <typename T>
using WindowedMin = detail::WindowedExtremum<T, detail::StrictlyLess<T>>;

// Maximum of samples seen within the trailing time window.
template <typename T>
using WindowedMax = detail::WindowedExtremum<T, detail::StrictlyGreater<T>>;

// Exponentially weighted moving average with gain `g` per sample.
class Ewma {
 public:
  explicit Ewma(double gain) : gain_(gain) {}

  void update(double sample) {
    if (!initialized_) {
      value_ = sample;
      initialized_ = true;
    } else {
      value_ += gain_ * (sample - value_);
    }
  }

  bool initialized() const { return initialized_; }
  double value() const { return value_; }
  void reset() { initialized_ = false; }

 private:
  double gain_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace ccstarve
