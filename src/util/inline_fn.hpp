// Small-buffer move-only callable: the event loop's replacement for
// std::function.
//
// A scheduled callback in this codebase is almost always a lambda capturing
// `this` plus at most one Packet (~72 bytes). std::function heap-allocates
// anything beyond its tiny SBO, which made every schedule→dispatch cycle
// allocate and free; InlineFn stores callables up to `Capacity` bytes
// inline (placement-new into the owner's storage, e.g. a pooled event
// node), so the hot path never touches the allocator. Oversized or
// throwing-move callables transparently fall back to the heap rather than
// failing to compile, keeping the type usable for cold-path callers.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ccstarve {

template <typename Sig, std::size_t Capacity = 88>
class InlineFn;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFn<R(Args...), Capacity> {
 public:
  // Does a callable of type F live in the inline buffer (vs the heap)?
  template <typename F>
  static constexpr bool stores_inline =
      sizeof(std::decay_t<F>) <= Capacity &&
      alignof(std::decay_t<F>) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<std::decay_t<F>>;

  InlineFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  // Constructs a callable in place, destroying any current one first.
  template <typename F>
  void emplace(F&& f) {
    reset();
    using Fn = std::decay_t<F>;
    if constexpr (stores_inline<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = [](void* s, Args... args) -> R {
        return (*static_cast<Fn*>(s))(std::forward<Args>(args)...);
      };
      manage_ = [](Op op, void* s, void* dst) {
        Fn* fn = static_cast<Fn*>(s);
        if (op == Op::kMove) ::new (dst) Fn(std::move(*fn));
        fn->~Fn();
      };
    } else {
      ptr() = new Fn(std::forward<F>(f));
      invoke_ = [](void* s, Args... args) -> R {
        return (**static_cast<Fn**>(s))(std::forward<Args>(args)...);
      };
      manage_ = [](Op op, void* s, void* dst) {
        Fn** slot = static_cast<Fn**>(s);
        if (op == Op::kMove) {
          *static_cast<Fn**>(dst) = *slot;  // steal the heap object
        } else {
          delete *slot;
        }
      };
    }
  }

  void reset() {
    if (manage_) manage_(Op::kDestroy, storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  R operator()(Args... args) {
    return invoke_(storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  enum class Op { kMove, kDestroy };
  using Invoke = R (*)(void*, Args...);
  using Manage = void (*)(Op, void* src, void* dst);

  void*& ptr() { return *reinterpret_cast<void**>(storage_); }

  void move_from(InlineFn& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_) manage_(Op::kMove, other.storage_, storage_);
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[Capacity];
};

}  // namespace ccstarve
