// Bounded multi-producer message queue (mutex + condvar, header-only).
//
// The serving subsystem's decoupling primitive: simulation threads push
// telemetry/records into per-consumer queues and must NEVER be blocked or
// slowed unboundedly by the consumer side, so the hot producer entry point
// is try_push (non-blocking; a full queue is the caller's signal to apply
// its drop/coalesce policy — see serve/hub.hpp for the tiered version).
// Blocking push/pop exist for work-queue uses (the job executor pool) where
// waiting is the point.
//
// close() makes the queue drain-only: blocked producers wake with
// Push::closed, blocked consumers drain what is buffered and then get
// nullopt. This is the shutdown-while-blocked contract the serve tests pin:
// no spurious hangs, no lost in-flight items.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace ccstarve {

template <typename T>
class BoundedMq {
 public:
  enum class Push { ok, would_block, closed };

  explicit BoundedMq(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  // Non-blocking: full => would_block (item NOT enqueued), closed => closed.
  Push try_push(T v) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return Push::closed;
      if (items_.size() >= capacity_) return Push::would_block;
      items_.push_back(std::move(v));
    }
    not_empty_.notify_one();
    return Push::ok;
  }

  // Blocking: waits for space. Returns closed if the queue is (or becomes)
  // closed while waiting; the item is then NOT enqueued.
  Push push(T v) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) return Push::closed;
      items_.push_back(std::move(v));
    }
    not_empty_.notify_one();
    return Push::ok;
  }

  // Blocking: waits for an item. nullopt only when closed AND drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return take(lock);
  }

  // Bounded wait; nullopt on timeout or on closed-and-drained.
  std::optional<T> pop_for(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, timeout,
                        [&] { return closed_ || !items_.empty(); });
    return take(lock);
  }

  std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lock(mu_);
    return take(lock);
  }

  // Drain-only from here on; wakes every blocked producer and consumer.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  // Pops the front under `lock` (if any) and signals a waiting producer.
  std::optional<T> take(std::unique_lock<std::mutex>& lock) {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return v;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ccstarve
