#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace ccstarve {

unsigned effective_jobs(unsigned jobs, size_t n) {
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
  if (n < jobs) jobs = static_cast<unsigned>(std::max<size_t>(1, n));
  return jobs;
}

void parallel_for(size_t n, unsigned jobs,
                  const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  jobs = effective_jobs(jobs, n);
  if (jobs == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&] {
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        // Drain the queue so sibling workers stop picking up new items.
        next.store(n, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(jobs);
  for (unsigned t = 0; t < jobs; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ccstarve
