// Minimal fixed-size thread pool primitive: run fn(0..n-1) across `jobs`
// worker threads pulling indices from an atomic work queue. Results must be
// written to pre-sized, per-index slots by the caller, which keeps output
// order (and therefore byte-level reproducibility) independent of the worker
// count. Used by the sweep engine and the rate-delay sweeps.
#pragma once

#include <cstddef>
#include <functional>

namespace ccstarve {

// Number of workers actually used for `jobs` requested over `n` items:
// jobs == 0 means "one per hardware thread", and we never spawn more
// workers than items.
unsigned effective_jobs(unsigned jobs, size_t n);

// Invokes fn(i) for every i in [0, n) across effective_jobs(jobs, n)
// threads. fn must be safe to call concurrently for distinct indices.
// If any invocation throws, the first exception (by completion order) is
// rethrown on the calling thread after all workers have drained.
void parallel_for(size_t n, unsigned jobs, const std::function<void(size_t)>& fn);

}  // namespace ccstarve
