// Strong data-rate type (bits per second) plus conversions between
// rates, byte counts and durations.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

#include "util/time.hpp"

namespace ccstarve {

class Rate {
 public:
  constexpr Rate() = default;

  static constexpr Rate zero() { return Rate(0.0); }
  static constexpr Rate bps(double v) { return Rate(v); }
  static constexpr Rate kbps(double v) { return Rate(v * 1e3); }
  static constexpr Rate mbps(double v) { return Rate(v * 1e6); }
  static constexpr Rate gbps(double v) { return Rate(v * 1e9); }
  static constexpr Rate bytes_per_sec(double v) { return Rate(v * 8.0); }
  // Effectively unlimited; used for CCAs that are purely window-limited.
  static constexpr Rate infinite() {
    return Rate(std::numeric_limits<double>::infinity());
  }
  // Rate achieved by delivering `bytes` over `dt`.
  static constexpr Rate from_bytes_over(uint64_t bytes, TimeNs dt) {
    return dt <= TimeNs::zero()
               ? infinite()
               : bytes_per_sec(static_cast<double>(bytes) / dt.to_seconds());
  }

  constexpr double bits_per_sec() const { return bps_; }
  constexpr double to_mbps() const { return bps_ * 1e-6; }
  constexpr double bytes_per_second() const { return bps_ / 8.0; }
  constexpr bool is_infinite() const {
    return bps_ == std::numeric_limits<double>::infinity();
  }

  // Time to serialize `bytes` at this rate.
  constexpr TimeNs transmission_time(uint64_t bytes) const {
    if (is_infinite()) return TimeNs::zero();
    return TimeNs::seconds(static_cast<double>(bytes) * 8.0 / bps_);
  }
  // Bytes delivered in `dt` at this rate.
  constexpr double bytes_in(TimeNs dt) const {
    return bytes_per_second() * dt.to_seconds();
  }

  constexpr Rate operator+(Rate o) const { return Rate(bps_ + o.bps_); }
  constexpr Rate operator-(Rate o) const { return Rate(bps_ - o.bps_); }
  constexpr Rate operator*(double k) const { return Rate(bps_ * k); }
  constexpr Rate operator/(double k) const { return Rate(bps_ / k); }
  constexpr double operator/(Rate o) const { return bps_ / o.bps_; }

  constexpr auto operator<=>(const Rate&) const = default;

  std::string to_string() const;

 private:
  constexpr explicit Rate(double bps) : bps_(bps) {}
  double bps_ = 0.0;
};

constexpr Rate operator*(double k, Rate r) { return r * k; }

constexpr Rate min(Rate a, Rate b) { return a < b ? a : b; }
constexpr Rate max(Rate a, Rate b) { return a > b ? a : b; }

// The MTU-sized segment the whole system (and the paper's alpha arithmetic)
// assumes.
inline constexpr uint32_t kMss = 1500;

}  // namespace ccstarve
