#include "util/rng.hpp"

namespace ccstarve {
namespace {

constexpr uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the xoshiro state.
uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

uint64_t Rng::next_below(uint64_t n) {
  if (n == 0) return 0;
  // Modulo bias is negligible for the small n used here, but reject anyway.
  const uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % n);
  uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

bool Rng::bernoulli(double p) { return next_double() < p; }

}  // namespace ccstarve
