// Deterministic xoshiro256++ PRNG.
//
// Every stochastic element in the emulator (loss gates, randomized CCA
// decisions such as BBR's probe offsets or PCC's trial ordering) owns one of
// these, seeded explicitly, so experiments replay bit-for-bit.
#pragma once

#include <cstdint>

namespace ccstarve {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform over [0, 2^64).
  uint64_t next_u64();
  // Uniform over [0, 1).
  double next_double();
  // Uniform over [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer over [0, n).
  uint64_t next_below(uint64_t n);
  // True with probability p.
  bool bernoulli(double p);

 private:
  uint64_t s_[4];
};

}  // namespace ccstarve
