#include "util/series.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>

namespace ccstarve {

void TimeSeries::add(TimeNs t, double v) {
  assert(samples_.empty() || t >= samples_.back().at);
  samples_.push_back({t, v});
}

size_t TimeSeries::lower_index(TimeNs t) const {
  auto it = std::lower_bound(
      samples_.begin(), samples_.end(), t,
      [](const Sample& s, TimeNs when) { return s.at < when; });
  if (it == samples_.end()) return samples_.size() - 1;
  return static_cast<size_t>(it - samples_.begin());
}

double TimeSeries::at(TimeNs t) const {
  assert(!samples_.empty());
  if (t <= samples_.front().at) return samples_.front().value;
  if (t >= samples_.back().at) return samples_.back().value;
  const size_t hi = lower_index(t);
  const Sample& b = samples_[hi];
  if (b.at == t || hi == 0) return b.value;
  const Sample& a = samples_[hi - 1];
  const double frac = (t - a.at) / (b.at - a.at);
  return a.value + frac * (b.value - a.value);
}

double TimeSeries::step_at(TimeNs t) const {
  assert(!samples_.empty());
  if (t <= samples_.front().at) return samples_.front().value;
  if (t >= samples_.back().at) return samples_.back().value;
  size_t hi = lower_index(t);
  if (samples_[hi].at == t) return samples_[hi].value;
  return samples_[hi - 1].value;
}

double TimeSeries::min_over(TimeNs a, TimeNs b) const {
  double m = at(a);
  for (const auto& s : samples_) {
    if (s.at < a || s.at > b) continue;
    m = std::min(m, s.value);
  }
  return std::min(m, at(b));
}

double TimeSeries::max_over(TimeNs a, TimeNs b) const {
  double m = at(a);
  for (const auto& s : samples_) {
    if (s.at < a || s.at > b) continue;
    m = std::max(m, s.value);
  }
  return std::max(m, at(b));
}

double TimeSeries::mean_over(TimeNs a, TimeNs b) const {
  double sum = 0.0;
  size_t n = 0;
  for (const auto& s : samples_) {
    if (s.at < a || s.at > b) continue;
    sum += s.value;
    ++n;
  }
  return n ? sum / static_cast<double>(n) : at(a);
}

TimeSeries TimeSeries::shifted_window(TimeNs a, TimeNs b) const {
  TimeSeries out;
  // Anchor the window start with the interpolated value so replaying the
  // shifted trajectory from t=0 starts exactly where the original was at `a`.
  if (!samples_.empty() && a >= samples_.front().at) {
    out.add(TimeNs::zero(), at(a));
  }
  for (const auto& s : samples_) {
    if (s.at < a || s.at > b) continue;
    if (s.at == a && !out.empty()) continue;
    out.add(s.at - a, s.value);
  }
  return out;
}

std::vector<double> TimeSeries::values() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.value);
  return out;
}

void TimeSeries::write_csv(std::ostream& os, const std::string& header) const {
  os << "time_s," << header << '\n';
  for (const auto& s : samples_) {
    os << s.at.to_seconds() << ',' << s.value << '\n';
  }
}

}  // namespace ccstarve
