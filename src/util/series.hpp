// Time series of (timestamp, value) samples with interpolation and range
// queries. This is the backbone of the Theorem 1 machinery: solo-run delay
// trajectories are recorded as TimeSeries and later *replayed* by the
// delay-emulating jitter box, which needs value lookups at arbitrary times.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace ccstarve {

class TimeSeries {
 public:
  struct Sample {
    TimeNs at;
    double value;
  };

  // Samples must be appended in non-decreasing time order.
  void add(TimeNs t, double v);

  bool empty() const { return samples_.empty(); }
  size_t size() const { return samples_.size(); }
  const std::vector<Sample>& samples() const { return samples_; }
  TimeNs front_time() const { return samples_.front().at; }
  TimeNs back_time() const { return samples_.back().at; }

  // Piecewise-linear interpolation, clamped to the first/last value outside
  // the sampled range. Must not be called on an empty series.
  double at(TimeNs t) const;

  // Last sample at or before `t` (step interpolation), clamped.
  double step_at(TimeNs t) const;

  // Extrema / mean over samples with timestamp in [a, b].
  double min_over(TimeNs a, TimeNs b) const;
  double max_over(TimeNs a, TimeNs b) const;
  double mean_over(TimeNs a, TimeNs b) const;

  // Subseries with timestamps in [a, b], with time shifted so `a` becomes 0.
  // Used to turn a converged suffix of a trajectory into a t>=0 trajectory
  // (the paper's time-shifted d-bar and r-bar).
  TimeSeries shifted_window(TimeNs a, TimeNs b) const;

  // All raw values (for percentile computations).
  std::vector<double> values() const;

  // Writes "time_s,value" CSV lines.
  void write_csv(std::ostream& os, const std::string& header) const;

 private:
  // Index of the first sample with at >= t, clamped to [0, size-1].
  size_t lower_index(TimeNs t) const;

  std::vector<Sample> samples_;
};

}  // namespace ccstarve
