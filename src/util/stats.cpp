#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace ccstarve {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (p <= 0) return samples.front();
  if (p >= 100) return samples.back();
  const double idx = p / 100.0 * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const double frac = idx - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

double jain_index(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

}  // namespace ccstarve
