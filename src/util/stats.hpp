// Small online/offline statistics helpers used by the analysis core and the
// benchmark harnesses: running mean/variance, offline percentiles, and
// Jain's fairness index.
#pragma once

#include <cstddef>
#include <vector>

namespace ccstarve {

// Welford online mean/variance.
class RunningStats {
 public:
  void add(double x);

  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile of a sample set with linear interpolation; p in [0, 100].
// Copies and sorts; intended for end-of-run analysis, not hot paths.
double percentile(std::vector<double> samples, double p);

// Jain's fairness index: (sum x)^2 / (n * sum x^2); 1.0 is perfectly fair.
double jain_index(const std::vector<double>& xs);

}  // namespace ccstarve
