#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace ccstarve {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << "| " << row[i];
      for (size_t p = row[i].size(); p < widths[i]; ++p) os << ' ';
      os << ' ';
    }
    os << "|\n";
  };
  print_row(headers_);
  for (size_t i = 0; i < headers_.size(); ++i) {
    os << "|-" << std::string(widths[i], '-') << '-';
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace ccstarve
