// Aligned-column table printer for benchmark harness output. The bench
// binaries print the same rows/series the paper's tables and figures report;
// this keeps that output readable and diffable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ccstarve {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ccstarve
