// Strong integer-nanosecond time type used throughout the emulator.
//
// A single type serves as both a time point (nanoseconds since simulation
// start) and a duration; this mirrors how congestion-control code treats
// RTTs and timestamps interchangeably while still preventing accidental
// mixing with raw integers or with Rate.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace ccstarve {

class TimeNs {
 public:
  constexpr TimeNs() = default;
  constexpr explicit TimeNs(int64_t ns) : ns_(ns) {}

  static constexpr TimeNs zero() { return TimeNs(0); }
  static constexpr TimeNs nanos(int64_t v) { return TimeNs(v); }
  static constexpr TimeNs micros(double v) {
    return TimeNs(static_cast<int64_t>(v * 1e3));
  }
  static constexpr TimeNs millis(double v) {
    return TimeNs(static_cast<int64_t>(v * 1e6));
  }
  static constexpr TimeNs seconds(double v) {
    return TimeNs(static_cast<int64_t>(v * 1e9));
  }
  // A time beyond any simulation horizon ("never").
  static constexpr TimeNs infinite() {
    return TimeNs(std::numeric_limits<int64_t>::max() / 4);
  }

  constexpr int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }
  constexpr double to_micros() const { return static_cast<double>(ns_) * 1e-3; }

  constexpr bool is_infinite() const { return *this >= infinite(); }

  constexpr TimeNs operator+(TimeNs o) const { return TimeNs(ns_ + o.ns_); }
  constexpr TimeNs operator-(TimeNs o) const { return TimeNs(ns_ - o.ns_); }
  constexpr TimeNs operator*(double k) const {
    return TimeNs(static_cast<int64_t>(static_cast<double>(ns_) * k));
  }
  constexpr TimeNs operator/(double k) const {
    return TimeNs(static_cast<int64_t>(static_cast<double>(ns_) / k));
  }
  constexpr double operator/(TimeNs o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  constexpr TimeNs& operator+=(TimeNs o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr TimeNs& operator-=(TimeNs o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr TimeNs operator-() const { return TimeNs(-ns_); }

  constexpr auto operator<=>(const TimeNs&) const = default;

  // "12.345ms"-style rendering for logs and experiment output.
  std::string to_string() const;

 private:
  int64_t ns_ = 0;
};

constexpr TimeNs operator*(double k, TimeNs t) { return t * k; }

constexpr TimeNs min(TimeNs a, TimeNs b) { return a < b ? a : b; }
constexpr TimeNs max(TimeNs a, TimeNs b) { return a > b ? a : b; }

}  // namespace ccstarve
