#include "util/rate.hpp"
#include "util/time.hpp"

#include <cmath>
#include <cstdio>

namespace ccstarve {

std::string TimeNs::to_string() const {
  char buf[48];
  const double a = std::abs(static_cast<double>(ns_));
  if (is_infinite()) {
    return "inf";
  } else if (a >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3fs", to_seconds());
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3fms", to_millis());
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3fus", to_micros());
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

std::string Rate::to_string() const {
  char buf[48];
  if (is_infinite()) {
    return "inf";
  } else if (bps_ >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3fGbit/s", bps_ * 1e-9);
  } else if (bps_ >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3fMbit/s", bps_ * 1e-6);
  } else if (bps_ >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3fKbit/s", bps_ * 1e-3);
  } else {
    std::snprintf(buf, sizeof buf, "%.3fbit/s", bps_);
  }
  return buf;
}

}  // namespace ccstarve
