// Unit tests for the CCA implementations (src/cc): initial state, update
// rules, equilibria against the paper's closed forms, time rebasing, and
// the PCC monitor-interval machinery.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cc/allegro.hpp"
#include "cc/bbr.hpp"
#include "cc/copa.hpp"
#include "cc/cubic.hpp"
#include "cc/fast.hpp"
#include "cc/jitter_aware.hpp"
#include "cc/misc.hpp"
#include "cc/pcc_common.hpp"
#include "cc/reno.hpp"
#include "cc/vegas.hpp"
#include "cc/verus.hpp"
#include "cc/vivace.hpp"
#include "core/equilibrium.hpp"
#include "core/solo.hpp"

namespace ccstarve {
namespace {

AckSample make_ack(double now_s, double rtt_s, uint64_t acked = kMss,
                   uint64_t delivered = 0) {
  AckSample a;
  a.now = TimeNs::seconds(now_s);
  a.rtt = TimeNs::seconds(rtt_s);
  a.sent_at = a.now - a.rtt;
  a.newly_acked_bytes = acked;
  a.delivered_bytes = delivered;
  return a;
}

// ---------- ConstCwnd ----------

TEST(ConstCwnd, FixedWindowIgnoresAcks) {
  ConstCwnd cca(10.0);
  EXPECT_EQ(cca.cwnd_bytes(), 10u * kMss);
  cca.on_ack(make_ack(1.0, 0.1));
  EXPECT_EQ(cca.cwnd_bytes(), 10u * kMss);
  EXPECT_TRUE(cca.pacing_rate().is_infinite());
}

// ---------- Vegas ----------

TEST(Vegas, SlowStartDoublesEveryOtherEpoch) {
  Vegas cca;
  const uint64_t w0 = cca.cwnd_bytes();
  // Feed two epochs' worth of ACKs with no queueing (rtt == base).
  uint64_t delivered = 0;
  double t = 0.0;
  for (int i = 0; i < 200 && cca.cwnd_bytes() == w0; ++i) {
    delivered += kMss;
    t += 0.001;
    cca.on_ack(make_ack(t, 0.1, kMss, delivered));
  }
  EXPECT_GT(cca.cwnd_bytes(), w0);
}

TEST(Vegas, ConvergesToAlphaQueueEquilibrium) {
  // On an ideal path the converged RTT must be Rm + alpha..beta packets of
  // queueing (the paper's Rm + alpha/C fixed point; Figure 3's flat curve).
  SoloConfig cfg;
  cfg.link_rate = Rate::mbps(10);
  cfg.min_rtt = TimeNs::millis(100);
  cfg.duration = TimeNs::seconds(30);
  const SoloResult r =
      run_solo([] { return std::unique_ptr<Cca>(new Vegas()); }, cfg);
  const double lo =
      vegas_equilibrium_rtt(cfg.link_rate, cfg.min_rtt, 1, 4.0).to_seconds();
  const double hi =
      vegas_equilibrium_rtt(cfg.link_rate, cfg.min_rtt, 1, 6.0).to_seconds();
  EXPECT_GE(r.d_min_s, lo - 0.003);
  EXPECT_LE(r.d_max_s, hi + 0.003);
  EXPECT_GT(r.utilization(), 0.95);
}

TEST(Vegas, DeltaIsZeroOnIdealPath) {
  SoloConfig cfg;
  cfg.link_rate = Rate::mbps(20);
  cfg.min_rtt = TimeNs::millis(50);
  cfg.duration = TimeNs::seconds(30);
  const SoloResult r =
      run_solo([] { return std::unique_ptr<Cca>(new Vegas()); }, cfg);
  EXPECT_LT(r.delta_s(), 0.002);  // paper: delta(C) = 0 for Vegas
}

TEST(Vegas, HalvesOnLoss) {
  Vegas cca;
  uint64_t delivered = 0;
  for (int i = 0; i < 400; ++i) {
    delivered += kMss;
    cca.on_ack(make_ack(0.01 * i, 0.1, kMss, delivered));
  }
  const uint64_t before = cca.cwnd_bytes();
  LossSample loss;
  loss.now = TimeNs::seconds(5);
  loss.lost_bytes = kMss;
  cca.on_loss(loss);
  EXPECT_LE(cca.cwnd_bytes(), before / 2 + kMss);
}

TEST(Vegas, MinRttUnderestimateCausesUnderutilization) {
  // The paper's §5.1 observation, distilled: a phantom 1 ms in dq makes the
  // Vegas family sit far below the link rate.
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(100);
  Scenario sc(std::move(cfg));
  FlowSpec f;
  f.cca = std::make_unique<Vegas>();
  f.min_rtt = TimeNs::millis(49);
  f.data_jitter = std::make_unique<AllButOneJitter>(TimeNs::millis(1),
                                                    TimeNs::millis(150));
  sc.add_flow(std::move(f));
  sc.run_until(TimeNs::seconds(30));
  EXPECT_LT(sc.throughput(0).to_mbps(), 70.0);
}

// ---------- FAST ----------

TEST(FastTcp, ConvergesToSameEquilibriumAsVegas) {
  SoloConfig cfg;
  cfg.link_rate = Rate::mbps(10);
  cfg.min_rtt = TimeNs::millis(100);
  cfg.duration = TimeNs::seconds(30);
  const SoloResult r =
      run_solo([] { return std::unique_ptr<Cca>(new FastTcp()); }, cfg);
  EXPECT_GT(r.utilization(), 0.95);
  // alpha = 4 packets of standing queue: RTT ~ 104.8 ms.
  EXPECT_NEAR(r.d_max_s, 0.1048, 0.004);
}

TEST(FastTcp, WindowUpdateIsMultiplicativelyBounded) {
  FastTcp cca;
  // Even with an absurdly favorable RTT ratio the update may at most double.
  uint64_t delivered = 0;
  uint64_t prev = cca.cwnd_bytes();
  for (int i = 0; i < 50; ++i) {
    delivered += 10 * kMss;
    cca.on_ack(make_ack(0.01 * i, 0.1, kMss, delivered));
    EXPECT_LE(cca.cwnd_bytes(), 2 * prev + kMss);
    prev = cca.cwnd_bytes();
  }
}

// ---------- Copa ----------

TEST(Copa, ConvergesNearFullUtilization) {
  SoloConfig cfg;
  cfg.link_rate = Rate::mbps(20);
  cfg.min_rtt = TimeNs::millis(60);
  cfg.duration = TimeNs::seconds(30);
  const SoloResult r =
      run_solo([] { return std::unique_ptr<Cca>(new Copa()); }, cfg);
  EXPECT_GT(r.utilization(), 0.95);
}

TEST(Copa, DeltaShrinksWithLinkRate) {
  // Paper: delta(C) ~ 4*MSS/C for Copa (< 0.5 ms above 96 Mbit/s).
  auto run = [](double mbps) {
    SoloConfig cfg;
    cfg.link_rate = Rate::mbps(mbps);
    cfg.min_rtt = TimeNs::millis(100);
    cfg.duration = TimeNs::seconds(30);
    cfg.trim_percent = 1.0;
    return run_solo([] { return std::unique_ptr<Cca>(new Copa()); }, cfg);
  };
  const SoloResult slow = run(10);
  const SoloResult fast = run(100);
  EXPECT_GT(slow.delta_s(), fast.delta_s());
  EXPECT_NEAR(slow.delta_s(), copa_delta(Rate::mbps(10)).to_seconds(), 0.004);
  EXPECT_LT(fast.delta_s(), 0.002);
}

TEST(Copa, PacingIsFiniteOnceMeasured) {
  Copa cca;
  EXPECT_TRUE(cca.pacing_rate().is_infinite());
  uint64_t delivered = 0;
  for (int i = 1; i <= 20; ++i) {
    delivered += kMss;
    cca.on_ack(make_ack(0.01 * i, 0.05, kMss, delivered));
  }
  EXPECT_FALSE(cca.pacing_rate().is_infinite());
  EXPECT_GT(cca.pacing_rate().to_mbps(), 0.0);
}

TEST(Copa, CompetitiveModeEngagesAgainstBufferFiller) {
  // A Cubic flow keeps the queue standing; Copa's mode switching must kick
  // in (delta < default) or Copa would starve against it.
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(20);
  cfg.buffer_bytes = 200 * static_cast<uint64_t>(kMss);
  Scenario sc(std::move(cfg));
  FlowSpec a;
  a.cca = std::make_unique<Copa>();
  a.min_rtt = TimeNs::millis(40);
  sc.add_flow(std::move(a));
  FlowSpec b;
  b.cca = std::make_unique<Cubic>();
  b.min_rtt = TimeNs::millis(40);
  sc.add_flow(std::move(b));
  sc.run_until(TimeNs::seconds(40));
  const auto& copa = static_cast<const Copa&>(sc.sender(0).cca());
  EXPECT_LT(copa.delta(), 0.5);
  // Not starved: Copa keeps a nontrivial share.
  EXPECT_GT(sc.throughput(0).to_mbps(), 2.0);
}

TEST(Copa, RebaseTimeShiftsWindows) {
  Copa cca;
  uint64_t delivered = 0;
  for (int i = 1; i <= 50; ++i) {
    delivered += kMss;
    cca.on_ack(make_ack(10.0 + 0.01 * i, 0.05, kMss, delivered));
  }
  const TimeNs before = cca.min_rtt_estimate();
  cca.rebase_time(TimeNs::seconds(-10));
  // Continue on the new timeline close to t=0.5; the min survives because
  // its (rebased) timestamps are recent on the new clock.
  delivered += kMss;
  cca.on_ack(make_ack(0.6, 0.051, kMss, delivered));
  EXPECT_EQ(cca.min_rtt_estimate(), ccstarve::min(before, TimeNs::seconds(0.051)));
}

// ---------- NewReno ----------

TEST(NewReno, SlowStartThenAdditiveIncrease) {
  NewReno cca;
  const double w0 = cca.cwnd_pkts();
  cca.on_ack(make_ack(0.1, 0.1));
  EXPECT_NEAR(cca.cwnd_pkts(), w0 + 1.0, 1e-9);  // slow start: +1 per ACK

  LossSample loss;
  loss.now = TimeNs::seconds(1);
  cca.on_loss(loss);
  const double after_loss = cca.cwnd_pkts();
  EXPECT_FALSE(cca.in_slow_start());
  cca.on_ack(make_ack(1.1, 0.1));
  EXPECT_NEAR(cca.cwnd_pkts(), after_loss + 1.0 / after_loss, 1e-9);
}

TEST(NewReno, TimeoutResetsToOnePacket) {
  NewReno cca;
  for (int i = 0; i < 100; ++i) cca.on_ack(make_ack(0.01 * i, 0.1));
  LossSample loss;
  loss.is_timeout = true;
  cca.on_loss(loss);
  EXPECT_EQ(cca.cwnd_bytes(), static_cast<uint64_t>(kMss));
}

TEST(NewReno, RecoveryAcksFrozen) {
  NewReno cca;
  const double w0 = cca.cwnd_pkts();
  AckSample a = make_ack(0.1, 0.1);
  a.in_recovery = true;
  cca.on_ack(a);
  EXPECT_EQ(cca.cwnd_pkts(), w0);
}

TEST(NewReno, SawtoothOnSmallBuffer) {
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(6);
  cfg.buffer_bytes = 60 * static_cast<uint64_t>(kMss);
  Scenario sc(std::move(cfg));
  FlowSpec f;
  f.cca = std::make_unique<NewReno>();
  f.min_rtt = TimeNs::millis(120);
  sc.add_flow(std::move(f));
  sc.run_until(TimeNs::seconds(60));
  EXPECT_GT(sc.throughput(0).to_mbps(), 4.5);  // ~75%+ of a 6 Mbit/s link
  EXPECT_GT(sc.stats(0).fast_retransmits, 2u);  // it does cycle
}

// ---------- Cubic ----------

TEST(Cubic, BetaBackoffAndCubicRecovery) {
  Cubic cca;
  for (int i = 0; i < 100; ++i) cca.on_ack(make_ack(0.001 * i, 0.1));
  const double before = cca.cwnd_pkts();
  LossSample loss;
  loss.now = TimeNs::seconds(1);
  cca.on_loss(loss);
  EXPECT_NEAR(cca.cwnd_pkts(), before * 0.7, 1.0);
  // Growth restarts along the cubic toward w_max.
  double prev = cca.cwnd_pkts();
  for (int i = 0; i < 50; ++i) {
    cca.on_ack(make_ack(1.0 + 0.01 * i, 0.1));
  }
  EXPECT_GT(cca.cwnd_pkts(), prev);
}

TEST(Cubic, UtilizesSmallBufferLink) {
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(6);
  cfg.buffer_bytes = 60 * static_cast<uint64_t>(kMss);
  Scenario sc(std::move(cfg));
  FlowSpec f;
  f.cca = std::make_unique<Cubic>();
  f.min_rtt = TimeNs::millis(120);
  sc.add_flow(std::move(f));
  sc.run_until(TimeNs::seconds(60));
  EXPECT_GT(sc.throughput(0).to_mbps(), 4.5);
}

TEST(Cubic, FastConvergenceLowersWmax) {
  Cubic cca;
  for (int i = 0; i < 200; ++i) cca.on_ack(make_ack(0.001 * i, 0.1));
  LossSample loss;
  loss.now = TimeNs::seconds(1);
  cca.on_loss(loss);
  const double w_after_first = cca.cwnd_pkts();
  // Second loss while below the previous w_max triggers fast convergence:
  // the next plateau target sits below the simple beta cut.
  loss.now = TimeNs::seconds(2);
  cca.on_loss(loss);
  EXPECT_LT(cca.cwnd_pkts(), w_after_first);
}

// ---------- BBR ----------

TEST(Bbr, StartsInStartupWithInitialCwnd) {
  Bbr cca;
  EXPECT_EQ(cca.state(), Bbr::State::kStartup);
  EXPECT_EQ(cca.cwnd_bytes(), static_cast<uint64_t>(10 * kMss));
  EXPECT_TRUE(cca.pacing_rate().is_infinite());  // no bandwidth sample yet
}

TEST(Bbr, ReachesProbeBwAndTracksBandwidth) {
  SoloConfig cfg;
  cfg.link_rate = Rate::mbps(20);
  cfg.min_rtt = TimeNs::millis(50);
  cfg.duration = TimeNs::seconds(20);
  const SoloResult r =
      run_solo([] { return std::unique_ptr<Cca>(new Bbr()); }, cfg);
  const auto& bbr = static_cast<const Bbr&>(r.scenario->sender(0).cca());
  EXPECT_EQ(bbr.state(), Bbr::State::kProbeBw);
  EXPECT_NEAR(bbr.bandwidth_estimate().to_mbps(), 20.0, 2.5);
  EXPECT_NEAR(bbr.min_rtt_estimate().to_millis(), 50.0, 5.0);
  EXPECT_GT(r.utilization(), 0.9);
}

TEST(Bbr, PacingModeDelayRangeMatchesPaper) {
  // Paper Fig. 3: d_min = Rm, d_max = 1.25 Rm in pacing mode; delta = Rm/4.
  SoloConfig cfg;
  cfg.link_rate = Rate::mbps(50);
  cfg.min_rtt = TimeNs::millis(100);
  cfg.duration = TimeNs::seconds(60);
  cfg.trim_percent = 1.0;
  const SoloResult r =
      run_solo([] { return std::unique_ptr<Cca>(new Bbr()); }, cfg);
  EXPECT_NEAR(r.d_min_s, 0.100, 0.004);
  // The model predicts 1.25*Rm; the implementation (like deployed BBR, cf.
  // Hock et al.) overshoots slightly because cruise-phase bandwidth samples
  // sit marginally above C. Accept up to ~1.5*Rm.
  EXPECT_GT(r.d_max_s, 0.118);
  EXPECT_LT(r.d_max_s, 0.150);
}

TEST(Bbr, CwndLimitedEquilibriumRtt) {
  // Two same-Rm flows with ACK jitter go cwnd-limited; §5.2's fixed point is
  // RTT = 2*Rm + n*quanta/C.
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(120);
  Scenario sc(std::move(cfg));
  for (int i = 0; i < 2; ++i) {
    FlowSpec f;
    Bbr::Params p;
    p.seed = 7 + static_cast<uint64_t>(i);
    f.cca = std::make_unique<Bbr>(p);
    f.min_rtt = TimeNs::millis(40);
    f.ack_jitter = std::make_unique<UniformJitter>(
        TimeNs::zero(), TimeNs::millis(3), 100 + static_cast<uint64_t>(i));
    sc.add_flow(std::move(f));
  }
  sc.run_until(TimeNs::seconds(60));
  const double predicted =
      bbr_cwnd_limited_rtt(cfg.link_rate, TimeNs::millis(40), 2, 3.0)
          .to_seconds();
  const double measured =
      sc.stats(0).rtt_seconds.mean_over(TimeNs::seconds(30),
                                        TimeNs::seconds(60));
  EXPECT_NEAR(measured, predicted, 0.010);
  // And the shares are fair (same Rm).
  const double a = sc.throughput(0).to_mbps();
  const double b = sc.throughput(1).to_mbps();
  EXPECT_LT(std::max(a, b) / std::min(a, b), 1.3);
}

TEST(Bbr, ProbeRttRefreshesAfterStaleness) {
  SoloConfig cfg;
  cfg.link_rate = Rate::mbps(20);
  cfg.min_rtt = TimeNs::millis(50);
  cfg.duration = TimeNs::seconds(25);  // > min_rtt_window of 10 s
  const SoloResult r =
      run_solo([] { return std::unique_ptr<Cca>(new Bbr()); }, cfg);
  // The RTT trace dips back to Rm during ProbeRTT.
  const double floor = r.rtt.min_over(TimeNs::seconds(12), TimeNs::seconds(25));
  EXPECT_NEAR(floor, 0.050, 0.003);
}

TEST(Bbr, RebaseTimeKeepsEstimates) {
  SoloConfig cfg;
  cfg.link_rate = Rate::mbps(20);
  cfg.min_rtt = TimeNs::millis(50);
  cfg.duration = TimeNs::seconds(15);
  SoloResult r = run_solo([] { return std::unique_ptr<Cca>(new Bbr()); }, cfg);
  auto cca = r.scenario->sender(0).take_cca();
  auto* bbr = static_cast<Bbr*>(cca.get());
  const Rate bw = bbr->bandwidth_estimate();
  bbr->rebase_time(TimeNs::zero() - TimeNs::seconds(15));
  EXPECT_EQ(bbr->bandwidth_estimate().to_mbps(), bw.to_mbps());
}

// ---------- PCC MI tracker ----------

TEST(PccMiTracker, CountsSentAndAcked) {
  PccMiTracker tr;
  tr.open(TimeNs::zero(), TimeNs::millis(100), Rate::mbps(10), 7);
  for (int i = 0; i < 5; ++i) {
    tr.on_packet_sent(TimeNs::millis(i * 10), static_cast<uint64_t>(i) * kMss);
  }
  for (int i = 0; i < 5; ++i) {
    tr.on_ack(TimeNs::millis(50 + i * 10), static_cast<uint64_t>(i) * kMss,
              TimeNs::millis(50));
  }
  auto mi = tr.poll_mature(TimeNs::millis(101), TimeNs::millis(200));
  ASSERT_TRUE(mi.has_value());
  EXPECT_EQ(mi->sent_pkts, 5u);
  EXPECT_EQ(mi->acked_pkts, 5u);
  EXPECT_EQ(mi->tag, 7);
  EXPECT_DOUBLE_EQ(mi->loss_rate(), 0.0);
}

TEST(PccMiTracker, RetransmissionCountsAsLoss) {
  PccMiTracker tr;
  tr.open(TimeNs::zero(), TimeNs::millis(100), Rate::mbps(10), 0);
  tr.on_packet_sent(TimeNs::millis(1), 0);
  tr.on_packet_sent(TimeNs::millis(2), kMss);
  // Segment 0 is retransmitted: resolved as lost even though the
  // retransmission is later ACKed.
  tr.on_packet_sent(TimeNs::millis(60), 0, /*retransmit=*/true);
  tr.on_ack(TimeNs::millis(61), 0, TimeNs::millis(50));
  tr.on_ack(TimeNs::millis(62), kMss, TimeNs::millis(50));
  auto mi = tr.poll_mature(TimeNs::millis(101), TimeNs::millis(500));
  ASSERT_TRUE(mi.has_value());
  EXPECT_EQ(mi->sent_pkts, 2u);
  EXPECT_EQ(mi->acked_pkts, 1u);
  EXPECT_DOUBLE_EQ(mi->loss_rate(), 0.5);
}

TEST(PccMiTracker, MaturesByDeadlineWithUnresolvedPackets) {
  PccMiTracker tr;
  tr.open(TimeNs::zero(), TimeNs::millis(100), Rate::mbps(10), 0);
  tr.on_packet_sent(TimeNs::millis(1), 0);
  EXPECT_FALSE(tr.poll_mature(TimeNs::millis(150), TimeNs::millis(100)));
  auto mi = tr.poll_mature(TimeNs::millis(201), TimeNs::millis(100));
  ASSERT_TRUE(mi.has_value());
  EXPECT_EQ(mi->acked_pkts, 0u);
  EXPECT_DOUBLE_EQ(mi->loss_rate(), 1.0);
}

TEST(PccMiTracker, RttGradientFromRegression) {
  PccMiTracker tr;
  tr.open(TimeNs::zero(), TimeNs::seconds(1), Rate::mbps(10), 0);
  for (int i = 0; i < 10; ++i) {
    tr.on_packet_sent(TimeNs::millis(i * 100), static_cast<uint64_t>(i) * kMss);
  }
  // RTT ramps 100 ms -> 190 ms over 0.9 s of ACK time: slope 0.1 s/s.
  for (int i = 0; i < 10; ++i) {
    tr.on_ack(TimeNs::millis(100 + i * 100), static_cast<uint64_t>(i) * kMss,
              TimeNs::millis(100 + i * 10));
  }
  auto mi = tr.poll_mature(TimeNs::seconds(2), TimeNs::millis(1));
  ASSERT_TRUE(mi.has_value());
  EXPECT_NEAR(mi->rtt_gradient(), 0.1, 1e-6);
  EXPECT_TRUE(mi->congestion_evidence());
}

// ---------- Vivace ----------

TEST(Vivace, UtilityRewardsThroughputPenalizesLatencyGrowth) {
  Vivace cca;
  MiReport flat;
  flat.target_rate = Rate::mbps(10);
  flat.duration = TimeNs::millis(100);
  flat.sent_pkts = flat.acked_pkts = 100;
  flat.first_send_at = TimeNs::zero();
  flat.last_send_at = TimeNs::millis(99);
  const double u_flat = cca.utility(flat);
  EXPECT_GT(u_flat, 0.0);

  MiReport rising = flat;
  // Inject a strong positive RTT slope through the regression accumulators.
  rising.reg_n = 10;
  for (int i = 0; i < 10; ++i) {
    const double t = i * 0.01, r = 0.1 + i * 0.01;  // slope 1 s/s
    rising.reg_st += t;
    rising.reg_stt += t * t;
    rising.reg_sr += r;
    rising.reg_str += t * r;
  }
  EXPECT_LT(cca.utility(rising), u_flat);
}

TEST(Vivace, LossPenalizesUtility) {
  Vivace cca;
  MiReport mi;
  mi.target_rate = Rate::mbps(10);
  mi.duration = TimeNs::millis(100);
  mi.sent_pkts = 100;
  mi.acked_pkts = 100;
  const double u_clean = cca.utility(mi);
  mi.acked_pkts = 80;  // 20% loss
  EXPECT_LT(cca.utility(mi), u_clean);
}

TEST(Vivace, ConvergesNearCapacity) {
  SoloConfig cfg;
  cfg.link_rate = Rate::mbps(50);
  cfg.min_rtt = TimeNs::millis(60);
  cfg.duration = TimeNs::seconds(40);
  const SoloResult r =
      run_solo([] { return std::unique_ptr<Cca>(new Vivace()); }, cfg);
  EXPECT_GT(r.utilization(), 0.75);
  // Delay-convergent: stays within a fraction of Rm of the floor.
  EXPECT_LT(r.d_max_s, 0.60 * 0.060 + 0.060 + 0.010);
}

TEST(Vivace, StarvedByQuantizedAcks) {
  // §5.3 in miniature.
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(60);
  Scenario sc(std::move(cfg));
  for (int i = 0; i < 2; ++i) {
    FlowSpec f;
    Vivace::Params p;
    p.seed = 3 + static_cast<uint64_t>(i);
    f.cca = std::make_unique<Vivace>(p);
    f.min_rtt = TimeNs::millis(60);
    if (i == 0) {
      f.ack_jitter =
          std::make_unique<PeriodicReleaseJitter>(TimeNs::millis(60));
    }
    sc.add_flow(std::move(f));
  }
  sc.run_until(TimeNs::seconds(40));
  EXPECT_GT(sc.throughput(1).to_mbps(), 5.0 * sc.throughput(0).to_mbps());
}

// ---------- Allegro ----------

TEST(Allegro, UtilityCollapsesPastLossThreshold) {
  Allegro cca;
  MiReport mi;
  mi.target_rate = Rate::mbps(100);
  mi.duration = TimeNs::millis(100);
  mi.sent_pkts = 1000;
  mi.acked_pkts = 990;  // 1% loss: below the 5% threshold
  EXPECT_GT(cca.utility(mi), 0.0);
  mi.acked_pkts = 900;  // 10% loss: above threshold
  EXPECT_LT(cca.utility(mi), 0.0);
}

TEST(Allegro, FillsLinkWithBdpBuffer) {
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(60);
  cfg.buffer_bytes = static_cast<uint64_t>(
      Rate::mbps(60).bytes_per_second() * 0.040);
  Scenario sc(std::move(cfg));
  FlowSpec f;
  f.cca = std::make_unique<Allegro>();
  f.min_rtt = TimeNs::millis(40);
  sc.add_flow(std::move(f));
  sc.run_until(TimeNs::seconds(40));
  EXPECT_GT(sc.throughput(0).to_mbps(), 45.0);
}

TEST(Allegro, ToleratesLossBelowThresholdWhenAlone) {
  // §5.4 control: a single flow with 2% random loss still fills the link.
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(60);
  cfg.buffer_bytes = static_cast<uint64_t>(
      Rate::mbps(60).bytes_per_second() * 0.040);
  Scenario sc(std::move(cfg));
  FlowSpec f;
  f.cca = std::make_unique<Allegro>();
  f.min_rtt = TimeNs::millis(40);
  f.loss_rate = 0.02;
  f.loss_seed = 77;
  sc.add_flow(std::move(f));
  sc.run_until(TimeNs::seconds(40));
  EXPECT_GT(sc.throughput(0, TimeNs::seconds(20), TimeNs::seconds(40))
                .to_mbps(),
            35.0);
}

// ---------- Verus ----------

TEST(Verus, DelayBoundedOnIdealPath) {
  // Verus oscillates hard (its paper's cellular traces show the same) but
  // the max-RTT guard keeps the delay *bounded*: Definition-1
  // delay-convergent, just with a large delta.
  SoloConfig cfg;
  cfg.link_rate = Rate::mbps(8);
  cfg.min_rtt = TimeNs::millis(50);
  cfg.duration = TimeNs::seconds(40);
  cfg.trim_percent = 1.0;
  const SoloResult r =
      run_solo([] { return std::unique_ptr<Cca>(new Verus()); }, cfg);
  EXPECT_GT(r.utilization(), 0.5);
  EXPECT_LT(r.d_max_s, 6.0 * 0.050);
}

TEST(Verus, LearnsAMonotoneDelayProfile) {
  // Feed observations: small windows at low delay, large windows at high
  // delay; the learned profile must reflect it and the inverse must pick a
  // window between them for an intermediate target.
  Verus cca;
  uint64_t delivered = 0;
  double t = 0.0;
  // cwnd starts at 4; grow through slow start while feeding delays that
  // rise with the window.
  for (int i = 0; i < 4000; ++i) {
    t += 0.002;
    delivered += kMss;
    const double w = cca.cwnd_bytes() / static_cast<double>(kMss);
    const double rtt = 0.05 + 0.0001 * w;  // delay grows with window
    cca.on_ack(make_ack(t, rtt, kMss, delivered));
  }
  EXPECT_GT(cca.profiled_delay(1000.0), cca.profiled_delay(4.0));
  EXPECT_GT(cca.target_delay_seconds(), 0.05);
}

TEST(Verus, EpochMaxAboveRatioTriggersDecrease) {
  Verus::Params p;
  p.epoch = TimeNs::millis(10);
  Verus cca(p);
  uint64_t delivered = 0;
  // Establish minRTT = 50 ms.
  for (int i = 1; i <= 30; ++i) {
    delivered += kMss;
    cca.on_ack(make_ack(0.01 * i, 0.05, kMss, delivered));
  }
  const uint64_t before = cca.cwnd_bytes();
  // An epoch whose max RTT is far above 2 * minRTT.
  for (int i = 1; i <= 5; ++i) {
    delivered += kMss;
    cca.on_ack(make_ack(0.4 + 0.01 * i, 0.2, kMss, delivered));
  }
  EXPECT_LT(cca.cwnd_bytes(), before);
}

// ---------- DelayAimd ----------

TEST(DelayAimd, BacksOffOnDelayThreshold) {
  DelayAimd cca;
  uint64_t delivered = 0;
  for (int i = 0; i < 100; ++i) {
    delivered += kMss;
    cca.on_ack(make_ack(0.01 * i, 0.05, kMss, delivered));
  }
  const uint64_t grown = cca.cwnd_bytes();
  // Now the queue appears: RTT jumps 60 ms above the base.
  delivered += kMss;
  cca.on_ack(make_ack(1.2, 0.11, kMss, delivered));
  EXPECT_LT(cca.cwnd_bytes(), grown);
}

TEST(DelayAimd, OscillatesAroundThresholdOnIdealPath) {
  SoloConfig cfg;
  cfg.link_rate = Rate::mbps(10);
  cfg.min_rtt = TimeNs::millis(50);
  cfg.duration = TimeNs::seconds(30);
  const SoloResult r =
      run_solo([] { return std::unique_ptr<Cca>(new DelayAimd()); }, cfg);
  EXPECT_GT(r.utilization(), 0.7);
  // Large oscillation by design (§6.2): delta spans a good part of the
  // 40 ms threshold.
  EXPECT_GT(r.delta_s(), 0.015);
}

// ---------- JitterAware (paper Algorithm 1) ----------

TEST(JitterAware, TargetRateMatchesEquation2) {
  JitterAware::Params p;
  p.rm = TimeNs::millis(100);
  p.d = TimeNs::millis(10);
  p.rmax = TimeNs::millis(200);
  p.s = 2.0;
  p.mu_minus = Rate::kbps(100);
  JitterAware cca(p);
  // At d - Rm = Rmax, target = mu_minus.
  EXPECT_NEAR(cca.target_rate(TimeNs::millis(300)).to_mbps(), 0.1, 1e-9);
  // One D of queueing headroom less -> s times faster.
  EXPECT_NEAR(cca.target_rate(TimeNs::millis(290)).to_mbps(), 0.2, 1e-9);
  // Inverse mapping round-trips.
  const Rate mu = Rate::mbps(3);
  EXPECT_NEAR(cca.target_rate(cca.equilibrium_rtt(mu)).to_mbps(), 3.0, 1e-6);
}

TEST(JitterAware, AimdOncePerRm) {
  JitterAware::Params p;
  p.rm = TimeNs::millis(100);
  JitterAware cca(p);
  const double r0 = cca.pacing_rate().to_mbps();
  cca.on_ack(make_ack(0.001, 0.1));
  const double r1 = cca.pacing_rate().to_mbps();
  EXPECT_NE(r1, r0);
  // More ACKs within the same Rm epoch change nothing.
  cca.on_ack(make_ack(0.010, 0.1));
  cca.on_ack(make_ack(0.050, 0.1));
  EXPECT_EQ(cca.pacing_rate().to_mbps(), r1);
  // The next epoch moves again.
  cca.on_ack(make_ack(0.102, 0.1));
  EXPECT_NE(cca.pacing_rate().to_mbps(), r1);
}

TEST(JitterAware, ConvergesOnIdealPath) {
  SoloConfig cfg;
  cfg.link_rate = Rate::mbps(20);
  cfg.min_rtt = TimeNs::millis(100);
  cfg.duration = TimeNs::seconds(40);
  JitterAware::Params p;  // defaults designed for Rm = 100 ms
  const SoloResult r = run_solo(
      [p] { return std::unique_ptr<Cca>(new JitterAware(p)); }, cfg);
  EXPECT_GT(r.utilization(), 0.7);
  // Designed-for property: equilibrium oscillation exceeds D/2 (§6.2).
  EXPECT_GT(r.delta_s(), p.d.to_seconds() / 2.0);
}

}  // namespace
}  // namespace ccstarve
