// Unit tests for the invariant observer and the scenario fuzzer (src/check).
//
// The scenario suites (golden_trace_test, snapshot_test, property_test) run
// the checker against live traffic and prove it stays silent on correct
// code; this file proves the opposite direction — that each check actually
// fires — by feeding the observer hand-crafted bad event sequences through
// its CheckProbe interface, and pins the fuzz-case corpus format and the
// shrinker's end-to-end behaviour.
#include <gtest/gtest.h>

#include <string>

#include "check/fuzzer.hpp"
#include "check/invariants.hpp"
#include "sim/packet.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"
#include "sweep/spec_parse.hpp"

namespace ccstarve {
namespace {

bool fired(const check::InvariantChecker& ck, const std::string& name) {
  for (const auto& v : ck.violations()) {
    if (v.check == name) return true;
  }
  return false;
}

Packet data_pkt(uint32_t flow, uint64_t seq) {
  Packet p;
  p.flow = flow;
  p.seq = seq;
  return p;
}

// --- Positive direction: a clean scenario keeps the checker silent. ---

TEST(InvariantChecker, CleanScenarioReportsOk) {
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(24);
  Scenario sc(std::move(cfg));
  for (int i = 0; i < 2; ++i) {
    FlowSpec f;
    f.cca = sweep::make_cca("copa", 1);
    f.min_rtt = TimeNs::millis(40);
    sc.add_flow(std::move(f));
  }
  check::InvariantChecker ck;
  ck.attach(sc);
  sc.run_until(TimeNs::seconds(2));
  ck.checkpoint();
  EXPECT_TRUE(ck.ok()) << ck.report();
  EXPECT_EQ(ck.total_violations(), 0u);
  EXPECT_TRUE(ck.report().empty());
}

// --- Negative direction: every check fires on its bad sequence. ---

TEST(InvariantChecker, DetectsTimeGoingBackwards) {
  Simulator sim;
  check::InvariantChecker ck;
  ck.attach(sim);
  ck.on_segment_sent(TimeNs::millis(5), data_pkt(0, 0));
  ck.on_segment_sent(TimeNs::millis(3), data_pkt(0, kMss));
  EXPECT_FALSE(ck.ok());
  EXPECT_TRUE(fired(ck, "time-monotone")) << ck.report();
}

TEST(InvariantChecker, DetectsLinkDeliveryWithEmptyQueue) {
  Simulator sim;
  check::InvariantChecker ck;
  ck.attach(sim);
  ck.on_link_deliver(TimeNs::millis(1), data_pkt(0, 0));
  EXPECT_TRUE(fired(ck, "link-fifo")) << ck.report();
}

TEST(InvariantChecker, DetectsLinkReordering) {
  Simulator sim;
  check::InvariantChecker ck;
  ck.attach(sim);
  const Packet a = data_pkt(0, 0), b = data_pkt(0, kMss);
  ck.on_link_enqueue(TimeNs::millis(1), a, a.bytes);
  ck.on_link_enqueue(TimeNs::millis(1), b, a.bytes + b.bytes);
  ck.on_link_deliver(TimeNs::millis(2), b);  // b overtook a
  EXPECT_TRUE(fired(ck, "link-fifo")) << ck.report();
}

TEST(InvariantChecker, DetectsBufferOverrun) {
  Simulator sim;
  check::InvariantChecker ck;
  ck.attach(sim);
  ck.set_link_buffer(2 * kMss);
  uint64_t queued = 0;
  for (uint64_t i = 0; i < 3; ++i) {
    const Packet p = data_pkt(0, i * kMss);
    queued += p.bytes;
    ck.on_link_enqueue(TimeNs::millis(1), p, queued);
  }
  EXPECT_TRUE(fired(ck, "link-buffer")) << ck.report();
}

TEST(InvariantChecker, DetectsByteAccountingDrift) {
  Simulator sim;
  check::InvariantChecker ck;
  ck.attach(sim);
  const Packet p = data_pkt(0, 0);
  // The component claims more queued bytes than arrived.
  ck.on_link_enqueue(TimeNs::millis(1), p, p.bytes + 100);
  EXPECT_TRUE(fired(ck, "link-bytes")) << ck.report();
}

TEST(InvariantChecker, DetectsNegativeJitter) {
  Simulator sim;
  check::InvariantChecker ck;
  ck.attach(sim);
  ck.on_jitter_admit(TimeNs::millis(5), TimeNs::millis(4), data_pkt(0, 0),
                     /*ack_path=*/false, TimeNs::infinite());
  EXPECT_TRUE(fired(ck, "jitter-eta-negative")) << ck.report();
}

TEST(InvariantChecker, DetectsJitterBudgetOverrun) {
  Simulator sim;
  check::InvariantChecker ck;
  ck.attach(sim);
  ck.on_jitter_admit(TimeNs::millis(5), TimeNs::millis(20), data_pkt(0, 0),
                     /*ack_path=*/false, /*budget=*/TimeNs::millis(10));
  EXPECT_TRUE(fired(ck, "jitter-budget")) << ck.report();
  EXPECT_EQ(ck.observed_max_added(0, false), TimeNs::millis(15));
}

TEST(InvariantChecker, DetectsJitterReorderingAtAdmit) {
  Simulator sim;
  check::InvariantChecker ck;
  ck.attach(sim);
  ck.on_jitter_admit(TimeNs::millis(1), TimeNs::millis(10), data_pkt(0, 0),
                     false, TimeNs::infinite());
  // Second packet promised a release before the first packet's.
  ck.on_jitter_admit(TimeNs::millis(2), TimeNs::millis(8),
                     data_pkt(0, kMss), false, TimeNs::infinite());
  EXPECT_TRUE(fired(ck, "jitter-fifo")) << ck.report();
}

TEST(InvariantChecker, DetectsLateJitterRelease) {
  Simulator sim;
  check::InvariantChecker ck;
  ck.attach(sim);
  const Packet p = data_pkt(0, 0);
  ck.on_jitter_admit(TimeNs::millis(1), TimeNs::millis(10), p, false,
                     TimeNs::infinite());
  ck.on_jitter_release(TimeNs::millis(11), p, false);  // promised 10 ms
  EXPECT_TRUE(fired(ck, "jitter-release-time")) << ck.report();
}

TEST(InvariantChecker, DetectsCumulativeAckRegression) {
  Simulator sim;
  check::InvariantChecker ck;
  ck.attach(sim);
  ck.on_receiver_data(TimeNs::millis(1), data_pkt(0, 0), 3000);
  ck.on_receiver_data(TimeNs::millis(2), data_pkt(0, kMss), 1500);
  EXPECT_TRUE(fired(ck, "receiver-cum-monotone")) << ck.report();

  Packet ack = data_pkt(0, 0);
  ack.is_ack = true;
  ack.ack_cum = 3000;
  ck.on_ack_emitted(TimeNs::millis(3), ack);
  ack.ack_cum = 1500;
  ck.on_ack_emitted(TimeNs::millis(4), ack);
  EXPECT_TRUE(fired(ck, "ack-cum-monotone")) << ck.report();
}

TEST(InvariantChecker, DetectsNonPositiveRtt) {
  Simulator sim;
  check::InvariantChecker ck;
  ck.attach(sim);
  ck.on_ack_sample(TimeNs::millis(1), /*flow=*/0, TimeNs::zero(),
                   /*cwnd_bytes=*/10 * kMss, Rate::infinite());
  EXPECT_TRUE(fired(ck, "rtt-positive")) << ck.report();
}

TEST(InvariantChecker, StoresAtMostABoundedNumberOfViolationsVerbatim) {
  Simulator sim;
  check::InvariantChecker ck;
  ck.attach(sim);
  for (int i = 0; i < 100; ++i) {
    ck.on_link_deliver(TimeNs::millis(1), data_pkt(0, 0));
  }
  EXPECT_EQ(ck.total_violations(), 100u);
  EXPECT_LT(ck.violations().size(), 100u);  // the tail is only counted
  const std::string rep = ck.report(/*max_lines=*/3);
  EXPECT_NE(rep.find("link-fifo"), std::string::npos);
  EXPECT_NE(rep.find("100"), std::string::npos) << rep;  // total is shown
}

// --- Fuzz cases: corpus line format and seed determinism. ---

TEST(FuzzCase, LineRoundTripsThroughFromLine) {
  for (uint64_t seed : {1ull, 7ull, 23ull, 100ull}) {
    const check::FuzzCase c = check::generate_case(seed);
    std::string err;
    const auto back = check::FuzzCase::from_line(c.to_line(), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->to_line(), c.to_line());
  }
}

TEST(FuzzCase, GenerationIsDeterministicInTheSeed) {
  EXPECT_EQ(check::generate_case(42).to_line(),
            check::generate_case(42).to_line());
  EXPECT_EQ(check::generate_case(777).to_line(),
            check::generate_case(777).to_line());
}

TEST(FuzzCase, FromLineRejectsMalformedLines) {
  std::string err;
  // Wrong field count.
  EXPECT_FALSE(check::FuzzCase::from_line("1|copa|96", &err).has_value());
  EXPECT_FALSE(err.empty());
  // Flow set that fails the sweep grammar.
  EXPECT_FALSE(check::FuzzCase::from_line(
                   "1|nosuchcca|96|60|-|0|0|0|1.2|0", &err)
                   .has_value());
  EXPECT_NE(err.find("nosuchcca"), std::string::npos) << err;
  // Non-numeric field.
  EXPECT_FALSE(
      check::FuzzCase::from_line("x|copa|96|60|-|0|0|0|1.2|0", &err)
          .has_value());
  // Non-positive duration.
  EXPECT_FALSE(
      check::FuzzCase::from_line("1|copa|96|60|-|0|0|0|0|0", &err)
          .has_value());
  // Bad buffer spec.
  EXPECT_FALSE(
      check::FuzzCase::from_line("1|copa|96|60|1.5|0|0|0|1.2|0", &err)
          .has_value());
}

TEST(FuzzCase, ReproCommandIsAPasteableCcstarveRunInvocation) {
  check::FuzzCase c;
  c.seed = 9;
  c.flow_set = "copa+vegas:loss=0.01";
  c.jitter_budget_ms = 50;
  const std::string cmd = c.repro_command();
  EXPECT_NE(cmd.find("ccstarve_run"), std::string::npos) << cmd;
  EXPECT_NE(cmd.find("--seed=9"), std::string::npos) << cmd;
  EXPECT_NE(cmd.find("--jitter-budget=50"), std::string::npos) << cmd;
  EXPECT_NE(cmd.find("--check"), std::string::npos) << cmd;
  EXPECT_NE(cmd.find("loss=0.01"), std::string::npos) << cmd;
}

TEST(FuzzRunner, KnownGoodCasesPass) {
  for (uint64_t seed : {1ull, 2ull}) {
    const auto r = check::run_case(check::generate_case(seed));
    EXPECT_FALSE(r.has_value())
        << "seed " << seed << " failed [" << r->oracle << "]: " << r->detail;
  }
}

// --- Shrinker: a genuinely failing case minimises to its essence. ---
//
// A constant 5 ms data-jitter box under a 1 ms budget D violates the
// eta <= D invariant on the very first packet, regardless of the other
// flows and axes — so the shrinker must strip everything else and keep
// exactly the jittered flow and the budget.
TEST(FuzzShrinker, MinimisesABudgetViolationToTheEssentialFlow) {
  check::FuzzCase c;
  c.seed = 3;
  c.flow_set = "copa+vegas:loss=0.01+copa:datajitter=const:5";
  c.jitter_budget_ms = 1;
  c.buffer = "2bdp";
  c.ecn_threshold_pkts = 30;
  c.prefill_bytes = 30000;
  c.duration_s = 1.2;

  const auto failure = check::run_case(c);
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->oracle, "invariant");
  EXPECT_NE(failure->detail.find("jitter-budget"), std::string::npos)
      << failure->detail;

  check::FuzzFailure mf;
  const check::FuzzCase m = check::shrink_case(c, {}, &mf);
  EXPECT_EQ(m.flow_set, "copa:datajitter=const:5");
  EXPECT_DOUBLE_EQ(m.ecn_threshold_pkts, 0);
  EXPECT_EQ(m.prefill_bytes, 0u);
  EXPECT_EQ(m.buffer, "-");
  EXPECT_DOUBLE_EQ(m.jitter_budget_ms, 1);  // removing it would pass
  EXPECT_LT(m.duration_s, c.duration_s);
  EXPECT_EQ(mf.oracle, "invariant");

  const std::string cmd = m.repro_command();
  EXPECT_NE(cmd.find("ccstarve_run"), std::string::npos) << cmd;
  EXPECT_NE(cmd.find("--jitter-budget=1"), std::string::npos) << cmd;
  EXPECT_NE(cmd.find("datajitter=const:5"), std::string::npos) << cmd;
  EXPECT_NE(cmd.find("--check"), std::string::npos) << cmd;
}

// --- Fault injection: a corrupted FlowTable column is caught and shrunk. ---
//
// corrupt_after_run swaps the inflight/cum-acked columns on the primary
// scenario right before the conservation checkpoint. The hook only fires on
// cohorts of >= 4 flows, so the shrinker's `*N` bisection must stop at
// exactly copa*4 — proving both that the flow-table invariant catches a
// swapped column and that cohort bisection drives the minimisation.
TEST(FuzzShrinker, CatchesAndBisectsACorruptedFlowTableColumn) {
  check::FuzzCase c;
  c.seed = 4;
  c.flow_set = "copa*16";
  c.link_mbps = 32;
  c.rtt_ms = 40;
  c.duration_s = 0.8;

  check::FuzzOptions opts;
  opts.metamorphic = false;  // relabel/const-jitter don't apply here
  opts.corrupt_after_run = [](Scenario& sc) {
    if (sc.flow_table().size() >= 4) {
      sc.flow_table().corrupt_swap_inflight_cum();
    }
  };

  const auto failure = check::run_case(c, opts);
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->oracle, "invariant");
  EXPECT_NE(failure->detail.find("flow-table"), std::string::npos)
      << failure->detail;

  check::FuzzFailure mf;
  const check::FuzzCase m = check::shrink_case(c, opts, &mf);
  EXPECT_EQ(m.flow_set, "copa*4");  // bisected 16 -> 8 -> 4; 2 passes
  EXPECT_EQ(mf.oracle, "invariant");
  EXPECT_NE(mf.detail.find("flow-table"), std::string::npos) << mf.detail;
}

// --- Fault injection: a sender that ignores the advertised window. ---
//
// sabotage_before_run flips Sender::set_test_ignore_rwnd on every
// rwnd-limited flow, so the sender overruns the receiver's advertised
// window as soon as the clamp would have bound. The rwnd-clamp invariant
// must catch the overrunning segment, and the shrinker must keep the rwnd
// option in the minimal repro — relaxing it back to infinite makes the
// sabotage a no-op and the candidate pass.
TEST(FuzzShrinker, CatchesABrokenWindowClampAndKeepsRwndInTheRepro) {
  check::FuzzCase c;
  c.seed = 5;
  c.flow_set = "copa:rwnd=16:drain=2+vegas:loss=0.01";
  c.link_mbps = 48;
  c.rtt_ms = 40;
  c.buffer = "2bdp";
  c.duration_s = 0.8;

  check::FuzzOptions opts;
  opts.metamorphic = false;
  opts.telemetry = false;
  opts.fast_forward = false;
  opts.sabotage_before_run = [](Scenario& sc) {
    for (size_t i = 0; i < sc.flow_count(); ++i) {
      if (sc.rwnd_limited(i)) sc.sender(i).set_test_ignore_rwnd(true);
    }
  };

  const auto failure = check::run_case(c, opts);
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->oracle, "invariant");
  EXPECT_NE(failure->detail.find("rwnd-clamp"), std::string::npos)
      << failure->detail;

  check::FuzzFailure mf;
  const check::FuzzCase m = check::shrink_case(c, opts, &mf);
  EXPECT_NE(m.flow_set.find("rwnd=16"), std::string::npos) << m.flow_set;
  EXPECT_EQ(m.flow_set.find('+'), std::string::npos)
      << "peer flow should shrink away: " << m.flow_set;
  EXPECT_EQ(mf.oracle, "invariant");
  EXPECT_NE(mf.detail.find("rwnd-clamp"), std::string::npos) << mf.detail;
}

}  // namespace
}  // namespace ccstarve
